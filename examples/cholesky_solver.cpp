// Cholesky solve: the workload the paper's introduction motivates. Solve a
// symmetric positive-definite system A X = B with many right-hand sides by
// factoring A = L L^T once and then running TWO distributed triangular
// solves through one Context (one machine, two cached plans):
//
//     L Y   = B      (forward substitution  — lower solve)
//     L^T X = Y      (back substitution     — transposed lower solve)
//
// TRSM is the scalability bottleneck of exactly this pattern in dense
// solvers (LU/Cholesky/QR), which is why its communication costs matter.
//
//   ./cholesky_solver [--n 192] [--k 48] [--p 16]

#include <iostream>

#include "api/catrsm.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace catrsm;
  const Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 192);
  const la::index_t k = cli.get_int("k", 48);
  const int p = static_cast<int>(cli.get_int("p", 16));

  std::cout << "SPD solve via Cholesky + two distributed TRSMs (n=" << n
            << ", k=" << k << ", p=" << p << ")\n\n";

  const la::Matrix a = la::make_spd(/*seed=*/7, n);
  const la::Matrix b = la::make_rhs(/*seed=*/8, n, k);

  // Factor A = L L^T (sequentially here; see distributed_spd_pipeline for
  // the fully distributed factor — TRSM is what we distribute).
  const la::Matrix l = la::cholesky(a);

  // One Context = one machine + one plan cache for both substitutions.
  api::Context ctx(p);

  // Forward solve L Y = B.
  auto fwd_plan = ctx.plan(api::trsm_op(n, k));
  const api::ExecResult fwd = fwd_plan->execute(l, b);

  // Back solve L^T X = Y on the same machine, planned separately (the
  // transposed variant is its own cache entry).
  api::TrsmSpec back_spec;
  back_spec.transpose = true;
  const api::ExecResult back =
      ctx.plan(api::trsm_op(n, k, back_spec))->execute(l, fwd.x);

  // Verify against the original SPD system.
  la::Matrix residual = b;
  la::gemm(1.0, a, back.x, -1.0, residual);
  const double rel = la::frobenius_norm(residual) /
                     (la::frobenius_norm(a) * la::frobenius_norm(back.x));

  Table table({"phase", "S (rounds)", "W (words)", "F (flops)", "residual"});
  table.row()
      .add("L Y = B")
      .add(fwd.stats.max_msgs())
      .add(fwd.stats.max_words())
      .add(fwd.stats.max_flops())
      .add(fwd.residual);
  table.row()
      .add("L^T X = Y")
      .add(back.stats.max_msgs())
      .add(back.stats.max_words())
      .add(back.stats.max_flops())
      .add(back.residual);
  table.print();

  std::cout << "\n||A X - B|| / (||A|| ||X||) = " << Table::format_double(rel)
            << "\n";
  std::cout << (rel < 1e-10 ? "SPD system solved.\n" : "FAILED\n");
  return rel < 1e-10 ? 0 : 1;
}
