// Autotune explorer: "which algorithm should I run, and why?"
//
// Given a problem shape (n, k, p) and machine parameters (alpha, beta,
// gamma), prints the regime, the Section VIII tuning for every algorithm,
// and each algorithm's predicted execution time under the alpha-beta-gamma
// model — the a-priori decision procedure the paper's cost analysis makes
// possible ("This cost analysis makes it possible to determine optimal
// block sizes and processor grids a priori", Abstract).
//
//   ./autotune_explorer --n 65536 --k 4096 --p 4096
//       (plus optional --alpha 1e-6 --beta 1e-9 --gamma 2.5e-10)
//
// For small shapes (n <= 512, p <= 64) it also runs the recommended
// algorithm on the simulator and compares prediction with measurement.

#include <cmath>
#include <iostream>

#include "api/catrsm.hpp"
#include "la/generate.hpp"
#include "model/compare.hpp"
#include "model/tuning.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace catrsm;
  const Cli cli(argc, argv);
  const long long n = cli.get_int("n", 65536);
  const long long k = cli.get_int("k", 4096);
  const int p = static_cast<int>(cli.get_int("p", 4096));
  sim::MachineParams mp;
  mp.alpha = cli.get_double("alpha", mp.alpha);
  mp.beta = cli.get_double("beta", mp.beta);
  mp.gamma = cli.get_double("gamma", mp.gamma);

  std::cout << "autotune: n=" << n << " k=" << k << " p=" << p
            << "  (alpha=" << mp.alpha << ", beta=" << mp.beta
            << ", gamma=" << mp.gamma << ")\n";
  std::cout << "regime: "
            << model::regime_name(model::classify(
                   static_cast<double>(n), static_cast<double>(k),
                   static_cast<double>(p)))
            << "  (boundaries: 1D below n=4k/p="
            << Table::format_double(4.0 * k / p) << ", 2D above n=4k*sqrt(p)="
            << Table::format_double(4.0 * k * std::sqrt(double(p))) << ")\n\n";

  Table table({"algorithm", "grid", "nblocks", "S pred", "W pred", "F pred",
               "T pred (s)"});
  double best_time = 1e300;
  model::Algorithm best = model::Algorithm::kIterative;
  for (const model::Algorithm a :
       {model::Algorithm::kIterative, model::Algorithm::kRecursive,
        model::Algorithm::kTrsm2D, model::Algorithm::kTrsv1D}) {
    if (a == model::Algorithm::kTrsv1D && k > 4) continue;  // hopeless
    const model::Config cfg = model::configure_forced(n, k, p, a);
    const double t = cfg.predicted.time(mp);
    if (t < best_time) {
      best_time = t;
      best = a;
    }
    const std::string grid =
        a == model::Algorithm::kIterative
            ? std::to_string(cfg.p1) + "x" + std::to_string(cfg.p1) + "x" +
                  std::to_string(cfg.p2)
            : std::to_string(cfg.pr) + "x" + std::to_string(cfg.pc);
    table.row()
        .add(model::algorithm_name(a))
        .add(grid)
        .add(a == model::Algorithm::kIterative ? cfg.nblocks : 0)
        .add(cfg.predicted.msgs)
        .add(cfg.predicted.words)
        .add(cfg.predicted.flops)
        .add(t);
  }
  table.print();
  std::cout << "\nrecommended: " << model::algorithm_name(best) << " ("
            << Table::format_double(best_time) << " s predicted)\n";

  if (n <= 512 && p <= 64) {
    std::cout << "\nshape is simulator-sized; running the recommendation:\n";
    const la::Matrix l =
        la::make_lower_triangular(1, static_cast<la::index_t>(n));
    const la::Matrix b =
        la::make_rhs(2, static_cast<la::index_t>(n),
                     static_cast<la::index_t>(k));
    api::Context ctx(p, mp);
    api::TrsmSpec spec;
    spec.force_algorithm = true;
    spec.algorithm = best;
    const api::ExecResult r =
        ctx.plan(api::trsm_op(static_cast<la::index_t>(n),
                              static_cast<la::index_t>(k), spec))
            ->execute(l, b);
    std::cout << "measured: S=" << r.stats.max_msgs()
              << " W=" << r.stats.max_words() << " F=" << r.stats.max_flops()
              << " critical-path time="
              << Table::format_double(r.stats.critical_time)
              << " s, residual=" << Table::format_double(r.residual) << "\n";
  }
  return 0;
}
