// Strong-scaling study: fix the problem, grow the machine, watch where
// each algorithm's critical path goes — the experiment a systems paper
// reviewer would ask for first.
//
//   ./scaling_study [--n 128] [--k 32]
//
// Prints, for p in {1, 4, 16, 64}: measured S / W / F per algorithm and
// the alpha-beta-gamma critical-path time, showing the iterative method's
// latency advantage compound with p in the 3D regime.

#include <iostream>

#include "api/catrsm.hpp"
#include "la/generate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace catrsm;
  const Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 128);
  const la::index_t k = cli.get_int("k", 32);

  std::cout << "strong scaling, n=" << n << ", k=" << k
            << " (alpha-beta-gamma defaults: 1us / 1ns / 0.25ns)\n\n";

  const la::Matrix l = la::make_lower_triangular(11, n);
  const la::Matrix b = la::make_rhs(12, n, k);

  Table table({"p", "algorithm", "S", "W", "F", "model time (us)",
               "residual"});
  const sim::MachineParams mp{};
  for (const int p : {1, 4, 16, 64}) {
    // One Context per machine size; all three algorithm plans share it.
    api::Context ctx(p, mp);
    for (const model::Algorithm a :
         {model::Algorithm::kIterative, model::Algorithm::kRecursive,
          model::Algorithm::kTrsm2D}) {
      api::TrsmSpec spec;
      spec.force_algorithm = true;
      spec.algorithm = a;
      const api::ExecResult r =
          ctx.plan(api::trsm_op(n, k, spec))->execute(l, b);
      // Report the solve itself (phase "algorithm"), excluding the
      // driver's final gather of the global solution.
      const sim::Cost solve_cost = r.algorithm_cost();
      table.row()
          .add(p)
          .add(model::algorithm_name(a))
          .add(solve_cost.msgs)
          .add(solve_cost.words)
          .add(solve_cost.flops)
          .add(solve_cost.time(mp) * 1e6)
          .add(r.residual);
    }
  }
  table.print();

  std::cout << "\nReading: flops scale ~1/p for all three; the recursive "
               "and 2D baselines accumulate latency with p while the "
               "iterative method's round count stays nearly flat — the "
               "communication-avoiding behaviour the paper proves.\n";
  return 0;
}
