// Fully distributed SPD pipeline through ONE plan: no rank ever holds a
// global matrix during the computation. Inputs are element generators —
// pure functions of (i, j) — so each rank materializes exactly the
// entries it owns; the driver builds the global system once, outside the
// simulated machine, purely to verify the residual.
//
//   A = L L^T        distributed blocked Cholesky (factor::cholesky_dist)
//   L Y = B          iterative inversion-based TRSM (the paper's algorithm)
//   L^T X = Y        the same kernel after a distributed reversal
//                    reduction (J L^T J is lower-triangular)
//
// This is the complete workload the paper's introduction motivates,
// packaged as the api::Op::kCholeskySolve operation: plan once, execute
// against any number of generated systems, with TRSM's measured
// communication cost shown per stage.
//
//   ./distributed_spd_pipeline [--n 256] [--k 64] [--q 4]   (p = q*q)

#include <cmath>
#include <iostream>

#include "api/catrsm.hpp"
#include "la/generate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace catrsm;
  using la::index_t;

  const Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 256);
  const index_t k = cli.get_int("k", 64);
  const int q = static_cast<int>(cli.get_int("q", 4));
  const int p = q * q;

  std::cout << "fully distributed SPD solve: n=" << n << ", k=" << k
            << ", p=" << p << " (" << q << "x" << q << " grid)\n\n";

  // A diagonally dominant symmetric matrix, elementwise-generable: every
  // rank can evaluate A(i, j) locally without communication.
  const auto a_entry = [n](index_t i, index_t j) {
    if (i == j) return 4.0 + la::element_hash(7, i, i) * 0.5;
    const double v = la::element_hash(7, std::min(i, j), std::max(i, j));
    return v / static_cast<double>(n);  // off-diagonal, symmetric, small
  };
  const auto b_entry = [](index_t i, index_t j) {
    return la::rhs_entry(9, i, j);
  };

  api::Context ctx(p);
  const api::ExecResult r =
      ctx.plan(api::cholesky_solve_op(n, k))
          ->execute_generated(a_entry, b_entry);

  Table table({"stage", "S (rounds)", "W (words)", "F (flops)"});
  for (const char* stage : {"cholesky", "forward-trsm", "backward-trsm"}) {
    const sim::Cost c = r.stats.phase_cost(stage);
    table.row().add(stage).add(c.msgs).add(c.words).add(c.flops);
  }
  table.print();

  std::cout << "\n||A X - B|| / (||A|| ||X|| + ||B||) = "
            << Table::format_double(r.residual)
            << (r.residual < 1e-12 ? "  — solved.\n" : "  — FAILED\n");
  return r.residual < 1e-12 ? 0 : 1;
}
