// Fully distributed SPD pipeline: no rank ever holds a global matrix.
//
//   A = L L^T        distributed blocked Cholesky (factor::cholesky_dist)
//   L Y = B          iterative inversion-based TRSM (the paper's algorithm)
//   L^T X = Y        the same kernel after a distributed reversal
//                    reduction (J L^T J is lower-triangular)
//
// This is the complete workload the paper's introduction motivates, with
// TRSM's measured communication cost shown per stage. Matrices are
// generated element-wise in place (each rank fills only what it owns).
//
//   ./distributed_spd_pipeline [--n 256] [--k 64] [--q 4]   (p = q*q)

#include <cmath>
#include <iostream>

#include "dist/redistribute.hpp"
#include "factor/cholesky_dist.hpp"
#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "sim/machine.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trsm/it_inv_trsm.hpp"

int main(int argc, char** argv) {
  using namespace catrsm;
  using dist::DistMatrix;
  using dist::Face2D;
  using la::index_t;
  using la::Matrix;

  const Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 256);
  const index_t k = cli.get_int("k", 64);
  const int q = static_cast<int>(cli.get_int("q", 4));
  const int p = q * q;

  std::cout << "fully distributed SPD solve: n=" << n << ", k=" << k
            << ", p=" << p << " (" << q << "x" << q << " grid)\n\n";

  // The SPD matrix A = G G^T is derived from the deterministic triangular
  // generator, so every rank can evaluate A(i, j) locally... except a dense
  // product needs the full G row. Instead use the standard trick: a
  // diagonally dominant symmetric matrix, elementwise-generable.
  auto a_entry = [&](index_t i, index_t j) {
    if (i == j) return 4.0 + la::element_hash(7, i, i) * 0.5;
    const double v = la::element_hash(7, std::min(i, j), std::max(i, j));
    return v / static_cast<double>(n);  // off-diagonal, symmetric, small
  };

  sim::Machine machine(p);
  double resid = 0.0;
  sim::RunStats stats = machine.run([&](sim::Rank& r) {
    sim::Comm world = sim::Comm::world(r);
    Face2D face(world, q, q);
    auto ad = dist::cyclic_on(face, n, n);
    DistMatrix da(ad, r.id());
    da.fill(a_entry);

    DistMatrix dl = [&] {
      sim::PhaseScope scope(r, "cholesky");
      return factor::cholesky_dist(da, world);
    }();

    auto bd = trsm::it_inv_b_dist(world, q, 1, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates())
      db.fill([&](index_t i, index_t j) { return la::rhs_entry(9, i, j); });

    DistMatrix y = [&] {
      sim::PhaseScope scope(r, "forward-trsm");
      return trsm::it_inv_trsm(dl, db, world, q, 1);
    }();

    DistMatrix x = [&] {
      sim::PhaseScope scope(r, "backward-trsm");
      DistMatrix lt = dist::transpose(dl, ad, world);
      DistMatrix ltr = dist::reverse_both(lt, ad, world);
      DistMatrix yrev = dist::reverse_rows(y, bd, world);
      DistMatrix xrev = trsm::it_inv_trsm(ltr, yrev, world, q, 1);
      return dist::reverse_rows(xrev, bd, world);
    }();

    // Verify the residual in a distributed fashion too: every rank checks
    // its own rows of A X - B against the generators.
    const Matrix xfull = dist::collect(x, world);
    if (r.id() == 0) {
      Matrix afull(n, n), bfull(n, k);
      for (index_t i = 0; i < n; ++i) {
        for (index_t j = 0; j < n; ++j) afull(i, j) = a_entry(i, j);
        for (index_t j = 0; j < k; ++j) bfull(i, j) = la::rhs_entry(9, i, j);
      }
      Matrix rmat = la::matmul(afull, xfull);
      rmat.sub(bfull);
      resid = la::frobenius_norm(rmat) / la::frobenius_norm(bfull);
    }
  });

  Table table({"stage", "S (rounds)", "W (words)", "F (flops)"});
  for (const char* stage : {"cholesky", "forward-trsm", "backward-trsm"}) {
    const auto it = stats.phase_max.find(stage);
    const sim::Cost c = it == stats.phase_max.end() ? sim::Cost{} : it->second;
    table.row().add(stage).add(c.msgs).add(c.words).add(c.flops);
  }
  table.print();
  std::cout << "\n||A X - B|| / ||B|| = " << Table::format_double(resid)
            << (resid < 1e-10 ? "  — solved.\n" : "  — FAILED\n");
  return resid < 1e-10 ? 0 : 1;
}
