// Quickstart: solve a triangular system L X = B on a simulated distributed
// machine with everything chosen automatically, through the handle-based
// plan/execute API.
//
//   ./quickstart [--n 256] [--k 64] [--p 16]
//
// Demonstrates the happy path of the library:
//   1. build (or load) L and B,
//   2. create a catrsm::api::Context (the machine handle) and plan the op,
//   3. execute the plan — repeatedly: the second solve reuses both the
//      cached plan and the iterative algorithm's inverted diagonal blocks.

#include <cstdio>
#include <iostream>

#include "api/catrsm.hpp"
#include "la/generate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace catrsm;
  const Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 256);
  const la::index_t k = cli.get_int("k", 64);
  const int p = static_cast<int>(cli.get_int("p", 16));

  std::cout << "catrsm quickstart: solve L X = B with n=" << n << ", k=" << k
            << " on p=" << p << " simulated processors\n\n";

  // A well-conditioned lower-triangular L and a dense right-hand side.
  const la::Matrix l = la::make_lower_triangular(/*seed=*/42, n);
  const la::Matrix b = la::make_rhs(/*seed=*/43, n, k);

  api::Context ctx(p);
  auto plan = ctx.plan(api::trsm_op(n, k));
  const api::ExecResult r = plan->execute(l, b);

  std::cout << "configuration chosen by the Section VIII tuner:\n"
            << "  regime:     " << model::regime_name(r.config.regime) << "\n"
            << "  algorithm:  " << model::algorithm_name(r.config.algorithm)
            << "\n"
            << "  grid:       " << r.config.p1 << " x " << r.config.p1
            << " x " << r.config.p2 << "\n"
            << "  inverted diagonal blocks: " << r.config.nblocks << "\n\n";

  Table table({"metric", "measured (max over ranks)"});
  table.row().add("latency S (rounds)").add(r.stats.max_msgs());
  table.row().add("bandwidth W (words)").add(r.stats.max_words());
  table.row().add("flops F").add(r.stats.max_flops());
  table.row().add("critical-path time (s)").add(r.stats.critical_time);
  table.row().add("residual").add(r.residual);
  table.print();

  // Repeat traffic: force the paper's iterative algorithm and solve two
  // systems against the same L. The second plan() call hits the cache and
  // the inverted diagonal blocks are computed exactly once — the second
  // solve skips the inversion entirely.
  api::TrsmSpec iterative;
  iterative.force_algorithm = true;
  iterative.algorithm = model::Algorithm::kIterative;
  auto it_plan = ctx.plan(api::trsm_op(n, k, iterative));
  const api::ExecResult r2 = it_plan->execute(l, b);
  const api::ExecResult r3 = ctx.plan(api::trsm_op(n, k, iterative))
                                 ->execute(l, la::make_rhs(/*seed=*/44, n, k));
  const api::CacheStats cs = ctx.cache_stats();
  std::cout << "\nrepeat traffic (iterative algorithm, 2 solves against the "
               "same L):\n  plan cache hits=" << cs.hits
            << " misses=" << cs.misses
            << ", diagonal inversions=" << it_plan->diag_inversions()
            << ", residuals=" << Table::format_double(r2.residual) << " / "
            << Table::format_double(r3.residual) << "\n";

  std::cout << "\nsolution sample: X(0,0) = " << r.x(0, 0) << ", X(" << n - 1
            << "," << k - 1 << ") = " << r.x(n - 1, k - 1) << "\n";
  return r.residual < 1e-10 && r2.residual < 1e-10 && r3.residual < 1e-10
             ? 0
             : 1;
}
