// Quickstart: solve a triangular system L X = B on a simulated distributed
// machine with everything chosen automatically.
//
//   ./quickstart [--n 256] [--k 64] [--p 16]
//
// Demonstrates the three-line happy path of the library:
//   1. build (or load) L and B,
//   2. call catrsm::trsm::solve,
//   3. read the solution, the measured communication costs, and what the
//      Section VIII tuner decided.

#include <cstdio>
#include <iostream>

#include "la/generate.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "trsm/solver.hpp"

int main(int argc, char** argv) {
  using namespace catrsm;
  const Cli cli(argc, argv);
  const la::index_t n = cli.get_int("n", 256);
  const la::index_t k = cli.get_int("k", 64);
  const int p = static_cast<int>(cli.get_int("p", 16));

  std::cout << "catrsm quickstart: solve L X = B with n=" << n << ", k=" << k
            << " on p=" << p << " simulated processors\n\n";

  // A well-conditioned lower-triangular L and a dense right-hand side.
  const la::Matrix l = la::make_lower_triangular(/*seed=*/42, n);
  const la::Matrix b = la::make_rhs(/*seed=*/43, n, k);

  const trsm::SolveResult r = trsm::solve(l, b, p);

  std::cout << "configuration chosen by the Section VIII tuner:\n"
            << "  regime:     " << model::regime_name(r.config.regime) << "\n"
            << "  algorithm:  " << model::algorithm_name(r.config.algorithm)
            << "\n"
            << "  grid:       " << r.config.p1 << " x " << r.config.p1
            << " x " << r.config.p2 << "\n"
            << "  inverted diagonal blocks: " << r.config.nblocks << "\n\n";

  Table table({"metric", "measured (max over ranks)"});
  table.row().add("latency S (rounds)").add(r.stats.max_msgs());
  table.row().add("bandwidth W (words)").add(r.stats.max_words());
  table.row().add("flops F").add(r.stats.max_flops());
  table.row().add("critical-path time (s)").add(r.stats.critical_time);
  table.row().add("residual").add(r.residual);
  table.print();

  std::cout << "\nsolution sample: X(0,0) = " << r.x(0, 0) << ", X(" << n - 1
            << "," << k - 1 << ") = " << r.x(n - 1, k - 1) << "\n";
  return r.residual < 1e-10 ? 0 : 1;
}
