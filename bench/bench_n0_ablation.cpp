// E9 — ablation: the block-size (n0) trade-off that motivates Section VI.
//
// Sweeping nblocks = n/n0 from 1 (full inversion) to n/8 (tiny blocks)
// exposes the latency/bandwidth trade-off the tuning of Section VIII
// optimizes: few blocks -> the inversion dominates (more flops, more
// inversion bandwidth); many blocks -> the (n/n0) log p solve/update
// latency dominates. The tuned value sits at the knee.

#include "bench_util.hpp"

#include <cmath>

#include "model/costs.hpp"
#include "trsm/it_inv_trsm.hpp"

namespace {

using namespace catrsm;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

RunStats run_with_blocks(index_t n, index_t k, int p1, int p2, int nblocks) {
  const int p = p1 * p1 * p2;
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = trsm::it_inv_l_face(world, p1, p2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates())
      dl.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    auto bd = trsm::it_inv_b_dist(world, p1, p2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates())
      db.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    trsm::ItInvOptions opts;
    opts.nblocks = nblocks;
    (void)trsm::it_inv_trsm(dl, db, world, p1, p2, opts);
  });
}

}  // namespace

int main() {
  bench::print_header(
      "E9: n0 ablation — selective inversion's latency/flop trade-off",
      "nblocks = 1 is full inversion; large nblocks recovers the "
      "latency-bound update chain");

  const index_t n = 128, k = 32;
  const int p1 = 2, p2 = 4;
  const sim::MachineParams mp{};  // default alpha/beta/gamma

  Table table({"nblocks", "n0", "S meas", "W meas", "F meas",
               "model time (a-b-g)"});
  for (const int nblocks : {1, 2, 4, 8, 16, 32}) {
    const RunStats stats = run_with_blocks(n, k, p1, p2, nblocks);
    table.row()
        .add(nblocks)
        .add(static_cast<long long>(ceil_div(n, nblocks)))
        .add(stats.max_msgs())
        .add(stats.max_words())
        .add(stats.max_flops())
        .add(stats.max_cost().time(mp) * 1e6);  // microseconds
  }
  table.print();
  std::cout << "\nauto-tuned nblocks for this shape: "
            << trsm::it_inv_auto_nblocks(n, k, p1 * p1 * p2)
            << " (Section VIII would pick n0 ~ sqrt(nk) = "
            << Table::format_double(std::sqrt(static_cast<double>(n) * k))
            << ")\n"
            << "Expected: S grows with nblocks, F falls then flattens; "
               "the knee in model time matches the tuned value.\n";
  return 0;
}
