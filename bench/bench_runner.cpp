// Machine-readable perf tracking: runs the kernel-substrate and crossover
// bench cases plus the batched-solve scenario the zero-copy transport and
// persistent scheduler target, and writes BENCH_sim.json — one record per
// case with wall-clock milliseconds AND the modeled (S, W, F,
// critical-path time) of the same execution, so the wall-clock trajectory
// can be tracked across PRs while the modeled costs pin down that the
// simulation itself did not change.
//
//   ./bench_runner [output.json] [--threads N] [--assert-scaling]
//                  [--assert-fusion] [--assert-streams]
//
// --threads N overrides the kernel pool size for the multi-threaded
// cases (default: CATRSM_KERNEL_THREADS / hardware_concurrency). The
// plain kernel/* cases always run single-threaded so their trajectory
// stays comparable across machines; kernel/gemm_mt sweeps the pool over
// {1, 2, 4, hw} next to a same-shape single-threaded baseline, and the
// batch case runs once with the slab pool and once without, so both
// tentpole wins are committed numbers. Every record carries the
// detected hardware concurrency, so a committed speedup can always be
// read against the cores that produced it.
//
// --assert-scaling exits non-zero when the pooled GEMM at n = 1024 is
// slower than 1.05x the single-threaded wall at the configured pool
// size — the CI tripwire that keeps the pool from silently regressing
// to a slowdown again.
//
// --assert-fusion exits non-zero when the fused batch
// (batch/it_trsm_32x_p64_fused, the whole panel stream as ONE simulated
// run) is slower than 1.05x the unfused pooled batch — the same kind of
// tripwire for the Program-fusion win. Independently of the flag, the
// fused batch's solutions are always compared bit for bit against the
// unfused ones and any mismatch fails the run.
//
// --assert-streams exits non-zero when the concurrent-streams pass of
// streams/mixed_tenant delivers less than 1.05x the serial loop's
// solves/sec. Independently of the flag, every concurrent solution is
// compared bit for bit against its serial counterpart and every
// request's modeled cost must be identical across the two passes.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/catrsm.hpp"
#include "api/stream_pool.hpp"
#include "bench_util.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/kernel/kernel.hpp"
#include "la/kernel/pool.hpp"
#include "la/mixed.hpp"
#include "la/norms.hpp"
#include "la/tri_inv.hpp"
#include "la/trsm.hpp"
#include "model/tuning.hpp"
#include "sim/slab.hpp"

namespace {

using namespace catrsm;
using la::index_t;
using Clock = std::chrono::steady_clock;

struct Record {
  std::string name;
  int p = 0;
  index_t n = 0;
  index_t k = 0;
  double wall_ms = 0.0;
  double iterations = 1.0;  // wall_ms is for ALL iterations
  sim::Cost modeled;        // zero for host-only kernel cases
  double critical_time = 0.0;
  double gflops = 0.0;       // kernel cases only: flops / wall-clock
  std::string backend;       // kernel cases only: dispatched micro-kernel
  int threads = 1;           // kernel pool size the case's la:: calls saw
};

/// Detected hardware concurrency, stamped into every record: a committed
/// speedup is meaningless without the core count that produced it.
int hw_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void append_json(std::string& out, const Record& r, bool last) {
  out += "  {\"name\": \"" + r.name + "\"";
  out += ", \"p\": " + std::to_string(r.p);
  out += ", \"n\": " + std::to_string(r.n);
  out += ", \"k\": " + std::to_string(r.k);
  out += ", \"iterations\": " + std::to_string(r.iterations);
  out += ", \"threads\": " + std::to_string(r.threads);
  out += ", \"hw_concurrency\": " + std::to_string(hw_concurrency());
  out += ", \"wall_ms\": " + std::to_string(r.wall_ms);
  if (!r.backend.empty()) {
    out += ", \"gflops\": " + std::to_string(r.gflops);
    out += ", \"kernel_backend\": \"" + r.backend + "\"";
  }
  out += ", \"modeled\": {\"msgs\": " + std::to_string(r.modeled.msgs);
  out += ", \"words\": " + std::to_string(r.modeled.words);
  out += ", \"flops\": " + std::to_string(r.modeled.flops);
  out += ", \"critical_time\": " + std::to_string(r.critical_time) + "}}";
  out += last ? "\n" : ",\n";
}

// Rep counts for the host-only kernel cases: the committed file once
// carried kernel/gemm at 21.3 GFLOP/s next to gemm_st at 30.1 for the
// SAME configuration — pure run-to-run noise. Two warmups settle the
// frequency governor and a median of 9 pins the middle of the
// distribution.
constexpr int kKernelWarmups = 2;
constexpr int kKernelReps = 9;

/// E10-style local kernel substrate cases (no simulated machine). Each
/// case is kKernelWarmups warmup runs plus the median of kKernelReps
/// timed runs; `gflops` turns the wall clock into a machine-readable flop
/// rate so the perf trajectory of the micro-kernel layer can be tracked
/// across PRs. Forced to one kernel thread: the single-core trajectory
/// stays comparable across PRs and machines (kernel/gemm_mt carries the
/// scaling story).
void run_kernel_cases(std::vector<Record>& records) {
  la::kernel::ThreadPool::set_threads_for_testing(1);
  const std::string backend = la::kernel::backend_name();
  const auto push = [&](const char* name, index_t n, index_t k, double wall,
                        double flops) {
    Record r{name, 1, n,  k, wall, 1.0, {}, 0.0, flops / (wall * 1e6),
             backend, 1};
    records.push_back(std::move(r));
  };
  for (const index_t n : {64, 128, 256, 512}) {
    {
      const la::Matrix a = la::make_dense(1, n, n);
      const la::Matrix b = la::make_dense(2, n, n);
      la::Matrix c(n, n);
      const double wall = bench::median_wall_ms(
          kKernelWarmups, kKernelReps, [&] { la::gemm(1.0, a, b, 0.0, c); });
      push("kernel/gemm", n, n, wall, la::gemm_flops(n, n, n));
    }
    {
      const la::Matrix l = la::make_lower_triangular(3, n);
      const la::Matrix b = la::make_rhs(4, n, n);
      la::Matrix x = b;  // preallocated: the timed body re-copies the RHS
                         // (the solve is in-place) but never allocates
      const double wall = bench::median_wall_ms(kKernelWarmups, kKernelReps,
                                                [&] {
        x = b;
        la::trsm_left(la::Uplo::kLower, la::Diag::kNonUnit, l, x);
      });
      push("kernel/trsm", n, n, wall, la::trsm_flops(n, n));
    }
    {
      const la::Matrix l = la::make_lower_triangular(5, n);
      const double wall = bench::median_wall_ms(
          kKernelWarmups, kKernelReps,
          [&] { (void)la::tri_inv(la::Uplo::kLower, l); });
      push("kernel/tri_inv", n, 0, wall, la::tri_inv_flops(n));
    }
  }
  // f32 GEMM next to the same-shape f64 numbers above: the committed
  // ratio IS the datatype-envelope claim (twice the lanes per FMA).
  for (const index_t n : {512, 1024}) {
    std::vector<float> a(static_cast<std::size_t>(n) * n);
    std::vector<float> b(static_cast<std::size_t>(n) * n);
    std::vector<float> c(static_cast<std::size_t>(n) * n);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = 1.0f + static_cast<float>(i % 7) * 0.25f;
      b[i] = 0.5f - static_cast<float>(i % 5) * 0.125f;
    }
    const double wall =
        bench::median_wall_ms(kKernelWarmups, kKernelReps, [&] {
          la::kernel::gemm_f32(n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
                               c.data(), n);
        });
    push("kernel/gemm_f32", n, n, wall, la::gemm_flops(n, n, n));
  }
  la::kernel::ThreadPool::set_threads_for_testing(0);
}

/// Multi-threaded scaling cases: the same GEMM shape through the kernel
/// pool swept over {1, 2, 4, hw} threads, next to a single-threaded run
/// of the identical shape, so the committed JSON carries the whole
/// scaling curve (the `threads` field says what produced each record).
/// Returns the (st, mt-at-pool_threads) walls at n = 1024 for the
/// --assert-scaling tripwire.
std::pair<double, double> run_kernel_mt_cases(std::vector<Record>& records,
                                              int pool_threads) {
  const std::string backend = la::kernel::backend_name();
  std::vector<int> sweep{1, 2, 4, hw_concurrency(), pool_threads};
  std::sort(sweep.begin(), sweep.end());
  sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());
  std::pair<double, double> at_1024{0.0, 0.0};
  for (const index_t n : {512, 1024, 2048}) {
    const la::Matrix a = la::make_dense(21, n, n);
    const la::Matrix b = la::make_dense(22, n, n);
    la::Matrix c(n, n);
    la::kernel::ThreadPool::set_threads_for_testing(1);
    const double wall_st = bench::median_wall_ms(
        kKernelWarmups, kKernelReps, [&] { la::gemm(1.0, a, b, 0.0, c); });
    const double flops = la::gemm_flops(n, n, n);
    records.push_back({"kernel/gemm_st", 1, n, n, wall_st, 1.0, {}, 0.0,
                       flops / (wall_st * 1e6), backend, 1});
    if (n == 1024) at_1024.first = wall_st;
    for (const int t : sweep) {
      if (t <= 1) continue;
      la::kernel::ThreadPool::set_threads_for_testing(t);
      const double wall_mt = bench::median_wall_ms(
          kKernelWarmups, kKernelReps, [&] { la::gemm(1.0, a, b, 0.0, c); });
      records.push_back({"kernel/gemm_mt", 1, n, n, wall_mt, 1.0, {}, 0.0,
                         flops / (wall_mt * 1e6), backend, t});
      if (n == 1024 && t == pool_threads) at_1024.second = wall_mt;
      std::cout << "kernel/gemm_mt n=" << n << ": " << wall_st << " ms @1 -> "
                << wall_mt << " ms @" << t << " threads ("
                << wall_st / wall_mt << "x)\n";
    }
    la::kernel::ThreadPool::set_threads_for_testing(0);
  }
  return at_1024;
}

/// Mixed-precision refined solve next to the pure-f64 solve on the same
/// system: the committed pair carries both the wall clocks and — through
/// the solve-rate `gflops` field, computed from the same f64 flop count —
/// the honest cost of buying f64-level accuracy out of f32 substitution.
void run_mixed_cases(std::vector<Record>& records) {
  la::kernel::ThreadPool::set_threads_for_testing(1);
  const std::string backend = la::kernel::backend_name();
  const index_t n = 1024, k = 256;
  const la::Matrix l = la::make_lower_triangular(31, n);
  const la::Matrix b = la::make_rhs(32, n, k);
  la::Matrix x = b;
  const double wall64 = bench::median_wall_ms(kKernelWarmups, kKernelReps,
                                              [&] {
    x = b;
    la::trsm_left(la::Uplo::kLower, la::Diag::kNonUnit, l, x);
  });
  const double res64 = la::trsm_residual(l, x, b);
  la::RefineStats rs;
  const double wall_mixed = bench::median_wall_ms(kKernelWarmups, kKernelReps,
                                                  [&] {
    x = b;
    rs = la::trsm_refined(la::Uplo::kLower, la::Diag::kNonUnit, l, x);
  });
  const double flops = la::trsm_flops(n, k);
  records.push_back({"mixed/trsm_f64", 1, n, k, wall64, 1.0, {}, 0.0,
                     flops / (wall64 * 1e6), backend, 1});
  records.push_back({"mixed/trsm_refined", 1, n, k, wall_mixed, 1.0, {}, 0.0,
                     flops / (wall_mixed * 1e6), backend, 1});
  std::cout << "mixed/trsm_refined n=" << n << " k=" << k << ": " << wall64
            << " ms f64 (res " << res64 << ") vs " << wall_mixed
            << " ms refined (res " << rs.residual << ", "
            << rs.iterations << " refine iters)\n";
  la::kernel::ThreadPool::set_threads_for_testing(0);
}

/// E11-style crossover cases: each (n, k) shape under every forced
/// algorithm, recording the modeled algorithm cost next to the wall clock.
void run_crossover_cases(std::vector<Record>& records) {
  const int p = 16;
  struct Shape {
    index_t n, k;
  };
  struct Algo {
    model::Algorithm a;
    const char* name;
  };
  api::Context ctx(p);
  for (const Shape s : {Shape{16, 1024}, Shape{64, 64}, Shape{256, 4}}) {
    const la::Matrix l = la::make_lower_triangular(1, s.n);
    const la::Matrix b = la::make_rhs(2, s.n, s.k);
    for (const Algo algo : {Algo{model::Algorithm::kIterative, "iterative"},
                            Algo{model::Algorithm::kRecursive, "recursive"},
                            Algo{model::Algorithm::kTrsm2D, "2d"}}) {
      api::TrsmSpec spec;
      spec.force_algorithm = true;
      spec.algorithm = algo.a;
      auto plan = ctx.plan(api::trsm_op(s.n, s.k, spec));
      const auto t0 = Clock::now();
      const api::ExecResult r = plan->execute(l, b);
      Record rec{"crossover/" + std::string(algo.name), p, s.n, s.k,
                 ms_since(t0), 1.0, r.algorithm_cost(),
                 r.stats.critical_time};
      records.push_back(rec);
    }
  }
}

/// The scenario the zero-copy buffers, persistent scheduler, and slab
/// pool target: one plan, 32 iterative-TRSM solves at p = 64, executed
/// as a batch — once with the slab pool recycling message storage across
/// runs, once with every payload freshly allocated, so the pooling win is
/// a committed number. Modeled cost is per solve and must be identical in
/// both records (allocation strategy cannot perturb the cost model).
///
/// Timed as one warmup batch plus the median of 3: a single-shot timing
/// of a ~1.4 s batch once committed an inversion of the pooled/nopool
/// ordering (1412 vs 1337 ms) that a rerun inverted right back —
/// scheduler noise, not a slab regression (see ROADMAP).
double run_batch_case(std::vector<Record>& records, bool pooled,
                      std::vector<api::ExecResult>* out_results = nullptr) {
  const int p = 64;
  const index_t n = 96, k = 48;
  const int items = 32;
  sim::set_slab_pool_enabled(pooled);
  const la::Matrix l = la::make_lower_triangular(11, n);
  std::vector<la::Matrix> bs;
  bs.reserve(items);
  for (int i = 0; i < items; ++i)
    bs.push_back(la::make_rhs(100 + static_cast<std::uint64_t>(i), n, k));

  // The whole cold path — fresh Context, plan build, first-solve diag
  // inversion — is inside the timed body: a warm plan cache would both
  // shrink the wall and report the cheap re-solve stats instead of the
  // committed cold-batch cost model.
  std::vector<api::ExecResult> results;
  api::CacheStats cs;
  const double wall = bench::median_wall_ms(1, 3, [&] {
    api::Context ctx(p);
    api::TrsmSpec spec;
    spec.force_algorithm = true;
    spec.algorithm = model::Algorithm::kIterative;
    auto plan = ctx.plan(api::trsm_op(n, k, spec));
    results = plan->execute_batch(l, bs);
    cs = ctx.cache_stats();
  });
  const std::string name = pooled ? "batch/it_trsm_32x_p64"
                                  : "batch/it_trsm_32x_p64_nopool";
  records.push_back({name, p, n, k, wall, double(items),
                     results.front().algorithm_cost(),
                     results.front().stats.critical_time});
  std::cout << name << ": " << wall << " ms for " << items << " solves ("
            << wall / items << " ms/solve); plan-cache hits=" << cs.hits
            << " misses=" << cs.misses << " entries=" << cs.entries << "\n";
  sim::set_slab_pool_enabled(true);
  if (out_results != nullptr) *out_results = std::move(results);
  return wall;
}

/// The fused form of the same scenario: the whole 32-panel stream as ONE
/// api::Program in ONE Machine::run — L uploaded once, intermediates
/// resident in the HandleStore, the diagonal inversion shared across
/// panels inside the run, one describe-only communicator realization per
/// layout. Modeled cost is the whole run's algorithm phase (iterations
/// says it covers all 32 solves). Solutions must match the unfused batch
/// bit for bit — checked here on every bench run, not just under the
/// tripwire flag.
double run_fused_batch_case(std::vector<Record>& records,
                            const std::vector<api::ExecResult>& unfused) {
  const int p = 64;
  const index_t n = 96, k = 48;
  const int items = 32;
  const la::Matrix l = la::make_lower_triangular(11, n);
  std::vector<la::Matrix> bs;
  bs.reserve(items);
  for (int i = 0; i < items; ++i)
    bs.push_back(la::make_rhs(100 + static_cast<std::uint64_t>(i), n, k));

  api::BatchResult result;
  api::CacheStats cs;
  const double wall = bench::median_wall_ms(1, 3, [&] {
    api::Context ctx(p);
    api::TrsmSpec spec;
    spec.force_algorithm = true;
    spec.algorithm = model::Algorithm::kIterative;
    auto plan = ctx.plan(api::trsm_op(n, k, spec));
    result = plan->execute_batch_fused(l, bs);
    cs = ctx.cache_stats();
  });
  records.push_back({"batch/it_trsm_32x_p64_fused", p, n, k, wall,
                     double(items), result.algorithm_cost(),
                     result.stats.critical_time});
  const api::ProgramStats& ps = result.program_stats;
  std::cout << "batch/it_trsm_32x_p64_fused: " << wall << " ms for " << items
            << " solves (" << wall / items << " ms/solve); program steps="
            << ps.steps_executed << " merged=" << ps.nodes_merged
            << " elided=" << ps.nodes_elided << " redist="
            << ps.redistributes_inserted << "; plan-cache hits=" << cs.hits
            << " misses=" << cs.misses << " entries=" << cs.entries << "\n";

  for (int i = 0; i < items; ++i) {
    if (!result.xs[static_cast<std::size_t>(i)].equals(
            unfused[static_cast<std::size_t>(i)].x)) {
      std::cerr << "FUSED MISMATCH: panel " << i
                << " differs bitwise from the unfused batch\n";
      std::exit(1);
    }
  }
  return wall;
}

/// The resident-operand A/B of the same scenario: upload L ONCE, then 32
/// execute_dist calls (per-item B upload + X download included — that is
/// the serving traffic pattern), versus batch/it_trsm_32x_p64 which
/// re-scatters L, re-collects X, and re-checks the residual on every
/// execute. Modeled algorithm cost must be identical to the batch record
/// (same solver body); the wall-clock gap is the driver overhead the
/// resident path eliminates.
void run_resident_batch_case(std::vector<Record>& records) {
  const int p = 64;
  const index_t n = 96, k = 48;
  const int items = 32;
  api::Context ctx(p);
  api::TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = model::Algorithm::kIterative;
  auto plan = ctx.plan(api::trsm_op(n, k, spec));
  const la::Matrix l = la::make_lower_triangular(11, n);
  std::vector<la::Matrix> bs;
  bs.reserve(items);
  for (int i = 0; i < items; ++i)
    bs.push_back(la::make_rhs(100 + static_cast<std::uint64_t>(i), n, k));

  const auto t0 = Clock::now();
  const api::DistHandle hl = ctx.upload(l, plan->input_layout(0));
  sim::Cost modeled;
  double critical = 0.0;
  for (int i = 0; i < items; ++i) {
    const api::DistHandle hb =
        ctx.upload(bs[static_cast<std::size_t>(i)], plan->input_layout(1));
    const api::DistExecResult r = plan->execute_dist(hl, hb);
    (void)ctx.download(r.x);
    if (i == 0) {
      modeled = r.algorithm_cost();
      critical = r.stats.critical_time;
    }
  }
  const double wall = ms_since(t0);
  records.push_back({"resident/it_trsm_32x_p64", p, n, k, wall,
                     double(items), modeled, critical});
  std::cout << "resident/it_trsm_32x_p64: " << wall << " ms for " << items
            << " solves (" << wall / items << " ms/solve)\n";
}

/// The full SPD pipeline as a 3-op program (factor -> solve -> reversed
/// solve) in one simulated run with no intermediate collects.
void run_program_case(std::vector<Record>& records) {
  const int p = 16;
  const index_t n = 128, k = 32;
  api::Context ctx(p);
  const la::Matrix a = la::make_spd(41, n);
  const la::Matrix b = la::make_rhs(42, n, k);
  auto plan = ctx.plan(api::cholesky_solve_op(n, k));
  const auto t0 = Clock::now();
  const api::ExecResult r = plan->execute(a, b);
  records.push_back({"program/spd_pipeline", p, n, k, ms_since(t0), 1.0,
                     r.algorithm_cost(), r.stats.critical_time});
  const api::CacheStats cs = ctx.cache_stats();
  std::cout << "program/spd_pipeline: " << records.back().wall_ms
            << " ms (residual " << r.residual << "); plan-cache hits="
            << cs.hits << " misses=" << cs.misses << " entries="
            << cs.entries << "\n";
}

/// The optimizer A/B on a redundantly-written SPD pipeline: three
/// right-hand sides, each wiring its OWN factor step against the same
/// operand — the shape a naive program author produces. With the
/// optimizer on, the duplicate factors merge and kCholesky runs once;
/// off, the DAG runs as written. Both records carry the whole run's
/// modeled algorithm cost, so the committed pair shows the merge win in
/// S/W/F, not just wall clock.
void run_program_opt_cases(std::vector<Record>& records) {
  const int p = 16;
  const index_t n = 128, k = 32;
  const int panels = 3;
  const int q = 4;  // square factor subgrid of p = 16
  api::Context ctx(p);
  const la::Matrix a = la::make_spd(41, n);

  auto solve_plan = ctx.plan(api::cholesky_solve_op(n, k));
  auto factor_plan = ctx.plan(api::cholesky_op(n, q));
  api::TrsmSpec fwd;
  fwd.force_algorithm = true;
  fwd.algorithm = model::Algorithm::kIterative;
  fwd.nblocks = solve_plan->config().nblocks;
  fwd.grid_p1 = q;
  fwd.grid_p2 = 1;
  auto fwd_plan = ctx.plan(api::trsm_op(n, k, fwd));
  api::TrsmSpec bwd = fwd;
  bwd.transpose = true;
  auto bwd_plan = ctx.plan(api::trsm_op(n, k, bwd));

  api::Program prog(ctx);
  std::vector<api::DistHandle> inputs{
      ctx.upload(a, factor_plan->input_layout(0))};
  const auto na = prog.input(n, n);
  for (int j = 0; j < panels; ++j) {
    const la::Matrix b =
        la::make_rhs(42 + static_cast<std::uint64_t>(j), n, k);
    inputs.push_back(ctx.upload(b, fwd_plan->input_layout(1)));
    const auto nb = prog.input(n, k);
    const auto nl = prog.add(factor_plan, {na});
    const auto ny = prog.add(fwd_plan, {nl, nb});
    prog.mark_output(prog.add(bwd_plan, {nl, ny}));
  }

  for (const bool optimized : {true, false}) {
    prog.set_optimize(optimized);
    const auto t0 = Clock::now();
    const api::Program::Result r = prog.run(inputs);
    const api::ProgramStats& ps = prog.stats();
    records.push_back({optimized ? "program/spd_pipeline_opt"
                                 : "program/spd_pipeline_noopt",
                       p, n, k, ms_since(t0), double(panels),
                       r.algorithm_cost(), r.stats.critical_time});
    std::cout << records.back().name << ": " << records.back().wall_ms
              << " ms for " << panels << " rhs panels; program steps="
              << ps.steps_executed << " merged=" << ps.nodes_merged
              << " elided=" << ps.nodes_elided << " redist="
              << ps.redistributes_inserted << " avoided="
              << ps.redistributes_avoided << "\n";
  }
}

/// Oracle-overhead A/B: the same solve with the correctness oracle
/// (collective matching; the deadlock detector is always armed) off and
/// on. The oracle observes, never participates, so the two records'
/// modeled S/W/F and critical time must be byte-identical in the
/// committed JSON — a divergence is a regression in that zero-cost
/// guarantee. The wall-clock delta is the oracle's real overhead.
void run_oracle_cases(std::vector<Record>& records) {
  const int p = 16;
  const index_t n = 128, k = 32;
  const la::Matrix l = la::make_lower_triangular(51, n);
  const la::Matrix b = la::make_rhs(52, n, k);
  for (const bool checked : {false, true}) {
    api::Context ctx(p);
    ctx.machine().set_collective_checking(checked);
    api::TrsmSpec spec;
    spec.force_algorithm = true;
    spec.algorithm = model::Algorithm::kIterative;
    auto plan = ctx.plan(api::trsm_op(n, k, spec));
    const auto t0 = Clock::now();
    const api::ExecResult r = plan->execute(l, b);
    records.push_back({checked ? "oracle/it_trsm_p16_check"
                               : "oracle/it_trsm_p16_nocheck",
                       p, n, k, ms_since(t0), 1.0, r.algorithm_cost(),
                       r.stats.critical_time});
    std::cout << records.back().name << ": " << records.back().wall_ms
              << " ms\n";
  }

  // Same solve with the fault-injection layer compiled in but DISARMED:
  // the injector's zero-cost contract (one null test per transport op,
  // no stamps, no sweeps) means this record's modeled S/W/F and critical
  // time must stay byte-identical to oracle/it_trsm_p16_nocheck in the
  // committed JSON.
  {
    api::Context ctx(p);
    api::TrsmSpec spec;
    spec.force_algorithm = true;
    spec.algorithm = model::Algorithm::kIterative;
    auto plan = ctx.plan(api::trsm_op(n, k, spec));
    const auto t0 = Clock::now();
    const api::ExecResult r = plan->execute(l, b);
    records.push_back({"oracle/injection_disarmed", p, n, k, ms_since(t0),
                       1.0, r.algorithm_cost(), r.stats.critical_time});
    std::cout << records.back().name << ": " << records.back().wall_ms
              << " ms\n";
  }
}

/// The execution-streams tentpole: four tenant Contexts sharing ONE
/// machine, a skewed mix of iterative-TRSM solves (every request its own
/// L and B, so streams never contend on a handle), served two ways over
/// the SAME pre-uploaded operands — a serial loop (execute_dist +
/// download per request, in admission order) versus api::StreamPool
/// keeping CATRSM_SIM_STREAMS runs in flight while the host downloads
/// finished solutions. Both walls are committed as solves/sec-derivable
/// records; every concurrent solution must match its serial counterpart
/// bit for bit, and every request's modeled S/W/F + critical time must be
/// identical across the two passes (per-run virtual clocks — concurrency
/// cannot perturb the cost model). Returns (serial, concurrent) walls for
/// the --assert-streams tripwire.
std::pair<double, double> run_stream_cases(std::vector<Record>& records) {
  // p = 8 on purpose: stream overlap pays when one run cannot keep the
  // host cores busy by itself. A small-p iterative solve is exactly that
  // — its dependency chain leaves workers idle between panels — so the
  // pool's other streams fill the gaps. (At p = 64 a single run already
  // saturates a 2-core CI box and overlap can only add overhead; that
  // regime belongs to the scaling cases, not here.)
  const int p = 8;
  const int tenants = 4;
  struct Req {
    int tenant;
    index_t n, k;
  };
  // Skewed: tenant 0 carries the deep backlog of mid-size panels, the
  // rest bring lighter/odd-shaped traffic — interleaved round-robin, the
  // order the pool itself admits in, so the serial baseline is the same
  // schedule minus the overlap.
  std::vector<Req> reqs;
  {
    std::vector<std::vector<Req>> per_tenant(tenants);
    for (int i = 0; i < 12; ++i) per_tenant[0].push_back({0, 96, 48});
    for (int i = 0; i < 8; ++i) per_tenant[1].push_back({1, 128, 32});
    for (int i = 0; i < 6; ++i) per_tenant[2].push_back({2, 64, 96});
    for (int i = 0; i < 6; ++i) per_tenant[3].push_back({3, 96, 16});
    for (std::size_t row = 0; true;) {
      bool any = false;
      for (auto& q : per_tenant)
        if (row < q.size()) {
          reqs.push_back(q[row]);
          any = true;
        }
      if (!any) break;
      ++row;
    }
  }
  const int items = static_cast<int>(reqs.size());

  sim::Machine machine(p);
  std::vector<std::unique_ptr<api::Context>> ctxs;
  for (int t = 0; t < tenants; ++t)
    ctxs.push_back(std::make_unique<api::Context>(machine));

  // Per-request plans + operands, uploaded once up front: the timed
  // section is pure serving (solve + download), identical for both
  // passes.
  std::vector<std::shared_ptr<api::Plan>> plans;
  std::vector<api::DistHandle> hls, hbs;
  for (int i = 0; i < items; ++i) {
    const Req& q = reqs[static_cast<std::size_t>(i)];
    api::TrsmSpec spec;
    spec.force_algorithm = true;
    spec.algorithm = model::Algorithm::kIterative;
    auto plan = ctxs[static_cast<std::size_t>(q.tenant)]->plan(
        api::trsm_op(q.n, q.k, spec));
    const std::uint64_t seed = 700 + static_cast<std::uint64_t>(i);
    hls.push_back(ctxs[static_cast<std::size_t>(q.tenant)]->upload(
        la::make_lower_triangular(seed, q.n), plan->input_layout(0)));
    hbs.push_back(ctxs[static_cast<std::size_t>(q.tenant)]->upload(
        la::make_rhs(seed + 1000, q.n, q.k), plan->input_layout(1)));
    plans.push_back(std::move(plan));
  }

  const auto serve_serial = [&](std::vector<la::Matrix>* xs,
                                std::vector<sim::Cost>* costs,
                                std::vector<double>* criticals) {
    for (int i = 0; i < items; ++i) {
      const std::size_t u = static_cast<std::size_t>(i);
      const api::DistExecResult r = plans[u]->execute_dist(hls[u], hbs[u]);
      if (xs != nullptr)
        (*xs)[u] = ctxs[static_cast<std::size_t>(reqs[u].tenant)]->download(
            r.x);
      if (costs != nullptr) (*costs)[u] = r.algorithm_cost();
      if (criticals != nullptr) (*criticals)[u] = r.stats.critical_time;
    }
  };

  // Untimed warmup pass: first-touch allocation, code paths, and the
  // plan-cache state are identical ahead of both timed passes (each
  // request has its own L, so no diagonal-inverse reuse either way).
  serve_serial(nullptr, nullptr, nullptr);

  std::vector<la::Matrix> xs_serial(static_cast<std::size_t>(items));
  std::vector<sim::Cost> costs_serial(static_cast<std::size_t>(items));
  std::vector<double> crit_serial(static_cast<std::size_t>(items));
  const auto t0 = Clock::now();
  serve_serial(&xs_serial, &costs_serial, &crit_serial);
  const double wall_serial = ms_since(t0);

  std::vector<la::Matrix> xs_conc(static_cast<std::size_t>(items));
  std::vector<sim::Cost> costs_conc(static_cast<std::size_t>(items));
  std::vector<double> crit_conc(static_cast<std::size_t>(items));
  const auto t1 = Clock::now();
  api::StreamPool pool;
  std::vector<int> pool_tenant(static_cast<std::size_t>(tenants), -1);
  for (int t = 0; t < tenants; ++t)
    pool_tenant[static_cast<std::size_t>(t)] =
        pool.add_tenant(*ctxs[static_cast<std::size_t>(t)]);
  std::vector<int> req_of_id;
  for (int i = 0; i < items; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const int id = pool.submit(pool_tenant[static_cast<std::size_t>(
                                   reqs[u].tenant)],
                               plans[u], hls[u], hbs[u]);
    if (static_cast<std::size_t>(id) >= req_of_id.size())
      req_of_id.resize(static_cast<std::size_t>(id) + 1, -1);
    req_of_id[static_cast<std::size_t>(id)] = i;
  }
  for (;;) {
    const auto batch = pool.wait_some();
    if (batch.empty()) break;
    for (const auto& c : batch) {
      if (c.error) {
        try {
          std::rethrow_exception(c.error);
        } catch (const std::exception& e) {
          std::cerr << "STREAM FAULT: request " << c.id << ": " << e.what()
                    << "\n";
        }
        std::exit(1);
      }
      const std::size_t u =
          static_cast<std::size_t>(req_of_id[static_cast<std::size_t>(c.id)]);
      // Downloads of finished solutions overlap the still-running
      // streams — the serving pattern the tentpole buys.
      xs_conc[u] = ctxs[static_cast<std::size_t>(reqs[u].tenant)]->download(
          c.result.x);
      costs_conc[u] = c.result.algorithm_cost();
      crit_conc[u] = c.result.stats.critical_time;
    }
  }
  const double wall_conc = ms_since(t1);

  for (int i = 0; i < items; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    if (!xs_conc[u].equals(xs_serial[u])) {
      std::cerr << "STREAM MISMATCH: request " << i
                << " differs bitwise from the serial pass\n";
      std::exit(1);
    }
    if (costs_conc[u].msgs != costs_serial[u].msgs ||
        costs_conc[u].words != costs_serial[u].words ||
        costs_conc[u].flops != costs_serial[u].flops ||
        crit_conc[u] != crit_serial[u]) {
      std::cerr << "STREAM MODEL DRIFT: request " << i
                << " modeled cost differs between serial and concurrent "
                   "passes (per-run clocks must make them identical)\n";
      std::exit(1);
    }
  }

  records.push_back({"streams/mixed_tenant_serial", p, 96, 48, wall_serial,
                     double(items), costs_serial.front(),
                     crit_serial.front()});
  records.push_back({"streams/mixed_tenant", p, 96, 48, wall_conc,
                     double(items), costs_conc.front(), crit_conc.front()});
  const double rate_serial = 1e3 * items / wall_serial;
  const double rate_conc = 1e3 * items / wall_conc;
  std::cout << "streams/mixed_tenant: " << items << " solves, 4 tenants, "
            << pool.max_inflight() << " streams: " << wall_serial
            << " ms serial (" << rate_serial << " solves/s) -> " << wall_conc
            << " ms concurrent (" << rate_conc << " solves/s, "
            << rate_conc / rate_serial << "x)\n";
  return {wall_serial, wall_conc};
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_sim.json";
  int threads_override = 0;
  bool assert_scaling = false;
  bool assert_fusion = false;
  bool assert_streams = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      threads_override = i + 1 < argc ? std::atoi(argv[++i]) : 0;
      if (threads_override < 1) {
        std::cerr << "usage: bench_runner [output.json] [--threads N] "
                     "[--assert-scaling] [--assert-fusion] (N >= 1)\n";
        return 2;
      }
    } else if (arg == "--assert-scaling") {
      assert_scaling = true;
    } else if (arg == "--assert-fusion") {
      assert_fusion = true;
    } else if (arg == "--assert-streams") {
      assert_streams = true;
    } else {
      path = arg;
    }
  }
  if (threads_override > 0)
    la::kernel::ThreadPool::set_threads_for_testing(threads_override);
  const int pool_threads =
      la::kernel::ThreadPool::instance().size();
  la::kernel::ThreadPool::set_threads_for_testing(0);

  std::vector<Record> records;
  run_kernel_cases(records);
  const auto [st_1024, mt_1024] = run_kernel_mt_cases(records, pool_threads);
  run_mixed_cases(records);
  run_crossover_cases(records);
  std::vector<api::ExecResult> unfused;
  const double batch_wall = run_batch_case(records, /*pooled=*/true,
                                           &unfused);
  run_batch_case(records, /*pooled=*/false);
  const double fused_wall = run_fused_batch_case(records, unfused);
  run_resident_batch_case(records);
  run_program_case(records);
  run_program_opt_cases(records);
  run_oracle_cases(records);
  // Appended LAST so every pre-existing record keeps its position (and
  // its modeled fields byte-identical) in the committed JSON.
  const auto [streams_serial, streams_conc] = run_stream_cases(records);

  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i)
    append_json(out, records[i], i + 1 == records.size());
  out += "]\n";
  std::ofstream f(path);
  f << out;
  std::cout << "wrote " << records.size() << " records to " << path << "\n";

  if (assert_scaling && pool_threads > 1 && mt_1024 > st_1024 * 1.05) {
    std::cerr << "SCALING REGRESSION: kernel/gemm_mt at n=1024 took "
              << mt_1024 << " ms with " << pool_threads
              << " threads vs " << st_1024
              << " ms single-threaded (limit: 1.05x)\n";
    return 1;
  }
  if (assert_fusion && fused_wall > batch_wall * 1.05) {
    std::cerr << "FUSION REGRESSION: batch/it_trsm_32x_p64_fused took "
              << fused_wall << " ms vs " << batch_wall
              << " ms unfused (limit: 1.05x)\n";
    return 1;
  }
  // Concurrent streams must beat the serial loop in solves/sec by at
  // least 1.05x, i.e. finish the same mix in under wall/1.05.
  if (assert_streams && streams_conc * 1.05 > streams_serial) {
    std::cerr << "STREAMS REGRESSION: streams/mixed_tenant took "
              << streams_conc << " ms concurrent vs " << streams_serial
              << " ms serial (need >= 1.05x solves/sec)\n";
    return 1;
  }
  return 0;
}
