// Machine-readable perf tracking: runs the kernel-substrate and crossover
// bench cases plus the batched-solve scenario the zero-copy transport and
// persistent scheduler target, and writes BENCH_sim.json — one record per
// case with wall-clock milliseconds AND the modeled (S, W, F,
// critical-path time) of the same execution, so the wall-clock trajectory
// can be tracked across PRs while the modeled costs pin down that the
// simulation itself did not change.
//
//   ./bench_runner [output.json] [--threads N]
//
// --threads N overrides the kernel pool size for the multi-threaded
// cases (default: CATRSM_KERNEL_THREADS / hardware_concurrency). The
// plain kernel/* cases always run single-threaded so their trajectory
// stays comparable across machines; kernel/gemm_mt records the pooled
// run next to a same-shape single-threaded baseline, and the batch case
// runs once with the slab pool and once without, so both tentpole wins
// are committed numbers.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/catrsm.hpp"
#include "bench_util.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/kernel/kernel.hpp"
#include "la/kernel/pool.hpp"
#include "la/tri_inv.hpp"
#include "la/trsm.hpp"
#include "model/tuning.hpp"
#include "sim/slab.hpp"

namespace {

using namespace catrsm;
using la::index_t;
using Clock = std::chrono::steady_clock;

struct Record {
  std::string name;
  int p = 0;
  index_t n = 0;
  index_t k = 0;
  double wall_ms = 0.0;
  double iterations = 1.0;  // wall_ms is for ALL iterations
  sim::Cost modeled;        // zero for host-only kernel cases
  double critical_time = 0.0;
  double gflops = 0.0;       // kernel cases only: flops / wall-clock
  std::string backend;       // kernel cases only: dispatched micro-kernel
  int threads = 1;           // kernel pool size the case's la:: calls saw
};

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void append_json(std::string& out, const Record& r, bool last) {
  out += "  {\"name\": \"" + r.name + "\"";
  out += ", \"p\": " + std::to_string(r.p);
  out += ", \"n\": " + std::to_string(r.n);
  out += ", \"k\": " + std::to_string(r.k);
  out += ", \"iterations\": " + std::to_string(r.iterations);
  out += ", \"threads\": " + std::to_string(r.threads);
  out += ", \"wall_ms\": " + std::to_string(r.wall_ms);
  if (!r.backend.empty()) {
    out += ", \"gflops\": " + std::to_string(r.gflops);
    out += ", \"kernel_backend\": \"" + r.backend + "\"";
  }
  out += ", \"modeled\": {\"msgs\": " + std::to_string(r.modeled.msgs);
  out += ", \"words\": " + std::to_string(r.modeled.words);
  out += ", \"flops\": " + std::to_string(r.modeled.flops);
  out += ", \"critical_time\": " + std::to_string(r.critical_time) + "}}";
  out += last ? "\n" : ",\n";
}

/// E10-style local kernel substrate cases (no simulated machine). Each
/// case is one warmup run plus the median of 5 timed runs; `gflops` turns
/// the wall clock into a machine-readable flop rate so the perf trajectory
/// of the micro-kernel layer can be tracked across PRs. Forced to one
/// kernel thread: the single-core trajectory stays comparable across PRs
/// and machines (kernel/gemm_mt carries the scaling story).
void run_kernel_cases(std::vector<Record>& records) {
  la::kernel::ThreadPool::set_threads_for_testing(1);
  const std::string backend = la::kernel::backend_name();
  const auto push = [&](const char* name, index_t n, index_t k, double wall,
                        double flops) {
    Record r{name, 1, n,  k, wall, 1.0, {}, 0.0, flops / (wall * 1e6),
             backend, 1};
    records.push_back(std::move(r));
  };
  for (const index_t n : {64, 128, 256, 512}) {
    {
      const la::Matrix a = la::make_dense(1, n, n);
      const la::Matrix b = la::make_dense(2, n, n);
      la::Matrix c(n, n);
      const double wall = bench::median_wall_ms(
          5, [&] { la::gemm(1.0, a, b, 0.0, c); });
      push("kernel/gemm", n, n, wall, la::gemm_flops(n, n, n));
    }
    {
      const la::Matrix l = la::make_lower_triangular(3, n);
      const la::Matrix b = la::make_rhs(4, n, n);
      la::Matrix x = b;  // preallocated: the timed body re-copies the RHS
                         // (the solve is in-place) but never allocates
      const double wall = bench::median_wall_ms(5, [&] {
        x = b;
        la::trsm_left(la::Uplo::kLower, la::Diag::kNonUnit, l, x);
      });
      push("kernel/trsm", n, n, wall, la::trsm_flops(n, n));
    }
    {
      const la::Matrix l = la::make_lower_triangular(5, n);
      const double wall = bench::median_wall_ms(
          5, [&] { (void)la::tri_inv(la::Uplo::kLower, l); });
      push("kernel/tri_inv", n, 0, wall, la::tri_inv_flops(n));
    }
  }
  la::kernel::ThreadPool::set_threads_for_testing(0);
}

/// Multi-threaded scaling cases: the same GEMM shape through the kernel
/// pool at its configured size, next to a single-threaded run of the
/// identical shape, so the committed JSON carries the speedup (and the
/// `threads` field says what produced it).
void run_kernel_mt_cases(std::vector<Record>& records, int pool_threads) {
  const std::string backend = la::kernel::backend_name();
  for (const index_t n : {512, 1024}) {
    const la::Matrix a = la::make_dense(21, n, n);
    const la::Matrix b = la::make_dense(22, n, n);
    la::Matrix c(n, n);
    la::kernel::ThreadPool::set_threads_for_testing(1);
    const double wall_st = bench::median_wall_ms(
        5, [&] { la::gemm(1.0, a, b, 0.0, c); });
    la::kernel::ThreadPool::set_threads_for_testing(pool_threads);
    const double wall_mt = bench::median_wall_ms(
        5, [&] { la::gemm(1.0, a, b, 0.0, c); });
    la::kernel::ThreadPool::set_threads_for_testing(0);
    const double flops = la::gemm_flops(n, n, n);
    records.push_back({"kernel/gemm_st", 1, n, n, wall_st, 1.0, {}, 0.0,
                       flops / (wall_st * 1e6), backend, 1});
    records.push_back({"kernel/gemm_mt", 1, n, n, wall_mt, 1.0, {}, 0.0,
                       flops / (wall_mt * 1e6), backend, pool_threads});
    std::cout << "kernel/gemm_mt n=" << n << ": " << wall_st << " ms @1 -> "
              << wall_mt << " ms @" << pool_threads << " threads ("
              << wall_st / wall_mt << "x)\n";
  }
}

/// E11-style crossover cases: each (n, k) shape under every forced
/// algorithm, recording the modeled algorithm cost next to the wall clock.
void run_crossover_cases(std::vector<Record>& records) {
  const int p = 16;
  struct Shape {
    index_t n, k;
  };
  struct Algo {
    model::Algorithm a;
    const char* name;
  };
  api::Context ctx(p);
  for (const Shape s : {Shape{16, 1024}, Shape{64, 64}, Shape{256, 4}}) {
    const la::Matrix l = la::make_lower_triangular(1, s.n);
    const la::Matrix b = la::make_rhs(2, s.n, s.k);
    for (const Algo algo : {Algo{model::Algorithm::kIterative, "iterative"},
                            Algo{model::Algorithm::kRecursive, "recursive"},
                            Algo{model::Algorithm::kTrsm2D, "2d"}}) {
      api::TrsmSpec spec;
      spec.force_algorithm = true;
      spec.algorithm = algo.a;
      auto plan = ctx.plan(api::trsm_op(s.n, s.k, spec));
      const auto t0 = Clock::now();
      const api::ExecResult r = plan->execute(l, b);
      Record rec{"crossover/" + std::string(algo.name), p, s.n, s.k,
                 ms_since(t0), 1.0, r.algorithm_cost(),
                 r.stats.critical_time};
      records.push_back(rec);
    }
  }
}

/// The scenario the zero-copy buffers, persistent scheduler, and slab
/// pool target: one plan, 32 iterative-TRSM solves at p = 64, executed
/// as a batch — once with the slab pool recycling message storage across
/// runs, once with every payload freshly allocated, so the pooling win is
/// a committed number. Modeled cost is per solve and must be identical in
/// both records (allocation strategy cannot perturb the cost model).
void run_batch_case(std::vector<Record>& records, bool pooled) {
  const int p = 64;
  const index_t n = 96, k = 48;
  const int items = 32;
  sim::set_slab_pool_enabled(pooled);
  api::Context ctx(p);
  api::TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = model::Algorithm::kIterative;
  auto plan = ctx.plan(api::trsm_op(n, k, spec));
  const la::Matrix l = la::make_lower_triangular(11, n);
  std::vector<la::Matrix> bs;
  bs.reserve(items);
  for (int i = 0; i < items; ++i)
    bs.push_back(la::make_rhs(100 + static_cast<std::uint64_t>(i), n, k));

  const auto t0 = Clock::now();
  const std::vector<api::ExecResult> results = plan->execute_batch(l, bs);
  const double wall = ms_since(t0);
  const std::string name = pooled ? "batch/it_trsm_32x_p64"
                                  : "batch/it_trsm_32x_p64_nopool";
  records.push_back({name, p, n, k, wall, double(items),
                     results.front().algorithm_cost(),
                     results.front().stats.critical_time});
  std::cout << name << ": " << wall << " ms for " << items << " solves ("
            << wall / items << " ms/solve)\n";
  sim::set_slab_pool_enabled(true);
}

/// The resident-operand A/B of the same scenario: upload L ONCE, then 32
/// execute_dist calls (per-item B upload + X download included — that is
/// the serving traffic pattern), versus batch/it_trsm_32x_p64 which
/// re-scatters L, re-collects X, and re-checks the residual on every
/// execute. Modeled algorithm cost must be identical to the batch record
/// (same solver body); the wall-clock gap is the driver overhead the
/// resident path eliminates.
void run_resident_batch_case(std::vector<Record>& records) {
  const int p = 64;
  const index_t n = 96, k = 48;
  const int items = 32;
  api::Context ctx(p);
  api::TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = model::Algorithm::kIterative;
  auto plan = ctx.plan(api::trsm_op(n, k, spec));
  const la::Matrix l = la::make_lower_triangular(11, n);
  std::vector<la::Matrix> bs;
  bs.reserve(items);
  for (int i = 0; i < items; ++i)
    bs.push_back(la::make_rhs(100 + static_cast<std::uint64_t>(i), n, k));

  const auto t0 = Clock::now();
  const api::DistHandle hl = ctx.upload(l, plan->input_layout(0));
  sim::Cost modeled;
  double critical = 0.0;
  for (int i = 0; i < items; ++i) {
    const api::DistHandle hb =
        ctx.upload(bs[static_cast<std::size_t>(i)], plan->input_layout(1));
    const api::DistExecResult r = plan->execute_dist(hl, hb);
    (void)ctx.download(r.x);
    if (i == 0) {
      modeled = r.algorithm_cost();
      critical = r.stats.critical_time;
    }
  }
  const double wall = ms_since(t0);
  records.push_back({"resident/it_trsm_32x_p64", p, n, k, wall,
                     double(items), modeled, critical});
  std::cout << "resident/it_trsm_32x_p64: " << wall << " ms for " << items
            << " solves (" << wall / items << " ms/solve)\n";
}

/// The full SPD pipeline as a 3-op program (factor -> solve -> reversed
/// solve) in one simulated run with no intermediate collects.
void run_program_case(std::vector<Record>& records) {
  const int p = 16;
  const index_t n = 128, k = 32;
  api::Context ctx(p);
  const la::Matrix a = la::make_spd(41, n);
  const la::Matrix b = la::make_rhs(42, n, k);
  auto plan = ctx.plan(api::cholesky_solve_op(n, k));
  const auto t0 = Clock::now();
  const api::ExecResult r = plan->execute(a, b);
  records.push_back({"program/spd_pipeline", p, n, k, ms_since(t0), 1.0,
                     r.algorithm_cost(), r.stats.critical_time});
  std::cout << "program/spd_pipeline: " << records.back().wall_ms
            << " ms (residual " << r.residual << ")\n";
}

/// Oracle-overhead A/B: the same solve with the correctness oracle
/// (collective matching; the deadlock detector is always armed) off and
/// on. The oracle observes, never participates, so the two records'
/// modeled S/W/F and critical time must be byte-identical in the
/// committed JSON — a divergence is a regression in that zero-cost
/// guarantee. The wall-clock delta is the oracle's real overhead.
void run_oracle_cases(std::vector<Record>& records) {
  const int p = 16;
  const index_t n = 128, k = 32;
  const la::Matrix l = la::make_lower_triangular(51, n);
  const la::Matrix b = la::make_rhs(52, n, k);
  for (const bool checked : {false, true}) {
    api::Context ctx(p);
    ctx.machine().set_collective_checking(checked);
    api::TrsmSpec spec;
    spec.force_algorithm = true;
    spec.algorithm = model::Algorithm::kIterative;
    auto plan = ctx.plan(api::trsm_op(n, k, spec));
    const auto t0 = Clock::now();
    const api::ExecResult r = plan->execute(l, b);
    records.push_back({checked ? "oracle/it_trsm_p16_check"
                               : "oracle/it_trsm_p16_nocheck",
                       p, n, k, ms_since(t0), 1.0, r.algorithm_cost(),
                       r.stats.critical_time});
    std::cout << records.back().name << ": " << records.back().wall_ms
              << " ms\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "BENCH_sim.json";
  int threads_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      threads_override = i + 1 < argc ? std::atoi(argv[++i]) : 0;
      if (threads_override < 1) {
        std::cerr << "usage: bench_runner [output.json] [--threads N] "
                     "(N >= 1)\n";
        return 2;
      }
    } else {
      path = arg;
    }
  }
  if (threads_override > 0)
    la::kernel::ThreadPool::set_threads_for_testing(threads_override);
  const int pool_threads =
      la::kernel::ThreadPool::instance().size();
  la::kernel::ThreadPool::set_threads_for_testing(0);

  std::vector<Record> records;
  run_kernel_cases(records);
  run_kernel_mt_cases(records, pool_threads);
  run_crossover_cases(records);
  run_batch_case(records, /*pooled=*/true);
  run_batch_case(records, /*pooled=*/false);
  run_resident_batch_case(records);
  run_program_case(records);
  run_oracle_cases(records);

  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i)
    append_json(out, records[i], i + 1 == records.size());
  out += "]\n";
  std::ofstream f(path);
  f << out;
  std::cout << "wrote " << records.size() << " records to " << path << "\n";
  return 0;
}
