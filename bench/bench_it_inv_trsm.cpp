// E5 — Sections VI-VII: iterative TRSM with selective inversion, phase by
// phase.
//
// Measures (a) the Diagonal-Inverter alone and (b) the full solver, so the
// solve+update remainder can be compared against the Section VII component
// table:
//   inversion: S = O(log^2 p)
//   solve:     S = (n/n0) log p,  W = (n/n0)(n0^2/p1^2 + 4 n0 k/(p1 p2))
//   update:    S = ((n-n0)/n0) log p,  W ~ n^2/p1^2 + 4 (n-n0) k/(p1 p2)
// and sweeps the grid shape to show the p1/p2 trade-off.

#include "bench_util.hpp"

#include <cmath>

#include "model/costs.hpp"
#include "trsm/it_inv_trsm.hpp"

namespace {

using namespace catrsm;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

struct Shape {
  index_t n, k;
  int p1, p2, nblocks;
};

RunStats run_full(const Shape& s) {
  const int p = s.p1 * s.p1 * s.p2;
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = trsm::it_inv_l_face(world, s.p1, s.p2);
    auto ld = dist::cyclic_on(lface, s.n, s.n);
    DistMatrix dl(ld, r.id());
    if (dl.participates())
      dl.fill([&](index_t i, index_t j) {
        return la::tri_entry(1, i, j, s.n);
      });
    auto bd = trsm::it_inv_b_dist(world, s.p1, s.p2, s.n, s.k);
    DistMatrix db(bd, r.id());
    if (db.participates())
      db.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    trsm::ItInvOptions opts;
    opts.nblocks = s.nblocks;
    (void)trsm::it_inv_trsm(dl, db, world, s.p1, s.p2, opts);
  });
}

}  // namespace

int main() {
  bench::print_header(
      "E5: iterative TRSM phase costs (paper Sections VI-VII)",
      "per-phase S/W measured via phase-scoped accounting vs the Section "
      "VII component model (T = T_Inv + T_Solve + T_Upd)");

  {
    Table table({"n", "k", "grid", "n/n0", "S inv", "S inv mdl", "S slv",
                 "S slv mdl", "S upd", "S upd mdl", "W total", "W model",
                 "F total", "F model"});
    for (const Shape& s : {Shape{128, 32, 2, 2, 4}, Shape{128, 32, 2, 2, 8},
                           Shape{128, 32, 2, 4, 4}, Shape{128, 32, 4, 1, 4},
                           Shape{192, 48, 2, 4, 6}}) {
      const RunStats full = run_full(s);
      const double n0 = static_cast<double>(s.n) / s.nblocks;
      const model::ItInvBreakdown br = model::it_inv_breakdown(
          s.n, s.k, n0, s.p1, s.p2, std::cbrt(s.p1 * s.p1 * s.p2),
          std::cbrt(s.p1 * s.p1 * s.p2));
      auto phase = [&](const char* name) -> sim::Cost {
        const auto it = full.phase_max.find(name);
        return it == full.phase_max.end() ? sim::Cost{} : it->second;
      };
      table.row()
          .add(s.n)
          .add(s.k)
          .add(std::to_string(s.p1) + "x" + std::to_string(s.p1) + "x" +
               std::to_string(s.p2))
          .add(s.nblocks)
          .add(phase("inversion").msgs)
          .add(br.inversion.msgs)
          .add(phase("solve").msgs)
          .add(br.solve.msgs)
          .add(phase("update").msgs)
          .add(br.update.msgs)
          .add(full.max_words())
          .add(br.total().words)
          .add(full.max_flops())
          .add(br.total().flops);
    }
    table.print();
  }

  std::cout << "\nLatency scaling with p at fixed shape (the headline "
               "S = (n/n0) log p + log^2 p):\n";
  {
    Table table({"p", "grid", "S meas", "model (n/n0)logp+log^2p"});
    const index_t n = 128, k = 32;
    for (const auto& [p1, p2] : std::vector<std::pair<int, int>>{
             {1, 4}, {2, 1}, {2, 4}, {2, 16}, {4, 4}}) {
      const int p = p1 * p1 * p2;
      const int nblocks = 4;
      const RunStats stats = run_full({n, k, p1, p2, nblocks});
      const double lg = model::log2p(p);
      table.row()
          .add(p)
          .add(std::to_string(p1) + "x" + std::to_string(p1) + "x" +
               std::to_string(p2))
          .add(stats.max_msgs())
          .add(nblocks * lg + lg * lg);
    }
    table.print();
  }
  return 0;
}
