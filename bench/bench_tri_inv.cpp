// E4 — Section V: recursive triangular inversion cost analysis.
//
// The paper's first-of-its-kind analysis gives
//   W = nu (n^2/(8 p1^2) + n^2/(2 p1 p2)),   F = nu n^3/(8p),
//   S = O(log^2 p)   with nu = 2^{1/3}/(2^{1/3}-1).
// This bench measures all three across p and prints the log^2 p latency
// envelope — the property that makes low-synchronization TRSM possible.

#include "bench_util.hpp"

#include <cmath>

#include "model/costs.hpp"
#include "trsm/tri_inv_dist.hpp"

namespace {

using namespace catrsm;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

RunStats run_inv(index_t n, int p) {
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(p);
    Face2D face(world, pr, pc);
    auto ld = dist::cyclic_on(face, n, n);
    DistMatrix dl(ld, r.id());
    dl.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    trsm::TriInvOptions opts;
    opts.base_size = 8;
    (void)trsm::tri_inv_dist(dl, world, opts);
  });
}

}  // namespace

int main() {
  bench::print_header(
      "E4: recursive triangular inversion (paper Section V)",
      "S should track log^2 p (not poly(p)); W and F the nu-constant forms");

  const index_t n = 128;
  Table table({"n", "p", "S meas", "log^2 p", "S/log^2p", "W meas", "W model",
               "F meas", "F model"});
  for (const int p : {1, 4, 16, 64}) {
    const RunStats stats = run_inv(n, p);
    // Model grid: the inversion's MMs pick their own (p1, p2); report the
    // paper's formula at the balanced choice p1 = p^{1/3}, p2 = p^{1/3}.
    const double p1 = std::cbrt(static_cast<double>(p));
    const sim::Cost m = model::tri_inv_cost(n, p1, static_cast<double>(p) /
                                                       (p1 * p1));
    const double lg2 = model::log2p(p) * model::log2p(p);
    table.row()
        .add(n)
        .add(p)
        .add(stats.max_msgs())
        .add(lg2)
        .add(bench::ratio(stats.max_msgs(), lg2))
        .add(stats.max_words())
        .add(m.words)
        .add(stats.max_flops())
        .add(m.flops);
  }
  table.print();

  std::cout << "\nScaling check: S(64)/S(4) vs (log^2 64)/(log^2 4) = 9, "
               "vs linear-in-p = 16.\n";
  const double s4 = run_inv(n, 4).max_msgs();
  const double s64 = run_inv(n, 64).max_msgs();
  std::cout << "measured S(64)/S(4) = " << Table::format_double(s64 / s4)
            << "  (polylog growth confirmed when well below 16)\n";
  return 0;
}
