#pragma once
// Shared helpers for the paper-reproduction bench binaries: run a
// distributed algorithm on the simulated machine and report measured
// (S, W, F) next to the paper's model.

#include <functional>
#include <iostream>
#include <string>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

namespace catrsm::bench {

/// Run `body` on a fresh machine of p ranks and return the stats.
inline sim::RunStats run_spmd(int p,
                              const std::function<void(sim::Rank&)>& body) {
  sim::Machine machine(p);
  return machine.run(body);
}

/// Ratio formatted as "x1.23" (or "-" when the denominator is zero).
inline std::string ratio(double measured, double model) {
  if (model == 0.0) return "-";
  return "x" + Table::format_double(measured / model);
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "\n==== " << title << " ====\n" << what << "\n\n";
}

}  // namespace catrsm::bench
