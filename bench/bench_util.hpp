#pragma once
// Shared helpers for the paper-reproduction bench binaries: run a
// distributed algorithm on the simulated machine and report measured
// (S, W, F) next to the paper's model.

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

namespace catrsm::bench {

/// Median wall-clock milliseconds over `reps` timed runs of `body`, after
/// `warmups` untimed runs (excludes first-touch page faults, cold caches,
/// and — with two or more warmups — the frequency ramp on machines whose
/// governor reacts to the first burst; the median shrugs off scheduler
/// noise on shared CI boxes).
template <typename F>
double median_wall_ms(int warmups, int reps, F&& body) {
  using Clock = std::chrono::steady_clock;
  for (int w = 0; w < (warmups > 0 ? warmups : 1); ++w) body();
  std::vector<double> ms(static_cast<std::size_t>(reps > 0 ? reps : 1));
  for (double& t : ms) {
    const auto t0 = Clock::now();
    body();
    t = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }
  std::nth_element(ms.begin(), ms.begin() + ms.size() / 2, ms.end());
  return ms[ms.size() / 2];
}

/// One warmup, median of `reps` — the historical default.
template <typename F>
double median_wall_ms(int reps, F&& body) {
  return median_wall_ms(1, reps, static_cast<F&&>(body));
}

/// Run `body` on a fresh machine of p ranks and return the stats.
inline sim::RunStats run_spmd(int p,
                              const std::function<void(sim::Rank&)>& body) {
  sim::Machine machine(p);
  return machine.run(body);
}

/// Ratio formatted as "x1.23" (or "-" when the denominator is zero).
inline std::string ratio(double measured, double model) {
  if (model == 0.0) return "-";
  return "x" + Table::format_double(measured / model);
}

inline void print_header(const std::string& title, const std::string& what) {
  std::cout << "\n==== " << title << " ====\n" << what << "\n\n";
}

}  // namespace catrsm::bench
