// E3 — Section IV: recursive TRSM costs by regime.
//
// Runs Rec-TRSM across processor counts in each of the three regimes and
// prints measured S/W/F next to the paper's asymptotic forms:
//   1D: O(alpha log p + beta n^2         + gamma n^2 k/p)
//   2D: O(alpha sqrt p + beta nk log p/sqrt p + gamma n^2 k/p)
//   3D: O(alpha (np/k)^{2/3} log p + beta (n^2k/p)^{2/3} + gamma n^2 k/p)
//
// Absolute constants differ (the model keeps only leading terms); the
// *scaling* with p — the paper's claim — is what the ratios exhibit.

#include "bench_util.hpp"

#include "model/costs.hpp"
#include "model/tuning.hpp"
#include "trsm/rec_trsm.hpp"

namespace {

using namespace catrsm;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

RunStats run_rec(index_t n, index_t k, int p) {
  const model::Config cfg =
      model::configure_forced(n, k, p, model::Algorithm::kRecursive);
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, cfg.pr, cfg.pc);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    DistMatrix db(bd, r.id());
    db.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    (void)trsm::rec_trsm(dl, db, world);
  });
}

void sweep(const char* title, index_t n, index_t k, std::vector<int> ps) {
  std::cout << "\n-- " << title << " (n=" << n << ", k=" << k << ") --\n";
  Table table({"p", "grid", "regime", "S meas", "S model", "W meas",
               "W model", "F meas", "F ideal"});
  for (const int p : ps) {
    const model::Config cfg =
        model::configure_forced(n, k, p, model::Algorithm::kRecursive);
    const sim::Cost m = model::rec_trsm_cost(n, k, p);
    const RunStats stats = run_rec(n, k, p);
    table.row()
        .add(p)
        .add(std::to_string(cfg.pr) + "x" + std::to_string(cfg.pc))
        .add(model::regime_name(cfg.regime))
        .add(stats.max_msgs())
        .add(m.msgs)
        .add(stats.max_words())
        .add(m.words)
        .add(stats.max_flops())
        .add(static_cast<double>(n) * n * k / p);
  }
  table.print();
}

}  // namespace

int main() {
  bench::print_header("E3: recursive TRSM by regime (paper Section IV-A)",
                      "measured per-rank maxima vs the paper's asymptotic "
                      "cost forms");

  sweep("two large dimensions: n >> k sqrt(p)", 256, 4, {1, 4, 16, 64});
  sweep("three large dimensions: n ~ k", 96, 96, {1, 4, 16, 64});
  sweep("one large dimension: n < k/p", 16, 2048, {4, 16, 64});
  return 0;
}
