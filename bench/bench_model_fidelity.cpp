// E13 — model fidelity: does the a-priori decision procedure predict the
// machine? For several (alpha, beta, gamma) regimes — latency-bound,
// bandwidth-bound, flop-bound — compare three times per algorithm:
//   (a) the virtual-clock critical path measured by the simulator,
//   (b) alpha*S + beta*W + gamma*F of the *measured* max-per-rank counters,
//   (c) the closed-form model prediction used by configure().
// (a) vs (b) validates the simulator's internal consistency (overlap makes
// (a) <= (b)); (b) vs (c) validates the paper's formulas.

#include "bench_util.hpp"

#include "api/catrsm.hpp"
#include "model/tuning.hpp"

namespace {
using namespace catrsm;
using la::index_t;
}

int main() {
  bench::print_header(
      "E13: model fidelity across machine parameter regimes",
      "critical path (measured) vs alpha-beta-gamma of measured counters "
      "vs the closed-form prediction");

  const index_t n = 128, k = 32;
  const int p = 16;
  const la::Matrix l = la::make_lower_triangular(1, n);
  const la::Matrix b = la::make_rhs(2, n, k);

  struct Regime {
    const char* name;
    sim::MachineParams mp;
  };
  const std::vector<Regime> regimes = {
      {"latency-bound (alpha huge)", {1e-3, 1e-9, 1e-10}},
      {"bandwidth-bound (beta huge)", {1e-6, 1e-6, 1e-10}},
      {"flop-bound (gamma huge)", {1e-6, 1e-9, 1e-7}},
      {"balanced commodity", {1e-6, 1e-9, 2.5e-10}},
  };

  for (const Regime& rg : regimes) {
    std::cout << "\n-- " << rg.name << " --\n";
    Table table({"algorithm", "critical path (s)", "a*S+b*W+g*F (s)",
                 "model predicted (s)", "meas/model"});
    api::Context ctx(p, rg.mp);
    for (const model::Algorithm a :
         {model::Algorithm::kIterative, model::Algorithm::kRecursive,
          model::Algorithm::kTrsm2D}) {
      api::TrsmSpec spec;
      spec.force_algorithm = true;
      spec.algorithm = a;
      const api::ExecResult r =
          ctx.plan(api::trsm_op(n, k, spec))->execute(l, b);
      const sim::Cost meas = r.algorithm_cost();
      const double counters_time = meas.time(rg.mp);
      const double predicted = r.config.predicted.time(rg.mp);
      table.row()
          .add(model::algorithm_name(a))
          .add(r.stats.critical_time)
          .add(counters_time)
          .add(predicted)
          .add(bench::ratio(counters_time, predicted));
    }
    table.print();
  }
  std::cout
      << "\nReading: critical path <= counter time (per-rank counters "
         "ignore overlap across ranks); counter time tracks the prediction "
         "within small constant factors in every regime — the paper's "
         "'determine optimal block sizes and processor grids a priori' "
         "claim, demonstrated. (The driver's critical path also includes "
         "input fill and output gather, so in flop-light regimes it can "
         "slightly exceed the algorithm-only counter time.)\n"
         "Known exception at toy scale: rec-trsm's bandwidth prediction "
         "keeps only the asymptotic leading term and drops the base-case "
         "beta*n0^2 allgather, which dominates at n/sqrt(p) this small "
         "(see E3) — its measured/model W ratio shrinks as n grows.\n";
  return 0;
}
