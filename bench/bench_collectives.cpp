// E1 — Section II-C1: measured collective costs vs the paper's table.
//
// For each collective and several group sizes, runs the real implementation
// on the simulated machine and prints measured per-rank S and W next to
// the closed-form entries:
//   allgather / scatter / gather:  alpha log p + beta n
//   reduce-scatter:                alpha log p + (beta + gamma) n
//   bcast:                         alpha 2 log p + beta 2n
//   allreduce / reduce:            alpha 2 log p + (2 beta + gamma) n
//   all-to-all:                    alpha log p + beta (n/2) log p

#include "bench_util.hpp"

#include "coll/alltoall.hpp"
#include "coll/collectives.hpp"
#include "model/costs.hpp"

namespace {

using namespace catrsm;
using coll::Buf;
using coll::Counts;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

struct Entry {
  const char* name;
  std::function<void(const Comm&, std::size_t)> run;
  std::function<sim::Cost(double, double)> model;
};

}  // namespace

int main() {
  bench::print_header("E1: collective cost signatures (paper Section II-C1)",
                      "measured max-per-rank S and W vs the model; n = words "
                      "of payload");

  const std::vector<Entry> entries = {
      {"allgather",
       [](const Comm& c, std::size_t n) {
         Buf mine(n / static_cast<std::size_t>(c.size()), 1.0);
         (void)coll::allgather_equal(c, mine);
       },
       model::allgather_cost},
      {"reduce-scatter",
       [](const Comm& c, std::size_t n) {
         Buf full(n, 1.0);
         (void)coll::reduce_scatter(c, full,
                                    coll::even_counts(n, c.size()));
       },
       model::reduce_scatter_cost},
      {"scatter",
       [](const Comm& c, std::size_t n) {
         Buf all;
         if (c.rank() == 0) all.assign(n, 1.0);
         (void)coll::scatter(c, 0, all, coll::even_counts(n, c.size()));
       },
       model::scatter_cost},
      {"gather",
       [](const Comm& c, std::size_t n) {
         const Counts counts = coll::even_counts(n, c.size());
         Buf mine(counts[static_cast<std::size_t>(c.rank())], 1.0);
         (void)coll::gather(c, 0, mine, counts);
       },
       model::gather_cost},
      {"bcast",
       [](const Comm& c, std::size_t n) {
         Buf data;
         if (c.rank() == 0) data.assign(n, 1.0);
         (void)coll::bcast(c, 0, data, n);
       },
       model::bcast_cost},
      {"allreduce",
       [](const Comm& c, std::size_t n) {
         Buf full(n, 1.0);
         (void)coll::allreduce(c, full);
       },
       model::allreduction_cost},
      {"reduce",
       [](const Comm& c, std::size_t n) {
         Buf full(n, 1.0);
         (void)coll::reduce(c, 0, full);
       },
       model::reduction_cost},
      {"all-to-all",
       [](const Comm& c, std::size_t n) {
         std::vector<Buf> to_send(static_cast<std::size_t>(c.size()));
         for (auto& b : to_send)
           b.assign(n / static_cast<std::size_t>(c.size()), 1.0);
         (void)coll::alltoallv(c, std::move(to_send));
       },
       model::alltoall_cost},
  };

  Table table({"collective", "p", "n", "S meas", "S model", "W meas",
               "W model", "W ratio"});
  for (const Entry& e : entries) {
    for (int p : {4, 16, 64}) {
      const std::size_t n = 4096;
      const RunStats stats = bench::run_spmd(p, [&](Rank& r) {
        Comm world = Comm::world(r);
        e.run(world, n);
      });
      const sim::Cost m = e.model(static_cast<double>(n), p);
      table.row()
          .add(e.name)
          .add(p)
          .add(static_cast<long long>(n))
          .add(stats.max_msgs())
          .add(m.msgs)
          .add(stats.max_words())
          .add(m.words)
          .add(bench::ratio(stats.max_words(), m.words));
    }
  }
  table.print();
  std::cout << "\nNote: all-to-all W includes the Bruck routing headers "
               "(3 words per in-flight block), which is why its ratio sits "
               "slightly above 1.\n";
  return 0;
}
