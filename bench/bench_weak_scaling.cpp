// E12 — weak scaling: grow the machine and the problem together, keeping
// the per-rank flop volume (n^2 k / p) constant, and watch the per-rank
// communication. For the iterative algorithm the paper predicts per-rank
// W ~ (n^2 k / p)^{2/3} — constant under this scaling in the 3D regime —
// while S grows only polylogarithmically; the recursive baseline's S grows
// like (np/k)^{2/3} log p ~ p^{2/3} at fixed n/k.

#include "bench_util.hpp"

#include <cmath>

#include "model/tuning.hpp"
#include "trsm/it_inv_trsm.hpp"
#include "trsm/rec_trsm.hpp"

namespace {

using namespace catrsm;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

RunStats run_it(index_t n, index_t k, int p1, int p2) {
  return bench::run_spmd(p1 * p1 * p2, [&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = trsm::it_inv_l_face(world, p1, p2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates())
      dl.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    auto bd = trsm::it_inv_b_dist(world, p1, p2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates())
      db.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    (void)trsm::it_inv_trsm(dl, db, world, p1, p2);
  });
}

RunStats run_rec(index_t n, index_t k, int p) {
  const model::Config cfg =
      model::configure_forced(n, k, p, model::Algorithm::kRecursive);
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, cfg.pr, cfg.pc);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    DistMatrix db(bd, r.id());
    db.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    (void)trsm::rec_trsm(dl, db, world);
  });
}

}  // namespace

int main() {
  bench::print_header(
      "E12: weak scaling (constant n^2 k / p per rank, n/k fixed at 4)",
      "per-rank S and W as the machine and problem grow together");

  // n^2 k = c * p with n = 4k: 16 k^3 = c p, so k ~ (c p / 16)^{1/3}.
  struct Point {
    index_t n, k;
    int p1, p2;
  };
  // Per-rank flops held at ~2^21: (n, k) chosen so n^2 k / p is constant.
  const std::vector<Point> points = {
      {64, 16, 1, 1},     // p = 1,  n^2 k / p = 2^16
      {102, 26, 2, 1},    // p = 4   (~2^16 per rank)
      {161, 40, 2, 4},    // p = 16
      {256, 64, 4, 4},    // p = 64
  };

  Table table({"p", "n", "k", "S it", "W it", "S rec", "W rec",
               "F/rank it", "(n^2k/p)^{2/3}"});
  for (const Point& pt : points) {
    const int p = pt.p1 * pt.p1 * pt.p2;
    const RunStats it = run_it(pt.n, pt.k, pt.p1, pt.p2);
    const RunStats rec = run_rec(pt.n, pt.k, p);
    const double wref = std::pow(
        static_cast<double>(pt.n) * pt.n * pt.k / p, 2.0 / 3.0);
    table.row()
        .add(p)
        .add(pt.n)
        .add(pt.k)
        .add(it.max_msgs())
        .add(it.max_words())
        .add(rec.max_msgs())
        .add(rec.max_words())
        .add(it.max_flops())
        .add(wref);
  }
  table.print();
  std::cout << "\nReading: per-rank flops stay ~constant by construction; "
               "the iterative method's W tracks the (n^2k/p)^{2/3} "
               "communication-optimal envelope and its S grows slowly, "
               "while the recursive baseline's S inflates with p — weak "
               "scalability is where communication-avoidance pays.\n";
  return 0;
}
