// E10 — local kernel substrate throughput (google-benchmark).
//
// The gamma term of the execution model assumes the local kernels are not
// pathological; this micro-bench documents their throughput (gemm, trsm,
// trmm, triangular inversion) across sizes.

#include <benchmark/benchmark.h>

#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/tri_inv.hpp"
#include "la/trmm.hpp"
#include "la/trsm.hpp"

namespace {

using namespace catrsm::la;

void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  const Matrix a = make_dense(1, n, n);
  const Matrix b = make_dense(2, n, n);
  Matrix c(n, n);
  for (auto _ : state) {
    gemm(1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.ptr());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_TrsmLower(benchmark::State& state) {
  const index_t n = state.range(0);
  const Matrix l = make_lower_triangular(3, n);
  const Matrix b = make_rhs(4, n, n);
  for (auto _ : state) {
    Matrix x = b;
    trsm_left(Uplo::kLower, Diag::kNonUnit, l, x);
    benchmark::DoNotOptimize(x.ptr());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_TrsmLower)->Arg(64)->Arg(128)->Arg(256);

void BM_Trmm(benchmark::State& state) {
  const index_t n = state.range(0);
  const Matrix l = make_lower_triangular(5, n);
  const Matrix b = make_rhs(6, n, n);
  for (auto _ : state) {
    Matrix c = b;
    trmm_left(Uplo::kLower, Diag::kNonUnit, l, c);
    benchmark::DoNotOptimize(c.ptr());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n));
}
BENCHMARK(BM_Trmm)->Arg(64)->Arg(128)->Arg(256);

void BM_TriInv(benchmark::State& state) {
  const index_t n = state.range(0);
  const Matrix l = make_lower_triangular(7, n);
  for (auto _ : state) {
    Matrix inv = tri_inv(Uplo::kLower, l);
    benchmark::DoNotOptimize(inv.ptr());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n / 3));
}
BENCHMARK(BM_TriInv)->Arg(64)->Arg(128)->Arg(256);

void BM_Cholesky(benchmark::State& state) {
  const index_t n = state.range(0);
  const Matrix a = make_spd(8, n);
  for (auto _ : state) {
    Matrix l = cholesky(a);
    benchmark::DoNotOptimize(l.ptr());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(n * n * n / 3));
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
