// E6 — Section VIII: the three tuning-parameter tables.
//
// For each regime, prints the paper's asymptotically optimal parameters
// (p1, p2, n0, r1, r2) evaluated at concrete (n, k, p), the integer
// realization the library actually runs, and the resulting predicted cost
// T_IT for the tuned configuration.

#include "bench_util.hpp"

#include <cmath>

#include "model/costs.hpp"
#include "model/tuning.hpp"

namespace {
using namespace catrsm;
}

int main() {
  bench::print_header("E6: Section VIII tuning tables",
                      "asymptotic parameters -> integer realization -> "
                      "predicted cost");

  const double p = 4096;
  struct Case {
    const char* label;
    double n, k;
  };
  const std::vector<Case> cases = {
      {"1D: n < 4k/p", 64, 1 << 22},
      {"2D: n > 4k sqrt(p)", 1 << 22, 64},
      {"3D: in between", 1 << 16, 1 << 12},
  };

  Table table({"case", "regime", "p1*", "p2*", "n0*", "r1*", "r2*",
               "int p1xp1xp2", "nblocks", "S pred", "W pred", "F pred"});
  for (const Case& c : cases) {
    const model::Tuning t = model::tune(c.n, c.k, p);
    const model::Config cfg =
        model::configure_forced(static_cast<long long>(c.n),
                                static_cast<long long>(c.k),
                                static_cast<int>(p),
                                model::Algorithm::kIterative);
    table.row()
        .add(c.label)
        .add(model::regime_name(t.regime))
        .add(t.p1)
        .add(t.p2)
        .add(t.n0)
        .add(t.r1)
        .add(t.r2)
        .add(std::to_string(cfg.p1) + "x" + std::to_string(cfg.p1) + "x" +
             std::to_string(cfg.p2))
        .add(cfg.nblocks)
        .add(cfg.predicted.msgs)
        .add(cfg.predicted.words)
        .add(cfg.predicted.flops);
  }
  table.print();

  std::cout << "\nTuned total costs vs the Section VIII closed forms:\n";
  Table costs({"case", "T_IT S", "closed-form S", "T_IT W", "closed-form W"});
  for (const Case& c : cases) {
    const sim::Cost t = model::it_inv_trsm_cost(c.n, c.k, p);
    const double lg = model::log2p(p);
    double s_closed = 0, w_closed = 0;
    switch (model::classify(c.n, c.k, p)) {
      case model::Regime::k1D:
        s_closed = lg * lg + lg;
        w_closed = c.n * c.n;
        break;
      case model::Regime::k2D:
        s_closed = lg * lg +
                   std::pow(c.n / c.k, 0.75) * std::pow(p, -0.125) * lg;
        w_closed = c.n * c.k / std::sqrt(p);
        break;
      case model::Regime::k3D:
        s_closed = lg * lg + std::sqrt(c.n / c.k) * lg;
        w_closed = std::pow(c.n * c.n * c.k / p, 2.0 / 3.0);
        break;
    }
    costs.row()
        .add(c.label)
        .add(t.msgs)
        .add(s_closed)
        .add(t.words)
        .add(w_closed);
  }
  costs.print();
  return 0;
}
