// E11 — algorithm crossover sweep.
//
// The practical payoff of the paper's cost analysis is an a-priori
// decision procedure: given (n, k, p, alpha, beta, gamma), pick the
// algorithm and grid before touching data. This bench sweeps the n/k
// ratio at fixed p, printing the model's pick and the *measured* winner
// (by critical-path time) among {iterative, recursive, 2D fan-out}, so
// the crossover locations can be compared.

#include "bench_util.hpp"

#include "api/catrsm.hpp"
#include "model/tuning.hpp"

namespace {

using namespace catrsm;
using la::index_t;

struct Measured {
  double time = 0.0;
  double s = 0.0;
};

Measured run_algo(api::Context& ctx, const la::Matrix& l, const la::Matrix& b,
                  model::Algorithm a) {
  api::TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = a;
  const api::ExecResult r =
      ctx.plan(api::trsm_op(l.rows(), b.cols(), spec))->execute(l, b);
  // Score on the solve itself (excludes the driver's output gather).
  const sim::Cost c = r.algorithm_cost();
  return {c.time(ctx.params()), c.msgs};
}

}  // namespace

int main() {
  bench::print_header(
      "E11: algorithm crossover sweep (fixed p, varying n/k)",
      "model pick vs measured winner by alpha-beta-gamma critical path");

  const int p = 16;
  Table table({"n", "k", "regime", "t iter (us)", "t rec (us)", "t 2d (us)",
               "S iter", "S rec", "measured winner"});
  struct Shape {
    index_t n, k;
  };
  for (const Shape s : {Shape{16, 1024}, Shape{32, 256}, Shape{64, 64},
                        Shape{128, 32}, Shape{192, 12}, Shape{256, 4}}) {
    const la::Matrix l = la::make_lower_triangular(1, s.n);
    const la::Matrix b = la::make_rhs(2, s.n, s.k);
    api::Context ctx(p);
    const Measured mit = run_algo(ctx, l, b, model::Algorithm::kIterative);
    const Measured mrec = run_algo(ctx, l, b, model::Algorithm::kRecursive);
    const Measured m2d = run_algo(ctx, l, b, model::Algorithm::kTrsm2D);
    const char* winner = mit.time <= mrec.time && mit.time <= m2d.time
                             ? "iterative"
                         : mrec.time <= m2d.time ? "recursive"
                                                 : "2d fan-out";
    table.row()
        .add(s.n)
        .add(s.k)
        .add(model::regime_name(model::classify(
            static_cast<double>(s.n), static_cast<double>(s.k), p)))
        .add(mit.time * 1e6)
        .add(mrec.time * 1e6)
        .add(m2d.time * 1e6)
        .add(mit.s)
        .add(mrec.s)
        .add(winner);
  }
  table.print();
  std::cout << "\nExpected: the iterative method wins across the 3D band "
               "and holds its own elsewhere at this scale; the recursive "
               "method is competitive only when it barely recurses (tiny "
               "n or huge k).\n";
  return 0;
}
