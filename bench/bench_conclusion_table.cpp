// E7 — the HEADLINE: the paper's Section IX conclusion table.
//
//                         S                    W              F
//  1D  standard       log p                 n^2            n^2 k/p
//      new method     log^2 p               n^2            n^2 k/p
//  2D  standard       sqrt(p) log p         nk/sqrt p      n^2 k/p
//      new method     log^2 p + ...         nk/sqrt p      n^2 k/p
//  3D  standard       (np/k)^{2/3} log p    (n^2k/p)^{2/3} n^2 k/p
//      new method     log^2 p + sqrt(n/k) log p  (same)    2 n^2 k/p
//
// Part 1 evaluates the model at cluster scale (p = 4096) — the regime the
// paper targets. Part 2 *executes* both algorithms on the simulator at
// p <= 64 and reports measured S/W/F, confirming who wins and by roughly
// what factor at runnable scale.

#include "bench_util.hpp"

#include "model/compare.hpp"
#include "model/tuning.hpp"
#include "trsm/it_inv_trsm.hpp"
#include "trsm/rec_trsm.hpp"

namespace {

using namespace catrsm;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

RunStats run_rec(index_t n, index_t k, int p) {
  const model::Config cfg =
      model::configure_forced(n, k, p, model::Algorithm::kRecursive);
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, cfg.pr, cfg.pc);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    DistMatrix db(bd, r.id());
    db.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    (void)trsm::rec_trsm(dl, db, world);
  });
}

RunStats run_it(index_t n, index_t k, int p) {
  const model::Config cfg =
      model::configure_forced(n, k, p, model::Algorithm::kIterative);
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = trsm::it_inv_l_face(world, cfg.p1, cfg.p2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates())
      dl.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    auto bd = trsm::it_inv_b_dist(world, cfg.p1, cfg.p2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates())
      db.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    trsm::ItInvOptions opts;
    opts.nblocks = cfg.nblocks;
    (void)trsm::it_inv_trsm(dl, db, world, cfg.p1, cfg.p2, opts);
  });
}

}  // namespace

int main() {
  bench::print_header(
      "E7: Section IX conclusion table — standard vs new method",
      "Part 1: the model at p = 4096 (the paper's scale)");

  {
    Table table({"regime", "n", "k", "S std", "S new", "S gain", "W std",
                 "W new", "F std", "F new"});
    for (const model::ComparisonRow& row : model::section9_rows(4096)) {
      table.row()
          .add(model::regime_name(row.regime))
          .add(row.n)
          .add(row.k)
          .add(row.standard.msgs)
          .add(row.novel.msgs)
          .add(bench::ratio(row.standard.msgs, row.novel.msgs))
          .add(row.standard.words)
          .add(row.novel.words)
          .add(row.standard.flops)
          .add(row.novel.flops);
    }
    table.print();
    std::cout << "\nPredicted 3D latency gain ~ (n/k)^{1/6} p^{2/3} / log p "
                 "= "
              << Table::format_double(
                     model::section9_rows(4096)[2].predicted_gain_3d())
              << " at p=4096, n=k.\n";
  }

  std::cout << "\nPart 2: executed on the simulator (measured per-rank "
               "maxima)\n";
  {
    struct Shape {
      const char* regime;
      index_t n, k;
      int p;
    };
    const std::vector<Shape> shapes = {
        {"1D", 8, 2048, 16},   // n < 4k/p
        {"2D", 256, 4, 16},    // n > 4k sqrt p
        {"3D", 128, 32, 16},   // in between
        {"3D", 128, 32, 64},   // same shape, more ranks
        {"2D", 256, 4, 64},
    };
    Table table({"regime", "n", "k", "p", "S rec", "S it", "S gain", "W rec",
                 "W it", "F rec", "F it"});
    for (const Shape& s : shapes) {
      const RunStats rec = run_rec(s.n, s.k, s.p);
      const RunStats it = run_it(s.n, s.k, s.p);
      table.row()
          .add(s.regime)
          .add(s.n)
          .add(s.k)
          .add(s.p)
          .add(rec.max_msgs())
          .add(it.max_msgs())
          .add(bench::ratio(rec.max_msgs(), it.max_msgs()))
          .add(rec.max_words())
          .add(it.max_words())
          .add(rec.max_flops())
          .add(it.max_flops());
    }
    table.print();
    std::cout
        << "\nReading: in the 3D regime — the paper's headline — the "
           "iterative method needs a fraction of the recursive baseline's "
           "rounds (the gain widens with p: compare the two 3D rows), at "
           "comparable words and flops.\n"
           "In the 1D regime both are latency-trivial; the new method "
           "only adds the inverter's log^2 p term, matching the paper's "
           "table.\n"
           "In the 2D regime the paper's p^{1/4}/log p gain is "
           "asymptotic-only: at runnable p the recursive method's sqrt(p) "
           "term is still small and the (n/k)^{3/4} solve chain dominates "
           "(see test_model.Comparison.TwoLargeDimsGainIsAsymptotic for "
           "the crossover analysis). Note the iterative method's W is "
           "already ~10x lower there.\n";
  }
  return 0;
}
