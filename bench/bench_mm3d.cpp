// E2 — Section III: the 3D matrix-multiplication cost table.
//
// Sweeps grid shapes (p1, p2) at fixed p and problem sizes, printing
// measured S/W/F next to the model
//   T_MM = beta (n^2/p1^2 1_{p2} + 2nk/(p1 p2)) + gamma 2n^2k/p
//          + O(alpha log p + beta nk log(p)/p),
// reproducing the regime behaviour (2D best for n >> k, 3D for n ~ k, 1D
// for k >> n) and the per-line structure of the paper's table.

#include "bench_util.hpp"

#include "mm/mm3d.hpp"
#include "model/costs.hpp"

namespace {

using namespace catrsm;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using sim::Comm;
using sim::Rank;
using sim::RunStats;

RunStats run_mm(index_t n, index_t k, int p1, int p2) {
  const int p = p1 * p1 * p2;
  return bench::run_spmd(p, [&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(p);
    Face2D face(world, pr, pc);
    auto ad = dist::cyclic_on(face, n, n);
    auto xd = dist::cyclic_on(face, n, k);
    DistMatrix da(ad, r.id());
    da.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    DistMatrix dx(xd, r.id());
    dx.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    (void)mm::mm3d(da, dx, xd, world, mm::MMGrid{p1, p2});
  });
}

}  // namespace

int main() {
  bench::print_header(
      "E2: 3D matrix multiplication (paper Section III)",
      "B = L X from/to a 2D cyclic start; measured vs model per grid shape");

  {
    Table table({"n", "k", "p", "p1xp1xp2", "S meas", "W meas", "W model",
                 "W ratio", "F meas", "F ideal"});
    const index_t n = 128, k = 64;
    for (const auto& [p1, p2] : std::vector<std::pair<int, int>>{
             {1, 16}, {2, 4}, {4, 1}, {2, 16}, {4, 4}, {8, 1}}) {
      const int p = p1 * p1 * p2;
      const RunStats stats = run_mm(n, k, p1, p2);
      const double wmodel = mm::mm3d_model_words(n, n, k, p1, p2) +
                            static_cast<double>(n) * k * model::log2p(p) / p;
      const double fideal = 2.0 * static_cast<double>(n) * n * k / p;
      table.row()
          .add(n)
          .add(k)
          .add(p)
          .add(std::to_string(p1) + "x" + std::to_string(p1) + "x" +
               std::to_string(p2))
          .add(stats.max_msgs())
          .add(stats.max_words())
          .add(wmodel)
          .add(bench::ratio(stats.max_words(), wmodel))
          .add(stats.max_flops())
          .add(fideal);
    }
    table.print();
  }

  std::cout << "\nGrid choice by shape (the WMM regimes of Section II-C2):\n";
  {
    Table table({"n", "k", "p", "chosen p1", "chosen p2", "regime"});
    const int p = 64;
    for (const auto& [n, k] : std::vector<std::pair<index_t, index_t>>{
             {4096, 16}, {1024, 256}, {512, 512}, {64, 4096}, {8, 65536}}) {
      const mm::MMGrid g = mm::choose_mm_grid(n, n, k, p);
      const char* regime = g.p2 == 1      ? "2D (two large dims)"
                           : g.p1 == 1    ? "1D (one large dim)"
                                          : "3D (three large dims)";
      table.row().add(n).add(k).add(p).add(g.p1).add(g.p2).add(regime);
    }
    table.print();
  }
  return 0;
}
