// E8 — Figure 1: the layout-regime map.
//
// The paper's Figure 1 shows the 1D / 2D / 3D processor-grid layouts
// chosen as a function of the relative sizes of L and B. This bench
// renders the regime map over the (n/k, p) plane using the Section VIII
// boundaries (n = 4k/p and n = 4k sqrt p) and prints the tuned grid for a
// slice of concrete shapes.

#include "bench_util.hpp"

#include <cmath>

#include "model/costs.hpp"
#include "model/tuning.hpp"

namespace {
using namespace catrsm;
}

int main() {
  bench::print_header("E8: Figure 1 — layout regime map",
                      "rows: log2(n/k) from -12 to +20; cols: log2(p) from "
                      "2 to 20; cell: chosen layout");

  std::cout << "        p=2^2 .. 2^20\n";
  for (int lnk = 20; lnk >= -12; lnk -= 2) {
    std::printf("n/k=2^%+3d  ", lnk);
    for (int lp = 2; lp <= 20; ++lp) {
      const double n = 1 << 16;
      const double k = n / std::pow(2.0, lnk);
      const double p = std::pow(2.0, lp);
      const model::Regime r = model::classify(n, k, p);
      std::fputc(r == model::Regime::k1D   ? '1'
                 : r == model::Regime::k2D ? '2'
                                           : '3',
                 stdout);
    }
    std::fputc('\n', stdout);
  }
  std::cout << "\n'1' = one large dimension (1D grid, B dominates),\n"
               "'2' = two large dimensions (2D grid, L dominates),\n"
               "'3' = three large dimensions (3D grid).\n"
               "Boundaries: n = 4k/p (1D|3D) and n = 4k sqrt(p) (3D|2D).\n";

  std::cout << "\nConcrete tuned grids along a slice (p = 4096):\n";
  Table table(
      {"n", "k", "n/k", "regime", "p1 x p1 x p2", "nblocks", "layout"});
  const double p = 4096;
  const long long n = 1 << 16;
  for (const long long k : {1LL << 26, 1LL << 20, 1LL << 16, 1LL << 12,
                            1LL << 8, 1LL << 2}) {
    const model::Config cfg = model::configure_forced(
        n, k, static_cast<int>(p), model::Algorithm::kIterative);
    const char* layout = cfg.p1 == 1                ? "1D (flat)"
                         : cfg.p2 == 1              ? "2D (square face)"
                                                    : "3D (cuboid)";
    table.row()
        .add(n)
        .add(k)
        .add(static_cast<double>(n) / static_cast<double>(k))
        .add(model::regime_name(cfg.regime))
        .add(std::to_string(cfg.p1) + "x" + std::to_string(cfg.p1) + "x" +
             std::to_string(cfg.p2))
        .add(cfg.nblocks)
        .add(layout);
  }
  table.print();
  return 0;
}
