#include "factor/cholesky_dist.hpp"

#include <algorithm>
#include <cmath>

#include "coll/collectives.hpp"
#include "dist/redistribute.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/trsm.hpp"
#include "support/check.hpp"

namespace catrsm::factor {

using dist::BlockCyclicDist;
using dist::Face2D;
using la::Matrix;

namespace {
constexpr int kTagPanelExchange = 921;
}

DistMatrix cholesky_dist(const DistMatrix& a, const sim::Comm& comm,
                         index_t nb) {
  const auto* ad = dynamic_cast<const BlockCyclicDist*>(&a.dist());
  CATRSM_CHECK(ad != nullptr && ad->br() == 1 && ad->bc() == 1,
               "cholesky_dist: requires a unit-block cyclic layout");
  const index_t n = a.dist().rows();
  CATRSM_CHECK(a.dist().cols() == n, "cholesky_dist: matrix must be square");
  const Face2D& face = ad->face();
  const int q = face.pr();
  CATRSM_CHECK(face.pc() == q,
               "cholesky_dist: requires a square processor grid (the "
               "symmetric update uses mirror-rank exchanges)");
  auto& ctx = comm.ctx();
  if (nb <= 0)
    nb = std::max<index_t>(
        1, n / std::max<index_t>(
                   4 * static_cast<index_t>(std::lround(std::sqrt(
                           static_cast<double>(q) * q))),
                   1));

  const int gi = face.my_gi();
  const int gj = face.my_gj();
  const sim::Comm rowc = face.row_comm();

  Matrix acur = a.local();  // working copy; trailing part evolves
  DistMatrix lout(a.dist_ptr(), a.me());
  const auto& my_rows = a.my_rows();
  const auto& my_cols = a.my_cols();

  auto local_row_of = [&](index_t gr) {
    return static_cast<index_t>(
        std::lower_bound(my_rows.begin(), my_rows.end(), gr) -
        my_rows.begin());
  };
  auto local_col_of = [&](index_t gc) {
    return static_cast<index_t>(
        std::lower_bound(my_cols.begin(), my_cols.end(), gc) -
        my_cols.begin());
  };

  for (index_t o = 0; o < n; o += nb) {
    const index_t sz = std::min(nb, n - o);

    // (1) Factor the diagonal block redundantly on every rank.
    const Matrix adiag = dist::gather_region(a.dist(), acur, a.me(), comm, o,
                                             o + sz, o, o + sz);
    const Matrix lfact = la::cholesky(adiag);
    ctx.charge_flops(static_cast<double>(sz) * sz * sz / 3.0);

    // Write my piece of the diagonal factor (lower part only).
    for (index_t i = o; i < o + sz; ++i) {
      if (a.dist().part_of_row(i) != gi) continue;
      for (index_t j = o; j <= i; ++j) {
        if (a.dist().part_of_col(j) != gj) continue;
        lout.local()(local_row_of(i), local_col_of(j)) = lfact(i - o, j - o);
      }
    }
    if (o + sz >= n) break;

    // (2) Panel solve: gather my trailing rows of A(T, Si) across the grid
    // row, then L(T, Si) = A(T, Si) * L(Si,Si)^{-T} locally per rank.
    std::vector<index_t> trail_rows;
    for (const index_t r : my_rows)
      if (r >= o + sz) trail_rows.push_back(r);

    Matrix apanel(static_cast<index_t>(trail_rows.size()), sz);
    {
      // Assemble columns of Si across the row communicator: peers share my
      // row set but own disjoint column subsets.
      coll::Counts counts(static_cast<std::size_t>(q));
      std::vector<std::vector<index_t>> cols_of(static_cast<std::size_t>(q));
      for (index_t j = o; j < o + sz; ++j)
        cols_of[static_cast<std::size_t>(a.dist().part_of_col(j))].push_back(
            j);
      for (int w = 0; w < q; ++w)
        counts[static_cast<std::size_t>(w)] =
            cols_of[static_cast<std::size_t>(w)].size() * trail_rows.size();
      coll::Buf mine;
      for (const index_t r : trail_rows) {
        const index_t lr = local_row_of(r);
        for (const index_t j : cols_of[static_cast<std::size_t>(gj)])
          mine.push_back(acur(lr, local_col_of(j)));
      }
      const coll::Buffer all =
          coll::allgather(rowc, std::move(mine), counts);
      std::size_t pos = 0;
      for (int w = 0; w < q; ++w)
        for (index_t r = 0; r < static_cast<index_t>(trail_rows.size()); ++r)
          for (const index_t j : cols_of[static_cast<std::size_t>(w)])
            apanel(r, j - o) = all[pos++];
      CATRSM_ASSERT(pos == all.size(), "cholesky_dist: panel size mismatch");
    }

    // X * L^T = A  =>  right-solve against the upper-triangular L^T.
    const Matrix lfact_t = lfact.transposed();
    la::trsm_right(la::Uplo::kUpper, la::Diag::kNonUnit, lfact_t, apanel);
    ctx.charge_flops(static_cast<double>(sz) * sz *
                     static_cast<double>(trail_rows.size()));

    // Write my columns of the panel into L.
    for (std::size_t r = 0; r < trail_rows.size(); ++r) {
      const index_t lr = local_row_of(trail_rows[r]);
      for (index_t j = o; j < o + sz; ++j) {
        if (a.dist().part_of_col(j) != gj) continue;
        lout.local()(lr, local_col_of(j)) =
            apanel(static_cast<index_t>(r), j - o);
      }
    }

    // (3) Symmetric trailing update. The mirror rank (gj, gi) holds the
    // panel rows congruent to my gj; one exchange supplies the transposed
    // operand. Trailing columns beyond o+sz that I own are exactly the
    // mirror's trailing rows, in the same ascending order.
    // Build the TRANSPOSED mirror operand directly — from the frozen
    // received view when exchanging (no take() copy off the slab), or
    // from my own panel on the diagonal.
    Matrix mirror_t;
    if (gi != gj) {
      const int peer = face.at(gj, gi);
      coll::Buffer got =
          comm.sendrecv(peer, apanel.data(), kTagPanelExchange);
      index_t peer_rows = 0;
      for (const index_t c : my_cols)
        if (c >= o + sz) ++peer_rows;
      CATRSM_ASSERT(static_cast<index_t>(got.size()) == peer_rows * sz,
                    "cholesky_dist: mirror panel size mismatch");
      mirror_t = Matrix(sz, peer_rows);
      const double* src = got.data();
      for (index_t r = 0; r < peer_rows; ++r)
        for (index_t c = 0; c < sz; ++c) mirror_t(c, r) = src[r * sz + c];
    } else {
      mirror_t = apanel.transposed();
    }

    if (!trail_rows.empty() && mirror_t.cols() > 0) {
      const Matrix upd = la::matmul(apanel, mirror_t);
      ctx.charge_flops(
          la::gemm_flops(apanel.rows(), mirror_t.cols(), sz));
      std::vector<index_t> trail_cols;
      for (const index_t c : my_cols)
        if (c >= o + sz) trail_cols.push_back(c);
      CATRSM_ASSERT(static_cast<index_t>(trail_cols.size()) ==
                        mirror_t.cols(),
                    "cholesky_dist: trailing column mismatch");
      for (std::size_t r = 0; r < trail_rows.size(); ++r) {
        const index_t lr = local_row_of(trail_rows[r]);
        for (std::size_t c = 0; c < trail_cols.size(); ++c) {
          acur(lr, local_col_of(trail_cols[c])) -=
              upd(static_cast<index_t>(r), static_cast<index_t>(c));
        }
      }
      ctx.charge_flops(static_cast<double>(trail_rows.size()) *
                       static_cast<double>(trail_cols.size()));
    }
  }
  return lout;
}

}  // namespace catrsm::factor
