#pragma once
// Distributed blocked Cholesky factorization A = L L^T on a square
// processor grid — the factorization context the paper's introduction
// motivates ("TRSM is used extensively ... to compute factorizations with
// triangular matrices, such as Cholesky, LU, and QR").
//
// Right-looking over panels of width nb:
//   1. the diagonal block A(Si, Si) is gathered to every rank and factored
//      redundantly (sequential Cholesky; nb is small),
//   2. the panel L(T, Si) = A(T, Si) L(Si,Si)^{-T} is solved locally after
//      an allgather of the panel columns across each grid row (a local
//      trsm_right per rank — this is TRSM appearing inside the
//      factorization),
//   3. the symmetric trailing update A(T, T) -= L(T,Si) L(T,Si)^T uses a
//      transpose-exchange between mirror ranks (gi, gj) <-> (gj, gi) so
//      every rank owns both the row and column panel pieces it needs.
//
// Costs: S = O((n/nb) log p), W = O(n^2/sqrt(p) + n nb), F = n^3/(3p)
// (plus the redundant nb^3/3 per panel) — the classic 2D factorization
// whose TRSM phase the paper's algorithms accelerate at scale.

#include "dist/dist_matrix.hpp"
#include "sim/comm.hpp"

namespace catrsm::factor {

using dist::DistMatrix;
using la::index_t;

/// Factor a symmetric positive-definite matrix distributed cyclically
/// (unit blocks) on a *square* face. Only the lower triangle of `a` is
/// read. Returns L (lower-triangular, zero above the diagonal) with the
/// same distribution. `nb` is the panel width (0 = automatic).
DistMatrix cholesky_dist(const DistMatrix& a, const sim::Comm& comm,
                         index_t nb = 0);

}  // namespace catrsm::factor
