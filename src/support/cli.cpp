#include "support/cli.hpp"

#include <string_view>

#include "support/check.hpp"

namespace catrsm {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      kv_[std::string(arg)] = argv[++i];
    } else {
      kv_[std::string(arg)] = "1";  // boolean flag
    }
  }
}

long long Cli::get_int(const std::string& name, long long def) const {
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : std::stoll(it->second);
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : std::stod(it->second);
}

std::string Cli::get_string(const std::string& name,
                            const std::string& def) const {
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

bool Cli::has(const std::string& name) const { return kv_.count(name) > 0; }

}  // namespace catrsm
