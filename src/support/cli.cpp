#include "support/cli.hpp"

#include <cstdlib>
#include <string_view>

#include "support/check.hpp"

namespace catrsm {

namespace {

/// True when the whole token parses as a numeric literal — so a value
/// like "-3" after "--shift" is taken as the flag's value rather than
/// being mistaken for the next flag. Anything starting with "--" is
/// always a flag, never a value.
bool looks_numeric(const char* s) {
  if (s[0] == '-' && s[1] == '-') return false;
  char* end = nullptr;
  (void)std::strtod(s, &end);
  return end != s && *end == '\0';
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      kv_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc &&
               (argv[i + 1][0] != '-' || looks_numeric(argv[i + 1]))) {
      kv_[std::string(arg)] = argv[++i];
    } else {
      kv_[std::string(arg)] = "1";  // boolean flag
    }
  }
}

long long Cli::get_int(const std::string& name, long long def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    CATRSM_CHECK(pos == it->second.size(),
                 "--" + name + " expects an integer, got \"" + it->second +
                     "\"");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    CATRSM_CHECK(false, "--" + name + " expects an integer, got \"" +
                            it->second + "\"");
  }
  return def;  // unreachable
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = kv_.find(name);
  if (it == kv_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    CATRSM_CHECK(pos == it->second.size(),
                 "--" + name + " expects a number, got \"" + it->second +
                     "\"");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    CATRSM_CHECK(false, "--" + name + " expects a number, got \"" +
                            it->second + "\"");
  }
  return def;  // unreachable
}

std::string Cli::get_string(const std::string& name,
                            const std::string& def) const {
  const auto it = kv_.find(name);
  return it == kv_.end() ? def : it->second;
}

bool Cli::has(const std::string& name) const { return kv_.count(name) > 0; }

}  // namespace catrsm
