#include "support/exec_context.hpp"

namespace catrsm::exec {

namespace {
thread_local bool tls_in_sim_rank = false;
}

bool in_sim_rank() noexcept { return tls_in_sim_rank; }

bool set_in_sim_rank(bool value) noexcept {
  const bool prev = tls_in_sim_rank;
  tls_in_sim_rank = value;
  return prev;
}

}  // namespace catrsm::exec
