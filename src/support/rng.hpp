#pragma once
// Seeded, reproducible random number generation for tests, examples, and
// benchmark workload generators. One Rng per logical stream; never a global.

#include <cstdint>
#include <random>

namespace catrsm {

/// Deterministic random stream. Thin wrapper over mt19937_64 so call sites
/// never depend on <random> distribution idiosyncrasies directly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  long long uniform_int(long long lo, long long hi);

  /// Standard normal deviate.
  double normal();

  /// Derive an independent child stream (stable function of seed & index).
  Rng child(std::uint64_t index) const;

 private:
  Rng(std::uint64_t seed, int) : gen_(seed) {}
  std::mt19937_64 gen_;
  std::uint64_t seed_mix_ = 0;
};

}  // namespace catrsm
