#include "support/check.hpp"

#include <sstream>

namespace catrsm {

namespace detail {
void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "catrsm check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

int ilog2_exact(long long x) {
  CATRSM_CHECK(is_pow2(x), "ilog2_exact requires a power of two");
  int l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

int ilog2_ceil(long long x) {
  CATRSM_CHECK(x >= 1, "ilog2_ceil requires x >= 1");
  int l = 0;
  long long v = 1;
  while (v < x) {
    v <<= 1;
    ++l;
  }
  return l;
}

}  // namespace catrsm
