#include "support/rng.hpp"

namespace catrsm {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(gen_);
}

long long Rng::uniform_int(long long lo, long long hi) {
  std::uniform_int_distribution<long long> d(lo, hi);
  return d(gen_);
}

double Rng::normal() {
  std::normal_distribution<double> d(0.0, 1.0);
  return d(gen_);
}

Rng Rng::child(std::uint64_t index) const {
  // splitmix64 of (state-independent) index to decorrelate child streams.
  std::uint64_t z = index + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z ^ 0xda3e39cb94b95bdbULL);
}

}  // namespace catrsm
