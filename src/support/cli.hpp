#pragma once
// Tiny command-line flag parser for examples and bench binaries.
// Supports "--name value" and "--name=value"; everything is optional with
// defaults, so every binary runs stand-alone with zero arguments.

#include <map>
#include <string>

namespace catrsm {

class Cli {
 public:
  Cli(int argc, char** argv);

  long long get_int(const std::string& name, long long def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  bool has(const std::string& name) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace catrsm
