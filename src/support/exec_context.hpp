#pragma once
// Execution-context flag shared by the kernel thread pool and the rank
// scheduler, kept in support so neither layer has to include the other.
//
// The simulator multiplexes p rank fibers over the physical cores; if a
// la:: routine invoked from inside a simulated rank also fanned out over
// the kernel pool, p ranks x T kernel threads would oversubscribe the
// machine. The scheduler therefore marks every OS thread (or fiber
// residency window) that is executing a rank body, and the kernel pool
// checks the mark and runs inline. Direct/library callers — Plan on
// p = 1, tests, benches — are unmarked and fan out.

namespace catrsm::exec {

/// True while the calling OS thread is executing a simulated rank body.
bool in_sim_rank() noexcept;

/// Set by sim::RankScheduler around rank execution (fiber backend: around
/// each residency window on the worker thread; thread backend: around the
/// whole rank body). Returns the previous value so nesting restores it.
bool set_in_sim_rank(bool value) noexcept;

}  // namespace catrsm::exec
