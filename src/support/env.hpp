#pragma once
// Validated environment-variable parsing for the CATRSM_* knobs.
//
// The seed read tuning knobs with std::atoi, so CATRSM_SIM_WORKERS=banana
// silently became 0 workers and CATRSM_KERNEL_THREADS=-4 silently fell
// back — the user never learns their override was dropped. These helpers
// parse strictly (the whole value must be an integer), enforce a range,
// and on any malformed or out-of-range value print one warning to stderr
// and return the documented fallback.

#include <string>

namespace catrsm::env {

/// Parse `name` as a strict decimal integer in [lo, hi]. Unset or empty
/// returns `fallback` silently; malformed (trailing garbage, overflow) or
/// out-of-range values warn on stderr and return `fallback`.
int int_or(const char* name, int fallback, long lo, long hi);

/// Same contract for 64-bit knobs (byte budgets exceed int range).
long long int64_or(const char* name, long long fallback, long long lo,
                   long long hi);

/// Parse `name` as a boolean flag: any valid integer, nonzero = true
/// (matching the historical CATRSM_SIM_FIBERS=0 convention). Unset or
/// empty returns `fallback`; malformed values warn and return `fallback`.
bool flag_or(const char* name, bool fallback);

/// Read `name` as a string. Unset or empty returns `fallback` silently.
/// Validation is the caller's job (the accepted vocabulary is knob-
/// specific); reject a value by calling `warn_invalid` so every knob warns
/// with the same one-line stderr discipline.
std::string string_or(const char* name, const std::string& fallback);

/// Print the shared warn-and-fallback line for a rejected value of `name`:
///   catrsm: ignoring NAME="value" (why); using fallback
void warn_invalid(const char* name, const std::string& why,
                  const std::string& fallback_desc);

}  // namespace catrsm::env
