#pragma once
// Minimal ASCII table printer used by the benchmark harness to regenerate
// the paper's tables in a readable, diffable format.

#include <iosfwd>
#include <string>
#include <vector>

namespace catrsm {

/// Collects rows of strings and pretty-prints them with aligned columns.
/// Numeric helpers format with fixed significant digits so bench output is
/// stable across runs.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(long long v);
  Table& add(int v);
  Table& add(std::size_t v);
  /// Engineering-style formatting: 4 significant digits, switching to
  /// scientific notation outside [1e-3, 1e6).
  Table& add(double v);

  /// Render with a header rule and column alignment.
  void print(std::ostream& os) const;

  /// Convenience: render to stdout.
  void print() const;

  static std::string format_double(double v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace catrsm
