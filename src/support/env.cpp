#include "support/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace catrsm::env {

namespace {

enum class Parse { kUnset, kOk, kBad };

Parse parse_long(const char* name, long* out) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return Parse::kUnset;
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) return Parse::kBad;
  *out = n;
  return Parse::kOk;
}

void warn(const char* name, const char* why, int fallback) {
  std::fprintf(stderr,
               "catrsm: ignoring %s=\"%s\" (%s); using default %d\n",
               name, std::getenv(name), why, fallback);
}

}  // namespace

int int_or(const char* name, int fallback, long lo, long hi) {
  long n = 0;
  switch (parse_long(name, &n)) {
    case Parse::kUnset:
      return fallback;
    case Parse::kBad:
      warn(name, "not an integer", fallback);
      return fallback;
    case Parse::kOk:
      break;
  }
  if (n < lo || n > hi) {
    warn(name, "out of range", fallback);
    return fallback;
  }
  return static_cast<int>(n);
}

long long int64_or(const char* name, long long fallback, long long lo,
                   long long hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long n = std::strtoll(v, &end, 10);
  const char* why = nullptr;
  if (end == v || *end != '\0' || errno == ERANGE)
    why = "not an integer";
  else if (n < lo || n > hi)
    why = "out of range";
  if (why != nullptr) {
    std::fprintf(stderr,
                 "catrsm: ignoring %s=\"%s\" (%s); using default %lld\n",
                 name, v, why, fallback);
    return fallback;
  }
  return n;
}

bool flag_or(const char* name, bool fallback) {
  long n = 0;
  switch (parse_long(name, &n)) {
    case Parse::kUnset:
      return fallback;
    case Parse::kBad:
      warn(name, "not an integer", fallback ? 1 : 0);
      return fallback;
    case Parse::kOk:
      return n != 0;
  }
  return fallback;
}

std::string string_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

void warn_invalid(const char* name, const std::string& why,
                  const std::string& fallback_desc) {
  const char* v = std::getenv(name);
  std::fprintf(stderr, "catrsm: ignoring %s=\"%s\" (%s); using %s\n", name,
               v == nullptr ? "" : v, why.c_str(), fallback_desc.c_str());
}

}  // namespace catrsm::env
