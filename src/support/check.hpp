#pragma once
// Lightweight precondition / invariant checking for the catrsm library.
//
// We follow the C++ Core Guidelines (I.6, E.12): preconditions are stated
// at the top of each function and violations throw a typed exception rather
// than aborting, so library users can recover and tests can assert on them.

#include <stdexcept>
#include <string>

namespace catrsm {

/// Exception thrown on any violated precondition or internal invariant.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

/// CATRSM_CHECK(cond, "message"): throws catrsm::Error when cond is false.
/// Always enabled (these guard API misuse, not hot inner loops).
#define CATRSM_CHECK(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::catrsm::detail::throw_check_failure(#cond, __FILE__, __LINE__,      \
                                            (msg));                         \
    }                                                                       \
  } while (0)

/// CATRSM_ASSERT: internal invariant; compiled out in NDEBUG hot paths is
/// deliberately NOT done — the simulator is the product, and silent
/// corruption would invalidate measured costs. Kept identical to CHECK.
#define CATRSM_ASSERT(cond, msg) CATRSM_CHECK(cond, msg)

/// True when x is an exact power of two (x >= 1).
constexpr bool is_pow2(long long x) { return x > 0 && (x & (x - 1)) == 0; }

/// Integer log2 for exact powers of two.
int ilog2_exact(long long x);

/// Ceil of log2 for any positive integer.
int ilog2_ceil(long long x);

/// Integer ceil division.
constexpr long long ceil_div(long long a, long long b) {
  return (a + b - 1) / b;
}

}  // namespace catrsm
