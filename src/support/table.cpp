#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <ostream>

#include "support/check.hpp"

namespace catrsm {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CATRSM_CHECK(!header_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  CATRSM_CHECK(!rows_.empty(), "call row() before add()");
  CATRSM_CHECK(rows_.back().size() < header_.size(), "row has too many cells");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(long long v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(std::size_t v) { return add(std::to_string(v)); }
Table& Table::add(double v) { return add(format_double(v)); }

std::string Table::format_double(double v) {
  if (v == 0.0) return "0";
  char buf[64];
  const double a = std::abs(v);
  if (a >= 1e-3 && a < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string();
      os << " " << s << std::string(width[c] - s.size(), ' ') << " |";
    }
    os << "\n";
  };

  print_row(header_);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << "\n";
  for (const auto& r : rows_) print_row(r);
}

void Table::print() const { print(std::cout); }

}  // namespace catrsm
