#include "trsm/it_inv_trsm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "coll/collectives.hpp"
#include "dist/grid.hpp"
#include "la/gemm.hpp"
#include "la/kernel/kernel.hpp"
#include "support/check.hpp"

namespace catrsm::trsm {

using dist::BlockCyclicDist;
using dist::Face2D;
using dist::ProcGrid3D;
using la::Matrix;

namespace {

enum ItTag : int {
  kTagXExchange = 901,
  kTagCorrExchange = 902,
  kTagBExchange = 903,
};

/// Local index range [t0, t1) of global rows in [lo, hi) within the sorted
/// list {res, res + mod, res + 2 mod, ...}.
std::pair<index_t, index_t> local_range(index_t lo, index_t hi, int res,
                                        int mod) {
  const auto first_at_least = [&](index_t bound) {
    if (bound <= res) return static_cast<index_t>(0);
    return ceil_div(bound - res, mod);
  };
  return {first_at_least(lo), first_at_least(hi)};
}

/// Number of globals in [0, n) congruent to res (mod m).
index_t strided_count(index_t n, int m, int res) {
  if (res >= n) return 0;
  return (n - res - 1) / m + 1;
}

/// A received payload viewed as a frozen row-major rows x cols panel.
/// The data stays on the transport slab — no take()/to_vector copy; every
/// consumer below only reads, so the view is all that is needed.
struct Panel {
  sim::Buffer buf;
  index_t rows = 0;
  index_t cols = 0;
  const double* ptr() const { return buf.data(); }
};

}  // namespace

Face2D it_inv_l_face(const sim::Comm& comm, int p1, int p2) {
  CATRSM_CHECK(comm.size() == p1 * p1 * p2,
               "it_inv_l_face: comm must hold the whole grid");
  std::vector<int> idx(static_cast<std::size_t>(p1 * p1));
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
  return Face2D(comm.subset(idx), p1, p1);
}

std::vector<int> it_inv_b_face_members(int p1, int p2) {
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(p1 * p2));
  for (int z = 0; z < p2; ++z)
    for (int x = 0; x < p1; ++x) idx.push_back(x + p1 * p1 * z);
  return idx;
}

Face2D it_inv_b_face(const sim::Comm& comm, int p1, int p2) {
  CATRSM_CHECK(comm.size() == p1 * p1 * p2,
               "it_inv_b_face: comm must hold the whole grid");
  return Face2D(comm.subset(it_inv_b_face_members(p1, p2)), p1, p2);
}

std::shared_ptr<BlockCyclicDist> it_inv_b_dist(const sim::Comm& comm, int p1,
                                               int p2, index_t n, index_t k) {
  return dist::row_cyclic_col_blocked(it_inv_b_face(comm, p1, p2), n, k);
}

int it_inv_auto_nblocks(index_t n, index_t k, int p) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double dp = static_cast<double>(p);
  double n0;
  if (dn < 4.0 * dk / dp) {
    n0 = dn;  // 1D regime: single inverted block
  } else if (dn > 4.0 * dk * std::sqrt(dp)) {
    n0 = std::pow(dn * dk * dk * dk * std::sqrt(dp), 0.25);  // 2D regime
  } else {
    n0 = std::min(std::sqrt(dn * dk), dn);  // 3D regime
  }
  const int blocks = static_cast<int>(std::llround(dn / std::max(n0, 1.0)));
  return std::clamp(blocks, 1, static_cast<int>(std::min<index_t>(n, p)));
}

DistMatrix it_inv_trsm(const DistMatrix& l, const DistMatrix& b,
                       const sim::Comm& comm, int p1, int p2,
                       ItInvOptions opts) {
  const index_t n = l.dist().rows();
  const index_t k = b.dist().cols();
  CATRSM_CHECK(l.dist().cols() == n, "it_inv_trsm: L must be square");
  CATRSM_CHECK(b.dist().rows() == n, "it_inv_trsm: dimension mismatch");
  CATRSM_CHECK(comm.size() == p1 * p1 * p2,
               "it_inv_trsm: comm must equal p1^2 * p2 ranks");

  const ProcGrid3D grid(comm, p1, p2);
  const int x = grid.my_x();
  const int y = grid.my_y();
  const int z = grid.my_z();
  auto& ctx = comm.ctx();

  int nblocks = opts.nblocks;
  if (nblocks <= 0) nblocks = it_inv_auto_nblocks(n, k, comm.size());
  const index_t nb = ceil_div(n, nblocks);
  // Recompute the real block count for ragged sizes.
  nblocks = static_cast<int>(ceil_div(n, nb));

  // --- Invert the diagonal blocks with all p ranks (Section VI-A), or
  // rehydrate them from a caller-managed store (plan reuse: repeated
  // solves against the same L skip the inversion entirely).
  // Phase labels reproduce the paper's Section VII cost decomposition
  // (T = T_Inv + T_Solve + T_Upd) in RunStats::phase_max.
  const DistMatrix ltilde = [&] {
    if (opts.ltilde_store != nullptr && opts.reuse_ltilde) {
      DistMatrix lt(l.dist_ptr(), ctx.id());
      if (lt.participates()) {
        const la::Matrix& stored =
            (*opts.ltilde_store)[static_cast<std::size_t>(ctx.id())];
        CATRSM_CHECK(stored.rows() == lt.local().rows() &&
                         stored.cols() == lt.local().cols(),
                     "it_inv_trsm: stored ltilde shape mismatch");
        lt.local() = stored;
      }
      return lt;
    }
    sim::PhaseScope scope(ctx, "inversion");
    DistMatrix lt = diag_inverter(l, comm, nblocks, opts.diag);
    if (opts.ltilde_store != nullptr)
      (*opts.ltilde_store)[static_cast<std::size_t>(ctx.id())] = lt.local();
    return lt;
  }();

  // --- Panel geometry.
  const index_t bc = std::max<index_t>(ceil_div(k, p2), 1);
  const index_t kz = std::clamp<index_t>(k - static_cast<index_t>(z) * bc, 0,
                                         bc);
  const index_t rows_x = strided_count(n, p1, x);
  const index_t rows_y = strided_count(n, p1, y);

  const sim::Comm yf = grid.y_fiber();
  const sim::Comm zf = grid.z_fiber();
  const int peer = grid.at(y, x, z);  // transpose partner

  // Ship a frozen payload to the transpose partner and view the reply in
  // place: sends are refcount bumps and the received panel is never
  // copied off its slab (the consumers below only read it).
  auto transpose_exchange = [&](sim::Buffer mine, index_t my_rows,
                                index_t peer_rows, int tag) -> Panel {
    if (x == y) return Panel{std::move(mine), my_rows, kz};
    sim::Buffer got = comm.sendrecv(peer, std::move(mine), tag);
    CATRSM_ASSERT(static_cast<index_t>(got.size()) == peer_rows * kz,
                  "it_inv_trsm: exchange size mismatch");
    return Panel{std::move(got), peer_rows, kz};
  };

  // --- Replicate B over the y-fibers, then transpose so every rank holds
  // the rows congruent to its own y (the contraction-ready orientation).
  // by_panel is corrected in place each iteration, so it is the one
  // received panel that gets materialized into owned storage.
  Matrix by_panel(rows_y, kz);
  {
    sim::PhaseScope scope(ctx, "setup");
    coll::Buffer mine = b.participates() ? coll::Buffer(b.local().data())
                                         : coll::Buffer();
    coll::Buffer bx = coll::bcast(yf, /*root=*/0, std::move(mine),
                                  static_cast<std::size_t>(rows_x * kz));
    const Panel byp = transpose_exchange(std::move(bx), rows_x, rows_y,
                                         kTagBExchange);
    CATRSM_ASSERT(byp.rows == rows_y, "it_inv_trsm: B panel shape mismatch");
    std::memcpy(by_panel.ptr(), byp.ptr(),
                static_cast<std::size_t>(rows_y * kz) * sizeof(double));
  }

  Matrix x_panel(rows_x, kz);
  Matrix u_buffer(rows_x, kz);  // lazily accumulated updates, rows ≡ x

  // Extract a (row-range x col-range) piece of my ltilde block and
  // broadcast it along the z-fiber (only z = 0 holds ltilde); the piece
  // is packed straight onto a pooled slab and consumed as a view.
  auto bcast_piece = [&](index_t rlo, index_t rhi, index_t clo,
                         index_t chi) -> Panel {
    const auto [rx0, rx1] = local_range(rlo, rhi, x, p1);
    const auto [cy0, cy1] = local_range(clo, chi, y, p1);
    const index_t pr = rx1 - rx0;
    const index_t pc = cy1 - cy0;
    sim::Buffer mine;
    if (z == 0) {
      CATRSM_ASSERT(ltilde.participates(),
                    "it_inv_trsm: front face must own ltilde");
      const Matrix& lt = ltilde.local();
      mine = sim::Buffer::uninit(static_cast<std::size_t>(pr * pc));
      double* dst = mine.mutable_data();
      for (index_t r = 0; r < pr; ++r)
        std::memcpy(dst + r * pc, lt.ptr() + (rx0 + r) * lt.cols() + cy0,
                    static_cast<std::size_t>(pc) * sizeof(double));
    }
    coll::Buffer out = coll::bcast(zf, /*root=*/0, std::move(mine),
                                   static_cast<std::size_t>(pr * pc));
    return Panel{std::move(out), pr, pc};
  };

  // --- Main iteration (Section VI-B / VII).
  for (int i = 0; i < nblocks; ++i) {
    const index_t oi = static_cast<index_t>(i) * nb;
    const index_t sz = std::min(nb, n - oi);

    // Solve: X(Si) = Ltilde(Si, Si) * B(Si).
    Panel xred;
    index_t sy_count = 0;
    {
      sim::PhaseScope solve_scope(ctx, "solve");
      const Panel diag_piece = bcast_piece(oi, oi + sz, oi, oi + sz);
      const auto [sy0, sy1] = local_range(oi, oi + sz, y, p1);
      sy_count = sy1 - sy0;
      CATRSM_ASSERT(diag_piece.cols == sy_count,
                    "it_inv_trsm: diagonal piece width mismatch");
      // The product lands straight on an uninitialized pooled slab, so
      // the allreduce ships it without a packing copy.
      sim::Buffer xp =
          sim::Buffer::uninit(static_cast<std::size_t>(diag_piece.rows * kz));
      la::kernel::gemm(diag_piece.rows, kz, sy_count, 1.0, diag_piece.ptr(),
                       diag_piece.cols, by_panel.ptr() + sy0 * kz, kz, 0.0,
                       xp.mutable_data(), kz);
      ctx.charge_flops(la::gemm_flops(diag_piece.rows, kz, sy_count));

      coll::Buffer xsum = coll::allreduce(yf, std::move(xp));
      xred = Panel{std::move(xsum), diag_piece.rows, kz};
      const auto [sx0, sx1] = local_range(oi, oi + sz, x, p1);
      CATRSM_ASSERT(sx1 - sx0 == xred.rows,
                    "it_inv_trsm: X slice mismatch");
      std::memcpy(x_panel.ptr() + sx0 * kz, xred.ptr(),
                  static_cast<std::size_t>(xred.rows * kz) * sizeof(double));
    }

    if (i + 1 >= nblocks) break;
    const index_t o2 = oi + sz;
    sim::PhaseScope update_scope(ctx, "update");

    // Update: accumulate L(T_{i+1}, Si) * X(Si) into the lazy buffer.
    const Panel panel_piece = bcast_piece(o2, n, oi, oi + sz);
    const Panel xt = transpose_exchange(xred.buf, xred.rows, sy_count,
                                        kTagXExchange);
    const auto [tx0, tx1] = local_range(o2, n, x, p1);
    if (panel_piece.rows > 0 && xt.rows > 0) {
      CATRSM_ASSERT(panel_piece.cols == xt.rows,
                    "it_inv_trsm: update contraction mismatch");
      Matrix contrib(panel_piece.rows, kz);
      la::kernel::gemm(panel_piece.rows, kz, panel_piece.cols, 1.0,
                       panel_piece.ptr(), panel_piece.cols, xt.ptr(), kz,
                       0.0, contrib.ptr(), kz);
      ctx.charge_flops(
          la::gemm_flops(panel_piece.rows, kz, panel_piece.cols));
      CATRSM_ASSERT(tx1 - tx0 == contrib.rows(),
                    "it_inv_trsm: update row mismatch");
      // Contiguous row axpy (the checked accessor would bounds-test every
      // element of this hot accumulation).
      for (index_t r = 0; r < contrib.rows(); ++r) {
        double* dst = u_buffer.ptr() + (tx0 + r) * kz;
        const double* src = contrib.ptr() + r * kz;
        for (index_t c = 0; c < kz; ++c) dst[c] += src[c];
      }
      ctx.charge_flops(static_cast<double>(contrib.size()));
    }

    // Reduce only the next block row of the buffer and correct B. The
    // reduced rows are contiguous full-width rows of u_buffer, so they
    // ship as a span view — no block copy before the collective.
    const index_t s2 = std::min(nb, n - o2);
    const auto [nx0, nx1] = local_range(o2, o2 + s2, x, p1);
    coll::Buffer csum = coll::allreduce(
        yf, std::span<const double>(
                u_buffer.ptr() + nx0 * kz,
                static_cast<std::size_t>((nx1 - nx0) * kz)));

    const auto [ny0, ny1] = local_range(o2, o2 + s2, y, p1);
    const Panel corr_t = transpose_exchange(std::move(csum), nx1 - nx0,
                                            ny1 - ny0, kTagCorrExchange);
    for (index_t r = 0; r < corr_t.rows; ++r) {
      double* dst = by_panel.ptr() + (ny0 + r) * kz;
      const double* src = corr_t.ptr() + r * kz;
      for (index_t c = 0; c < kz; ++c) dst[c] -= src[c];
    }
    ctx.charge_flops(static_cast<double>(corr_t.rows * kz));
  }

  // --- The y = 0 plane holds the solution in B's layout.
  DistMatrix xout(b.dist_ptr(), ctx.id());
  if (xout.participates()) {
    CATRSM_ASSERT(xout.local().rows() == x_panel.rows() &&
                      xout.local().cols() == x_panel.cols(),
                  "it_inv_trsm: output shape mismatch");
    xout.local() = std::move(x_panel);
  }
  return xout;
}

}  // namespace catrsm::trsm
