#pragma once
// The paper's main contribution (Section VI): iterative TRSM with selective
// block-diagonal inversion.
//
// After inverting the n/n0 diagonal blocks (Diagonal-Inverter), every step
// of the block forward-substitution becomes a matrix *multiplication*
// against a precomputed inverse instead of a latency-bound small TRSM:
//
//   for i = 0 .. n/n0 - 1:
//     X(Si) = Ltilde(Si,Si) * B(Si)        (local gemms + allreduce over y)
//     B(S_{i+1}) -= [accumulated L(T,Si) * X(Si) updates]   (lazy, reduced
//                                           one block-row per iteration)
//
// Cost (Section VII):
//   S = O((n/n0) log p + log^2 p)
//   W = (n/n0)[n0^2/p1^2 + O(n0 k/(p1 p2))] + updates + inversion
//   F = n^2 k / (p1^2 p2) + n0^2 n / (p1^2 p2) + inversion
//
// With the Section VIII parameter choices this beats the recursive
// algorithm's latency by Theta((n/k)^{1/6} p^{2/3}) in the 3D regime while
// keeping W and F asymptotically equal — the paper's headline result.
//
// Distribution contract (use the helpers below to build it):
//   L: cyclic on the front face of the p1 x p1 x p2 grid — rank (x, y, 0)
//      owns rows ≡ x, cols ≡ y (mod p1).
//   B: on the y = 0 plane — rank (x, 0, z) owns rows ≡ x (mod p1) and the
//      z-th contiguous slab of ceil(k/p2) columns.
//   X is returned with B's distribution.

#include <memory>
#include <vector>

#include "dist/dist_matrix.hpp"
#include "sim/comm.hpp"
#include "trsm/diag_inverter.hpp"

namespace catrsm::trsm {

struct ItInvOptions {
  /// Number of inverted diagonal blocks; 0 = automatic (Section VIII).
  int nblocks = 0;
  DiagInvOptions diag;
  /// Cross-run reuse of the inverted diagonal blocks (what makes repeated
  /// solves against the same L cheap — the Plan cache hooks in here).
  /// When non-null, slot [world rank] holds that rank's local block of
  /// Ltilde on the L face. With `reuse_ltilde` true the store is consumed
  /// instead of running the Diagonal-Inverter; otherwise the freshly
  /// inverted blocks are exported into the store. The caller must size the
  /// vector to the machine's rank count and is responsible for only
  /// requesting reuse against the same L and nblocks.
  std::vector<la::Matrix>* ltilde_store = nullptr;
  bool reuse_ltilde = false;
};

/// The canonical L face (front face of the grid) for it_inv_trsm inputs.
dist::Face2D it_inv_l_face(const sim::Comm& comm, int p1, int p2);

/// Comm-relative member indices of the y = 0 plane (the canonical B
/// face) of the p1 x p1 x p2 grid, z-major. Single source of truth for
/// that rank set: it_inv_b_face AND the api layer's resident-operand
/// layout realizer both build from it, so uploaded blocks can never land
/// on different ranks than the solver reads.
std::vector<int> it_inv_b_face_members(int p1, int p2);

/// The canonical B face (the y = 0 plane) for it_inv_trsm inputs.
dist::Face2D it_inv_b_face(const sim::Comm& comm, int p1, int p2);

/// The canonical B distribution: rows cyclic over p1, columns in p2 slabs.
std::shared_ptr<dist::BlockCyclicDist> it_inv_b_dist(const sim::Comm& comm,
                                                     int p1, int p2,
                                                     index_t n, index_t k);

/// Automatic block count n/n0 per the Section VIII tuning tables.
int it_inv_auto_nblocks(index_t n, index_t k, int p);

/// Solve L X = B on a p1 x p1 x p2 grid over `comm`.
DistMatrix it_inv_trsm(const DistMatrix& l, const DistMatrix& b,
                       const sim::Comm& comm, int p1, int p2,
                       ItInvOptions opts = {});

}  // namespace catrsm::trsm
