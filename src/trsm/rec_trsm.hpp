#pragma once
// The paper's Section IV: recursive TRSM (adapted from Elmroth et al.) with
// the paper's complete alpha-beta-gamma cost structure. This is the
// "standard" algorithm of the Section IX comparison table.
//
// Structure:
//  - pc > pr (more columns of B than rows of L warrant): split the grid
//    into pc/pr square subgrids, replicate L into each (allgather over the
//    column-group fibers, paper line 3) and solve independent column
//    subsets of B.
//  - square grid, n > n0: halve L:
//        X1 = RecTRSM(L11, B1)
//        B2' = B2 - L21 * X1        (one 3D matrix multiplication)
//        X2 = RecTRSM(L22, B2')
//  - base case: gather L onto every rank, split B's columns across all p
//    ranks (all-to-all), solve locally, return to the cyclic layout.
//
// Costs by regime (paper Section IV-A):
//   1D (n <  k/p):      O(alpha log p + beta n^2 + gamma n^2 k / p)
//   2D (n >  k sqrt p): O(alpha sqrt p + beta nk log p / sqrt p + gamma n^2 k / p)
//   3D (in between):    O(alpha (np/k)^{2/3} log p + beta (n^2 k/p)^{2/3}
//                         + gamma n^2 k / p)

#include "dist/dist_matrix.hpp"
#include "sim/comm.hpp"

namespace catrsm::trsm {

using dist::DistMatrix;
using la::index_t;

struct RecTrsmOptions {
  /// Base-case size; 0 = automatic (the paper's regime-dependent n0).
  index_t n0 = 0;
};

/// Automatic base-case size per Section IV-A for an n x k solve on p ranks
/// arranged pr x pc.
index_t rec_trsm_auto_n0(index_t n, index_t k, int pr, int pc);

/// Solve L X = B. `l` is n x n lower-triangular, cyclic (unit blocks) on a
/// pr x pc face; `b` is n x k cyclic on the same face; pr must divide pc.
/// Returns X cyclic on the same face.
DistMatrix rec_trsm(const DistMatrix& l, const DistMatrix& b,
                    const sim::Comm& comm, RecTrsmOptions opts = {});

}  // namespace catrsm::trsm
