#include "trsm/solver.hpp"

#include "support/check.hpp"

namespace catrsm::trsm {

using la::Matrix;

api::OpDesc solve_desc(const Matrix& l, const Matrix& b,
                       const SolveOptions& opts) {
  api::TrsmSpec spec;
  spec.uplo = opts.uplo;
  spec.transpose = opts.transpose_l;
  spec.side = opts.side;
  spec.force_algorithm = opts.force_algorithm;
  spec.algorithm = opts.algorithm;
  spec.nblocks = opts.nblocks;
  spec.rec_n0 = opts.rec_n0;
  // The planner keys on the normalized lower-left kernel shape: right-side
  // solves transpose the system, so their RHS count is B's row count.
  const la::index_t n = l.rows();
  const la::index_t k = opts.side == Side::kRight ? b.rows() : b.cols();
  return api::trsm_op(n, k, spec);
}

SolveResult solve_on(sim::Machine& machine, const Matrix& l, const Matrix& b,
                     SolveOptions opts) {
  api::Context ctx(machine);
  api::ExecResult r = ctx.plan(solve_desc(l, b, opts))->execute(l, b);
  SolveResult out;
  out.x = std::move(r.x);
  out.stats = std::move(r.stats);
  out.config = r.config;
  out.residual = r.residual;
  return out;
}

SolveResult solve(const Matrix& l, const Matrix& b, int p, SolveOptions opts) {
  sim::Machine machine(p, opts.machine);
  return solve_on(machine, l, b, opts);
}

}  // namespace catrsm::trsm
