#include "trsm/solver.hpp"

#include <memory>

#include "support/check.hpp"

namespace catrsm::trsm {

using la::Matrix;

api::OpDesc solve_desc(const Matrix& l, const Matrix& b,
                       const SolveOptions& opts) {
  api::TrsmSpec spec;
  spec.uplo = opts.uplo;
  spec.transpose = opts.transpose_l;
  spec.side = opts.side;
  spec.force_algorithm = opts.force_algorithm;
  spec.algorithm = opts.algorithm;
  spec.nblocks = opts.nblocks;
  spec.rec_n0 = opts.rec_n0;
  // The planner keys on the normalized lower-left kernel shape: right-side
  // solves transpose the system, so their RHS count is B's row count.
  const la::index_t n = l.rows();
  const la::index_t k = opts.side == Side::kRight ? b.rows() : b.cols();
  return api::trsm_op(n, k, spec);
}

api::Context& context_on(sim::Machine& machine) {
  // The Context rides in the machine's driver slot, so its lifetime is
  // EXACTLY the machine's: no global registry, nothing to evict, and the
  // returned reference stays valid as long as the machine does.
  std::shared_ptr<api::Context>& slot = machine.driver_context();
  if (!slot) slot = std::make_shared<api::Context>(machine);
  return *slot;
}

namespace {

SolveResult solve_with(api::Context& ctx, const Matrix& l, const Matrix& b,
                       const SolveOptions& opts) {
  api::ExecResult r = ctx.plan(solve_desc(l, b, opts))->execute(l, b);
  SolveResult out;
  out.x = std::move(r.x);
  out.stats = std::move(r.stats);
  out.config = r.config;
  out.residual = r.residual;
  return out;
}

}  // namespace

SolveResult solve_on(sim::Machine& machine, const Matrix& l, const Matrix& b,
                     SolveOptions opts) {
  return solve_with(context_on(machine), l, b, opts);
}

SolveResult solve(const Matrix& l, const Matrix& b, int p, SolveOptions opts) {
  // A fresh machine per call: nothing to reuse, so no registry entry —
  // a short-lived Context avoids aliasing a later machine that happens to
  // land at the same address.
  sim::Machine machine(p, opts.machine);
  api::Context ctx(machine);
  return solve_with(ctx, l, b, opts);
}

}  // namespace catrsm::trsm
