#include "trsm/solver.hpp"

#include <mutex>

#include "dist/redistribute.hpp"
#include "la/gemm.hpp"
#include "trsm/it_inv_trsm.hpp"
#include "trsm/rec_trsm.hpp"
#include "trsm/trsm2d.hpp"
#include "trsm/trsv1d.hpp"
#include "support/check.hpp"

namespace catrsm::trsm {

using dist::DistMatrix;
using dist::Face2D;
using la::Matrix;

namespace {

/// Reverse the rows of a matrix (the J permutation).
Matrix reversed_rows(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j)
      out(i, j) = m(m.rows() - 1 - i, j);
  return out;
}

/// J T J: reverse both index sets. Maps upper triangles to lower ones and
/// vice versa.
Matrix reversed_both(const Matrix& t) {
  const index_t n = t.rows();
  Matrix out(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      out(i, j) = t(n - 1 - i, n - 1 - j);
  return out;
}

/// The operand actually applied to X, op(T) in BLAS terms.
Matrix effective_operand(const Matrix& t, const SolveOptions& opts) {
  return opts.transpose_l ? t.transposed() : t;
}

}  // namespace

SolveResult solve_on(sim::Machine& machine, const Matrix& l, const Matrix& b,
                     SolveOptions opts) {
  // --- Normalize right-side solves: X op(T) = B  <=>  op(T)^T X^T = B^T.
  if (opts.side == Side::kRight) {
    SolveOptions inner = opts;
    inner.side = Side::kLeft;
    inner.transpose_l = !opts.transpose_l;
    SolveResult r = solve_on(machine, l, b.transposed(), inner);
    r.x = r.x.transposed();
    Matrix prod = la::matmul(r.x, effective_operand(l, opts));
    prod.sub(b);
    r.residual = la::frobenius_norm(prod) /
                 (la::frobenius_norm(l) * la::frobenius_norm(r.x) +
                  la::frobenius_norm(b) + 1e-300);
    return r;
  }

  // --- Normalize upper operands.
  if (opts.uplo == la::Uplo::kUpper) {
    SolveOptions inner = opts;
    inner.uplo = la::Uplo::kLower;
    if (opts.transpose_l) {
      // U^T is already lower-triangular: solve directly with it.
      inner.transpose_l = false;
      SolveResult r = solve_on(machine, l.transposed(), b, inner);
      r.residual = la::trsm_residual(l.transposed(), r.x, b);
      return r;
    }
    // U X = B: J U J is lower, X = J * lower_solve(J U J, J B).
    SolveResult r =
        solve_on(machine, reversed_both(l), reversed_rows(b), inner);
    r.x = reversed_rows(r.x);
    r.residual = la::trsm_residual(l, r.x, b);
    return r;
  }

  // --- Lower transposed: X = J * lower_solve(J L^T J, J B).
  if (opts.transpose_l) {
    SolveOptions inner = opts;
    inner.transpose_l = false;
    SolveResult r = solve_on(machine, reversed_both(l.transposed()),
                             reversed_rows(b), inner);
    r.x = reversed_rows(r.x);
    r.residual = la::trsm_residual(l.transposed(), r.x, b);
    return r;
  }

  const index_t n = l.rows();
  const index_t k = b.cols();
  CATRSM_CHECK(l.cols() == n, "solve: L must be square");
  CATRSM_CHECK(b.rows() == n, "solve: dimension mismatch");
  const int p = machine.nprocs();

  SolveResult result;
  result.config = opts.force_algorithm
                      ? model::configure_forced(n, k, p, opts.algorithm)
                      : model::configure(n, k, p);
  if (opts.nblocks > 0) result.config.nblocks = opts.nblocks;
  const model::Config& cfg = result.config;

  Matrix x_out(n, k);
  std::mutex x_mu;  // rank 0 writes once; mutex documents the intent

  result.stats = machine.run([&](sim::Rank& r) {
    sim::Comm world = sim::Comm::world(r);
    sim::PhaseScope algorithm_scope(r, "algorithm");
    DistMatrix x = [&]() -> DistMatrix {
      switch (cfg.algorithm) {
        case model::Algorithm::kIterative: {
          Face2D lface = it_inv_l_face(world, cfg.p1, cfg.p2);
          auto ldist = dist::cyclic_on(lface, n, n);
          DistMatrix dl(ldist, r.id());
          dl.fill([&](index_t i, index_t j) { return l(i, j); });
          auto bdist = it_inv_b_dist(world, cfg.p1, cfg.p2, n, k);
          DistMatrix db(bdist, r.id());
          db.fill([&](index_t i, index_t j) { return b(i, j); });
          ItInvOptions iio;
          iio.nblocks = cfg.nblocks;
          return it_inv_trsm(dl, db, world, cfg.p1, cfg.p2, iio);
        }
        case model::Algorithm::kRecursive: {
          Face2D face(world, cfg.pr, cfg.pc);
          auto ldist = dist::cyclic_on(face, n, n);
          auto bdist = dist::cyclic_on(face, n, k);
          DistMatrix dl(ldist, r.id());
          dl.fill([&](index_t i, index_t j) { return l(i, j); });
          DistMatrix db(bdist, r.id());
          db.fill([&](index_t i, index_t j) { return b(i, j); });
          RecTrsmOptions ro;
          ro.n0 = opts.rec_n0;
          return rec_trsm(dl, db, world, ro);
        }
        case model::Algorithm::kTrsm2D: {
          const auto [pr, pc] = dist::balanced_factors(p);
          Face2D face(world, pr, pc);
          auto ldist = dist::cyclic_on(face, n, n);
          auto bdist = dist::cyclic_on(face, n, k);
          DistMatrix dl(ldist, r.id());
          dl.fill([&](index_t i, index_t j) { return l(i, j); });
          DistMatrix db(bdist, r.id());
          db.fill([&](index_t i, index_t j) { return b(i, j); });
          return trsm2d(dl, db, world);
        }
        case model::Algorithm::kTrsv1D: {
          Face2D face(world, p, 1);
          auto ldist = dist::cyclic_on(face, n, n);
          auto bdist = dist::cyclic_on(face, n, k);
          DistMatrix dl(ldist, r.id());
          dl.fill([&](index_t i, index_t j) { return l(i, j); });
          DistMatrix db(bdist, r.id());
          db.fill([&](index_t i, index_t j) { return b(i, j); });
          return trsv1d(dl, db, world);
        }
      }
      throw Error("solve: unknown algorithm");
    }();

    sim::PhaseScope output_scope(r, "output-collect");
    const Matrix full = dist::collect(x, world);
    if (r.id() == 0) {
      std::lock_guard<std::mutex> guard(x_mu);
      x_out = full;
    }
  });

  result.x = std::move(x_out);
  result.residual = la::trsm_residual(l, result.x, b);
  return result;
}

SolveResult solve(const Matrix& l, const Matrix& b, int p, SolveOptions opts) {
  sim::Machine machine(p, opts.machine);
  return solve_on(machine, l, b, opts);
}

}  // namespace catrsm::trsm
