#include "trsm/rec_trsm.hpp"

#include <algorithm>
#include <cmath>

#include "coll/collectives.hpp"
#include "dist/redistribute.hpp"
#include "la/trsm.hpp"
#include "mm/mm3d.hpp"
#include "support/check.hpp"

namespace catrsm::trsm {

using dist::BlockCyclicDist;
using dist::Face2D;

namespace {

const BlockCyclicDist& as_cyclic(const DistMatrix& m, const char* who) {
  const auto* d = dynamic_cast<const BlockCyclicDist*>(&m.dist());
  CATRSM_CHECK(d != nullptr && d->br() == 1 && d->bc() == 1,
               std::string(who) + ": requires a unit-block cyclic layout");
  return *d;
}

/// Base case: gather L onto every rank, split B's columns over all p ranks
/// (paper lines 6-9), solve locally, and return to B's layout.
DistMatrix rec_base(const DistMatrix& l, const DistMatrix& b,
                    const sim::Comm& comm) {
  const index_t n = l.dist().rows();
  const index_t k = b.dist().cols();
  auto& ctx = comm.ctx();
  const int p = comm.size();

  const la::Matrix lfull = dist::collect(l, comm);

  // Column split over a flat 1 x p face: rank q gets a contiguous slab.
  Face2D flat(comm, 1, p);
  auto cols_dist = std::make_shared<BlockCyclicDist>(
      flat, n, k, std::max<index_t>(n, 1),
      std::max<index_t>(ceil_div(k, p), 1));
  DistMatrix bcols = dist::redistribute(b, cols_dist, comm);

  if (bcols.local().cols() > 0) {
    la::trsm_left(la::Uplo::kLower, la::Diag::kNonUnit, lfull,
                  bcols.local());
  }
  ctx.charge_flops(la::trsm_flops(n, bcols.local().cols()));

  return dist::redistribute(bcols, b.dist_ptr(), comm);
}

DistMatrix rec_trsm_impl(const DistMatrix& l, DistMatrix b,
                         const sim::Comm& comm, index_t n0);

/// pc = q * pr with q > 1: replicate L into q square subgrids and solve an
/// independent column subset of B on each (paper lines 1-4).
DistMatrix rec_split_columns(const DistMatrix& l, const DistMatrix& b,
                             const sim::Comm& comm, index_t n0) {
  const auto& ld = as_cyclic(l, "rec_trsm");
  const Face2D& face = ld.face();
  const int pr = face.pr();
  const int pc = face.pc();
  const int q = pc / pr;
  const index_t n = l.dist().rows();
  const index_t k = b.dist().cols();
  CATRSM_CHECK(ld.rsrc() == 0 && ld.csrc() == 0,
               "rec_trsm: column split requires an unshifted layout");

  const int gi = face.my_gi();
  const int gj = face.my_gj();
  const int y = gj % pr;   // position within the square subgrid
  const int z = gj / pr;   // which subgrid

  // --- Replicate L: allgather over the fiber (gi, y + pr*z') for all z'.
  std::vector<int> fiber_idx;
  fiber_idx.reserve(static_cast<std::size_t>(q));
  for (int zz = 0; zz < q; ++zz) fiber_idx.push_back(face.at(gi, y + pr * zz));
  sim::Comm fiber = face.comm().subset(fiber_idx);

  coll::Counts counts(static_cast<std::size_t>(q));
  for (int zz = 0; zz < q; ++zz) {
    const auto shape = ld.local_shape(fiber.world_rank(zz));
    counts[static_cast<std::size_t>(zz)] =
        static_cast<std::size_t>(shape.first * shape.second);
  }
  const coll::Buffer all =
      coll::allgather(fiber, l.local().data(), counts);

  // --- The square subgrid face (ranks (x', y' + pr*z) ordered x' + pr*y').
  std::vector<int> sub_idx;
  sub_idx.reserve(static_cast<std::size_t>(pr * pr));
  for (int yy = 0; yy < pr; ++yy)
    for (int xx = 0; xx < pr; ++xx) sub_idx.push_back(face.at(xx, yy + pr * z));
  Face2D subface(face.comm().subset(sub_idx), pr, pr);

  auto lsub_dist = dist::cyclic_on(subface, n, n);
  DistMatrix lsub(lsub_dist, comm.ctx().id());
  {
    // Piece z' holds my rows x columns j ≡ y + pr z' (mod pc). Column t of
    // the assembled block (global j = y + pr t) comes from piece t mod q.
    const index_t lrows = static_cast<index_t>(l.my_rows().size());
    const index_t lcols = lsub.local().cols();
    std::vector<std::size_t> offset(static_cast<std::size_t>(q) + 1, 0);
    for (int zz = 0; zz < q; ++zz)
      offset[static_cast<std::size_t>(zz) + 1] =
          offset[static_cast<std::size_t>(zz)] +
          counts[static_cast<std::size_t>(zz)];
    std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
    // Operate on the frozen allgather payload directly: hoist the slab
    // pointer (and the destination row pointer) out of the element loop
    // instead of re-deriving the view base per element.
    const double* src = all.data();
    double* dst = lsub.local().ptr();
    for (index_t rr = 0; rr < lrows; ++rr) {
      double* drow = dst + rr * lcols;
      for (index_t t = 0; t < lcols; ++t) {
        const auto zz = static_cast<std::size_t>(t % q);
        drow[t] = src[cursor[zz]++];
      }
    }
  }

  // --- My columns of B all belong to subgrid z; relabel them.
  index_t kz = 0;
  for (index_t j = 0; j < k; ++j)
    if ((j % pc) / pr == z) ++kz;
  auto bsub_dist = dist::cyclic_on(subface, n, kz);
  DistMatrix bsub(bsub_dist, comm.ctx().id());
  CATRSM_ASSERT(bsub.local().rows() == b.local().rows() &&
                    bsub.local().cols() == b.local().cols(),
                "rec_trsm: column-group relabeling shape mismatch");
  bsub.local() = b.local();

  sim::Comm subcomm = subface.comm();
  DistMatrix xsub = rec_trsm_impl(lsub, std::move(bsub), subcomm, n0);

  // --- Relabel the solution back onto the original face.
  DistMatrix x(b.dist_ptr(), comm.ctx().id());
  x.local() = xsub.local();
  return x;
}

DistMatrix rec_trsm_impl(const DistMatrix& l, DistMatrix b,
                         const sim::Comm& comm, index_t n0) {
  const auto& ld = as_cyclic(l, "rec_trsm");
  const Face2D& face = ld.face();
  const int pr = face.pr();
  const int pc = face.pc();
  const index_t n = l.dist().rows();
  const index_t k = b.dist().cols();

  if (pc > pr) {
    CATRSM_CHECK(pc % pr == 0, "rec_trsm: pr must divide pc");
    return rec_split_columns(l, b, comm, n0);
  }

  if (n <= n0 || comm.size() == 1 || n <= 1) {
    return rec_base(l, b, comm);
  }

  const index_t h = n / 2;
  const DistMatrix l11 = dist::cyclic_subblock(l, 0, 0, h, h);
  const DistMatrix l21 = dist::cyclic_subblock(l, h, 0, n - h, h);
  const DistMatrix l22 = dist::cyclic_subblock(l, h, h, n - h, n - h);
  DistMatrix b1 = dist::cyclic_subblock(b, 0, 0, h, k);
  DistMatrix b2 = dist::cyclic_subblock(b, h, 0, n - h, k);

  DistMatrix x1 = rec_trsm_impl(l11, std::move(b1), comm, n0);

  // B2 -= L21 * X1 via one 3D multiplication (paper line 14).
  const mm::MMGrid grid = mm::choose_mm_grid(n - h, h, k, comm.size());
  DistMatrix upd = mm::mm3d(l21, x1, b2.dist_ptr(), comm, grid);
  b2.local().sub(upd.local());
  comm.ctx().charge_flops(static_cast<double>(b2.local().size()));

  DistMatrix x2 = rec_trsm_impl(l22, std::move(b2), comm, n0);

  DistMatrix x(b.dist_ptr(), comm.ctx().id());
  dist::set_cyclic_subblock(x, 0, 0, x1);
  dist::set_cyclic_subblock(x, h, 0, x2);
  return x;
}

}  // namespace

index_t rec_trsm_auto_n0(index_t n, index_t k, int pr, int pc) {
  const double p = static_cast<double>(pr) * pc;
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double sqrtp = std::sqrt(p);
  const double logp = std::max(1.0, std::log2(p));
  double n0;
  if (dn < dk / p) {
    n0 = dn;  // 1D regime: no recursion on L at all
  } else if (dn > dk * sqrtp) {
    // 2D regime: n0 = max(sqrt p, n log p / sqrt p)  (Section IV-A).
    n0 = std::max(sqrtp, dn * logp / sqrtp);
  } else {
    // 3D regime: n0 = n^{1/3} (k / pr^2)^{2/3}.
    n0 = std::cbrt(dn) *
         std::pow(dk / (static_cast<double>(pr) * pr), 2.0 / 3.0);
  }
  return std::clamp<index_t>(static_cast<index_t>(std::llround(n0)), 1, n);
}

DistMatrix rec_trsm(const DistMatrix& l, const DistMatrix& b,
                    const sim::Comm& comm, RecTrsmOptions opts) {
  const auto& ld = as_cyclic(l, "rec_trsm");
  const auto& bd = as_cyclic(b, "rec_trsm");
  CATRSM_CHECK(l.dist().rows() == l.dist().cols(),
               "rec_trsm: L must be square");
  CATRSM_CHECK(b.dist().rows() == l.dist().rows(),
               "rec_trsm: dimension mismatch");
  CATRSM_CHECK(ld.face().pr() == bd.face().pr() &&
                   ld.face().pc() == bd.face().pc(),
               "rec_trsm: L and B must share a face");
  CATRSM_CHECK(ld.face().pc() % ld.face().pr() == 0,
               "rec_trsm: pr must divide pc");

  index_t n0 = opts.n0;
  if (n0 <= 0)
    n0 = rec_trsm_auto_n0(l.dist().rows(), b.dist().cols(), ld.face().pr(),
                          ld.face().pc());
  DistMatrix bcopy = b;
  return rec_trsm_impl(l, std::move(bcopy), comm, n0);
}

}  // namespace catrsm::trsm
