#pragma once
// Heath-Romine style pipelined substitution (paper Section II-C3): the
// classic communication-efficient algorithm for a triangular solve with a
// single (or few) right-hand sides on a 1D row-cyclic layout.
//
// Solutions x_i travel around a ring; every rank folds each arriving x_i
// into the partial sums of its own rows. The latency chain is O(n + p) —
// optimal for k = 1 (Solomonik et al. lower bound) but hopeless for large
// k, which is exactly the regime the paper's algorithms target. Included
// as the historical baseline for the benchmark suite.
//
//   S = O(n) per rank,  W = O(n k),  F = O(n^2 k / p).

#include "dist/dist_matrix.hpp"
#include "sim/comm.hpp"

namespace catrsm::trsm {

using dist::DistMatrix;
using la::index_t;

/// Solve L X = B with L n x n cyclic over a p x 1 face (row-cyclic 1D) and
/// B n x k in the matching row-cyclic layout. Returns X in B's layout.
DistMatrix trsv1d(const DistMatrix& l, const DistMatrix& b,
                  const sim::Comm& comm);

}  // namespace catrsm::trsm
