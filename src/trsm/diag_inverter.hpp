#pragma once
// The paper's Section VI-A: Diagonal-Inverter. Invert the n/n0 triangular
// blocks along the diagonal of L, each on its own r1 x r1 x r2 subgrid of
// p * n0/n ranks, all in parallel.
//
// All blocks travel to their subgrids in ONE personalized all-to-all (and
// back in one more), so the layout transitions cost O(alpha log p +
// beta (n n0 / p) log p) — the paper's lines 6/9/16/17 — and the inversions
// themselves add only O(log^2 (p n0 / n)) latency. The returned matrix
// equals L with every diagonal block replaced by its inverse, which is
// exactly the operand shape the iterative solver consumes.

#include <vector>

#include "dist/dist_matrix.hpp"
#include "sim/comm.hpp"

namespace catrsm::trsm {

using dist::DistMatrix;
using la::index_t;

struct DiagInvOptions {
  /// Base-case size handed down to the per-block recursive inversions.
  index_t base_size = 16;
};

/// `l` is n x n lower-triangular, cyclic (unit blocks) on a face over
/// `comm`; `nblocks` diagonal blocks of size ceil(n / nblocks) are
/// inverted. nblocks must be <= comm.size() and the assignment gives each
/// block floor(p / nblocks) ranks. Returns L with inverted diagonal blocks,
/// same distribution as `l`.
DistMatrix diag_inverter(const DistMatrix& l, const sim::Comm& comm,
                         int nblocks, DiagInvOptions opts = {});

}  // namespace catrsm::trsm
