#include "trsm/trsv1d.hpp"

#include "dist/layout.hpp"
#include "support/check.hpp"

namespace catrsm::trsm {

using dist::BlockCyclicDist;

namespace {
constexpr int kTagRing = 911;
}

DistMatrix trsv1d(const DistMatrix& l, const DistMatrix& b,
                  const sim::Comm& comm) {
  const auto* ld = dynamic_cast<const BlockCyclicDist*>(&l.dist());
  const auto* bd = dynamic_cast<const BlockCyclicDist*>(&b.dist());
  CATRSM_CHECK(ld != nullptr && bd != nullptr &&
                   ld->face().pc() == 1 && bd->face().pc() == 1 &&
                   ld->br() == 1 && bd->br() == 1,
               "trsv1d: requires 1D row-cyclic layouts");
  const index_t n = l.dist().rows();
  const index_t k = b.dist().cols();
  CATRSM_CHECK(l.dist().cols() == n && b.dist().rows() == n,
               "trsv1d: dimension mismatch");
  const int p = comm.size();
  const int me = comm.rank();
  auto& ctx = comm.ctx();

  DistMatrix x(b.dist_ptr(), b.me());
  // Running right-hand side: b minus already-applied column updates.
  la::Matrix partial = b.local();
  const auto& my_rows = x.my_rows();

  const int next = (me + 1) % p;
  const int prev = (me - 1 + p) % p;

  for (index_t j = 0; j < n; ++j) {
    const int owner = static_cast<int>(j % p);
    sim::Buffer xj;
    if (owner == me) {
      // All updates from columns < j have been applied; finish row j.
      const index_t lr = j / p;  // my local index of global row j
      const double diag = l.local()(lr, j);
      CATRSM_CHECK(diag != 0.0, "trsv1d: singular matrix");
      std::vector<double> row(static_cast<std::size_t>(k));
      for (index_t c = 0; c < k; ++c) {
        row[static_cast<std::size_t>(c)] = partial(lr, c) / diag;
        x.local()(lr, c) = row[static_cast<std::size_t>(c)];
      }
      xj = sim::Buffer(std::move(row));
      ctx.charge_flops(static_cast<double>(k));
    } else if (p > 1) {
      xj = comm.recv(prev, kTagRing);
    }
    // Forward along the ring unless the next rank is the original owner
    // (the value has then completed its full circle). The forward is a
    // refcount bump on the slab minted by the owner — no copies anywhere
    // on the ring.
    if (p > 1 && next != owner) comm.send(next, xj, kTagRing);

    // Fold x_j into the partial sums of my rows below j.
    double updated_rows = 0.0;
    for (std::size_t r = 0; r < my_rows.size(); ++r) {
      const index_t gi = my_rows[r];
      if (gi <= j) continue;
      const double lij = l.local()(static_cast<index_t>(r), j);
      if (lij == 0.0) continue;
      for (index_t c = 0; c < k; ++c)
        partial(static_cast<index_t>(r), c) -=
            lij * xj[static_cast<std::size_t>(c)];
      updated_rows += 1.0;
    }
    ctx.charge_flops(2.0 * updated_rows * static_cast<double>(k));
  }
  return x;
}

}  // namespace catrsm::trsm
