#pragma once
// The library's legacy free-function front door: solve L X = B on a
// simulated p-processor machine with everything configured automatically —
// regime classification, algorithm selection, grid factorization, block
// counts — exactly the recommendations of the paper's Section VIII.
//
//   catrsm::trsm::SolveResult r = catrsm::trsm::solve(L, B, /*p=*/64);
//   r.x          — the solution
//   r.stats      — measured S/W/F per rank and the critical-path time
//   r.config     — what was chosen and why (regime, algorithm, grids)
//   r.residual   — ||L X - B|| / (||L|| ||X|| + ||B||)
//
// Both functions are thin shims over the handle-based plan/execute API in
// api/catrsm.hpp (catrsm::api::Context + catrsm::api::Plan) — prefer that
// interface for repeated traffic: it caches plans and reuses the iterative
// algorithm's inverted diagonal blocks across solves.

#include "api/catrsm.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"
#include "model/tuning.hpp"
#include "sim/machine.hpp"

namespace catrsm::trsm {

/// Which side the triangular operand acts on: T X = B or X T = B.
using Side = api::Side;

struct SolveOptions {
  /// Triangle actually stored in the operand (upper solves reduce to the
  /// lower kernel via the index-reversal identity: J U J is lower).
  la::Uplo uplo = la::Uplo::kLower;
  /// Solve with the transpose of the operand (T^T X = B) — the second
  /// half of a Cholesky solve. For a lower operand this uses
  /// X = J * lower_solve(J T^T J, J B) with J the reversal permutation.
  bool transpose_l = false;
  /// Left (T X = B) or right (X T = B) solve; right solves transpose the
  /// system (op(T)^T X^T = B^T) and delegate.
  Side side = Side::kLeft;
  /// Override the automatic algorithm choice.
  bool force_algorithm = false;
  model::Algorithm algorithm = model::Algorithm::kIterative;
  /// Override the diagonal block count (iterative) / base size (recursive).
  int nblocks = 0;
  la::index_t rec_n0 = 0;
  /// Machine parameters for the virtual clock.
  sim::MachineParams machine{};
};

struct SolveResult {
  la::Matrix x;
  /// Full-run stats. Phase buckets: "algorithm" (the distributed solve
  /// itself — compare THIS against the paper's formulas), "input-fill"
  /// (none: fills are local), and "output-collect" (the allgather that
  /// materializes the global X for the caller).
  sim::RunStats stats;
  model::Config config;
  double residual = 0.0;

  /// Max-over-ranks cost of the distributed solve only, excluding the
  /// driver's output gather.
  sim::Cost algorithm_cost() const { return stats.phase_cost("algorithm"); }
};

/// Build the plan descriptor equivalent to a solve of `l` against `b`
/// under `opts` (the shape normalization the planner keys on).
api::OpDesc solve_desc(const la::Matrix& l, const la::Matrix& b,
                       const SolveOptions& opts);

/// Solve with a fresh machine of p ranks.
SolveResult solve(const la::Matrix& l, const la::Matrix& b, int p,
                  SolveOptions opts = {});

/// Solve on an existing machine. Repeated calls on the SAME machine share
/// one plan-caching api::Context (see context_on), so the plan cache and
/// the iterative algorithm's inverted diagonal blocks are reused across
/// calls instead of being rebuilt per solve.
SolveResult solve_on(sim::Machine& machine, const la::Matrix& l,
                     const la::Matrix& b, SolveOptions opts = {});

/// The per-machine Context behind solve_on: created on first use and
/// stored in the machine's driver slot, so it lives exactly as long as
/// the machine (the returned reference is valid for the machine's
/// lifetime). Exposed so callers and tests can observe cache_stats() /
/// pre-plan ops. Follows the machine's thread-affinity rules: one
/// machine per client thread.
api::Context& context_on(sim::Machine& machine);

}  // namespace catrsm::trsm
