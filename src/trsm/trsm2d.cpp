#include "trsm/trsm2d.hpp"

#include <algorithm>
#include <cmath>

#include "coll/collectives.hpp"
#include "dist/redistribute.hpp"
#include "la/gemm.hpp"
#include "la/trsm.hpp"
#include "support/check.hpp"

namespace catrsm::trsm {

using dist::BlockCyclicDist;
using dist::Face2D;
using la::Matrix;

DistMatrix trsm2d(const DistMatrix& l, const DistMatrix& b,
                  const sim::Comm& comm, index_t nb) {
  const auto* ld = dynamic_cast<const BlockCyclicDist*>(&l.dist());
  const auto* bd = dynamic_cast<const BlockCyclicDist*>(&b.dist());
  CATRSM_CHECK(ld != nullptr && bd != nullptr && ld->br() == 1 &&
                   ld->bc() == 1 && bd->br() == 1 && bd->bc() == 1,
               "trsm2d: requires unit-block cyclic layouts");
  const index_t n = l.dist().rows();
  const index_t k = b.dist().cols();
  CATRSM_CHECK(l.dist().cols() == n && b.dist().rows() == n,
               "trsm2d: dimension mismatch");
  const Face2D& face = ld->face();
  const int pr = face.pr();
  const int pc = face.pc();
  auto& ctx = comm.ctx();
  if (nb <= 0)
    nb = std::max<index_t>(
        1, n / std::max<index_t>(4 * static_cast<index_t>(
                                          std::lround(std::sqrt(
                                              static_cast<double>(pr * pc)))),
                                 1));

  const sim::Comm colc = face.col_comm();  // my grid column (pr ranks)

  DistMatrix x(b.dist_ptr(), b.me());
  Matrix bcur = b.local();  // running RHS, updated in place
  const auto& my_rows = b.my_rows();
  const auto& my_cols = b.my_cols();
  const auto& l_rows = l.my_rows();
  const auto& l_cols = l.my_cols();

  for (index_t o = 0; o < n; o += nb) {
    const index_t sz = std::min(nb, n - o);

    // (1) Diagonal block to everyone.
    const Matrix ldiag = dist::gather_region(l.dist(), l.local(), l.me(),
                                             comm, o, o + sz, o, o + sz);

    // (2) B(Si) rows of my column group, assembled down the grid column
    //     from the *current* working values. The grid column collectively
    //     owns only my column part, so extract exactly those columns.
    const Matrix bsi = dist::gather_region(b.dist(), bcur, b.me(), colc, o,
                                           o + sz, 0, k);
    Matrix bsi_mine(sz, static_cast<index_t>(my_cols.size()));
    for (std::size_t c = 0; c < my_cols.size(); ++c)
      for (index_t r = 0; r < sz; ++r)
        bsi_mine(r, static_cast<index_t>(c)) = bsi(r, my_cols[c]);

    // (3) Redundant solve within the column group.
    la::trsm_left(la::Uplo::kLower, la::Diag::kNonUnit, ldiag, bsi_mine);
    ctx.charge_flops(la::trsm_flops(sz, bsi_mine.cols()));

    // Write my rows of X(Si).
    for (std::size_t r = 0; r < my_rows.size(); ++r) {
      const index_t gi = my_rows[r];
      if (gi < o || gi >= o + sz) continue;
      for (std::size_t c = 0; c < my_cols.size(); ++c)
        x.local()(static_cast<index_t>(r), static_cast<index_t>(c)) =
            bsi_mine(gi - o, static_cast<index_t>(c));
    }

    if (o + sz >= n) break;

    // (4) Trailing panel L(T, Si) pieces across my grid row, then a fully
    // local update of my rows/columns of B.
    const sim::Comm rowc = face.row_comm();
    // My trailing rows.
    std::vector<index_t> trail_rows;
    for (const index_t gi : l_rows)
      if (gi >= o + sz) trail_rows.push_back(gi);
    // Assemble L(my trailing rows, Si): allgather column pieces across the
    // grid row (each member owns a column subset of Si for the same rows).
    coll::Counts counts(static_cast<std::size_t>(pc));
    std::vector<std::vector<index_t>> cols_of(static_cast<std::size_t>(pc));
    for (index_t j = o; j < o + sz; ++j)
      cols_of[static_cast<std::size_t>(l.dist().part_of_col(j))].push_back(j);
    for (int q = 0; q < pc; ++q)
      counts[static_cast<std::size_t>(q)] =
          cols_of[static_cast<std::size_t>(q)].size() * trail_rows.size();
    coll::Buf mine;
    for (const index_t gi : trail_rows) {
      const auto lr = static_cast<index_t>(
          std::lower_bound(l_rows.begin(), l_rows.end(), gi) -
          l_rows.begin());
      for (const index_t j : cols_of[static_cast<std::size_t>(face.my_gj())]) {
        const auto lc = static_cast<index_t>(
            std::lower_bound(l_cols.begin(), l_cols.end(), j) -
            l_cols.begin());
        mine.push_back(l.local()(lr, lc));
      }
    }
    const coll::Buffer all = coll::allgather(rowc, std::move(mine), counts);
    Matrix lpanel(static_cast<index_t>(trail_rows.size()), sz);
    std::size_t pos = 0;
    for (int q = 0; q < pc; ++q) {
      for (index_t r = 0; r < static_cast<index_t>(trail_rows.size()); ++r)
        for (const index_t j : cols_of[static_cast<std::size_t>(q)])
          lpanel(r, j - o) = all[pos++];
    }
    CATRSM_ASSERT(pos == all.size(), "trsm2d: panel size mismatch");

    // Local update: bcur(my trailing rows, my cols) -= lpanel * X(Si, my
    // cols); X(Si, my cols) is bsi_mine.
    if (!trail_rows.empty()) {
      const Matrix upd = la::matmul(lpanel, bsi_mine);
      ctx.charge_flops(la::gemm_flops(lpanel.rows(), bsi_mine.cols(), sz));
      for (std::size_t tr = 0; tr < trail_rows.size(); ++tr) {
        const auto lr = static_cast<index_t>(
            std::lower_bound(my_rows.begin(), my_rows.end(),
                             trail_rows[tr]) -
            my_rows.begin());
        for (index_t c = 0; c < static_cast<index_t>(my_cols.size()); ++c)
          bcur(lr, c) -= upd(static_cast<index_t>(tr), c);
      }
      ctx.charge_flops(static_cast<double>(trail_rows.size()) *
                       static_cast<double>(my_cols.size()));
    }
  }
  return x;
}

}  // namespace catrsm::trsm
