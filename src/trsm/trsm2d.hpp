#pragma once
// ScaLAPACK-style 2D block fan-out TRSM: the conventional distributed
// solver a production library would have used before the paper's
// algorithms. Right-looking over column panels of width nb:
//
//   for each block row Si (width nb):
//     every rank obtains L(Si, Si) (allgather) and the B(Si) rows of its
//     column group (allgather down the grid column), solves redundantly
//     within each column group, and applies the trailing update with its
//     own locally-held L(T, Si) panel piece (allgathered across the row).
//
//   S = O((n / nb) log p),
//   W = O(n^2 / pr + n k / pc + n nb),
//   F = n^2 k / p + redundant-solve overhead n nb k / pc.
//
// Included as the "2D reference" ablation: it shows the latency wall
// ((n/nb) log p with nb tied to memory) that selective inversion removes.

#include "dist/dist_matrix.hpp"
#include "sim/comm.hpp"

namespace catrsm::trsm {

using dist::DistMatrix;
using la::index_t;

/// Solve L X = B with both operands cyclic (unit blocks) on the same
/// pr x pc face. `nb` is the panel width (0 = automatic).
DistMatrix trsm2d(const DistMatrix& l, const DistMatrix& b,
                  const sim::Comm& comm, index_t nb = 0);

}  // namespace catrsm::trsm
