#include "trsm/diag_inverter.hpp"

#include <algorithm>

#include "coll/alltoall.hpp"
#include "trsm/tri_inv_dist.hpp"
#include "support/check.hpp"

namespace catrsm::trsm {

using dist::BlockCyclicDist;
using dist::Face2D;

namespace {

struct BlockHome {
  index_t offset = 0;  // global index of the block's top-left corner
  index_t size = 0;
  std::shared_ptr<BlockCyclicDist> dist;  // cyclic layout on its subgrid
};

}  // namespace

DistMatrix diag_inverter(const DistMatrix& l, const sim::Comm& comm,
                         int nblocks, DiagInvOptions opts) {
  const auto* ld = dynamic_cast<const BlockCyclicDist*>(&l.dist());
  CATRSM_CHECK(ld != nullptr && ld->br() == 1 && ld->bc() == 1,
               "diag_inverter: requires a unit-block cyclic layout");
  const index_t n = l.dist().rows();
  CATRSM_CHECK(l.dist().cols() == n, "diag_inverter: matrix must be square");
  const int p = comm.size();
  CATRSM_CHECK(nblocks >= 1, "diag_inverter: need at least one block");
  auto& ctx = comm.ctx();
  const int me = ctx.id();

  const index_t nb = ceil_div(n, nblocks);
  // When nblocks <= p every block gets its own subgrid of q ranks; with
  // more blocks than ranks, subgrids take several blocks and invert them
  // sequentially (block b lives on group b mod ngroups).
  const int ngroups = std::min(nblocks, p);
  const int q = p / ngroups;  // ranks per block subgrid

  // Describe every block's home subgrid (pure arithmetic on all ranks).
  std::vector<BlockHome> homes(static_cast<std::size_t>(nblocks));
  for (int b = 0; b < nblocks; ++b) {
    auto& home = homes[static_cast<std::size_t>(b)];
    home.offset = static_cast<index_t>(b) * nb;
    home.size = std::min(nb, n - home.offset);
    const int group = b % ngroups;
    std::vector<int> members;
    members.reserve(static_cast<std::size_t>(q));
    for (int r = 0; r < q; ++r)
      members.push_back(comm.world_rank(group * q + r));
    const auto [sr, sc] = dist::balanced_factors(q);
    Face2D subface(sim::Comm(ctx, members), sr, sc);
    home.dist = std::make_shared<BlockCyclicDist>(subface, home.size,
                                                  home.size, 1, 1);
  }
  const int my_group = comm.rank() < ngroups * q ? comm.rank() / q : -1;
  std::vector<int> my_blocks;
  if (my_group >= 0)
    for (int b = my_group; b < nblocks; b += ngroups) my_blocks.push_back(b);

  // --- Phase 1: one personalized all-to-all ships every diagonal block to
  // its subgrid (paper lines 6 and 9 fused).
  std::vector<coll::Buf> outgoing(static_cast<std::size_t>(p));
  if (l.participates()) {
    const auto& rows = l.my_rows();
    const auto& cols = l.my_cols();
    for (const BlockHome& home : homes) {
      const auto r_lo = std::lower_bound(rows.begin(), rows.end(),
                                         home.offset) -
                        rows.begin();
      const auto r_hi = std::lower_bound(rows.begin(), rows.end(),
                                         home.offset + home.size) -
                        rows.begin();
      const auto c_lo = std::lower_bound(cols.begin(), cols.end(),
                                         home.offset) -
                        cols.begin();
      const auto c_hi = std::lower_bound(cols.begin(), cols.end(),
                                         home.offset + home.size) -
                        cols.begin();
      for (auto r = r_lo; r < r_hi; ++r) {
        const index_t bi = rows[static_cast<std::size_t>(r)] - home.offset;
        const int rp = home.dist->part_of_row(bi);
        for (auto c = c_lo; c < c_hi; ++c) {
          const index_t bj = cols[static_cast<std::size_t>(c)] - home.offset;
          const int w = home.dist->world_rank_of(rp, home.dist->part_of_col(bj));
          const int t = comm.index_of_world(w);
          outgoing[static_cast<std::size_t>(t)].push_back(
              l.local()(static_cast<index_t>(r), static_cast<index_t>(c)));
        }
      }
    }
  }
  std::vector<coll::Buffer> incoming =
      coll::alltoallv(comm, std::move(outgoing));

  std::vector<DistMatrix> my_block_mats;
  {
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    for (const int b : my_blocks) {
      const BlockHome& home = homes[static_cast<std::size_t>(b)];
      DistMatrix mat(home.dist, me);
      if (mat.participates()) {
        const auto& rows = mat.my_rows();
        const auto& cols = mat.my_cols();
        for (std::size_t r = 0; r < rows.size(); ++r) {
          const int sp = l.dist().part_of_row(home.offset + rows[r]);
          for (std::size_t c = 0; c < cols.size(); ++c) {
            const int w = l.dist().world_rank_of(
                sp, l.dist().part_of_col(home.offset + cols[c]));
            const int s = comm.index_of_world(w);
            auto& cur = cursor[static_cast<std::size_t>(s)];
            CATRSM_ASSERT(cur < incoming[static_cast<std::size_t>(s)].size(),
                          "diag_inverter: short scatter stream");
            mat.local()(static_cast<index_t>(r), static_cast<index_t>(c)) =
                incoming[static_cast<std::size_t>(s)][cur++];
          }
        }
      }
      my_block_mats.push_back(std::move(mat));
    }
  }

  // --- Phase 2: all subgrids invert their blocks concurrently (several
  // blocks per subgrid invert back-to-back when nblocks > p).
  std::vector<DistMatrix> my_invs;
  for (std::size_t i = 0; i < my_blocks.size(); ++i) {
    const BlockHome& home =
        homes[static_cast<std::size_t>(my_blocks[i])];
    sim::Comm subcomm = home.dist->face().comm();
    TriInvOptions tio;
    tio.base_size = opts.base_size;
    my_invs.push_back(tri_inv_dist(my_block_mats[i], subcomm, tio));
  }

  // --- Phase 3: one all-to-all returns the inverted blocks (paper lines
  // 16 and 17 fused); the result is L with its diagonal blocks replaced.
  std::vector<coll::Buf> back_out(static_cast<std::size_t>(p));
  for (std::size_t i = 0; i < my_blocks.size(); ++i) {
    const DistMatrix& my_inv = my_invs[i];
    if (!my_inv.participates()) continue;
    const BlockHome& home = homes[static_cast<std::size_t>(my_blocks[i])];
    const auto& rows = my_inv.my_rows();
    const auto& cols = my_inv.my_cols();
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const int dp = l.dist().part_of_row(home.offset + rows[r]);
      for (std::size_t c = 0; c < cols.size(); ++c) {
        const int w =
            l.dist().world_rank_of(dp, l.dist().part_of_col(home.offset +
                                                            cols[c]));
        const int t = comm.index_of_world(w);
        back_out[static_cast<std::size_t>(t)].push_back(
            my_inv.local()(static_cast<index_t>(r), static_cast<index_t>(c)));
      }
    }
  }
  std::vector<coll::Buffer> back_in =
      coll::alltoallv(comm, std::move(back_out));

  DistMatrix ltilde = l;  // off-diagonal panels stay as in L
  if (ltilde.participates()) {
    const auto& rows = ltilde.my_rows();
    const auto& cols = ltilde.my_cols();
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p), 0);
    for (const BlockHome& home : homes) {
      const auto r_lo = std::lower_bound(rows.begin(), rows.end(),
                                         home.offset) -
                        rows.begin();
      const auto r_hi = std::lower_bound(rows.begin(), rows.end(),
                                         home.offset + home.size) -
                        rows.begin();
      const auto c_lo = std::lower_bound(cols.begin(), cols.end(),
                                         home.offset) -
                        cols.begin();
      const auto c_hi = std::lower_bound(cols.begin(), cols.end(),
                                         home.offset + home.size) -
                        cols.begin();
      for (auto r = r_lo; r < r_hi; ++r) {
        const index_t bi = rows[static_cast<std::size_t>(r)] - home.offset;
        const int rp = home.dist->part_of_row(bi);
        for (auto c = c_lo; c < c_hi; ++c) {
          const index_t bj = cols[static_cast<std::size_t>(c)] - home.offset;
          const int w =
              home.dist->world_rank_of(rp, home.dist->part_of_col(bj));
          const int s = comm.index_of_world(w);
          auto& cur = cursor[static_cast<std::size_t>(s)];
          CATRSM_ASSERT(cur < back_in[static_cast<std::size_t>(s)].size(),
                        "diag_inverter: short gather stream");
          ltilde.local()(static_cast<index_t>(r), static_cast<index_t>(c)) =
              back_in[static_cast<std::size_t>(s)][cur++];
        }
      }
    }
  }
  return ltilde;
}

}  // namespace catrsm::trsm
