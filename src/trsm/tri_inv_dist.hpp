#pragma once
// The paper's Section V: parallel recursive triangular matrix inversion
// with the first communication cost analysis.
//
//   [ L11  0  ]^-1   [  L11^-1            0     ]
//   [ L21 L22 ]    = [ -L22^-1 L21 L11^-1 L22^-1 ]
//
// The two half-size inversions are *independent*, so the processor set is
// split in half and both recurse concurrently; the off-diagonal block then
// needs two matrix multiplications with all p ranks. Since the recursion
// depth is log p and each level costs O(log p) latency (redistributions
// and MM collectives), the total synchronization cost is O(log^2 p) —
// logarithmic rather than polynomial in p, which is the property the
// iterative TRSM algorithm of Section VI inherits.
//
// Leading-order costs (paper Section V-B, nu = 2^{1/3}/(2^{1/3}-1)):
//   W = nu * (n^2/(8 p1^2) + n^2/(2 p1 p2)),  F = nu * n^3 / (8p),
//   S = O(log^2 p).

#include "dist/dist_matrix.hpp"
#include "sim/comm.hpp"

namespace catrsm::trsm {

using dist::DistMatrix;
using la::index_t;

struct TriInvOptions {
  /// Stop recursing and invert redundantly below this matrix size.
  index_t base_size = 16;
};

/// Invert a lower-triangular matrix distributed cyclically (unit blocks,
/// any shift) on a face over `comm`. The result has the same distribution.
DistMatrix tri_inv_dist(const DistMatrix& l, const sim::Comm& comm,
                        TriInvOptions opts = {});

}  // namespace catrsm::trsm
