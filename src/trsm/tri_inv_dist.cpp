#include "trsm/tri_inv_dist.hpp"

#include "dist/redistribute.hpp"
#include "la/tri_inv.hpp"
#include "mm/mm3d.hpp"
#include "support/check.hpp"

namespace catrsm::trsm {

using dist::BlockCyclicDist;
using dist::Face2D;

namespace {

/// Redundant base case: gather L onto every rank of `comm`, invert locally
/// (each rank charges the flops — the computation is replicated, exactly
/// like the paper's 1D base case), keep my cyclic piece.
DistMatrix tri_inv_base(const DistMatrix& l, const sim::Comm& comm) {
  const la::Matrix lfull = dist::collect(l, comm);
  comm.ctx().charge_flops(la::tri_inv_flops(lfull.rows()));
  const la::Matrix inv = la::tri_inv(la::Uplo::kLower, lfull);
  DistMatrix out(l.dist_ptr(), l.me());
  out.fill_from_global(inv);
  return out;
}

}  // namespace

DistMatrix tri_inv_dist(const DistMatrix& l, const sim::Comm& comm,
                        TriInvOptions opts) {
  const auto* ld = dynamic_cast<const BlockCyclicDist*>(&l.dist());
  CATRSM_CHECK(ld != nullptr && ld->br() == 1 && ld->bc() == 1,
               "tri_inv_dist: requires a unit-block cyclic layout");
  const index_t n = l.dist().rows();
  CATRSM_CHECK(l.dist().cols() == n, "tri_inv_dist: matrix must be square");
  const int p = comm.size();
  auto& ctx = comm.ctx();

  if (p == 1 || n <= opts.base_size || n < 2) {
    return tri_inv_base(l, comm);
  }

  const index_t h = n / 2;
  const DistMatrix l11 = dist::cyclic_subblock(l, 0, 0, h, h);
  const DistMatrix l21 = dist::cyclic_subblock(l, h, 0, n - h, h);
  const DistMatrix l22 = dist::cyclic_subblock(l, h, h, n - h, n - h);

  // Split the ranks in half; each half recurses on one diagonal block.
  const int pa = p / 2;
  const int pb = p - pa;
  std::vector<int> half_a, half_b;
  for (int r = 0; r < pa; ++r) half_a.push_back(comm.world_rank(r));
  for (int r = pa; r < p; ++r) half_b.push_back(comm.world_rank(r));
  sim::Comm comm_a(ctx, half_a);
  sim::Comm comm_b(ctx, half_b);

  const auto [par, pac] = dist::balanced_factors(pa);
  const auto [pbr, pbc] = dist::balanced_factors(pb);
  Face2D face_a(comm_a, par, pac);
  Face2D face_b(comm_b, pbr, pbc);
  auto l11_dist = dist::cyclic_on(face_a, h, h);
  auto l22_dist = dist::cyclic_on(face_b, n - h, n - h);

  // Move each diagonal block to its half (everyone participates in both
  // exchanges: the data must leave the ranks of the other half too).
  DistMatrix l11_half = dist::redistribute(l11, l11_dist, comm);
  DistMatrix l22_half = dist::redistribute(l22, l22_dist, comm);

  // Concurrent recursion: SPMD code diverges by half, then rejoins.
  DistMatrix inv11_half(l11_dist, ctx.id());
  DistMatrix inv22_half(l22_dist, ctx.id());
  if (comm_a.is_member()) {
    inv11_half = tri_inv_dist(l11_half, comm_a, opts);
  } else {
    inv22_half = tri_inv_dist(l22_half, comm_b, opts);
  }

  // Bring both inverses back onto the full communicator's layout.
  DistMatrix inv11 = dist::redistribute(inv11_half, l11.dist_ptr(), comm);
  DistMatrix inv22 = dist::redistribute(inv22_half, l22.dist_ptr(), comm);

  // L21' = -(L22^-1 L21);  inv21 = L21' * L11^-1   (paper lines 12-13).
  const mm::MMGrid g1 = mm::choose_mm_grid(n - h, n - h, h, p);
  DistMatrix l21p =
      mm::mm3d(inv22, l21, l21.dist_ptr(), comm, g1, /*alpha=*/-1.0);
  const mm::MMGrid g2 = mm::choose_mm_grid(n - h, h, h, p);
  DistMatrix inv21 = mm::mm3d(l21p, inv11, l21.dist_ptr(), comm, g2);

  DistMatrix out(l.dist_ptr(), l.me());
  dist::set_cyclic_subblock(out, 0, 0, inv11);
  dist::set_cyclic_subblock(out, h, 0, inv21);
  dist::set_cyclic_subblock(out, h, h, inv22);
  return out;
}

}  // namespace catrsm::trsm
