#pragma once
// The paper's Section III: communication-efficient matrix multiplication
// B = A * X (A: n x n, X: n x k) that starts and ends in arbitrary 2D
// distributions, internally using a p1 x p1 x p2 processor grid with
// p = p1^2 * p2.
//
// Cost structure (leading order, matching the paper's per-line table):
//   - assemble A[x, y] on every z-layer:  allgather over z-fibers,
//       beta * n^2/p1^2 * 1_{p2 > 1}
//   - replicate X panels over x-fibers:   allgather over x-fibers,
//       beta * nk/(p1 p2)
//   - local gemm:                          gamma * 2 n^2 k / p
//   - reduce-scatter partial B over y-fibers:
//       (beta + gamma) * nk/(p1 p2)
//   - layout transitions in and out: Bruck all-to-alls,
//       O(alpha log p + beta * (n^2 + nk)/p * log p)   [lower order]
//
// p1 = sqrt(p), p2 = 1 gives the classic 2D algorithm; p1 = 1, p2 = p the
// 1D algorithm with A fully replicated; intermediate shapes interpolate —
// exactly the paper's "one / two / three large dimensions" regimes.

#include <memory>

#include "dist/redistribute.hpp"

namespace catrsm::mm {

using dist::DistMatrix;
using dist::Distribution;
using la::index_t;

struct MMGrid {
  int p1 = 1;
  int p2 = 1;
};

/// Modeled leading-order bandwidth of mm3d for A: m x n times X: n x k
/// (used to autotune the grid).
double mm3d_model_words(index_t m, index_t n, index_t k, int p1, int p2);

/// Choose p1, p2 with p1^2 * p2 == p minimizing modeled bandwidth
/// (brute force over the divisors of p; p need not be a power of two).
MMGrid choose_mm_grid(index_t m, index_t n, index_t k, int p);

/// B = alpha * A * X. `a` is m x n, `x` is n x k; both must be distributed
/// over ranks of `comm` (comm.size() == p1^2 * p2). The result is returned
/// under `out_dist` (owners must also lie inside `comm`).
DistMatrix mm3d(const DistMatrix& a, const DistMatrix& x,
                std::shared_ptr<const Distribution> out_dist,
                const sim::Comm& comm, MMGrid grid, double alpha = 1.0);

}  // namespace catrsm::mm
