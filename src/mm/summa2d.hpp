#pragma once
// Classic 2D SUMMA matrix multiplication baseline: C = A * X with A n x n
// and X n x k cyclic on a pr x pc face. Panel-by-panel broadcasts along
// grid rows and columns give
//   S = O((n / nb) log p),
//   W = O(n^2 / pr + n k / pc),
//   F = 2 n^2 k / p,
// the 2D reference point the paper's 3D algorithm improves on when extra
// memory (p2 > 1) is available.

#include <memory>

#include "dist/dist_matrix.hpp"

namespace catrsm::mm {

using dist::DistMatrix;
using la::index_t;

/// C = A * X; all three matrices cyclic on the same face. `nb` is the
/// contraction panel width (defaults to a balanced choice).
DistMatrix summa2d(const DistMatrix& a, const DistMatrix& x, index_t nb = 0);

}  // namespace catrsm::mm
