#include "mm/summa2d.hpp"

#include <algorithm>

#include "coll/collectives.hpp"
#include "la/gemm.hpp"
#include "support/check.hpp"

namespace catrsm::mm {

using dist::BlockCyclicDist;

DistMatrix summa2d(const DistMatrix& a, const DistMatrix& x, index_t nb) {
  const auto* adist = dynamic_cast<const BlockCyclicDist*>(&a.dist());
  const auto* xdist = dynamic_cast<const BlockCyclicDist*>(&x.dist());
  CATRSM_CHECK(adist != nullptr && xdist != nullptr,
               "summa2d: inputs must be block-cyclic");
  CATRSM_CHECK(adist->br() == 1 && adist->bc() == 1 && xdist->br() == 1 &&
                   xdist->bc() == 1,
               "summa2d: inputs must be cyclic (block size 1)");
  const index_t n = a.dist().rows();
  const index_t k = x.dist().cols();
  CATRSM_CHECK(a.dist().cols() == n, "summa2d: A must be square");
  CATRSM_CHECK(x.dist().rows() == n, "summa2d: inner dimensions differ");

  const dist::Face2D& face = adist->face();
  const int pr = face.pr();
  const int pc = face.pc();
  auto& ctx = face.comm().ctx();
  if (nb <= 0) nb = std::max<index_t>(1, n / std::max(pr, pc));

  auto cdist = std::make_shared<BlockCyclicDist>(face, n, k, 1, 1);
  DistMatrix c(cdist, ctx.id());

  const sim::Comm rowc = face.row_comm();  // my grid row, ordered by gj
  const sim::Comm colc = face.col_comm();  // my grid column, ordered by gi

  const auto& my_arows = a.my_rows();
  const auto& my_xcols = x.my_cols();

  for (index_t l0 = 0; l0 < n; l0 += nb) {
    const index_t lw = std::min(nb, n - l0);

    // Assemble A(my rows, l0:l0+lw) by allgathering each grid-row peer's
    // slice of the panel columns.
    la::Matrix apanel(static_cast<index_t>(my_arows.size()), lw);
    {
      coll::Counts counts(static_cast<std::size_t>(pc));
      std::vector<std::vector<index_t>> owned_cols(
          static_cast<std::size_t>(pc));
      for (index_t j = l0; j < l0 + lw; ++j) {
        const auto cp = static_cast<std::size_t>(adist->part_of_col(j));
        owned_cols[cp].push_back(j);
      }
      for (int q = 0; q < pc; ++q)
        counts[static_cast<std::size_t>(q)] =
            owned_cols[static_cast<std::size_t>(q)].size() * my_arows.size();

      // My contribution: my rows x my panel columns, row-major.
      coll::Buf mine;
      const auto& mycols_list =
          owned_cols[static_cast<std::size_t>(face.my_gj())];
      mine.reserve(mycols_list.size() * my_arows.size());
      for (std::size_t r = 0; r < my_arows.size(); ++r) {
        for (const index_t j : mycols_list) {
          // Translate global column to my local column index: columns are
          // cyclic, so local index is j / pc.
          mine.push_back(a.local()(static_cast<index_t>(r), j / pc));
        }
      }
      const coll::Buffer all =
          coll::allgather(rowc, std::move(mine), counts);
      std::size_t pos = 0;
      for (int q = 0; q < pc; ++q) {
        const auto& cols_q = owned_cols[static_cast<std::size_t>(q)];
        for (std::size_t r = 0; r < my_arows.size(); ++r)
          for (const index_t j : cols_q) {
            apanel(static_cast<index_t>(r), j - l0) = all[pos++];
          }
      }
      CATRSM_ASSERT(pos == all.size(), "summa2d: A panel size mismatch");
    }

    // Assemble X(l0:l0+lw, my cols) from grid-column peers.
    la::Matrix xpanel(lw, static_cast<index_t>(my_xcols.size()));
    {
      coll::Counts counts(static_cast<std::size_t>(pr));
      std::vector<std::vector<index_t>> owned_rows(
          static_cast<std::size_t>(pr));
      for (index_t i = l0; i < l0 + lw; ++i) {
        const auto rp = static_cast<std::size_t>(xdist->part_of_row(i));
        owned_rows[rp].push_back(i);
      }
      for (int q = 0; q < pr; ++q)
        counts[static_cast<std::size_t>(q)] =
            owned_rows[static_cast<std::size_t>(q)].size() * my_xcols.size();

      coll::Buf mine;
      const auto& myrows_list =
          owned_rows[static_cast<std::size_t>(face.my_gi())];
      mine.reserve(myrows_list.size() * my_xcols.size());
      for (const index_t i : myrows_list)
        for (std::size_t cidx = 0; cidx < my_xcols.size(); ++cidx)
          mine.push_back(x.local()(i / pr, static_cast<index_t>(cidx)));

      const coll::Buffer all =
          coll::allgather(colc, std::move(mine), counts);
      std::size_t pos = 0;
      for (int q = 0; q < pr; ++q) {
        for (const index_t i : owned_rows[static_cast<std::size_t>(q)])
          for (std::size_t cidx = 0; cidx < my_xcols.size(); ++cidx)
            xpanel(i - l0, static_cast<index_t>(cidx)) = all[pos++];
      }
      CATRSM_ASSERT(pos == all.size(), "summa2d: X panel size mismatch");
    }

    la::gemm(1.0, apanel, xpanel, 1.0, c.local());
    ctx.charge_flops(la::gemm_flops(apanel.rows(), xpanel.cols(), lw));
  }
  return c;
}

}  // namespace catrsm::mm
