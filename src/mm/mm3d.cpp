#include "mm/mm3d.hpp"

#include <limits>

#include "coll/collectives.hpp"
#include "la/gemm.hpp"
#include "support/check.hpp"

namespace catrsm::mm {

using dist::BlockCyclicDist;
using dist::Cyclic3DDist;
using dist::Face2D;
using dist::ProcGrid3D;

double mm3d_model_words(index_t m, index_t n, index_t k, int p1, int p2) {
  const double mm = static_cast<double>(m);
  const double nn = static_cast<double>(n);
  const double kk = static_cast<double>(k);
  double w = 0.0;
  if (p2 > 1) w += mm * nn / (static_cast<double>(p1) * p1);
  if (p1 > 1) w += (nn + mm) * kk / (static_cast<double>(p1) * p2);
  return w;
}

MMGrid choose_mm_grid(index_t m, index_t n, index_t k, int p) {
  CATRSM_CHECK(p >= 1, "choose_mm_grid: p must be positive");
  MMGrid best{1, p};
  double best_w = std::numeric_limits<double>::max();
  for (int p1 = 1; p1 * p1 <= p; ++p1) {
    if (p % (p1 * p1) != 0) continue;
    const int p2 = p / (p1 * p1);
    const double w = mm3d_model_words(m, n, k, p1, p2);
    // Prefer strictly better bandwidth; tie-break toward the larger p1
    // (more parallelism in the reduction dimension, fewer words in ties).
    if (w < best_w - 1e-12 || (w < best_w + 1e-12 && p1 > best.p1)) {
      best_w = w;
      best = MMGrid{p1, p2};
    }
  }
  return best;
}

namespace {

/// Face over `grid`'s communicator with member order
/// (gi = y + p1*x, gj = z): the pre-allgather home of the X panels.
Face2D x_panel_face(const ProcGrid3D& grid) {
  const int p1 = grid.p1();
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(grid.size()));
  for (int z = 0; z < grid.p2(); ++z)
    for (int gi = 0; gi < p1 * p1; ++gi)
      order.push_back(grid.at(gi / p1, gi % p1, z));
  return Face2D(grid.comm().subset(order), p1 * p1, grid.p2());
}

/// Face with the communicator's natural order (gi = x + p1*y, gj = z): the
/// post-reduce-scatter home of the B panels.
Face2D b_panel_face(const ProcGrid3D& grid) {
  std::vector<int> order(static_cast<std::size_t>(grid.size()));
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<int>(i);
  return Face2D(grid.comm().subset(order), grid.p1() * grid.p1(), grid.p2());
}

/// Count of values t in [0, total) with t % mod == residue.
index_t strided_count(index_t total, index_t mod, index_t residue) {
  if (residue >= total) return 0;
  return (total - residue - 1) / mod + 1;
}

}  // namespace

DistMatrix mm3d(const DistMatrix& a, const DistMatrix& x,
                std::shared_ptr<const Distribution> out_dist,
                const sim::Comm& comm, MMGrid g, double alpha) {
  const index_t m = a.dist().rows();
  const index_t n = a.dist().cols();
  const index_t k = x.dist().cols();
  CATRSM_CHECK(x.dist().rows() == n, "mm3d: inner dimensions differ");
  CATRSM_CHECK(out_dist->rows() == m && out_dist->cols() == k,
               "mm3d: output shape mismatch");
  CATRSM_CHECK(comm.size() == g.p1 * g.p1 * g.p2,
               "mm3d: communicator size must equal p1^2 * p2");

  const ProcGrid3D grid(comm, g.p1, g.p2);
  const int p1 = g.p1;
  const int p2 = g.p2;
  const int mx = grid.my_x();
  const int my = grid.my_y();
  const int mz = grid.my_z();
  auto& ctx = comm.ctx();

  // --- Stage 1: bring A into the 3D cyclic layout, then allgather the
  // z-fiber slices into the full cyclic block A'[x, y] (paper line 2).
  auto a3d_dist = std::make_shared<Cyclic3DDist>(grid, m, n);
  const DistMatrix a3d = dist::redistribute(a, a3d_dist, comm);

  const index_t a_rows = strided_count(m, p1, mx);  // rows i ≡ x (mod p1)
  const index_t a_cols = strided_count(n, p1, my);  // cols j ≡ y (mod p1)
  la::Matrix aprime(a_rows, a_cols);
  {
    sim::Comm zf = grid.z_fiber();
    coll::Counts counts(static_cast<std::size_t>(p2));
    for (int z = 0; z < p2; ++z) {
      const auto shape = a3d_dist->local_shape(zf.world_rank(z));
      counts[static_cast<std::size_t>(z)] =
          static_cast<std::size_t>(shape.first * shape.second);
    }
    const coll::Buffer all =
        coll::allgather(zf, a3d.local().data(), counts);
    // Piece z holds rows with (i / p1) ≡ z (mod p2); interleave them back:
    // local row t of A' (global i = x + p1 t) came from piece z = t % p2.
    std::size_t pos = 0;
    for (int z = 0; z < p2; ++z) {
      const index_t zrows = strided_count(a_rows, p2, z);
      for (index_t rr = 0; rr < zrows; ++rr) {
        const index_t t = static_cast<index_t>(z) + rr * p2;
        for (index_t c = 0; c < a_cols; ++c) aprime(t, c) = all[pos++];
      }
    }
    CATRSM_ASSERT(pos == all.size(), "mm3d: A allgather size mismatch");
  }

  // --- Stage 2: bring X into the pre-replication layout (rows cyclic over
  // p1^2 keyed by (y + p1 x), columns cyclic over p2 keyed by z), then
  // allgather over x-fibers into the panel X'[y, z] (paper lines 3-5).
  const Face2D xface = x_panel_face(grid);
  auto xpre_dist = std::make_shared<BlockCyclicDist>(xface, n, k, 1, 1);
  const DistMatrix xpre = dist::redistribute(x, xpre_dist, comm);

  const index_t panel_rows = strided_count(n, p1, my);  // rows i ≡ y (mod p1)
  const index_t panel_cols = strided_count(k, p2, mz);  // cols j ≡ z (mod p2)
  la::Matrix xpanel(panel_rows, panel_cols);
  {
    sim::Comm xf = grid.x_fiber();
    coll::Counts counts(static_cast<std::size_t>(p1));
    for (int xx = 0; xx < p1; ++xx) {
      const auto shape = xpre_dist->local_shape(xf.world_rank(xx));
      counts[static_cast<std::size_t>(xx)] =
          static_cast<std::size_t>(shape.first * shape.second);
    }
    const coll::Buffer all =
        coll::allgather(xf, xpre.local().data(), counts);
    // Piece x holds panel rows t ≡ x (mod p1) (t indexes rows i = y + p1 t).
    std::size_t pos = 0;
    for (int xx = 0; xx < p1; ++xx) {
      const index_t xrows = strided_count(panel_rows, p1, xx);
      for (index_t rr = 0; rr < xrows; ++rr) {
        const index_t t = static_cast<index_t>(xx) + rr * p1;
        for (index_t c = 0; c < panel_cols; ++c) xpanel(t, c) = all[pos++];
      }
    }
    CATRSM_ASSERT(pos == all.size(), "mm3d: X allgather size mismatch");
  }

  // --- Stage 3: local contraction over the y-indexed columns of A'
  // (paper line 6).
  la::Matrix bpartial = la::matmul(aprime, xpanel);
  ctx.charge_flops(la::gemm_flops(a_rows, panel_cols, a_cols));

  // --- Stage 4: reduce-scatter the partial results over y-fibers; share
  // y' keeps block rows t ≡ y' (mod p1) (paper line 7).
  la::Matrix breduced;
  {
    // Group rows by their destination share so segments are contiguous.
    la::Matrix grouped(a_rows, panel_cols);
    coll::Counts counts(static_cast<std::size_t>(p1));
    index_t gr = 0;
    for (int yy = 0; yy < p1; ++yy) {
      const index_t yrows = strided_count(a_rows, p1, yy);
      counts[static_cast<std::size_t>(yy)] =
          static_cast<std::size_t>(yrows * panel_cols);
      for (index_t rr = 0; rr < yrows; ++rr) {
        const index_t t = static_cast<index_t>(yy) + rr * p1;
        for (index_t c = 0; c < panel_cols; ++c)
          grouped(gr, c) = bpartial(t, c);
        ++gr;
      }
    }
    CATRSM_ASSERT(gr == a_rows, "mm3d: grouping row count mismatch");
    sim::Comm yf = grid.y_fiber();
    coll::Buffer mine = coll::reduce_scatter(yf, grouped.data(), counts);
    const index_t my_share_rows = strided_count(a_rows, p1, my);
    breduced = la::Matrix(my_share_rows, panel_cols, std::move(mine).take());
  }
  if (alpha != 1.0) breduced.scale(alpha);

  // --- Stage 5: the reduced panel lives cyclically on the natural face
  // (rows keyed by x + p1 y mod p1^2, columns by z mod p2); hand it to the
  // caller's layout with one more all-to-all (paper line 8).
  const Face2D bface = b_panel_face(grid);
  auto bpanel_dist = std::make_shared<BlockCyclicDist>(bface, m, k, 1, 1);
  DistMatrix bpanel(bpanel_dist, ctx.id());
  CATRSM_ASSERT(bpanel.local().rows() == breduced.rows() &&
                    bpanel.local().cols() == breduced.cols(),
                "mm3d: B panel shape mismatch");
  bpanel.local() = std::move(breduced);

  return dist::redistribute(bpanel, std::move(out_dist), comm);
}

}  // namespace catrsm::mm
