#include "coll/collectives.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace catrsm::coll {

namespace {

std::size_t sum_counts(const Counts& counts) {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

/// Offsets of each block within the concatenated vector.
std::vector<std::size_t> offsets_of(const Counts& counts) {
  std::vector<std::size_t> off(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i)
    off[i + 1] = off[i] + counts[i];
  return off;
}

}  // namespace

Counts even_counts(std::size_t total, int parts) {
  CATRSM_CHECK(parts >= 1, "even_counts: parts must be positive");
  Counts counts(static_cast<std::size_t>(parts));
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t rem = total % static_cast<std::size_t>(parts);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = base + (i < rem ? 1 : 0);
  return counts;
}

// ---------------------------------------------------------------------------
// Bruck all-gather: after stage with `have` blocks, rank r holds the cyclic
// block window {r, r+1, ..., r+have-1 (mod g)}. Each round doubles the
// window (last round may be partial), giving ceil(log g) rounds and
// total - own received words.

Buf allgather(const sim::Comm& comm, std::span<const double> mine,
              const Counts& counts) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts.size()) == g,
               "allgather: counts size mismatch");
  const int r = comm.rank();
  CATRSM_CHECK(mine.size() == counts[static_cast<std::size_t>(r)],
               "allgather: contribution size mismatch");

  std::vector<Buf> blocks(static_cast<std::size_t>(g));
  blocks[static_cast<std::size_t>(r)].assign(mine.begin(), mine.end());

  int have = 1;
  while (have < g) {
    const int send_cnt = std::min(have, g - have);
    const int dst = ((r - have) % g + g) % g;
    const int src = (r + have) % g;

    // Concatenate my first `send_cnt` window blocks {r, ..., r+send_cnt-1}.
    Buf payload;
    for (int b = 0; b < send_cnt; ++b) {
      const auto id = static_cast<std::size_t>((r + b) % g);
      payload.insert(payload.end(), blocks[id].begin(), blocks[id].end());
    }
    const Buf incoming =
        comm.shift(dst, src, payload, kTagAllgather);

    // Incoming holds blocks {r+have, ..., r+have+send_cnt-1}; slice by the
    // globally known counts.
    std::size_t pos = 0;
    for (int b = 0; b < send_cnt; ++b) {
      const auto id = static_cast<std::size_t>((r + have + b) % g);
      CATRSM_ASSERT(pos + counts[id] <= incoming.size(),
                    "allgather: short payload");
      blocks[id].assign(incoming.begin() + static_cast<std::ptrdiff_t>(pos),
                        incoming.begin() +
                            static_cast<std::ptrdiff_t>(pos + counts[id]));
      pos += counts[id];
    }
    CATRSM_ASSERT(pos == incoming.size(), "allgather: long payload");
    have += send_cnt;
  }

  Buf out;
  out.reserve(sum_counts(counts));
  for (int b = 0; b < g; ++b) {
    const auto& blk = blocks[static_cast<std::size_t>(b)];
    out.insert(out.end(), blk.begin(), blk.end());
  }
  return out;
}

Buf allgather_equal(const sim::Comm& comm, std::span<const double> mine) {
  return allgather(comm, mine,
                   Counts(static_cast<std::size_t>(comm.size()), mine.size()));
}

// ---------------------------------------------------------------------------
// Reduce-scatter: recursive halving over a power-of-two subgroup with a
// fold-in/fold-out step for leftover ranks.

namespace {

/// Recursive halving among ranks [0, g2) of `comm` (g2 a power of two),
/// where rank q is responsible for the segment [super_off[q], super_off[q+1])
/// of the working vector. Returns this rank's final segment.
Buf halving_core(const sim::Comm& comm, Buf work,
                 const std::vector<std::size_t>& super_off, int g2) {
  const int r = comm.rank();
  int lo = 0, hi = g2;
  // Track the live window of `work`: it always spans segments [lo, hi).
  std::size_t base = super_off[0];
  auto& ctx = comm.ctx();
  while (hi - lo > 1) {
    const int half = (hi - lo) / 2;
    const int mid = lo + half;
    const bool lower = r < mid;
    const std::size_t cut = super_off[static_cast<std::size_t>(mid)];
    const std::size_t lo_off = super_off[static_cast<std::size_t>(lo)];
    const std::size_t hi_off = super_off[static_cast<std::size_t>(hi)];

    std::span<const double> send_part, keep_part;
    std::span<const double> w(work);
    const std::size_t lo_len = cut - lo_off;
    if (lower) {
      send_part = w.subspan(lo_len - (lo_off - base) + (lo_off - base),
                            hi_off - cut);
      keep_part = w.subspan(lo_off - base, lo_len);
    } else {
      send_part = w.subspan(lo_off - base, lo_len);
      keep_part = w.subspan(cut - base, hi_off - cut);
    }
    const int peer = lower ? r + half : r - half;
    Buf incoming = comm.sendrecv(peer, send_part, kTagReduceScatter);
    CATRSM_ASSERT(incoming.size() == keep_part.size(),
                  "reduce_scatter: segment size mismatch");
    Buf next(keep_part.begin(), keep_part.end());
    for (std::size_t i = 0; i < next.size(); ++i) next[i] += incoming[i];
    ctx.charge_flops(static_cast<double>(next.size()));
    work = std::move(next);
    if (lower) {
      hi = mid;
    } else {
      lo = mid;
      base = cut;
    }
  }
  return work;
}

}  // namespace

Buf reduce_scatter(const sim::Comm& comm, std::span<const double> full,
                   const Counts& counts) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts.size()) == g,
               "reduce_scatter: counts size mismatch");
  CATRSM_CHECK(full.size() == sum_counts(counts),
               "reduce_scatter: input must cover every segment");
  const int r = comm.rank();
  if (g == 1) return Buf(full.begin(), full.end());

  const auto off = offsets_of(counts);

  // Fold down to a power of two: extra rank g2+e sends its whole addend to
  // rank e, and receives its final segment back at the end.
  int g2 = 1;
  while (g2 * 2 <= g) g2 *= 2;
  const int extras = g - g2;

  Buf work(full.begin(), full.end());
  if (extras > 0) {
    if (r >= g2) {
      comm.send(r - g2, work, kTagReduceScatter);
      Buf result = comm.recv(r - g2, kTagReduceScatter);
      CATRSM_ASSERT(result.size() == counts[static_cast<std::size_t>(r)],
                    "reduce_scatter: fold-out size mismatch");
      return result;
    }
    if (r < extras) {
      const Buf other = comm.recv(r + g2, kTagReduceScatter);
      CATRSM_ASSERT(other.size() == work.size(),
                    "reduce_scatter: fold-in size mismatch");
      for (std::size_t i = 0; i < work.size(); ++i) work[i] += other[i];
      comm.ctx().charge_flops(static_cast<double>(work.size()));
    }
  }

  // Super-segments: halving rank q owns block q plus (if q < extras) the
  // extra partner's block g2+q. Build a permuted working vector grouped by
  // super-segment so halving_core can use contiguous spans.
  std::vector<std::size_t> super_off(static_cast<std::size_t>(g2) + 1, 0);
  Buf grouped;
  grouped.reserve(work.size());
  for (int q = 0; q < g2; ++q) {
    super_off[static_cast<std::size_t>(q)] = grouped.size();
    grouped.insert(grouped.end(),
                   work.begin() + static_cast<std::ptrdiff_t>(off[static_cast<std::size_t>(q)]),
                   work.begin() + static_cast<std::ptrdiff_t>(off[static_cast<std::size_t>(q) + 1]));
    if (q < extras) {
      const auto b = static_cast<std::size_t>(g2 + q);
      grouped.insert(grouped.end(),
                     work.begin() + static_cast<std::ptrdiff_t>(off[b]),
                     work.begin() + static_cast<std::ptrdiff_t>(off[b + 1]));
    }
  }
  // Fix offsets: recompute cumulatively (the loop above recorded starts).
  super_off[static_cast<std::size_t>(g2)] = grouped.size();

  Buf segment = halving_core(comm, std::move(grouped), super_off, g2);

  // Fold out: forward the extra partner's block.
  const std::size_t my_len = counts[static_cast<std::size_t>(r)];
  if (r < extras) {
    CATRSM_ASSERT(segment.size() ==
                      my_len + counts[static_cast<std::size_t>(g2 + r)],
                  "reduce_scatter: super-segment size mismatch");
    std::span<const double> rest(segment.data() + my_len,
                                 segment.size() - my_len);
    comm.send(g2 + r, rest, kTagReduceScatter);
    segment.resize(my_len);
  } else {
    CATRSM_ASSERT(segment.size() == my_len,
                  "reduce_scatter: segment size mismatch");
  }
  return segment;
}

// ---------------------------------------------------------------------------
// Binomial scatter / gather over recursively split rank ranges. Ranks are
// rotated so the root maps to relative rank 0.

namespace {

struct Split {
  int lo, mid, hi;
};

/// The splits of [0, g) along relative rank `rel`'s path, top-down.
std::vector<Split> path_of(int rel, int g) {
  std::vector<Split> path;
  int lo = 0, hi = g;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;
    path.push_back({lo, mid, hi});
    if (rel < mid) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return path;
}

}  // namespace

Buf scatter(const sim::Comm& comm, int root, std::span<const double> all,
            const Counts& counts) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts.size()) == g,
               "scatter: counts size mismatch");
  CATRSM_CHECK(root >= 0 && root < g, "scatter: bad root");
  const int r = comm.rank();
  const int rel = ((r - root) % g + g) % g;

  // Block index for relative rank q is the absolute rank (q + root) % g;
  // `held` stores blocks for the relative range this rank currently owns.
  auto abs_of = [&](int q) { return (q + root) % g; };
  auto count_of = [&](int q) {
    return counts[static_cast<std::size_t>(abs_of(q))];
  };

  std::vector<Buf> held(static_cast<std::size_t>(g));
  if (rel == 0) {
    CATRSM_CHECK(all.size() == sum_counts(counts),
                 "scatter: root payload must cover every block");
    const auto off = offsets_of(counts);
    for (int q = 0; q < g; ++q) {
      const int a = abs_of(q);
      held[static_cast<std::size_t>(q)].assign(
          all.begin() + static_cast<std::ptrdiff_t>(off[static_cast<std::size_t>(a)]),
          all.begin() +
              static_cast<std::ptrdiff_t>(off[static_cast<std::size_t>(a) + 1]));
    }
  }

  for (const Split& s : path_of(rel, g)) {
    if (rel == s.lo) {
      Buf payload;
      for (int q = s.mid; q < s.hi; ++q) {
        auto& blk = held[static_cast<std::size_t>(q)];
        payload.insert(payload.end(), blk.begin(), blk.end());
        blk.clear();
      }
      comm.send(abs_of(s.mid), payload, kTagScatter);
    } else if (rel == s.mid) {
      const Buf payload = comm.recv(abs_of(s.lo), kTagScatter);
      std::size_t pos = 0;
      for (int q = s.mid; q < s.hi; ++q) {
        const std::size_t c = count_of(q);
        CATRSM_ASSERT(pos + c <= payload.size(), "scatter: short payload");
        held[static_cast<std::size_t>(q)].assign(
            payload.begin() + static_cast<std::ptrdiff_t>(pos),
            payload.begin() + static_cast<std::ptrdiff_t>(pos + c));
        pos += c;
      }
      CATRSM_ASSERT(pos == payload.size(), "scatter: long payload");
    }
  }
  return std::move(held[static_cast<std::size_t>(rel)]);
}

Buf gather(const sim::Comm& comm, int root, std::span<const double> mine,
           const Counts& counts) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts.size()) == g,
               "gather: counts size mismatch");
  CATRSM_CHECK(root >= 0 && root < g, "gather: bad root");
  const int r = comm.rank();
  const int rel = ((r - root) % g + g) % g;
  auto abs_of = [&](int q) { return (q + root) % g; };
  auto count_of = [&](int q) {
    return counts[static_cast<std::size_t>(abs_of(q))];
  };
  CATRSM_CHECK(mine.size() == count_of(rel),
               "gather: contribution size mismatch");

  std::vector<Buf> held(static_cast<std::size_t>(g));
  held[static_cast<std::size_t>(rel)].assign(mine.begin(), mine.end());

  const auto path = path_of(rel, g);
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const Split& s = *it;
    if (rel == s.lo) {
      const Buf payload = comm.recv(abs_of(s.mid), kTagGather);
      std::size_t pos = 0;
      for (int q = s.mid; q < s.hi; ++q) {
        const std::size_t c = count_of(q);
        CATRSM_ASSERT(pos + c <= payload.size(), "gather: short payload");
        held[static_cast<std::size_t>(q)].assign(
            payload.begin() + static_cast<std::ptrdiff_t>(pos),
            payload.begin() + static_cast<std::ptrdiff_t>(pos + c));
        pos += c;
      }
      CATRSM_ASSERT(pos == payload.size(), "gather: long payload");
    } else if (rel == s.mid) {
      Buf payload;
      for (int q = s.mid; q < s.hi; ++q) {
        auto& blk = held[static_cast<std::size_t>(q)];
        payload.insert(payload.end(), blk.begin(), blk.end());
        blk.clear();
      }
      comm.send(abs_of(s.lo), payload, kTagGather);
      return {};  // done: everything forwarded to the parent
    }
  }

  if (rel != 0) return {};
  Buf out;
  for (int a = 0; a < g; ++a) {
    const int q = ((a - root) % g + g) % g;
    const auto& blk = held[static_cast<std::size_t>(q)];
    CATRSM_ASSERT(blk.size() == counts[static_cast<std::size_t>(a)],
                  "gather: missing block");
    out.insert(out.end(), blk.begin(), blk.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Composite collectives (Chan et al. constructions, as in the paper).

Buf bcast(const sim::Comm& comm, int root, std::span<const double> data,
          std::size_t count) {
  const int g = comm.size();
  if (g == 1) {
    CATRSM_CHECK(data.size() == count, "bcast: count mismatch at root");
    return Buf(data.begin(), data.end());
  }
  if (comm.rank() == root)
    CATRSM_CHECK(data.size() == count, "bcast: count mismatch at root");
  const Counts counts = even_counts(count, g);
  const Buf part = scatter(comm, root, data, counts);
  return allgather(comm, part, counts);
}

Buf reduce(const sim::Comm& comm, int root, std::span<const double> full) {
  const int g = comm.size();
  if (g == 1) return Buf(full.begin(), full.end());
  const Counts counts = even_counts(full.size(), g);
  const Buf part = reduce_scatter(comm, full, counts);
  Buf out = gather(comm, root, part, counts);
  return out;
}

Buf allreduce(const sim::Comm& comm, std::span<const double> full) {
  const int g = comm.size();
  if (g == 1) return Buf(full.begin(), full.end());
  const Counts counts = even_counts(full.size(), g);
  const Buf part = reduce_scatter(comm, full, counts);
  return allgather(comm, part, counts);
}

void barrier(const sim::Comm& comm) {
  const int g = comm.size();
  for (int d = 1; d < g; d <<= 1) {
    const int dst = (comm.rank() + d) % g;
    const int src = ((comm.rank() - d) % g + g) % g;
    comm.shift(dst, src, {}, kTagBarrier);
  }
}

}  // namespace catrsm::coll
