#include "coll/collectives.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

#include "coll/check_hook.hpp"
#include "sim/fault.hpp"
#include "support/check.hpp"

namespace catrsm::coll {

namespace {

std::size_t sum_counts(const Counts& counts) {
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

/// Offsets of each block within the concatenated vector.
std::vector<std::size_t> offsets_of(const Counts& counts) {
  std::vector<std::size_t> off(counts.size() + 1, 0);
  for (std::size_t i = 0; i < counts.size(); ++i)
    off[i + 1] = off[i] + counts[i];
  return off;
}

/// Armed skew-fault hook (sim/fault.hpp), called after a primitive's local
/// precondition checks and before its CheckScope so the collective matcher
/// sees the perturbed metadata at entry. When the injector picks this
/// (epoch, call) site and this rank as the victim, *root is rotated
/// (scatter/gather) or `skewed` receives a copy of `counts` with one peer
/// slot perturbed (allgather/reduce-scatter) and the hook returns true —
/// the caller must then run the collective with the skewed values, exactly
/// like an application passing mismatched metadata would. One null check
/// when no plan is armed.
bool skew_hook(const sim::Comm& comm, int* root, const Counts& counts,
               Counts* skewed) {
  if (!comm.is_member()) return false;
  sim::Rank& r = comm.ctx();
  sim::FaultInjector* fi = r.fault_injector();
  if (fi == nullptr) return false;
  *skewed = counts;
  return fi->maybe_skew(comm.epoch(), r.id(), comm.rank(), comm.size(), root,
                        skewed);
}

}  // namespace

int coll_tag(CollOp op, const sim::Comm& comm) {
  return kTagBase + static_cast<int>(op) * kEpochSpace +
         static_cast<int>(comm.epoch() %
                          static_cast<std::uint64_t>(kEpochSpace));
}

Counts even_counts(std::size_t total, int parts) {
  CATRSM_CHECK(parts >= 1, "even_counts: parts must be positive");
  Counts counts(static_cast<std::size_t>(parts));
  const std::size_t base = total / static_cast<std::size_t>(parts);
  const std::size_t rem = total % static_cast<std::size_t>(parts);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts[i] = base + (i < rem ? 1 : 0);
  return counts;
}

// ---------------------------------------------------------------------------
// Bruck all-gather: after stage with `have` blocks, rank r holds the cyclic
// block window {r, r+1, ..., r+have-1 (mod g)}. Each round doubles the
// window (last round may be partial), giving ceil(log g) rounds and
// total - own received words. Blocks are views: each round's incoming
// payload is sliced, not copied, and a window re-forwarded intact travels
// as one wider slice of the same slab.

Buffer allgather(const sim::Comm& comm, Buffer mine, const Counts& counts_in) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts_in.size()) == g,
               "allgather: counts size mismatch");
  const int r = comm.rank();
  CATRSM_CHECK(mine.size() == counts_in[static_cast<std::size_t>(r)],
               "allgather: contribution size mismatch");
  int no_root = -1;
  Counts skewed;
  const Counts& counts =
      skew_hook(comm, &no_root, counts_in, &skewed) ? skewed : counts_in;
  CheckScope check(comm, CollOp::kAllgather, -1, &counts, mine.size());
  const int tag = coll_tag(CollOp::kAllgather, comm);

  std::vector<Buffer> blocks(static_cast<std::size_t>(g));
  blocks[static_cast<std::size_t>(r)] = std::move(mine);

  std::vector<Buffer> window;
  int have = 1;
  while (have < g) {
    const int send_cnt = std::min(have, g - have);
    const int dst = ((r - have) % g + g) % g;
    const int src = (r + have) % g;

    // My first `send_cnt` window blocks {r, ..., r+send_cnt-1}, coalesced
    // into one payload (a single slice when they already share a slab).
    window.clear();
    for (int b = 0; b < send_cnt; ++b)
      window.push_back(blocks[static_cast<std::size_t>((r + b) % g)]);
    const Buffer incoming =
        comm.shift(dst, src, sim::concat(window), tag);

    // Incoming holds blocks {r+have, ..., r+have+send_cnt-1}; slice by the
    // globally known counts.
    std::size_t pos = 0;
    for (int b = 0; b < send_cnt; ++b) {
      const auto id = static_cast<std::size_t>((r + have + b) % g);
      CATRSM_ASSERT(pos + counts[id] <= incoming.size(),
                    "allgather: short payload");
      blocks[id] = incoming.slice(pos, counts[id]);
      pos += counts[id];
    }
    CATRSM_ASSERT(pos == incoming.size(), "allgather: long payload");
    have += send_cnt;
  }

  return sim::concat(blocks);
}

Buffer allgather_equal(const sim::Comm& comm, Buffer mine) {
  Counts counts(static_cast<std::size_t>(comm.size()), mine.size());
  return allgather(comm, std::move(mine), counts);
}

// ---------------------------------------------------------------------------
// Reduce-scatter: recursive halving over a power-of-two subgroup with a
// fold-in/fold-out step for leftover ranks.

namespace {

/// Recursive halving among ranks [0, g2) of `comm` (g2 a power of two),
/// where rank q is responsible for the segment [super_off[q], super_off[q+1])
/// of the working vector. Returns this rank's final segment.
Buffer halving_core(const sim::Comm& comm, Buffer work,
                    const std::vector<std::size_t>& super_off, int g2,
                    int tag) {
  const int r = comm.rank();
  int lo = 0, hi = g2;
  // Track the live window of `work`: it always spans segments [lo, hi),
  // with base == super_off[lo].
  std::size_t base = super_off[0];
  auto& ctx = comm.ctx();
  while (hi - lo > 1) {
    const int half = (hi - lo) / 2;
    const int mid = lo + half;
    const bool lower = r < mid;
    const std::size_t cut = super_off[static_cast<std::size_t>(mid)];
    const std::size_t lo_off = super_off[static_cast<std::size_t>(lo)];
    const std::size_t hi_off = super_off[static_cast<std::size_t>(hi)];

    // The half I keep accumulates; the other half ships as a zero-copy
    // slice of the working buffer.
    Buffer send_part, keep_part;
    if (lower) {
      send_part = work.slice(cut - base, hi_off - cut);
      keep_part = work.slice(lo_off - base, cut - lo_off);
    } else {
      send_part = work.slice(lo_off - base, cut - lo_off);
      keep_part = work.slice(cut - base, hi_off - cut);
    }
    const int peer = lower ? r + half : r - half;
    const Buffer incoming = comm.sendrecv(peer, std::move(send_part), tag);
    CATRSM_ASSERT(incoming.size() == keep_part.size(),
                  "reduce_scatter: segment size mismatch");
    // Sum into a pooled uninitialized slab: one pass, no memset, no
    // malloc once the pool is warm (identical arithmetic to the old
    // copy-then-accumulate).
    Buffer next = Buffer::uninit(keep_part.size());
    double* out = next.mutable_data();
    const double* keep = keep_part.data();
    const double* in = incoming.data();
    for (std::size_t i = 0; i < next.size(); ++i) out[i] = keep[i] + in[i];
    ctx.charge_flops(static_cast<double>(next.size()));
    work = std::move(next);
    if (lower) {
      hi = mid;
    } else {
      lo = mid;
      base = cut;
    }
  }
  return work;
}

}  // namespace

Buffer reduce_scatter(const sim::Comm& comm, Buffer full,
                      const Counts& counts_in) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts_in.size()) == g,
               "reduce_scatter: counts size mismatch");
  CATRSM_CHECK(full.size() == sum_counts(counts_in),
               "reduce_scatter: input must cover every segment");
  const int r = comm.rank();
  int no_root = -1;
  Counts skewed;
  const Counts& counts =
      skew_hook(comm, &no_root, counts_in, &skewed) ? skewed : counts_in;
  CheckScope check(comm, CollOp::kReduceScatter, -1, &counts, full.size());
  if (g == 1) return full;
  const int tag = coll_tag(CollOp::kReduceScatter, comm);

  const auto off = offsets_of(counts);

  // Fold down to a power of two: extra rank g2+e sends its whole addend to
  // rank e, and receives its final segment back at the end.
  int g2 = 1;
  while (g2 * 2 <= g) g2 *= 2;
  const int extras = g - g2;

  Buffer work = std::move(full);
  if (extras > 0) {
    if (r >= g2) {
      comm.send(r - g2, std::move(work), tag);
      Buffer result = comm.recv(r - g2, tag);
      CATRSM_ASSERT(result.size() == counts[static_cast<std::size_t>(r)],
                    "reduce_scatter: fold-out size mismatch");
      return result;
    }
    if (r < extras) {
      const Buffer other = comm.recv(r + g2, tag);
      CATRSM_ASSERT(other.size() == work.size(),
                    "reduce_scatter: fold-in size mismatch");
      Buffer sum = Buffer::uninit(work.size());
      double* out = sum.mutable_data();
      const double* mine = work.data();
      const double* theirs = other.data();
      for (std::size_t i = 0; i < sum.size(); ++i)
        out[i] = mine[i] + theirs[i];
      comm.ctx().charge_flops(static_cast<double>(sum.size()));
      work = std::move(sum);
    }
  }

  // Super-segments: halving rank q owns block q plus (if q < extras) the
  // extra partner's block g2+q. Build a permuted working vector grouped by
  // super-segment so halving_core can use contiguous slices.
  std::vector<std::size_t> super_off(static_cast<std::size_t>(g2) + 1, 0);
  Buffer grouped = Buffer::uninit(work.size());
  double* gout = grouped.mutable_data();
  const double* wsrc = work.data();
  std::size_t gpos = 0;
  const auto append = [&](std::size_t lo, std::size_t hi) {
    std::memcpy(gout + gpos, wsrc + lo, (hi - lo) * sizeof(double));
    gpos += hi - lo;
  };
  for (int q = 0; q < g2; ++q) {
    super_off[static_cast<std::size_t>(q)] = gpos;
    append(off[static_cast<std::size_t>(q)],
           off[static_cast<std::size_t>(q) + 1]);
    if (q < extras) {
      const auto b = static_cast<std::size_t>(g2 + q);
      append(off[b], off[b + 1]);
    }
  }
  super_off[static_cast<std::size_t>(g2)] = gpos;

  Buffer segment =
      halving_core(comm, std::move(grouped), super_off, g2, tag);

  // Fold out: forward the extra partner's block.
  const std::size_t my_len = counts[static_cast<std::size_t>(r)];
  if (r < extras) {
    CATRSM_ASSERT(segment.size() ==
                      my_len + counts[static_cast<std::size_t>(g2 + r)],
                  "reduce_scatter: super-segment size mismatch");
    comm.send(g2 + r, segment.slice(my_len, segment.size() - my_len), tag);
    segment = segment.slice(0, my_len);
  } else {
    CATRSM_ASSERT(segment.size() == my_len,
                  "reduce_scatter: segment size mismatch");
  }
  return segment;
}

// ---------------------------------------------------------------------------
// Binomial scatter / gather over recursively split rank ranges. Ranks are
// rotated so the root maps to relative rank 0.

namespace {

struct Split {
  int lo, mid, hi;
};

/// The splits of [0, g) along relative rank `rel`'s path, top-down.
std::vector<Split> path_of(int rel, int g) {
  std::vector<Split> path;
  int lo = 0, hi = g;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo + 1) / 2;
    path.push_back({lo, mid, hi});
    if (rel < mid) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return path;
}

}  // namespace

Buffer scatter(const sim::Comm& comm, int root, Buffer all,
               const Counts& counts) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts.size()) == g,
               "scatter: counts size mismatch");
  CATRSM_CHECK(root >= 0 && root < g, "scatter: bad root");
  const int r = comm.rank();
  Counts skew_unused;
  skew_hook(comm, &root, counts, &skew_unused);  // may rotate this rank's root
  CheckScope check(comm, CollOp::kScatter, root, &counts, all.size());
  const int rel = ((r - root) % g + g) % g;
  const int tag = coll_tag(CollOp::kScatter, comm);

  // Block index for relative rank q is the absolute rank (q + root) % g;
  // `held` stores views of the blocks this rank currently routes.
  auto abs_of = [&](int q) { return (q + root) % g; };
  auto count_of = [&](int q) {
    return counts[static_cast<std::size_t>(abs_of(q))];
  };

  std::vector<Buffer> held(static_cast<std::size_t>(g));
  if (rel == 0) {
    CATRSM_CHECK(all.size() == sum_counts(counts),
                 "scatter: root payload must cover every block");
    const auto off = offsets_of(counts);
    for (int q = 0; q < g; ++q) {
      const auto a = static_cast<std::size_t>(abs_of(q));
      held[static_cast<std::size_t>(q)] = all.slice(off[a], counts[a]);
    }
  }

  std::vector<Buffer> window;
  for (const Split& s : path_of(rel, g)) {
    if (rel == s.lo) {
      window.assign(held.begin() + s.mid, held.begin() + s.hi);
      for (int q = s.mid; q < s.hi; ++q)
        held[static_cast<std::size_t>(q)] = Buffer{};
      comm.send(abs_of(s.mid), sim::concat(window), tag);
    } else if (rel == s.mid) {
      const Buffer payload = comm.recv(abs_of(s.lo), tag);
      std::size_t pos = 0;
      for (int q = s.mid; q < s.hi; ++q) {
        const std::size_t c = count_of(q);
        CATRSM_ASSERT(pos + c <= payload.size(), "scatter: short payload");
        held[static_cast<std::size_t>(q)] = payload.slice(pos, c);
        pos += c;
      }
      CATRSM_ASSERT(pos == payload.size(), "scatter: long payload");
    }
  }
  return std::move(held[static_cast<std::size_t>(rel)]);
}

Buffer gather(const sim::Comm& comm, int root, Buffer mine,
              const Counts& counts) {
  const int g = comm.size();
  CATRSM_CHECK(static_cast<int>(counts.size()) == g,
               "gather: counts size mismatch");
  CATRSM_CHECK(root >= 0 && root < g, "gather: bad root");
  const int r = comm.rank();
  Counts skew_unused;
  skew_hook(comm, &root, counts, &skew_unused);  // may rotate this rank's root
  CheckScope check(comm, CollOp::kGather, root, &counts, mine.size());
  const int rel = ((r - root) % g + g) % g;
  const int tag = coll_tag(CollOp::kGather, comm);
  auto abs_of = [&](int q) { return (q + root) % g; };
  auto count_of = [&](int q) {
    return counts[static_cast<std::size_t>(abs_of(q))];
  };
  CATRSM_CHECK(mine.size() == count_of(rel),
               "gather: contribution size mismatch");

  std::vector<Buffer> held(static_cast<std::size_t>(g));
  held[static_cast<std::size_t>(rel)] = std::move(mine);

  const auto path = path_of(rel, g);
  std::vector<Buffer> window;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    const Split& s = *it;
    if (rel == s.lo) {
      const Buffer payload = comm.recv(abs_of(s.mid), tag);
      std::size_t pos = 0;
      for (int q = s.mid; q < s.hi; ++q) {
        const std::size_t c = count_of(q);
        CATRSM_ASSERT(pos + c <= payload.size(), "gather: short payload");
        held[static_cast<std::size_t>(q)] = payload.slice(pos, c);
        pos += c;
      }
      CATRSM_ASSERT(pos == payload.size(), "gather: long payload");
    } else if (rel == s.mid) {
      window.assign(held.begin() + s.mid, held.begin() + s.hi);
      comm.send(abs_of(s.lo), sim::concat(window), tag);
      return {};  // done: everything forwarded to the parent
    }
  }

  if (rel != 0) return {};
  std::vector<Buffer> ordered(static_cast<std::size_t>(g));
  for (int a = 0; a < g; ++a) {
    const int q = ((a - root) % g + g) % g;
    const Buffer& blk = held[static_cast<std::size_t>(q)];
    CATRSM_ASSERT(blk.size() == counts[static_cast<std::size_t>(a)],
                  "gather: missing block");
    ordered[static_cast<std::size_t>(a)] = blk;
  }
  return sim::concat(ordered);
}

// ---------------------------------------------------------------------------
// Composite collectives (Chan et al. constructions, as in the paper).

Buffer bcast(const sim::Comm& comm, int root, Buffer data, std::size_t count) {
  const int g = comm.size();
  if (g == 1) {
    CATRSM_CHECK(data.size() == count, "bcast: count mismatch at root");
    return data;
  }
  if (comm.rank() == root)
    CATRSM_CHECK(data.size() == count, "bcast: count mismatch at root");
  const Counts counts = even_counts(count, g);
  Buffer part = scatter(comm, root, std::move(data), counts);
  return allgather(comm, std::move(part), counts);
}

Buffer reduce(const sim::Comm& comm, int root, Buffer full) {
  const int g = comm.size();
  if (g == 1) return full;
  const Counts counts = even_counts(full.size(), g);
  Buffer part = reduce_scatter(comm, std::move(full), counts);
  return gather(comm, root, std::move(part), counts);
}

Buffer allreduce(const sim::Comm& comm, Buffer full) {
  const int g = comm.size();
  if (g == 1) return full;
  const Counts counts = even_counts(full.size(), g);
  Buffer part = reduce_scatter(comm, std::move(full), counts);
  return allgather(comm, std::move(part), counts);
}

void barrier(const sim::Comm& comm) {
  const int g = comm.size();
  CheckScope check(comm, CollOp::kBarrier, -1, nullptr, 0);
  const int tag = coll_tag(CollOp::kBarrier, comm);
  for (int d = 1; d < g; d <<= 1) {
    const int dst = (comm.rank() + d) % g;
    const int src = ((comm.rank() - d) % g + g) % g;
    comm.shift(dst, src, {}, tag);
  }
}

}  // namespace catrsm::coll
