#include "coll/alltoall.hpp"

#include <utility>

#include "coll/check_hook.hpp"
#include "support/check.hpp"

namespace catrsm::coll {

namespace {

/// An in-flight routed block: (final destination, original source, payload).
struct Routed {
  int dst;
  int src;
  Buffer data;
};

void serialize(const Routed& b, Buf& out) {
  out.push_back(static_cast<double>(b.dst));
  out.push_back(static_cast<double>(b.src));
  out.push_back(static_cast<double>(b.data.size()));
  out.insert(out.end(), b.data.begin(), b.data.end());
}

/// Parse routed blocks out of one incoming payload; each block's data is a
/// zero-copy view of the payload slab.
std::vector<Routed> deserialize(const Buffer& in) {
  std::vector<Routed> blocks;
  std::size_t pos = 0;
  while (pos < in.size()) {
    CATRSM_ASSERT(pos + 3 <= in.size(), "alltoallv: truncated header");
    Routed b;
    b.dst = static_cast<int>(in[pos]);
    b.src = static_cast<int>(in[pos + 1]);
    const auto len = static_cast<std::size_t>(in[pos + 2]);
    pos += 3;
    CATRSM_ASSERT(pos + len <= in.size(), "alltoallv: truncated payload");
    b.data = in.slice(pos, len);
    pos += len;
    blocks.push_back(std::move(b));
  }
  return blocks;
}

std::size_t total_words(const std::vector<Buffer>& to_send) {
  std::size_t w = 0;
  for (const Buffer& b : to_send) w += b.size();
  return w;
}

std::vector<Buffer> alltoallv_bruck(const sim::Comm& comm,
                                    std::vector<Buffer> to_send) {
  const int g = comm.size();
  const int r = comm.rank();
  // Per-pair payload sizes are rank-local by design, so no counts are
  // registered for validation — only the op sequence itself.
  CheckScope check(comm, CollOp::kAlltoallBruck, -1, nullptr,
                   total_words(to_send));
  const int tag = coll_tag(CollOp::kAlltoallBruck, comm);

  std::vector<Buffer> result(static_cast<std::size_t>(g));
  result[static_cast<std::size_t>(r)] =
      std::move(to_send[static_cast<std::size_t>(r)]);

  std::vector<Routed> in_flight;
  for (int d = 0; d < g; ++d) {
    if (d == r) continue;
    in_flight.push_back({d, r, std::move(to_send[static_cast<std::size_t>(d)])});
  }

  // Round t forwards every block whose remaining destination distance has
  // bit t set to the rank 2^t ahead; after ceil(log g) rounds all distances
  // are consumed.
  for (int bit = 1; bit < g; bit <<= 1) {
    Buf payload;
    std::vector<Routed> keep;
    for (auto& b : in_flight) {
      const int dist = ((b.dst - r) % g + g) % g;
      if (dist & bit) {
        serialize(b, payload);
      } else {
        keep.push_back(std::move(b));
      }
    }
    const int dst = (r + bit) % g;
    const int src = ((r - bit) % g + g) % g;
    const Buffer incoming = comm.shift(dst, src, std::move(payload), tag);
    in_flight = std::move(keep);
    for (auto& b : deserialize(incoming)) {
      if (b.dst == r) {
        result[static_cast<std::size_t>(b.src)] = std::move(b.data);
      } else {
        in_flight.push_back(std::move(b));
      }
    }
  }
  CATRSM_ASSERT(in_flight.empty(), "alltoallv: undelivered blocks");
  return result;
}

std::vector<Buffer> alltoallv_direct(const sim::Comm& comm,
                                     std::vector<Buffer> to_send) {
  const int g = comm.size();
  const int r = comm.rank();
  CheckScope check(comm, CollOp::kAlltoallDirect, -1, nullptr,
                   total_words(to_send));
  const int tag = coll_tag(CollOp::kAlltoallDirect, comm);
  std::vector<Buffer> result(static_cast<std::size_t>(g));
  result[static_cast<std::size_t>(r)] =
      std::move(to_send[static_cast<std::size_t>(r)]);
  // Ring schedule: in round i exchange with ranks +/- i; every pair meets
  // exactly once per direction, g-1 rounds total. Each payload ships as a
  // view of the caller's slab — zero copies on the send path.
  for (int i = 1; i < g; ++i) {
    const int dst = (r + i) % g;
    const int src = ((r - i) % g + g) % g;
    result[static_cast<std::size_t>(src)] = comm.shift(
        dst, src, std::move(to_send[static_cast<std::size_t>(dst)]), tag);
  }
  return result;
}

}  // namespace

std::vector<Buffer> alltoallv(const sim::Comm& comm,
                              std::vector<Buffer> to_send,
                              AlltoallAlgo algo) {
  CATRSM_CHECK(static_cast<int>(to_send.size()) == comm.size(),
               "alltoallv: need one payload slot per rank");
  if (comm.size() == 1) {
    return to_send;
  }
  switch (algo) {
    case AlltoallAlgo::kBruck:
      return alltoallv_bruck(comm, std::move(to_send));
    case AlltoallAlgo::kDirect:
      return alltoallv_direct(comm, std::move(to_send));
  }
  throw Error("alltoallv: unknown algorithm");
}

std::vector<Buffer> alltoallv(const sim::Comm& comm, std::vector<Buf> to_send,
                              AlltoallAlgo algo) {
  std::vector<Buffer> bufs;
  bufs.reserve(to_send.size());
  for (auto& v : to_send) bufs.emplace_back(std::move(v));
  return alltoallv(comm, std::move(bufs), algo);
}

}  // namespace catrsm::coll
