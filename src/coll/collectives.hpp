#pragma once
// Collective communication on the simulated machine (paper Section II-C1).
//
// Every routine reproduces the cost signature the paper assumes:
//
//   allgather(n, p):       alpha * ceil(log p) + beta * n(1 - 1/p)
//   scatter/gather(n, p):  alpha * ceil(log p) + beta * n(1 - 1/p)
//   reduce-scatter(n, p):  alpha * ceil(log p) + (beta + gamma) * n(1 - 1/p)
//   bcast(n, p):           alpha * 2 ceil(log p) + beta * 2n
//   reduce/allreduce(n,p): alpha * 2 ceil(log p) + (2 beta + gamma) * n
//   barrier(p):            alpha * ceil(log p)
//
// built exactly the way the paper builds them (Chan et al.): bcast =
// scatter + allgather, reduce = reduce-scatter + gather, allreduce =
// reduce-scatter + allgather. Butterfly (recursive doubling / halving)
// algorithms are used for powers of two; Bruck-style and fold-to-power-of-
// two generalizations keep the same asymptotic cost for any group size.
//
// Payloads are zero-copy sim::Buffer views: chunking a payload (scatter,
// Bruck windows, halving segments) slices the slab instead of
// re-materializing per-block vectors, and a block that is merely forwarded
// travels as a refcount bump. Inputs accept anything a Buffer converts
// from — pass std::vector rvalues to adopt storage, spans to copy once at
// the boundary.
//
// All counts are expressed in words (doubles). Contribution sizes per rank
// are passed explicitly by the caller — in this library they are always
// derivable from a distribution descriptor, so no size-exchange round is
// ever needed (matching the paper's cost accounting).

#include <cstddef>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/comm.hpp"

namespace catrsm::coll {

using sim::Buffer;
/// Scratch type for assembling contributions at call sites; moves into a
/// Buffer (zero-copy adoption) at the collective boundary.
using Buf = std::vector<double>;
using Counts = std::vector<std::size_t>;

/// Collective families, used to derive per-communicator message tags.
enum class CollOp : int {
  kAllgather = 0,
  kReduceScatter,
  kScatter,
  kGather,
  kBarrier,
  kAlltoallBruck,
  kAlltoallDirect,
};

/// Collective tags occupy [kTagBase, ...); user point-to-point code must
/// use tags below kTagBase.
inline constexpr int kTagBase = 1 << 20;
/// Tag slots per collective family, indexed by the communicator epoch.
/// Epochs are sequential registry ids, so collisions require 2^24
/// distinct communicators on one machine (they then wrap).
inline constexpr int kEpochSpace = 1 << 24;

/// The message tag of collective family `op` on `comm`: op selects a tag
/// band, the communicator epoch a slot within it. Collectives running
/// concurrently on overlapping subgroups (nested groups, crossing row and
/// column fibers) therefore never cross-match messages, even when a rank
/// pair belongs to both groups and the groups progress out of lockstep.
int coll_tag(CollOp op, const sim::Comm& comm);

/// Split `total` words into `parts` near-equal chunk sizes (used by bcast /
/// reduce / allreduce to pick their internal scatter granularity).
Counts even_counts(std::size_t total, int parts);

/// Bruck all-gather. `mine` holds this rank's contribution of size
/// counts[comm.rank()]; returns all contributions concatenated in
/// communicator rank order. Works for any group size.
Buffer allgather(const sim::Comm& comm, Buffer mine, const Counts& counts);

/// All contributions have equal size; convenience wrapper.
Buffer allgather_equal(const sim::Comm& comm, Buffer mine);

/// Recursive-halving reduce-scatter. `full` holds this rank's addend for the
/// entire vector (sum of counts words); returns the elementwise sum of the
/// counts[comm.rank()] segment owned by this rank. Non-power-of-two groups
/// fold down to the nearest power of two first.
Buffer reduce_scatter(const sim::Comm& comm, Buffer full, const Counts& counts);

/// Binomial scatter from `root`. At the root, `all` holds the destination
/// blocks concatenated in communicator rank order (sum of counts words);
/// elsewhere it is ignored. Returns this rank's counts[rank] block (a view
/// of the incoming payload — or of `all` itself at the root).
Buffer scatter(const sim::Comm& comm, int root, Buffer all,
               const Counts& counts);

/// Binomial gather to `root`: inverse of scatter. Returns the concatenation
/// at the root, an empty buffer elsewhere.
Buffer gather(const sim::Comm& comm, int root, Buffer mine,
              const Counts& counts);

/// Broadcast `count` words from `root` (scatter + allgather). Non-roots
/// pass an empty buffer; `count` must be known at every rank.
Buffer bcast(const sim::Comm& comm, int root, Buffer data, std::size_t count);

/// Reduction to `root` (reduce-scatter + gather): every rank contributes a
/// full-length addend; root receives the elementwise sum, others empty.
Buffer reduce(const sim::Comm& comm, int root, Buffer full);

/// All-reduction (reduce-scatter + allgather): elementwise sum on all ranks.
Buffer allreduce(const sim::Comm& comm, Buffer full);

/// Dissemination barrier: ceil(log p) empty exchange rounds.
void barrier(const sim::Comm& comm);

}  // namespace catrsm::coll
