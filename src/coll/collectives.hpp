#pragma once
// Collective communication on the simulated machine (paper Section II-C1).
//
// Every routine reproduces the cost signature the paper assumes:
//
//   allgather(n, p):       alpha * ceil(log p) + beta * n(1 - 1/p)
//   scatter/gather(n, p):  alpha * ceil(log p) + beta * n(1 - 1/p)
//   reduce-scatter(n, p):  alpha * ceil(log p) + (beta + gamma) * n(1 - 1/p)
//   bcast(n, p):           alpha * 2 ceil(log p) + beta * 2n
//   reduce/allreduce(n,p): alpha * 2 ceil(log p) + (2 beta + gamma) * n
//   barrier(p):            alpha * ceil(log p)
//
// built exactly the way the paper builds them (Chan et al.): bcast =
// scatter + allgather, reduce = reduce-scatter + gather, allreduce =
// reduce-scatter + allgather. Butterfly (recursive doubling / halving)
// algorithms are used for powers of two; Bruck-style and fold-to-power-of-
// two generalizations keep the same asymptotic cost for any group size.
//
// All counts are expressed in words (doubles). Contribution sizes per rank
// are passed explicitly by the caller — in this library they are always
// derivable from a distribution descriptor, so no size-exchange round is
// ever needed (matching the paper's cost accounting).

#include <cstddef>
#include <span>
#include <vector>

#include "sim/comm.hpp"

namespace catrsm::coll {

using Buf = std::vector<double>;
using Counts = std::vector<std::size_t>;

/// Message-tag namespace for collectives; user point-to-point code should
/// use tags below kTagBase.
enum Tag : int {
  kTagBase = 1 << 20,
  kTagAllgather,
  kTagReduceScatter,
  kTagScatter,
  kTagGather,
  kTagBarrier,
  kTagAlltoallBruck,
  kTagAlltoallDirect,
};

/// Split `total` words into `parts` near-equal chunk sizes (used by bcast /
/// reduce / allreduce to pick their internal scatter granularity).
Counts even_counts(std::size_t total, int parts);

/// Bruck all-gather. `mine` holds this rank's contribution of size
/// counts[comm.rank()]; returns all contributions concatenated in
/// communicator rank order. Works for any group size.
Buf allgather(const sim::Comm& comm, std::span<const double> mine,
              const Counts& counts);

/// All contributions have equal size; convenience wrapper.
Buf allgather_equal(const sim::Comm& comm, std::span<const double> mine);

/// Recursive-halving reduce-scatter. `full` holds this rank's addend for the
/// entire vector (sum of counts words); returns the elementwise sum of the
/// counts[comm.rank()] segment owned by this rank. Non-power-of-two groups
/// fold down to the nearest power of two first.
Buf reduce_scatter(const sim::Comm& comm, std::span<const double> full,
                   const Counts& counts);

/// Binomial scatter from `root`. At the root, `all` holds the destination
/// blocks concatenated in communicator rank order (sum of counts words);
/// elsewhere it is ignored. Returns this rank's counts[rank] block.
Buf scatter(const sim::Comm& comm, int root, std::span<const double> all,
            const Counts& counts);

/// Binomial gather to `root`: inverse of scatter. Returns the concatenation
/// at the root, an empty buffer elsewhere.
Buf gather(const sim::Comm& comm, int root, std::span<const double> mine,
           const Counts& counts);

/// Broadcast `count` words from `root` (scatter + allgather). Non-roots
/// pass an empty span; `count` must be known at every rank.
Buf bcast(const sim::Comm& comm, int root, std::span<const double> data,
          std::size_t count);

/// Reduction to `root` (reduce-scatter + gather): every rank contributes a
/// full-length addend; root receives the elementwise sum, others empty.
Buf reduce(const sim::Comm& comm, int root, std::span<const double> full);

/// All-reduction (reduce-scatter + allgather): elementwise sum on all ranks.
Buf allreduce(const sim::Comm& comm, std::span<const double> full);

/// Dissemination barrier: ceil(log p) empty exchange rounds.
void barrier(const sim::Comm& comm);

}  // namespace catrsm::coll
