#pragma once
// Personalized all-to-all exchange, the primitive behind every layout
// transition (transposes, cyclic <-> blocked redistributions, grid
// reshapes) in the TRSM algorithms.
//
// Two schedules are provided:
//  - Bruck:  ceil(log g) rounds, each datum travels up to log g hops, so
//            S = O(log g), W = O(total * log g / 2). This is the schedule
//            whose cost the paper quotes: T = alpha log p + beta (n/2) log p.
//  - Direct: pairwise exchange, g-1 rounds, minimal words. Payloads are
//            forwarded as zero-copy buffer views — the schedule of choice
//            when payloads dominate and the group is small.
//
// Payload sizes may differ per (src, dst) pair and need not be globally
// known: in-flight blocks carry a tiny routing header (counted as words —
// the implementation pays its real overhead).

#include <vector>

#include "coll/collectives.hpp"
#include "sim/buffer.hpp"
#include "sim/comm.hpp"

namespace catrsm::coll {

enum class AlltoallAlgo {
  kBruck,
  kDirect,
};

/// `to_send[d]` is the payload for communicator rank d (slot rank() is
/// forwarded through locally). Returns `from[s]` = payload sent by rank s.
std::vector<Buffer> alltoallv(const sim::Comm& comm,
                              std::vector<Buffer> to_send,
                              AlltoallAlgo algo = AlltoallAlgo::kBruck);

/// Scratch-vector convenience overload: adopts each per-destination vector
/// into a Buffer without copying.
std::vector<Buffer> alltoallv(const sim::Comm& comm, std::vector<Buf> to_send,
                              AlltoallAlgo algo = AlltoallAlgo::kBruck);

}  // namespace catrsm::coll
