#pragma once
// Internal hook connecting the coll:: entry points to the sim/check
// correctness tooling. Included by the collective implementations only.

#include <cstddef>
#include <cstdint>

#include "coll/collectives.hpp"
#include "sim/check/coll_matcher.hpp"
#include "sim/check/trace.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"

namespace catrsm::coll {

inline const char* coll_op_name(CollOp op) {
  switch (op) {
    case CollOp::kAllgather:
      return "allgather";
    case CollOp::kReduceScatter:
      return "reduce_scatter";
    case CollOp::kScatter:
      return "scatter";
    case CollOp::kGather:
      return "gather";
    case CollOp::kBarrier:
      return "barrier";
    case CollOp::kAlltoallBruck:
      return "alltoall(bruck)";
    case CollOp::kAlltoallDirect:
      return "alltoall(direct)";
  }
  return "collective?";
}

/// Registers the caller's entry into a collective with the machine's
/// matcher and tracer (sim/check) — a single null check each when the
/// tools are detached, which is the default. The entry registration runs
/// BEFORE any communication, so a mismatched call sequence faults on the
/// offending rank instead of blocking on a tag nobody sends. Composite
/// collectives (bcast/reduce/allreduce) are validated through the
/// primitives they are built from. `counts` is passed only when the
/// collective's contract requires every member to agree on it (alltoall
/// payload sizes are legitimately rank-local, so they go unvalidated).
/// The destructor emits the trace's collective-exit marker.
class CheckScope {
 public:
  CheckScope(const sim::Comm& comm, CollOp op, int root, const Counts* counts,
             std::size_t words) {
    if (!comm.is_member()) return;
    sim::Rank& r = comm.ctx();
    if (sim::check::CollectiveMatcher* m = r.matcher())
      m->enter(comm.epoch(), comm.members(), r.id(), comm.rank(),
               static_cast<int>(op), coll_op_name(op), root, counts, words);
    if (sim::check::TraceRecorder* t = r.tracer()) {
      rank_ = &r;
      op_ = static_cast<int>(op);
      epoch_ = comm.epoch();
      t->on_coll(r.id(), true, op_, epoch_, words, r.vtime());
    }
  }
  ~CheckScope() {
    if (rank_ == nullptr) return;
    if (sim::check::TraceRecorder* t = rank_->tracer())
      t->on_coll(rank_->id(), false, op_, epoch_, 0, rank_->vtime());
  }
  CheckScope(const CheckScope&) = delete;
  CheckScope& operator=(const CheckScope&) = delete;

 private:
  sim::Rank* rank_ = nullptr;
  int op_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace catrsm::coll
