#include "api/stream_pool.hpp"

#include <climits>
#include <utility>

#include "support/check.hpp"
#include "support/env.hpp"

namespace catrsm::api {

StreamPool::StreamPool(int max_inflight) {
  max_ = max_inflight > 0
             ? max_inflight
             : env::int_or("CATRSM_SIM_STREAMS", 4, 1, INT_MAX);
}

int StreamPool::add_tenant(Context& ctx) {
  tenants_.push_back(&ctx);
  queues_.emplace_back();
  return static_cast<int>(tenants_.size()) - 1;
}

int StreamPool::submit(int tenant, std::shared_ptr<Plan> plan, DistHandle a,
                       DistHandle b) {
  CATRSM_CHECK(tenant >= 0 &&
                   tenant < static_cast<int>(tenants_.size()),
               "StreamPool: unknown tenant");
  CATRSM_CHECK(plan != nullptr, "StreamPool: null plan");
  const int id = next_id_++;
  queues_[static_cast<std::size_t>(tenant)].push_back(
      Request{id, tenant, std::move(plan), std::move(a), std::move(b)});
  return id;
}

StreamPool::Completion StreamPool::finish(InFlight& f) {
  Completion c;
  c.id = f.id;
  c.tenant = f.tenant;
  try {
    c.result = f.ticket.wait();
  } catch (...) {
    c.error = std::current_exception();
  }
  return c;
}

void StreamPool::admit() {
  const int nt = static_cast<int>(tenants_.size());
  if (nt == 0) return;
  // Round-robin across tenants with queued work; the cursor persists
  // across calls so service order stays fair between polls.
  int idle_scans = 0;
  while (static_cast<int>(inflight_.size()) < max_ && idle_scans < nt) {
    const int t = rr_;
    rr_ = (rr_ + 1) % nt;
    std::deque<Request>& q = queues_[static_cast<std::size_t>(t)];
    if (q.empty()) {
      ++idle_scans;
      continue;
    }
    idle_scans = 0;
    Request req = std::move(q.front());
    q.pop_front();
    // Launch may block briefly when the request's operands are held by
    // an in-flight run (handle exclusivity) — never indefinitely, since
    // marks release the moment that run completes.
    DistTicket ticket = req.plan->execute_dist_async(req.a, req.b);
    inflight_.push_back(InFlight{req.id, req.tenant, std::move(ticket)});
  }
}

std::vector<StreamPool::Completion> StreamPool::poll() {
  std::vector<Completion> out;
  for (std::size_t i = 0; i < inflight_.size();) {
    if (inflight_[i].ticket.done()) {
      out.push_back(finish(inflight_[i]));
      inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  admit();
  return out;
}

std::vector<StreamPool::Completion> StreamPool::wait_some() {
  for (;;) {
    std::vector<Completion> out = poll();
    if (!out.empty()) return out;
    if (inflight_.empty()) {
      bool queued = false;
      for (const auto& q : queues_) queued |= !q.empty();
      if (!queued) return out;  // fully drained
      continue;                 // admission was capped; poll again
    }
    // Nothing finished yet: block on the oldest stream so the caller
    // always gets a completion to work on without spinning.
    out.push_back(finish(inflight_.front()));
    inflight_.erase(inflight_.begin());
    admit();
    return out;
  }
}

std::vector<StreamPool::Completion> StreamPool::drain() {
  std::vector<Completion> out;
  for (;;) {
    std::vector<Completion> batch = wait_some();
    if (batch.empty()) break;
    out.insert(out.end(), std::make_move_iterator(batch.begin()),
               std::make_move_iterator(batch.end()));
  }
  return out;
}

std::size_t StreamPool::pending() const {
  std::size_t n = inflight_.size();
  for (const auto& q : queues_) n += q.size();
  return n;
}

}  // namespace catrsm::api
