#pragma once
// The handle-based front door of catrsm: plan once, execute many times.
//
// A Context owns a simulated machine (or borrows an existing one) plus an
// LRU cache of Plans keyed on (op, shape, p, operation options, machine
// parameters). A Plan is a frozen configuration — the Section VIII regime
// classification, algorithm choice, grid factorization and block counts
// are decided exactly once, at plan time — plus reusable execution state:
// grid membership and, for the iterative TRSM, the inverted diagonal
// blocks, which are computed on the first execute against an operand and
// reused for every further solve against the same matrix (the FFTW /
// cuBLAS plan-and-execute pattern the paper's a-priori cost analysis
// enables).
//
//   catrsm::api::Context ctx(/*p=*/64);
//   auto plan = ctx.plan(catrsm::api::trsm_op(n, k));
//   auto r1 = plan->execute(l, b1);        // inverts the diagonal blocks
//   auto r2 = plan->execute(l, b2);        // reuses them
//   auto rs = plan->execute_batch(l, bs);  // ... across a whole batch
//
// Supported operations: TRSM in all BLAS variants (uplo / side /
// transpose) over all four distributed algorithms, triangular inversion,
// the fully distributed Cholesky factor + two-solve pipeline, and 3D / 2D
// matrix multiplication.
//
// Beyond the matrix-in / matrix-out path, operands can be made RESIDENT:
// Context::upload scatters a matrix once into per-rank storage that
// survives Machine::run (sim::HandleStore), Plan::execute_dist consumes
// and produces such DistHandles with ZERO per-execute redistribution
// (a required-layout mismatch inserts one dist::redistribute
// automatically), and api::Program chains several plans through one
// simulated run with no intermediate host collects:
//
//   auto hl = ctx.upload(l, plan->input_layout(0));
//   for (auto& b : panels) {
//     auto hb = ctx.upload(b, plan->input_layout(1));
//     auto hx = plan->execute_dist(hl, hb).x;   // no scatter, no collect
//     la::Matrix x = ctx.download(hx);
//   }
//
// EXECUTION STREAMS: the _async variants (Plan::execute_dist_async,
// Context::execute_dist_async, Program::run_async) launch the simulated
// run and return a future-like ticket immediately; up to
// CATRSM_SIM_STREAMS runs overlap on the machine's shared worker pool
// (api::StreamPool in stream_pool.hpp round-robins whole request queues
// across several Contexts). Concurrent streams produce bitwise the same
// results as the same calls issued serially: two runs touching the same
// handle are serialized (the later launch blocks until the earlier run
// completes), and per-run virtual clocks keep every RunStats identical
// to its serial counterpart.
//
// Lifetime: a Plan must not outlive the Context that created it (and a
// borrowed machine must outlive both); a DistHandle must not outlive its
// Context either — its storage lives in the machine. Handles are not
// thread-safe; one Context per client thread (tickets may be waited from
// that same thread only).

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "la/matrix.hpp"
#include "la/trsm.hpp"
#include "model/tuning.hpp"
#include "sim/machine.hpp"
#include "support/check.hpp"

namespace catrsm::dist {
class Distribution;
}  // namespace catrsm::dist

namespace catrsm::api {

using la::index_t;

enum class Op {
  kTrsm,           // op(T) X = B (left) or X op(T) = B (right)
  kTriInv,         // X = L^-1
  kCholesky,       // A = L L^T — the factor alone (program building block)
  kCholeskySolve,  // A = L L^T; L Y = B; L^T X = Y — fully distributed
  kMatmul3D,       // C = A * X on a p1 x p1 x p2 grid (Section III)
  kMatmul2D,       // C = A * X via 2D SUMMA (baseline)
};

const char* op_name(Op op);

/// Which side the triangular operand acts on: T X = B or X T = B.
enum class Side { kLeft, kRight };

/// BLAS-style variant selection plus tuning overrides for a TRSM plan.
struct TrsmSpec {
  /// Triangle actually stored in the operand (upper solves reduce to the
  /// lower kernel via the index-reversal identity: J U J is lower).
  la::Uplo uplo = la::Uplo::kLower;
  /// Solve with the transpose of the operand (T^T X = B) — the second
  /// half of a Cholesky solve.
  bool transpose = false;
  Side side = Side::kLeft;
  /// Override the automatic algorithm choice.
  bool force_algorithm = false;
  model::Algorithm algorithm = model::Algorithm::kIterative;
  /// Override the diagonal block count (iterative) / base size (recursive).
  int nblocks = 0;
  index_t rec_n0 = 0;
  /// Override the processor grid (iterative: p1 x p1 x p2; also the square
  /// side for kCholesky). 0 = derive from the machine size. Programs use
  /// this to run an op on a subgrid of a larger machine — e.g. the
  /// Cholesky pipeline's solves on its q x q subgrid.
  int grid_p1 = 0;
  int grid_p2 = 0;
  /// Solve the normalized kernel in mixed precision on the host instead
  /// of the distributed algorithm: f32 factor + solve with f64 iterative
  /// refinement (la::trsm_refined). All BLAS variants reduce to it
  /// through the same normalizations. The simulated machine is bypassed
  /// (stats stay empty) — this is the single-node speed envelope, for
  /// shapes where local flops beat distribution.
  bool mixed_precision = false;
};

/// What to plan. (n, k) is the shape of the normalized lower-left kernel:
/// n is the triangular dimension, k the number of right-hand-side columns
/// (for side == kRight that is the number of B *rows*). For matmul ops,
/// A is n x inner and X is inner x k.
struct OpDesc {
  Op op = Op::kTrsm;
  index_t n = 0;
  index_t k = 0;
  index_t inner = 0;
  TrsmSpec trsm;
};

/// Convenience descriptor builders.
OpDesc trsm_op(index_t n, index_t k, TrsmSpec spec = {});
OpDesc tri_inv_op(index_t n);
OpDesc cholesky_op(index_t n, int grid_q = 0);
OpDesc cholesky_solve_op(index_t n, index_t k, int nblocks = 0);
OpDesc matmul3d_op(index_t m, index_t inner, index_t k);
OpDesc matmul2d_op(index_t n, index_t k);

/// Element generator over GLOBAL indices: pure functions of (i, j), so a
/// rank can materialize exactly the entries it owns.
using Gen = std::function<double(index_t, index_t)>;

/// A resident operand was touched by a faulted run (its per-rank blocks
/// may be partially rewritten) and has not been repaired. Thrown by
/// Context::download, Plan::execute_dist, and Program::run when handed a
/// poisoned handle, and by Context::repair when the handle has no
/// recorded source to re-upload from.
class PoisonedOperandError : public Error {
 public:
  using Error::Error;
};

// ---------------------------------------------------------------------------
// Resident distributed operands

/// Canonical data layouts a resident operand can live in. Realized over
/// the machine's world ranks deterministically, so two equal descriptors
/// always denote the exact same element->rank map.
enum class LayoutKind {
  /// Elementwise cyclic on a p1 x p2 face over world ranks 0..p1*p2-1
  /// (column-major: world rank gi + p1 * gj holds rows ≡ gi (mod p1),
  /// cols ≡ gj (mod p2)). What every solver's triangular operand uses.
  kCyclic2D,
  /// The iterative TRSM's B layout on a p1 x p1 x p2 grid: rows cyclic
  /// over p1, columns in p2 contiguous slabs, resident on the grid's
  /// y = 0 plane (world ranks x + p1^2 z).
  kRowCyclicColBlocked,
};

struct Layout {
  LayoutKind kind = LayoutKind::kCyclic2D;
  int p1 = 1;
  int p2 = 1;
};

inline bool operator==(const Layout& a, const Layout& b) {
  return a.kind == b.kind && a.p1 == b.p1 && a.p2 == b.p2;
}
inline bool operator!=(const Layout& a, const Layout& b) { return !(a == b); }

/// Descriptor helpers.
inline Layout cyclic_layout(int p1, int p2) {
  return Layout{LayoutKind::kCyclic2D, p1, p2};
}
inline Layout row_blocked_layout(int p1, int p2) {
  return Layout{LayoutKind::kRowCyclicColBlocked, p1, p2};
}

/// A refcounted persistent distributed operand: per-rank blocks resident
/// in the machine's sim::HandleStore (surviving Machine::run), plus the
/// layout that gives them meaning. Copies share the storage; the last
/// copy releases it. Must not outlive the Context whose machine holds
/// the storage.
class DistHandle {
 public:
  DistHandle() = default;

  bool valid() const { return state_ != nullptr; }
  index_t rows() const;
  index_t cols() const;
  Layout layout() const;
  /// Store id (unique per machine, never reused) — stable identity of
  /// the resident data, observable for cache/reuse tests.
  std::uint64_t id() const;
  /// Write stamp of the resident data (see sim::HandleStore::epoch).
  std::uint64_t epoch() const;
  /// True while the resident blocks are marked untrustworthy after a
  /// faulted run (see Context::repair).
  bool poisoned() const;
  /// True while the resident blocks are actually present in the store
  /// (false after a byte-budget eviction; the next use transparently
  /// re-scatters from the recorded upload source).
  bool resident() const;

 private:
  friend class Context;
  friend class Plan;
  friend class Program;
  struct State;
  explicit DistHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Result of a handle-in / handle-out execution. There is no scatter, no
/// output collect, and no host-side residual check on this path — the
/// stats contain the "algorithm" phase (plus "redistribute" when a layout
/// mismatch forced a transition) and nothing else.
struct DistExecResult {
  DistHandle x;
  sim::RunStats stats;
  model::Config config;

  /// Max-over-ranks cost of the distributed computation only.
  sim::Cost algorithm_cost() const;
  /// Cost of automatic layout transitions (zero when layouts matched).
  sim::Cost redistribute_cost() const;
};

/// Future for one in-flight execute_dist stream. Returned immediately by
/// Plan::execute_dist_async / Context::execute_dist_async while the
/// simulated run proceeds on the machine's worker pool. wait() blocks
/// until the run completes, assembles exactly the DistExecResult the
/// serial call would have produced (bitwise — per-run virtual clocks),
/// and rethrows any failure (DeadlockError, sim::FaultError, ...);
/// calling it again returns the same stored outcome. Dropping a ticket
/// without waiting is safe — the run still completes (the Machine
/// retires it), but a faulted run's input poisoning only happens at
/// wait(), so always wait tickets whose operands you reuse.
class DistTicket {
 public:
  DistTicket() = default;

  bool valid() const { return s_ != nullptr; }
  /// True once the simulated run has finished (wait() will not block).
  bool done() const;
  /// Block for completion and return (or rethrow) the run's outcome.
  DistExecResult wait();

 private:
  friend class Plan;
  struct Shared;
  explicit DistTicket(std::shared_ptr<Shared> s) : s_(std::move(s)) {}
  std::shared_ptr<Shared> s_;
};

struct ExecResult {
  la::Matrix x;
  /// Full-run stats. Phase buckets: "algorithm" (the distributed
  /// computation itself — compare THIS against the paper's formulas) and
  /// "output-collect" (the gather that materializes the global result for
  /// the caller); the iterative TRSM additionally reports "inversion" /
  /// "solve" / "update", and the Cholesky pipeline "cholesky" /
  /// "forward-trsm" / "backward-trsm".
  sim::RunStats stats;
  model::Config config;
  /// Relative residual of the solve (0 for the matmul ops, whose result
  /// the caller can check directly against a reference product).
  double residual = 0.0;

  /// Max-over-ranks cost of the distributed computation only, excluding
  /// the driver's output gather.
  sim::Cost algorithm_cost() const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// What the Program optimizer did on the last run (Program::stats()).
/// `redistributes_inserted` counts the layout transitions the executed
/// schedule actually performs (per distinct (node, layout) — conversions
/// are computed once and reused); `redistributes_avoided` is how many the
/// as-written DAG would have paid beyond that. With the optimizer off,
/// inserted equals the as-written mismatch count and everything else is 0.
struct ProgramStats {
  std::uint64_t nodes_elided = 0;    // steps unreachable from any output
  std::uint64_t nodes_merged = 0;    // duplicate (plan, args) steps reused
  std::uint64_t redistributes_inserted = 0;
  std::uint64_t redistributes_avoided = 0;
  std::uint64_t steps_executed = 0;
  bool optimized = false;
};

/// Result of a fused batch (Plan::execute_batch_fused): the entire panel
/// stream ran as ONE Machine::run, so there is a single RunStats for the
/// whole batch. Residuals are computed host-side per panel, exactly like
/// the unfused path.
struct BatchResult {
  std::vector<la::Matrix> xs;
  std::vector<double> residuals;
  sim::RunStats stats;
  model::Config config;
  ProgramStats program_stats;

  /// Max-over-ranks cost of the distributed computation across the WHOLE
  /// batch (one run — compare against items x the per-solve cost).
  sim::Cost algorithm_cost() const;
};

class Context;
class Program;

class Plan : public std::enable_shared_from_this<Plan> {
 public:
  const OpDesc& desc() const { return desc_; }
  /// The frozen configuration decided at plan time. A cache-hit plan is
  /// the same object, so its Config is bit-identical by construction.
  const model::Config& config() const { return config_; }

  /// Execute the planned op. Operand roles per op:
  ///   kTrsm:          a = T (n x n), b = B
  ///   kTriInv:        a = L (n x n), b ignored
  ///   kCholesky:      a = SPD A (n x n), b ignored
  ///   kCholeskySolve: a = SPD A (n x n), b = B (n x k)
  ///   kMatmul3D/2D:   a = A (n x inner), b = X (inner x k)
  ExecResult execute(const la::Matrix& a, const la::Matrix& b = {});

  /// Execute against RESIDENT operands: no scatter, no collect — the
  /// whole point for batched solves against a fixed factor. A handle
  /// whose layout differs from the required input_layout() is
  /// redistributed automatically (charged to the "redistribute" phase).
  /// TRSM on this path supports the normalized kernel variants only
  /// (lower operand, left side; transpose requires the iterative
  /// algorithm, which reverses distributedly — the Cholesky backward
  /// step). Other variants: use execute().
  DistExecResult execute_dist(const DistHandle& a,
                              const DistHandle& b = DistHandle());

  /// Launch execute_dist as an independent execution stream and return a
  /// ticket immediately. Up to CATRSM_SIM_STREAMS runs overlap on the
  /// machine; a launch that shares a handle with an in-flight run blocks
  /// until that run completes, so results are bitwise identical to the
  /// serial call order. execute_dist is exactly
  /// execute_dist_async(a, b).wait().
  DistTicket execute_dist_async(const DistHandle& a,
                                const DistHandle& b = DistHandle());

  /// The layout this plan requires of operand `slot` (0 = a, 1 = b) /
  /// produces for its result — what to pass to Context::upload so
  /// execute_dist runs with zero redistribution.
  Layout input_layout(int slot) const;
  Layout output_layout() const;

  /// Execute over many right-hand-side panels, amortizing planning and —
  /// for the iterative TRSM — the diagonal-block inversion, which runs
  /// exactly once per distinct operand matrix.
  std::vector<ExecResult> execute_batch(const la::Matrix& a,
                                        const std::vector<la::Matrix>& bs);

  /// The same panel stream as ONE simulated run: every panel is uploaded
  /// once (one describe-only realization per operand layout, shared across
  /// the batch), all solves execute as a single Program inside a single
  /// Machine::run with intermediates resident in the HandleStore, and —
  /// for the iterative TRSM — the diagonal-block inversion runs once and
  /// is reused by every panel IN that run (and across calls against the
  /// same operand bytes, like execute_batch). Supports kTrsm in the
  /// normalized lower-left variants (transpose requires the iterative
  /// algorithm) and the matmul ops; other ops: use execute_batch.
  BatchResult execute_batch_fused(const la::Matrix& a,
                                  const std::vector<la::Matrix>& bs);

  /// Element generator over GLOBAL indices (namespace-level api::Gen).
  using Gen = api::Gen;

  /// kCholeskySolve only: generator-fed execution. Each rank fills only
  /// the elements it owns from the (i, j) generators, so no rank ever
  /// holds a global operand during the computation. With `verify` true
  /// the driver materializes the global system once, outside the
  /// simulated machine, purely to compute the residual; pass false to
  /// skip that O(n^2 k) host-side check (residual stays 0) when the
  /// problem is too large to materialize.
  ExecResult execute_generated(const Gen& a_gen, const Gen& b_gen,
                               bool verify = true);

  /// Number of times this plan has run the Diagonal-Inverter — observable
  /// evidence that repeated executes and batches reuse the inverted
  /// diagonal blocks.
  std::uint64_t diag_inversions() const { return diag_inversions_; }

 private:
  friend class Context;
  friend class Program;
  friend class DistTicket;
  Plan(Context& ctx, OpDesc desc);

  ExecResult run_trsm(const la::Matrix& t, const la::Matrix& b,
                      const TrsmSpec& spec);
  ExecResult run_trsm_kernel(const la::Matrix& l, const la::Matrix& b);
  ExecResult run_tri_inv(const la::Matrix& l);
  ExecResult run_cholesky(const la::Matrix& a);
  ExecResult run_cholesky_solve(const Gen& a_gen, const Gen& b_gen);
  ExecResult run_matmul(const la::Matrix& a, const la::Matrix& x);

  /// The Cholesky pipeline as a 3-op Program over resident operands:
  /// factor, forward solve, reversed backward solve — one Machine::run,
  /// no intermediate collects. make_cholesky_program builds the DAG;
  /// run_cholesky_program executes it (the async path launches it as a
  /// stream instead).
  Program make_cholesky_program();
  std::pair<DistHandle, sim::RunStats> run_cholesky_program(
      const DistHandle& a, const DistHandle& b);

  Context* ctx_;
  OpDesc desc_;
  model::Config config_;

  // Iterative-TRSM diagonal-inverse cache: each rank's local Ltilde block,
  // valid for the kernel operand identified by the fingerprint.
  // diag_mu_ serializes the async path's cache decisions: an in-flight
  // reuse run reads diag_locals_ (diag_readers_ > 0), and a completed
  // non-reuse run merges its privately computed blocks in at wait() —
  // only when no reader is in flight, so the shared vector is never
  // rewritten under a running fiber.
  mutable std::mutex diag_mu_;
  int diag_readers_ = 0;
  std::vector<la::Matrix> diag_locals_;
  std::uint64_t diag_fp_ = 0;
  bool diag_valid_ = false;
  std::uint64_t diag_inversions_ = 0;

  // Describe-only input distributions for the iterative-TRSM matrix
  // path, built once on the host and shared read-only by every rank of
  // every run: execute_batch reuses one communicator set across panels
  // instead of each rank rebuilding it per panel. Keyed by the
  // normalized kernel shape (right-side / transposed variants swap it
  // relative to the plan's (n, k)). The maps are pure arithmetic, so
  // sharing them cannot perturb modeled costs.
  std::shared_ptr<const dist::Distribution> host_a_dist_;
  std::shared_ptr<const dist::Distribution> host_b_dist_;
  index_t host_dist_rows_ = -1;
  index_t host_dist_cols_ = -1;
};

class Context {
 public:
  /// Own a fresh machine of p ranks.
  explicit Context(int p, sim::MachineParams params = sim::MachineParams{},
                   std::size_t plan_cache_capacity = 64);
  /// Borrow an existing machine (the caller keeps ownership; the machine
  /// must outlive this Context and every Plan created from it).
  explicit Context(sim::Machine& machine,
                   std::size_t plan_cache_capacity = 64);

  /// Pinned: outstanding Plans hold a pointer back to their Context, so
  /// moving or copying it would dangle every handle.
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  Context(Context&&) = delete;
  Context& operator=(Context&&) = delete;

  sim::Machine& machine() { return *machine_; }
  const sim::MachineParams& params() const { return machine_->params(); }
  int nprocs() const { return machine_->nprocs(); }

  /// The persistent rank scheduler behind this context's machine: a pool
  /// of p workers created on the first execute and reused by every
  /// subsequent Machine::run, Plan::execute, and execute_batch (no
  /// per-run thread spawn/join). scheduler().runs() counts dispatches.
  sim::RankScheduler& scheduler() { return machine_->scheduler(); }

  /// Return the cached Plan for `desc` or build, cache, and return a new
  /// one. Planning twice for the same (op, shape, options) on the same
  /// machine hits the cache and returns the SAME Plan handle.
  std::shared_ptr<Plan> plan(const OpDesc& desc);

  /// plan(desc)->execute_dist_async(a, b): plan (cache hit after the
  /// first call) and launch the op as an independent execution stream.
  DistTicket execute_dist_async(const OpDesc& desc, const DistHandle& a,
                                const DistHandle& b = DistHandle());

  /// Scatter a matrix (or a generator, which no rank ever materializes
  /// globally) into resident per-rank storage under `layout`. Host-side:
  /// charges nothing to the simulated machine — the whole point is that
  /// this happens ONCE, not per execute.
  DistHandle upload(const la::Matrix& m, Layout layout);
  DistHandle upload(const Gen& gen, index_t rows, index_t cols,
                    Layout layout);

  /// Assemble the global matrix from a handle's resident blocks.
  /// Host-side; charges nothing. Fails fast with PoisonedOperandError on
  /// a handle a faulted run left untrustworthy — repair it first.
  la::Matrix download(const DistHandle& h);

  /// Re-upload a poisoned handle from its recorded source (the matrix
  /// copy or generator it was uploaded from), clearing the poison flag
  /// and stamping a fresh epoch. No-op on a healthy handle; throws
  /// PoisonedOperandError if the handle is poisoned but has no source
  /// (e.g. it was produced by a Program run, not uploaded).
  void repair(const DistHandle& h);

  /// When enabled, Plan::execute_dist and Program::run transparently
  /// repair() poisoned INPUT handles (that have sources) instead of
  /// throwing — the retry path after a detected fault.
  void set_auto_repair(bool on) { auto_repair_ = on; }
  bool auto_repair() const { return auto_repair_; }

  /// If the handle's blocks were evicted under the byte budget
  /// (CATRSM_HANDLE_BUDGET), re-scatter them from the recorded upload
  /// source — bitwise the original bytes, epoch unchanged. Returns true
  /// when a re-upload happened. Execution and download paths call this
  /// automatically; it is exposed for warm-up and for tests.
  bool ensure_resident(const DistHandle& h);

  /// Pin a handle's blocks against byte-budget eviction (pins nest).
  /// In-flight runs already protect their operands; pin is for keeping a
  /// hot operand resident ACROSS runs under a tight budget.
  void pin(const DistHandle& h);
  void unpin(const DistHandle& h);

  CacheStats cache_stats() const { return stats_; }
  void clear_cache();

 private:
  friend class Plan;
  friend class Program;

  /// Upload/download against a caller-realized distribution, so a batch
  /// realizes each layout's describe-only communicator set ONCE instead of
  /// once per panel (Plan::execute_batch_fused). `d` must be
  /// detail::realize_host(layout, rows, cols, nprocs()) for the same
  /// shape/layout the call passes.
  DistHandle upload_on(const la::Matrix& m, Layout layout,
                       const std::shared_ptr<const dist::Distribution>& d);
  DistHandle upload_on(const Gen& gen, index_t rows, index_t cols,
                       Layout layout,
                       const std::shared_ptr<const dist::Distribution>& d);
  la::Matrix download_on(const DistHandle& h,
                         const std::shared_ptr<const dist::Distribution>& d);

  std::unique_ptr<sim::Machine> owned_;
  sim::Machine* machine_;
  std::size_t capacity_;
  bool auto_repair_ = false;
  CacheStats stats_;
  // LRU: most recently used at the front.
  std::list<std::pair<std::string, std::shared_ptr<Plan>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
};

class Program;

namespace opt {
struct Schedule;

/// Compile `prog` into an execution schedule for the input layouts bound
/// by the current run. With `enabled` false the schedule reproduces the
/// as-written DAG exactly (every step, one redistribute per mismatched
/// use); with it true the three passes run: dead-node elision, common-
/// sub-DAG merging, and layout-aware intermediate placement (see opt.hpp).
Schedule compile(const Program& prog, bool enabled);
}  // namespace opt

/// A small op-DAG over resident operands: chain several plans through ONE
/// Machine::run with no intermediate host collects — intermediates stay
/// as per-rank blocks, and a consumer whose required layout differs from
/// its producer's gets a dist::redistribute inserted automatically.
/// Op::kCholeskySolve is internally this: factor -> solve -> reversed
/// solve.
///
///   api::Program prog(ctx);
///   auto a = prog.input(n, n);
///   auto b = prog.input(n, k);
///   auto l = prog.add(factor_plan, {a}, "cholesky");
///   auto y = prog.add(fwd_plan, {l, b}, "forward-trsm");
///   auto x = prog.add(bwd_plan, {l, y}, "backward-trsm");
///   prog.mark_output(x);
///   auto res = prog.run({ha, hb});   // one simulated run
///
/// A Program is a reusable recipe: run() may be called many times against
/// different input handles. Not thread-safe; must not outlive its
/// Context.
///
/// Before executing, the DAG is compiled by the optimizer (opt::compile,
/// gated by CATRSM_PROGRAM_OPT, default on): steps unreachable from a
/// marked output are elided, structurally identical (plan, args) steps
/// are merged (one factor feeding many solves computes once), and
/// intermediate layouts are placed to minimize inserted redistributes —
/// ties broken by the modeled alpha-beta time of the implied transitions.
/// Optimized and unoptimized runs produce bitwise-identical outputs;
/// stats() reports what the last run's schedule did.
class Program {
 public:
  using NodeId = int;

  explicit Program(Context& ctx);

  /// Declare the next external input (bound positionally by run()).
  NodeId input(index_t rows, index_t cols);

  /// Append a step executing `plan` against `args` (each a prior node).
  /// Operand roles follow Plan::execute_dist. `phase`, when non-empty,
  /// labels the step's charges (nested inside "algorithm").
  NodeId add(std::shared_ptr<Plan> plan, std::vector<NodeId> args,
             std::string phase = {});

  /// Mark a node to be materialized as a DistHandle by run(). Outputs are
  /// returned in mark order.
  void mark_output(NodeId node);

  struct Result {
    std::vector<DistHandle> outputs;
    sim::RunStats stats;
    sim::Cost algorithm_cost() const;
  };

  /// Future for one in-flight Program run (see run_async).
  class AsyncResult {
   public:
    AsyncResult() = default;
    bool valid() const { return s_ != nullptr; }
    /// True once the simulated run has finished (wait() will not block).
    bool done() const;
    /// Block for completion and return (or rethrow) the run's outcome.
    /// Idempotent: later calls return the same stored outcome. A faulted
    /// run poisons its distinct input handles here, exactly like run().
    Result wait();

   private:
    friend class Program;
    struct Shared;
    explicit AsyncResult(std::shared_ptr<Shared> s) : s_(std::move(s)) {}
    std::shared_ptr<Shared> s_;
  };

  /// Execute every step in one Machine::run against the positionally
  /// bound input handles.
  Result run(const std::vector<DistHandle>& inputs);

  /// Launch the program as an independent execution stream and return
  /// immediately. The call validates + repairs inputs, compiles the
  /// schedule, and snapshots the DAG host-side, so the Program object may
  /// be mutated (or destroyed) while the run is in flight, and several
  /// launches of the same Program may overlap. A launch sharing an input
  /// handle with any in-flight run blocks until that run completes
  /// (results stay bitwise identical to serial order). `on_complete`,
  /// when given, fires on a machine worker thread the moment the last
  /// rank finishes — before wait() can return.
  AsyncResult run_async(const std::vector<DistHandle>& inputs,
                        std::function<void()> on_complete = nullptr);

  using Stats = ProgramStats;
  /// What the optimizer did on the most recent run() (see ProgramStats).
  const Stats& stats() const { return stats_; }

  /// Override the CATRSM_PROGRAM_OPT default for this Program. Off, the
  /// DAG executes exactly as written — the bitwise A/B reference.
  void set_optimize(bool on) { optimize_ = on; }
  bool optimize() const { return optimize_; }

 private:
  friend class Plan;  // execute_dist runs as a one-step program
  friend opt::Schedule opt::compile(const Program&, bool);

  struct Node {
    index_t rows = 0;
    index_t cols = 0;
    Layout layout;      // op nodes: the producing plan's output layout
    int input_index = -1;  // >= 0 for input nodes
  };
  struct Step {
    std::shared_ptr<Plan> plan;
    std::vector<NodeId> args;
    std::string phase;
    NodeId out = -1;
    // Cross-execute state threaded into the iterative TRSM body (the
    // plan's diagonal-inverse cache; see detail::TrsmBodyOptions).
    std::vector<la::Matrix>* ltilde_store = nullptr;
    bool reuse_ltilde = false;
  };

  Context* ctx_;
  std::vector<Node> nodes_;
  std::vector<Step> steps_;
  std::vector<NodeId> outputs_;
  int n_inputs_ = 0;
  bool optimize_ = true;  // seeded from CATRSM_PROGRAM_OPT in the ctor
  // Compiled schedule, reused across run() calls while the DAG, the
  // optimize flag, and the bound input layouts stay the same.
  std::shared_ptr<const opt::Schedule> compiled_;
  Stats stats_;
};

}  // namespace catrsm::api
