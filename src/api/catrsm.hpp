#pragma once
// The handle-based front door of catrsm: plan once, execute many times.
//
// A Context owns a simulated machine (or borrows an existing one) plus an
// LRU cache of Plans keyed on (op, shape, p, operation options, machine
// parameters). A Plan is a frozen configuration — the Section VIII regime
// classification, algorithm choice, grid factorization and block counts
// are decided exactly once, at plan time — plus reusable execution state:
// grid membership and, for the iterative TRSM, the inverted diagonal
// blocks, which are computed on the first execute against an operand and
// reused for every further solve against the same matrix (the FFTW /
// cuBLAS plan-and-execute pattern the paper's a-priori cost analysis
// enables).
//
//   catrsm::api::Context ctx(/*p=*/64);
//   auto plan = ctx.plan(catrsm::api::trsm_op(n, k));
//   auto r1 = plan->execute(l, b1);        // inverts the diagonal blocks
//   auto r2 = plan->execute(l, b2);        // reuses them
//   auto rs = plan->execute_batch(l, bs);  // ... across a whole batch
//
// Supported operations: TRSM in all BLAS variants (uplo / side /
// transpose) over all four distributed algorithms, triangular inversion,
// the fully distributed Cholesky factor + two-solve pipeline, and 3D / 2D
// matrix multiplication.
//
// Lifetime: a Plan must not outlive the Context that created it (and a
// borrowed machine must outlive both). Handles are not thread-safe; one
// Context per client thread.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "la/matrix.hpp"
#include "la/trsm.hpp"
#include "model/tuning.hpp"
#include "sim/machine.hpp"

namespace catrsm::api {

using la::index_t;

enum class Op {
  kTrsm,           // op(T) X = B (left) or X op(T) = B (right)
  kTriInv,         // X = L^-1
  kCholeskySolve,  // A = L L^T; L Y = B; L^T X = Y — fully distributed
  kMatmul3D,       // C = A * X on a p1 x p1 x p2 grid (Section III)
  kMatmul2D,       // C = A * X via 2D SUMMA (baseline)
};

const char* op_name(Op op);

/// Which side the triangular operand acts on: T X = B or X T = B.
enum class Side { kLeft, kRight };

/// BLAS-style variant selection plus tuning overrides for a TRSM plan.
struct TrsmSpec {
  /// Triangle actually stored in the operand (upper solves reduce to the
  /// lower kernel via the index-reversal identity: J U J is lower).
  la::Uplo uplo = la::Uplo::kLower;
  /// Solve with the transpose of the operand (T^T X = B) — the second
  /// half of a Cholesky solve.
  bool transpose = false;
  Side side = Side::kLeft;
  /// Override the automatic algorithm choice.
  bool force_algorithm = false;
  model::Algorithm algorithm = model::Algorithm::kIterative;
  /// Override the diagonal block count (iterative) / base size (recursive).
  int nblocks = 0;
  index_t rec_n0 = 0;
};

/// What to plan. (n, k) is the shape of the normalized lower-left kernel:
/// n is the triangular dimension, k the number of right-hand-side columns
/// (for side == kRight that is the number of B *rows*). For matmul ops,
/// A is n x inner and X is inner x k.
struct OpDesc {
  Op op = Op::kTrsm;
  index_t n = 0;
  index_t k = 0;
  index_t inner = 0;
  TrsmSpec trsm;
};

/// Convenience descriptor builders.
OpDesc trsm_op(index_t n, index_t k, TrsmSpec spec = {});
OpDesc tri_inv_op(index_t n);
OpDesc cholesky_solve_op(index_t n, index_t k, int nblocks = 0);
OpDesc matmul3d_op(index_t m, index_t inner, index_t k);
OpDesc matmul2d_op(index_t n, index_t k);

struct ExecResult {
  la::Matrix x;
  /// Full-run stats. Phase buckets: "algorithm" (the distributed
  /// computation itself — compare THIS against the paper's formulas) and
  /// "output-collect" (the gather that materializes the global result for
  /// the caller); the iterative TRSM additionally reports "inversion" /
  /// "solve" / "update", and the Cholesky pipeline "cholesky" /
  /// "forward-trsm" / "backward-trsm".
  sim::RunStats stats;
  model::Config config;
  /// Relative residual of the solve (0 for the matmul ops, whose result
  /// the caller can check directly against a reference product).
  double residual = 0.0;

  /// Max-over-ranks cost of the distributed computation only, excluding
  /// the driver's output gather.
  sim::Cost algorithm_cost() const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

class Context;

class Plan {
 public:
  const OpDesc& desc() const { return desc_; }
  /// The frozen configuration decided at plan time. A cache-hit plan is
  /// the same object, so its Config is bit-identical by construction.
  const model::Config& config() const { return config_; }

  /// Execute the planned op. Operand roles per op:
  ///   kTrsm:          a = T (n x n), b = B
  ///   kTriInv:        a = L (n x n), b ignored
  ///   kCholeskySolve: a = SPD A (n x n), b = B (n x k)
  ///   kMatmul3D/2D:   a = A (n x inner), b = X (inner x k)
  ExecResult execute(const la::Matrix& a, const la::Matrix& b = {});

  /// Execute over many right-hand-side panels, amortizing planning and —
  /// for the iterative TRSM — the diagonal-block inversion, which runs
  /// exactly once per distinct operand matrix.
  std::vector<ExecResult> execute_batch(const la::Matrix& a,
                                        const std::vector<la::Matrix>& bs);

  /// Element generator over GLOBAL indices: pure functions of (i, j), so
  /// a rank can materialize exactly the entries it owns.
  using Gen = std::function<double(index_t, index_t)>;

  /// kCholeskySolve only: generator-fed execution. Each rank fills only
  /// the elements it owns from the (i, j) generators, so no rank ever
  /// holds a global operand during the computation. With `verify` true
  /// the driver materializes the global system once, outside the
  /// simulated machine, purely to compute the residual; pass false to
  /// skip that O(n^2 k) host-side check (residual stays 0) when the
  /// problem is too large to materialize.
  ExecResult execute_generated(const Gen& a_gen, const Gen& b_gen,
                               bool verify = true);

  /// Number of times this plan has run the Diagonal-Inverter — observable
  /// evidence that repeated executes and batches reuse the inverted
  /// diagonal blocks.
  std::uint64_t diag_inversions() const { return diag_inversions_; }

 private:
  friend class Context;
  Plan(Context& ctx, OpDesc desc);

  ExecResult run_trsm(const la::Matrix& t, const la::Matrix& b,
                      const TrsmSpec& spec);
  ExecResult run_trsm_kernel(const la::Matrix& l, const la::Matrix& b);
  ExecResult run_tri_inv(const la::Matrix& l);
  ExecResult run_cholesky_solve(const Gen& a_gen, const Gen& b_gen);
  ExecResult run_matmul(const la::Matrix& a, const la::Matrix& x);

  Context* ctx_;
  OpDesc desc_;
  model::Config config_;

  // Iterative-TRSM diagonal-inverse cache: each rank's local Ltilde block,
  // valid for the kernel operand identified by the fingerprint.
  std::vector<la::Matrix> diag_locals_;
  std::uint64_t diag_fp_ = 0;
  bool diag_valid_ = false;
  std::uint64_t diag_inversions_ = 0;
};

class Context {
 public:
  /// Own a fresh machine of p ranks.
  explicit Context(int p, sim::MachineParams params = sim::MachineParams{},
                   std::size_t plan_cache_capacity = 64);
  /// Borrow an existing machine (the caller keeps ownership; the machine
  /// must outlive this Context and every Plan created from it).
  explicit Context(sim::Machine& machine,
                   std::size_t plan_cache_capacity = 64);

  /// Pinned: outstanding Plans hold a pointer back to their Context, so
  /// moving or copying it would dangle every handle.
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  Context(Context&&) = delete;
  Context& operator=(Context&&) = delete;

  sim::Machine& machine() { return *machine_; }
  const sim::MachineParams& params() const { return machine_->params(); }
  int nprocs() const { return machine_->nprocs(); }

  /// The persistent rank scheduler behind this context's machine: a pool
  /// of p workers created on the first execute and reused by every
  /// subsequent Machine::run, Plan::execute, and execute_batch (no
  /// per-run thread spawn/join). scheduler().runs() counts dispatches.
  sim::RankScheduler& scheduler() { return machine_->scheduler(); }

  /// Return the cached Plan for `desc` or build, cache, and return a new
  /// one. Planning twice for the same (op, shape, options) on the same
  /// machine hits the cache and returns the SAME Plan handle.
  std::shared_ptr<Plan> plan(const OpDesc& desc);

  CacheStats cache_stats() const { return stats_; }
  void clear_cache();

 private:
  friend class Plan;

  std::unique_ptr<sim::Machine> owned_;
  sim::Machine* machine_;
  std::size_t capacity_;
  CacheStats stats_;
  // LRU: most recently used at the front.
  std::list<std::pair<std::string, std::shared_ptr<Plan>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
};

}  // namespace catrsm::api
