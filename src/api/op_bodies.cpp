#include "api/op_bodies.hpp"

#include <numeric>
#include <utility>
#include <vector>

#include "dist/grid.hpp"
#include "factor/cholesky_dist.hpp"
#include "mm/mm3d.hpp"
#include "mm/summa2d.hpp"
#include "support/check.hpp"
#include "trsm/it_inv_trsm.hpp"
#include "trsm/rec_trsm.hpp"
#include "trsm/tri_inv_dist.hpp"
#include "trsm/trsm2d.hpp"
#include "trsm/trsv1d.hpp"

namespace catrsm::api::detail {

using dist::DistMatrix;
using dist::Face2D;

namespace {

/// Canonical world-rank member list of a layout's face.
std::vector<int> layout_members(const Layout& lay) {
  std::vector<int> idx;
  switch (lay.kind) {
    case LayoutKind::kCyclic2D:
      // Rank prefix, like it_inv_l_face's subset of the first p1^2.
      idx.resize(static_cast<std::size_t>(lay.p1) *
                 static_cast<std::size_t>(lay.p2));
      std::iota(idx.begin(), idx.end(), 0);
      break;
    case LayoutKind::kRowCyclicColBlocked:
      idx = trsm::it_inv_b_face_members(lay.p1, lay.p2);
      break;
  }
  return idx;
}

std::shared_ptr<const dist::Distribution> realize_on(const Layout& lay,
                                                     index_t rows,
                                                     index_t cols,
                                                     sim::Comm face_comm) {
  Face2D face(std::move(face_comm), lay.p1, lay.p2);
  switch (lay.kind) {
    case LayoutKind::kCyclic2D:
      return dist::cyclic_on(face, rows, cols);
    case LayoutKind::kRowCyclicColBlocked:
      return dist::row_cyclic_col_blocked(face, rows, cols);
  }
  throw Error("realize: unknown layout kind");
}

}  // namespace

void check_layout_fits(const Layout& lay, int p) {
  CATRSM_CHECK(lay.p1 >= 1 && lay.p2 >= 1,
               "layout: grid dims must be positive");
  const int span = lay.kind == LayoutKind::kRowCyclicColBlocked
                       ? lay.p1 * lay.p1 * lay.p2
                       : lay.p1 * lay.p2;
  CATRSM_CHECK(span <= p, "layout: grid does not fit the machine");
}

std::shared_ptr<const dist::Distribution> realize(const Layout& lay,
                                                  index_t rows, index_t cols,
                                                  const sim::Comm& base) {
  check_layout_fits(lay, base.size());
  return realize_on(lay, rows, cols, base.subset(layout_members(lay)));
}

std::shared_ptr<const dist::Distribution> realize_host(const Layout& lay,
                                                       index_t rows,
                                                       index_t cols, int p) {
  check_layout_fits(lay, p);
  return realize_on(lay, rows, cols,
                    sim::Comm::describe(layout_members(lay)));
}

int grid_ranks(const OpDesc& desc, const model::Config& cfg, int p) {
  switch (desc.op) {
    case Op::kTrsm:
      return cfg.algorithm == model::Algorithm::kIterative
                 ? cfg.p1 * cfg.p1 * cfg.p2
                 : p;
    case Op::kCholesky:
    case Op::kCholeskySolve:
      return cfg.p1 * cfg.p1;
    default:
      return p;
  }
}

TrsmDists trsm_dists(const sim::Comm& grid, const model::Config& cfg,
                     index_t n, index_t k) {
  switch (cfg.algorithm) {
    case model::Algorithm::kIterative: {
      Face2D lface = trsm::it_inv_l_face(grid, cfg.p1, cfg.p2);
      auto ldist = dist::cyclic_on(lface, n, n);
      auto bdist = trsm::it_inv_b_dist(grid, cfg.p1, cfg.p2, n, k);
      return {std::move(ldist), std::move(bdist)};
    }
    case model::Algorithm::kRecursive: {
      Face2D face(grid, cfg.pr, cfg.pc);
      return {dist::cyclic_on(face, n, n), dist::cyclic_on(face, n, k)};
    }
    case model::Algorithm::kTrsm2D: {
      const auto [pr, pc] = dist::balanced_factors(grid.size());
      Face2D face(grid, pr, pc);
      return {dist::cyclic_on(face, n, n), dist::cyclic_on(face, n, k)};
    }
    case model::Algorithm::kTrsv1D: {
      Face2D face(grid, grid.size(), 1);
      return {dist::cyclic_on(face, n, n), dist::cyclic_on(face, n, k)};
    }
  }
  throw Error("trsm_dists: unknown algorithm");
}

namespace {

sim::Comm describe_world(int p) {
  std::vector<int> all(static_cast<std::size_t>(p));
  std::iota(all.begin(), all.end(), 0);
  return sim::Comm::describe(std::move(all));
}

}  // namespace

TrsmDists trsm_dists_host(const model::Config& cfg, index_t n, index_t k,
                          int p) {
  return trsm_dists(describe_world(p), cfg, n, k);
}

DistMatrix trsm_solve(const OpDesc& desc, const model::Config& cfg,
                      const sim::Comm& grid, const DistMatrix& dl,
                      const DistMatrix& db, const TrsmBodyOptions& opts) {
  switch (cfg.algorithm) {
    case model::Algorithm::kIterative: {
      trsm::ItInvOptions iio;
      iio.nblocks = cfg.nblocks;
      iio.ltilde_store = opts.ltilde_store;
      iio.reuse_ltilde = opts.reuse_ltilde;
      return trsm::it_inv_trsm(dl, db, grid, cfg.p1, cfg.p2, iio);
    }
    case model::Algorithm::kRecursive: {
      trsm::RecTrsmOptions ro;
      ro.n0 = desc.trsm.rec_n0;
      return trsm::rec_trsm(dl, db, grid, ro);
    }
    case model::Algorithm::kTrsm2D:
      return trsm::trsm2d(dl, db, grid);
    case model::Algorithm::kTrsv1D:
      return trsm::trsv1d(dl, db, grid);
  }
  throw Error("execute: unknown algorithm");
}

DistMatrix trsm_transposed_solve(const model::Config& cfg,
                                 const sim::Comm& grid, const DistMatrix& dl,
                                 const DistMatrix& db) {
  auto ad = dl.dist_ptr();
  auto bd = db.dist_ptr();
  trsm::ItInvOptions iio;
  iio.nblocks = cfg.nblocks;
  DistMatrix lt = dist::transpose(dl, ad, grid);
  DistMatrix ltr = dist::reverse_both(lt, ad, grid);
  DistMatrix yrev = dist::reverse_rows(db, bd, grid);
  DistMatrix xrev = trsm::it_inv_trsm(ltr, yrev, grid, cfg.p1, cfg.p2, iio);
  return dist::reverse_rows(xrev, bd, grid);
}

DistMatrix op_body(const OpDesc& desc, const model::Config& cfg,
                   const sim::Comm& grid, const DistMatrix& a,
                   const DistMatrix& b, const TrsmBodyOptions& opts) {
  if (!grid.is_member()) return {};
  switch (desc.op) {
    case Op::kTrsm:
      return desc.trsm.transpose ? trsm_transposed_solve(cfg, grid, a, b)
                                 : trsm_solve(desc, cfg, grid, a, b, opts);
    case Op::kTriInv:
      return trsm::tri_inv_dist(a, grid);
    case Op::kCholesky:
      return factor::cholesky_dist(a, grid);
    case Op::kMatmul3D: {
      auto od = realize(cyclic_layout(cfg.pr, cfg.pc), desc.n, desc.k, grid);
      return mm::mm3d(a, b, od, grid, mm::MMGrid{cfg.p1, cfg.p2});
    }
    case Op::kMatmul2D:
      return mm::summa2d(a, b);
    case Op::kCholeskySolve:
      break;  // composed as a Program of the three bodies above
  }
  throw Error("op_body: op has no single distributed body");
}

DistMatrix load_slot(sim::HandleStore& store, std::uint64_t id,
                     std::shared_ptr<const dist::Distribution> d, int me) {
  DistMatrix dm(std::move(d), me);
  la::Matrix& slot = store.local(id, me);
  CATRSM_CHECK(slot.rows() == dm.local().rows() &&
                   slot.cols() == dm.local().cols(),
               "resident operand: stored block does not match the handle "
               "layout (was the handle ever written?)");
  dm.local() = std::move(slot);
  return dm;
}

void restore_slot(sim::HandleStore& store, std::uint64_t id, DistMatrix& dm) {
  store.local(id, dm.me()) = std::move(dm.local());
}

}  // namespace catrsm::api::detail
