#include "api/catrsm.hpp"

#include <sstream>

#include "support/check.hpp"

namespace catrsm::api {

const char* op_name(Op op) {
  switch (op) {
    case Op::kTrsm: return "trsm";
    case Op::kTriInv: return "tri-inv";
    case Op::kCholesky: return "cholesky";
    case Op::kCholeskySolve: return "cholesky-solve";
    case Op::kMatmul3D: return "matmul-3d";
    case Op::kMatmul2D: return "matmul-2d";
  }
  return "unknown";
}

OpDesc trsm_op(index_t n, index_t k, TrsmSpec spec) {
  OpDesc d;
  d.op = Op::kTrsm;
  d.n = n;
  d.k = k;
  d.trsm = spec;
  return d;
}

OpDesc tri_inv_op(index_t n) {
  OpDesc d;
  d.op = Op::kTriInv;
  d.n = n;
  return d;
}

OpDesc cholesky_op(index_t n, int grid_q) {
  OpDesc d;
  d.op = Op::kCholesky;
  d.n = n;
  d.trsm.grid_p1 = grid_q;
  return d;
}

OpDesc cholesky_solve_op(index_t n, index_t k, int nblocks) {
  OpDesc d;
  d.op = Op::kCholeskySolve;
  d.n = n;
  d.k = k;
  d.trsm.nblocks = nblocks;
  return d;
}

OpDesc matmul3d_op(index_t m, index_t inner, index_t k) {
  OpDesc d;
  d.op = Op::kMatmul3D;
  d.n = m;
  d.inner = inner;
  d.k = k;
  return d;
}

OpDesc matmul2d_op(index_t n, index_t k) {
  OpDesc d;
  d.op = Op::kMatmul2D;
  d.n = n;
  d.inner = n;
  d.k = k;
  return d;
}

sim::Cost ExecResult::algorithm_cost() const {
  return stats.phase_cost("algorithm");
}

namespace {

/// Every field that influences planning or execution, plus the machine
/// identity (p, alpha, beta, gamma) — the cache key of a Plan.
std::string cache_key(const OpDesc& d, int p, const sim::MachineParams& mp) {
  std::ostringstream os;
  os << static_cast<int>(d.op) << '|' << d.n << '|' << d.k << '|' << d.inner
     << '|' << static_cast<int>(d.trsm.uplo) << '|'
     << static_cast<int>(d.trsm.side) << '|' << d.trsm.transpose << '|'
     << d.trsm.force_algorithm << '|'
     << static_cast<int>(d.trsm.algorithm) << '|' << d.trsm.nblocks << '|'
     << d.trsm.rec_n0 << '|' << d.trsm.grid_p1 << '|' << d.trsm.grid_p2
     << '|' << d.trsm.mixed_precision << '|' << p << '|' << std::hexfloat
     << mp.alpha << '|' << mp.beta << '|' << mp.gamma;
  return os.str();
}

}  // namespace

Context::Context(int p, sim::MachineParams params,
                 std::size_t plan_cache_capacity)
    : owned_(std::make_unique<sim::Machine>(p, params)),
      machine_(owned_.get()),
      capacity_(plan_cache_capacity) {
  CATRSM_CHECK(capacity_ >= 1, "Context: cache capacity must be positive");
}

Context::Context(sim::Machine& machine, std::size_t plan_cache_capacity)
    : machine_(&machine), capacity_(plan_cache_capacity) {
  CATRSM_CHECK(capacity_ >= 1, "Context: cache capacity must be positive");
}

std::shared_ptr<Plan> Context::plan(const OpDesc& desc) {
  const std::string key = cache_key(desc, nprocs(), params());
  const auto hit = index_.find(key);
  if (hit != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, hit->second);
    return hit->second->second;
  }
  ++stats_.misses;
  std::shared_ptr<Plan> plan(new Plan(*this, desc));
  lru_.emplace_front(key, plan);
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  stats_.entries = lru_.size();
  return plan;
}

DistTicket Context::execute_dist_async(const OpDesc& desc,
                                       const DistHandle& a,
                                       const DistHandle& b) {
  return plan(desc)->execute_dist_async(a, b);
}

void Context::clear_cache() {
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

}  // namespace catrsm::api
