#pragma once
// Internal: the per-op distributed bodies behind Plan::execute,
// Plan::execute_dist, and Program — one implementation of each algorithm
// invocation, consumed by three drivers:
//
//   - the legacy matrix path (scatter-fill, body, output collect — one
//     Machine::run, cost signature byte-identical to the pre-handle
//     driver),
//   - the resident-handle path (load per-rank blocks from the machine's
//     sim::HandleStore, body, store result blocks — no scatter, no
//     collect),
//   - Program (a chain of bodies in ONE run, redistributing between steps
//     only on layout mismatch).
//
// Also here: realization of api::Layout descriptors into concrete
// dist::Distribution objects — in-run (live communicators, so algorithms
// can collective through the face) and host-side (describe-only
// communicators, for upload/download arithmetic). Both construct the
// exact same element->rank maps as the canonical helpers the legacy
// driver uses (it_inv_l_face / it_inv_b_dist / cyclic_on), which is what
// makes "handle layout == required layout" a zero-redistribution
// guarantee.

#include <cstdint>
#include <memory>

#include "api/catrsm.hpp"
#include "dist/dist_matrix.hpp"
#include "dist/redistribute.hpp"
#include "sim/handle_store.hpp"

namespace catrsm::api {

/// Shared state of a DistHandle: identifies resident per-rank blocks in a
/// machine's HandleStore. The last handle copy releases the storage.
struct DistHandle::State {
  sim::Machine* machine = nullptr;
  std::uint64_t id = 0;
  Layout layout;
  index_t rows = 0;
  index_t cols = 0;
  std::uint64_t epoch = 0;
  /// Recovery source for Context::repair: the generator the handle was
  /// uploaded from (matrix uploads store a lambda over a shared copy).
  /// Empty for handles produced by a Program/execute_dist run.
  Gen source;

  State(sim::Machine* m, std::uint64_t i, Layout lay, index_t r, index_t c,
        std::uint64_t e)
      : machine(m), id(i), layout(lay), rows(r), cols(c), epoch(e) {}
  ~State();
  State(const State&) = delete;
  State& operator=(const State&) = delete;
};

namespace detail {

/// Throws unless the layout's grid fits a p-rank machine.
void check_layout_fits(const Layout& lay, int p);

/// Realize a layout over the canonical world ranks, with live
/// communicators subset from `base` (pass the world communicator; for
/// ops on a rank-prefix subgrid the canonical members are the same).
std::shared_ptr<const dist::Distribution> realize(const Layout& lay,
                                                  index_t rows, index_t cols,
                                                  const sim::Comm& base);

/// Same element->rank map, built outside any run from describe-only
/// communicators (Context::upload / download arithmetic).
std::shared_ptr<const dist::Distribution> realize_host(const Layout& lay,
                                                       index_t rows,
                                                       index_t cols, int p);

/// World ranks the op's grid occupies (ranks >= this idle through the
/// body — the Cholesky pipeline's square subgrid on a non-square p).
int grid_ranks(const OpDesc& desc, const model::Config& cfg, int p);

/// Cross-execute state of the iterative TRSM (the plan's diagonal-inverse
/// cache threads through here).
struct TrsmBodyOptions {
  std::vector<la::Matrix>* ltilde_store = nullptr;
  bool reuse_ltilde = false;
};

/// The input distributions the planned TRSM algorithm consumes, built on
/// `grid` in the same construction order as the pre-refactor driver.
struct TrsmDists {
  std::shared_ptr<const dist::Distribution> l;
  std::shared_ptr<const dist::Distribution> b;
};
TrsmDists trsm_dists(const sim::Comm& grid, const model::Config& cfg,
                     index_t n, index_t k);

/// The same TrsmDists built outside any run from a describe-only world
/// communicator of p ranks: the element->rank maps depend only on
/// (config, shapes), so one set serves every rank of every panel of a
/// batch instead of being rebuilt per rank per execute. Only valid for
/// algorithms that communicate exclusively through the comm argument
/// (iterative); the recursive/2D/1D bodies pull live fibers out of the
/// operand's face and need in-run trsm_dists.
TrsmDists trsm_dists_host(const model::Config& cfg, index_t n, index_t k,
                          int p);

/// Solve L X = B with the planned algorithm (the normalized lower-left
/// non-transposed kernel; dl/db must be in trsm_dists form).
dist::DistMatrix trsm_solve(const OpDesc& desc, const model::Config& cfg,
                            const sim::Comm& grid, const dist::DistMatrix& dl,
                            const dist::DistMatrix& db,
                            const TrsmBodyOptions& opts);

/// L^T X = B entirely in the distributed domain: J L^T J is lower, so
/// transpose + reverse, solve iteratively, reverse back — the Cholesky
/// pipeline's backward step (exact: permutations introduce no rounding).
dist::DistMatrix trsm_transposed_solve(const model::Config& cfg,
                                       const sim::Comm& grid,
                                       const dist::DistMatrix& dl,
                                       const dist::DistMatrix& db);

/// Dispatch `desc.op` against already-distributed operands. Ranks outside
/// `grid` return an empty DistMatrix without communicating. `b` is
/// ignored by the unary ops.
dist::DistMatrix op_body(const OpDesc& desc, const model::Config& cfg,
                         const sim::Comm& grid, const dist::DistMatrix& a,
                         const dist::DistMatrix& b,
                         const TrsmBodyOptions& opts);

/// Move rank `me`'s resident block out of the store into a DistMatrix
/// view under `d` (shape-checked); restore_slot moves it back. Never
/// copies.
dist::DistMatrix load_slot(sim::HandleStore& store, std::uint64_t id,
                           std::shared_ptr<const dist::Distribution> d,
                           int me);
void restore_slot(sim::HandleStore& store, std::uint64_t id,
                  dist::DistMatrix& dm);

}  // namespace detail
}  // namespace catrsm::api
