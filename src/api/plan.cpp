#include <cmath>
#include <mutex>
#include <numeric>
#include <optional>

#include "api/op_bodies.hpp"
#include "dist/redistribute.hpp"
#include "la/gemm.hpp"
#include "la/mixed.hpp"
#include "la/norms.hpp"
#include "mm/mm3d.hpp"
#include "support/check.hpp"
#include "trsm/it_inv_trsm.hpp"

namespace catrsm::api {

using dist::DistMatrix;
using dist::Face2D;
using la::Matrix;

namespace {

/// Reverse the rows of a matrix (the J permutation).
Matrix reversed_rows(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j)
      out(i, j) = m(m.rows() - 1 - i, j);
  return out;
}

/// J T J: reverse both index sets. Maps upper triangles to lower ones and
/// vice versa.
Matrix reversed_both(const Matrix& t) {
  const index_t n = t.rows();
  Matrix out(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      out(i, j) = t(n - 1 - i, n - 1 - j);
  return out;
}

/// The operand actually applied to X, op(T) in BLAS terms.
Matrix effective_operand(const Matrix& t, const TrsmSpec& spec) {
  return spec.transpose ? t.transposed() : t;
}

/// The host-gather epilogue shared by every legacy (matrix-in) op: run
/// `body` on all ranks; ranks that return a (matrix, communicator) pair
/// join the "output-collect" gather, and rank 0's collected global result
/// is returned alongside the run stats.
std::pair<Matrix, sim::RunStats> run_and_collect(
    sim::Machine& machine, index_t rows, index_t cols,
    const std::function<std::optional<std::pair<DistMatrix, sim::Comm>>(
        sim::Rank&)>& body) {
  Matrix out(rows, cols);
  std::mutex mu;  // rank 0 writes once; mutex documents the intent
  sim::RunStats stats = machine.run([&](sim::Rank& r) {
    auto produced = body(r);
    if (!produced.has_value()) return;
    sim::PhaseScope output_scope(r, "output-collect");
    const Matrix full = dist::collect(produced->first, produced->second);
    if (r.id() == 0) {
      std::lock_guard<std::mutex> guard(mu);
      out = full;
    }
  });
  return {std::move(out), std::move(stats)};
}

/// Relative residual of an SPD solve: ||A X - B|| / (||A|| ||X|| + ||B||).
double spd_residual(const Matrix& a, const Matrix& b, const Matrix& x) {
  Matrix resid = la::matmul(a, x);
  resid.sub(b);
  return la::frobenius_norm(resid) /
         (la::frobenius_norm(a) * la::frobenius_norm(x) +
          la::frobenius_norm(b) + 1e-300);
}

/// The two diagonal-inverse cache key domains share one diag_fp_ field;
/// the top bit tags which domain produced a key, so a byte-hash of some
/// L can never collide with a handle identity.
constexpr std::uint64_t kHandleFpTag = 1ull << 63;

/// FNV-1a over shape and raw element bytes: identifies the operand a
/// plan's diagonal-inverse cache belongs to (matrix-path executes).
std::uint64_t fingerprint(const Matrix& m) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* p, std::size_t len) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < len; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  const index_t r = m.rows();
  const index_t c = m.cols();
  mix(&r, sizeof r);
  mix(&c, sizeof c);
  mix(m.ptr(), sizeof(double) * static_cast<std::size_t>(m.size()));
  return h & ~kHandleFpTag;
}

/// Content identity of a resident operand: handles are never rewritten in
/// place, so (id, epoch) pins the bytes without hashing them. Note that
/// alternating execute() and execute_dist() against the same operand
/// re-inverts on each switch (one cache, two key domains) — batch through
/// one path.
std::uint64_t handle_fingerprint(const DistHandle& h) {
  return ((h.id() * 0x9E3779B97F4A7C15ull) ^
          (h.epoch() + 0x517CC1B727220A95ull)) |
         kHandleFpTag;
}

/// Largest q with q * q <= p: the square subgrid the Cholesky ops run on.
int square_side(int p) {
  int q = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (q > 1 && q * q > p) --q;
  return std::max(q, 1);
}

}  // namespace

Plan::Plan(Context& ctx, OpDesc desc) : ctx_(&ctx), desc_(desc) {
  const int p = ctx.nprocs();
  const index_t n = desc_.n;
  const index_t k = desc_.k;
  switch (desc_.op) {
    case Op::kTrsm: {
      CATRSM_CHECK(n >= 1 && k >= 1, "plan: trsm needs n >= 1 and k >= 1");
      config_ = desc_.trsm.force_algorithm
                    ? model::configure_forced(n, k, p, desc_.trsm.algorithm)
                    : model::configure(n, k, p, ctx.params());
      if (desc_.trsm.nblocks > 0) config_.nblocks = desc_.trsm.nblocks;
      if (desc_.trsm.grid_p1 > 0) {
        config_.p1 = desc_.trsm.grid_p1;
        config_.p2 = std::max(desc_.trsm.grid_p2, 1);
        CATRSM_CHECK(config_.p1 * config_.p1 * config_.p2 <= p,
                     "plan: forced grid does not fit the machine");
      }
      break;
    }
    case Op::kTriInv: {
      CATRSM_CHECK(n >= 1, "plan: tri-inv needs n >= 1");
      config_.regime = model::classify(static_cast<double>(n),
                                       static_cast<double>(n),
                                       static_cast<double>(p));
      const auto [p1, p2] =
          model::nearest_grid(p, std::sqrt(static_cast<double>(p)));
      config_.p1 = p1;
      config_.p2 = p2;
      std::tie(config_.pr, config_.pc) = dist::balanced_factors(p);
      config_.predicted = model::tri_inv_cost(static_cast<double>(n), p1, p2);
      break;
    }
    case Op::kCholesky: {
      CATRSM_CHECK(n >= 1, "plan: cholesky needs n >= 1");
      const int q =
          desc_.trsm.grid_p1 > 0 ? desc_.trsm.grid_p1 : square_side(p);
      CATRSM_CHECK(q >= 1 && q * q <= p,
                   "plan: cholesky grid does not fit the machine");
      config_.algorithm = model::Algorithm::kIterative;
      config_.p1 = q;
      config_.p2 = 1;
      config_.pr = q;
      config_.pc = q;
      config_.regime = model::classify(static_cast<double>(n),
                                       static_cast<double>(n),
                                       static_cast<double>(q) * q);
      break;
    }
    case Op::kCholeskySolve: {
      CATRSM_CHECK(n >= 1 && k >= 1,
                   "plan: cholesky-solve needs n >= 1 and k >= 1");
      // The factor and both solves run on the largest square subgrid.
      const int q = square_side(p);
      config_.algorithm = model::Algorithm::kIterative;
      config_.p1 = q;
      config_.p2 = 1;
      config_.pr = q;
      config_.pc = q;
      config_.regime = model::classify(static_cast<double>(n),
                                       static_cast<double>(k),
                                       static_cast<double>(q) * q);
      config_.nblocks = desc_.trsm.nblocks > 0
                            ? desc_.trsm.nblocks
                            : trsm::it_inv_auto_nblocks(n, k, q * q);
      config_.predicted = model::it_inv_trsm_cost(
          static_cast<double>(n), static_cast<double>(k),
          static_cast<double>(q) * q);
      break;
    }
    case Op::kMatmul3D: {
      CATRSM_CHECK(n >= 1 && desc_.inner >= 1 && k >= 1,
                   "plan: matmul needs positive dimensions");
      const mm::MMGrid g = mm::choose_mm_grid(n, desc_.inner, k, p);
      config_.p1 = g.p1;
      config_.p2 = g.p2;
      std::tie(config_.pr, config_.pc) = dist::balanced_factors(p);
      config_.predicted.words =
          mm::mm3d_model_words(n, desc_.inner, k, g.p1, g.p2);
      config_.predicted.flops = 2.0 * static_cast<double>(n) *
                                static_cast<double>(desc_.inner) *
                                static_cast<double>(k) / p;
      break;
    }
    case Op::kMatmul2D: {
      CATRSM_CHECK(n >= 1 && k >= 1,
                   "plan: matmul needs positive dimensions");
      CATRSM_CHECK(desc_.inner == n,
                   "plan: the 2D SUMMA baseline requires a square A");
      std::tie(config_.pr, config_.pc) = dist::balanced_factors(p);
      config_.predicted.flops = 2.0 * static_cast<double>(n) *
                                static_cast<double>(n) *
                                static_cast<double>(k) / p;
      break;
    }
  }
}

Layout Plan::input_layout(int slot) const {
  CATRSM_CHECK(slot == 0 || slot == 1,
               "input_layout: ops take at most two operands");
  switch (desc_.op) {
    case Op::kTrsm:
      switch (config_.algorithm) {
        case model::Algorithm::kIterative:
          return slot == 0 ? cyclic_layout(config_.p1, config_.p1)
                           : row_blocked_layout(config_.p1, config_.p2);
        case model::Algorithm::kRecursive:
          return cyclic_layout(config_.pr, config_.pc);
        case model::Algorithm::kTrsm2D: {
          const auto [pr, pc] = dist::balanced_factors(ctx_->nprocs());
          return cyclic_layout(pr, pc);
        }
        case model::Algorithm::kTrsv1D:
          return cyclic_layout(ctx_->nprocs(), 1);
      }
      throw Error("input_layout: unknown algorithm");
    case Op::kTriInv:
      return cyclic_layout(config_.pr, config_.pc);
    case Op::kCholesky:
      return cyclic_layout(config_.p1, config_.p1);
    case Op::kCholeskySolve:
      return slot == 0 ? cyclic_layout(config_.p1, config_.p1)
                       : row_blocked_layout(config_.p1, 1);
    case Op::kMatmul3D:
    case Op::kMatmul2D:
      return cyclic_layout(config_.pr, config_.pc);
  }
  throw Error("input_layout: unknown op");
}

Layout Plan::output_layout() const {
  switch (desc_.op) {
    case Op::kTrsm:
    case Op::kCholeskySolve:
      return input_layout(1);
    case Op::kTriInv:
    case Op::kCholesky:
      return input_layout(0);
    case Op::kMatmul3D:
    case Op::kMatmul2D:
      return cyclic_layout(config_.pr, config_.pc);
  }
  throw Error("output_layout: unknown op");
}

ExecResult Plan::execute(const Matrix& a, const Matrix& b) {
  const index_t n = desc_.n;
  switch (desc_.op) {
    case Op::kTrsm: {
      CATRSM_CHECK(a.rows() == n && a.cols() == n,
                   "execute: T must match the planned n x n shape");
      if (desc_.trsm.side == Side::kRight) {
        CATRSM_CHECK(b.rows() == desc_.k && b.cols() == n,
                     "execute: right-side B must be k x n");
      } else {
        CATRSM_CHECK(b.rows() == n && b.cols() == desc_.k,
                     "execute: B must match the planned n x k shape");
      }
      return run_trsm(a, b, desc_.trsm);
    }
    case Op::kTriInv:
      return run_tri_inv(a);
    case Op::kCholesky: {
      CATRSM_CHECK(a.rows() == n && a.cols() == n,
                   "execute: A must match the planned n x n shape");
      return run_cholesky(a);
    }
    case Op::kCholeskySolve: {
      CATRSM_CHECK(a.rows() == n && a.cols() == n,
                   "execute: A must match the planned n x n shape");
      CATRSM_CHECK(b.rows() == n && b.cols() == desc_.k,
                   "execute: B must match the planned n x k shape");
      ExecResult r = run_cholesky_solve(
          [&a](index_t i, index_t j) { return a(i, j); },
          [&b](index_t i, index_t j) { return b(i, j); });
      r.residual = spd_residual(a, b, r.x);
      return r;
    }
    case Op::kMatmul3D:
    case Op::kMatmul2D:
      return run_matmul(a, b);
  }
  throw Error("execute: unknown op");
}

std::vector<ExecResult> Plan::execute_batch(const Matrix& a,
                                            const std::vector<Matrix>& bs) {
  std::vector<ExecResult> out;
  out.reserve(bs.size());
  for (const Matrix& b : bs) out.push_back(execute(a, b));
  return out;
}

sim::Cost BatchResult::algorithm_cost() const {
  return stats.phase_cost("algorithm");
}

BatchResult Plan::execute_batch_fused(const Matrix& a,
                                      const std::vector<Matrix>& bs) {
  CATRSM_CHECK(desc_.op == Op::kTrsm || desc_.op == Op::kMatmul3D ||
                   desc_.op == Op::kMatmul2D,
               "execute_batch_fused: fuses trsm and matmul panel streams — "
               "other ops: use execute_batch");
  if (desc_.op == Op::kTrsm) {
    CATRSM_CHECK(desc_.trsm.side == Side::kLeft &&
                     desc_.trsm.uplo == la::Uplo::kLower &&
                     !desc_.trsm.mixed_precision,
                 "execute_batch_fused: normalized lower-left distributed "
                 "kernel only (no right/upper/mixed-precision variants)");
  }
  BatchResult result;
  result.config = config_;
  if (bs.empty()) return result;

  const bool is_trsm = desc_.op == Op::kTrsm;
  const index_t arows = desc_.n;
  const index_t acols = is_trsm ? desc_.n : desc_.inner;
  const index_t brows = is_trsm ? desc_.n : desc_.inner;
  const index_t bcols = desc_.k;
  CATRSM_CHECK(a.rows() == arows && a.cols() == acols,
               "execute_batch_fused: operand must match the planned shape");
  for (const Matrix& b : bs)
    CATRSM_CHECK(b.rows() == brows && b.cols() == bcols,
                 "execute_batch_fused: panel must match the planned shape");

  // ONE describe-only realization per operand layout, shared by every
  // upload and download in the batch — the host-side analogue of the
  // plan's frozen grid (the unfused path rebuilt these per panel).
  const int p = ctx_->nprocs();
  const Layout lay_a = input_layout(0);
  const Layout lay_b = input_layout(1);
  const Layout lay_x = output_layout();
  const auto da = detail::realize_host(lay_a, arows, acols, p);
  const auto db = detail::realize_host(lay_b, brows, bcols, p);
  const auto dx = detail::realize_host(lay_x, desc_.n, bcols, p);

  // The whole panel stream as one Program: input L once, one step + one
  // marked output per panel, executed in a single Machine::run with
  // every intermediate resident in the HandleStore.
  Program prog(*ctx_);
  std::vector<DistHandle> handles;
  handles.reserve(bs.size() + 1);
  handles.push_back(ctx_->upload_on(a, lay_a, da));
  const Program::NodeId na = prog.input(arows, acols);
  for (const Matrix& b : bs) {
    handles.push_back(ctx_->upload_on(b, lay_b, db));
    const Program::NodeId nb = prog.input(brows, bcols);
    prog.mark_output(prog.add(shared_from_this(), {na, nb}));
  }

  // Iterative-TRSM diagonal-inverse sharing: the first panel's step
  // computes Ltilde into the plan's cache (unless a prior call against
  // the same operand bytes already did), every later panel reuses it IN
  // the same simulated run — the fused form of execute_batch's
  // once-per-operand inversion.
  bool diag_store = false;
  bool reuse = false;
  if (is_trsm && !desc_.trsm.transpose &&
      config_.algorithm == model::Algorithm::kIterative) {
    const std::uint64_t fp = fingerprint(a);
    reuse = diag_valid_ && diag_fp_ == fp;
    if (!reuse) {
      diag_locals_.assign(static_cast<std::size_t>(p), Matrix{});
      diag_fp_ = fp;
      diag_valid_ = false;
    }
    diag_store = true;
    for (std::size_t i = 0; i < prog.steps_.size(); ++i) {
      prog.steps_[i].ltilde_store = &diag_locals_;
      prog.steps_[i].reuse_ltilde = reuse || i > 0;
    }
  }

  Program::Result r = prog.run(handles);
  if (diag_store && !reuse) {
    diag_valid_ = true;
    ++diag_inversions_;
  }

  result.stats = std::move(r.stats);
  result.program_stats = prog.stats();
  result.xs.reserve(bs.size());
  result.residuals.reserve(bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    Matrix x = ctx_->download_on(r.outputs[i], dx);
    double resid = 0.0;
    if (is_trsm)
      resid = desc_.trsm.transpose
                  ? la::trsm_residual(a.transposed(), x, bs[i])
                  : la::trsm_residual(a, x, bs[i]);
    result.residuals.push_back(resid);
    result.xs.push_back(std::move(x));
  }
  return result;
}

ExecResult Plan::execute_generated(const Gen& a_gen, const Gen& b_gen,
                                   bool verify) {
  CATRSM_CHECK(desc_.op == Op::kCholeskySolve,
               "execute_generated: only the cholesky-solve op accepts "
               "generator inputs");
  ExecResult r = run_cholesky_solve(a_gen, b_gen);
  if (verify) {
    // Verification only: materialize the global system once, host-side.
    Matrix a(desc_.n, desc_.n);
    Matrix b(desc_.n, desc_.k);
    for (index_t i = 0; i < desc_.n; ++i) {
      for (index_t j = 0; j < desc_.n; ++j) a(i, j) = a_gen(i, j);
      for (index_t j = 0; j < desc_.k; ++j) b(i, j) = b_gen(i, j);
    }
    r.residual = spd_residual(a, b, r.x);
  }
  return r;
}

// One in-flight execute_dist stream: the launched Program run plus the
// deferred diagonal-inverse cache merge. The non-reuse iterative TRSM
// computes Ltilde into the ticket's PRIVATE store (never the plan's
// shared one — a concurrent reuse stream may be reading that); wait()
// merges it into the plan under diag_mu_, and only when no reader is in
// flight.
struct DistTicket::Shared {
  std::shared_ptr<Plan> plan;
  model::Config config;
  Program::AsyncResult async;

  std::unique_ptr<std::vector<Matrix>> ltilde;
  std::uint64_t merge_fp = 0;
  bool merge = false;

  std::mutex mu;
  bool assembled = false;
  DistExecResult result;
  std::exception_ptr outcome;
};

DistExecResult Plan::execute_dist(const DistHandle& a, const DistHandle& b) {
  return execute_dist_async(a, b).wait();
}

DistTicket Plan::execute_dist_async(const DistHandle& a,
                                    const DistHandle& b) {
  CATRSM_CHECK(a.valid(), "execute_dist: operand handle is empty");
  const bool needs_b = desc_.op != Op::kTriInv && desc_.op != Op::kCholesky;
  CATRSM_CHECK(!needs_b || b.valid(),
               "execute_dist: op needs a second operand handle");

  auto sh = std::make_shared<DistTicket::Shared>();
  sh->plan = shared_from_this();
  sh->config = config_;

  if (desc_.op == Op::kCholeskySolve) {
    Program prog = make_cholesky_program();
    sh->async = prog.run_async({a, b});
    return DistTicket(std::move(sh));
  }

  // One-step program: ALL validation (variant rules, shapes, machine
  // ownership) and all orchestration (slot load/restore with exception
  // unwinding, grid subsetting, redistribute-on-mismatch, output
  // materialization) live in Program::add/run_async — one
  // implementation. run_async snapshots the DAG, so the local Program
  // may die while the stream flies.
  Program prog(*ctx_);
  std::vector<Program::NodeId> args{prog.input(a.rows(), a.cols())};
  std::vector<DistHandle> inputs{a};
  if (needs_b) {
    args.push_back(prog.input(b.rows(), b.cols()));
    inputs.push_back(b);
  }
  const Program::NodeId nx = prog.add(shared_from_this(), std::move(args));

  // Diagonal-inverse reuse keyed on the handle's content identity — no
  // byte hashing on the resident path. Set up only after add() accepted
  // the step, so a rejected call cannot clobber a live cache. A cache
  // hit makes this run a READER of the shared blocks: count it so no
  // concurrent wait() merges (rewrites) the vector under its fibers —
  // the count drops on a worker thread the moment the run completes.
  std::function<void()> on_complete;
  bool reader = false;
  if (desc_.op == Op::kTrsm && !desc_.trsm.transpose &&
      config_.algorithm == model::Algorithm::kIterative) {
    const std::uint64_t fp = handle_fingerprint(a);
    std::lock_guard<std::mutex> lock(diag_mu_);
    if (diag_valid_ && diag_fp_ == fp) {
      prog.steps_.back().ltilde_store = &diag_locals_;
      prog.steps_.back().reuse_ltilde = true;
      ++diag_readers_;
      reader = true;
      std::shared_ptr<Plan> self = shared_from_this();
      on_complete = [self] {
        std::lock_guard<std::mutex> l(self->diag_mu_);
        --self->diag_readers_;
      };
    } else {
      sh->ltilde = std::make_unique<std::vector<Matrix>>(
          static_cast<std::size_t>(ctx_->nprocs()));
      sh->merge_fp = fp;
      sh->merge = true;
      prog.steps_.back().ltilde_store = sh->ltilde.get();
      prog.steps_.back().reuse_ltilde = false;
    }
  }
  prog.mark_output(nx);
  try {
    sh->async = prog.run_async(inputs, std::move(on_complete));
  } catch (...) {
    // run_async throws only before the submission exists, so on_complete
    // never fires — undo the reader count here.
    if (reader) {
      std::lock_guard<std::mutex> lock(diag_mu_);
      --diag_readers_;
    }
    throw;
  }
  return DistTicket(std::move(sh));
}

bool DistTicket::done() const {
  CATRSM_CHECK(s_ != nullptr, "DistTicket: empty ticket");
  return s_->async.done();
}

DistExecResult DistTicket::wait() {
  CATRSM_CHECK(s_ != nullptr, "DistTicket: empty ticket");
  std::lock_guard<std::mutex> lock(s_->mu);
  Shared& sh = *s_;
  if (!sh.assembled) {
    sh.assembled = true;
    try {
      Program::Result r = sh.async.wait();
      sh.result.config = sh.config;
      sh.result.x = std::move(r.outputs[0]);
      sh.result.stats = std::move(r.stats);
      if (sh.merge) {
        Plan& plan = *sh.plan;
        std::lock_guard<std::mutex> dl(plan.diag_mu_);
        ++plan.diag_inversions_;  // the inverter DID run, merged or not
        if (plan.diag_readers_ == 0) {
          plan.diag_locals_ = std::move(*sh.ltilde);
          plan.diag_fp_ = sh.merge_fp;
          plan.diag_valid_ = true;
        }
        // A reader in flight pins the shared cache; dropping the private
        // blocks costs one future re-inversion, never correctness.
      }
    } catch (...) {
      sh.outcome = std::current_exception();
    }
    sh.ltilde.reset();
  }
  if (sh.outcome) std::rethrow_exception(sh.outcome);
  return sh.result;
}

ExecResult Plan::run_trsm(const Matrix& t, const Matrix& b,
                          const TrsmSpec& spec) {
  // --- Normalize right-side solves: X op(T) = B  <=>  op(T)^T X^T = B^T.
  if (spec.side == Side::kRight) {
    TrsmSpec inner = spec;
    inner.side = Side::kLeft;
    inner.transpose = !spec.transpose;
    ExecResult r = run_trsm(t, b.transposed(), inner);
    r.x = r.x.transposed();
    Matrix prod = la::matmul(r.x, effective_operand(t, spec));
    prod.sub(b);
    r.residual = la::frobenius_norm(prod) /
                 (la::frobenius_norm(t) * la::frobenius_norm(r.x) +
                  la::frobenius_norm(b) + 1e-300);
    return r;
  }

  // --- Normalize upper operands.
  if (spec.uplo == la::Uplo::kUpper) {
    TrsmSpec inner = spec;
    inner.uplo = la::Uplo::kLower;
    if (spec.transpose) {
      // U^T is already lower-triangular: solve directly with it.
      inner.transpose = false;
      ExecResult r = run_trsm(t.transposed(), b, inner);
      r.residual = la::trsm_residual(t.transposed(), r.x, b);
      return r;
    }
    // U X = B: J U J is lower, X = J * lower_solve(J U J, J B).
    ExecResult r = run_trsm(reversed_both(t), reversed_rows(b), inner);
    r.x = reversed_rows(r.x);
    r.residual = la::trsm_residual(t, r.x, b);
    return r;
  }

  // --- Lower transposed: X = J * lower_solve(J L^T J, J B).
  if (spec.transpose) {
    TrsmSpec inner = spec;
    inner.transpose = false;
    ExecResult r =
        run_trsm(reversed_both(t.transposed()), reversed_rows(b), inner);
    r.x = reversed_rows(r.x);
    r.residual = la::trsm_residual(t.transposed(), r.x, b);
    return r;
  }

  // --- Mixed precision: normalized kernel, solved host-side by the f32 +
  // f64-refinement path. No simulated machine involved.
  if (spec.mixed_precision) {
    ExecResult result;
    result.config = config_;
    Matrix x = b;
    const la::RefineStats rs =
        la::trsm_refined(la::Uplo::kLower, la::Diag::kNonUnit, t, x);
    result.x = std::move(x);
    result.residual = rs.residual;
    return result;
  }

  return run_trsm_kernel(t, b);
}

ExecResult Plan::run_trsm_kernel(const Matrix& l, const Matrix& b) {
  const index_t n = l.rows();
  const index_t k = b.cols();
  CATRSM_CHECK(l.cols() == n, "execute: L must be square");
  CATRSM_CHECK(b.rows() == n, "execute: dimension mismatch");
  sim::Machine& machine = ctx_->machine();
  const int p = machine.nprocs();

  ExecResult result;
  result.config = config_;
  const model::Config& cfg = config_;

  // Iterative algorithm: reuse the inverted diagonal blocks across
  // executes against the same (normalized) operand.
  bool reuse = false;
  std::vector<Matrix>* store = nullptr;
  if (cfg.algorithm == model::Algorithm::kIterative) {
    const std::uint64_t fp = fingerprint(l);
    reuse = diag_valid_ && diag_fp_ == fp;
    if (!reuse) {
      diag_locals_.assign(static_cast<std::size_t>(p), Matrix{});
      diag_fp_ = fp;
      diag_valid_ = false;
    }
    store = &diag_locals_;
  }

  // One describe-only communicator set per kernel shape: a batch of
  // panels (execute_batch) reuses these maps across every panel and every
  // rank instead of rebuilding them inside each run. Construction charges
  // nothing, so the hoist leaves modeled costs untouched. Iterative only:
  // it_inv_trsm communicates exclusively through the comm argument, while
  // the recursive/2D/1D bodies pull live fibers out of the operand's face
  // and must keep in-run distributions.
  const bool share_dists = cfg.algorithm == model::Algorithm::kIterative;
  if (share_dists && (host_a_dist_ == nullptr || host_dist_rows_ != n ||
                      host_dist_cols_ != k)) {
    detail::TrsmDists hd = detail::trsm_dists_host(cfg, n, k, p);
    host_a_dist_ = std::move(hd.l);
    host_b_dist_ = std::move(hd.b);
    host_dist_rows_ = n;
    host_dist_cols_ = k;
  }

  auto [x_out, stats] = run_and_collect(machine, n, k, [&](sim::Rank& r)
      -> std::optional<std::pair<DistMatrix, sim::Comm>> {
    sim::Comm world = sim::Comm::world(r);
    // The "algorithm" scope closes before the output gather so that
    // algorithm_cost() excludes the driver's collect, as documented.
    DistMatrix x = [&]() -> DistMatrix {
      sim::PhaseScope algorithm_scope(r, "algorithm");
      const detail::TrsmDists dists =
          share_dists ? detail::TrsmDists{host_a_dist_, host_b_dist_}
                      : detail::trsm_dists(world, cfg, n, k);
      DistMatrix dl(dists.l, r.id());
      dl.fill([&](index_t i, index_t j) { return l(i, j); });
      DistMatrix db(dists.b, r.id());
      db.fill([&](index_t i, index_t j) { return b(i, j); });
      detail::TrsmBodyOptions bopts;
      bopts.ltilde_store = store;
      bopts.reuse_ltilde = reuse;
      return detail::trsm_solve(desc_, cfg, world, dl, db, bopts);
    }();
    return std::pair<DistMatrix, sim::Comm>{std::move(x), world};
  });
  result.stats = std::move(stats);

  if (store != nullptr && !reuse) {
    diag_valid_ = true;
    ++diag_inversions_;
  }

  result.x = std::move(x_out);
  result.residual = la::trsm_residual(l, result.x, b);
  return result;
}

ExecResult Plan::run_tri_inv(const Matrix& l) {
  const index_t n = desc_.n;
  CATRSM_CHECK(l.rows() == n && l.cols() == n,
               "execute: L must match the planned n x n shape");
  sim::Machine& machine = ctx_->machine();

  ExecResult result;
  result.config = config_;
  auto [x_out, stats] = run_and_collect(machine, n, n, [&](sim::Rank& r)
      -> std::optional<std::pair<DistMatrix, sim::Comm>> {
    sim::Comm world = sim::Comm::world(r);
    Face2D face(world, config_.pr, config_.pc);
    auto ld = dist::cyclic_on(face, n, n);
    DistMatrix dl(ld, r.id());
    dl.fill([&](index_t i, index_t j) { return l(i, j); });
    DistMatrix dinv = [&] {
      sim::PhaseScope scope(r, "algorithm");
      return detail::op_body(desc_, config_, world, dl, DistMatrix{},
                             detail::TrsmBodyOptions{});
    }();
    return std::pair<DistMatrix, sim::Comm>{std::move(dinv), world};
  });

  result.stats = std::move(stats);
  result.x = std::move(x_out);
  result.residual = la::inv_residual(l, result.x);
  return result;
}

ExecResult Plan::run_cholesky(const Matrix& a) {
  const index_t n = desc_.n;
  sim::Machine& machine = ctx_->machine();
  const int active = config_.p1 * config_.p1;

  ExecResult result;
  result.config = config_;
  auto [l_out, stats] = run_and_collect(machine, n, n, [&](sim::Rank& r)
      -> std::optional<std::pair<DistMatrix, sim::Comm>> {
    // The factor runs on the q x q subgrid; surplus ranks idle.
    if (r.id() >= active) return std::nullopt;
    std::vector<int> members(static_cast<std::size_t>(active));
    std::iota(members.begin(), members.end(), 0);
    sim::Comm sub(r, members);
    Face2D face(sub, config_.p1, config_.p1);
    auto ad = dist::cyclic_on(face, n, n);
    DistMatrix da(ad, r.id());
    da.fill([&](index_t i, index_t j) { return a(i, j); });
    DistMatrix dl = [&] {
      sim::PhaseScope scope(r, "algorithm");
      return detail::op_body(desc_, config_, sub, da, DistMatrix{},
                             detail::TrsmBodyOptions{});
    }();
    return std::pair<DistMatrix, sim::Comm>{std::move(dl), sub};
  });

  result.stats = std::move(stats);
  result.x = std::move(l_out);
  // Factorization residual: ||L L^T - A|| / ||A||.
  Matrix llt = la::matmul(result.x, result.x.transposed());
  llt.sub(a);
  result.residual =
      la::frobenius_norm(llt) / (la::frobenius_norm(a) + 1e-300);
  return result;
}

Program Plan::make_cholesky_program() {
  const index_t n = desc_.n;
  const index_t k = desc_.k;
  const int q = config_.p1;

  // The three building-block plans (cache hits after the first execute).
  auto factor_plan = ctx_->plan(cholesky_op(n, q));
  TrsmSpec fwd_spec;
  fwd_spec.force_algorithm = true;
  fwd_spec.algorithm = model::Algorithm::kIterative;
  fwd_spec.nblocks = config_.nblocks;
  fwd_spec.grid_p1 = q;
  fwd_spec.grid_p2 = 1;
  auto fwd_plan = ctx_->plan(trsm_op(n, k, fwd_spec));
  TrsmSpec bwd_spec = fwd_spec;
  bwd_spec.transpose = true;
  auto bwd_plan = ctx_->plan(trsm_op(n, k, bwd_spec));

  Program prog(*ctx_);
  const auto na = prog.input(n, n);
  const auto nb = prog.input(n, k);
  const auto nl = prog.add(factor_plan, {na}, "cholesky");
  const auto ny = prog.add(fwd_plan, {nl, nb}, "forward-trsm");
  const auto nx = prog.add(bwd_plan, {nl, ny}, "backward-trsm");
  prog.mark_output(nx);
  return prog;
}

std::pair<DistHandle, sim::RunStats> Plan::run_cholesky_program(
    const DistHandle& a, const DistHandle& b) {
  Program prog = make_cholesky_program();
  Program::Result r = prog.run({a, b});
  return {std::move(r.outputs[0]), std::move(r.stats)};
}

ExecResult Plan::run_cholesky_solve(const Gen& a_gen, const Gen& b_gen) {
  const index_t n = desc_.n;
  const index_t k = desc_.k;
  const int q = config_.p1;

  // Scatter once (host-side, generator-fed: no rank ever materializes a
  // global operand), run the 3-op program in ONE simulated run with no
  // intermediate collects, assemble X host-side.
  DistHandle ha = ctx_->upload(a_gen, n, n, cyclic_layout(q, q));
  DistHandle hb = ctx_->upload(b_gen, n, k, row_blocked_layout(q, 1));
  auto [hx, stats] = run_cholesky_program(ha, hb);

  ExecResult result;
  result.config = config_;
  result.stats = std::move(stats);
  result.x = ctx_->download(hx);
  return result;
}

ExecResult Plan::run_matmul(const Matrix& a, const Matrix& x) {
  const index_t m = desc_.n;
  const index_t inner = desc_.inner;
  const index_t k = desc_.k;
  CATRSM_CHECK(a.rows() == m && a.cols() == inner,
               "execute: A must match the planned shape");
  CATRSM_CHECK(x.rows() == inner && x.cols() == k,
               "execute: X must match the planned shape");
  sim::Machine& machine = ctx_->machine();

  ExecResult result;
  result.config = config_;
  auto [c_out, stats] = run_and_collect(machine, m, k, [&](sim::Rank& r)
      -> std::optional<std::pair<DistMatrix, sim::Comm>> {
    sim::Comm world = sim::Comm::world(r);
    // SUMMA pulls live row/column fibers out of these faces, so the
    // distributions must stay per-rank and in-run (unlike the iterative
    // TRSM kernel's hoisted describe-only set).
    Face2D face(world, config_.pr, config_.pc);
    auto ad = dist::cyclic_on(face, m, inner);
    auto xd = dist::cyclic_on(face, inner, k);
    DistMatrix da(ad, r.id());
    da.fill([&](index_t i, index_t j) { return a(i, j); });
    DistMatrix dx(xd, r.id());
    dx.fill([&](index_t i, index_t j) { return x(i, j); });
    DistMatrix dc = [&] {
      sim::PhaseScope scope(r, "algorithm");
      return detail::op_body(desc_, config_, world, da, dx,
                             detail::TrsmBodyOptions{});
    }();
    return std::pair<DistMatrix, sim::Comm>{std::move(dc), world};
  });

  result.stats = std::move(stats);
  result.x = std::move(c_out);
  return result;
}

}  // namespace catrsm::api
