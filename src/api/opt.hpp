#pragma once
// Internal: the Program optimizer. compile() turns an api::Program's
// op-DAG plus the input layouts bound by the current run() into a static
// execution Schedule that Program::run's rank body follows verbatim —
// every rank walks the same schedule over the world communicator, so the
// result is deterministic and collective-safe by construction.
//
// Three passes, in order:
//
//   1. Dead-node elision: steps whose outputs are unreachable from any
//      marked output are dropped (their input nodes are not even loaded
//      out of the HandleStore).
//   2. Common-sub-DAG merging: two live steps with the same Plan object
//      (the Context plan cache guarantees same descriptor => same object)
//      and the same resolved arguments compute the same bits; the later
//      one is dropped and its node aliased to the earlier (`resolve`).
//   3. Layout-aware intermediate placement: for each surviving op node,
//      the RESIDENT layout is chosen from {natural} + {layouts its
//      consumers require}. Because conversions are cached per distinct
//      (node, layout), every candidate implies the same number of
//      redistributes whenever natural is not itself required — so the
//      count is minimized first, and ties are broken by the MODELED
//      alpha-beta time (dist::redistribute_model_cost) of the implied
//      transitions. Inputs and marked outputs are pinned to their bound /
//      natural layouts (outputs must materialize exactly what the
//      unoptimized run produces).
//
// With `enabled` false, the schedule is the as-written DAG: every step in
// order, one transient redistribute per mismatched use, nothing cached —
// bit-for-bit and cost-for-cost the pre-optimizer behavior.

#include <vector>

#include "api/catrsm.hpp"

namespace catrsm::api::opt {

/// One layout transition the schedule performs. `cache >= 0` names a
/// per-run slot: the conversion runs once at its first use and every
/// later use reads the slot. `cache < 0` (optimizer off) re-runs it at
/// every use, exactly like the as-written DAG.
struct Conversion {
  Program::NodeId node = -1;  // resolved source node
  Layout to;
  int cache = -1;
};

/// One step to execute: `index` into Program::steps_, with arguments
/// already resolved through the merge alias map and each slot's
/// conversion (if any) picked out of Schedule::conversions.
struct StepExec {
  int index = -1;
  Program::NodeId arg[2] = {-1, -1};
  int conv[2] = {-1, -1};
};

struct Schedule {
  bool optimized = false;
  /// Input layouts this schedule was compiled against (node order).
  std::vector<Layout> input_sig;
  /// Per node: materialize the bound handle's blocks? (false only for
  /// inputs feeding elided steps exclusively).
  std::vector<char> load_input;
  /// Merge alias map: node -> representative node holding its value.
  std::vector<Program::NodeId> resolve;
  /// Per node: the layout its value is resident in during the run.
  std::vector<Layout> resident;
  /// Per node: producer must redistribute natural -> resident after the
  /// body (placement moved it).
  std::vector<char> place;
  std::vector<StepExec> steps;
  std::vector<Conversion> conversions;
  int n_cached = 0;  // number of per-run conversion cache slots
  ProgramStats stats;
};

}  // namespace catrsm::api::opt
