// api::Program — deterministic op-DAG execution over resident operands:
// every step's body runs inside ONE Machine::run, intermediates never
// leave per-rank storage, and layout transitions run under the
// "redistribute" phase (everything else lands under "algorithm" plus the
// step's own label).
//
// run() executes a compiled opt::Schedule rather than the raw DAG: with
// the optimizer on (CATRSM_PROGRAM_OPT, default), dead steps are elided,
// duplicate (plan, args) steps are merged, and each distinct
// (node, layout) conversion runs once and is reused; with it off the
// schedule replays the DAG exactly as written — same steps, same per-use
// redistributes, bitwise-identical outputs either way.

#include <algorithm>
#include <optional>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "api/op_bodies.hpp"
#include "api/opt.hpp"
#include "sim/fault.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace catrsm::api {

using dist::DistMatrix;

namespace {

/// Operand count of an op's body (see Plan::execute operand roles).
int op_arity(Op op) {
  return op == Op::kTriInv || op == Op::kCholesky ? 1 : 2;
}

}  // namespace

sim::Cost Program::Result::algorithm_cost() const {
  return stats.phase_cost("algorithm");
}

Program::Program(Context& ctx)
    : ctx_(&ctx), optimize_(env::flag_or("CATRSM_PROGRAM_OPT", true)) {}

Program::NodeId Program::input(index_t rows, index_t cols) {
  CATRSM_CHECK(rows >= 1 && cols >= 1, "program: empty input shape");
  Node node;
  node.rows = rows;
  node.cols = cols;
  node.input_index = n_inputs_++;
  nodes_.push_back(node);
  compiled_.reset();
  return static_cast<NodeId>(nodes_.size()) - 1;
}

Program::NodeId Program::add(std::shared_ptr<Plan> plan,
                             std::vector<NodeId> args, std::string phase) {
  CATRSM_CHECK(plan != nullptr, "program: null plan");
  CATRSM_CHECK(plan->ctx_ == ctx_,
               "program: plan belongs to a different Context");
  const OpDesc& d = plan->desc();
  CATRSM_CHECK(d.op != Op::kCholeskySolve,
               "program: kCholeskySolve IS a program — compose kCholesky "
               "and two kTrsm steps instead");
  if (d.op == Op::kTrsm) {
    CATRSM_CHECK(d.trsm.side == Side::kLeft &&
                     d.trsm.uplo == la::Uplo::kLower,
                 "program: trsm steps run the normalized lower-left kernel");
    if (d.trsm.transpose)
      CATRSM_CHECK(plan->config().algorithm == model::Algorithm::kIterative,
                   "program: transposed trsm steps require the iterative "
                   "algorithm");
  }
  const int arity = op_arity(d.op);
  CATRSM_CHECK(static_cast<int>(args.size()) == arity,
               "program: wrong operand count for op");
  for (const NodeId a : args)
    CATRSM_CHECK(a >= 0 && a < static_cast<NodeId>(nodes_.size()),
                 "program: argument references an unknown node");

  // Shape-check the wiring now, so run() can't fail mid-simulation.
  const Node& a0 = nodes_[static_cast<std::size_t>(args[0])];
  Node out;
  switch (d.op) {
    case Op::kTrsm:
      CATRSM_CHECK(a0.rows == d.n && a0.cols == d.n,
                   "program: trsm operand must be the planned n x n");
      CATRSM_CHECK(nodes_[static_cast<std::size_t>(args[1])].rows == d.n &&
                       nodes_[static_cast<std::size_t>(args[1])].cols == d.k,
                   "program: trsm rhs must be the planned n x k");
      out.rows = d.n;
      out.cols = d.k;
      break;
    case Op::kTriInv:
    case Op::kCholesky:
      CATRSM_CHECK(a0.rows == d.n && a0.cols == d.n,
                   "program: operand must be the planned n x n");
      out.rows = d.n;
      out.cols = d.n;
      break;
    case Op::kMatmul3D:
    case Op::kMatmul2D:
      CATRSM_CHECK(a0.rows == d.n && a0.cols == d.inner,
                   "program: matmul A must be the planned shape");
      CATRSM_CHECK(nodes_[static_cast<std::size_t>(args[1])].rows ==
                           d.inner &&
                       nodes_[static_cast<std::size_t>(args[1])].cols == d.k,
                   "program: matmul X must be the planned shape");
      out.rows = d.n;
      out.cols = d.k;
      break;
    case Op::kCholeskySolve:
      throw Error("program: unreachable");
  }
  out.layout = plan->output_layout();

  nodes_.push_back(out);
  const NodeId out_id = static_cast<NodeId>(nodes_.size()) - 1;
  Step step;
  step.plan = std::move(plan);
  step.args = std::move(args);
  step.phase = std::move(phase);
  step.out = out_id;
  steps_.push_back(std::move(step));
  compiled_.reset();
  return out_id;
}

void Program::mark_output(NodeId node) {
  CATRSM_CHECK(node >= 0 && node < static_cast<NodeId>(nodes_.size()),
               "program: unknown node");
  CATRSM_CHECK(nodes_[static_cast<std::size_t>(node)].input_index < 0,
               "program: inputs are already handles — mark op outputs only");
  for (const NodeId existing : outputs_)
    CATRSM_CHECK(existing != node, "program: node is already an output");
  outputs_.push_back(node);
  compiled_.reset();
}

// Everything one in-flight run needs, snapshotted host-side at launch:
// the rank body reads ONLY this, so the Program object is free to be
// mutated or destroyed while the run flies, and several launches of the
// same Program can overlap. The scheduler clears the submission's job
// (which captures the owning shared_ptr) when the last rank finishes, so
// the ticket-holds-run-holds-body reference cycle always breaks.
struct Program::AsyncResult::Shared {
  sim::Machine* machine = nullptr;
  sim::HandleStore* store = nullptr;
  int p = 0;

  // DAG snapshot (steps keep their Plans alive via shared_ptr).
  std::vector<Node> nodes;
  std::vector<Step> steps;
  std::vector<NodeId> outputs;
  std::shared_ptr<const opt::Schedule> sched;

  std::vector<DistHandle> inputs;
  std::vector<std::uint64_t> in_ids;  // distinct, run-use marked in flight
  std::vector<std::uint64_t> out_ids;

  sim::RunTicket ticket;

  // Assemble-once outcome.
  std::mutex mu;
  bool assembled = false;
  Result result;
  std::exception_ptr outcome;
};

Program::Result Program::run(const std::vector<DistHandle>& inputs) {
  return run_async(inputs).wait();
}

Program::AsyncResult Program::run_async(const std::vector<DistHandle>& inputs,
                                        std::function<void()> on_complete) {
  CATRSM_CHECK(static_cast<int>(inputs.size()) == n_inputs_,
               "program: wrong number of input handles");
  sim::Machine& machine = ctx_->machine();
  sim::HandleStore& store = machine.handle_store();
  const int p = machine.nprocs();

  // Bind input layouts for this run and validate the handles. A poisoned
  // input is repaired transparently when the Context allows it (the
  // retry-after-fault path); otherwise it fails fast here, before any
  // simulated work.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    if (node.input_index < 0) continue;
    const DistHandle& h = inputs[static_cast<std::size_t>(node.input_index)];
    CATRSM_CHECK(h.valid(), "program: empty input handle");
    CATRSM_CHECK(h.state_->machine == &machine,
                 "program: input handle belongs to a different machine");
    CATRSM_CHECK(h.rows() == node.rows && h.cols() == node.cols,
                 "program: input handle shape mismatch");
    if (store.poisoned(h.id())) {
      if (!ctx_->auto_repair())
        throw PoisonedOperandError(
            "program: input operand was touched by a faulted run — "
            "Context::repair it (or set_auto_repair(true)) before retrying");
      ctx_->repair(h);
    }
    node.layout = h.layout();
  }

  // Compile (or reuse) the execution schedule for this DAG + the bound
  // input layouts + the optimize flag. stats_ reflects the schedule even
  // if the run itself later faults.
  {
    std::vector<Layout> sig;
    for (const Node& node : nodes_)
      if (node.input_index >= 0) sig.push_back(node.layout);
    if (compiled_ == nullptr || compiled_->optimized != optimize_ ||
        compiled_->input_sig != sig)
      compiled_ = std::make_shared<const opt::Schedule>(
          opt::compile(*this, optimize_));
  }
  const opt::Schedule& sched = *compiled_;
  stats_ = sched.stats;

  // Snapshot the DAG for the in-flight run: the rank body reads only the
  // Shared block, never the (mutable) Program members.
  auto sh = std::make_shared<AsyncResult::Shared>();
  sh->machine = &machine;
  sh->store = &store;
  sh->p = p;
  sh->nodes = nodes_;
  sh->steps = steps_;
  sh->outputs = outputs_;
  sh->sched = compiled_;
  sh->inputs = inputs;
  for (const Node& node : nodes_) {
    if (node.input_index < 0) continue;
    const std::uint64_t id =
        inputs[static_cast<std::size_t>(node.input_index)].id();
    if (std::find(sh->in_ids.begin(), sh->in_ids.end(), id) ==
        sh->in_ids.end())
      sh->in_ids.push_back(id);
  }

  // Serialize against any in-flight run sharing an operand: load_slot
  // MOVES blocks out of the store for the run's duration, so two
  // overlapping runs must never hold the same entry. All-or-nothing and
  // released on a worker thread at completion, so this always makes
  // progress. Residency is restored AFTER the marks are held — busy
  // entries cannot be evicted by a concurrent stream's budget pass
  // between here and the run.
  store.acquire_run_use(sh->in_ids);
  try {
    for (const DistHandle& h : inputs) ctx_->ensure_resident(h);
    sh->out_ids.reserve(outputs_.size());
    for (std::size_t i = 0; i < outputs_.size(); ++i)
      sh->out_ids.push_back(store.create());
  } catch (...) {
    store.release_run_use(sh->in_ids);
    throw;
  }

  const auto rank_body = [sh](sim::Rank& r) {
    const std::vector<Node>& nodes_ = sh->nodes;
    const std::vector<Step>& steps_ = sh->steps;
    const std::vector<NodeId>& outputs_ = sh->outputs;
    const std::vector<DistHandle>& inputs = sh->inputs;
    const std::vector<std::uint64_t>& out_ids = sh->out_ids;
    const opt::Schedule& sched = *sh->sched;
    sim::HandleStore& store = *sh->store;
    const int p = sh->p;

    const int me = r.id();
    sim::Comm world = sim::Comm::world(r);
    std::vector<DistMatrix> vals(nodes_.size());
    // Cached conversions: one slot per distinct (node, layout) the
    // schedule reuses, materialized at first use. All ranks follow the
    // same static schedule, so the lazy fill is collective-safe.
    std::vector<DistMatrix> conv_vals(
        static_cast<std::size_t>(sched.n_cached));
    std::vector<char> conv_done(static_cast<std::size_t>(sched.n_cached),
                                0);

    // Input slots are moved OUT of the store for the duration of the run;
    // restore them even when a peer's failure unwinds this rank, so a
    // failed program never destroys the caller's resident operands. A
    // handle bound to several input nodes is moved out once and copied
    // for the rest. Inputs feeding only elided steps are never touched.
    std::unordered_map<std::uint64_t, std::size_t> first_node_of;
    const auto restore_inputs = [&] {
      for (const auto& [id, node] : first_node_of)
        detail::restore_slot(store, id, vals[node]);
      first_node_of.clear();
    };
    try {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const Node& node = nodes_[i];
      if (node.input_index < 0 || !sched.load_input[i]) continue;
      const DistHandle& h =
          inputs[static_cast<std::size_t>(node.input_index)];
      auto d = detail::realize(node.layout, node.rows, node.cols, world);
      const auto seen = first_node_of.find(h.id());
      if (seen == first_node_of.end()) {
        vals[i] = detail::load_slot(store, h.id(), std::move(d), me);
        first_node_of.emplace(h.id(), i);
      } else {
        DistMatrix dm(std::move(d), me);
        dm.local() = vals[seen->second].local();
        vals[i] = std::move(dm);
      }
    }

    for (const opt::StepExec& se : sched.steps) {
      const Step& step = steps_[static_cast<std::size_t>(se.index)];
      const Plan& plan = *step.plan;
      const int gr = detail::grid_ranks(plan.desc(), plan.config(), p);
      sim::Comm grid = [&] {
        if (gr == p) return world;
        std::vector<int> idx(static_cast<std::size_t>(gr));
        std::iota(idx.begin(), idx.end(), 0);
        return world.subset(idx);
      }();

      // Layout transitions, as planned by the schedule: direct reference,
      // a cached conversion (run once, reused), or — optimizer off — a
      // per-use transient, exactly the as-written behavior.
      const int arity = op_arity(plan.desc().op);
      const DistMatrix* arg[2] = {nullptr, nullptr};
      DistMatrix moved[2];
      for (int slot = 0; slot < arity; ++slot) {
        const NodeId nid = se.arg[slot];
        if (se.conv[slot] < 0) {
          arg[slot] = &vals[static_cast<std::size_t>(nid)];
          continue;
        }
        const opt::Conversion& cv =
            sched.conversions[static_cast<std::size_t>(se.conv[slot])];
        if (cv.cache >= 0 &&
            conv_done[static_cast<std::size_t>(cv.cache)]) {
          arg[slot] = &conv_vals[static_cast<std::size_t>(cv.cache)];
          continue;
        }
        const Node& src = nodes_[static_cast<std::size_t>(cv.node)];
        sim::PhaseScope scope(r, "redistribute");
        DistMatrix out = dist::redistribute(
            vals[static_cast<std::size_t>(cv.node)],
            detail::realize(cv.to, src.rows, src.cols, world), world);
        if (cv.cache >= 0) {
          conv_vals[static_cast<std::size_t>(cv.cache)] = std::move(out);
          conv_done[static_cast<std::size_t>(cv.cache)] = 1;
          arg[slot] = &conv_vals[static_cast<std::size_t>(cv.cache)];
        } else {
          moved[slot] = std::move(out);
          arg[slot] = &moved[slot];
        }
      }

      const DistMatrix empty;
      DistMatrix out;
      {
        sim::PhaseScope algorithm_scope(r, "algorithm");
        std::optional<sim::PhaseScope> label;
        if (!step.phase.empty()) label.emplace(r, step.phase);
        detail::TrsmBodyOptions opts;
        opts.ltilde_store = step.ltilde_store;
        opts.reuse_ltilde = step.reuse_ltilde;
        out = detail::op_body(plan.desc(), plan.config(), grid, *arg[0],
                              arity == 2 ? *arg[1] : empty, opts);
      }
      const Node& out_node = nodes_[static_cast<std::size_t>(step.out)];
      if (out.dist_ptr() == nullptr) {
        // Idle rank (outside the step's grid): keep a proper empty view of
        // the output layout so later redistributes see a valid descriptor.
        out = DistMatrix(detail::realize(out_node.layout, out_node.rows,
                                         out_node.cols, world),
                         me);
      }
      if (sched.place[static_cast<std::size_t>(step.out)]) {
        // Placement moved this intermediate off its natural layout: pay
        // the transition once at the producer instead of per consumer.
        sim::PhaseScope scope(r, "redistribute");
        out = dist::redistribute(
            out,
            detail::realize(sched.resident[static_cast<std::size_t>(
                                step.out)],
                            out_node.rows, out_node.cols, world),
            world);
      }
      vals[static_cast<std::size_t>(step.out)] = std::move(out);
    }

    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      const std::size_t src = static_cast<std::size_t>(
          sched.resolve[static_cast<std::size_t>(outputs_[i])]);
      // Merged outputs can share one producer node: the last reference
      // moves the local block, earlier ones copy it.
      bool last = true;
      for (std::size_t j = i + 1; j < outputs_.size(); ++j)
        if (static_cast<std::size_t>(sched.resolve[static_cast<std::size_t>(
                outputs_[j])]) == src) {
          last = false;
          break;
        }
      if (last)
        store.local(out_ids[i], me) = std::move(vals[src].local());
      else
        store.local(out_ids[i], me) = vals[src].local();
    }

    restore_inputs();
    } catch (...) {
      restore_inputs();
      throw;
    }
  };
  // Release the run-use marks the moment the last rank finishes (on a
  // worker thread), so a host blocked acquiring them — or waiting any
  // other ticket — never depends on this ticket being wait()ed first.
  const std::vector<std::uint64_t> in_ids = sh->in_ids;
  sim::HandleStore* store_ptr = &store;
  auto complete = [store_ptr, in_ids, user = std::move(on_complete)] {
    store_ptr->release_run_use(in_ids);
    if (user) user();
  };
  try {
    sh->ticket = machine.run_async(rank_body, std::move(complete));
  } catch (...) {
    // run_async throws only before the submission exists (admission does
    // not throw), so the marks are still ours to release.
    store.release_run_use(sh->in_ids);
    throw;
  }
  return AsyncResult(std::move(sh));
}

bool Program::AsyncResult::done() const {
  CATRSM_CHECK(s_ != nullptr, "program: empty AsyncResult");
  std::lock_guard<std::mutex> lock(s_->mu);
  return s_->assembled || s_->ticket.done();
}

Program::Result Program::AsyncResult::wait() {
  CATRSM_CHECK(s_ != nullptr, "program: empty AsyncResult");
  std::lock_guard<std::mutex> lock(s_->mu);
  Shared& sh = *s_;
  if (!sh.assembled) {
    sh.assembled = true;
    sim::HandleStore& store = *sh.store;
    try {
      sim::RunStats stats = sh.ticket.wait();
      Result result;
      result.stats = std::move(stats);
      result.outputs.reserve(sh.outputs.size());
      for (std::size_t i = 0; i < sh.outputs.size(); ++i) {
        const Node& node =
            sh.nodes[static_cast<std::size_t>(sh.outputs[i])];
        store.touch(sh.out_ids[i]);  // byte accounting for the new blocks
        result.outputs.push_back(DistHandle(
            std::make_shared<DistHandle::State>(
                sh.machine, sh.out_ids[i], node.layout, node.rows,
                node.cols, store.epoch(sh.out_ids[i]))));
      }
      sh.result = std::move(result);
    } catch (...) {
      for (const std::uint64_t id : sh.out_ids) store.release(id);
      // Graceful degradation: the unwound fibers restored every input
      // slot, and for a CLEAN in-body failure (a CHECK like "not positive
      // definite" fires before any in-place mutation of that operand) the
      // restored blocks are the caller's original data — leave them
      // usable. But when fault injection actually fired in THIS run (the
      // per-run ticket record — a fault in a concurrent stream never
      // counts here), the failure point is arbitrary: some ranks may have
      // mutated their moved-out locals in place before the fault unwound
      // them. Mark each input untrustworthy; the caller repairs or
      // re-uploads before the retry. Refresh cached epochs so handle
      // observers see the invalidation immediately.
      if (sh.ticket.injections() > 0) {
        for (const DistHandle& h : sh.inputs) {
          if (!h.valid()) continue;
          store.poison(h.id());
          h.state_->epoch = store.epoch(h.id());
        }
      }
      sh.outcome = std::current_exception();
    }
    // The inputs just left flight (run-use released at completion):
    // enforce the byte budget now, so budget 0 degenerates to
    // always-re-upload the moment an operand goes idle.
    store.evict_to_budget();
    sh.ticket = sim::RunTicket{};
    sh.inputs.clear();  // drop operand refs; result keeps the outputs
  }
  if (sh.outcome) std::rethrow_exception(sh.outcome);
  return sh.result;
}

}  // namespace catrsm::api
