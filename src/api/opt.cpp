// The Program optimizer's compile pass. Pure planning: nothing here
// touches the simulated machine — the only model queries are host-side
// (describe-only layout realizations + dist::redistribute_model_cost),
// used to break placement ties.

#include "api/opt.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "api/op_bodies.hpp"
#include "dist/redistribute.hpp"

namespace catrsm::api::opt {

namespace {

using NodeId = Program::NodeId;

/// Orderable identity of a Layout (Layout itself only defines ==).
using LayoutKey = std::tuple<int, int, int>;
LayoutKey key_of(const Layout& l) {
  return {static_cast<int>(l.kind), l.p1, l.p2};
}

/// Modeled wall time of one src -> dst transition of an rows x cols
/// operand on the p-rank world, under the machine's alpha/beta.
double transition_time(const Layout& from, const Layout& to, index_t rows,
                       index_t cols, int p, const sim::MachineParams& mp) {
  const auto src = detail::realize_host(from, rows, cols, p);
  const auto dst = detail::realize_host(to, rows, cols, p);
  const sim::Cost c = dist::redistribute_model_cost(*src, *dst, p);
  return mp.alpha * c.msgs + mp.beta * c.words;
}

}  // namespace

Schedule compile(const Program& prog, bool enabled) {
  const auto& nodes = prog.nodes_;
  const auto& steps = prog.steps_;
  const std::size_t nn = nodes.size();
  const int p = prog.ctx_->nprocs();
  const sim::MachineParams& mp = prog.ctx_->params();

  Schedule s;
  s.optimized = enabled;
  s.load_input.assign(nn, 1);
  s.resolve.resize(nn);
  s.resident.reserve(nn);
  s.place.assign(nn, 0);
  for (std::size_t i = 0; i < nn; ++i) {
    s.resolve[i] = static_cast<NodeId>(i);
    s.resident.push_back(nodes[i].layout);
    if (nodes[i].input_index >= 0) s.input_sig.push_back(nodes[i].layout);
  }

  // What the as-written DAG pays: one redistribute per mismatched use.
  std::uint64_t baseline = 0;
  for (const auto& step : steps)
    for (std::size_t slot = 0; slot < step.args.size(); ++slot)
      if (nodes[static_cast<std::size_t>(step.args[slot])].layout !=
          step.plan->input_layout(static_cast<int>(slot)))
        ++baseline;

  if (!enabled) {
    for (std::size_t si = 0; si < steps.size(); ++si) {
      const auto& step = steps[si];
      StepExec se;
      se.index = static_cast<int>(si);
      for (std::size_t slot = 0; slot < step.args.size(); ++slot) {
        const NodeId a = step.args[slot];
        se.arg[slot] = a;
        const Layout need = step.plan->input_layout(static_cast<int>(slot));
        if (nodes[static_cast<std::size_t>(a)].layout != need) {
          se.conv[slot] = static_cast<int>(s.conversions.size());
          s.conversions.push_back(Conversion{a, need, -1});
        }
      }
      s.steps.push_back(se);
    }
    s.stats.redistributes_inserted = baseline;
    s.stats.steps_executed = steps.size();
    return s;
  }

  // --- Pass 1: dead-node elision.
  std::vector<int> producer(nn, -1);
  for (std::size_t si = 0; si < steps.size(); ++si)
    producer[static_cast<std::size_t>(steps[si].out)] = static_cast<int>(si);
  std::vector<char> live(nn, 0);
  std::vector<NodeId> stack(prog.outputs_);
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (live[static_cast<std::size_t>(id)]) continue;
    live[static_cast<std::size_t>(id)] = 1;
    const int pr = producer[static_cast<std::size_t>(id)];
    if (pr >= 0)
      for (const NodeId a : steps[static_cast<std::size_t>(pr)].args)
        stack.push_back(a);
  }
  for (std::size_t i = 0; i < nn; ++i)
    if (nodes[i].input_index >= 0) s.load_input[i] = live[i];
  for (const auto& step : steps)
    if (!live[static_cast<std::size_t>(step.out)]) ++s.stats.nodes_elided;

  // --- Pass 2: common-sub-DAG merging. Identity = (plan object, resolved
  // args, the step's cross-execute TRSM state) — the plan cache makes the
  // plan pointer a structural key; the ltilde wiring is included so steps
  // with different diag-inverse roles never merge.
  std::map<std::tuple<const Plan*, NodeId, NodeId, const void*, bool>,
           NodeId>
      seen;
  std::vector<int> kept;
  for (std::size_t si = 0; si < steps.size(); ++si) {
    const auto& step = steps[si];
    if (!live[static_cast<std::size_t>(step.out)]) continue;
    const NodeId a0 = s.resolve[static_cast<std::size_t>(step.args[0])];
    const NodeId a1 =
        step.args.size() > 1
            ? s.resolve[static_cast<std::size_t>(step.args[1])]
            : -1;
    const auto key = std::make_tuple(step.plan.get(), a0, a1,
                                     static_cast<const void*>(
                                         step.ltilde_store),
                                     step.reuse_ltilde);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      s.resolve[static_cast<std::size_t>(step.out)] = it->second;
      ++s.stats.nodes_merged;
      continue;
    }
    seen.emplace(key, step.out);
    kept.push_back(static_cast<int>(si));
  }

  // --- Pass 3: layout-aware placement. Consumers' required layouts per
  // surviving node, in first-seen order (keeps candidate ranking
  // deterministic).
  std::vector<std::vector<Layout>> needs(nn);
  for (const int si : kept) {
    const auto& step = steps[static_cast<std::size_t>(si)];
    for (std::size_t slot = 0; slot < step.args.size(); ++slot) {
      const NodeId src = s.resolve[static_cast<std::size_t>(step.args[slot])];
      const Layout need = step.plan->input_layout(static_cast<int>(slot));
      auto& ns = needs[static_cast<std::size_t>(src)];
      if (std::find(ns.begin(), ns.end(), need) == ns.end())
        ns.push_back(need);
    }
  }
  std::vector<char> pinned(nn, 0);
  for (const NodeId out : prog.outputs_)
    pinned[static_cast<std::size_t>(s.resolve[static_cast<std::size_t>(
        out)])] = 1;
  for (const int si : kept) {
    const NodeId o = steps[static_cast<std::size_t>(si)].out;
    const auto& ns = needs[static_cast<std::size_t>(o)];
    if (pinned[static_cast<std::size_t>(o)] || ns.empty()) continue;
    const auto& node = prog.nodes_[static_cast<std::size_t>(o)];
    const Layout nat = node.layout;
    std::vector<Layout> cands{nat};
    for (const Layout& c : ns)
      if (!(c == nat)) cands.push_back(c);
    // Score a candidate resident layout: transitions implied = (natural ->
    // candidate, when they differ) + one cached conversion per OTHER
    // required layout. Count first, modeled time second; ties keep the
    // earliest candidate (natural leads).
    int best_count = -1;
    double best_time = 0.0;
    Layout best = nat;
    for (const Layout& c : cands) {
      int count = c == nat ? 0 : 1;
      double time = c == nat ? 0.0
                             : transition_time(nat, c, node.rows, node.cols,
                                               p, mp);
      for (const Layout& need : ns) {
        if (need == c) continue;
        ++count;
        time += transition_time(c, need, node.rows, node.cols, p, mp);
      }
      if (best_count < 0 || count < best_count ||
          (count == best_count && time < best_time)) {
        best_count = count;
        best_time = time;
        best = c;
      }
    }
    s.resident[static_cast<std::size_t>(o)] = best;
    s.place[static_cast<std::size_t>(o)] = !(best == nat);
  }

  // --- Emit the step list with cached conversions, one per distinct
  // (resolved node, required layout).
  std::map<std::pair<NodeId, LayoutKey>, int> conv_of;
  for (const int si : kept) {
    const auto& step = steps[static_cast<std::size_t>(si)];
    StepExec se;
    se.index = si;
    for (std::size_t slot = 0; slot < step.args.size(); ++slot) {
      const NodeId src = s.resolve[static_cast<std::size_t>(step.args[slot])];
      se.arg[slot] = src;
      const Layout need = step.plan->input_layout(static_cast<int>(slot));
      if (s.resident[static_cast<std::size_t>(src)] == need) continue;
      const auto ck = std::make_pair(src, key_of(need));
      auto it = conv_of.find(ck);
      if (it == conv_of.end()) {
        const int idx = static_cast<int>(s.conversions.size());
        s.conversions.push_back(Conversion{src, need, s.n_cached++});
        it = conv_of.emplace(ck, idx).first;
      }
      se.conv[slot] = it->second;
    }
    s.steps.push_back(se);
  }

  std::uint64_t placed = 0;
  for (const char f : s.place) placed += static_cast<std::uint64_t>(f);
  s.stats.optimized = true;
  s.stats.steps_executed = kept.size();
  s.stats.redistributes_inserted =
      static_cast<std::uint64_t>(s.n_cached) + placed;
  s.stats.redistributes_avoided =
      baseline - s.stats.redistributes_inserted;
  return s;
}

}  // namespace catrsm::api::opt
