#pragma once
// api::StreamPool — multi-tenant admission over execution streams.
//
// Several Contexts (tenants) — typically sharing ONE machine — queue
// execute_dist requests; the pool keeps up to max_inflight of them in
// flight as concurrent simulator streams and admits new work round-robin
// across tenants as streams complete, so one tenant's deep backlog cannot
// starve the others. Completions (results or captured errors) are
// surfaced in completion order through poll()/drain().
//
//   api::StreamPool pool;                       // CATRSM_SIM_STREAMS wide
//   const int t0 = pool.add_tenant(ctx0);
//   const int t1 = pool.add_tenant(ctx1);
//   pool.submit(t0, plan_a, hl, hb);
//   pool.submit(t1, plan_b, hl2, hb2);
//   for (auto& c : pool.drain())
//     if (!c.error) use(c.result.x);
//
// The pool is a host-side scheduler only: all isolation guarantees
// (bitwise-serial results, per-run stats, fault containment) come from
// the execution streams themselves. Not thread-safe — one pool per host
// thread, like the Contexts it feeds.

#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <vector>

#include "api/catrsm.hpp"

namespace catrsm::api {

class StreamPool {
 public:
  /// One finished request. `error` is set (and `result` empty) when the
  /// stream faulted — the exception is captured, never thrown across
  /// poll()/drain(), so one tenant's fault cannot abort another's batch.
  struct Completion {
    int id = -1;
    int tenant = -1;
    DistExecResult result;
    std::exception_ptr error;
  };

  /// `max_inflight` 0 derives the width from CATRSM_SIM_STREAMS — the
  /// machine's own stream cap, so admission never blocks on it.
  explicit StreamPool(int max_inflight = 0);

  StreamPool(const StreamPool&) = delete;
  StreamPool& operator=(const StreamPool&) = delete;

  /// Register a tenant Context (must outlive the pool). Returns its
  /// tenant index.
  int add_tenant(Context& ctx);

  /// Queue plan->execute_dist_async(a, b) for `tenant`; returns a request
  /// id unique within this pool. Admission happens inside poll()/drain().
  int submit(int tenant, std::shared_ptr<Plan> plan, DistHandle a,
             DistHandle b = DistHandle());

  /// Reap every finished in-flight stream, then admit queued requests
  /// round-robin across tenants up to the in-flight cap. Never blocks on
  /// a running stream (admission of a request whose operands an
  /// in-flight run still holds does block until that run completes — the
  /// handle-exclusivity rule).
  std::vector<Completion> poll();

  /// Like poll(), but when nothing has finished yet, block on the oldest
  /// in-flight stream so the call always returns at least one completion
  /// while work is pending. Empty result = the pool is fully drained.
  /// The overlap-friendly serving loop:
  ///   while (!(cs = pool.wait_some()).empty())
  ///     for (auto& c : cs) consume(c);   // runs WHILE other streams fly
  std::vector<Completion> wait_some();

  /// Run wait_some() to exhaustion: blocks until every queued and
  /// in-flight request has completed, returning completions in finish
  /// order.
  std::vector<Completion> drain();

  /// Requests accepted but not yet surfaced as completions.
  std::size_t pending() const;
  int max_inflight() const { return max_; }

 private:
  struct Request {
    int id;
    int tenant;
    std::shared_ptr<Plan> plan;
    DistHandle a;
    DistHandle b;
  };
  struct InFlight {
    int id;
    int tenant;
    DistTicket ticket;
  };

  Completion finish(InFlight& f);
  void admit();

  int max_;
  int next_id_ = 0;
  int rr_ = 0;  // next tenant the round-robin cursor offers admission to
  std::vector<Context*> tenants_;
  std::vector<std::deque<Request>> queues_;
  std::vector<InFlight> inflight_;
};

}  // namespace catrsm::api
