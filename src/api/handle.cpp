// Resident distributed operands: DistHandle lifecycle and the host-side
// scatter (upload) / assemble (download) endpoints. Both endpoints are
// pure host arithmetic over describe-only layout realizations — nothing
// here touches the simulated machine's clocks or counters, which is what
// keeps algorithm_cost() on the handle path free of driver artifacts.

#include "api/op_bodies.hpp"
#include "support/check.hpp"

namespace catrsm::api {

DistHandle::State::~State() {
  // The machine's store outlives every handle by the documented lifetime
  // rule (handles must not outlive their Context / machine).
  machine->handle_store().release(id);
}

index_t DistHandle::rows() const {
  CATRSM_CHECK(state_ != nullptr, "DistHandle: empty handle");
  return state_->rows;
}

index_t DistHandle::cols() const {
  CATRSM_CHECK(state_ != nullptr, "DistHandle: empty handle");
  return state_->cols;
}

Layout DistHandle::layout() const {
  CATRSM_CHECK(state_ != nullptr, "DistHandle: empty handle");
  return state_->layout;
}

std::uint64_t DistHandle::id() const {
  CATRSM_CHECK(state_ != nullptr, "DistHandle: empty handle");
  return state_->id;
}

std::uint64_t DistHandle::epoch() const {
  CATRSM_CHECK(state_ != nullptr, "DistHandle: empty handle");
  return state_->epoch;
}

bool DistHandle::poisoned() const {
  CATRSM_CHECK(state_ != nullptr, "DistHandle: empty handle");
  return state_->machine->handle_store().poisoned(state_->id);
}

bool DistHandle::resident() const {
  CATRSM_CHECK(state_ != nullptr, "DistHandle: empty handle");
  return state_->machine->handle_store().resident(state_->id);
}

sim::Cost DistExecResult::algorithm_cost() const {
  return stats.phase_cost("algorithm");
}

sim::Cost DistExecResult::redistribute_cost() const {
  return stats.phase_cost("redistribute");
}

namespace {

/// Fill every participating rank's slot of entry `id` from `gen` under
/// the host-realized distribution `d` (shared by upload and repair).
void fill_slots(sim::HandleStore& store, std::uint64_t id, const Gen& gen,
                const std::shared_ptr<const dist::Distribution>& d, int p) {
  for (int w = 0; w < p; ++w) {
    dist::DistMatrix dm(d, w);
    if (!dm.participates()) continue;
    dm.fill(gen);
    store.local(id, w) = std::move(dm.local());
  }
}

}  // namespace

DistHandle Context::upload(const la::Matrix& m, Layout layout) {
  return upload_on(m, layout,
                   detail::realize_host(layout, m.rows(), m.cols(),
                                        nprocs()));
}

DistHandle Context::upload(const Gen& gen, index_t rows, index_t cols,
                           Layout layout) {
  return upload_on(gen, rows, cols, layout,
                   detail::realize_host(layout, rows, cols, nprocs()));
}

DistHandle Context::upload_on(
    const la::Matrix& m, Layout layout,
    const std::shared_ptr<const dist::Distribution>& d) {
  // Copy the matrix into the recovery source: the handle's repair path
  // may fire long after the caller's matrix is gone.
  const auto keep = std::make_shared<la::Matrix>(m);
  return upload_on([keep](index_t i, index_t j) { return (*keep)(i, j); },
                   m.rows(), m.cols(), layout, d);
}

DistHandle Context::upload_on(
    const Gen& gen, index_t rows, index_t cols, Layout layout,
    const std::shared_ptr<const dist::Distribution>& d) {
  CATRSM_CHECK(rows >= 1 && cols >= 1, "upload: empty operand");
  CATRSM_CHECK(d != nullptr && d->rows() == rows && d->cols() == cols,
               "upload: realization does not match the operand shape");
  sim::HandleStore& store = machine_->handle_store();
  const std::uint64_t id = store.create();
  fill_slots(store, id, gen, d, nprocs());
  // Uploaded operands carry their source, so they can be rebuilt bitwise
  // after a byte-budget eviction — mark them evictable, account their
  // bytes, and let the new admission push the LRU tail out.
  store.set_evictable(id, true);
  store.touch(id);
  auto state = std::make_shared<DistHandle::State>(
      machine_, id, layout, rows, cols, store.epoch(id));
  state->source = gen;
  store.evict_to_budget();
  return DistHandle(std::move(state));
}

void Context::repair(const DistHandle& h) {
  CATRSM_CHECK(h.valid(), "repair: empty handle");
  CATRSM_CHECK(h.state_->machine == machine_,
               "repair: handle belongs to a different machine");
  sim::HandleStore& store = machine_->handle_store();
  store.wait_run_idle(h.id());  // never rewrite under an in-flight stream
  if (!store.poisoned(h.id())) return;
  if (!h.state_->source)
    throw PoisonedOperandError(
        "repair: handle has no recorded source to re-upload from (it was "
        "produced by a run, not uploaded) — rebuild it instead");
  const auto d =
      detail::realize_host(h.layout(), h.rows(), h.cols(), nprocs());
  fill_slots(store, h.id(), h.state_->source, d, nprocs());
  store.unpoison(h.id());
  store.touch(h.id());
  h.state_->epoch = store.epoch(h.id());
}

bool Context::ensure_resident(const DistHandle& h) {
  CATRSM_CHECK(h.valid(), "ensure_resident: empty handle");
  CATRSM_CHECK(h.state_->machine == machine_,
               "ensure_resident: handle belongs to a different machine");
  sim::HandleStore& store = machine_->handle_store();
  if (store.resident(h.id())) return false;
  // Only entries with a recorded source are ever marked evictable, so a
  // non-resident entry always has one.
  CATRSM_CHECK(static_cast<bool>(h.state_->source),
               "ensure_resident: evicted handle has no upload source");
  const auto d =
      detail::realize_host(h.layout(), h.rows(), h.cols(), nprocs());
  fill_slots(store, h.id(), h.state_->source, d, nprocs());
  // touch(), not a fresh epoch: the restored bytes are identical, so
  // content-keyed caches (diag-inverse reuse) stay valid across the
  // evict/re-upload round trip. No budget pass here — the caller is
  // about to use the blocks (run paths hold run-use marks; download
  // evicts after assembling).
  store.touch(h.id());
  return true;
}

void Context::pin(const DistHandle& h) {
  CATRSM_CHECK(h.valid(), "pin: empty handle");
  CATRSM_CHECK(h.state_->machine == machine_,
               "pin: handle belongs to a different machine");
  machine_->handle_store().pin(h.id());
}

void Context::unpin(const DistHandle& h) {
  CATRSM_CHECK(h.valid(), "unpin: empty handle");
  machine_->handle_store().unpin(h.id());
}

la::Matrix Context::download(const DistHandle& h) {
  CATRSM_CHECK(h.valid(), "download: empty handle");
  return download_on(
      h, detail::realize_host(h.layout(), h.rows(), h.cols(), nprocs()));
}

la::Matrix Context::download_on(
    const DistHandle& h,
    const std::shared_ptr<const dist::Distribution>& d) {
  CATRSM_CHECK(h.valid(), "download: empty handle");
  CATRSM_CHECK(h.state_->machine == machine_,
               "download: handle belongs to a different machine");
  CATRSM_CHECK(d != nullptr && d->rows() == h.rows() &&
                   d->cols() == h.cols(),
               "download: realization does not match the handle shape");
  sim::HandleStore& store = machine_->handle_store();
  // An in-flight stream moves blocks OUT of the store for the run's
  // duration; wait until no run uses the entry before reading it.
  store.wait_run_idle(h.id());
  if (store.poisoned(h.id()))
    throw PoisonedOperandError(
        "download: operand was touched by a faulted run and may be "
        "partially rewritten — Context::repair it (or re-upload) first");
  ensure_resident(h);  // transparent re-upload after a budget eviction
  la::Matrix out(h.rows(), h.cols());
  for (int w = 0; w < nprocs(); ++w) {
    const auto parts = d->parts_of_world(w);
    if (!parts.has_value()) continue;
    const auto rows_w = d->rows_of_part(parts->first);
    const auto cols_w = d->cols_of_part(parts->second);
    const la::Matrix& loc = store.local(h.id(), w);
    CATRSM_CHECK(loc.rows() == static_cast<index_t>(rows_w.size()) &&
                     loc.cols() == static_cast<index_t>(cols_w.size()),
                 "download: stored block does not match the handle layout");
    for (std::size_t r = 0; r < rows_w.size(); ++r)
      for (std::size_t c = 0; c < cols_w.size(); ++c)
        out(rows_w[r], cols_w[c]) =
            loc(static_cast<index_t>(r), static_cast<index_t>(c));
  }
  // Budget 0 degenerates to always-re-upload: the blocks just read can
  // leave again now that the gather is done.
  store.evict_to_budget();
  return out;
}

}  // namespace catrsm::api
