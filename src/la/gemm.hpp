#pragma once
// Sequential blocked GEMM kernels. These are the flop substrate for every
// distributed algorithm; their flop counts (2*m*n*k) feed the gamma term of
// the cost model.

#include "la/matrix.hpp"

namespace catrsm::la {

/// C = alpha * A * B + beta * C.  A: m x kk, B: kk x n, C: m x n.
void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c);

/// Convenience: returns A * B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C += A * B (no allocation of temporaries beyond blocking registers).
void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c);

/// Flop count charged for a gemm of these dimensions (multiply + add).
constexpr double gemm_flops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace catrsm::la
