#include "la/gemm.hpp"

#include "la/kernel/kernel.hpp"

namespace catrsm::la {

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  CATRSM_CHECK(a.cols() == b.rows(), "gemm: inner dims mismatch");
  CATRSM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: output shape mismatch");
  const index_t m = a.rows(), n = b.cols(), kk = a.cols();
  kernel::gemm(m, n, kk, alpha, a.ptr(), kk, b.ptr(), n, beta, c.ptr(), n);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, b, 0.0, c);
  return c;
}

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm(1.0, a, b, 1.0, c);
}

}  // namespace catrsm::la
