#include "la/gemm.hpp"

#include <algorithm>

namespace catrsm::la {

namespace {

// Cache-blocked i-k-j loop order: the innermost loop streams contiguous rows
// of B and C, which vectorizes well without any architecture-specific code.
constexpr index_t kBlock = 64;

void gemm_block(const double* a, const double* b, double* c, index_t m,
                index_t n, index_t kk, index_t lda, index_t ldb, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t l = 0; l < kk; ++l) {
      const double av = a[i * lda + l];
      if (av == 0.0) continue;
      const double* brow = b + l * ldb;
      double* crow = c + i * ldc;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

}  // namespace

void gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
          Matrix& c) {
  CATRSM_CHECK(a.cols() == b.rows(), "gemm: inner dims mismatch");
  CATRSM_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
               "gemm: output shape mismatch");
  const index_t m = a.rows(), n = b.cols(), kk = a.cols();

  if (beta != 1.0) {
    if (beta == 0.0) {
      std::fill(c.data().begin(), c.data().end(), 0.0);
    } else {
      c.scale(beta);
    }
  }
  if (alpha == 0.0 || m == 0 || n == 0 || kk == 0) return;

  // Temporary alpha-scaled A rows are avoided by folding alpha into the
  // accumulation when alpha != 1.
  const double* ap = a.ptr();
  const double* bp = b.ptr();
  double* cp = c.ptr();

  for (index_t i0 = 0; i0 < m; i0 += kBlock) {
    const index_t mb = std::min(kBlock, m - i0);
    for (index_t l0 = 0; l0 < kk; l0 += kBlock) {
      const index_t kb = std::min(kBlock, kk - l0);
      if (alpha == 1.0) {
        gemm_block(ap + i0 * kk + l0, bp + l0 * n, cp + i0 * n, mb, n, kb, kk,
                   n, n);
      } else {
        for (index_t i = 0; i < mb; ++i) {
          for (index_t l = 0; l < kb; ++l) {
            const double av = alpha * ap[(i0 + i) * kk + (l0 + l)];
            if (av == 0.0) continue;
            const double* brow = bp + (l0 + l) * n;
            double* crow = cp + (i0 + i) * n;
            for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, b, 0.0, c);
  return c;
}

void gemm_acc(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm(1.0, a, b, 1.0, c);
}

}  // namespace catrsm::la
