#pragma once
// Sequential blocked triangular inversion, built on the same identity the
// paper's Section V parallelizes (Borodin & Munro):
//
//   [ L11  0  ]^-1   [  L11^-1            0     ]
//   [ L21 L22 ]    = [ -L22^-1 L21 L11^-1 L22^-1 ]
//
// applied one block column at a time (not by half-splitting), so all
// off-diagonal work is full-width packed GEMM/TRMM panels and the
// executed flops match the intrinsic n^3/3. Triangular inversion is
// numerically stable (Du Croz & Higham), which is the property the paper
// leans on to justify selective inversion.

#include "la/matrix.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {

/// Returns T^-1 for a triangular matrix (lower or upper). Throws on a
/// zero diagonal. `block_cutoff` is the diagonal block width resolved by
/// scalar substitution; everything else is packed panels.
Matrix tri_inv(Uplo uplo, const Matrix& t, index_t block_cutoff = 64);

/// Flops for recursive inversion of an n x n triangle (n^3 / 3 to leading
/// order: two half-size inversions plus two triangular-by-square products).
double tri_inv_flops(index_t n);

}  // namespace catrsm::la
