#include "la/matrix.hpp"

#include <algorithm>

namespace catrsm::la {

Matrix::Matrix(index_t rows, index_t cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), 0.0) {
  CATRSM_CHECK(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
}

Matrix::Matrix(index_t rows, index_t cols, const std::vector<double>& data)
    : rows_(rows), cols_(cols), data_(data.begin(), data.end()) {
  CATRSM_CHECK(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
  CATRSM_CHECK(static_cast<index_t>(data_.size()) == rows * cols,
               "matrix data size does not match dims");
}

Matrix Matrix::block(index_t i0, index_t j0, index_t r, index_t c) const {
  CATRSM_CHECK(i0 >= 0 && j0 >= 0 && r >= 0 && c >= 0 && i0 + r <= rows_ &&
                   j0 + c <= cols_,
               "block out of range");
  Matrix out(r, c);
  for (index_t i = 0; i < r; ++i) {
    const double* src = ptr() + (i0 + i) * cols_ + j0;
    double* dst = out.ptr() + i * c;
    std::copy(src, src + c, dst);
  }
  return out;
}

void Matrix::set_block(index_t i0, index_t j0, const Matrix& src) {
  CATRSM_CHECK(i0 >= 0 && j0 >= 0 && i0 + src.rows() <= rows_ &&
                   j0 + src.cols() <= cols_,
               "set_block out of range");
  for (index_t i = 0; i < src.rows(); ++i) {
    const double* s = src.ptr() + i * src.cols();
    double* d = ptr() + (i0 + i) * cols_ + j0;
    std::copy(s, s + src.cols(), d);
  }
}

void Matrix::add(const Matrix& other) {
  CATRSM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
               "add: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::sub(const Matrix& other) {
  CATRSM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
               "sub: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::scale(double s) {
  for (double& v : data_) v *= s;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (index_t i = 0; i < rows_; ++i)
    for (index_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

bool Matrix::equals(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         data_ == other.data_;
}

Matrix Matrix::identity(index_t n) {
  Matrix out(n, n);
  for (index_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::zeros(index_t rows, index_t cols) { return Matrix(rows, cols); }

}  // namespace catrsm::la
