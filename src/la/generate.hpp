#pragma once
// Workload generators: well-conditioned triangular matrices and dense
// right-hand sides. Every generator is a pure function of (seed, indices),
// so a distributed rank can materialize exactly its owned elements without
// any communication — this is what lets tests compare distributed runs
// against sequential references elementwise.

#include <cstdint>

#include "la/matrix.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {

/// Deterministic pseudo-random double in [-1, 1] for a (seed, i, j) triple.
double element_hash(std::uint64_t seed, index_t i, index_t j);

/// Entry (i, j) of the standard well-conditioned lower-triangular test
/// matrix: unit-magnitude diagonal (1.5 + 0.5*h) and off-diagonal entries
/// scaled by 1/n so row sums stay bounded — keeps cond(L) = O(1) for any n,
/// which isolates algorithmic error from ill-conditioning in tests.
double tri_entry(std::uint64_t seed, index_t i, index_t j, index_t n);

/// Entry (i, j) of the dense RHS test matrix.
double rhs_entry(std::uint64_t seed, index_t i, index_t j);

/// Materialize the full n x n lower-triangular test matrix.
Matrix make_lower_triangular(std::uint64_t seed, index_t n);

/// Materialize the full upper-triangular test matrix (transpose convention).
Matrix make_upper_triangular(std::uint64_t seed, index_t n);

/// Materialize the n x k RHS test matrix.
Matrix make_rhs(std::uint64_t seed, index_t n, index_t k);

/// General dense matrix with element_hash entries (for gemm tests).
Matrix make_dense(std::uint64_t seed, index_t rows, index_t cols);

/// Symmetric positive definite matrix A = L*L^T from the triangular
/// generator (used by the Cholesky example).
Matrix make_spd(std::uint64_t seed, index_t n);

/// In-place Cholesky factorization A = L*L^T returning L (reference
/// implementation for the Cholesky-solve example).
Matrix cholesky(const Matrix& a);

}  // namespace catrsm::la
