#pragma once
// Sequential triangular solve kernels (the local base cases of every
// distributed TRSM variant) and reference solvers for tests.

#include "la/matrix.hpp"

namespace catrsm::la {

enum class Uplo { kLower, kUpper };
enum class Diag { kNonUnit, kUnit };

/// Solve L * X = B in place: on return B holds X.
/// L must be rows()==cols()==B.rows(); only the `uplo` triangle is read.
void trsm_left(Uplo uplo, Diag diag, const Matrix& l, Matrix& b);

/// Solve X * U = B in place (right-side solve); B: m x n, U: n x n.
void trsm_right(Uplo uplo, Diag diag, const Matrix& u, Matrix& b);

/// Convenience returning the solution, used pervasively in tests.
Matrix solve_lower(const Matrix& l, const Matrix& b);
Matrix solve_upper(const Matrix& u, const Matrix& b);

/// Flop count for an n x n triangular solve with k right-hand sides.
constexpr double trsm_flops(index_t n, index_t k) {
  return static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace catrsm::la
