#pragma once
// Triangular matrix-matrix multiply: exploits the triangle to halve flops
// relative to a dense gemm. Used by the distributed solve phase where the
// diagonal blocks are triangular inverses.

#include "la/matrix.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {

/// B := L * B with L lower (or upper) triangular, n x n, B n x k.
void trmm_left(Uplo uplo, Diag diag, const Matrix& t, Matrix& b);

/// Returns T * B without overwriting B.
Matrix trmm(Uplo uplo, const Matrix& t, const Matrix& b);

/// Flops for a triangular multiply (half of square gemm).
constexpr double trmm_flops(index_t n, index_t k) {
  return static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace catrsm::la
