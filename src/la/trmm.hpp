#pragma once
// Triangular matrix-matrix multiply: exploits the triangle to halve flops
// relative to a dense gemm. Used by the distributed solve phase where the
// diagonal blocks are triangular inverses.

#include "la/matrix.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {

/// B := L * B with L lower (or upper) triangular, n x n, B n x k.
void trmm_left(Uplo uplo, Diag diag, const Matrix& t, Matrix& b);

/// Strided form over raw row-major storage: T is n x n triangular with
/// leading dim ldt, B is n x k with leading dim ldb, updated in place.
/// Lets callers multiply by a triangular SUBMATRIX (e.g. the trailing
/// block of a partially built inverse) without copying it out first.
/// T and the updated B region must not overlap.
void trmm_left_strided(Uplo uplo, Diag diag, index_t n, index_t k,
                       const double* t, index_t ldt, double* b, index_t ldb);

/// Returns T * B without overwriting B.
Matrix trmm(Uplo uplo, const Matrix& t, const Matrix& b);

/// Flops for a triangular multiply (half of square gemm).
constexpr double trmm_flops(index_t n, index_t k) {
  return static_cast<double>(n) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace catrsm::la
