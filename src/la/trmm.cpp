#include "la/trmm.hpp"

#include <algorithm>

#include "la/kernel/kernel.hpp"
#include "la/kernel/small_tri.hpp"

namespace catrsm::la {

namespace {
constexpr index_t kDiagBlock = 64;
}  // namespace

void trmm_left(Uplo uplo, Diag diag, const Matrix& t, Matrix& b) {
  CATRSM_CHECK(t.rows() == t.cols(), "trmm: T must be square");
  CATRSM_CHECK(t.rows() == b.rows(), "trmm: dimension mismatch");
  const index_t n = t.rows();
  const index_t k = b.cols();
  if (n == 0 || k == 0) return;
  const bool unit = diag == Diag::kUnit;
  const double* tp = t.ptr();
  double* bp = b.ptr();

  if (uplo == Uplo::kLower) {
    // Block row i reads rows <= i of B: walk bottom-up so the rows the
    // GEMM panel reads are still unmodified.
    for (index_t i0 = ((n - 1) / kDiagBlock) * kDiagBlock;; i0 -= kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      kernel::trmm_ll_block(tp + i0 * n + i0, n, bp + i0 * k, k, nb, k, unit);
      if (i0 > 0)
        kernel::gemm(nb, k, i0, 1.0, tp + i0 * n, n, bp, k, 1.0, bp + i0 * k,
                     k);
      if (i0 == 0) break;
    }
  } else {
    // Block row i reads rows >= i: walk top-down.
    for (index_t i0 = 0; i0 < n; i0 += kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      kernel::trmm_lu_block(tp + i0 * n + i0, n, bp + i0 * k, k, nb, k, unit);
      const index_t t0 = i0 + nb;
      if (t0 < n)
        kernel::gemm(nb, k, n - t0, 1.0, tp + i0 * n + t0, n, bp + t0 * k, k,
                     1.0, bp + i0 * k, k);
    }
  }
}

Matrix trmm(Uplo uplo, const Matrix& t, const Matrix& b) {
  Matrix out = b;
  trmm_left(uplo, Diag::kNonUnit, t, out);
  return out;
}

}  // namespace catrsm::la
