#include "la/trmm.hpp"

namespace catrsm::la {

void trmm_left(Uplo uplo, Diag diag, const Matrix& t, Matrix& b) {
  CATRSM_CHECK(t.rows() == t.cols(), "trmm: T must be square");
  CATRSM_CHECK(t.rows() == b.rows(), "trmm: dimension mismatch");
  const index_t n = t.rows();
  const index_t k = b.cols();
  const bool unit = diag == Diag::kUnit;

  if (uplo == Uplo::kLower) {
    // Row i of the product depends on rows <= i of B: walk bottom-up so we
    // can update in place.
    for (index_t i = n - 1; i >= 0; --i) {
      double* bi = b.ptr() + i * k;
      const double dii = unit ? 1.0 : t(i, i);
      for (index_t c = 0; c < k; ++c) bi[c] *= dii;
      for (index_t j = 0; j < i; ++j) {
        const double tij = t(i, j);
        if (tij == 0.0) continue;
        const double* bj = b.ptr() + j * k;
        for (index_t c = 0; c < k; ++c) bi[c] += tij * bj[c];
      }
    }
  } else {
    // Upper triangular: row i depends on rows >= i, walk top-down.
    for (index_t i = 0; i < n; ++i) {
      double* bi = b.ptr() + i * k;
      const double dii = unit ? 1.0 : t(i, i);
      for (index_t c = 0; c < k; ++c) bi[c] *= dii;
      for (index_t j = i + 1; j < n; ++j) {
        const double tij = t(i, j);
        if (tij == 0.0) continue;
        const double* bj = b.ptr() + j * k;
        for (index_t c = 0; c < k; ++c) bi[c] += tij * bj[c];
      }
    }
  }
}

Matrix trmm(Uplo uplo, const Matrix& t, const Matrix& b) {
  Matrix out = b;
  trmm_left(uplo, Diag::kNonUnit, t, out);
  return out;
}

}  // namespace catrsm::la
