#include "la/trmm.hpp"

#include <algorithm>

#include "la/kernel/kernel.hpp"
#include "la/kernel/small_tri.hpp"

namespace catrsm::la {

namespace {
constexpr index_t kDiagBlock = 64;
}  // namespace

void trmm_left_strided(Uplo uplo, Diag diag, index_t n, index_t k,
                       const double* tp, index_t ldt, double* bp,
                       index_t ldb) {
  if (n == 0 || k == 0) return;
  const bool unit = diag == Diag::kUnit;

  if (uplo == Uplo::kLower) {
    // Block row i reads rows <= i of B: walk bottom-up so the rows the
    // GEMM panel reads are still unmodified.
    for (index_t i0 = ((n - 1) / kDiagBlock) * kDiagBlock;; i0 -= kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      kernel::trmm_ll_block(tp + i0 * ldt + i0, ldt, bp + i0 * ldb, ldb, nb,
                            k, unit);
      if (i0 > 0)
        kernel::gemm(nb, k, i0, 1.0, tp + i0 * ldt, ldt, bp, ldb, 1.0,
                     bp + i0 * ldb, ldb);
      if (i0 == 0) break;
    }
  } else {
    // Block row i reads rows >= i: walk top-down.
    for (index_t i0 = 0; i0 < n; i0 += kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      kernel::trmm_lu_block(tp + i0 * ldt + i0, ldt, bp + i0 * ldb, ldb, nb,
                            k, unit);
      const index_t t0 = i0 + nb;
      if (t0 < n)
        kernel::gemm(nb, k, n - t0, 1.0, tp + i0 * ldt + t0, ldt,
                     bp + t0 * ldb, ldb, 1.0, bp + i0 * ldb, ldb);
    }
  }
}

void trmm_left(Uplo uplo, Diag diag, const Matrix& t, Matrix& b) {
  CATRSM_CHECK(t.rows() == t.cols(), "trmm: T must be square");
  CATRSM_CHECK(t.rows() == b.rows(), "trmm: dimension mismatch");
  trmm_left_strided(uplo, diag, t.rows(), b.cols(), t.ptr(), t.rows(),
                    b.ptr(), b.cols());
}

Matrix trmm(Uplo uplo, const Matrix& t, const Matrix& b) {
  Matrix out = b;
  trmm_left(uplo, Diag::kNonUnit, t, out);
  return out;
}

}  // namespace catrsm::la
