#include "la/kernel/pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/env.hpp"
#include "support/exec_context.hpp"

namespace catrsm::la::kernel {

namespace {

std::atomic<int> g_test_threads{0};
std::atomic<std::uint64_t> g_dispatches{0};
thread_local bool tls_pool_worker = false;

int env_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
  // Strict parsing: zero, negative, or non-numeric overrides warn and
  // fall back to the core count instead of being silently dropped.
  return env::int_or("CATRSM_KERNEL_THREADS", fallback, 1,
                     std::numeric_limits<int>::max());
}

}  // namespace

struct ThreadPool::Impl {
  std::mutex dispatch_mu;  // serializes concurrent masters

  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  bool shutdown = false;

  // Current job (valid while remaining > 0). Chunk t of [0, n) is
  // [n*t/nt, n*(t+1)/nt); worker w runs chunk w + 1, the master chunk 0.
  std::uint64_t generation = 0;
  void (*body)(index_t, index_t, void*) = nullptr;
  void* ctx = nullptr;
  index_t n = 0;
  int nthreads = 0;
  int remaining = 0;

  void ensure_workers(int count) {
    while (static_cast<int>(workers.size()) < count) {
      const int id = static_cast<int>(workers.size());
      workers.emplace_back([this, id] { worker_loop(id); });
    }
  }

  void worker_loop(int id) {
    tls_pool_worker = true;
    std::uint64_t seen = 0;
    while (true) {
      void (*job)(index_t, index_t, void*) = nullptr;
      void* job_ctx = nullptr;
      index_t job_n = 0;
      int job_nt = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] {
          return shutdown || (generation != seen && id + 1 < nthreads);
        });
        if (shutdown) return;
        seen = generation;
        job = body;
        job_ctx = ctx;
        job_n = n;
        job_nt = nthreads;
      }
      const index_t begin = job_n * (id + 1) / job_nt;
      const index_t end = job_n * (id + 2) / job_nt;
      if (begin < end) job(begin, end, job_ctx);
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        last = --remaining == 0;
      }
      if (last) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::size() const {
  const int forced = g_test_threads.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int configured = env_threads();
  return configured;
}

int ThreadPool::active_threads() const {
  if (exec::in_sim_rank() || tls_pool_worker) return 1;
  return size();
}

void ThreadPool::parallel_for(index_t n,
                              void (*body)(index_t, index_t, void*),
                              void* ctx) {
  if (n <= 0) return;
  int nt = active_threads();
  if (nt > n) nt = static_cast<int>(n);
  if (nt <= 1) {
    body(0, n, ctx);
    return;
  }

  std::lock_guard<std::mutex> dispatch(impl_->dispatch_mu);
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->ensure_workers(nt - 1);
    impl_->body = body;
    impl_->ctx = ctx;
    impl_->n = n;
    impl_->nthreads = nt;
    impl_->remaining = nt - 1;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  g_dispatches.fetch_add(1, std::memory_order_relaxed);

  body(0, n / nt, ctx);  // chunk 0 on the caller

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->done_cv.wait(lock, [&] { return impl_->remaining == 0; });
  impl_->body = nullptr;
}

std::uint64_t ThreadPool::dispatches() {
  return g_dispatches.load(std::memory_order_relaxed);
}

void ThreadPool::set_threads_for_testing(int n) {
  g_test_threads.store(n, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// PackArena

PackArena::~PackArena() {
  if (data_ != nullptr)
    ::operator delete[](data_, std::align_val_t{64});
}

double* PackArena::ensure(std::size_t n) {
  if (n > capacity_) {
    std::size_t cap = capacity_ > 0 ? capacity_ : 1024;
    while (cap < n) cap *= 2;
    if (data_ != nullptr)
      ::operator delete[](data_, std::align_val_t{64});
    data_ = static_cast<double*>(
        ::operator new[](cap * sizeof(double), std::align_val_t{64}));
    capacity_ = cap;
  }
  return data_;
}

PackArena& pack_arena_a() {
  static thread_local PackArena arena;
  return arena;
}

PackArena& pack_arena_b() {
  static thread_local PackArena arena;
  return arena;
}

}  // namespace catrsm::la::kernel
