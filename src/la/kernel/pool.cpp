#include "la/kernel/pool.hpp"

#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "support/env.hpp"
#include "support/exec_context.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace catrsm::la::kernel {

namespace {

std::atomic<int> g_test_threads{0};
std::atomic<std::uint64_t> g_dispatches{0};
thread_local bool tls_pool_worker = false;

int env_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
  // Strict parsing: zero, negative, or non-numeric overrides warn and
  // fall back to the core count instead of being silently dropped.
  return env::int_or("CATRSM_KERNEL_THREADS", fallback, 1,
                     std::numeric_limits<int>::max());
}

/// How long a waiter spins before giving the core away. Workers park on
/// a condvar past this; the master and barrier waiters degrade to
/// sched_yield. 120 us comfortably covers the gap between consecutive
/// GEMM panels of a blocked triangular sweep while costing at most one
/// idle core-slice after the last kernel call of a burst.
int spin_us() {
  static const int v = env::int_or("CATRSM_KERNEL_SPIN_US", 120, 0, 100000);
  return v;
}

inline void cpu_pause() {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

using SpinClock = std::chrono::steady_clock;

/// Spin on `done` with pause hints for ~spin_us, then yield between
/// checks. Returns when done() is true.
template <class F>
void spin_then_yield(F&& done) {
  const auto deadline =
      SpinClock::now() + std::chrono::microseconds(spin_us());
  int slice = 0;
  while (!done()) {
    cpu_pause();
    if (++slice >= 256) {
      slice = 0;
      if (SpinClock::now() > deadline) {
        while (!done()) std::this_thread::yield();
        return;
      }
    }
  }
}

}  // namespace

void TeamBarrier::wait(int nt) {
  if (nt <= 1) return;
  const std::uint32_t sense = sense_.load(std::memory_order_relaxed);
  if (count_.fetch_add(1, std::memory_order_acq_rel) == nt - 1) {
    count_.store(0, std::memory_order_relaxed);
    sense_.store(sense + 1, std::memory_order_release);
  } else {
    spin_then_yield([&] {
      return sense_.load(std::memory_order_acquire) != sense;
    });
  }
}

struct ThreadPool::Impl {
  std::mutex dispatch_mu;  // serializes concurrent masters

  // Job publication: the master writes the job fields, then publishes a
  // packed (seq, team size, mode) word with release semantics. A worker
  // decides team membership from ONE atomic load of that word, so it can
  // never mix one job's membership with another job's fields: the plain
  // fields below are written before the word bump and stay untouched
  // until the next publish, which the master only issues after join()
  // saw every member of the previous team finish.
  //
  // Word layout: bits [0,40) sequence, bits [40,56) team size, bit 56
  // mode (1 = team). 2^40 dispatches is unreachable in practice; the
  // sequence must not wrap while a parked worker still compares against
  // an old value.
  static constexpr std::uint64_t kSeqMask = (1ULL << 40) - 1;
  static constexpr int kNtShift = 40;
  static constexpr std::uint64_t kTeamBit = 1ULL << 56;

  std::atomic<std::uint64_t> job_word{0};
  std::atomic<int> remaining{0};  // team members still inside the job
  void (*for_body)(index_t, index_t, void*) = nullptr;
  void (*team_body)(int, int, void*) = nullptr;
  void* ctx = nullptr;
  index_t n = 0;
  std::uint64_t seq = 0;

  // Parking lot: a worker whose spin window expires sleeps here; the
  // master only takes the lock when someone is actually parked.
  std::mutex park_mu;
  std::condition_variable park_cv;
  std::atomic<int> parked{0};
  std::atomic<bool> shutdown{false};

  std::vector<std::thread> workers;
  std::mutex spawn_mu;

  void ensure_workers(int count) {
    std::lock_guard<std::mutex> lock(spawn_mu);
    while (static_cast<int>(workers.size()) < count) {
      const int id = static_cast<int>(workers.size());
      workers.emplace_back([this, id] { worker_loop(id); });
    }
  }

  void worker_loop(int id) {
    tls_pool_worker = true;
    std::uint64_t seen_seq = 0;
    while (true) {
      // Spin-then-park for the next job word.
      const std::uint64_t word = spin_then_park(seen_seq);
      if (shutdown.load(std::memory_order_acquire)) return;
      seen_seq = word & kSeqMask;
      const int nt = static_cast<int>((word >> kNtShift) & 0xffff);
      if (id + 1 >= nt) continue;  // not in this job's team
      if (word & kTeamBit) {
        team_body(id + 1, nt, ctx);
      } else {
        const index_t begin = n * (id + 1) / nt;
        const index_t end = n * (id + 2) / nt;
        if (begin < end) for_body(begin, end, ctx);
      }
      remaining.fetch_sub(1, std::memory_order_release);
    }
  }

  /// Wait for the job word's sequence to move past seen_seq (or for
  /// shutdown); returns the freshly observed word.
  std::uint64_t spin_then_park(std::uint64_t seen_seq) {
    const auto deadline =
        SpinClock::now() + std::chrono::microseconds(spin_us());
    int slice = 0;
    while (true) {
      const std::uint64_t w = job_word.load(std::memory_order_acquire);
      if ((w & kSeqMask) != seen_seq ||
          shutdown.load(std::memory_order_acquire))
        return w;
      cpu_pause();
      if (++slice >= 256) {
        slice = 0;
        if (SpinClock::now() > deadline) break;
      }
    }
    std::unique_lock<std::mutex> lock(park_mu);
    parked.fetch_add(1, std::memory_order_seq_cst);
    park_cv.wait(lock, [&] {
      return (job_word.load(std::memory_order_acquire) & kSeqMask) !=
                 seen_seq ||
             shutdown.load(std::memory_order_acquire);
    });
    parked.fetch_sub(1, std::memory_order_relaxed);
    return job_word.load(std::memory_order_acquire);
  }

  /// Publish a job for workers 1..nt-1 and wake any parked ones.
  void publish(bool team, int nt) {
    remaining.store(nt - 1, std::memory_order_relaxed);
    ++seq;
    const std::uint64_t word = (seq & kSeqMask) |
                               (static_cast<std::uint64_t>(nt) << kNtShift) |
                               (team ? kTeamBit : 0);
    job_word.store(word, std::memory_order_release);
    // seq_cst pairing with the parked increment: a worker either sees
    // the new job word before parking, or its increment is visible here
    // and it gets the notify.
    if (parked.load(std::memory_order_seq_cst) > 0) {
      std::lock_guard<std::mutex> lock(park_mu);
      park_cv.notify_all();
    }
  }

  void join() {
    spin_then_yield([&] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) {}

ThreadPool::~ThreadPool() {
  impl_->shutdown.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(impl_->park_mu);
    impl_->park_cv.notify_all();
  }
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

int ThreadPool::size() const {
  const int forced = g_test_threads.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  static const int configured = env_threads();
  return configured;
}

int ThreadPool::active_threads() const {
  if (exec::in_sim_rank() || tls_pool_worker) return 1;
  return size();
}

void ThreadPool::parallel_for(index_t n,
                              void (*body)(index_t, index_t, void*),
                              void* ctx) {
  if (n <= 0) return;
  int nt = active_threads();
  if (nt > n) nt = static_cast<int>(n);
  if (nt <= 1) {
    body(0, n, ctx);
    return;
  }

  std::lock_guard<std::mutex> dispatch(impl_->dispatch_mu);
  impl_->ensure_workers(nt - 1);
  impl_->for_body = body;
  impl_->ctx = ctx;
  impl_->n = n;
  impl_->publish(/*team=*/false, nt);
  g_dispatches.fetch_add(1, std::memory_order_relaxed);

  body(0, n / nt, ctx);  // chunk 0 on the caller
  impl_->join();
}

void ThreadPool::run_team(int nt, void (*body)(int, int, void*), void* ctx) {
  const int cap = active_threads();
  if (nt > cap) nt = cap;
  if (nt <= 1) {
    body(0, 1, ctx);
    return;
  }

  std::lock_guard<std::mutex> dispatch(impl_->dispatch_mu);
  impl_->ensure_workers(nt - 1);
  impl_->team_body = body;
  impl_->ctx = ctx;
  impl_->publish(/*team=*/true, nt);
  g_dispatches.fetch_add(1, std::memory_order_relaxed);

  body(0, nt, ctx);  // tid 0 on the caller
  impl_->join();
}

std::uint64_t ThreadPool::dispatches() {
  return g_dispatches.load(std::memory_order_relaxed);
}

void ThreadPool::set_threads_for_testing(int n) {
  g_test_threads.store(n, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// PackArena

PackArena::~PackArena() {
  if (data_ != nullptr)
    ::operator delete(data_, std::align_val_t{64});
}

void* PackArena::ensure_bytes(std::size_t bytes) {
  if (bytes > capacity_) {
    std::size_t cap = capacity_ > 0 ? capacity_ : 8192;
    while (cap < bytes) cap *= 2;
    if (data_ != nullptr)
      ::operator delete(data_, std::align_val_t{64});
    data_ = ::operator new(cap, std::align_val_t{64});
    capacity_ = cap;
  }
  return data_;
}

PackArena& pack_arena_a() {
  static thread_local PackArena arena;
  return arena;
}

PackArena& pack_arena_b() {
  static thread_local PackArena arena;
  return arena;
}

}  // namespace catrsm::la::kernel
