#include "la/kernel/ukr.hpp"

namespace catrsm::la::kernel {

namespace {

// 4x8 accumulator tile in plain C. The fixed trip counts let the compiler
// keep the tile in registers and auto-vectorize to whatever the baseline
// ISA offers; there are deliberately no data-dependent branches (a zero
// test per element defeats vectorization and makes throughput depend on
// the input's sparsity).
constexpr int kMr = 4;
constexpr int kNr = 8;

void run(index_t kc, const double* ap, const double* bp, double* c,
         index_t ldc) {
  double acc[kMr][kNr] = {};
  for (index_t l = 0; l < kc; ++l) {
    for (int i = 0; i < kMr; ++i)
      for (int j = 0; j < kNr; ++j) acc[i][j] += ap[i] * bp[j];
    ap += kMr;
    bp += kNr;
  }
  for (int i = 0; i < kMr; ++i) {
    double* crow = c + i * ldc;
    for (int j = 0; j < kNr; ++j) crow[j] += acc[i][j];
  }
}

}  // namespace

const MicroKernel* scalar_microkernel() {
  static const MicroKernel k{Backend::kScalar, "scalar", kMr, kNr, run};
  return &k;
}

}  // namespace catrsm::la::kernel
