#include "la/kernel/ukr.hpp"

namespace catrsm::la::kernel {

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define CATRSM_PREFETCH(p) __builtin_prefetch((p), 0, 3)
#else
#define CATRSM_PREFETCH(p) ((void)0)
#endif

// 4x8 accumulator tile in plain C, for f64 and f32 alike. The fixed trip
// counts let the compiler keep the tile in registers and auto-vectorize
// to whatever the baseline ISA offers; there are deliberately no
// data-dependent branches (a zero test per element defeats vectorization
// and makes throughput depend on the input's sparsity). The packed
// panels are streamed with a software prefetch a few k iterations ahead
// — the access pattern is perfectly sequential, but the hardware
// prefetcher restarts at every panel boundary.
constexpr int kMr = 4;
constexpr int kNr = 8;
constexpr int kPrefetchAhead = 4;  // k iterations

template <class T, bool kAccum>
void run_impl(index_t kc, const T* ap, const T* bp, T* c, index_t ldc) {
  T acc[kMr][kNr] = {};
  for (index_t l = 0; l < kc; ++l) {
    CATRSM_PREFETCH(ap + kMr * kPrefetchAhead);
    CATRSM_PREFETCH(bp + kNr * kPrefetchAhead);
    for (int i = 0; i < kMr; ++i)
      for (int j = 0; j < kNr; ++j) acc[i][j] += ap[i] * bp[j];
    ap += kMr;
    bp += kNr;
  }
  for (int i = 0; i < kMr; ++i) {
    T* crow = c + i * ldc;
    if (kAccum) {
      for (int j = 0; j < kNr; ++j) crow[j] += acc[i][j];
    } else {
      for (int j = 0; j < kNr; ++j) crow[j] = acc[i][j];
    }
  }
}

}  // namespace

const MicroKernel* scalar_microkernel() {
  // No non-temporal variant: the portable tile has no streaming-store
  // instruction to use; the driver falls back to run_store.
  static const MicroKernel k{Backend::kScalar, "scalar", kMr, kNr,
                             run_impl<double, true>, run_impl<double, false>,
                             nullptr};
  return &k;
}

const MicroKernelF32* scalar_microkernel_f32() {
  static const MicroKernelF32 k{Backend::kScalar, "scalar", kMr, kNr,
                                run_impl<float, true>, run_impl<float, false>,
                                nullptr};
  return &k;
}

}  // namespace catrsm::la::kernel
