#pragma once
// Internal: per-backend micro-kernel registrations. Each TU owns one inner
// kernel family (f64 + f32, with accumulate / store / non-temporal store
// variants) so the SIMD ones can be built with function-level target
// attributes without leaking wider ISAs into the rest of the library.

#include "la/kernel/kernel.hpp"

// Single source of truth for "this build can carry x86 SIMD backends":
// the SIMD TUs compile their kernels (via function-level target
// attributes) and dispatch checks CPU features under exactly this gate.
#if (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)
#define CATRSM_UKR_X86 1
#endif

namespace catrsm::la::kernel {

const MicroKernel* scalar_microkernel();
const MicroKernel* avx2_microkernel();    // nullptr on non-x86 builds
const MicroKernel* avx512_microkernel();  // nullptr on non-x86 builds

const MicroKernelF32* scalar_microkernel_f32();
const MicroKernelF32* avx2_microkernel_f32();    // nullptr on non-x86
const MicroKernelF32* avx512_microkernel_f32();  // nullptr on non-x86

}  // namespace catrsm::la::kernel
