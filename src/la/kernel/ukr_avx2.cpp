#include "la/kernel/ukr.hpp"

// The AVX2/FMA tiles are compiled via function-level target attributes so
// the rest of the library keeps its baseline ISA and the binary still runs
// on CPUs without AVX2 (dispatch guards execution at runtime). The three
// store variants (accumulate / plain store / non-temporal store) are
// stamped from one body macro — only the final tile write differs, so the
// accumulated values are bit-identical across variants by construction.

#ifdef CATRSM_UKR_X86
#include <immintrin.h>
#endif

namespace catrsm::la::kernel {

#ifdef CATRSM_UKR_X86

namespace {

constexpr int kPrefetchAhead = 4;  // k iterations

// ---------------------------------------------------------------------------
// f64: 6x8 tile — 12 ymm accumulators + 2 B vectors + 1 A broadcast = 15
// of the 16 architectural registers; 12 FMAs per k iteration keeps both
// FMA ports saturated while the loads stay under the 2 load ports.

constexpr int kMr64 = 6;
constexpr int kNr64 = 8;

#define CATRSM_AVX2_F64_BODY(WRITE)                                        \
  __m256d acc[kMr64][2];                                                   \
  for (int i = 0; i < kMr64; ++i) {                                        \
    acc[i][0] = _mm256_setzero_pd();                                       \
    acc[i][1] = _mm256_setzero_pd();                                       \
  }                                                                        \
  for (index_t l = 0; l < kc; ++l) {                                       \
    _mm_prefetch(reinterpret_cast<const char*>(ap + kMr64 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    _mm_prefetch(reinterpret_cast<const char*>(bp + kNr64 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    const __m256d b0 = _mm256_loadu_pd(bp);                                \
    const __m256d b1 = _mm256_loadu_pd(bp + 4);                            \
    for (int i = 0; i < kMr64; ++i) {                                      \
      const __m256d ai = _mm256_broadcast_sd(ap + i);                      \
      acc[i][0] = _mm256_fmadd_pd(ai, b0, acc[i][0]);                      \
      acc[i][1] = _mm256_fmadd_pd(ai, b1, acc[i][1]);                      \
    }                                                                      \
    ap += kMr64;                                                           \
    bp += kNr64;                                                           \
  }                                                                        \
  for (int i = 0; i < kMr64; ++i) {                                        \
    double* crow = c + i * ldc;                                            \
    WRITE(crow, 0, acc[i][0]);                                             \
    WRITE(crow, 4, acc[i][1]);                                             \
  }

#define CATRSM_WRITE_ACC_PD(crow, off, v) \
  _mm256_storeu_pd((crow) + (off),        \
                   _mm256_add_pd(_mm256_loadu_pd((crow) + (off)), (v)))
#define CATRSM_WRITE_ST_PD(crow, off, v) _mm256_storeu_pd((crow) + (off), (v))
#define CATRSM_WRITE_NT_PD(crow, off, v) _mm256_stream_pd((crow) + (off), (v))

__attribute__((target("avx2,fma"))) void run_f64(index_t kc, const double* ap,
                                                 const double* bp, double* c,
                                                 index_t ldc) {
  CATRSM_AVX2_F64_BODY(CATRSM_WRITE_ACC_PD)
}

__attribute__((target("avx2,fma"))) void run_store_f64(index_t kc,
                                                       const double* ap,
                                                       const double* bp,
                                                       double* c,
                                                       index_t ldc) {
  CATRSM_AVX2_F64_BODY(CATRSM_WRITE_ST_PD)
}

// Caller guarantees c and ldc * sizeof(double) are 64-byte aligned, so
// every 32-byte lane store here is aligned as _mm256_stream_pd requires.
__attribute__((target("avx2,fma"))) void run_nt_f64(index_t kc,
                                                    const double* ap,
                                                    const double* bp,
                                                    double* c, index_t ldc) {
  CATRSM_AVX2_F64_BODY(CATRSM_WRITE_NT_PD)
}

// ---------------------------------------------------------------------------
// f32: 6x16 tile — same register budget as the f64 tile (12 accumulators
// + 2 B vectors + 1 broadcast) but twice the lanes per FMA, which is the
// whole point of the f32 path.

constexpr int kMr32 = 6;
constexpr int kNr32 = 16;

#define CATRSM_AVX2_F32_BODY(WRITE)                                        \
  __m256 acc[kMr32][2];                                                    \
  for (int i = 0; i < kMr32; ++i) {                                        \
    acc[i][0] = _mm256_setzero_ps();                                       \
    acc[i][1] = _mm256_setzero_ps();                                       \
  }                                                                        \
  for (index_t l = 0; l < kc; ++l) {                                       \
    _mm_prefetch(reinterpret_cast<const char*>(ap + kMr32 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    _mm_prefetch(reinterpret_cast<const char*>(bp + kNr32 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    const __m256 b0 = _mm256_loadu_ps(bp);                                 \
    const __m256 b1 = _mm256_loadu_ps(bp + 8);                             \
    for (int i = 0; i < kMr32; ++i) {                                      \
      const __m256 ai = _mm256_broadcast_ss(ap + i);                       \
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);                      \
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);                      \
    }                                                                      \
    ap += kMr32;                                                           \
    bp += kNr32;                                                           \
  }                                                                        \
  for (int i = 0; i < kMr32; ++i) {                                        \
    float* crow = c + i * ldc;                                             \
    WRITE(crow, 0, acc[i][0]);                                             \
    WRITE(crow, 8, acc[i][1]);                                             \
  }

#define CATRSM_WRITE_ACC_PS(crow, off, v) \
  _mm256_storeu_ps((crow) + (off),        \
                   _mm256_add_ps(_mm256_loadu_ps((crow) + (off)), (v)))
#define CATRSM_WRITE_ST_PS(crow, off, v) _mm256_storeu_ps((crow) + (off), (v))
#define CATRSM_WRITE_NT_PS(crow, off, v) _mm256_stream_ps((crow) + (off), (v))

__attribute__((target("avx2,fma"))) void run_f32(index_t kc, const float* ap,
                                                 const float* bp, float* c,
                                                 index_t ldc) {
  CATRSM_AVX2_F32_BODY(CATRSM_WRITE_ACC_PS)
}

__attribute__((target("avx2,fma"))) void run_store_f32(index_t kc,
                                                       const float* ap,
                                                       const float* bp,
                                                       float* c,
                                                       index_t ldc) {
  CATRSM_AVX2_F32_BODY(CATRSM_WRITE_ST_PS)
}

__attribute__((target("avx2,fma"))) void run_nt_f32(index_t kc,
                                                    const float* ap,
                                                    const float* bp, float* c,
                                                    index_t ldc) {
  CATRSM_AVX2_F32_BODY(CATRSM_WRITE_NT_PS)
}

}  // namespace

const MicroKernel* avx2_microkernel() {
  static const MicroKernel k{Backend::kAvx2, "avx2",       kMr64, kNr64,
                             run_f64,        run_store_f64, run_nt_f64};
  return &k;
}

const MicroKernelF32* avx2_microkernel_f32() {
  static const MicroKernelF32 k{Backend::kAvx2, "avx2",       kMr32, kNr32,
                                run_f32,        run_store_f32, run_nt_f32};
  return &k;
}

#else  // non-x86 build: backend compiled out

const MicroKernel* avx2_microkernel() { return nullptr; }
const MicroKernelF32* avx2_microkernel_f32() { return nullptr; }

#endif

}  // namespace catrsm::la::kernel
