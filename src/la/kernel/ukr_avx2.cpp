#include "la/kernel/ukr.hpp"

// The AVX2/FMA tile is compiled via a function-level target attribute so
// the rest of the library keeps its baseline ISA and the binary still runs
// on CPUs without AVX2 (dispatch guards execution at runtime).
#ifdef CATRSM_UKR_X86
#include <immintrin.h>
#endif

namespace catrsm::la::kernel {

#ifdef CATRSM_UKR_X86

namespace {

// 6x8 tile: 12 ymm accumulators + 2 B vectors + 1 A broadcast = 15 of the
// 16 architectural registers; 12 FMAs per k iteration keeps both FMA ports
// saturated while the 8 loads stay under the 2 load ports.
constexpr int kMr = 6;
constexpr int kNr = 8;

__attribute__((target("avx2,fma"))) void run(index_t kc, const double* ap,
                                             const double* bp, double* c,
                                             index_t ldc) {
  __m256d acc[kMr][2];
  for (int i = 0; i < kMr; ++i) {
    acc[i][0] = _mm256_setzero_pd();
    acc[i][1] = _mm256_setzero_pd();
  }
  for (index_t l = 0; l < kc; ++l) {
    const __m256d b0 = _mm256_loadu_pd(bp);
    const __m256d b1 = _mm256_loadu_pd(bp + 4);
    for (int i = 0; i < kMr; ++i) {
      const __m256d ai = _mm256_broadcast_sd(ap + i);
      acc[i][0] = _mm256_fmadd_pd(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_pd(ai, b1, acc[i][1]);
    }
    ap += kMr;
    bp += kNr;
  }
  for (int i = 0; i < kMr; ++i) {
    double* crow = c + i * ldc;
    _mm256_storeu_pd(crow, _mm256_add_pd(_mm256_loadu_pd(crow), acc[i][0]));
    _mm256_storeu_pd(crow + 4,
                     _mm256_add_pd(_mm256_loadu_pd(crow + 4), acc[i][1]));
  }
}

}  // namespace

const MicroKernel* avx2_microkernel() {
  static const MicroKernel k{Backend::kAvx2, "avx2", kMr, kNr, run};
  return &k;
}

#else  // non-x86 build: backend compiled out

const MicroKernel* avx2_microkernel() { return nullptr; }

#endif

}  // namespace catrsm::la::kernel
