#pragma once
// Packed, register-tiled GEMM micro-kernel layer (BLIS-style).
//
// The flop substrate of every distributed algorithm in this repo is the
// sequential la:: routines, and those now bottom out here: a strided GEMM
// driver packs panels of A and B into contiguous MR- / NR-wide tiles and
// streams them through a small register-tiled inner kernel. Three inner
// kernels exist — a portable scalar tile, an AVX2/FMA 6x8 tile, and an
// AVX-512F 8x16 tile — selected once per process by CPU detection and
// overridable with CATRSM_KERNEL=scalar|avx2|avx512.
//
// Large products additionally fan the macro-kernel loops out over a
// persistent worker pool (kernel/pool.hpp, CATRSM_KERNEL_THREADS) with a
// deterministic static split, so results are bit-identical at any pool
// size. The pool composes with the simulator rather than fighting it:
// calls issued from inside a simulated rank (exec::in_sim_rank()) always
// run single-threaded, because sim::RankScheduler already multiplexes the
// p ranks over the physical cores — only direct/library callers fan out.
// Modeled costs (S, W, F) are charged by the distributed layers from
// closed-form flop formulas, so nothing in this layer affects the
// simulator's accounting.

#include "la/matrix.hpp"

namespace catrsm::la::kernel {

enum class Backend { kScalar, kAvx2, kAvx512 };

/// A register-tiled inner kernel: accumulates an mr x nr tile of C from
/// packed panels,
///
///   c[i*ldc + j] += sum_l ap[l*mr + i] * bp[l*nr + j]   (l = 0..kc)
///
/// where ap is an A panel packed column-major within an mr-row strip and
/// bp is a B panel packed row-major within an nr-column strip.
struct MicroKernel {
  Backend backend;
  const char* name;
  int mr;
  int nr;
  void (*run)(index_t kc, const double* ap, const double* bp, double* c,
              index_t ldc);
};

/// The micro-kernel the process dispatched to (resolved once, thread-safe).
/// Order of precedence: CATRSM_KERNEL env var if set and usable, else the
/// widest ISA the CPU supports. An unusable override warns on stderr and
/// falls back rather than aborting.
const MicroKernel& active_microkernel();
Backend active_backend();
const char* backend_name();

/// Kernel for a specific backend, or nullptr when it was compiled out
/// (non-x86 build). Does not check CPU support — see cpu_supports().
const MicroKernel* microkernel_for(Backend b);

/// Whether the running CPU can execute this backend's instructions.
bool cpu_supports(Backend b);

/// Strided row-major GEMM: C = alpha * A * B + beta * C.
/// A: m x k (leading dim lda), B: k x n (ldb), C: m x n (ldc).
/// C must not alias the regions of A or B that are read.
/// Small products take a branch-free naive loop (packing would dominate);
/// everything else goes through the packed micro-kernel path.
void gemm(index_t m, index_t n, index_t k, double alpha, const double* a,
          index_t lda, const double* b, index_t ldb, double beta, double* c,
          index_t ldc);

/// Same, forcing a specific micro-kernel and always taking the packed path
/// (no small-product shortcut). Test hook: lets one process compare the
/// scalar tile against the dispatched one on every edge shape.
void gemm_with(const MicroKernel& uk, index_t m, index_t n, index_t k,
               double alpha, const double* a, index_t lda, const double* b,
               index_t ldb, double beta, double* c, index_t ldc);

}  // namespace catrsm::la::kernel
