#pragma once
// Packed, register-tiled GEMM micro-kernel layer (BLIS-style).
//
// The flop substrate of every distributed algorithm in this repo is the
// sequential la:: routines, and those now bottom out here: a strided GEMM
// driver packs panels of A and B into contiguous MR- / NR-wide tiles and
// streams them through a small register-tiled inner kernel. Each backend
// (portable scalar, AVX2/FMA, AVX-512F) carries BOTH an f64 and an f32
// inner kernel — the f32 tiles run twice the lanes per FMA, which is what
// the mixed-precision refinement path (la::trsm_refined) cashes in —
// selected once per process by CPU detection and overridable with
// CATRSM_KERNEL=scalar|avx2|avx512.
//
// Large products additionally fan out over a persistent worker pool
// (kernel/pool.hpp, CATRSM_KERNEL_THREADS) as ONE team dispatch per gemm
// call: the B panel is packed cooperatively into a single shared buffer,
// then each thread owns a contiguous band of C rows — packing its own A
// panels and running every jr strip of its band — with spin barriers
// between the phases. The split only decides which thread computes an
// element, never what it computes, so results are bit-identical at any
// pool size. The pool composes with the simulator rather than fighting
// it: calls issued from inside a simulated rank (exec::in_sim_rank())
// always run single-threaded, because sim::RankScheduler already
// multiplexes the p ranks over the physical cores — only direct/library
// callers fan out.
//
// Single-core micro-wins: the inner kernels software-prefetch the packed
// panels a few iterations ahead, and when beta == 0 with a single
// K-blocking pass the C tile is written with plain (or, for a C that
// exceeds the LLC, non-temporal) stores instead of read-modify-write —
// same values to the bit, less traffic. CATRSM_KERNEL_NT=0|1 overrides
// the size heuristic.
//
// Modeled costs (S, W, F) are charged by the distributed layers from
// closed-form flop formulas, so nothing in this layer affects the
// simulator's accounting.

#include "la/matrix.hpp"

namespace catrsm::la::kernel {

enum class Backend { kScalar, kAvx2, kAvx512 };

/// A register-tiled inner kernel: accumulates an mr x nr tile of C from
/// packed panels,
///
///   c[i*ldc + j] += sum_l ap[l*mr + i] * bp[l*nr + j]   (l = 0..kc)
///
/// where ap is an A panel packed column-major within an mr-row strip and
/// bp is a B panel packed row-major within an nr-column strip.
///
/// run_store writes the tile instead of accumulating (c = tile; C may be
/// uninitialized), used when beta == 0 and the K loop has a single
/// blocking pass. run_nt is the same with non-temporal stores (bypassing
/// the cache for a C that would only pollute it); it requires c and ldc
/// scaled by the element size to be 64-byte aligned and may be null
/// (driver falls back to run_store). All three compute bit-identical
/// values — only the store instruction differs.
template <class T>
struct MicroKernelT {
  Backend backend;
  const char* name;
  int mr;
  int nr;
  void (*run)(index_t kc, const T* ap, const T* bp, T* c, index_t ldc);
  void (*run_store)(index_t kc, const T* ap, const T* bp, T* c, index_t ldc);
  void (*run_nt)(index_t kc, const T* ap, const T* bp, T* c, index_t ldc);
};

using MicroKernel = MicroKernelT<double>;
using MicroKernelF32 = MicroKernelT<float>;

/// The micro-kernel the process dispatched to (resolved once, thread-safe).
/// Order of precedence: CATRSM_KERNEL env var if set and usable, else the
/// widest ISA the CPU supports. An unusable override warns on stderr and
/// falls back rather than aborting. Both precisions always dispatch to
/// the same backend.
const MicroKernel& active_microkernel();
const MicroKernelF32& active_microkernel_f32();
Backend active_backend();
const char* backend_name();

/// Kernel for a specific backend, or nullptr when it was compiled out
/// (non-x86 build). Does not check CPU support — see cpu_supports().
const MicroKernel* microkernel_for(Backend b);
const MicroKernelF32* microkernel_f32_for(Backend b);

/// Whether the running CPU can execute this backend's instructions.
bool cpu_supports(Backend b);

/// Strided row-major GEMM: C = alpha * A * B + beta * C.
/// A: m x k (leading dim lda), B: k x n (ldb), C: m x n (ldc).
/// C must not alias the regions of A or B that are read.
/// Small products take a branch-free naive loop (packing would dominate);
/// everything else goes through the packed micro-kernel path.
void gemm(index_t m, index_t n, index_t k, double alpha, const double* a,
          index_t lda, const double* b, index_t ldb, double beta, double* c,
          index_t ldc);

/// The same contract in single precision (the fast half of the
/// mixed-precision refinement path).
void gemm_f32(index_t m, index_t n, index_t k, float alpha, const float* a,
              index_t lda, const float* b, index_t ldb, float beta, float* c,
              index_t ldc);

/// Same, forcing a specific micro-kernel and always taking the packed path
/// (no small-product shortcut). Test hook: lets one process compare the
/// scalar tile against the dispatched one on every edge shape.
void gemm_with(const MicroKernel& uk, index_t m, index_t n, index_t k,
               double alpha, const double* a, index_t lda, const double* b,
               index_t ldb, double beta, double* c, index_t ldc);
void gemm_with_f32(const MicroKernelF32& uk, index_t m, index_t n, index_t k,
                   float alpha, const float* a, index_t lda, const float* b,
                   index_t ldb, float beta, float* c, index_t ldc);

/// Non-temporal-store policy for the beta == 0 single-K-pass fast path:
/// by default C uses streaming stores when it exceeds a fixed
/// last-level-cache-sized threshold (and the alignment precondition
/// holds); CATRSM_KERNEL_NT=0 disables, =1 forces them for any size.
/// Values are bit-identical either way — the policy is purely a cache
/// hint. Test hook mirroring the env var: -1 restores the environment
/// setting, 0 forces off, 1 forces on.
void set_nt_for_testing(int mode);

}  // namespace catrsm::la::kernel
