#include <optional>
#include <string>

#include "la/kernel/ukr.hpp"
#include "support/env.hpp"

namespace catrsm::la::kernel {

namespace {

std::optional<Backend> parse_backend(const std::string& s) {
  if (s == "scalar") return Backend::kScalar;
  if (s == "avx2") return Backend::kAvx2;
  if (s == "avx512") return Backend::kAvx512;
  return std::nullopt;
}

bool usable(Backend b) {
  return microkernel_for(b) != nullptr && cpu_supports(b);
}

Backend widest_supported() {
  if (usable(Backend::kAvx512)) return Backend::kAvx512;
  if (usable(Backend::kAvx2)) return Backend::kAvx2;
  return Backend::kScalar;
}

/// One backend choice feeds both precisions: every TU registers its f64
/// and f32 kernels together, so a backend that is usable for one is
/// usable for the other.
Backend select() {
  Backend chosen = widest_supported();
  const std::string req = env::string_or("CATRSM_KERNEL", "");
  if (!req.empty()) {
    const std::optional<Backend> want = parse_backend(req);
    if (!want.has_value()) {
      env::warn_invalid("CATRSM_KERNEL", "not recognized (scalar|avx2|avx512)",
                        microkernel_for(chosen)->name);
    } else if (!usable(*want)) {
      env::warn_invalid("CATRSM_KERNEL", "not supported on this CPU/build",
                        microkernel_for(chosen)->name);
    } else {
      chosen = *want;
    }
  }
  return chosen;
}

Backend selected_backend() {
  static const Backend b = select();
  return b;
}

}  // namespace

const MicroKernel* microkernel_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_microkernel();
    case Backend::kAvx2:
      return avx2_microkernel();
    case Backend::kAvx512:
      return avx512_microkernel();
  }
  return nullptr;
}

const MicroKernelF32* microkernel_f32_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_microkernel_f32();
    case Backend::kAvx2:
      return avx2_microkernel_f32();
    case Backend::kAvx512:
      return avx512_microkernel_f32();
  }
  return nullptr;
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
#ifdef CATRSM_UKR_X86
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    default:
      return false;
#endif
  }
  return false;
}

const MicroKernel& active_microkernel() {
  static const MicroKernel* const k = microkernel_for(selected_backend());
  return *k;
}

const MicroKernelF32& active_microkernel_f32() {
  static const MicroKernelF32* const k =
      microkernel_f32_for(selected_backend());
  return *k;
}

Backend active_backend() { return active_microkernel().backend; }

const char* backend_name() { return active_microkernel().name; }

}  // namespace catrsm::la::kernel
