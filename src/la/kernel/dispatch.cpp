#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "la/kernel/ukr.hpp"

namespace catrsm::la::kernel {

namespace {

std::optional<Backend> parse_backend(const char* s) {
  if (std::strcmp(s, "scalar") == 0) return Backend::kScalar;
  if (std::strcmp(s, "avx2") == 0) return Backend::kAvx2;
  if (std::strcmp(s, "avx512") == 0) return Backend::kAvx512;
  return std::nullopt;
}

bool usable(Backend b) {
  return microkernel_for(b) != nullptr && cpu_supports(b);
}

Backend widest_supported() {
  if (usable(Backend::kAvx512)) return Backend::kAvx512;
  if (usable(Backend::kAvx2)) return Backend::kAvx2;
  return Backend::kScalar;
}

/// One backend choice feeds both precisions: every TU registers its f64
/// and f32 kernels together, so a backend that is usable for one is
/// usable for the other.
Backend select() {
  Backend chosen = widest_supported();
  if (const char* env = std::getenv("CATRSM_KERNEL")) {
    const std::optional<Backend> want = parse_backend(env);
    if (!want.has_value()) {
      std::fprintf(stderr,
                   "catrsm: CATRSM_KERNEL=%s not recognized "
                   "(scalar|avx2|avx512); using %s\n",
                   env, microkernel_for(chosen)->name);
    } else if (!usable(*want)) {
      std::fprintf(stderr,
                   "catrsm: CATRSM_KERNEL=%s not supported on this "
                   "CPU/build; using %s\n",
                   env, microkernel_for(chosen)->name);
    } else {
      chosen = *want;
    }
  }
  return chosen;
}

Backend selected_backend() {
  static const Backend b = select();
  return b;
}

}  // namespace

const MicroKernel* microkernel_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_microkernel();
    case Backend::kAvx2:
      return avx2_microkernel();
    case Backend::kAvx512:
      return avx512_microkernel();
  }
  return nullptr;
}

const MicroKernelF32* microkernel_f32_for(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return scalar_microkernel_f32();
    case Backend::kAvx2:
      return avx2_microkernel_f32();
    case Backend::kAvx512:
      return avx512_microkernel_f32();
  }
  return nullptr;
}

bool cpu_supports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
#ifdef CATRSM_UKR_X86
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    default:
      return false;
#endif
  }
  return false;
}

const MicroKernel& active_microkernel() {
  static const MicroKernel* const k = microkernel_for(selected_backend());
  return *k;
}

const MicroKernelF32& active_microkernel_f32() {
  static const MicroKernelF32* const k =
      microkernel_f32_for(selected_backend());
  return *k;
}

Backend active_backend() { return active_microkernel().backend; }

const char* backend_name() { return active_microkernel().name; }

}  // namespace catrsm::la::kernel
