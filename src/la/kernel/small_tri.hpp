#pragma once
// Strided scalar kernels for small triangular diagonal blocks. The blocked
// la::trsm / la::trmm / la::tri_inv algorithms resolve all cross-block
// dependencies through packed GEMM panels (kernel::gemm) and only ever hand
// these routines one diagonal block at a time, so nb stays at the block
// size and the O(nb^2 k) substitution work is a small fraction of the
// total. Inner loops run over the contiguous RHS dimension with no
// data-dependent branches, so they auto-vectorize.

#include "la/matrix.hpp"

namespace catrsm::la::kernel {

/// Solve T X = B in place (B := T^-1 B). T: nb x nb lower triangular with
/// leading dim ldt; B: nb x k with leading dim ldb.
void trsm_ll_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

/// Same with T upper triangular (backward substitution).
void trsm_lu_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

/// Single-precision twins of the two left-solve blocks, used by the f32
/// half of the mixed-precision refinement path (la/mixed.hpp).
void trsm_ll_block_f32(const float* t, index_t ldt, float* b, index_t ldb,
                       index_t nb, index_t k, bool unit);
void trsm_lu_block_f32(const float* t, index_t ldt, float* b, index_t ldb,
                       index_t nb, index_t k, bool unit);

/// Solve X T = B in place with T upper triangular. B: m x nb.
void trsm_ru_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t m, index_t nb, bool unit);

/// Solve X T = B in place with T lower triangular. B: m x nb.
void trsm_rl_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t m, index_t nb, bool unit);

/// B := T * B in place with T lower triangular. B: nb x k.
void trmm_ll_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

/// B := T * B in place with T upper triangular. B: nb x k.
void trmm_lu_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

/// inv := T^-1 for an nb x nb lower triangular block by column-wise
/// forward substitution on the identity (nb^3/3 flops — the substitution
/// skips the identity's structural zeros). Writes ONLY the lower triangle
/// of inv; the strict upper triangle is never touched, so a zero-
/// initialized destination stays exactly triangular.
void tri_inv_ll_block(const double* t, index_t ldt, double* inv, index_t ldi,
                      index_t nb);

/// Same for an upper triangular block (writes only the upper triangle).
void tri_inv_uu_block(const double* t, index_t ldt, double* inv, index_t ldi,
                      index_t nb);

}  // namespace catrsm::la::kernel
