#pragma once
// Strided scalar kernels for small triangular diagonal blocks. The blocked
// la::trsm / la::trmm / la::tri_inv algorithms resolve all cross-block
// dependencies through packed GEMM panels (kernel::gemm) and only ever hand
// these routines one diagonal block at a time, so nb stays at the block
// size and the O(nb^2 k) substitution work is a small fraction of the
// total. Inner loops run over the contiguous RHS dimension with no
// data-dependent branches, so they auto-vectorize.

#include "la/matrix.hpp"

namespace catrsm::la::kernel {

/// Solve T X = B in place (B := T^-1 B). T: nb x nb lower triangular with
/// leading dim ldt; B: nb x k with leading dim ldb.
void trsm_ll_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

/// Same with T upper triangular (backward substitution).
void trsm_lu_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

/// Solve X T = B in place with T upper triangular. B: m x nb.
void trsm_ru_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t m, index_t nb, bool unit);

/// Solve X T = B in place with T lower triangular. B: m x nb.
void trsm_rl_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t m, index_t nb, bool unit);

/// B := T * B in place with T lower triangular. B: nb x k.
void trmm_ll_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

/// B := T * B in place with T upper triangular. B: nb x k.
void trmm_lu_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit);

}  // namespace catrsm::la::kernel
