#include <algorithm>

#include "la/kernel/kernel.hpp"
#include "la/kernel/pool.hpp"

namespace catrsm::la::kernel {

namespace {

// Cache blocking: an MC x KC packed panel of A (288 KB) lives in L2 while
// KC x NC of packed B (2 MB) streams from L3. MC is a common multiple of
// every backend's MR so full strips dominate; NC likewise for NR.
constexpr index_t kMc = 144;
constexpr index_t kKc = 256;
constexpr index_t kNc = 1024;

// Below this m*n*k the packing and dispatch overhead beats the gain; run a
// branch-free naive loop instead (identical results up to summation order).
constexpr index_t kSmallProduct = 16 * 1024;

// Below this flop count (2*m*n*k) the fork-join overhead beats the
// speedup; stay on one thread. Engagement never changes the arithmetic —
// only which thread executes an index — so results are identical either
// way.
constexpr double kMtFlopThreshold = 4.0e6;

constexpr index_t kMaxMr = 8;
constexpr index_t kMaxNr = 16;

index_t round_up(index_t x, index_t to) { return ((x + to - 1) / to) * to; }

/// Pack mr-row strips [s0, s1) of A(m x k, stride lda), column-major
/// within each strip, alpha folded in; rows past m are zero so the inner
/// kernel never needs an m-edge branch. Each strip writes a disjoint
/// k * mr_full range of ap, so strips parallelize freely.
void pack_a_strips(const double* a, index_t lda, index_t m, index_t k,
                   double alpha, index_t mr_full, double* ap, index_t s0,
                   index_t s1) {
  for (index_t s = s0; s < s1; ++s) {
    const index_t i0 = s * mr_full;
    const index_t mr = std::min(mr_full, m - i0);
    double* dst = ap + s * k * mr_full;
    for (index_t l = 0; l < k; ++l) {
      for (index_t i = 0; i < mr; ++i)
        dst[l * mr_full + i] = alpha * a[(i0 + i) * lda + l];
      for (index_t i = mr; i < mr_full; ++i) dst[l * mr_full + i] = 0.0;
    }
  }
}

/// Pack nr-column strips [s0, s1) of B(k x n, stride ldb), row-major
/// within each strip, zero-padded past n. Disjoint writes per strip.
void pack_b_strips(const double* b, index_t ldb, index_t k, index_t n,
                   index_t nr_full, double* bp, index_t s0, index_t s1) {
  for (index_t s = s0; s < s1; ++s) {
    const index_t j0 = s * nr_full;
    const index_t nr = std::min(nr_full, n - j0);
    double* dst = bp + s * k * nr_full;
    for (index_t l = 0; l < k; ++l) {
      const double* brow = b + l * ldb + j0;
      for (index_t j = 0; j < nr; ++j) dst[l * nr_full + j] = brow[j];
      for (index_t j = nr; j < nr_full; ++j) dst[l * nr_full + j] = 0.0;
    }
  }
}

void apply_beta(double beta, index_t m, index_t n, double* c, index_t ldc) {
  if (beta == 1.0) return;
  for (index_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    if (beta == 0.0) {
      std::fill(crow, crow + n, 0.0);
    } else {
      for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

/// Branch-free i-l-j loop for small products, alpha folded into the A
/// element (C += alpha * A * B; beta already applied).
void gemm_naive(index_t m, index_t n, index_t k, double alpha,
                const double* a, index_t lda, const double* b, index_t ldb,
                double* c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    for (index_t l = 0; l < k; ++l) {
      const double av = alpha * a[i * lda + l];
      const double* brow = b + l * ldb;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// One jr strip of the macro-kernel: every ir strip of the mc x nc block
/// against packed panels. Each jr strip writes a disjoint column band of
/// C, so strips parallelize freely and bit-identically (the per-strip
/// computation does not depend on the split).
void macro_strip(const MicroKernel& uk, index_t kc, index_t mc, index_t nc,
                 const double* apack, const double* bpack, double* c,
                 index_t ldc, index_t jr_strip) {
  const index_t mr_full = uk.mr;
  const index_t nr_full = uk.nr;
  const index_t jr = jr_strip * nr_full;
  const index_t nr = std::min(nr_full, nc - jr);
  const double* bp = bpack + jr * kc;
  for (index_t ir = 0; ir < mc; ir += mr_full) {
    const index_t mr = std::min(mr_full, mc - ir);
    const double* ap = apack + ir * kc;
    double* ct = c + ir * ldc + jr;
    if (mr == mr_full && nr == nr_full) {
      uk.run(kc, ap, bp, ct, ldc);
    } else {
      // Partial tile: accumulate into a full-size local tile (the
      // packed panels are zero-padded) and add back the live part.
      alignas(64) double tile[kMaxMr * kMaxNr] = {};
      uk.run(kc, ap, bp, tile, nr_full);
      for (index_t i = 0; i < mr; ++i) {
        double* crow = ct + i * ldc;
        const double* trow = tile + i * nr_full;
        for (index_t j = 0; j < nr; ++j) crow[j] += trow[j];
      }
    }
  }
}

// Contexts for the pool's function-pointer callbacks (no per-call
// std::function allocation on the hot path).
struct PackACtx {
  const double* a;
  index_t lda, m, k;
  double alpha;
  index_t mr_full;
  double* ap;
};
struct PackBCtx {
  const double* b;
  index_t ldb, k, n, nr_full;
  double* bp;
};
struct MacroCtx {
  const MicroKernel* uk;
  index_t kc, mc, nc;
  const double* apack;
  const double* bpack;
  double* c;
  index_t ldc;
};

void pack_a_cb(index_t s0, index_t s1, void* p) {
  auto* ctx = static_cast<PackACtx*>(p);
  pack_a_strips(ctx->a, ctx->lda, ctx->m, ctx->k, ctx->alpha, ctx->mr_full,
                ctx->ap, s0, s1);
}
void pack_b_cb(index_t s0, index_t s1, void* p) {
  auto* ctx = static_cast<PackBCtx*>(p);
  pack_b_strips(ctx->b, ctx->ldb, ctx->k, ctx->n, ctx->nr_full, ctx->bp, s0,
                s1);
}
void macro_cb(index_t s0, index_t s1, void* p) {
  auto* ctx = static_cast<MacroCtx*>(p);
  for (index_t s = s0; s < s1; ++s)
    macro_strip(*ctx->uk, ctx->kc, ctx->mc, ctx->nc, ctx->apack, ctx->bpack,
                ctx->c, ctx->ldc, s);
}

/// The five-loop packed driver (C += alpha * A * B; beta already applied).
/// The jr macro-kernel loop and both packing loops fan out over the
/// kernel pool when the product is large enough; the fork-join barriers
/// make the packed panels visible to every worker before they are read.
void gemm_packed(const MicroKernel& uk, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t lda, const double* b,
                 index_t ldb, double* c, index_t ldc) {
  const index_t mr_full = uk.mr;
  const index_t nr_full = uk.nr;

  // Packing scratch comes from the caller's thread-local arenas: no
  // allocation (and no value-init) per call, 64-byte aligned, reused
  // across calls. Ranks are fibers that never yield inside a kernel
  // call, so thread-locals cannot be shared mid-flight; pool workers
  // only ever receive these pointers through the fork-join barrier.
  double* apack = pack_arena_a().ensure(
      static_cast<std::size_t>(round_up(std::min(kMc, m), mr_full) *
                               std::min(kKc, k)));
  double* bpack = pack_arena_b().ensure(
      static_cast<std::size_t>(std::min(kKc, k) *
                               round_up(std::min(kNc, n), nr_full)));

  ThreadPool& pool = ThreadPool::instance();
  const bool fan_out =
      pool.active_threads() > 1 &&
      2.0 * static_cast<double>(m) * static_cast<double>(n) *
              static_cast<double>(k) >=
          kMtFlopThreshold;
  const auto run = [&](index_t strips, void (*cb)(index_t, index_t, void*),
                       void* ctx) {
    if (fan_out) {
      pool.parallel_for(strips, cb, ctx);
    } else {
      cb(0, strips, ctx);
    }
  };

  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
      PackBCtx pb{b + pc * ldb + jc, ldb, kc, nc, nr_full, bpack};
      run((nc + nr_full - 1) / nr_full, pack_b_cb, &pb);
      for (index_t ic = 0; ic < m; ic += kMc) {
        const index_t mc = std::min(kMc, m - ic);
        PackACtx pa{a + ic * lda + pc, lda, mc, kc, alpha, mr_full, apack};
        run((mc + mr_full - 1) / mr_full, pack_a_cb, &pa);
        MacroCtx mk{&uk,   kc, mc, nc, apack, bpack,
                    c + ic * ldc + jc, ldc};
        run((nc + nr_full - 1) / nr_full, macro_cb, &mk);
      }
    }
  }
}

}  // namespace

void gemm(index_t m, index_t n, index_t k, double alpha, const double* a,
          index_t lda, const double* b, index_t ldb, double beta, double* c,
          index_t ldc) {
  apply_beta(beta, m, n, c, ldc);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  if (m * n * k <= kSmallProduct) {
    gemm_naive(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  gemm_packed(active_microkernel(), m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

void gemm_with(const MicroKernel& uk, index_t m, index_t n, index_t k,
               double alpha, const double* a, index_t lda, const double* b,
               index_t ldb, double beta, double* c, index_t ldc) {
  apply_beta(beta, m, n, c, ldc);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  gemm_packed(uk, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

}  // namespace catrsm::la::kernel
