#include <algorithm>
#include <vector>

#include "la/kernel/kernel.hpp"

namespace catrsm::la::kernel {

namespace {

// Cache blocking: an MC x KC packed panel of A (288 KB) lives in L2 while
// KC x NC of packed B (2 MB) streams from L3. MC is a common multiple of
// every backend's MR so full strips dominate; NC likewise for NR.
constexpr index_t kMc = 144;
constexpr index_t kKc = 256;
constexpr index_t kNc = 1024;

// Below this m*n*k the packing and dispatch overhead beats the gain; run a
// branch-free naive loop instead (identical results up to summation order).
constexpr index_t kSmallProduct = 16 * 1024;

constexpr index_t kMaxMr = 8;
constexpr index_t kMaxNr = 16;

index_t round_up(index_t x, index_t to) { return ((x + to - 1) / to) * to; }

/// Pack A(m x k, stride lda) into mr-row strips, column-major within each
/// strip, alpha folded in; rows past m are zero so the inner kernel never
/// needs an m-edge branch.
void pack_a(const double* a, index_t lda, index_t m, index_t k, double alpha,
            index_t mr_full, double* ap) {
  for (index_t i0 = 0; i0 < m; i0 += mr_full) {
    const index_t mr = std::min(mr_full, m - i0);
    for (index_t l = 0; l < k; ++l) {
      for (index_t i = 0; i < mr; ++i)
        ap[l * mr_full + i] = alpha * a[(i0 + i) * lda + l];
      for (index_t i = mr; i < mr_full; ++i) ap[l * mr_full + i] = 0.0;
    }
    ap += k * mr_full;
  }
}

/// Pack B(k x n, stride ldb) into nr-column strips, row-major within each
/// strip, zero-padded past n.
void pack_b(const double* b, index_t ldb, index_t k, index_t n,
            index_t nr_full, double* bp) {
  for (index_t j0 = 0; j0 < n; j0 += nr_full) {
    const index_t nr = std::min(nr_full, n - j0);
    for (index_t l = 0; l < k; ++l) {
      const double* brow = b + l * ldb + j0;
      for (index_t j = 0; j < nr; ++j) bp[l * nr_full + j] = brow[j];
      for (index_t j = nr; j < nr_full; ++j) bp[l * nr_full + j] = 0.0;
    }
    bp += k * nr_full;
  }
}

void apply_beta(double beta, index_t m, index_t n, double* c, index_t ldc) {
  if (beta == 1.0) return;
  for (index_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    if (beta == 0.0) {
      std::fill(crow, crow + n, 0.0);
    } else {
      for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

/// Branch-free i-l-j loop for small products, alpha folded into the A
/// element (C += alpha * A * B; beta already applied).
void gemm_naive(index_t m, index_t n, index_t k, double alpha,
                const double* a, index_t lda, const double* b, index_t ldb,
                double* c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    double* crow = c + i * ldc;
    for (index_t l = 0; l < k; ++l) {
      const double av = alpha * a[i * lda + l];
      const double* brow = b + l * ldb;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// The five-loop packed driver (C += alpha * A * B; beta already applied).
void gemm_packed(const MicroKernel& uk, index_t m, index_t n, index_t k,
                 double alpha, const double* a, index_t lda, const double* b,
                 index_t ldb, double* c, index_t ldc) {
  const index_t mr_full = uk.mr;
  const index_t nr_full = uk.nr;

  // Per-thread packing scratch: ranks are fibers that never yield inside a
  // kernel call, so worker-thread locals cannot be shared mid-flight.
  static thread_local std::vector<double> apack;
  static thread_local std::vector<double> bpack;
  apack.resize(static_cast<std::size_t>(round_up(std::min(kMc, m), mr_full) *
                                        std::min(kKc, k)));
  bpack.resize(static_cast<std::size_t>(std::min(kKc, k) *
                                        round_up(std::min(kNc, n), nr_full)));

  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
      pack_b(b + pc * ldb + jc, ldb, kc, nc, nr_full, bpack.data());
      for (index_t ic = 0; ic < m; ic += kMc) {
        const index_t mc = std::min(kMc, m - ic);
        pack_a(a + ic * lda + pc, lda, mc, kc, alpha, mr_full, apack.data());
        for (index_t jr = 0; jr < nc; jr += nr_full) {
          const index_t nr = std::min(nr_full, nc - jr);
          const double* bp = bpack.data() + jr * kc;
          for (index_t ir = 0; ir < mc; ir += mr_full) {
            const index_t mr = std::min(mr_full, mc - ir);
            const double* ap = apack.data() + ir * kc;
            double* ct = c + (ic + ir) * ldc + jc + jr;
            if (mr == mr_full && nr == nr_full) {
              uk.run(kc, ap, bp, ct, ldc);
            } else {
              // Partial tile: accumulate into a full-size local tile (the
              // packed panels are zero-padded) and add back the live part.
              alignas(64) double tile[kMaxMr * kMaxNr] = {};
              uk.run(kc, ap, bp, tile, nr_full);
              for (index_t i = 0; i < mr; ++i) {
                double* crow = ct + i * ldc;
                const double* trow = tile + i * nr_full;
                for (index_t j = 0; j < nr; ++j) crow[j] += trow[j];
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

void gemm(index_t m, index_t n, index_t k, double alpha, const double* a,
          index_t lda, const double* b, index_t ldb, double beta, double* c,
          index_t ldc) {
  apply_beta(beta, m, n, c, ldc);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  if (m * n * k <= kSmallProduct) {
    gemm_naive(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  gemm_packed(active_microkernel(), m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

void gemm_with(const MicroKernel& uk, index_t m, index_t n, index_t k,
               double alpha, const double* a, index_t lda, const double* b,
               index_t ldb, double beta, double* c, index_t ldc) {
  apply_beta(beta, m, n, c, ldc);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  gemm_packed(uk, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

}  // namespace catrsm::la::kernel
