#include <algorithm>
#include <cstdint>

#include "la/kernel/kernel.hpp"
#include "la/kernel/pool.hpp"
#include "support/env.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace catrsm::la::kernel {

namespace {

// Cache blocking per element type: an MC x KC packed panel of A lives in
// L2 while KC x NC of packed B streams from L3. MC is a common multiple
// of every backend's MR so full strips dominate; NC likewise for NR. The
// f32 panels double MC and NC (same byte budget, twice the elements).
template <class T>
struct Blocking;
template <>
struct Blocking<double> {
  static constexpr index_t kMc = 144;
  static constexpr index_t kKc = 256;
  static constexpr index_t kNc = 1024;
};
template <>
struct Blocking<float> {
  static constexpr index_t kMc = 288;
  static constexpr index_t kKc = 256;
  static constexpr index_t kNc = 2048;
};

// Below this m*n*k the packing and dispatch overhead beats the gain; run a
// branch-free naive loop instead (identical results up to summation order).
constexpr index_t kSmallProduct = 16 * 1024;

// Below this flop count (2*m*n*k) even a single team dispatch plus its
// barriers beats the speedup; stay on one thread. Engagement never
// changes the arithmetic — only which thread executes an index — so
// results are identical either way. Measured on the 2-core CI box:
// n=512 square (2.7e8 flops) ran ~15% SLOWER fanned out than inline —
// the per-K-pass barriers dominate at that size — while n=1024 (2.1e9)
// still gains, so the threshold sits between the two.
constexpr double kMtFlopThreshold = 3.0e8;

// Auto threshold for non-temporal C stores: a result larger than this
// would only flush useful lines from the LLC on its way out, so stream
// it past the hierarchy instead. Only consulted for the beta == 0
// single-K-pass shape, where C is written exactly once and never read.
constexpr std::size_t kNtAutoBytes = 8u << 20;

// Largest micro-tile any backend uses (f32 AVX-512: 8 x 32); the partial
// tile scratch is sized once for all of them.
constexpr index_t kMaxMr = 8;
constexpr index_t kMaxNr = 32;

std::atomic<int> g_nt_test_mode{-1};

index_t round_up(index_t x, index_t to) { return ((x + to - 1) / to) * to; }

/// How the macro-kernel writes the C tile. All modes compute identical
/// values; kAssign/kStream additionally let the driver skip the beta==0
/// zero-fill pass because the first K pass overwrites C outright.
enum class Store { kAccum, kAssign, kStream };

bool nt_policy(std::size_t c_bytes) {
  const int forced = g_nt_test_mode.load(std::memory_order_relaxed);
  int mode = forced;
  if (mode < 0) {
    static const int env_mode = env::int_or("CATRSM_KERNEL_NT", -1, -1, 1);
    mode = env_mode;
  }
  if (mode == 0) return false;
  if (mode == 1) return true;
  return c_bytes > kNtAutoBytes;
}

template <class T>
bool nt_aligned(const T* c, index_t ldc) {
  return (reinterpret_cast<std::uintptr_t>(c) % 64 == 0) &&
         ((static_cast<std::size_t>(ldc) * sizeof(T)) % 64 == 0);
}

void store_fence() {
#if defined(__x86_64__)
  _mm_sfence();
#endif
}

/// Pack mr-row strips [s0, s1) of A(m x k, stride lda), column-major
/// within each strip, alpha folded in; rows past m are zero so the inner
/// kernel never needs an m-edge branch. Each strip writes a disjoint
/// k * mr_full range of ap, so strips parallelize freely.
template <class T>
void pack_a_strips(const T* a, index_t lda, index_t m, index_t k, T alpha,
                   index_t mr_full, T* ap, index_t s0, index_t s1) {
  for (index_t s = s0; s < s1; ++s) {
    const index_t i0 = s * mr_full;
    const index_t mr = std::min(mr_full, m - i0);
    T* dst = ap + s * k * mr_full;
    for (index_t l = 0; l < k; ++l) {
      for (index_t i = 0; i < mr; ++i)
        dst[l * mr_full + i] = alpha * a[(i0 + i) * lda + l];
      for (index_t i = mr; i < mr_full; ++i) dst[l * mr_full + i] = T(0);
    }
  }
}

/// Pack nr-column strips [s0, s1) of B(k x n, stride ldb), row-major
/// within each strip, zero-padded past n. Disjoint writes per strip (and
/// strip boundaries land on cache lines: k * nr_full * sizeof(T) is a
/// multiple of 64 for every backend), so cooperative packing never
/// false-shares.
template <class T>
void pack_b_strips(const T* b, index_t ldb, index_t k, index_t n,
                   index_t nr_full, T* bp, index_t s0, index_t s1) {
  for (index_t s = s0; s < s1; ++s) {
    const index_t j0 = s * nr_full;
    const index_t nr = std::min(nr_full, n - j0);
    T* dst = bp + s * k * nr_full;
    for (index_t l = 0; l < k; ++l) {
      const T* brow = b + l * ldb + j0;
      for (index_t j = 0; j < nr; ++j) dst[l * nr_full + j] = brow[j];
      for (index_t j = nr; j < nr_full; ++j) dst[l * nr_full + j] = T(0);
    }
  }
}

template <class T>
void apply_beta(T beta, index_t m, index_t n, T* c, index_t ldc) {
  if (beta == T(1)) return;
  for (index_t i = 0; i < m; ++i) {
    T* crow = c + i * ldc;
    if (beta == T(0)) {
      std::fill(crow, crow + n, T(0));
    } else {
      for (index_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

/// Branch-free i-l-j loop for small products, alpha folded into the A
/// element (C += alpha * A * B; beta already applied).
template <class T>
void gemm_naive(index_t m, index_t n, index_t k, T alpha, const T* a,
                index_t lda, const T* b, index_t ldb, T* c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    T* crow = c + i * ldc;
    for (index_t l = 0; l < k; ++l) {
      const T av = alpha * a[i * lda + l];
      const T* brow = b + l * ldb;
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// One jr strip of the macro-kernel: every ir strip of the mc x nc block
/// against packed panels. The store mode never changes the computed tile
/// values — accumulate adds them to C, assign/stream overwrite C (legal
/// only on the first K pass of a beta == 0 product, where the old C is
/// dead).
template <class T>
void macro_strip(const MicroKernelT<T>& uk, index_t kc, index_t mc,
                 index_t nc, const T* apack, const T* bpack, T* c,
                 index_t ldc, index_t jr_strip, Store mode) {
  const index_t mr_full = uk.mr;
  const index_t nr_full = uk.nr;
  const index_t jr = jr_strip * nr_full;
  const index_t nr = std::min(nr_full, nc - jr);
  const T* bp = bpack + jr * kc;
  for (index_t ir = 0; ir < mc; ir += mr_full) {
    const index_t mr = std::min(mr_full, mc - ir);
    const T* ap = apack + ir * kc;
    T* ct = c + ir * ldc + jr;
    if (mr == mr_full && nr == nr_full) {
      switch (mode) {
        case Store::kAccum:
          uk.run(kc, ap, bp, ct, ldc);
          break;
        case Store::kAssign:
          uk.run_store(kc, ap, bp, ct, ldc);
          break;
        case Store::kStream:
          uk.run_nt(kc, ap, bp, ct, ldc);
          break;
      }
    } else {
      // Partial tile: compute a full-size local tile (the packed panels
      // are zero-padded) and write back only the live part.
      alignas(64) T tile[kMaxMr * kMaxNr] = {};
      uk.run(kc, ap, bp, tile, nr_full);
      for (index_t i = 0; i < mr; ++i) {
        T* crow = ct + i * ldc;
        const T* trow = tile + i * nr_full;
        if (mode == Store::kAccum) {
          for (index_t j = 0; j < nr; ++j) crow[j] += trow[j];
        } else {
          for (index_t j = 0; j < nr; ++j) crow[j] = trow[j];
        }
      }
    }
  }
}

/// Everything a team participant needs. The B pack buffer is shared (the
/// master's arena); A panels are per-thread (each participant's own
/// arena).
template <class T>
struct TeamCtx {
  const MicroKernelT<T>* uk;
  index_t m, n, k, lda, ldb, ldc;
  T alpha;
  const T* a;
  const T* b;
  T* c;
  T* bpack;
  bool beta_zero;   // first K pass may overwrite C
  bool stream;      // ... with non-temporal stores
  TeamBarrier* barrier;
};

/// The five-loop packed driver as a TEAM BODY: every participant runs the
/// same loop nest, cooperatively packing the shared B panel and then
/// sweeping its own contiguous band of C rows (per-thread C ownership —
/// its band's A panels live in its own arena, and no other thread ever
/// writes its rows). Two spin barriers per (jc, pc) block: packed B must
/// be complete before anyone consumes it, and fully consumed before
/// anyone repacks it. Called directly as (0, 1) on the single-threaded
/// path, so both paths execute literally the same arithmetic.
template <class T>
void gemm_team_body(int tid, int nt, void* p) {
  auto& tc = *static_cast<TeamCtx<T>*>(p);
  const MicroKernelT<T>& uk = *tc.uk;
  const index_t mr_full = uk.mr;
  const index_t nr_full = uk.nr;
  constexpr index_t kMc = Blocking<T>::kMc;
  constexpr index_t kKc = Blocking<T>::kKc;
  constexpr index_t kNc = Blocking<T>::kNc;

  // This thread's band of C rows, split on micro-tile boundaries.
  const index_t mstrips = (tc.m + mr_full - 1) / mr_full;
  const index_t band0 = (mstrips * tid / nt) * mr_full;
  const index_t band1 = std::min(tc.m, (mstrips * (tid + 1) / nt) * mr_full);
  const index_t band_m = band1 - band0;

  // Per-thread A arena (thread-local: workers each get their own).
  T* apack = nullptr;
  if (band_m > 0)
    apack = pack_arena_a().ensure<T>(static_cast<std::size_t>(
        round_up(std::min(kMc, band_m), mr_full) * std::min(kKc, tc.k)));

  for (index_t jc = 0; jc < tc.n; jc += kNc) {
    const index_t nc = std::min(kNc, tc.n - jc);
    const index_t bstrips = (nc + nr_full - 1) / nr_full;
    for (index_t pc = 0; pc < tc.k; pc += kKc) {
      const index_t kc = std::min(kKc, tc.k - pc);
      // Cooperative B pack: contiguous strip ranges per thread.
      pack_b_strips(tc.b + pc * tc.ldb + jc, tc.ldb, kc, nc, nr_full,
                    tc.bpack, bstrips * tid / nt, bstrips * (tid + 1) / nt);
      tc.barrier->wait(nt);

      const Store mode = (tc.beta_zero && pc == 0)
                             ? (tc.stream ? Store::kStream : Store::kAssign)
                             : Store::kAccum;
      for (index_t ic = band0; ic < band1; ic += kMc) {
        const index_t mc = std::min(kMc, band1 - ic);
        pack_a_strips(tc.a + ic * tc.lda + pc, tc.lda, mc, kc, tc.alpha,
                      mr_full, apack, 0, (mc + mr_full - 1) / mr_full);
        for (index_t s = 0; s < bstrips; ++s)
          macro_strip(uk, kc, mc, nc, apack, tc.bpack,
                      tc.c + ic * tc.ldc + jc, tc.ldc, s, mode);
      }
      // B fully consumed; the next (pc/jc) iteration repacks it.
      tc.barrier->wait(nt);
    }
  }
  if (tc.stream) store_fence();
}

template <class T>
void gemm_packed(const MicroKernelT<T>& uk, index_t m, index_t n, index_t k,
                 T alpha, const T* a, index_t lda, const T* b, index_t ldb,
                 T beta, T* c, index_t ldc) {
  const index_t nr_full = uk.nr;
  constexpr index_t kKc = Blocking<T>::kKc;
  constexpr index_t kNc = Blocking<T>::kNc;

  // beta == 0 skips the zero-fill pass entirely: the first K pass of the
  // macro-kernel overwrites C (same values — 0 + x == x for every x an
  // accumulator can produce). A C too big to be worth caching goes out
  // through non-temporal stores when the policy and alignment allow; the
  // stream path needs the single-pass overwrite, valid on the pc == 0
  // pass regardless of k, but only PAYS when C is not re-read, so it is
  // further gated to k <= KC (one pass total).
  const bool beta_zero = beta == T(0);
  if (!beta_zero) apply_beta(beta, m, n, c, ldc);
  const bool stream =
      beta_zero && k <= kKc && uk.run_nt != nullptr && nt_aligned(c, ldc) &&
      nt_policy(static_cast<std::size_t>(m) * static_cast<std::size_t>(n) *
                sizeof(T));

  // Packing scratch comes from thread-local arenas: no allocation (and
  // no value-init) per call, 64-byte aligned, reused across calls. Ranks
  // are fibers that never yield inside a kernel call, so thread-locals
  // cannot be shared mid-flight. The B arena is the MASTER's and is
  // shared by the whole team; workers only receive the pointer through
  // the dispatch (which synchronizes), and every write between barriers
  // is to a disjoint strip.
  T* bpack = pack_arena_b().ensure<T>(static_cast<std::size_t>(
      std::min(kKc, k) * round_up(std::min(kNc, n), nr_full)));

  TeamBarrier barrier;
  TeamCtx<T> ctx{&uk, m,     n,         k,      lda,    ldb, ldc, alpha,
                 a,   b,     c,         bpack,  beta_zero, stream, &barrier};

  ThreadPool& pool = ThreadPool::instance();
  const index_t mstrips = (m + uk.mr - 1) / uk.mr;
  int nt = pool.active_threads();
  if (nt > mstrips) nt = static_cast<int>(mstrips);
  const bool fan_out = nt > 1 && 2.0 * static_cast<double>(m) *
                                         static_cast<double>(n) *
                                         static_cast<double>(k) >=
                                     kMtFlopThreshold;
  if (fan_out) {
    pool.run_team(nt, gemm_team_body<T>, &ctx);
  } else {
    gemm_team_body<T>(0, 1, &ctx);
  }
}

template <class T>
void gemm_entry(const MicroKernelT<T>& uk, index_t m, index_t n, index_t k,
                T alpha, const T* a, index_t lda, const T* b, index_t ldb,
                T beta, T* c, index_t ldc, bool allow_naive) {
  if (m == 0 || n == 0) return;
  if (alpha == T(0) || k == 0) {
    apply_beta(beta, m, n, c, ldc);
    return;
  }
  if (allow_naive && m * n * k <= kSmallProduct) {
    apply_beta(beta, m, n, c, ldc);
    gemm_naive(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }
  gemm_packed(uk, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace

void gemm(index_t m, index_t n, index_t k, double alpha, const double* a,
          index_t lda, const double* b, index_t ldb, double beta, double* c,
          index_t ldc) {
  gemm_entry(active_microkernel(), m, n, k, alpha, a, lda, b, ldb, beta, c,
             ldc, /*allow_naive=*/true);
}

void gemm_f32(index_t m, index_t n, index_t k, float alpha, const float* a,
              index_t lda, const float* b, index_t ldb, float beta, float* c,
              index_t ldc) {
  gemm_entry(active_microkernel_f32(), m, n, k, alpha, a, lda, b, ldb, beta,
             c, ldc, /*allow_naive=*/true);
}

void gemm_with(const MicroKernel& uk, index_t m, index_t n, index_t k,
               double alpha, const double* a, index_t lda, const double* b,
               index_t ldb, double beta, double* c, index_t ldc) {
  gemm_entry(uk, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
             /*allow_naive=*/false);
}

void gemm_with_f32(const MicroKernelF32& uk, index_t m, index_t n, index_t k,
                   float alpha, const float* a, index_t lda, const float* b,
                   index_t ldb, float beta, float* c, index_t ldc) {
  gemm_entry(uk, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
             /*allow_naive=*/false);
}

void set_nt_for_testing(int mode) {
  g_nt_test_mode.store(mode < 0 ? -1 : (mode > 0 ? 1 : 0),
                       std::memory_order_relaxed);
}

}  // namespace catrsm::la::kernel
