#pragma once
// Persistent fork-join worker pool for the macro-kernel loops, plus the
// cache-aligned packing arenas that replace per-call panel allocation.
//
// The pool is lazily started on the first multi-threaded dispatch and
// sized from CATRSM_KERNEL_THREADS (default: hardware_concurrency; 1
// reproduces the single-threaded behavior exactly). parallel_for splits
// an index range into contiguous chunks, runs chunk 0 on the caller and
// the rest on parked workers, and joins before returning.
//
// Determinism contract: every index's work item is self-contained and
// writes a disjoint output region, so results are BIT-IDENTICAL for any
// pool size — the split only decides which thread executes an item,
// never what the item computes.
//
// Composition with the simulator: when the caller is a simulated rank
// (exec::in_sim_rank(), set by sim::RankScheduler), parallel_for always
// runs inline — p ranks already occupy the cores, and fanning out per
// rank would oversubscribe the machine. Only direct callers (Plan on
// p = 1, tests, benches) use the workers.

#include <cstddef>
#include <cstdint>

#include "la/matrix.hpp"

namespace catrsm::la::kernel {

class ThreadPool {
 public:
  /// The process-wide pool (workers start on first multi-threaded use).
  static ThreadPool& instance();

  /// Configured worker count: testing override if set, else
  /// CATRSM_KERNEL_THREADS, else hardware_concurrency (>= 1).
  int size() const;

  /// Fan-out a parallel_for issued from this thread would use right now:
  /// 1 inside a simulated rank or on a pool worker, else size().
  int active_threads() const;

  /// Run body(begin, end) over a partition of [0, n) into at most
  /// active_threads() contiguous chunks; blocks until every chunk is
  /// done. Runs inline when the effective fan-out is 1. Chunking is a
  /// static split by index, so the computation each index performs is
  /// independent of the pool size (bit-identical results).
  void parallel_for(index_t n, void (*body)(index_t begin, index_t end,
                                            void* ctx),
                    void* ctx);

  /// Number of multi-threaded fan-outs since process start. Test hook:
  /// a rank-context kernel call must leave this unchanged.
  static std::uint64_t dispatches();

  /// Test hook: force the pool size (0 restores the environment-derived
  /// size). Takes effect on the next parallel_for; workers are spawned
  /// on demand, so raising the count mid-process is safe.
  static void set_threads_for_testing(int n);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();
  struct Impl;
  Impl* impl_;
};

/// Cache-aligned, growable scratch buffer that never value-initializes
/// and is reused across calls (the packed-panel arena). One per thread
/// per panel via pack_arena_a / pack_arena_b; simulated ranks are fibers
/// that never yield inside a kernel call, so thread-locals are safe.
class PackArena {
 public:
  PackArena() = default;
  ~PackArena();
  PackArena(const PackArena&) = delete;
  PackArena& operator=(const PackArena&) = delete;

  /// A buffer of at least n doubles, 64-byte aligned, contents
  /// unspecified. Grows geometrically and never shrinks.
  double* ensure(std::size_t n);

 private:
  double* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Thread-local arenas for the packed A and B panels.
PackArena& pack_arena_a();
PackArena& pack_arena_b();

}  // namespace catrsm::la::kernel
