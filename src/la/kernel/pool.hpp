#pragma once
// Persistent worker pool for the macro-kernel loops, plus the
// cache-aligned packing arenas that replace per-call panel allocation.
//
// The pool is lazily started on the first multi-threaded dispatch and
// sized from CATRSM_KERNEL_THREADS (default: hardware_concurrency; 1
// reproduces the single-threaded behavior exactly). Two dispatch shapes
// exist:
//
//  - parallel_for: split an index range into contiguous chunks, run
//    chunk 0 on the caller and the rest on workers, join. One fork-join
//    per call.
//  - run_team: run the SAME body on every participant as (tid, nt) —
//    the body owns its partitioning and synchronizes internally with a
//    TeamBarrier. This is what the GEMM driver uses: ONE fork-join per
//    gemm call, with cheap spin barriers between the cooperative
//    B-packing step and the macro-kernel sweep, instead of a fork-join
//    per blocking-loop iteration (a condvar wake costs hundreds of
//    microseconds on some kernels — measured 255 us here — which is why
//    the PR 4 per-loop fork-join never scaled).
//
// Workers SPIN briefly (CATRSM_KERNEL_SPIN_US, default 120 us) waiting
// for the next job before parking on a condvar, so back-to-back kernel
// calls — a blocked TRSM issues one GEMM panel every few hundred
// microseconds — never pay the wake latency. The master likewise
// spin-waits for the join (it has its own chunk to run, so the wait is
// short when the split is balanced) and degrades to yielding when
// oversubscribed.
//
// Determinism contract: every index's work item is self-contained and
// writes a disjoint output region, so results are BIT-IDENTICAL for any
// pool size — the split only decides which thread executes an item,
// never what the item computes.
//
// Composition with the simulator: when the caller is a simulated rank
// (exec::in_sim_rank(), set by sim::RankScheduler), dispatches always
// run inline — p ranks already occupy the cores, and fanning out per
// rank would oversubscribe the machine. Only direct callers (Plan on
// p = 1, tests, benches) use the workers.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "la/matrix.hpp"

namespace catrsm::la::kernel {

/// Sense-reversing barrier for run_team bodies: all nt participants must
/// call wait(nt) before any proceeds. Spins with a pause hint, degrading
/// to yield when the wait runs long (oversubscribed pool). A barrier
/// object is reusable across any number of wait rounds but must always
/// be passed the same nt within one team job.
class TeamBarrier {
 public:
  void wait(int nt);

 private:
  std::atomic<int> count_{0};
  std::atomic<std::uint32_t> sense_{0};
};

class ThreadPool {
 public:
  /// The process-wide pool (workers start on first multi-threaded use).
  static ThreadPool& instance();

  /// Configured worker count: testing override if set, else
  /// CATRSM_KERNEL_THREADS, else hardware_concurrency (>= 1).
  int size() const;

  /// Fan-out a dispatch issued from this thread would use right now:
  /// 1 inside a simulated rank or on a pool worker, else size().
  int active_threads() const;

  /// Run body(begin, end) over a partition of [0, n) into at most
  /// active_threads() contiguous chunks; blocks until every chunk is
  /// done. Runs inline when the effective fan-out is 1. Chunking is a
  /// static split by index, so the computation each index performs is
  /// independent of the pool size (bit-identical results).
  void parallel_for(index_t n, void (*body)(index_t begin, index_t end,
                                            void* ctx),
                    void* ctx);

  /// Run body(tid, nt, ctx) on nt participants (tid 0 = the caller,
  /// tids 1..nt-1 on workers) and join. nt is clamped to
  /// active_threads(); with an effective team of 1 the body runs inline
  /// as (0, 1). The body may synchronize internally via a TeamBarrier
  /// shared through ctx.
  void run_team(int nt, void (*body)(int tid, int nt, void* ctx), void* ctx);

  /// Number of multi-threaded fan-outs since process start. Test hook:
  /// a rank-context kernel call must leave this unchanged.
  static std::uint64_t dispatches();

  /// Test hook: force the pool size (0 restores the environment-derived
  /// size). Takes effect on the next dispatch; workers are spawned on
  /// demand, so raising the count mid-process is safe.
  static void set_threads_for_testing(int n);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();
  struct Impl;
  Impl* impl_;
};

/// Cache-aligned, growable scratch buffer that never value-initializes
/// and is reused across calls (the packed-panel arena). One per thread
/// per panel via pack_arena_a / pack_arena_b; simulated ranks are fibers
/// that never yield inside a kernel call, so thread-locals are safe.
/// Byte-addressed so the f64 and f32 drivers share the same storage
/// (their calls never overlap in time on one thread).
class PackArena {
 public:
  PackArena() = default;
  ~PackArena();
  PackArena(const PackArena&) = delete;
  PackArena& operator=(const PackArena&) = delete;

  /// A buffer of at least `count` elements of T, 64-byte aligned,
  /// contents unspecified. Grows geometrically and never shrinks.
  template <class T>
  T* ensure(std::size_t count) {
    return static_cast<T*>(ensure_bytes(count * sizeof(T)));
  }

 private:
  void* ensure_bytes(std::size_t bytes);

  void* data_ = nullptr;
  std::size_t capacity_ = 0;  // bytes
};

/// Thread-local arenas for the packed A and B panels.
PackArena& pack_arena_a();
PackArena& pack_arena_b();

}  // namespace catrsm::la::kernel
