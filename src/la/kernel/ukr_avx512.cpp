#include "la/kernel/ukr.hpp"

// AVX-512F tiles, stamped like the AVX2 TU: one body macro per precision,
// three store variants that differ only in the final tile write. Only
// avx512f is required, which every AVX-512 CPU provides.

#ifdef CATRSM_UKR_X86
#include <immintrin.h>
#endif

namespace catrsm::la::kernel {

#ifdef CATRSM_UKR_X86

namespace {

constexpr int kPrefetchAhead = 4;  // k iterations

// ---------------------------------------------------------------------------
// f64: 8x16 tile — 16 zmm accumulators + 2 B vectors + 1 broadcast = 19
// of 32 registers; 16 FMAs per k iteration against 10 loads.

constexpr int kMr64 = 8;
constexpr int kNr64 = 16;

#define CATRSM_AVX512_F64_BODY(WRITE)                                      \
  __m512d acc[kMr64][2];                                                   \
  for (int i = 0; i < kMr64; ++i) {                                        \
    acc[i][0] = _mm512_setzero_pd();                                       \
    acc[i][1] = _mm512_setzero_pd();                                       \
  }                                                                        \
  for (index_t l = 0; l < kc; ++l) {                                       \
    _mm_prefetch(reinterpret_cast<const char*>(ap + kMr64 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    _mm_prefetch(reinterpret_cast<const char*>(bp + kNr64 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    _mm_prefetch(                                                          \
        reinterpret_cast<const char*>(bp + kNr64 * kPrefetchAhead + 8),    \
        _MM_HINT_T0);                                                      \
    const __m512d b0 = _mm512_loadu_pd(bp);                                \
    const __m512d b1 = _mm512_loadu_pd(bp + 8);                            \
    for (int i = 0; i < kMr64; ++i) {                                      \
      const __m512d ai = _mm512_set1_pd(ap[i]);                            \
      acc[i][0] = _mm512_fmadd_pd(ai, b0, acc[i][0]);                      \
      acc[i][1] = _mm512_fmadd_pd(ai, b1, acc[i][1]);                      \
    }                                                                      \
    ap += kMr64;                                                           \
    bp += kNr64;                                                           \
  }                                                                        \
  for (int i = 0; i < kMr64; ++i) {                                        \
    double* crow = c + i * ldc;                                            \
    WRITE(crow, 0, acc[i][0]);                                             \
    WRITE(crow, 8, acc[i][1]);                                             \
  }

#define CATRSM_WRITE_ACC_PD(crow, off, v) \
  _mm512_storeu_pd((crow) + (off),        \
                   _mm512_add_pd(_mm512_loadu_pd((crow) + (off)), (v)))
#define CATRSM_WRITE_ST_PD(crow, off, v) _mm512_storeu_pd((crow) + (off), (v))
#define CATRSM_WRITE_NT_PD(crow, off, v) _mm512_stream_pd((crow) + (off), (v))

__attribute__((target("avx512f"))) void run_f64(index_t kc, const double* ap,
                                                const double* bp, double* c,
                                                index_t ldc) {
  CATRSM_AVX512_F64_BODY(CATRSM_WRITE_ACC_PD)
}

__attribute__((target("avx512f"))) void run_store_f64(index_t kc,
                                                      const double* ap,
                                                      const double* bp,
                                                      double* c, index_t ldc) {
  CATRSM_AVX512_F64_BODY(CATRSM_WRITE_ST_PD)
}

// Caller guarantees c and ldc * sizeof(double) are 64-byte aligned, so
// every 64-byte store here is aligned as _mm512_stream_pd requires.
__attribute__((target("avx512f"))) void run_nt_f64(index_t kc,
                                                   const double* ap,
                                                   const double* bp, double* c,
                                                   index_t ldc) {
  CATRSM_AVX512_F64_BODY(CATRSM_WRITE_NT_PD)
}

// ---------------------------------------------------------------------------
// f32: 8x32 tile — same register layout as the f64 tile, twice the lanes.

constexpr int kMr32 = 8;
constexpr int kNr32 = 32;

#define CATRSM_AVX512_F32_BODY(WRITE)                                      \
  __m512 acc[kMr32][2];                                                    \
  for (int i = 0; i < kMr32; ++i) {                                        \
    acc[i][0] = _mm512_setzero_ps();                                       \
    acc[i][1] = _mm512_setzero_ps();                                       \
  }                                                                        \
  for (index_t l = 0; l < kc; ++l) {                                       \
    _mm_prefetch(reinterpret_cast<const char*>(ap + kMr32 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    _mm_prefetch(reinterpret_cast<const char*>(bp + kNr32 * kPrefetchAhead), \
                 _MM_HINT_T0);                                             \
    _mm_prefetch(                                                          \
        reinterpret_cast<const char*>(bp + kNr32 * kPrefetchAhead + 16),   \
        _MM_HINT_T0);                                                      \
    const __m512 b0 = _mm512_loadu_ps(bp);                                 \
    const __m512 b1 = _mm512_loadu_ps(bp + 16);                            \
    for (int i = 0; i < kMr32; ++i) {                                      \
      const __m512 ai = _mm512_set1_ps(ap[i]);                             \
      acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);                      \
      acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);                      \
    }                                                                      \
    ap += kMr32;                                                           \
    bp += kNr32;                                                           \
  }                                                                        \
  for (int i = 0; i < kMr32; ++i) {                                        \
    float* crow = c + i * ldc;                                             \
    WRITE(crow, 0, acc[i][0]);                                             \
    WRITE(crow, 16, acc[i][1]);                                            \
  }

#define CATRSM_WRITE_ACC_PS(crow, off, v) \
  _mm512_storeu_ps((crow) + (off),        \
                   _mm512_add_ps(_mm512_loadu_ps((crow) + (off)), (v)))
#define CATRSM_WRITE_ST_PS(crow, off, v) _mm512_storeu_ps((crow) + (off), (v))
#define CATRSM_WRITE_NT_PS(crow, off, v) _mm512_stream_ps((crow) + (off), (v))

__attribute__((target("avx512f"))) void run_f32(index_t kc, const float* ap,
                                                const float* bp, float* c,
                                                index_t ldc) {
  CATRSM_AVX512_F32_BODY(CATRSM_WRITE_ACC_PS)
}

__attribute__((target("avx512f"))) void run_store_f32(index_t kc,
                                                      const float* ap,
                                                      const float* bp,
                                                      float* c, index_t ldc) {
  CATRSM_AVX512_F32_BODY(CATRSM_WRITE_ST_PS)
}

__attribute__((target("avx512f"))) void run_nt_f32(index_t kc,
                                                   const float* ap,
                                                   const float* bp, float* c,
                                                   index_t ldc) {
  CATRSM_AVX512_F32_BODY(CATRSM_WRITE_NT_PS)
}

}  // namespace

const MicroKernel* avx512_microkernel() {
  static const MicroKernel k{Backend::kAvx512, "avx512",     kMr64, kNr64,
                             run_f64,          run_store_f64, run_nt_f64};
  return &k;
}

const MicroKernelF32* avx512_microkernel_f32() {
  static const MicroKernelF32 k{Backend::kAvx512, "avx512",     kMr32, kNr32,
                                run_f32,          run_store_f32, run_nt_f32};
  return &k;
}

#else  // non-x86 build: backend compiled out

const MicroKernel* avx512_microkernel() { return nullptr; }
const MicroKernelF32* avx512_microkernel_f32() { return nullptr; }

#endif

}  // namespace catrsm::la::kernel
