#include "la/kernel/ukr.hpp"

#ifdef CATRSM_UKR_X86
#include <immintrin.h>
#endif

namespace catrsm::la::kernel {

#ifdef CATRSM_UKR_X86

namespace {

// 8x16 tile: 16 zmm accumulators + 2 B vectors + 1 broadcast = 19 of 32
// registers; 16 FMAs per k iteration against 10 loads. Only avx512f is
// required, which every AVX-512 CPU provides.
constexpr int kMr = 8;
constexpr int kNr = 16;

__attribute__((target("avx512f"))) void run(index_t kc, const double* ap,
                                            const double* bp, double* c,
                                            index_t ldc) {
  __m512d acc[kMr][2];
  for (int i = 0; i < kMr; ++i) {
    acc[i][0] = _mm512_setzero_pd();
    acc[i][1] = _mm512_setzero_pd();
  }
  for (index_t l = 0; l < kc; ++l) {
    const __m512d b0 = _mm512_loadu_pd(bp);
    const __m512d b1 = _mm512_loadu_pd(bp + 8);
    for (int i = 0; i < kMr; ++i) {
      const __m512d ai = _mm512_set1_pd(ap[i]);
      acc[i][0] = _mm512_fmadd_pd(ai, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_pd(ai, b1, acc[i][1]);
    }
    ap += kMr;
    bp += kNr;
  }
  for (int i = 0; i < kMr; ++i) {
    double* crow = c + i * ldc;
    _mm512_storeu_pd(crow, _mm512_add_pd(_mm512_loadu_pd(crow), acc[i][0]));
    _mm512_storeu_pd(crow + 8,
                     _mm512_add_pd(_mm512_loadu_pd(crow + 8), acc[i][1]));
  }
}

}  // namespace

const MicroKernel* avx512_microkernel() {
  static const MicroKernel k{Backend::kAvx512, "avx512", kMr, kNr, run};
  return &k;
}

#else  // non-x86 build: backend compiled out

const MicroKernel* avx512_microkernel() { return nullptr; }

#endif

}  // namespace catrsm::la::kernel
