#include "la/kernel/small_tri.hpp"

namespace catrsm::la::kernel {

namespace {

template <class T>
void trsm_ll_block_t(const T* t, index_t ldt, T* b, index_t ldb, index_t nb,
                     index_t k, bool unit) {
  for (index_t i = 0; i < nb; ++i) {
    T* bi = b + i * ldb;
    for (index_t j = 0; j < i; ++j) {
      const T lij = t[i * ldt + j];
      const T* bj = b + j * ldb;
      for (index_t c = 0; c < k; ++c) bi[c] -= lij * bj[c];
    }
    if (!unit) {
      const T inv = T(1) / t[i * ldt + i];
      for (index_t c = 0; c < k; ++c) bi[c] *= inv;
    }
  }
}

template <class T>
void trsm_lu_block_t(const T* t, index_t ldt, T* b, index_t ldb, index_t nb,
                     index_t k, bool unit) {
  for (index_t i = nb - 1; i >= 0; --i) {
    T* bi = b + i * ldb;
    for (index_t j = i + 1; j < nb; ++j) {
      const T uij = t[i * ldt + j];
      const T* bj = b + j * ldb;
      for (index_t c = 0; c < k; ++c) bi[c] -= uij * bj[c];
    }
    if (!unit) {
      const T inv = T(1) / t[i * ldt + i];
      for (index_t c = 0; c < k; ++c) bi[c] *= inv;
    }
  }
}

}  // namespace

void trsm_ll_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit) {
  trsm_ll_block_t(t, ldt, b, ldb, nb, k, unit);
}

void trsm_lu_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit) {
  trsm_lu_block_t(t, ldt, b, ldb, nb, k, unit);
}

void trsm_ll_block_f32(const float* t, index_t ldt, float* b, index_t ldb,
                       index_t nb, index_t k, bool unit) {
  trsm_ll_block_t(t, ldt, b, ldb, nb, k, unit);
}

void trsm_lu_block_f32(const float* t, index_t ldt, float* b, index_t ldb,
                       index_t nb, index_t k, bool unit) {
  trsm_lu_block_t(t, ldt, b, ldb, nb, k, unit);
}

void trsm_ru_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t m, index_t nb, bool unit) {
  // Row i of X solves independently against T; walking rows outer keeps
  // every inner access on b's contiguous row.
  for (index_t i = 0; i < m; ++i) {
    double* bi = b + i * ldb;
    for (index_t j = 0; j < nb; ++j) {
      double s = bi[j];
      for (index_t l = 0; l < j; ++l) s -= bi[l] * t[l * ldt + j];
      bi[j] = unit ? s : s / t[j * ldt + j];
    }
  }
}

void trsm_rl_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t m, index_t nb, bool unit) {
  for (index_t i = 0; i < m; ++i) {
    double* bi = b + i * ldb;
    for (index_t j = nb - 1; j >= 0; --j) {
      double s = bi[j];
      for (index_t l = j + 1; l < nb; ++l) s -= bi[l] * t[l * ldt + j];
      bi[j] = unit ? s : s / t[j * ldt + j];
    }
  }
}

void trmm_ll_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit) {
  // Row i of the product reads rows <= i of B: walk bottom-up to stay in
  // place.
  for (index_t i = nb - 1; i >= 0; --i) {
    double* bi = b + i * ldb;
    if (!unit) {
      const double dii = t[i * ldt + i];
      for (index_t c = 0; c < k; ++c) bi[c] *= dii;
    }
    for (index_t j = 0; j < i; ++j) {
      const double tij = t[i * ldt + j];
      const double* bj = b + j * ldb;
      for (index_t c = 0; c < k; ++c) bi[c] += tij * bj[c];
    }
  }
}

void trmm_lu_block(const double* t, index_t ldt, double* b, index_t ldb,
                   index_t nb, index_t k, bool unit) {
  // Row i reads rows >= i: walk top-down.
  for (index_t i = 0; i < nb; ++i) {
    double* bi = b + i * ldb;
    if (!unit) {
      const double dii = t[i * ldt + i];
      for (index_t c = 0; c < k; ++c) bi[c] *= dii;
    }
    for (index_t j = i + 1; j < nb; ++j) {
      const double tij = t[i * ldt + j];
      const double* bj = b + j * ldb;
      for (index_t c = 0; c < k; ++c) bi[c] += tij * bj[c];
    }
  }
}

void tri_inv_ll_block(const double* t, index_t ldt, double* inv, index_t ldi,
                      index_t nb) {
  for (index_t j = 0; j < nb; ++j) {
    inv[j * ldi + j] = 1.0 / t[j * ldt + j];
    for (index_t i = j + 1; i < nb; ++i) {
      double s = 0.0;
      for (index_t l = j; l < i; ++l) s += t[i * ldt + l] * inv[l * ldi + j];
      inv[i * ldi + j] = -s / t[i * ldt + i];
    }
  }
}

void tri_inv_uu_block(const double* t, index_t ldt, double* inv, index_t ldi,
                      index_t nb) {
  for (index_t j = 0; j < nb; ++j) {
    inv[j * ldi + j] = 1.0 / t[j * ldt + j];
    for (index_t i = j - 1; i >= 0; --i) {
      double s = 0.0;
      for (index_t l = i + 1; l <= j; ++l)
        s += t[i * ldt + l] * inv[l * ldi + j];
      inv[i * ldi + j] = -s / t[i * ldt + i];
    }
  }
}

}  // namespace catrsm::la::kernel
