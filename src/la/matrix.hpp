#pragma once
// Dense row-major matrix type used for all local (per-rank) storage.
//
// Design notes (per C++ Core Guidelines): owning value type with RAII
// storage, cheap moves, no implicit expensive copies hidden behind
// operators; element access is bounds-checked through CATRSM_ASSERT only in
// the (i, j) accessor used outside of kernels — kernels index the raw span.

#include <cstddef>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace catrsm::la {

using index_t = long long;

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(index_t rows, index_t cols);

  /// rows x cols matrix from existing row-major data (size must match).
  Matrix(index_t rows, index_t cols, std::vector<double> data);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  double& operator()(index_t i, index_t j) {
    CATRSM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                  "matrix index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(index_t i, index_t j) const {
    CATRSM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                  "matrix index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Raw row-major storage (kernels use this; size() elements).
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }
  double* ptr() { return data_.data(); }
  const double* ptr() const { return data_.data(); }

  /// Copy of the block [i0, i0+r) x [j0, j0+c).
  Matrix block(index_t i0, index_t j0, index_t r, index_t c) const;

  /// Write src into the block starting at (i0, j0).
  void set_block(index_t i0, index_t j0, const Matrix& src);

  /// In-place += / -= of a same-shape matrix.
  void add(const Matrix& other);
  void sub(const Matrix& other);
  void scale(double s);

  /// New transposed copy.
  Matrix transposed() const;

  /// Exact elementwise equality (used by determinism tests).
  bool equals(const Matrix& other) const;

  static Matrix identity(index_t n);
  static Matrix zeros(index_t rows, index_t cols);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace catrsm::la
