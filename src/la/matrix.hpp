#pragma once
// Dense row-major matrix type used for all local (per-rank) storage.
//
// Design notes (per C++ Core Guidelines): owning value type with RAII
// storage, cheap moves, no implicit expensive copies hidden behind
// operators; element access is bounds-checked through CATRSM_ASSERT only in
// the (i, j) accessor used outside of kernels — kernels index the raw span.

#include <cstddef>
#include <new>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace catrsm::la {

using index_t = long long;

/// Minimal allocator giving matrix storage cache-line (64-byte) alignment.
/// SIMD kernels get aligned loads for free, and the non-temporal store
/// fast path — which hard-requires 64-byte-aligned rows — can engage on
/// Matrix-backed outputs instead of only on incidental allocations.
template <class T>
struct CacheAlignedAlloc {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  CacheAlignedAlloc() = default;
  template <class U>
  CacheAlignedAlloc(const CacheAlignedAlloc<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) { ::operator delete(p, kAlign); }

  template <class U>
  bool operator==(const CacheAlignedAlloc<U>&) const {
    return true;
  }
  template <class U>
  bool operator!=(const CacheAlignedAlloc<U>&) const {
    return false;
  }
};

using aligned_vector = std::vector<double, CacheAlignedAlloc<double>>;

class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(index_t rows, index_t cols);

  /// rows x cols matrix from existing row-major data (size must match).
  /// Copies into the matrix's aligned storage — a std::vector's buffer
  /// cannot be adopted at 64-byte alignment.
  Matrix(index_t rows, index_t cols, const std::vector<double>& data);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }

  double& operator()(index_t i, index_t j) {
    CATRSM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                  "matrix index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  double operator()(index_t i, index_t j) const {
    CATRSM_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                  "matrix index out of range");
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  /// Raw row-major storage (kernels use this; size() elements).
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }
  double* ptr() { return data_.data(); }
  const double* ptr() const { return data_.data(); }

  /// Copy of the block [i0, i0+r) x [j0, j0+c).
  Matrix block(index_t i0, index_t j0, index_t r, index_t c) const;

  /// Write src into the block starting at (i0, j0).
  void set_block(index_t i0, index_t j0, const Matrix& src);

  /// In-place += / -= of a same-shape matrix.
  void add(const Matrix& other);
  void sub(const Matrix& other);
  void scale(double s);

  /// New transposed copy.
  Matrix transposed() const;

  /// Exact elementwise equality (used by determinism tests).
  bool equals(const Matrix& other) const;

  static Matrix identity(index_t n);
  static Matrix zeros(index_t rows, index_t cols);

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_vector data_;
};

}  // namespace catrsm::la
