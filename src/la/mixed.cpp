#include "la/mixed.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <vector>

#include "la/kernel/kernel.hpp"
#include "la/kernel/small_tri.hpp"
#include "la/norms.hpp"
#include "la/trmm.hpp"

namespace catrsm::la {

namespace {

// Same diagonal-block granularity as the f64 solve (trsm.cpp): the scalar
// substitution fraction of the work is nb / n either way.
constexpr index_t kDiagBlock = 64;

}  // namespace

void trsm_left_f32(Uplo uplo, Diag diag, index_t n, index_t k, const float* l,
                   index_t ldl, float* b, index_t ldb) {
  if (n == 0 || k == 0) return;
  const bool unit = diag == Diag::kUnit;

  if (uplo == Uplo::kLower) {
    for (index_t i0 = 0; i0 < n; i0 += kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      if (i0 > 0)
        kernel::gemm_f32(nb, k, i0, -1.0f, l + i0 * ldl, ldl, b, ldb, 1.0f,
                         b + i0 * ldb, ldb);
      kernel::trsm_ll_block_f32(l + i0 * ldl + i0, ldl, b + i0 * ldb, ldb, nb,
                                k, unit);
    }
  } else {
    for (index_t i0 = ((n - 1) / kDiagBlock) * kDiagBlock;; i0 -= kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      const index_t t0 = i0 + nb;
      if (t0 < n)
        kernel::gemm_f32(nb, k, n - t0, -1.0f, l + i0 * ldl + t0, ldl,
                         b + t0 * ldb, ldb, 1.0f, b + i0 * ldb, ldb);
      kernel::trsm_lu_block_f32(l + i0 * ldl + i0, ldl, b + i0 * ldb, ldb, nb,
                                k, unit);
      if (i0 == 0) break;
    }
  }
}

RefineStats trsm_refined(Uplo uplo, Diag diag, const Matrix& l, Matrix& b,
                         int max_iters) {
  CATRSM_CHECK(l.rows() == l.cols(), "trsm_refined: L must be square");
  CATRSM_CHECK(l.rows() == b.rows(), "trsm_refined: dimension mismatch");
  const index_t n = l.rows();
  const index_t k = b.cols();
  RefineStats stats;
  if (n == 0 || k == 0) {
    stats.converged = true;
    return stats;
  }
  for (index_t i = 0; i < n; ++i)
    CATRSM_CHECK(l(i, i) != 0.0, "trsm_refined: singular triangular matrix");

  // Sanity bound for the converged flag: a backward-stable f64
  // substitution lands a relative residual far below n * eps, so a best
  // iterate above this bound means the f32 half genuinely broke down
  // (cond(L) * eps_f32 >= 1) rather than merely stopping at its floor.
  // The bound does NOT gate the iteration — refinement runs until the
  // residual stops contracting, because its floor (set by f64 rounding
  // of the residual itself) sits orders of magnitude below any a-priori
  // threshold and the acceptance contract is "matches the pure-f64
  // residual", not "is small".
  const double target = 8.0 * static_cast<double>(n) * DBL_EPSILON;

  const std::size_t ln = static_cast<std::size_t>(n) * n;
  const std::size_t bn = static_cast<std::size_t>(n) * k;
  std::vector<float> lf(ln), rhs32(bn);
  for (std::size_t i = 0; i < ln; ++i)
    lf[i] = static_cast<float>(l.data()[i]);

  const Matrix b0 = b;  // original right-hand side, read by every residual

  // Initial solve entirely in f32.
  for (std::size_t i = 0; i < bn; ++i)
    rhs32[i] = static_cast<float>(b0.data()[i]);
  trsm_left_f32(uplo, diag, n, k, lf.data(), n, rhs32.data(), k);
  Matrix x(n, k);
  for (std::size_t i = 0; i < bn; ++i)
    x.data()[i] = static_cast<double>(rhs32[i]);

  Matrix best = x;
  double best_res = -1.0;
  double prev_res = -1.0;
  for (int it = 0; it <= max_iters; ++it) {
    // f64 residual r = B - L * x (TRMM exploits the triangle).
    Matrix r = trmm(uplo, l, x);
    if (diag == Diag::kUnit) {
      // trmm multiplies by the stored diagonal; a unit solve's operator
      // has an implicit unit diagonal instead. Patch: r += (I - D) * x.
      for (index_t i = 0; i < n; ++i) {
        const double d = 1.0 - l(i, i);
        for (index_t j = 0; j < k; ++j) r(i, j) += d * x(i, j);
      }
    }
    for (std::size_t i = 0; i < bn; ++i)
      r.data()[i] = b0.data()[i] - r.data()[i];

    const double denom = frobenius_norm(l) * frobenius_norm(x) +
                         frobenius_norm(b0);
    const double res =
        denom > 0.0 ? frobenius_norm(r) / denom : frobenius_norm(r);
    if (best_res < 0.0 || res < best_res) {
      best_res = res;
      best = x;
    }
    stats.residual = best_res;
    // Stalled at the floor: a healthy refinement contracts the residual
    // by roughly eps_f32 per pass; anything under 2x means the f32
    // correction solve can no longer reduce the f64 residual — either
    // the iterate is done (floor) or cond(L) * eps_f32 is too large
    // (breakdown). Keep the best iterate either way; the converged flag
    // below tells the two apart.
    if (it == max_iters || (prev_res >= 0.0 && res > 0.5 * prev_res)) break;
    prev_res = res;

    // f32 correction: solve L * d = r, then x += d in f64.
    for (std::size_t i = 0; i < bn; ++i)
      rhs32[i] = static_cast<float>(r.data()[i]);
    trsm_left_f32(uplo, diag, n, k, lf.data(), n, rhs32.data(), k);
    for (std::size_t i = 0; i < bn; ++i)
      x.data()[i] += static_cast<double>(rhs32[i]);
    ++stats.iterations;
  }

  stats.converged = best_res <= target;
  b = std::move(best);
  return stats;
}

}  // namespace catrsm::la
