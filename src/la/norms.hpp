#pragma once
// Norms and residual measures used by correctness tests and examples.

#include "la/matrix.hpp"

namespace catrsm::la {

double frobenius_norm(const Matrix& a);
double max_abs(const Matrix& a);

/// Max elementwise |a - b|.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Relative forward residual ||L*X - B||_F / (||L||_F ||X||_F + ||B||_F).
/// Small (≈ machine epsilon * n) for a backward-stable solve.
double trsm_residual(const Matrix& l, const Matrix& x, const Matrix& b);

/// Inversion residual ||L * Linv - I||_F / n.
double inv_residual(const Matrix& l, const Matrix& linv);

}  // namespace catrsm::la
