#include "la/tri_inv.hpp"

#include "la/gemm.hpp"

namespace catrsm::la {

namespace {

// Direct inversion by substitution against the identity; cubic in n but only
// ever used for the recursion's small base cases (the blocked trsm resolves
// a base block with one scalar diagonal solve).
Matrix tri_inv_base(Uplo uplo, const Matrix& t) {
  Matrix inv = Matrix::identity(t.rows());
  trsm_left(uplo, Diag::kNonUnit, t, inv);
  return inv;
}

}  // namespace

Matrix tri_inv(Uplo uplo, const Matrix& t, index_t block_cutoff) {
  CATRSM_CHECK(t.rows() == t.cols(), "tri_inv: matrix must be square");
  CATRSM_CHECK(block_cutoff >= 1, "tri_inv: cutoff must be positive");
  const index_t n = t.rows();
  for (index_t i = 0; i < n; ++i)
    CATRSM_CHECK(t(i, i) != 0.0, "tri_inv: singular triangular matrix");

  if (n <= block_cutoff) return tri_inv_base(uplo, t);

  const index_t h = n / 2;
  Matrix inv(n, n);
  if (uplo == Uplo::kLower) {
    const Matrix l11 = t.block(0, 0, h, h);
    const Matrix l21 = t.block(h, 0, n - h, h);
    const Matrix l22 = t.block(h, h, n - h, n - h);
    const Matrix i11 = tri_inv(uplo, l11, block_cutoff);
    const Matrix i22 = tri_inv(uplo, l22, block_cutoff);
    // -L22^-1 * L21 * L11^-1, composed as two packed-GEMM products like the
    // parallel algorithm (lines 12-13 of RecTriInv) so flop counts line up;
    // the minus folds into the first product's alpha.
    Matrix tmp(n - h, h);
    gemm(-1.0, i22, l21, 0.0, tmp);
    const Matrix i21 = matmul(tmp, i11);
    inv.set_block(0, 0, i11);
    inv.set_block(h, 0, i21);
    inv.set_block(h, h, i22);
  } else {
    const Matrix u11 = t.block(0, 0, h, h);
    const Matrix u12 = t.block(0, h, h, n - h);
    const Matrix u22 = t.block(h, h, n - h, n - h);
    const Matrix i11 = tri_inv(uplo, u11, block_cutoff);
    const Matrix i22 = tri_inv(uplo, u22, block_cutoff);
    Matrix tmp(h, n - h);
    gemm(-1.0, i11, u12, 0.0, tmp);
    const Matrix i12 = matmul(tmp, i22);
    inv.set_block(0, 0, i11);
    inv.set_block(0, h, i12);
    inv.set_block(h, h, i22);
  }
  return inv;
}

double tri_inv_flops(index_t n) {
  // F(n) = 2 F(n/2) + 2 * gemm(n/2) ≈ n^3/3; we report the closed form the
  // cost model uses rather than re-deriving the recurrence at runtime.
  const double nn = static_cast<double>(n);
  return nn * nn * nn / 3.0;
}

}  // namespace catrsm::la
