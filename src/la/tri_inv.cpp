#include "la/tri_inv.hpp"

#include <algorithm>

#include "la/kernel/kernel.hpp"
#include "la/kernel/small_tri.hpp"
#include "la/trmm.hpp"

namespace catrsm::la {

// Blocked triangular inversion, processed one block COLUMN at a time so
// that every off-diagonal flop runs through a full-width packed panel.
// For lower triangular T, walking block columns right-to-left keeps the
// trailing inverse X22 = T22^-1 finished before column j needs it:
//
//   X(jj)   = T(jj)^-1                      (scalar substitution, nb wide)
//   X(b, j) = -X(b, b) * T(b, j) * X(jj)    (b = rows below the block)
//
// composed as one nb-wide GEMM (the minus and the small X(jj) fold into
// it) followed by one strided TRMM against the trailing inverse — whose
// own off-diagonal work is again packed GEMM panels. The executed flop
// count telescopes to the algorithm's intrinsic n^3/3 (+ O(n^2 nb)),
// where the old half-splitting recursion multiplied its triangular
// factors as DENSE half-size GEMMs and executed ~2x that. Upper
// triangular mirrors left-to-right with the leading inverse.
//
// Both writers touch only the stored triangle, so the strict opposite
// triangle of the zero-initialized result stays exactly zero (the
// property the exact-triangularity tests pin down).

Matrix tri_inv(Uplo uplo, const Matrix& t, index_t block_cutoff) {
  CATRSM_CHECK(t.rows() == t.cols(), "tri_inv: matrix must be square");
  CATRSM_CHECK(block_cutoff >= 1, "tri_inv: cutoff must be positive");
  const index_t n = t.rows();
  for (index_t i = 0; i < n; ++i)
    CATRSM_CHECK(t(i, i) != 0.0, "tri_inv: singular triangular matrix");

  Matrix inv(n, n);
  if (n == 0) return inv;
  const index_t nb = std::min(block_cutoff, n);
  const double* tp = t.ptr();
  double* ip = inv.ptr();

  if (uplo == Uplo::kLower) {
    for (index_t j0 = ((n - 1) / nb) * nb;; j0 -= nb) {
      const index_t jb = std::min(nb, n - j0);
      kernel::tri_inv_ll_block(tp + j0 * n + j0, n, ip + j0 * n + j0, n, jb);
      const index_t t0 = j0 + jb;
      if (t0 < n) {
        // inv(t0:, j) = T(t0:, j) * inv(jj); inv(jj)'s strict upper is
        // exactly zero, so reading it as a dense jb x jb block is safe.
        kernel::gemm(n - t0, jb, jb, -1.0, tp + t0 * n + j0, n,
                     ip + j0 * n + j0, n, 0.0, ip + t0 * n + j0, n);
        // inv(t0:, j) := inv(t0:, t0:) * inv(t0:, j) — the trailing
        // inverse is complete (columns are built right-to-left).
        trmm_left_strided(Uplo::kLower, Diag::kNonUnit, n - t0, jb,
                          ip + t0 * n + t0, n, ip + t0 * n + j0, n);
      }
      if (j0 == 0) break;
    }
  } else {
    for (index_t j0 = 0; j0 < n; j0 += nb) {
      const index_t jb = std::min(nb, n - j0);
      kernel::tri_inv_uu_block(tp + j0 * n + j0, n, ip + j0 * n + j0, n, jb);
      if (j0 > 0) {
        kernel::gemm(j0, jb, jb, -1.0, tp + j0, n, ip + j0 * n + j0, n, 0.0,
                     ip + j0, n);
        trmm_left_strided(Uplo::kUpper, Diag::kNonUnit, j0, jb, ip, n,
                          ip + j0, n);
      }
    }
  }
  return inv;
}

double tri_inv_flops(index_t n) {
  // F(n) ≈ n^3/3: the blocked sweep's TRMM columns telescope to exactly
  // the closed form the cost model charges.
  const double nn = static_cast<double>(n);
  return nn * nn * nn / 3.0;
}

}  // namespace catrsm::la
