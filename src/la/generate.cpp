#include "la/generate.hpp"

#include <cmath>

#include "la/gemm.hpp"

namespace catrsm::la {

double element_hash(std::uint64_t seed, index_t i, index_t j) {
  // splitmix64 over a mixed key; maps to [-1, 1).
  std::uint64_t z = seed ^ (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL) ^
                    (static_cast<std::uint64_t>(j) + 0xbf58476d1ce4e5b9ULL);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  // 53-bit mantissa to double in [0,1), then shift to [-1,1).
  const double u = static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  return 2.0 * u - 1.0;
}

double tri_entry(std::uint64_t seed, index_t i, index_t j, index_t n) {
  if (j > i) return 0.0;
  const double h = element_hash(seed, i, j);
  if (i == j) return 1.5 + 0.5 * h;  // diagonal in [1, 2]
  return h / static_cast<double>(n);
}

double rhs_entry(std::uint64_t seed, index_t i, index_t j) {
  return element_hash(seed ^ 0xabcdef1234567890ULL, i, j);
}

Matrix make_lower_triangular(std::uint64_t seed, index_t n) {
  Matrix l(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j <= i; ++j) l(i, j) = tri_entry(seed, i, j, n);
  return l;
}

Matrix make_upper_triangular(std::uint64_t seed, index_t n) {
  Matrix u(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i; j < n; ++j) u(i, j) = tri_entry(seed, j, i, n);
  return u;
}

Matrix make_rhs(std::uint64_t seed, index_t n, index_t k) {
  Matrix b(n, k);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < k; ++j) b(i, j) = rhs_entry(seed, i, j);
  return b;
}

Matrix make_dense(std::uint64_t seed, index_t rows, index_t cols) {
  Matrix a(rows, cols);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j) a(i, j) = element_hash(seed, i, j);
  return a;
}

Matrix make_spd(std::uint64_t seed, index_t n) {
  const Matrix l = make_lower_triangular(seed, n);
  return matmul(l, l.transposed());
}

Matrix cholesky(const Matrix& a) {
  CATRSM_CHECK(a.rows() == a.cols(), "cholesky: matrix must be square");
  const index_t n = a.rows();
  Matrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (index_t t = 0; t < j; ++t) d -= l(j, t) * l(j, t);
    CATRSM_CHECK(d > 0.0, "cholesky: matrix not positive definite");
    const double ljj = std::sqrt(d);
    l(j, j) = ljj;
    for (index_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (index_t t = 0; t < j; ++t) s -= l(i, t) * l(j, t);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

}  // namespace catrsm::la
