#include "la/norms.hpp"

#include <cmath>

#include "la/gemm.hpp"

namespace catrsm::la {

double frobenius_norm(const Matrix& a) {
  double s = 0.0;
  for (const double v : a.data()) s += v * v;
  return std::sqrt(s);
}

double max_abs(const Matrix& a) {
  double m = 0.0;
  for (const double v : a.data()) m = std::max(m, std::abs(v));
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  CATRSM_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

double trsm_residual(const Matrix& l, const Matrix& x, const Matrix& b) {
  Matrix r = b;
  gemm(1.0, l, x, -1.0, r);  // r = L*X - B (sign irrelevant for norms)
  const double denom =
      frobenius_norm(l) * frobenius_norm(x) + frobenius_norm(b);
  return denom == 0.0 ? frobenius_norm(r) : frobenius_norm(r) / denom;
}

double inv_residual(const Matrix& l, const Matrix& linv) {
  Matrix prod = matmul(l, linv);
  Matrix eye = Matrix::identity(l.rows());
  prod.sub(eye);
  return frobenius_norm(prod) / static_cast<double>(l.rows());
}

}  // namespace catrsm::la
