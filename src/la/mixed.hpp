#pragma once
// Mixed-precision triangular solve: run the O(n^2 k) substitution sweep in
// f32 (twice the SIMD lanes per FMA, half the memory traffic), then
// recover f64 accuracy with iterative refinement — residual and
// correction accumulation in f64, each correction solved in f32 again.
// Classic Wilkinson iterative refinement specialized to a triangular
// system: no factorization step, the triangle IS the factor, so the f32
// "factor + solve" is just the blocked substitution and every refinement
// pass costs one f64 TRMM (residual) plus one f32 TRSM (correction).
//
// Convergence contract: when cond(L) * eps_f32 < 1 the iteration
// contracts and the final f64 backward error matches a pure-f64 solve to
// within a small constant factor (the acceptance bar is 10x). For
// triangles so ill-conditioned that f32 substitution breaks down
// entirely, the iteration stops improving; trsm_refined detects the
// stall, keeps the best iterate, and reports converged = false so
// callers can fall back to the pure-f64 path.

#include "la/matrix.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {

/// Blocked f32 left triangular solve on raw row-major storage, the exact
/// single-precision twin of trsm_left: L is n x n with leading dim ldl
/// (only the `uplo` triangle is read), B is n x k with leading dim ldb
/// and is overwritten with the solution. Off-diagonal panels go through
/// kernel::gemm_f32; diagonal blocks through the f32 substitution blocks.
void trsm_left_f32(Uplo uplo, Diag diag, index_t n, index_t k, const float* l,
                   index_t ldl, float* b, index_t ldb);

/// What a refined solve did and how well it did it.
struct RefineStats {
  int iterations = 0;     // f32 correction solves AFTER the initial one
  double residual = 0.0;  // final relative residual (trsm_residual measure)
  bool converged = false;  // hit the f64-level residual target
};

/// Solve L * X = B in place (B := X) in mixed precision: initial f32
/// solve, then up to max_iters refinement passes (f64 residual, f32
/// correction). Stops at the f64-level residual target, or keeps the best
/// iterate and reports converged = false when refinement stalls.
RefineStats trsm_refined(Uplo uplo, Diag diag, const Matrix& l, Matrix& b,
                         int max_iters = 8);

/// Flops for one refined solve with i refinement iterations: the initial
/// f32 solve + i * (f64 trmm residual + f32 correction solve), counted in
/// multiply-adds like trsm_flops. The f32/f64 split is the caller's
/// business; the simulator charges flops, not precision.
constexpr double trsm_refined_flops(index_t n, index_t k, int iters) {
  return trsm_flops(n, k) * (1.0 + 2.0 * iters);
}

}  // namespace catrsm::la
