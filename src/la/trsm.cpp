#include "la/trsm.hpp"

#include <cmath>

namespace catrsm::la {

namespace {

void check_trsm_args(const Matrix& t, const Matrix& b, bool left) {
  CATRSM_CHECK(t.rows() == t.cols(), "trsm: triangular matrix must be square");
  const index_t need = left ? b.rows() : b.cols();
  CATRSM_CHECK(t.rows() == need, "trsm: dimension mismatch with RHS");
  for (index_t i = 0; i < t.rows(); ++i)
    CATRSM_CHECK(t(i, i) != 0.0, "trsm: singular triangular matrix");
}

}  // namespace

void trsm_left(Uplo uplo, Diag diag, const Matrix& l, Matrix& b) {
  check_trsm_args(l, b, /*left=*/true);
  const index_t n = l.rows();
  const index_t k = b.cols();
  const bool unit = diag == Diag::kUnit;

  if (uplo == Uplo::kLower) {
    // Forward substitution, row i of X depends on rows < i.
    for (index_t i = 0; i < n; ++i) {
      double* bi = b.ptr() + i * k;
      for (index_t j = 0; j < i; ++j) {
        const double lij = l(i, j);
        if (lij == 0.0) continue;
        const double* bj = b.ptr() + j * k;
        for (index_t c = 0; c < k; ++c) bi[c] -= lij * bj[c];
      }
      if (!unit) {
        const double inv = 1.0 / l(i, i);
        for (index_t c = 0; c < k; ++c) bi[c] *= inv;
      }
    }
  } else {
    // Backward substitution.
    for (index_t i = n - 1; i >= 0; --i) {
      double* bi = b.ptr() + i * k;
      for (index_t j = i + 1; j < n; ++j) {
        const double uij = l(i, j);
        if (uij == 0.0) continue;
        const double* bj = b.ptr() + j * k;
        for (index_t c = 0; c < k; ++c) bi[c] -= uij * bj[c];
      }
      if (!unit) {
        const double inv = 1.0 / l(i, i);
        for (index_t c = 0; c < k; ++c) bi[c] *= inv;
      }
    }
  }
}

void trsm_right(Uplo uplo, Diag diag, const Matrix& u, Matrix& b) {
  check_trsm_args(u, b, /*left=*/false);
  const index_t n = u.rows();
  const index_t m = b.rows();
  const bool unit = diag == Diag::kUnit;

  if (uplo == Uplo::kUpper) {
    // X * U = B: column j of X depends on columns < j.
    for (index_t j = 0; j < n; ++j) {
      for (index_t l = 0; l < j; ++l) {
        const double ulj = u(l, j);
        if (ulj == 0.0) continue;
        for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * ulj;
      }
      if (!unit) {
        const double inv = 1.0 / u(j, j);
        for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
      }
    }
  } else {
    // X * L = B: column j depends on columns > j.
    for (index_t j = n - 1; j >= 0; --j) {
      for (index_t l = j + 1; l < n; ++l) {
        const double llj = u(l, j);
        if (llj == 0.0) continue;
        for (index_t i = 0; i < m; ++i) b(i, j) -= b(i, l) * llj;
      }
      if (!unit) {
        const double inv = 1.0 / u(j, j);
        for (index_t i = 0; i < m; ++i) b(i, j) *= inv;
      }
    }
  }
}

Matrix solve_lower(const Matrix& l, const Matrix& b) {
  Matrix x = b;
  trsm_left(Uplo::kLower, Diag::kNonUnit, l, x);
  return x;
}

Matrix solve_upper(const Matrix& u, const Matrix& b) {
  Matrix x = b;
  trsm_left(Uplo::kUpper, Diag::kNonUnit, u, x);
  return x;
}

}  // namespace catrsm::la
