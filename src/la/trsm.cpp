#include "la/trsm.hpp"

#include <algorithm>

#include "la/kernel/kernel.hpp"
#include "la/kernel/small_tri.hpp"

namespace catrsm::la {

namespace {

// Diagonal blocks of this size are solved by scalar substitution; all
// off-diagonal work is shipped to the packed GEMM micro-kernel, so the
// scalar fraction of an n x n solve is nb / n.
constexpr index_t kDiagBlock = 64;

void check_trsm_args(const Matrix& t, const Matrix& b, bool left) {
  CATRSM_CHECK(t.rows() == t.cols(), "trsm: triangular matrix must be square");
  const index_t need = left ? b.rows() : b.cols();
  CATRSM_CHECK(t.rows() == need, "trsm: dimension mismatch with RHS");
  for (index_t i = 0; i < t.rows(); ++i)
    CATRSM_CHECK(t(i, i) != 0.0, "trsm: singular triangular matrix");
}

}  // namespace

void trsm_left(Uplo uplo, Diag diag, const Matrix& l, Matrix& b) {
  check_trsm_args(l, b, /*left=*/true);
  const index_t n = l.rows();
  const index_t k = b.cols();
  if (n == 0 || k == 0) return;
  const bool unit = diag == Diag::kUnit;
  const double* tp = l.ptr();
  double* bp = b.ptr();

  if (uplo == Uplo::kLower) {
    // Forward substitution by block row: fold the already-solved rows in
    // with one GEMM panel, then substitute within the diagonal block.
    for (index_t i0 = 0; i0 < n; i0 += kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      if (i0 > 0)
        kernel::gemm(nb, k, i0, -1.0, tp + i0 * n, n, bp, k, 1.0,
                     bp + i0 * k, k);
      kernel::trsm_ll_block(tp + i0 * n + i0, n, bp + i0 * k, k, nb, k, unit);
    }
  } else {
    // Backward substitution, block rows bottom-up.
    for (index_t i0 = ((n - 1) / kDiagBlock) * kDiagBlock;; i0 -= kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - i0);
      const index_t t0 = i0 + nb;
      if (t0 < n)
        kernel::gemm(nb, k, n - t0, -1.0, tp + i0 * n + t0, n, bp + t0 * k, k,
                     1.0, bp + i0 * k, k);
      kernel::trsm_lu_block(tp + i0 * n + i0, n, bp + i0 * k, k, nb, k, unit);
      if (i0 == 0) break;
    }
  }
}

void trsm_right(Uplo uplo, Diag diag, const Matrix& u, Matrix& b) {
  check_trsm_args(u, b, /*left=*/false);
  const index_t n = u.rows();
  const index_t m = b.rows();
  if (n == 0 || m == 0) return;
  const bool unit = diag == Diag::kUnit;
  const double* tp = u.ptr();
  double* bp = b.ptr();

  if (uplo == Uplo::kUpper) {
    // X * U = B: column block j depends on already-solved columns < j.
    for (index_t j0 = 0; j0 < n; j0 += kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - j0);
      if (j0 > 0)
        kernel::gemm(m, nb, j0, -1.0, bp, n, tp + j0, n, 1.0, bp + j0, n);
      kernel::trsm_ru_block(tp + j0 * n + j0, n, bp + j0, n, m, nb, unit);
    }
  } else {
    // X * L = B: column block j depends on columns > j, walk right-to-left.
    for (index_t j0 = ((n - 1) / kDiagBlock) * kDiagBlock;; j0 -= kDiagBlock) {
      const index_t nb = std::min(kDiagBlock, n - j0);
      const index_t t0 = j0 + nb;
      if (t0 < n)
        kernel::gemm(m, nb, n - t0, -1.0, bp + t0, n, tp + t0 * n + j0, n,
                     1.0, bp + j0, n);
      kernel::trsm_rl_block(tp + j0 * n + j0, n, bp + j0, n, m, nb, unit);
      if (j0 == 0) break;
    }
  }
}

Matrix solve_lower(const Matrix& l, const Matrix& b) {
  Matrix x = b;
  trsm_left(Uplo::kLower, Diag::kNonUnit, l, x);
  return x;
}

Matrix solve_upper(const Matrix& u, const Matrix& b) {
  Matrix x = b;
  trsm_left(Uplo::kUpper, Diag::kNonUnit, u, x);
  return x;
}

}  // namespace catrsm::la
