#include "model/tuning.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace catrsm::model {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kRecursive:
      return "rec-trsm";
    case Algorithm::kIterative:
      return "it-inv-trsm";
    case Algorithm::kTrsm2D:
      return "trsm-2d";
    case Algorithm::kTrsv1D:
      return "trsv-1d";
  }
  return "?";
}

std::pair<int, int> nearest_grid(int p, double ideal_p1) {
  CATRSM_CHECK(p >= 1, "nearest_grid: p must be positive");
  int best_p1 = 1;
  double best_gap = std::numeric_limits<double>::max();
  for (int p1 = 1; p1 * p1 <= p; ++p1) {
    if (p % (p1 * p1) != 0) continue;
    const double gap = std::abs(std::log2(static_cast<double>(p1)) -
                                std::log2(std::max(ideal_p1, 1.0)));
    if (gap < best_gap) {
      best_gap = gap;
      best_p1 = p1;
    }
  }
  return {best_p1, p / (best_p1 * best_p1)};
}

namespace {

/// Recursive-grid shape per Section IV: pc = max(sqrt p, min(p, sqrt(pk/n)))
/// rounded to a valid pr * pc = p factorization with pr | pc.
std::pair<int, int> rec_grid(long long n, long long k, int p) {
  const double ideal_pc = std::max(
      std::sqrt(static_cast<double>(p)),
      std::min(static_cast<double>(p),
               std::sqrt(static_cast<double>(p) * k / std::max<long long>(n, 1))));
  int best_pr = 1, best_pc = p;
  double best_gap = std::numeric_limits<double>::max();
  for (int pr = 1; pr * pr <= p; ++pr) {
    if (p % pr != 0) continue;
    const int pc = p / pr;
    if (pc % pr != 0) continue;  // rec_trsm requires pr | pc
    const double gap =
        std::abs(std::log2(static_cast<double>(pc)) - std::log2(ideal_pc));
    if (gap < best_gap) {
      best_gap = gap;
      best_pr = pr;
      best_pc = pc;
    }
  }
  return {best_pr, best_pc};
}

}  // namespace

Config configure_forced(long long n, long long k, int p, Algorithm force) {
  CATRSM_CHECK(n >= 1 && k >= 1 && p >= 1, "configure: bad problem shape");
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double dp = static_cast<double>(p);

  Config cfg;
  cfg.regime = classify(dn, dk, dp);
  cfg.algorithm = force;

  const Tuning t = tune(dn, dk, dp);
  const auto [p1, p2] = nearest_grid(p, t.p1);
  cfg.p1 = p1;
  cfg.p2 = p2;
  cfg.nblocks = std::clamp<int>(
      static_cast<int>(std::llround(dn / std::max(t.n0, 1.0))), 1,
      static_cast<int>(std::min<long long>(n, p)));
  const auto [pr, pc] = rec_grid(n, k, p);
  cfg.pr = pr;
  cfg.pc = pc;

  switch (force) {
    case Algorithm::kIterative:
      cfg.predicted =
          it_inv_breakdown(dn, dk, dn / cfg.nblocks, cfg.p1, cfg.p2, t.r1,
                           t.r2)
              .total();
      break;
    case Algorithm::kRecursive:
      cfg.predicted = rec_trsm_cost(dn, dk, dp);
      break;
    case Algorithm::kTrsm2D: {
      const double nb = std::max(1.0, dn / (4.0 * std::sqrt(dp)));
      cfg.predicted = Cost{dn / nb * log2p(dp),
                           dn * dn / cfg.pr + dn * dk / cfg.pc + dn * nb,
                           dn * dn * dk / dp};
      break;
    }
    case Algorithm::kTrsv1D:
      cfg.predicted = Cost{2.0 * dn, dn * dk, dn * dn * dk / dp};
      break;
  }
  return cfg;
}

Config configure(long long n, long long k, int p, sim::MachineParams mp) {
  // Single-vector solves: the Heath-Romine ring is the classical optimum
  // and the matrix-algorithm cost models are unreliable there (their
  // leading-order forms drop the base-case terms that dominate at k = 1).
  if (k == 1 && n > p) return configure_forced(n, k, p, Algorithm::kTrsv1D);

  // Otherwise evaluate every matrix algorithm's predicted time under the
  // machine parameters and take the minimum — the a-priori decision
  // procedure the paper's analysis enables.
  Config best;
  double best_time = std::numeric_limits<double>::max();
  for (const Algorithm a : {Algorithm::kIterative, Algorithm::kRecursive,
                            Algorithm::kTrsm2D}) {
    const Config cfg = configure_forced(n, k, p, a);
    const double t = cfg.predicted.time(mp);
    if (t < best_time) {
      best_time = t;
      best = cfg;
    }
  }
  return best;
}

}  // namespace catrsm::model
