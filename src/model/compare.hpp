#pragma once
// Generator for the paper's Section IX conclusion table: standard
// (recursive) versus new (iterative, selective-inversion) TRSM costs in
// each of the three regimes, plus the predicted improvement factors.

#include <string>
#include <vector>

#include "model/costs.hpp"

namespace catrsm::model {

struct ComparisonRow {
  Regime regime;
  double n, k, p;
  Cost standard;  // recursive TRSM (Section IV)
  Cost novel;     // iterative TRSM (Sections VI-VIII)
  /// Predicted latency improvement factor standard.S / novel.S.
  double latency_gain() const;
  /// The paper's asymptotic latency-gain expression for the 3D regime:
  /// (n/k)^{1/6} p^{2/3} (up to log factors).
  double predicted_gain_3d() const;
};

/// One row for a given problem shape.
ComparisonRow compare(double n, double k, double p);

/// The three canonical rows of the Section IX table: a representative
/// (n, k) in each regime for the given p.
std::vector<ComparisonRow> section9_rows(double p);

/// Render a row's regime/sizes as a short label.
std::string row_label(const ComparisonRow& row);

}  // namespace catrsm::model
