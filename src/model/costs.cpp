#include "model/costs.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace catrsm::model {

double nu() { return std::cbrt(2.0) / (std::cbrt(2.0) - 1.0); }

double log2p(double p) { return std::max(1.0, std::log2(p)); }

namespace {
double ind(bool cond) { return cond ? 1.0 : 0.0; }
}  // namespace

// ---------------------------------------------------------------------------
// Section II-C1.

Cost allgather_cost(double n, double p) {
  return Cost{log2p(p), n * ind(p > 1), 0.0};
}
Cost scatter_cost(double n, double p) {
  return Cost{log2p(p), n * ind(p > 1), 0.0};
}
Cost gather_cost(double n, double p) {
  return Cost{log2p(p), n * ind(p > 1), 0.0};
}
Cost reduce_scatter_cost(double n, double p) {
  return Cost{log2p(p), n * ind(p > 1), n * ind(p > 1)};
}
Cost bcast_cost(double n, double p) {
  return Cost{2.0 * log2p(p), 2.0 * n * ind(p > 1), 0.0};
}
Cost reduction_cost(double n, double p) {
  return Cost{2.0 * log2p(p), 2.0 * n * ind(p > 1), n * ind(p > 1)};
}
Cost allreduction_cost(double n, double p) {
  return Cost{2.0 * log2p(p), 2.0 * n * ind(p > 1), n * ind(p > 1)};
}
Cost alltoall_cost(double n, double p) {
  return Cost{log2p(p), n / 2.0 * log2p(p) * ind(p > 1), 0.0};
}

// ---------------------------------------------------------------------------
// Section III.

Cost mm_cost(double n, double k, double p1, double p2) {
  const double p = p1 * p1 * p2;
  Cost c;
  c.msgs = log2p(p);
  c.words = n * n / (p1 * p1) * ind(p2 > 1) +
            2.0 * n * k / (p1 * p2) * ind(p1 > 1) +
            n * k * log2p(p) / p;  // rectangular-grid transpose term
  c.flops = 2.0 * n * n * k / p;
  return c;
}

// ---------------------------------------------------------------------------
// Regimes. Boundaries from Section VIII: 1D when n < 4k/p, 2D when
// n > 4 k sqrt(p), 3D otherwise.

Regime classify(double n, double k, double p) {
  if (n < 4.0 * k / p) return Regime::k1D;
  if (n > 4.0 * k * std::sqrt(p)) return Regime::k2D;
  return Regime::k3D;
}

const char* regime_name(Regime r) {
  switch (r) {
    case Regime::k1D:
      return "1D";
    case Regime::k2D:
      return "2D";
    case Regime::k3D:
      return "3D";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Section IV-A.

Cost rec_trsm_cost(double n, double k, double p) {
  const double lg = log2p(p);
  switch (classify(n, k, p)) {
    case Regime::k1D:
      return Cost{lg, n * n, n * n * k / p};
    case Regime::k2D:
      return Cost{std::sqrt(p), n * k * lg / std::sqrt(p), n * n * k / p};
    case Regime::k3D:
      return Cost{std::pow(n * p / k, 2.0 / 3.0) * lg,
                  std::pow(n * n * k / p, 2.0 / 3.0), n * n * k / p};
  }
  throw Error("rec_trsm_cost: unreachable");
}

// ---------------------------------------------------------------------------
// Section V-B.

Cost tri_inv_cost(double n, double p1, double p2) {
  const double p = p1 * p1 * p2;
  Cost c;
  c.msgs = log2p(p) * log2p(p);
  c.words = nu() * (n * n / (8.0 * p1 * p1) + n * n / (2.0 * p1 * p2));
  c.flops = nu() * n * n * n / (8.0 * p);
  return c;
}

// ---------------------------------------------------------------------------
// Section VII.

ItInvBreakdown it_inv_breakdown(double n, double k, double n0, double p1,
                                double p2, double r1, double r2) {
  CATRSM_CHECK(n0 > 0 && n0 <= n, "it_inv_breakdown: need 0 < n0 <= n");
  const double p = p1 * p1 * p2;
  const double lg = log2p(p);
  const double steps = n / n0;

  ItInvBreakdown b;
  // Inversion of n/n0 diagonal blocks on r1 x r1 x r2 subgrids.
  b.inversion.msgs = lg * lg;
  b.inversion.words =
      nu() * (n0 * n0 / (8.0 * r1 * r1) + n0 * n0 / (2.0 * r1 * r2));
  b.inversion.flops = n * n0 * n0 / (8.0 * p1 * p1 * p2);

  // Solve: one small MM per diagonal block (Section VII-B).
  b.solve.msgs = steps * lg;
  b.solve.words = steps * (n0 * n0 / (p1 * p1) * ind(p2 > 1) +
                           4.0 * n0 * k / (p1 * p2) * ind(p1 > 1));
  b.solve.flops = steps * n0 * n0 * k / (p1 * p1 * p2);

  // Update: panel broadcast + two allreductions per step (Section VII-C).
  // (The paper's printed expression "4(n n0 - i n0)/p1^2" sums to
  // ~2 n (n - n0) / p1^2; we use the summed form.)
  const double upd_steps = std::max(0.0, (n - n0) / n0);
  b.update.msgs = upd_steps * lg;
  b.update.words = (n * (n - n0) / (p1 * p1)) * ind(p2 > 1) +
                   upd_steps * 4.0 * n0 * k / (p1 * p2) * ind(p1 > 1);
  b.update.flops = upd_steps * k * n * n0 / (p1 * p1 * p2);
  return b;
}

// ---------------------------------------------------------------------------
// Section VIII.

Tuning tune(double n, double k, double p) {
  Tuning t;
  t.regime = classify(n, k, p);
  switch (t.regime) {
    case Regime::k1D:
      t.p1 = 1.0;
      t.p2 = p;
      t.n0 = n;
      t.r1 = std::cbrt(p);
      t.r2 = std::cbrt(p);
      break;
    case Regime::k2D:
      t.p1 = std::sqrt(p);
      t.p2 = 1.0;
      t.n0 = std::pow(n * k * k * k * std::sqrt(p), 0.25);
      t.r1 = std::pow(k / n, 0.25) * std::pow(p, 3.0 / 8.0);
      t.r2 = t.r1;
      break;
    case Regime::k3D:
      t.p1 = std::cbrt(p * n / (4.0 * k));
      t.p2 = std::pow(std::sqrt(p) * 4.0 * k / n, 2.0 / 3.0);
      t.n0 = std::min(std::sqrt(n * k), n);
      t.r1 = std::cbrt(std::min(p * std::sqrt(n * k) / n, p));
      t.r2 = t.r1;
      break;
  }
  t.n0 = std::clamp(t.n0, 1.0, n);
  t.p1 = std::clamp(t.p1, 1.0, std::sqrt(p));
  t.p2 = std::clamp(t.p2, 1.0, p);
  return t;
}

Cost it_inv_trsm_cost(double n, double k, double p) {
  const Tuning t = tune(n, k, p);
  return it_inv_breakdown(n, k, t.n0, t.p1, t.p2, t.r1, t.r2).total();
}

}  // namespace catrsm::model
