#include "model/compare.hpp"

#include <cmath>
#include <sstream>

namespace catrsm::model {

double ComparisonRow::latency_gain() const {
  return novel.msgs > 0 ? standard.msgs / novel.msgs : 0.0;
}

double ComparisonRow::predicted_gain_3d() const {
  return std::pow(n / k, 1.0 / 6.0) * std::pow(p, 2.0 / 3.0) / log2p(p);
}

ComparisonRow compare(double n, double k, double p) {
  ComparisonRow row;
  row.regime = classify(n, k, p);
  row.n = n;
  row.k = k;
  row.p = p;
  row.standard = rec_trsm_cost(n, k, p);
  row.novel = it_inv_trsm_cost(n, k, p);
  return row;
}

std::vector<ComparisonRow> section9_rows(double p) {
  // Representative shapes: 1D has n < 4k/p, 2D has n > 4k sqrt(p), 3D sits
  // comfortably between the boundaries.
  const double n = 1 << 16;
  std::vector<ComparisonRow> rows;
  rows.push_back(compare(n, n * p, p));                  // 1D
  rows.push_back(compare(n, n / (8.0 * std::sqrt(p)), p));  // 2D
  rows.push_back(compare(n, n, p));                      // 3D
  return rows;
}

std::string row_label(const ComparisonRow& row) {
  std::ostringstream os;
  os << regime_name(row.regime) << " (n=" << row.n << ", k=" << row.k
     << ", p=" << row.p << ")";
  return os.str();
}

}  // namespace catrsm::model
