#pragma once
// Concrete (integer) parameter selection: turn the Section VIII asymptotic
// tuning into a runnable configuration — a valid factorization p = p1^2 p2,
// a block count for the diagonal inverter, and an algorithm choice.
//
// This is what a production TRSM wrapper needs at the call boundary: the
// paper gives real-valued optima; the machine needs integers that divide.

#include "model/costs.hpp"

namespace catrsm::model {

enum class Algorithm {
  kRecursive,   // Section IV
  kIterative,   // Section VI (the paper's contribution)
  kTrsm2D,      // conventional 2D fan-out baseline
  kTrsv1D,      // Heath-Romine ring (k very small)
};

const char* algorithm_name(Algorithm a);

struct Config {
  Regime regime = Regime::k3D;
  Algorithm algorithm = Algorithm::kIterative;
  int p1 = 1;       // iterative-grid shape, p1^2 * p2 == p
  int p2 = 1;
  int nblocks = 1;  // diagonal blocks for the iterative algorithm
  int pr = 1;       // recursive-grid shape, pr * pc == p
  int pc = 1;
  /// Predicted cost of the chosen algorithm at these parameters.
  sim::Cost predicted;
};

/// Factorize p as p1^2 * p2 with p1 as close as possible to `ideal_p1`.
std::pair<int, int> nearest_grid(int p, double ideal_p1);

/// Pick the algorithm and all integer parameters for an n x k solve on p
/// ranks by comparing the predicted alpha-beta-gamma times of every
/// applicable algorithm under `mp` — the a-priori decision procedure the
/// paper's cost analysis enables. `configure_forced` overrides the
/// algorithm choice (parameters still tuned).
Config configure(long long n, long long k, int p,
                 sim::MachineParams mp = sim::MachineParams{});
Config configure_forced(long long n, long long k, int p, Algorithm force);

}  // namespace catrsm::model
