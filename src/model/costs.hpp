#pragma once
// Closed-form alpha-beta-gamma cost formulas transcribed from the paper —
// the "theory side" of every benchmark. Each function returns the leading-
// order S (latency), W (bandwidth) and F (flop) terms for the named
// algorithm; benches print these next to the simulator's measurements.
//
// Sources: Section II-C1 (collectives), Section III (matrix multiply),
// Section IV-A (recursive TRSM by regime), Section V-B (triangular
// inversion), Section VII (iterative TRSM components), Section IX
// (comparison table).

#include "sim/cost.hpp"

namespace catrsm::model {

using sim::Cost;

/// nu = 2^{1/3} / (2^{1/3} - 1): the geometric-series constant of the
/// recursive inversion (Section V-B).
double nu();

/// log2 with a floor of 1 (the paper's log p terms assume p >= 2).
double log2p(double p);

// --- Section II-C1: collectives on p processors moving n words.
Cost allgather_cost(double n, double p);
Cost scatter_cost(double n, double p);
Cost gather_cost(double n, double p);
Cost reduce_scatter_cost(double n, double p);
Cost bcast_cost(double n, double p);
Cost reduction_cost(double n, double p);
Cost allreduction_cost(double n, double p);
Cost alltoall_cost(double n, double p);

// --- Section III: 3D matrix multiplication of (n x n) * (n x k) on a
// p1 x p1 x p2 grid (p = p1^2 p2).
Cost mm_cost(double n, double k, double p1, double p2);

// --- Regime classification (Section VIII / Figure 1 boundaries).
enum class Regime { k1D, k2D, k3D };
Regime classify(double n, double k, double p);
const char* regime_name(Regime r);

// --- Section IV-A: recursive TRSM total cost per regime.
Cost rec_trsm_cost(double n, double k, double p);

// --- Section V-B: recursive triangular inversion on p1 x p1 x p2.
Cost tri_inv_cost(double n, double p1, double p2);

// --- Section VII: iterative TRSM component costs.
struct ItInvBreakdown {
  Cost inversion;
  Cost solve;
  Cost update;
  Cost total() const { return inversion + solve + update; }
};
ItInvBreakdown it_inv_breakdown(double n, double k, double n0, double p1,
                                double p2, double r1, double r2);

// --- Section VIII: asymptotically optimal tuning parameters.
struct Tuning {
  Regime regime = Regime::k3D;
  double p1 = 1;
  double p2 = 1;
  double n0 = 1;
  double r1 = 1;
  double r2 = 1;
};
Tuning tune(double n, double k, double p);

/// Total iterative-TRSM cost with the Section VIII parameters.
Cost it_inv_trsm_cost(double n, double k, double p);

}  // namespace catrsm::model
