#include "sim/comm.hpp"

#include <algorithm>
#include <numeric>

namespace catrsm::sim {

Comm::Comm(Rank& rank, std::vector<int> members)
    : rank_(&rank),
      members_(std::move(members)),
      my_index_(-1),
      epoch_(rank.comm_epoch(members_)) {
  CATRSM_CHECK(!members_.empty(), "communicator cannot be empty");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const int m = members_[i];
    CATRSM_CHECK(m >= 0 && m < rank.nprocs(), "member outside machine");
    if (m == rank.id()) my_index_ = static_cast<int>(i);
  }
}

int Comm::rank() const {
  CATRSM_CHECK(my_index_ >= 0,
               "rank(): calling rank is not a member of this communicator");
  return my_index_;
}

Comm Comm::world(Rank& rank) {
  std::vector<int> all(static_cast<std::size_t>(rank.nprocs()));
  std::iota(all.begin(), all.end(), 0);
  return Comm(rank, std::move(all));
}

Comm Comm::describe(std::vector<int> members) {
  CATRSM_CHECK(!members.empty(), "communicator cannot be empty");
  Comm c;
  c.members_ = std::move(members);
  return c;
}

int Comm::world_rank(int r) const {
  CATRSM_CHECK(r >= 0 && r < size(), "communicator rank out of range");
  return members_[static_cast<std::size_t>(r)];
}

int Comm::index_of_world(int w) const {
  for (std::size_t i = 0; i < members_.size(); ++i)
    if (members_[i] == w) return static_cast<int>(i);
  return -1;
}

void Comm::send(int dst, Buffer data, int tag) const {
  CATRSM_CHECK(rank_ != nullptr, "send: describe-only communicator");
  rank_->send(world_rank(dst), std::move(data), tag);
}

Buffer Comm::recv(int src, int tag) const {
  CATRSM_CHECK(rank_ != nullptr, "recv: describe-only communicator");
  return rank_->recv(world_rank(src), tag);
}

Buffer Comm::sendrecv(int peer, Buffer data, int tag) const {
  CATRSM_CHECK(rank_ != nullptr, "sendrecv: describe-only communicator");
  return rank_->sendrecv(world_rank(peer), std::move(data), tag);
}

Buffer Comm::shift(int dst, int src, Buffer data, int tag) const {
  CATRSM_CHECK(rank_ != nullptr, "shift: describe-only communicator");
  return rank_->shift(world_rank(dst), world_rank(src), std::move(data), tag);
}

Comm Comm::subset(const std::vector<int>& indices) const {
  std::vector<int> world;
  world.reserve(indices.size());
  for (const int i : indices) world.push_back(world_rank(i));
  if (rank_ == nullptr) return describe(std::move(world));
  return Comm(*rank_, std::move(world));
}

Comm Comm::strided_fiber(int stride) const {
  CATRSM_CHECK(stride >= 1, "stride must be positive");
  CATRSM_CHECK(is_member(), "strided_fiber: requires membership");
  std::vector<int> idx;
  for (int r = rank() % stride; r < size(); r += stride) idx.push_back(r);
  return subset(idx);
}

Comm Comm::range(int begin, int count) const {
  CATRSM_CHECK(begin >= 0 && count >= 1 && begin + count <= size(),
               "range out of bounds");
  std::vector<int> idx(static_cast<std::size_t>(count));
  std::iota(idx.begin(), idx.end(), begin);
  return subset(idx);
}

}  // namespace catrsm::sim
