#include "sim/fault.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "sim/check/fault_report.hpp"
#include "sim/check/trace.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"

namespace catrsm::sim {

namespace {

/// splitmix64 finalizer: the site-selection hash. Statistically uniform,
/// cheap, and stateless — the deterministic heart of the injector.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t mix4(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                   std::uint64_t d) {
  return mix(a ^ mix(b ^ mix(c ^ mix(d))));
}

std::uint64_t pack_edge(int src, int dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint32_t>(dst);
}

// Distinct salts keep the "does this site fire" stream independent from
// the "which parameter to perturb" streams.
constexpr std::uint64_t kSiteSalt = 0x5149544553414C54ull;
constexpr std::uint64_t kParamSalt = 0x504152414D53414Cull;

/// Cap on stored log lines (the fire *count* keeps going): a rate-1 plan
/// on a big run fires thousands of times and the report only needs the
/// first few sites to name the bug.
constexpr std::size_t kMaxLogLines = 64;

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kDrop:
      return "drop";
    case FaultClass::kDuplicate:
      return "dup";
    case FaultClass::kCorrupt:
      return "corrupt";
    case FaultClass::kDelay:
      return "delay";
    case FaultClass::kSkewCollective:
      return "skew";
    case FaultClass::kKillRank:
      return "kill";
  }
  return "?";
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec) {
  if (spec.empty()) return std::nullopt;
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) return std::nullopt;
  const std::string cls = spec.substr(0, c1);
  const std::size_t c2 = spec.find(':', c1 + 1);
  const std::string seed_s =
      spec.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                  : c2 - c1 - 1);
  FaultPlan plan;
  if (cls == "drop") {
    plan.cls = FaultClass::kDrop;
  } else if (cls == "dup") {
    plan.cls = FaultClass::kDuplicate;
  } else if (cls == "corrupt") {
    plan.cls = FaultClass::kCorrupt;
  } else if (cls == "delay") {
    plan.cls = FaultClass::kDelay;
  } else if (cls == "skew") {
    plan.cls = FaultClass::kSkewCollective;
  } else if (cls == "kill") {
    plan.cls = FaultClass::kKillRank;
  } else {
    return std::nullopt;
  }
  if (!parse_u64(seed_s, &plan.seed)) return std::nullopt;
  if (c2 != std::string::npos) {
    std::uint64_t rate = 0;
    if (!parse_u64(spec.substr(c2 + 1), &rate) || rate < 1 ||
        rate > 0xffffffffull) {
      return std::nullopt;
    }
    plan.rate = static_cast<std::uint32_t>(rate);
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const std::string spec = env::string_or("CATRSM_SIM_FAULT", "");
  if (spec.empty()) return std::nullopt;
  std::optional<FaultPlan> plan = parse(spec);
  if (!plan.has_value()) {
    env::warn_invalid("CATRSM_SIM_FAULT",
                      "expected <class>:<seed>[:<rate>] with class "
                      "drop|dup|corrupt|delay|skew|kill",
                      "no fault injection");
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << fault_class_name(cls) << ":" << seed << ":" << rate;
  if (!verify_transport) os << " (live transport verification off)";
  return os.str();
}

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(FaultPlan plan, int p) : plan_(plan), p_(p) {
  CATRSM_CHECK(p >= 1, "fault injector needs at least one rank");
  if (plan_.rate < 1) plan_.rate = 1;
  // The kill site is fixed per plan, not per site hash: one victim rank
  // and one death ordinal, derived from the seed through the library Rng.
  Rng rng(plan_.seed ^ 0x4B494C4Cull);  // "KILL"
  kill_victim_ = static_cast<int>(rng.uniform_int(0, p - 1));
  kill_op_ = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  pair_seq_.resize(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
  recv_seq_.resize(static_cast<std::size_t>(p));
  op_count_.assign(static_cast<std::size_t>(p), 0);
  coll_seq_.resize(static_cast<std::size_t>(p));
}

void FaultInjector::begin_run() {
  for (PairSeq& ps : pair_seq_) ps.next.clear();
  for (RecvSeq& rs : recv_seq_) rs.last.clear();
  op_count_.assign(op_count_.size(), 0);
  for (auto& per_epoch : coll_seq_) per_epoch.clear();
  std::lock_guard<std::mutex> lk(log_mu_);
  injections_ = 0;
  log_.clear();
}

bool FaultInjector::fires(std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) const {
  return mix4(plan_.seed ^ kSiteSalt, a, b, c) % plan_.rate == 0;
}

void FaultInjector::record(std::string line) {
  std::lock_guard<std::mutex> lk(log_mu_);
  ++injections_;
  if (log_.size() < kMaxLogLines) log_.push_back(std::move(line));
}

int FaultInjector::injections() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return injections_;
}

std::vector<std::string> FaultInjector::injection_log() const {
  std::lock_guard<std::mutex> lk(log_mu_);
  return log_;
}

FaultInjector::Action FaultInjector::on_deliver(int src, int dst, int tag,
                                                Buffer* payload,
                                                std::uint64_t* checksum,
                                                std::uint32_t* seq) {
  PairSeq& ps = pair_seq_[static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(p_) +
                          static_cast<std::size_t>(dst)];
  const std::uint32_t s = ps.next[tag]++;
  *seq = s;
  // Checksum the payload BEFORE any corruption: the stamp travels with
  // the message and testifies to what the sender meant to say.
  *checksum = check::hash_words(payload->data(), payload->size());

  const std::uint64_t edge = pack_edge(src, dst);
  std::ostringstream site;
  site << src << "->" << dst << " tag " << tag << " seq " << s << " ("
       << payload->size() << " words)";
  switch (plan_.cls) {
    case FaultClass::kDrop:
      if (fires(edge, static_cast<std::uint64_t>(tag), s)) {
        record("dropped message " + site.str());
        return Action::kDrop;
      }
      break;
    case FaultClass::kDuplicate:
      if (fires(edge, static_cast<std::uint64_t>(tag), s)) {
        record("duplicated message " + site.str());
        return Action::kDuplicate;
      }
      break;
    case FaultClass::kDelay:
      if (fires(edge, static_cast<std::uint64_t>(tag), s)) {
        record("delayed message " + site.str());
        return Action::kDelay;
      }
      break;
    case FaultClass::kCorrupt:
      if (!payload->empty() && fires(edge, static_cast<std::uint64_t>(tag), s)) {
        std::vector<double> words = payload->to_vector();
        const std::size_t at =
            mix4(plan_.seed ^ kParamSalt, edge, static_cast<std::uint64_t>(tag),
                 s) %
            words.size();
        std::uint64_t bits = 0;
        std::memcpy(&bits, &words[at], sizeof(bits));
        bits ^= 1ull;  // flip the lowest mantissa bit: subtle, nonzero
        std::memcpy(&words[at], &bits, sizeof(bits));
        *payload = Buffer(std::move(words));
        record("corrupted word " + std::to_string(at) + " of message " +
               site.str());
      }
      break;
    case FaultClass::kSkewCollective:
    case FaultClass::kKillRank:
      break;  // injected elsewhere (coll entry / transport-op hook)
  }
  return Action::kPass;
}

void FaultInjector::verify_receive(int dst, int src, int tag,
                                   const Buffer& payload,
                                   std::uint64_t checksum, std::uint32_t seq) {
  if (!plan_.verify_transport) return;
  const std::uint64_t got = check::hash_words(payload.data(), payload.size());
  std::ostringstream site;
  site << "edge " << src << "->" << dst << " tag " << tag << " seq " << seq;
  if (got != checksum) {
    std::ostringstream os;
    os << "transport checksum mismatch on " << site.str()
       << ": payload bytes differ from the sender's stamp (in-flight "
          "corruption)";
    throw check::TransportChecksumError(os.str());
  }
  auto& last = recv_seq_[static_cast<std::size_t>(dst)].last;
  const auto key = std::make_pair(src, tag);
  const auto it = last.find(key);
  const std::uint32_t expect = it == last.end() ? 0 : it->second + 1;
  if (seq != expect) {
    std::ostringstream os;
    os << "transport sequence mismatch on " << site.str() << ": expected seq "
       << expect << " — "
       << (seq < expect ? "message duplicated or delivered out of order"
                        : "gap: earlier message(s) on this edge were lost");
    throw check::TransportSequenceError(os.str());
  }
  last[key] = seq;
}

void FaultInjector::maybe_kill(int rank) {
  if (plan_.cls != FaultClass::kKillRank) return;
  if (rank != kill_victim_) return;
  const std::uint32_t op = ++op_count_[static_cast<std::size_t>(rank)];
  if (op != kill_op_) return;
  std::ostringstream os;
  os << "rank " << rank << " killed by fault plan " << plan_.describe()
     << " at its transport op " << op;
  record(os.str());
  throw check::RankKilledError(os.str());
}

bool FaultInjector::maybe_skew(std::uint64_t epoch, int world_rank,
                               int comm_rank, int comm_size, int* root,
                               std::vector<std::size_t>* counts) {
  if (plan_.cls != FaultClass::kSkewCollective || comm_size < 2) return false;
  const std::uint32_t call =
      coll_seq_[static_cast<std::size_t>(world_rank)][epoch]++;
  if (!fires(epoch, call, 0x534B4557ull)) return false;  // "SKEW"
  const std::uint64_t param = mix4(plan_.seed ^ kParamSalt, epoch, call, 1);
  const int chosen = static_cast<int>(param % static_cast<unsigned>(comm_size));
  if (comm_rank != chosen) return false;

  std::ostringstream site;
  site << "epoch " << epoch << " call " << call << " at comm rank " << comm_rank
       << " (world " << world_rank << ")";
  if (root != nullptr && *root >= 0) {
    const int shift =
        1 + static_cast<int>((param >> 32) %
                             static_cast<unsigned>(comm_size - 1));
    const int skewed = (*root + shift) % comm_size;
    record("skewed collective root " + std::to_string(*root) + " -> " +
           std::to_string(skewed) + ", " + site.str());
    *root = skewed;
    return true;
  }
  if (counts != nullptr && counts->size() >= 2) {
    // Shrink a *peer* slot by one word. Never the caller's own slot (its
    // local size checks must keep passing so the collective matcher is
    // what sees the disagreement), and never an inflation — a count
    // larger than the data that actually flows could push the
    // implementation's packing arithmetic out of bounds, and the point
    // is to corrupt the metadata, not the library's memory safety.
    const std::size_t n = counts->size();
    const std::size_t start =
        (static_cast<std::size_t>(comm_rank) + 1 + (param >> 32) % (n - 1)) % n;
    for (std::size_t probe = 0; probe < n; ++probe) {
      const std::size_t slot = (start + probe) % n;
      if (slot == static_cast<std::size_t>(comm_rank) ||
          (*counts)[slot] == 0) {
        continue;
      }
      (*counts)[slot] -= 1;
      record("skewed collective count[" + std::to_string(slot) +
             "] -= 1, " + site.str());
      return true;
    }
  }
  return false;
}

}  // namespace catrsm::sim
