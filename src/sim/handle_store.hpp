#pragma once
// Rank-local persistent operand storage: the machine-side backing of
// api::DistHandle.
//
// A handle entry is one slot per world rank, each holding that rank's
// local block of a distributed matrix. Entries live OUTSIDE any
// Machine::run — they are created and released from the host thread and
// survive arbitrarily many runs, which is what lets a factor be scattered
// once and solved against many times with no per-execute redistribution.
// During a run, each rank touches only its own slot, so concurrent access
// from the rank fibers is data-race free by construction; the mutex only
// guards the id -> entry map itself.
//
// The store holds la::Matrix values (moved in and out — never copied on
// the hot path). The layout that gives the blocks meaning lives with the
// api-level handle; the store is deliberately layout-agnostic.

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "la/matrix.hpp"

namespace catrsm::sim {

class HandleStore {
 public:
  /// Store for a machine of `p` ranks.
  explicit HandleStore(int p);

  HandleStore(const HandleStore&) = delete;
  HandleStore& operator=(const HandleStore&) = delete;

  int nprocs() const { return p_; }

  /// New entry with p empty per-rank slots; returns its id (never 0,
  /// never reused).
  std::uint64_t create();

  /// Drop an entry and free its blocks. No-op for unknown ids (handles
  /// may race machine teardown in shutdown paths).
  void release(std::uint64_t id);

  bool contains(std::uint64_t id) const;

  /// Live entry count (observability for leak tests).
  std::size_t count() const;

  /// Rank `rank`'s slot of entry `id`. The reference stays valid until
  /// release(id); distinct ranks may use their slots concurrently.
  la::Matrix& local(std::uint64_t id, int rank);

  /// Monotonic write stamp of the entry (assigned at creation; entries
  /// are never rewritten in place): together with the id this identifies
  /// the CONTENT of a handle (the diagonal-inverse cache keys on it
  /// instead of hashing operand bytes).
  std::uint64_t epoch(std::uint64_t id) const;

  /// Mark an entry's contents untrustworthy — a faulted run may have left
  /// its slots partially rewritten. Bumps the epoch so every content-keyed
  /// cache (diag-inverse reuse) invalidates, and makes api-level reads
  /// fail fast until unpoison(). No-op for unknown ids.
  void poison(std::uint64_t id);
  bool poisoned(std::uint64_t id) const;
  /// Clear the poison flag after the owner rewrote every slot, stamping a
  /// fresh epoch for the new contents.
  void unpoison(std::uint64_t id);

 private:
  struct Entry {
    std::vector<la::Matrix> locals;
    std::uint64_t epoch = 0;
    bool poisoned = false;
  };

  Entry& entry(std::uint64_t id) const;

  int p_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::uint64_t writes_ = 0;
  // unique_ptr values: entry addresses stay stable across map rehashes,
  // so the references ranks hold during a run never dangle.
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> entries_;
};

}  // namespace catrsm::sim
