#pragma once
// Rank-local persistent operand storage: the machine-side backing of
// api::DistHandle.
//
// A handle entry is one slot per world rank, each holding that rank's
// local block of a distributed matrix. Entries live OUTSIDE any
// Machine::run — they are created and released from the host thread and
// survive arbitrarily many runs, which is what lets a factor be scattered
// once and solved against many times with no per-execute redistribution.
// During a run, each rank touches only its own slot, so concurrent access
// from the rank fibers is data-race free by construction; the mutex only
// guards the id -> entry map and the bookkeeping fields.
//
// The store holds la::Matrix values (moved in and out — never copied on
// the hot path). The layout that gives the blocks meaning lives with the
// api-level handle; the store is deliberately layout-agnostic.
//
// BYTE BUDGET (CATRSM_HANDLE_BUDGET, bytes; default unlimited): when the
// resident total exceeds the budget, evict_to_budget() drops the blocks
// of least-recently-touched entries that are EVICTABLE (the api layer
// marks entries whose contents can be rebuilt from a recorded upload
// source — run outputs have no source and are never evicted), unpinned,
// not in use by any in-flight run, and not poisoned. Eviction keeps the
// entry (id, epoch, poison flag) and clears only the blocks; the api
// layer transparently re-scatters from the source on the next use, so
// eviction can never change results — only the host-side cost of the
// re-scatter. The epoch is NOT bumped by evict/re-upload (the restored
// bytes are identical), so content-keyed caches stay valid across a
// round trip. Budget 0 degenerates to always-re-upload.

#include <cstdint>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "la/matrix.hpp"

namespace catrsm::sim {

class HandleStore {
 public:
  /// Resident byte total is never constrained.
  static constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

  /// Store for a machine of `p` ranks. The byte budget initializes from
  /// CATRSM_HANDLE_BUDGET (strict parse, warn-and-fallback to unlimited).
  explicit HandleStore(int p);

  HandleStore(const HandleStore&) = delete;
  HandleStore& operator=(const HandleStore&) = delete;

  int nprocs() const { return p_; }

  /// New entry with p empty per-rank slots; returns its id (never 0,
  /// never reused). Entries start resident, unpinned, non-evictable.
  std::uint64_t create();

  /// Drop an entry and free its blocks. No-op for unknown ids (handles
  /// may race machine teardown in shutdown paths).
  void release(std::uint64_t id);

  bool contains(std::uint64_t id) const;

  /// Live entry count (observability for leak tests).
  std::size_t count() const;

  /// Rank `rank`'s slot of entry `id`. The reference stays valid until
  /// release(id); distinct ranks may use their slots concurrently.
  la::Matrix& local(std::uint64_t id, int rank);

  /// Monotonic write stamp of the entry (assigned at creation; entries
  /// are never rewritten in place): together with the id this identifies
  /// the CONTENT of a handle (the diagonal-inverse cache keys on it
  /// instead of hashing operand bytes).
  std::uint64_t epoch(std::uint64_t id) const;

  /// Mark an entry's contents untrustworthy — a faulted run may have left
  /// its slots partially rewritten. Bumps the epoch so every content-keyed
  /// cache (diag-inverse reuse) invalidates, and makes api-level reads
  /// fail fast until unpoison(). Poisoned entries are never evicted (and
  /// so never silently laundered by a clean re-upload). No-op for unknown
  /// ids.
  void poison(std::uint64_t id);
  bool poisoned(std::uint64_t id) const;
  /// Clear the poison flag after the owner rewrote every slot, stamping a
  /// fresh epoch for the new contents.
  void unpoison(std::uint64_t id);

  // --- Byte budget & LRU eviction ----------------------------------------

  /// Current cap on the resident byte total (kUnlimited when unbounded).
  std::uint64_t byte_budget() const;
  /// Override the environment-derived budget (tests; takes effect on the
  /// next evict_to_budget()).
  void set_byte_budget(std::uint64_t bytes);
  /// Bytes held by resident entries (per last touch() accounting).
  std::uint64_t resident_bytes() const;
  /// Entries evicted since construction.
  std::uint64_t evictions() const;

  /// True while the entry's blocks are present (false after eviction).
  bool resident(std::uint64_t id) const;

  /// Mark whether the entry may be evicted: the api layer sets this for
  /// entries with a recorded upload source ("clean" operands it can
  /// rebuild bitwise); run outputs stay non-evictable.
  void set_evictable(std::uint64_t id, bool on);

  /// Recompute the entry's byte accounting from its slots after a
  /// host-side (re)write, mark it resident, and stamp it most recently
  /// used. Call after filling slots (upload, re-upload, repair) and after
  /// a run produced or rewrote the entry.
  void touch(std::uint64_t id);

  /// Pin: pinned entries are never evicted regardless of LRU order or
  /// budget pressure. Pins nest.
  void pin(std::uint64_t id);
  void unpin(std::uint64_t id);
  bool pinned(std::uint64_t id) const;

  /// Evict least-recently-touched eligible entries (evictable, unpinned,
  /// idle, not poisoned) until resident_bytes() <= byte_budget() or no
  /// candidate remains. Host-side only; in-use entries are protected by
  /// their run-use marks.
  void evict_to_budget();

  // --- Run-use marks ------------------------------------------------------
  // A run that reads or writes entries marks them in use for its whole
  // flight so (a) eviction cannot drop operand blocks mid-run and (b) two
  // concurrent streams cannot move blocks out of one entry at once.

  /// Atomically mark every id in use by one run, blocking until none of
  /// them is in use by another run (all-or-nothing, so concurrent
  /// acquirers cannot hold-and-wait into a deadlock). In-flight runs
  /// release on a worker thread at completion, so this always makes
  /// progress without the host waiting any ticket.
  void acquire_run_use(const std::vector<std::uint64_t>& ids);
  /// Release the marks taken by acquire_run_use (any thread).
  void release_run_use(const std::vector<std::uint64_t>& ids);
  /// Block until no in-flight run uses the entry (host-side reads:
  /// download/repair against a machine with concurrent streams).
  void wait_run_idle(std::uint64_t id) const;

 private:
  struct Entry {
    std::vector<la::Matrix> locals;
    std::uint64_t epoch = 0;
    bool poisoned = false;
    bool resident = true;
    bool evictable = false;
    std::uint64_t bytes = 0;  // accounted at last touch()
    std::uint64_t lru_tick = 0;
    int pins = 0;
    int busy = 0;  // in-flight runs using this entry
  };

  Entry& entry(std::uint64_t id) const;
  Entry* find(std::uint64_t id) const;  // mu_ held; null for unknown ids
  void touch_locked(Entry& e);
  void evict_to_budget_locked();

  int p_;
  mutable std::mutex mu_;
  mutable std::condition_variable busy_cv_;
  std::uint64_t next_id_ = 1;
  std::uint64_t writes_ = 0;
  std::uint64_t lru_clock_ = 0;
  std::uint64_t byte_budget_ = kUnlimited;
  std::uint64_t resident_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  // unique_ptr values: entry addresses stay stable across map rehashes,
  // so the references ranks hold during a run never dangle.
  std::unordered_map<std::uint64_t, std::unique_ptr<Entry>> entries_;
};

}  // namespace catrsm::sim
