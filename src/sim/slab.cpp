#include "sim/slab.hpp"

#include <atomic>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <new>

#include "support/env.hpp"

namespace catrsm::sim {

namespace {

// Retain at most this much recycled storage; releases beyond it free.
constexpr std::size_t kMaxPooledBytes = std::size_t{128} << 20;  // 128 MiB
constexpr std::size_t kMinBucket = 64;                           // doubles
constexpr int kBuckets = 26;  // kMinBucket << 25 = 2^31 doubles = 16 GiB

std::size_t bucket_capacity(std::size_t n) {
  std::size_t cap = kMinBucket;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Freelist index for this capacity, or -1 when it exceeds the largest
/// bucket — oversized slabs bypass the pool entirely (plain alloc/free).
int bucket_index(std::size_t cap) {
  int i = 0;
  for (std::size_t c = kMinBucket; c < cap; c <<= 1) ++i;
  return i < kBuckets ? i : -1;
}

struct Pool {
  std::mutex mu;
  std::vector<double*> free_lists[kBuckets];
  std::size_t retained_bytes = 0;
  SlabPoolStats stats;
};

// Leaked on purpose: Buffer/Slab objects in static storage (or released
// by detached worker threads during shutdown) may return slabs after any
// static destructor would have run.
Pool& pool() {
  static Pool* p = new Pool;
  return *p;
}

std::atomic<bool> g_pool_enabled{true};

std::atomic<bool> g_poison{env::flag_or("CATRSM_SLAB_POISON", false)};

double* allocate_aligned(std::size_t cap) {
  return static_cast<double*>(
      ::operator new[](cap * sizeof(double), std::align_val_t{64}));
}

void free_aligned(double* p) {
  ::operator delete[](p, std::align_val_t{64});
}

double* acquire(std::size_t cap) {
  const int bucket = bucket_index(cap);
  if (bucket >= 0 && g_pool_enabled.load(std::memory_order_relaxed)) {
    Pool& po = pool();
    std::lock_guard<std::mutex> lock(po.mu);
    auto& list = po.free_lists[bucket];
    if (!list.empty()) {
      double* p = list.back();
      list.pop_back();
      po.retained_bytes -= cap * sizeof(double);
      ++po.stats.hits;
      return p;
    }
    ++po.stats.misses;
  } else {
    std::lock_guard<std::mutex> lock(pool().mu);
    ++pool().stats.misses;
  }
  return allocate_aligned(cap);
}

void release(double* p, std::size_t cap) {
  const int bucket = bucket_index(cap);
  if (bucket >= 0 && g_pool_enabled.load(std::memory_order_relaxed)) {
    Pool& po = pool();
    std::lock_guard<std::mutex> lock(po.mu);
    const std::size_t bytes = cap * sizeof(double);
    if (po.retained_bytes + bytes <= kMaxPooledBytes) {
      po.free_lists[bucket].push_back(p);
      po.retained_bytes += bytes;
      ++po.stats.returned;
      return;
    }
    ++po.stats.dropped;
  }
  free_aligned(p);
}

}  // namespace

std::shared_ptr<Slab> Slab::uninit(std::size_t n) {
  auto slab = std::shared_ptr<Slab>(new Slab);
  if (n == 0) return slab;
  const std::size_t cap = bucket_capacity(n);
  slab->data_ = acquire(cap);
  slab->size_ = n;
  slab->capacity_ = cap;
  if (g_poison.load(std::memory_order_relaxed)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t i = 0; i < cap; ++i) slab->data_[i] = nan;
  }
  return slab;
}

std::shared_ptr<Slab> Slab::adopt(std::vector<double> v) {
  auto slab = std::shared_ptr<Slab>(new Slab);
  slab->vec_ = std::move(v);
  slab->data_ = slab->vec_.data();
  slab->size_ = slab->vec_.size();
  slab->adopted_ = true;
  return slab;
}

Slab::~Slab() {
  if (!adopted_ && data_ != nullptr) release(data_, capacity_);
}

std::vector<double> Slab::release_vector() {
  std::vector<double> out = std::move(vec_);
  data_ = nullptr;
  size_ = 0;
  adopted_ = false;
  return out;
}

void set_slab_pool_enabled(bool enabled) {
  g_pool_enabled.store(enabled, std::memory_order_relaxed);
}

bool slab_pool_enabled() {
  return g_pool_enabled.load(std::memory_order_relaxed);
}

void set_slab_poison(bool enabled) {
  g_poison.store(enabled, std::memory_order_relaxed);
}

void clear_slab_pool() {
  Pool& po = pool();
  std::lock_guard<std::mutex> lock(po.mu);
  for (auto& list : po.free_lists) {
    for (double* p : list) free_aligned(p);
    list.clear();
  }
  po.retained_bytes = 0;
}

SlabPoolStats slab_pool_stats() {
  Pool& po = pool();
  std::lock_guard<std::mutex> lock(po.mu);
  return po.stats;
}

}  // namespace catrsm::sim
