#pragma once
// Seeded, deterministic fault injection at the simulated transport
// boundary.
//
// A FaultPlan names one fault class and a seed; arming it on a Machine
// (Machine::arm_fault, or CATRSM_SIM_FAULT=<class>:<seed>[:<rate>] at
// construction) installs a FaultInjector that perturbs the transport at
// deterministically chosen sites. The point is not chaos testing — it is
// a *coverage proof* for the correctness oracle: every fault class must
// be caught by a named detector (deadlock WFG, collective matcher,
// transport checksum/sequence verification, residual sweep, trace
// replay, abort propagation) and never escape as a silent wrong answer
// or a hang. tests/test_fault.cpp holds the (fault class x detector)
// matrix; check::report_fault classifies what fired.
//
// Determinism discipline: injection decisions are pure functions of the
// plan seed and *logical* per-message coordinates — the (src, dst, tag)
// delivery sequence number, a rank's transport-op ordinal, a
// collective's (epoch, call) position — never of thread arrival order.
// Two runs of the same SPMD program under the same plan inject at the
// same sites, so every faulted test is replayable from its seed alone.
//
// Cost discipline: a machine with no plan armed takes exactly one null
// pointer test per transport op (the same zero-cost contract as the
// deadlock detector), and the injector never touches the cost counters
// even when armed — detection, not the fault, ends the run.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/buffer.hpp"

namespace catrsm::sim {

/// The injectable fault classes (>= 6, per the coverage matrix).
enum class FaultClass {
  kDrop,            // a delivered message silently vanishes
  kDuplicate,       // a message is delivered twice
  kCorrupt,         // payload words are flipped in flight
  kDelay,           // delivery is held back, reordering the mailbox
  kSkewCollective,  // one rank enters a collective with a wrong count/root
  kKillRank,        // a rank dies mid-run at a transport op
};

/// Spec name of a fault class: drop|dup|corrupt|delay|skew|kill.
const char* fault_class_name(FaultClass c);

/// One armed fault: class + seed + firing rate.
struct FaultPlan {
  FaultClass cls = FaultClass::kDrop;
  std::uint64_t seed = 0;
  /// Fire at roughly one eligible site in `rate` (a deterministic per-site
  /// hash test, not sampling); rate 1 fires at every eligible site. The
  /// kill class ignores rate (one victim, one death site per run).
  std::uint32_t rate = 8;
  /// When false, the armed transport skips its live checksum/sequence
  /// verification — used by tests to prove trace replay alone catches a
  /// corruption that the live run completed with.
  bool verify_transport = true;

  /// Parse "<class>:<seed>[:<rate>]", e.g. "corrupt:42" or "drop:7:4".
  /// Returns nullopt (no fault armed) for an empty or malformed spec.
  static std::optional<FaultPlan> parse(const std::string& spec);
  /// Parse the CATRSM_SIM_FAULT environment knob; a malformed value gets
  /// the standard warn-and-fallback stderr line (fallback: no fault).
  static std::optional<FaultPlan> from_env();

  std::string describe() const;
};

/// Per-run injection state for one armed FaultPlan. Owned by the Machine;
/// all transport hooks are called with deterministic coordinates (see the
/// header comment). Counter state is sharded so that every counter has a
/// single writing rank: pair sequence numbers are written only by the
/// sending rank, receive-side expectations only by the receiving rank,
/// kill/collective ordinals only by the rank they belong to.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, int p);

  const FaultPlan& plan() const { return plan_; }

  /// Reset per-run counters and the injection log (Machine::run start).
  void begin_run();

  /// What deliver() must do with one stamped message.
  enum class Action { kPass, kDrop, kDuplicate, kDelay };

  /// Sender-side hook, called by rank `src` for each delivery into
  /// (dst, src, tag): stamps the transport-verification sequence number
  /// and checksum (pre-corruption, so a corrupted payload cannot
  /// re-checksum itself), applies payload corruption in place when this
  /// site is chosen, and returns the queueing action.
  Action on_deliver(int src, int dst, int tag, Buffer* payload,
                    std::uint64_t* checksum, std::uint32_t* seq);

  /// Receiver-side live verification, called by rank `dst` right after a
  /// message is taken (before any accounting). Throws
  /// check::TransportChecksumError / check::TransportSequenceError on a
  /// payload hash mismatch or a non-consecutive sequence number. No-op
  /// when the plan disables transport verification.
  void verify_receive(int dst, int src, int tag, const Buffer& payload,
                      std::uint64_t checksum, std::uint32_t seq);

  /// Kill hook, called by every rank at each transport op; throws
  /// check::RankKilledError when this rank reaches its death site.
  void maybe_kill(int rank);

  /// Collective-skew hook, called on entry to a primitive collective
  /// before any checking or communication. When this (epoch, call) site
  /// is chosen and `world_rank` is the chosen victim, perturbs *root
  /// (scatter/gather, when *root >= 0) or *counts (allgather/
  /// reduce-scatter — never the caller's own slot, so local size checks
  /// still pass and the collective matcher is what sees the disagreement)
  /// and returns true.
  bool maybe_skew(std::uint64_t epoch, int world_rank, int comm_rank,
                  int comm_size, int* root, std::vector<std::size_t>* counts);

  /// Number of faults actually fired this run, and one log line per fire
  /// (site coordinates included) for check::FaultReport.
  int injections() const;
  std::vector<std::string> injection_log() const;

 private:
  bool fires(std::uint64_t a, std::uint64_t b, std::uint64_t c) const;
  void record(std::string line);

  FaultPlan plan_;
  int p_;
  int kill_victim_ = 0;
  std::uint32_t kill_op_ = 1;

  // Sender-side per-(src, dst) tag sequence counters (writer: rank src).
  struct PairSeq {
    std::map<int, std::uint32_t> next;
  };
  std::vector<PairSeq> pair_seq_;
  // Receiver-side last-seen sequence per (dst; src, tag) (writer: dst).
  struct RecvSeq {
    std::map<std::pair<int, int>, std::uint32_t> last;
  };
  std::vector<RecvSeq> recv_seq_;
  // Per-rank transport-op ordinals for the kill site (writer: the rank).
  std::vector<std::uint32_t> op_count_;
  // Per-rank collective-call ordinals per epoch (writer: the rank).
  std::vector<std::map<std::uint64_t, std::uint32_t>> coll_seq_;

  mutable std::mutex log_mu_;  // guards the two fields below (rare: fires)
  int injections_ = 0;
  std::vector<std::string> log_;
};

}  // namespace catrsm::sim
