#pragma once
// Zero-copy message payloads for the simulated transport stack.
//
// A Buffer is an immutable view (offset + length) into a refcounted slab
// of doubles (sim/slab.hpp: pooled uninitialized storage, or an adopted
// std::vector). Sending a Buffer shares the slab (a refcount bump, no
// copy); slicing a received payload into per-block views is free; and the
// slab is released — pooled storage back to the slab pool, recycled
// across Machine runs — when the last view drops. Mutation goes through
// mutable_data(), which writes in place only when this view is the slab's
// sole owner and copies otherwise (copy-on-write), so aliased views can
// never observe each other's writes.
//
// Ownership rules for user SPMD code: treat every Buffer handed to send()
// or returned by recv() as frozen. Build payloads either in a
// std::vector<double> moved into a Buffer (zero-copy adoption), in an
// uninitialized pooled slab via Buffer::uninit(n) + mutable_data() (no
// memset, no malloc when the pool has a slab of this size class), or
// pass a span (one copy, at the boundary, exactly where the old
// transport copied).

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "sim/slab.hpp"

namespace catrsm::sim {

class Buffer {
 public:
  using value_type = double;

  /// Empty view of no slab.
  Buffer() = default;

  /// Adopt `v` as a fresh slab (zero-copy for rvalues).
  Buffer(std::vector<double> v)
      : slab_(Slab::adopt(std::move(v))), off_(0), len_(slab_->size()) {}

  /// Copy `s` into a fresh pooled slab (the migration path for span call
  /// sites — one copy, no value-init of the destination).
  Buffer(std::span<const double> s);
  Buffer(std::span<double> s) : Buffer(std::span<const double>(s)) {}
  Buffer(std::initializer_list<double> init)
      : Buffer(std::span<const double>(init.begin(), init.size())) {}

  /// A writable view of n UNINITIALIZED doubles on a pooled slab: fill
  /// every element through mutable_data() before sharing it. The
  /// allocation-free way to build a payload that is computed, not copied.
  static Buffer uninit(std::size_t n);

  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }

  const double* data() const { return slab_ ? slab_->data() + off_ : nullptr; }
  double operator[](std::size_t i) const { return *(data() + i); }
  const double* begin() const { return data(); }
  const double* end() const { return data() + len_; }

  std::span<const double> span() const { return {data(), len_}; }
  operator std::span<const double>() const { return span(); }

  /// Zero-copy sub-view [off, off + len) of this view.
  Buffer slice(std::size_t off, std::size_t len) const;

  /// True when both views live on the same slab (regardless of overlap).
  bool aliases(const Buffer& other) const {
    return slab_ != nullptr && slab_ == other.slab_;
  }
  /// Number of views (and in-flight messages) sharing this slab; 0 when
  /// empty. Observability hook for the refcount-release tests.
  long use_count() const { return slab_ ? slab_.use_count() : 0; }
  std::size_t offset() const { return off_; }

  /// Copy-on-write mutable access to the viewed elements: in place when
  /// this view solely owns the slab, else the view reseats onto a private
  /// copy first. Never visible through other views.
  double* mutable_data();

  /// The viewed elements as a fresh std::vector (always copies).
  std::vector<double> to_vector() const {
    return std::vector<double>(begin(), end());
  }

  /// Destructive extraction: moves the slab's vector out when this view
  /// is the sole owner of a whole ADOPTED slab, otherwise copies (pooled
  /// slabs have no vector to surrender — keep reading the view instead
  /// where the consumer only needs const access). The cheap bridge from
  /// transport buffers into la::Matrix storage.
  std::vector<double> take() &&;

 private:
  friend Buffer concat(std::span<const Buffer> parts);

  Buffer(std::shared_ptr<Slab> slab, std::size_t off, std::size_t len)
      : slab_(std::move(slab)), off_(off), len_(len) {}

  std::shared_ptr<Slab> slab_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

/// Concatenate views into one. When the parts are adjacent views of a
/// single slab (the common case when re-forwarding slices of a received
/// payload) the result is a zero-copy slice of that slab; otherwise the
/// parts are packed into a fresh pooled slab.
Buffer concat(std::span<const Buffer> parts);

}  // namespace catrsm::sim
