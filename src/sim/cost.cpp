#include "sim/cost.hpp"

#include <sstream>

namespace catrsm::sim {

std::string Cost::to_string() const {
  std::ostringstream os;
  os << "{S=" << msgs << ", W=" << words << ", F=" << flops << "}";
  return os.str();
}

}  // namespace catrsm::sim
