#include "sim/check/coll_matcher.hpp"

#include <sstream>

namespace catrsm::sim::check {

namespace {

std::string joined(const std::vector<int>& v) {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? " " : "") << v[i];
  os << "}";
  return os.str();
}

std::string joined(const std::vector<std::size_t>& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i)
    os << (i ? " " : "") << v[i];
  os << "]";
  return os.str();
}

}  // namespace

CollectiveMatcher::CollectiveMatcher(int p)
    : last_context_(static_cast<std::size_t>(p)) {}

void CollectiveMatcher::enter(std::uint64_t epoch,
                              const std::vector<int>& members, int world_rank,
                              int comm_rank, int family, const char* name,
                              int root, const std::vector<std::size_t>* counts,
                              std::size_t words) {
  std::lock_guard<std::mutex> lock(mu_);

  auto [eit, fresh] = epochs_.try_emplace(epoch);
  EpochState& state = eit->second;
  if (fresh) {
    state.members = members;
    state.next_seq.assign(members.size(), 0);
  } else {
    // The epoch registry keys on the ordered member list, so two ranks on
    // one epoch can only disagree here if the registry itself broke.
    CATRSM_ASSERT(state.members == members,
                  "collective matcher: epoch registry handed one id to two "
                  "member lists");
  }

  const std::uint64_t seq = state.next_seq[static_cast<std::size_t>(comm_rank)]++;
  std::ostringstream ctx;
  ctx << "last collective: " << name << " #" << seq << " on comm "
      << joined(members) << ", root " << root << ", " << words << " words";
  last_context_[static_cast<std::size_t>(world_rank)] = ctx.str();

  auto [sit, first] = state.slots.try_emplace(seq);
  Slot& slot = sit->second;
  if (first) {
    slot.family = family;
    slot.name = name;
    slot.root = root;
    if (counts != nullptr) slot.counts = *counts;
    slot.first_rank = world_rank;
    slot.entered = 1;
  } else {
    const auto fault = [&](const char* what, const std::string& mine,
                           const std::string& theirs) {
      std::ostringstream os;
      os << "collective mismatch on comm " << joined(members)
         << ", call #" << seq << ": " << what << "\n"
         << "  rank " << world_rank << " entered " << name << " with "
         << mine << "\n"
         << "  rank " << slot.first_rank << " entered " << slot.name
         << " with " << theirs << "\n"
         << "(every member of a communicator must issue the same collective "
            "sequence with agreeing roots and counts)";
      throw CollMismatchError(os.str());
    };
    if (slot.family != family) {
      fault("operation sequence disagrees", "op " + std::string(name),
            "op " + slot.name);
    }
    if (slot.root != root) {
      fault("roots disagree", "root " + std::to_string(root),
            "root " + std::to_string(slot.root));
    }
    const std::vector<std::size_t> mine =
        counts != nullptr ? *counts : std::vector<std::size_t>{};
    if (slot.counts != mine) {
      fault("per-rank counts disagree", "counts " + joined(mine),
            "counts " + joined(slot.counts));
    }
    ++slot.entered;
  }
  // Every member checked in consistently: the slot can never fault again,
  // so drop it to keep matcher memory proportional to in-flight calls.
  if (slot.entered == static_cast<int>(members.size()))
    state.slots.erase(sit);
}

std::string CollectiveMatcher::context_of(int world_rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (world_rank < 0 ||
      world_rank >= static_cast<int>(last_context_.size()))
    return {};
  return last_context_[static_cast<std::size_t>(world_rank)];
}

void CollectiveMatcher::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  epochs_.clear();
  for (auto& c : last_context_) c.clear();
}

}  // namespace catrsm::sim::check
