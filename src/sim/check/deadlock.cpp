#include "sim/check/deadlock.hpp"

#include <sstream>

#include "coll/collectives.hpp"

namespace catrsm::sim::check {

namespace {

const char* coll_family_name(int family) {
  switch (static_cast<coll::CollOp>(family)) {
    case coll::CollOp::kAllgather:
      return "allgather";
    case coll::CollOp::kReduceScatter:
      return "reduce_scatter";
    case coll::CollOp::kScatter:
      return "scatter";
    case coll::CollOp::kGather:
      return "gather";
    case coll::CollOp::kBarrier:
      return "barrier";
    case coll::CollOp::kAlltoallBruck:
      return "alltoall(bruck)";
    case coll::CollOp::kAlltoallDirect:
      return "alltoall(direct)";
  }
  return "collective?";
}

/// The wait-for graph has out-degree <= 1 (each blocked rank awaits one
/// sender), so every cycle is a simple rho-tail-free loop reachable by
/// following edges until a repeat. Returns each cycle once, smallest
/// member first.
std::vector<std::vector<int>> find_cycles(const std::vector<RankWait>& waits) {
  const int p = static_cast<int>(waits.size());
  std::vector<int> color(static_cast<std::size_t>(p), 0);  // 0 new 1 path 2 done
  std::vector<std::vector<int>> cycles;
  for (int start = 0; start < p; ++start) {
    if (color[static_cast<std::size_t>(start)] != 0) continue;
    std::vector<int> path;
    int v = start;
    while (v >= 0 && color[static_cast<std::size_t>(v)] == 0 &&
           !waits[static_cast<std::size_t>(v)].finished) {
      color[static_cast<std::size_t>(v)] = 1;
      path.push_back(v);
      v = waits[static_cast<std::size_t>(v)].src;
    }
    if (v >= 0 && color[static_cast<std::size_t>(v)] == 1) {
      // Closed a loop within the current path: the cycle is the suffix
      // starting at v.
      std::vector<int> cycle;
      bool in = false;
      for (int r : path) {
        if (r == v) in = true;
        if (in) cycle.push_back(r);
      }
      cycles.push_back(std::move(cycle));
    }
    for (int r : path) color[static_cast<std::size_t>(r)] = 2;
  }
  return cycles;
}

}  // namespace

std::string describe_tag(int tag) {
  if (tag < coll::kTagBase) {
    return "tag " + std::to_string(tag);
  }
  const int band = (tag - coll::kTagBase) / coll::kEpochSpace;
  const int epoch = (tag - coll::kTagBase) % coll::kEpochSpace;
  std::ostringstream os;
  os << "tag " << tag << " [" << coll_family_name(band) << ", comm epoch "
     << epoch << "]";
  return os.str();
}

std::string describe_deadlock(const std::vector<RankWait>& waits,
                              const std::vector<PendingQueue>& pending,
                              const std::vector<std::string>& contexts) {
  const int p = static_cast<int>(waits.size());
  std::ostringstream os;
  os << "simulated run deadlocked: every rank is blocked in recv or "
        "finished, and no pending message can wake any of them\n";

  os << "per-rank state:\n";
  for (int r = 0; r < p; ++r) {
    const RankWait& w = waits[static_cast<std::size_t>(r)];
    os << "  rank " << r << ": ";
    if (w.finished) {
      os << "finished";
    } else {
      os << "blocked in recv from rank " << w.src << ", "
         << describe_tag(w.tag);
      if (w.src >= 0 && w.src < p &&
          waits[static_cast<std::size_t>(w.src)].finished) {
        os << " -- sender already finished; this message will never be sent";
      }
    }
    if (r < static_cast<int>(contexts.size()) &&
        !contexts[static_cast<std::size_t>(r)].empty()) {
      os << " (" << contexts[static_cast<std::size_t>(r)] << ")";
    }
    os << "\n";
  }

  const auto cycles = find_cycles(waits);
  if (!cycles.empty()) {
    os << "wait-for cycles:\n";
    for (const auto& cycle : cycles) {
      os << "  ";
      for (int r : cycle) os << r << " -> ";
      os << cycle.front() << "\n";
    }
  }

  if (!pending.empty()) {
    os << "pending (unmatched) mailbox contents:\n";
    for (const PendingQueue& q : pending) {
      os << "  rank " << q.dst << " <- rank " << q.src << ", "
         << describe_tag(q.tag) << ": " << q.messages << " message"
         << (q.messages == 1 ? "" : "s") << ", " << q.words << " words\n";
    }
  } else {
    os << "no pending messages anywhere: the run is starved, not "
          "mismatched\n";
  }
  return os.str();
}

}  // namespace catrsm::sim::check
