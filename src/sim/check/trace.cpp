#include "sim/check/trace.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

namespace catrsm::sim::check {

std::uint64_t hash_words(const double* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder::TraceRecorder(int p, bool capture_payloads)
    : p_(p), capture_payloads_(capture_payloads) {}

void TraceRecorder::begin_run(const MachineParams& params) {
  complete_ = false;
  trace_ = Trace{};
  trace_.p = p_;
  trace_.payloads = capture_payloads_;
  trace_.params = params;
  trace_.events.assign(static_cast<std::size_t>(p_), {});
}

void TraceRecorder::on_send(int rank, int dst, int tag, const Buffer& data,
                            double vtime) {
  TraceEvent ev;
  ev.kind = EventKind::kSend;
  ev.peer = dst;
  ev.tag = tag;
  ev.words = data.size();
  ev.hash = hash_words(data.data(), data.size());
  ev.vtime = vtime;
  if (capture_payloads_) ev.payload = data.to_vector();
  trace_.events[static_cast<std::size_t>(rank)].push_back(std::move(ev));
}

void TraceRecorder::on_recv(int rank, int src, int tag, const Buffer& data,
                            double vtime) {
  TraceEvent ev;
  ev.kind = EventKind::kRecv;
  ev.peer = src;
  ev.tag = tag;
  ev.words = data.size();
  ev.hash = hash_words(data.data(), data.size());
  ev.vtime = vtime;
  trace_.events[static_cast<std::size_t>(rank)].push_back(std::move(ev));
}

void TraceRecorder::on_shift(int rank, int dst, int src, int tag,
                             const Buffer& sent, const Buffer& got,
                             double vtime) {
  TraceEvent ev;
  ev.kind = EventKind::kShift;
  ev.peer = dst;
  ev.peer2 = src;
  ev.tag = tag;
  ev.words = sent.size();
  ev.words2 = got.size();
  ev.hash = hash_words(got.data(), got.size());
  ev.hash2 = hash_words(sent.data(), sent.size());
  ev.vtime = vtime;
  if (capture_payloads_) ev.payload = sent.to_vector();
  trace_.events[static_cast<std::size_t>(rank)].push_back(std::move(ev));
}

void TraceRecorder::on_flops(int rank, double f, double vtime) {
  TraceEvent ev;
  ev.kind = EventKind::kFlops;
  ev.flops = f;
  ev.vtime = vtime;
  trace_.events[static_cast<std::size_t>(rank)].push_back(std::move(ev));
}

void TraceRecorder::on_coll(int rank, bool enter, int family,
                            std::uint64_t epoch, std::size_t words,
                            double vtime) {
  TraceEvent ev;
  ev.kind = enter ? EventKind::kCollEnter : EventKind::kCollExit;
  ev.peer = family;
  ev.tag = static_cast<std::int32_t>(epoch & 0x7fffffffu);
  ev.words = words;
  ev.vtime = vtime;
  trace_.events[static_cast<std::size_t>(rank)].push_back(std::move(ev));
}

void TraceRecorder::finish_run(const std::vector<Cost>& final_cost,
                               const std::vector<double>& final_vtime,
                               double critical_time) {
  trace_.final_cost = final_cost;
  trace_.final_vtime = final_vtime;
  trace_.critical_time = critical_time;
  complete_ = true;
}

Trace TraceRecorder::take() { return std::move(trace_); }

// ---------------------------------------------------------------------------
// Serialization: fixed header, then per rank a u64 event count followed by
// fixed-size records with an optional trailing payload array.

namespace {

constexpr std::uint32_t kMagic = 0x43545243u;  // "CTRC"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  CATRSM_CHECK(static_cast<bool>(is), "trace: truncated file");
  return v;
}

bool has_payload(const TraceEvent& ev) {
  return ev.kind == EventKind::kSend || ev.kind == EventKind::kShift;
}

}  // namespace

void Trace::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CATRSM_CHECK(os.is_open(), "trace: cannot open '" + path + "' for write");
  put(os, kMagic);
  put(os, kVersion);
  put(os, static_cast<std::int32_t>(p));
  put(os, static_cast<std::uint8_t>(payloads ? 1 : 0));
  put(os, params.alpha);
  put(os, params.beta);
  put(os, params.gamma);
  for (const auto& stream : events) {
    put(os, static_cast<std::uint64_t>(stream.size()));
    for (const TraceEvent& ev : stream) {
      put(os, static_cast<std::uint8_t>(ev.kind));
      put(os, ev.peer);
      put(os, ev.peer2);
      put(os, ev.tag);
      put(os, ev.words);
      put(os, ev.words2);
      put(os, ev.hash);
      put(os, ev.hash2);
      put(os, ev.flops);
      put(os, ev.vtime);
      if (payloads && has_payload(ev)) {
        put(os, static_cast<std::uint64_t>(ev.payload.size()));
        os.write(reinterpret_cast<const char*>(ev.payload.data()),
                 static_cast<std::streamsize>(ev.payload.size() *
                                              sizeof(double)));
      }
    }
  }
  for (const Cost& c : final_cost) {
    put(os, c.msgs);
    put(os, c.words);
    put(os, c.flops);
  }
  for (double t : final_vtime) put(os, t);
  put(os, critical_time);
  CATRSM_CHECK(static_cast<bool>(os), "trace: write to '" + path + "' failed");
}

Trace Trace::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CATRSM_CHECK(is.is_open(), "trace: cannot open '" + path + "'");
  CATRSM_CHECK(get<std::uint32_t>(is) == kMagic,
               "trace: '" + path + "' is not a catrsm trace file");
  CATRSM_CHECK(get<std::uint32_t>(is) == kVersion,
               "trace: unsupported trace version in '" + path + "'");
  Trace t;
  t.p = get<std::int32_t>(is);
  CATRSM_CHECK(t.p >= 1 && t.p <= (1 << 20), "trace: implausible rank count");
  t.payloads = get<std::uint8_t>(is) != 0;
  t.params.alpha = get<double>(is);
  t.params.beta = get<double>(is);
  t.params.gamma = get<double>(is);
  t.events.resize(static_cast<std::size_t>(t.p));
  for (auto& stream : t.events) {
    const auto count = get<std::uint64_t>(is);
    stream.resize(count);
    for (TraceEvent& ev : stream) {
      ev.kind = static_cast<EventKind>(get<std::uint8_t>(is));
      CATRSM_CHECK(static_cast<std::uint8_t>(ev.kind) <=
                       static_cast<std::uint8_t>(EventKind::kCollExit),
                   "trace: corrupt event kind");
      ev.peer = get<std::int32_t>(is);
      ev.peer2 = get<std::int32_t>(is);
      ev.tag = get<std::int32_t>(is);
      ev.words = get<std::uint64_t>(is);
      ev.words2 = get<std::uint64_t>(is);
      ev.hash = get<std::uint64_t>(is);
      ev.hash2 = get<std::uint64_t>(is);
      ev.flops = get<double>(is);
      ev.vtime = get<double>(is);
      if (t.payloads && has_payload(ev)) {
        const auto n = get<std::uint64_t>(is);
        CATRSM_CHECK(n == ev.words, "trace: payload length disagrees");
        ev.payload.resize(n);
        is.read(reinterpret_cast<char*>(ev.payload.data()),
                static_cast<std::streamsize>(n * sizeof(double)));
        CATRSM_CHECK(static_cast<bool>(is), "trace: truncated payload");
      }
    }
  }
  t.final_cost.resize(static_cast<std::size_t>(t.p));
  for (Cost& c : t.final_cost) {
    c.msgs = get<double>(is);
    c.words = get<double>(is);
    c.flops = get<double>(is);
  }
  t.final_vtime.resize(static_cast<std::size_t>(t.p));
  for (double& v : t.final_vtime) v = get<double>(is);
  t.critical_time = get<double>(is);
  return t;
}

// ---------------------------------------------------------------------------
// Replay

namespace {

[[noreturn]] void replay_fault(int rank, std::size_t index, const char* what,
                               const std::string& detail) {
  std::ostringstream os;
  os << "trace replay diverged at rank " << rank << ", event " << index
     << ": " << what;
  if (!detail.empty()) os << " (" << detail << ")";
  throw ReplayMismatchError(os.str());
}

[[noreturn]] void final_fault(int rank, const char* what,
                              const std::string& detail) {
  std::ostringstream os;
  os << "trace replay diverged at rank " << rank << ": " << what << " ("
     << detail << ")";
  throw ReplayMismatchError(os.str());
}

std::string two(const char* name, double got, double want) {
  std::ostringstream os;
  os.precision(17);
  os << name << ": replayed " << got << ", recorded " << want;
  return os.str();
}

}  // namespace

RunStats replay(Machine& m, const Trace& trace) {
  CATRSM_CHECK(trace.payloads,
               "replay needs a payload-capturing trace (set_tracing with "
               "capture_payloads=true)");
  CATRSM_CHECK(m.nprocs() == trace.p,
               "replay: machine has " + std::to_string(m.nprocs()) +
                   " ranks, trace has " + std::to_string(trace.p));
  CATRSM_CHECK(m.params().alpha == trace.params.alpha &&
                   m.params().beta == trace.params.beta &&
                   m.params().gamma == trace.params.gamma,
               "replay: machine params differ from the traced run");
  CATRSM_CHECK(trace.final_cost.size() == static_cast<std::size_t>(trace.p),
               "replay: trace was not finalized (run failed or still open?)");

  RunStats stats = m.run([&trace](Rank& r) {
    const auto& stream = trace.events[static_cast<std::size_t>(r.id())];
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const TraceEvent& ev = stream[i];
      switch (ev.kind) {
        case EventKind::kSend:
          r.send(ev.peer, Buffer(std::vector<double>(ev.payload)), ev.tag);
          break;
        case EventKind::kRecv: {
          const Buffer got = r.recv(ev.peer, ev.tag);
          if (got.size() != ev.words)
            replay_fault(r.id(), i, "received payload size differs",
                         two("words", static_cast<double>(got.size()),
                             static_cast<double>(ev.words)));
          if (hash_words(got.data(), got.size()) != ev.hash)
            replay_fault(r.id(), i, "received payload bytes differ",
                         "recv from rank " + std::to_string(ev.peer) +
                             ", tag " + std::to_string(ev.tag));
          break;
        }
        case EventKind::kShift: {
          const Buffer got = r.shift(ev.peer, ev.peer2,
                                     Buffer(std::vector<double>(ev.payload)),
                                     ev.tag);
          if (got.size() != ev.words2)
            replay_fault(r.id(), i, "shifted payload size differs",
                         two("words", static_cast<double>(got.size()),
                             static_cast<double>(ev.words2)));
          if (hash_words(got.data(), got.size()) != ev.hash)
            replay_fault(r.id(), i, "shifted payload bytes differ",
                         "shift recv from rank " + std::to_string(ev.peer2));
          break;
        }
        case EventKind::kFlops:
          r.charge_flops(ev.flops);
          break;
        case EventKind::kCollEnter:
        case EventKind::kCollExit:
          break;  // markers only; their traffic is replayed event by event
      }
      if (ev.vtime != r.vtime())
        replay_fault(r.id(), i, "virtual clock diverged",
                     two("vtime", r.vtime(), ev.vtime));
    }
  });

  for (int r = 0; r < trace.p; ++r) {
    const Cost& got = stats.per_rank[static_cast<std::size_t>(r)];
    const Cost& want = trace.final_cost[static_cast<std::size_t>(r)];
    if (got.msgs != want.msgs)
      final_fault(r, "final S differs", two("msgs", got.msgs, want.msgs));
    if (got.words != want.words)
      final_fault(r, "final W differs", two("words", got.words, want.words));
    if (got.flops != want.flops)
      final_fault(r, "final F differs", two("flops", got.flops, want.flops));
  }
  if (stats.critical_time != trace.critical_time)
    final_fault(0, "critical time differs",
                two("critical_time", stats.critical_time,
                    trace.critical_time));
  return stats;
}

// ---------------------------------------------------------------------------
// Diff

namespace {

const char* kind_name(EventKind k) {
  switch (k) {
    case EventKind::kSend:
      return "send";
    case EventKind::kRecv:
      return "recv";
    case EventKind::kShift:
      return "shift";
    case EventKind::kFlops:
      return "flops";
    case EventKind::kCollEnter:
      return "coll-enter";
    case EventKind::kCollExit:
      return "coll-exit";
  }
  return "?";
}

}  // namespace

std::string diff(const Trace& a, const Trace& b) {
  if (a.p != b.p) return "rank counts differ";
  for (int r = 0; r < a.p; ++r) {
    const auto& ea = a.events[static_cast<std::size_t>(r)];
    const auto& eb = b.events[static_cast<std::size_t>(r)];
    const std::size_t n = std::min(ea.size(), eb.size());
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& x = ea[i];
      const TraceEvent& y = eb[i];
      std::ostringstream os;
      os << "rank " << r << ", event " << i << ": ";
      if (x.kind != y.kind) {
        os << kind_name(x.kind) << " vs " << kind_name(y.kind);
        return os.str();
      }
      if (x.peer != y.peer || x.peer2 != y.peer2 || x.tag != y.tag) {
        os << kind_name(x.kind) << " peers/tags differ";
        return os.str();
      }
      if (x.words != y.words || x.words2 != y.words2) {
        os << kind_name(x.kind) << " payload sizes differ";
        return os.str();
      }
      if (x.hash != y.hash || x.hash2 != y.hash2) {
        os << kind_name(x.kind) << " payload bytes differ";
        return os.str();
      }
      if (x.flops != y.flops) {
        os << "flop charges differ";
        return os.str();
      }
      if (x.vtime != y.vtime) {
        os << "virtual clocks differ";
        return os.str();
      }
    }
    if (ea.size() != eb.size())
      return "rank " + std::to_string(r) + ": event counts differ (" +
             std::to_string(ea.size()) + " vs " + std::to_string(eb.size()) +
             ")";
  }
  if (a.critical_time != b.critical_time) return "critical times differ";
  return {};
}

}  // namespace catrsm::sim::check
