#pragma once
// Deadlock diagnostics for the simulated machine (sim/check subsystem).
//
// The machine detects the stall itself — detection must live where the
// blocking happens (Machine::take, shared by the fiber and the
// thread-per-rank scheduler backends) — and hands this module a frozen
// snapshot of the stalled run. This module turns the snapshot into an
// actionable report: per-rank wait state, decoded collective tags,
// pending-mailbox summaries, and the wait-for-graph cycles, so "the run
// hangs" becomes "ranks 2 -> 5 -> 2 wait on each other inside allgather
// epoch 7".
//
// Detection protocol (implemented in machine.cpp, documented here because
// this is the subsystem's home): every blocking receive registers a
// (rank, src, tag) wait record before parking and clears it on wake-up.
// The registration that makes every rank blocked-or-finished nominates
// the registering rank as a detection candidate. The candidate then
//   1. snapshots the wait records and a registration sequence number,
//   2. scans each blocked rank's awaited mailbox queue — a pending
//      matching message means a wake-up is merely unscheduled, so the
//      candidate stands down (false alarm), and
//   3. re-checks that the sequence number is unchanged — any delivery
//      consumed in between bumps it, so a stale snapshot can never be
//      declared.
// A declared deadlock is therefore exact: every rank is parked, no queued
// message can wake any of them, and no rank is running to produce one.
// The fast path pays nothing — registration only happens on receives
// that actually block, and sends are untouched.

#include <cstddef>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace catrsm::sim::check {

/// Thrown by Machine::run when the run deadlocks; what() carries the full
/// per-rank diagnostic dump.
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& dump) : Error(dump) {}
};

/// One rank's state in the stalled run.
struct RankWait {
  bool finished = false;  // returned from the rank body
  int src = -1;           // awaited sender (valid when !finished)
  int tag = 0;            // awaited tag (valid when !finished)
};

/// One non-empty mailbox queue addressed to a stalled rank.
struct PendingQueue {
  int dst = -1;
  int src = -1;
  int tag = 0;
  std::size_t messages = 0;
  std::size_t words = 0;
};

/// Human-readable decoding of a message tag: collective tags (at or above
/// coll::kTagBase) name their family and communicator epoch, user tags
/// print as plain integers.
std::string describe_tag(int tag);

/// Build the diagnostic dump for a detected deadlock. `contexts` holds an
/// optional per-rank collective context line (from the collective matcher,
/// empty when checking is off or the rank never entered a collective).
std::string describe_deadlock(const std::vector<RankWait>& waits,
                              const std::vector<PendingQueue>& pending,
                              const std::vector<std::string>& contexts);

}  // namespace catrsm::sim::check
