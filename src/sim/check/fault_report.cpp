#include "sim/check/fault_report.hpp"

#include <sstream>

#include "sim/check/coll_matcher.hpp"
#include "sim/check/deadlock.hpp"
#include "sim/check/trace.hpp"
#include "sim/machine.hpp"

namespace catrsm::sim::check {

namespace {

const char* classify(const std::exception& e) {
  if (dynamic_cast<const DeadlockError*>(&e)) return "deadlock-wfg";
  if (dynamic_cast<const CollMismatchError*>(&e)) return "collective-matcher";
  if (dynamic_cast<const TransportChecksumError*>(&e))
    return "payload-checksum";
  if (dynamic_cast<const TransportSequenceError*>(&e)) return "sequence-check";
  if (dynamic_cast<const TransportResidueError*>(&e)) return "residual-sweep";
  if (dynamic_cast<const RankKilledError*>(&e)) return "rank-abort";
  if (dynamic_cast<const ReplayMismatchError*>(&e)) return "trace-replay";
  // Any other library Error is a tripped CATRSM_CHECK/ASSERT — an
  // invariant caught the damage before a dedicated detector could. Still
  // a detection (the run faulted loudly), just a generic one.
  if (dynamic_cast<const Error*>(&e)) return "invariant-check";
  return "";
}

}  // namespace

std::string FaultReport::to_string() const {
  std::ostringstream os;
  os << "fault report: injected " << fault_class_name(injected) << " (seed "
     << seed << ", " << injections << " site(s) fired)";
  if (detected()) {
    os << ", detected by " << detector;
  } else {
    os << ", NOT DETECTED";
  }
  for (const std::string& line : injection_log) os << "\n  injected: " << line;
  if (!diagnostics.empty()) os << "\n" << diagnostics;
  return os.str();
}

FaultReport report_fault(const Machine& m, const std::exception& e) {
  FaultReport report;
  if (const FaultInjector* fi = m.fault_injector()) {
    report.injected = fi->plan().cls;
    report.seed = fi->plan().seed;
    report.injections = fi->injections();
    report.injection_log = fi->injection_log();
  }
  report.detector = classify(e);
  report.diagnostics = e.what();
  return report;
}

}  // namespace catrsm::sim::check
