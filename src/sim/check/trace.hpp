#pragma once
// Trace capture and deterministic replay (sim/check subsystem).
//
// An opt-in event recorder (Machine::set_tracing) logs every rank's
// communication events — p2p send/recv, simultaneous shifts, flop
// charges, collective entry/exit markers — each stamped with the rank's
// virtual clock and an FNV-1a hash of the payload, optionally with the
// full payload. Per-rank event streams need no cross-rank ordering: the
// SPMD program order of each rank IS its stream, and matched events
// cross-check each other through the payload hashes.
//
// The replayer re-executes a captured trace's communication skeleton on a
// fresh machine — re-sending the recorded payloads, verifying every
// received payload bit-for-bit against the recorded hash, re-charging the
// recorded flops — and then verifies the replayed per-rank S/W/F counters
// and virtual clocks are exactly equal to the recorded ones. A divergence
// faults with the rank, event index, and both values: the debugging tool
// for scheduler or transport changes ("same trace, different costs"
// localizes the first drifting event).
//
// Traces serialize to a compact binary file (native endianness — a
// debugging artifact, not an interchange format).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost.hpp"
#include "sim/machine.hpp"

namespace catrsm::sim::check {

/// Thrown by replay() on any divergence from the recorded run — payload
/// bytes, event shape, virtual clocks, or final S/W/F.
class ReplayMismatchError : public Error {
 public:
  explicit ReplayMismatchError(const std::string& what) : Error(what) {}
};

enum class EventKind : std::uint8_t {
  kSend = 0,
  kRecv,
  kShift,
  kFlops,
  kCollEnter,
  kCollExit,
};

struct TraceEvent {
  EventKind kind = EventKind::kSend;
  std::int32_t peer = -1;   // send: dst; recv: src; shift: dst; coll: family
  std::int32_t peer2 = -1;  // shift: src
  std::int32_t tag = 0;     // p2p tag; coll markers: comm epoch (truncated)
  std::uint64_t words = 0;   // payload words (shift: sent; coll: total)
  std::uint64_t words2 = 0;  // shift: received words
  std::uint64_t hash = 0;    // payload hash (recv/shift: received payload)
  std::uint64_t hash2 = 0;   // shift: sent-payload hash
  double flops = 0.0;        // kFlops charge
  double vtime = 0.0;        // rank virtual clock after the event
  std::vector<double> payload;  // captured sent payload (send/shift)
};

struct Trace {
  int p = 0;
  bool payloads = false;  // sent payloads captured (required for replay)
  MachineParams params;
  std::vector<std::vector<TraceEvent>> events;  // per rank, program order
  std::vector<Cost> final_cost;                 // per rank, at run end
  std::vector<double> final_vtime;
  double critical_time = 0.0;

  void save(const std::string& path) const;
  static Trace load(const std::string& path);
};

/// FNV-1a 64-bit over the byte representation of `data[0..n)`.
std::uint64_t hash_words(const double* data, std::size_t n);

/// Per-machine event recorder; hooks in Rank::send/recv/shift/charge_flops
/// and the coll:: entry points feed it. All methods are called by the
/// owning rank only, so per-rank streams need no locking.
class TraceRecorder {
 public:
  TraceRecorder(int p, bool capture_payloads);

  void begin_run(const MachineParams& params);
  void on_send(int rank, int dst, int tag, const Buffer& data, double vtime);
  void on_recv(int rank, int src, int tag, const Buffer& data, double vtime);
  void on_shift(int rank, int dst, int src, int tag, const Buffer& sent,
                const Buffer& got, double vtime);
  void on_flops(int rank, double f, double vtime);
  void on_coll(int rank, bool enter, int family, std::uint64_t epoch,
               std::size_t words, double vtime);
  void finish_run(const std::vector<Cost>& final_cost,
                  const std::vector<double>& final_vtime,
                  double critical_time);

  /// Move the finished trace out (the recorder stays armed for the next
  /// run).
  Trace take();

  /// True when the most recent run reached finish_run — i.e. the trace is
  /// finalized and replayable. A faulted run leaves this false (its
  /// events stop at the fault and final costs were never recorded), and
  /// Machine::take_trace refuses to hand out such a torso.
  bool run_complete() const { return complete_; }

 private:
  int p_;
  bool capture_payloads_;
  bool complete_ = false;
  Trace trace_;
};

/// Re-execute `trace` on `m` and verify bit-identical payloads and
/// exactly equal S/W/F costs and virtual clocks; throws Error with the
/// first divergence. Requires a payload-capturing trace and a machine
/// with the same p and params. Returns the replayed run's stats.
RunStats replay(Machine& m, const Trace& trace);

/// First difference between two traces as a human-readable line; empty
/// when the traces are identical (payload presence aside, hashes decide).
std::string diff(const Trace& a, const Trace& b);

}  // namespace catrsm::sim::check
