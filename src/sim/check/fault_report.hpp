#pragma once
// Structured fault reporting for the detector-coverage matrix (sim/check).
//
// The fault-injection layer (sim/fault.hpp) seeds transport-level bugs;
// this module names what caught them. Each detecting subsystem throws a
// typed error, and report_fault() folds the thrown exception together
// with the armed plan's injection record into one FaultReport: which
// fault was injected (class, seed, fire count, per-site log lines) and
// which detector fired (a stable subsystem name plus the detector's own
// per-rank diagnostics). Tests assert on the pairing; an empty detector
// name means the fault escaped detection — exactly the outcome the
// coverage matrix exists to rule out.
//
// The transport's own live verification lives here too (the errors, not
// the mechanism): when a plan is armed, every delivery is stamped with a
// pre-injection FNV-1a payload checksum and a per-(src, dst, tag)
// sequence number, and every take verifies both. Checksum mismatch =
// corruption; a sequence regression or repeat = reorder/duplicate; a gap
// = a lost message with later traffic on the same edge. Disarmed runs
// never compute either.

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "support/check.hpp"

namespace catrsm::sim {
class Machine;
}

namespace catrsm::sim::check {

/// Live transport verification: received payload bytes differ from the
/// sender-side pre-injection checksum (detects in-flight corruption).
class TransportChecksumError : public Error {
 public:
  explicit TransportChecksumError(const std::string& what) : Error(what) {}
};

/// Live transport verification: per-(src, dst, tag) sequence numbers
/// arrived out of order, repeated (duplicate), or with a gap (drop with
/// later traffic on the same edge).
class TransportSequenceError : public Error {
 public:
  explicit TransportSequenceError(const std::string& what) : Error(what) {}
};

/// End-of-run mailbox sweep (armed runs only): messages were still queued
/// or held back after every rank finished — an injected duplicate or
/// delayed delivery that no receive ever consumed.
class TransportResidueError : public Error {
 public:
  explicit TransportResidueError(const std::string& what) : Error(what) {}
};

/// The kill-rank fault itself: thrown at the victim's death site; peers
/// unwind through the machine's abort propagation and Machine::run
/// rethrows this as the run's primary error.
class RankKilledError : public Error {
 public:
  explicit RankKilledError(const std::string& what) : Error(what) {}
};

/// What was injected and what caught it — the row of the coverage matrix
/// a faulted run landed in.
struct FaultReport {
  FaultClass injected = FaultClass::kDrop;
  std::uint64_t seed = 0;
  int injections = 0;                      // fault sites actually fired
  std::vector<std::string> injection_log;  // one line per fired site
  /// Stable name of the detecting subsystem: "deadlock-wfg",
  /// "collective-matcher", "payload-checksum", "sequence-check",
  /// "residual-sweep", "rank-abort", "trace-replay", or
  /// "invariant-check" (a CATRSM_CHECK/ASSERT tripped first). Empty when
  /// the exception came from outside the library's detectors.
  std::string detector;
  /// The detector's own message — per-rank wait dumps, both sides of a
  /// collective mismatch, the diverging replay event, etc.
  std::string diagnostics;

  bool detected() const { return !detector.empty(); }
  std::string to_string() const;
};

/// Classify the error a faulted run threw. `m` supplies the armed plan
/// and its injection record (the report is zeroed when no plan is
/// armed); `e` is the exception Machine::run (or replay) surfaced.
FaultReport report_fault(const Machine& m, const std::exception& e);

}  // namespace catrsm::sim::check
