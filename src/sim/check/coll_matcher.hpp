#pragma once
// Dynamic collective-matching validator (sim/check subsystem).
//
// PARCOACH-style collective-correctness checking, done exactly instead of
// conservatively: the simulator sees every rank's actual calls, so each
// coll:: entry point registers (communicator epoch, op family, root,
// per-rank counts) with this per-machine matcher, and the FIRST rank to
// diverge from its peers faults immediately — with both sides' records in
// the message — instead of producing a tag mismatch that blocks forever.
//
// Matching unit: the k-th collective call on a given communicator epoch.
// The epoch registry already guarantees all members of one epoch agree on
// the ordered member list, so a rank that builds a communicator with a
// *different* member list lands on a different epoch and can never be
// cross-matched; that mistake surfaces as a deadlock, and the matcher
// contributes each rank's last-collective context line to the deadlock
// dump so the dump shows the two disagreeing member lists side by side.
//
// The matcher performs no cost accounting and sends no messages, so
// modeled S/W/F are bit-identical with checking on or off. It is opt-in:
// Machine::set_collective_checking(true) or CATRSM_SIM_CHECK=1.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace catrsm::sim::check {

/// Thrown (on the offending rank) when two members of one communicator
/// disagree on the collective sequence; what() carries both records.
class CollMismatchError : public Error {
 public:
  explicit CollMismatchError(const std::string& what) : Error(what) {}
};

class CollectiveMatcher {
 public:
  explicit CollectiveMatcher(int p);

  /// Register world rank `world_rank` (communicator rank `comm_rank`)
  /// entering its next collective on epoch `epoch`. `counts` may be null
  /// (barrier); `words` is the rank's total payload. Validates against
  /// whatever a peer already registered for the same call slot and throws
  /// CollMismatchError on any disagreement.
  void enter(std::uint64_t epoch, const std::vector<int>& members,
             int world_rank, int comm_rank, int family, const char* name,
             int root, const std::vector<std::size_t>* counts,
             std::size_t words);

  /// One-line description of the rank's most recent collective entry
  /// (empty when it never entered one). Feeds the deadlock dump.
  std::string context_of(int world_rank) const;

  /// Forget all state (called at the start of every Machine::run).
  void reset();

 private:
  /// First entrant's record for one (epoch, sequence-number) call slot.
  struct Slot {
    int family = 0;
    std::string name;
    int root = -1;
    std::vector<std::size_t> counts;
    int first_rank = -1;  // world rank that created the record
    int entered = 0;      // members registered so far
  };
  struct EpochState {
    std::vector<int> members;
    std::vector<std::uint64_t> next_seq;  // per communicator rank
    std::map<std::uint64_t, Slot> slots;
  };

  mutable std::mutex mu_;
  std::map<std::uint64_t, EpochState> epochs_;
  std::vector<std::string> last_context_;  // per world rank
};

}  // namespace catrsm::sim::check
