#include "sim/handle_store.hpp"

#include "support/check.hpp"

namespace catrsm::sim {

HandleStore::HandleStore(int p) : p_(p) {
  CATRSM_CHECK(p >= 1, "HandleStore: machine needs at least one rank");
}

std::uint64_t HandleStore::create() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  auto entry = std::make_unique<Entry>();
  entry->locals.resize(static_cast<std::size_t>(p_));
  entry->epoch = ++writes_;
  entries_.emplace(id, std::move(entry));
  return id;
}

void HandleStore::release(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(id);
}

bool HandleStore::contains(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(id) != entries_.end();
}

std::size_t HandleStore::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

HandleStore::Entry& HandleStore::entry(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  CATRSM_CHECK(it != entries_.end(), "HandleStore: unknown handle id");
  return *it->second;
}

la::Matrix& HandleStore::local(std::uint64_t id, int rank) {
  CATRSM_CHECK(rank >= 0 && rank < p_, "HandleStore: rank out of range");
  return entry(id).locals[static_cast<std::size_t>(rank)];
}

std::uint64_t HandleStore::epoch(std::uint64_t id) const {
  return entry(id).epoch;
}

void HandleStore::poison(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  it->second->poisoned = true;
  it->second->epoch = ++writes_;  // invalidate every content-keyed cache
}

bool HandleStore::poisoned(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  return it != entries_.end() && it->second->poisoned;
}

void HandleStore::unpoison(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  CATRSM_CHECK(it != entries_.end(), "HandleStore: unknown handle id");
  it->second->poisoned = false;
  it->second->epoch = ++writes_;  // fresh stamp for the repaired contents
}

}  // namespace catrsm::sim
