#include "sim/handle_store.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"
#include "support/env.hpp"

namespace catrsm::sim {

HandleStore::HandleStore(int p) : p_(p) {
  CATRSM_CHECK(p >= 1, "HandleStore: machine needs at least one rank");
  // -1 (or unset) means unlimited; 0 is a legal degenerate budget (every
  // evictable entry is dropped as soon as it is idle — always re-upload).
  const long long budget =
      env::int64_or("CATRSM_HANDLE_BUDGET", -1, -1,
                    std::numeric_limits<long long>::max());
  byte_budget_ =
      budget < 0 ? kUnlimited : static_cast<std::uint64_t>(budget);
}

std::uint64_t HandleStore::create() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_id_++;
  auto entry = std::make_unique<Entry>();
  entry->locals.resize(static_cast<std::size_t>(p_));
  entry->epoch = ++writes_;
  entry->lru_tick = ++lru_clock_;
  entries_.emplace(id, std::move(entry));
  return id;
}

void HandleStore::release(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  if (it->second->resident) resident_bytes_ -= it->second->bytes;
  entries_.erase(it);
}

bool HandleStore::contains(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(id) != entries_.end();
}

std::size_t HandleStore::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

HandleStore::Entry* HandleStore::find(std::uint64_t id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : it->second.get();
}

HandleStore::Entry& HandleStore::entry(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find(id);
  CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
  return *e;
}

la::Matrix& HandleStore::local(std::uint64_t id, int rank) {
  CATRSM_CHECK(rank >= 0 && rank < p_, "HandleStore: rank out of range");
  return entry(id).locals[static_cast<std::size_t>(rank)];
}

std::uint64_t HandleStore::epoch(std::uint64_t id) const {
  return entry(id).epoch;
}

void HandleStore::poison(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find(id);
  if (e == nullptr) return;
  e->poisoned = true;
  e->epoch = ++writes_;  // invalidate every content-keyed cache
}

bool HandleStore::poisoned(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find(id);
  return e != nullptr && e->poisoned;
}

void HandleStore::unpoison(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find(id);
  CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
  e->poisoned = false;
  e->epoch = ++writes_;  // fresh stamp for the repaired contents
}

// ---------------------------------------------------------------------------
// Byte budget & LRU eviction

std::uint64_t HandleStore::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byte_budget_;
}

void HandleStore::set_byte_budget(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  byte_budget_ = bytes;
}

std::uint64_t HandleStore::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::uint64_t HandleStore::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

bool HandleStore::resident(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find(id);
  CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
  return e->resident;
}

void HandleStore::set_evictable(std::uint64_t id, bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find(id);
  CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
  e->evictable = on;
}

void HandleStore::touch_locked(Entry& e) {
  if (e.resident) resident_bytes_ -= e.bytes;
  std::uint64_t bytes = 0;
  for (const la::Matrix& m : e.locals)
    bytes += static_cast<std::uint64_t>(m.size()) * sizeof(double);
  e.bytes = bytes;
  e.resident = true;
  e.lru_tick = ++lru_clock_;
  resident_bytes_ += bytes;
}

void HandleStore::touch(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find(id);
  CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
  touch_locked(*e);
}

void HandleStore::pin(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find(id);
  CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
  ++e->pins;
}

void HandleStore::unpin(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = find(id);
  if (e == nullptr) return;  // unpin may race release in shutdown paths
  CATRSM_CHECK(e->pins > 0, "HandleStore: unpin without pin");
  --e->pins;
}

bool HandleStore::pinned(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find(id);
  CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
  return e->pins > 0;
}

void HandleStore::evict_to_budget_locked() {
  while (resident_bytes_ > byte_budget_) {
    Entry* victim = nullptr;
    for (auto& [id, e] : entries_) {
      if (!e->resident || !e->evictable || e->poisoned || e->pins > 0 ||
          e->busy > 0 || e->bytes == 0)
        continue;
      if (victim == nullptr || e->lru_tick < victim->lru_tick)
        victim = e.get();
    }
    if (victim == nullptr) return;  // nothing eligible: stay over budget
    // Drop only the blocks; id, epoch and flags survive so the api layer
    // re-scatters the identical bytes on the next use (epoch unchanged:
    // content-keyed caches remain valid across the round trip).
    for (la::Matrix& m : victim->locals) m = la::Matrix{};
    resident_bytes_ -= victim->bytes;
    victim->bytes = 0;
    victim->resident = false;
    ++evictions_;
  }
}

void HandleStore::evict_to_budget() {
  std::lock_guard<std::mutex> lock(mu_);
  evict_to_budget_locked();
}

// ---------------------------------------------------------------------------
// Run-use marks

void HandleStore::acquire_run_use(const std::vector<std::uint64_t>& ids) {
  std::unique_lock<std::mutex> lock(mu_);
  busy_cv_.wait(lock, [&] {
    for (const std::uint64_t id : ids) {
      const Entry* e = find(id);
      CATRSM_CHECK(e != nullptr, "HandleStore: unknown handle id");
      if (e->busy > 0) return false;
    }
    return true;
  });
  for (const std::uint64_t id : ids) ++find(id)->busy;
}

void HandleStore::release_run_use(const std::vector<std::uint64_t>& ids) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::uint64_t id : ids) {
      Entry* e = find(id);
      if (e == nullptr) continue;  // released mid-run teardown
      CATRSM_CHECK(e->busy > 0, "HandleStore: run-use release without acquire");
      --e->busy;
    }
  }
  busy_cv_.notify_all();
}

void HandleStore::wait_run_idle(std::uint64_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  busy_cv_.wait(lock, [&] {
    const Entry* e = find(id);
    return e == nullptr || e->busy == 0;
  });
}

}  // namespace catrsm::sim
