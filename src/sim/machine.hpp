#pragma once
// Simulated distributed-memory machine.
//
// p ranks execute a user SPMD function concurrently as cooperative fibers
// multiplexed over a persistent worker pool (see sim/scheduler.hpp —
// workers and stacks are created on the first run and reused for the
// machine's lifetime; under TSan the pool degrades to one thread per
// rank). Ranks exchange zero-copy sim::Buffer payloads through matched
// (src, dst, tag) mailboxes, one mailbox per ordered (dst, src) pair so
// concurrent senders to one receiver never contend on a lock. Every transfer advances
// alpha-beta-gamma cost counters and a per-rank *virtual clock*: a receive
// cannot complete before the sender's virtual send time, so max-over-ranks
// of the final clocks is the exact critical path length of the run under
// the machine parameters.
//
// This is the substitution for MPI on a real cluster (see DESIGN.md §2):
// the paper's claims are statements about S, W, F along the critical path,
// and this machine measures exactly those for real executions on real data.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/cost.hpp"
#include "sim/handle_store.hpp"
#include "sim/scheduler.hpp"
#include "support/check.hpp"

namespace catrsm::api {
class Context;  // forward-declared for Machine's typed driver slot
}

namespace catrsm::sim {

namespace check {
class CollectiveMatcher;  // sim/check/coll_matcher.hpp
class TraceRecorder;      // sim/check/trace.hpp
struct Trace;
}  // namespace check

class FaultInjector;  // sim/fault.hpp
struct FaultPlan;

class Machine;

/// The execution context handed to each simulated rank. Not copyable; lives
/// for the duration of Machine::run.
class Rank {
 public:
  int id() const { return id_; }
  int nprocs() const { return nprocs_; }

  /// Point-to-point send of `data` to world rank `dst` (buffered, eager:
  /// never blocks). Zero-copy: the message shares the buffer's slab.
  /// Charges S += 1, W += data.size().
  void send(int dst, Buffer data, int tag);

  /// Blocking receive from world rank `src`. Charges S += 1, W += size and
  /// synchronizes the virtual clock with the sender's send time. Returns a
  /// view of the sender's slab — no copy on the receive path either.
  Buffer recv(int src, int tag);

  /// Simultaneous exchange with `peer` (the butterfly primitive): one
  /// latency unit and max(sent, received) words, matching the model's
  /// simultaneous send+receive assumption.
  Buffer sendrecv(int peer, Buffer data, int tag);

  /// Simultaneous shifted exchange (the Bruck primitive): send to `dst`
  /// while receiving from `src` (possibly different ranks). Same cost as
  /// sendrecv: one latency unit, max(sent, received) words.
  Buffer shift(int dst, int src, Buffer data, int tag);

  /// Charge local computation of `f` flops (advances clock by gamma * f).
  void charge_flops(double f);

  /// Stable identity of the communicator with this exact ordered member
  /// list: sequential ids handed out by a per-machine registry, so two
  /// distinct groups can never share an id (unlike a hash). Every member
  /// asking for the same list gets the same id.
  std::uint64_t comm_epoch(const std::vector<int>& members);

  /// Accumulated cost counters for this rank.
  const Cost& cost() const { return cost_; }

  /// Current virtual clock value.
  double vtime() const { return vtime_; }

  /// Phase-scoped accounting: while phase labels are on the stack, every
  /// charge is attributed to each active label (so nested scopes — e.g. a
  /// driver's "algorithm" around a solver's "solve"/"update" — both see
  /// their charges). Algorithms use this to reproduce the paper's
  /// per-phase cost tables in a single run. Prefer PhaseScope over the raw
  /// push/pop.
  void push_phase(std::string name) { phase_stack_.push_back(std::move(name)); }
  void pop_phase();
  /// Innermost active label, empty when none.
  const std::string& phase() const;
  const std::map<std::string, Cost>& phase_costs() const {
    return phase_costs_;
  }

  const MachineParams& params() const;

  /// The machine's collective-matching validator, null when checking is
  /// off (see Machine::set_collective_checking). Collective entry points
  /// register their calls here.
  check::CollectiveMatcher* matcher() const;
  /// The machine's trace recorder, null when tracing is off.
  check::TraceRecorder* tracer() const;
  /// The machine's armed fault injector, null when no plan is armed (see
  /// Machine::arm_fault). Collective entry points call its skew hook.
  FaultInjector* fault_injector() const;

 private:
  friend class Machine;
  Rank(Machine* m, int id, int nprocs) : machine_(m), id_(id), nprocs_(nprocs) {}
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  void account(double msgs, double words, double flops);

  Machine* machine_;
  int id_;
  int nprocs_;
  Cost cost_;
  double vtime_ = 0.0;
  std::vector<std::string> phase_stack_;
  std::map<std::string, Cost> phase_costs_;
};

/// RAII phase scope: pops its label on exit.
class PhaseScope {
 public:
  PhaseScope(Rank& rank, std::string name) : rank_(rank) {
    rank_.push_phase(std::move(name));
  }
  ~PhaseScope() { rank_.pop_phase(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Rank& rank_;
};

/// Aggregate statistics of one simulated run.
struct RunStats {
  std::vector<Cost> per_rank;
  double critical_time = 0.0;  // max over ranks of final virtual clock
  /// Per-phase maxima over ranks (populated from Rank::set_phase labels).
  std::map<std::string, Cost> phase_max;

  /// Max over ranks — for the load-balanced algorithms in this library
  /// these coincide (to within the last level of a tree) with the paper's
  /// critical-path S, W, F.
  double max_msgs() const;
  double max_words() const;
  double max_flops() const;
  double total_words() const;  // communication volume (Irony-Toledo metric)
  Cost max_cost() const { return Cost{max_msgs(), max_words(), max_flops()}; }

  /// Max-over-ranks cost of one labeled phase; zero when absent.
  Cost phase_cost(const std::string& name) const {
    const auto it = phase_max.find(name);
    return it == phase_max.end() ? Cost{} : it->second;
  }
};

class Machine {
 public:
  explicit Machine(int p, MachineParams params = MachineParams{});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nprocs() const { return p_; }
  const MachineParams& params() const { return params_; }

  /// Execute `fn` on all p ranks concurrently; blocks until all finish.
  /// Any exception thrown by a rank is rethrown here (first one wins).
  /// Counters reset at the start of each run. Worker threads persist
  /// across runs — the first run creates the scheduler, later runs reuse
  /// its parked workers.
  RunStats run(const std::function<void(Rank&)>& fn);

  /// The persistent worker pool (created lazily by the first run).
  RankScheduler& scheduler();

  /// Rank-local persistent operand storage (created lazily): one slot per
  /// (handle, rank), surviving across runs — the machine-side backing of
  /// api::DistHandle resident operands.
  HandleStore& handle_store();

  /// Host-side slot where trsm::context_on keeps its per-machine
  /// plan-caching Context, so the Context's lifetime equals the
  /// machine's (destroyed with it). Typed but only forward-declared
  /// here: the sim layer never looks inside. Never touched by runs;
  /// same thread-affinity rules as the machine itself.
  std::shared_ptr<api::Context>& driver_context() { return driver_ctx_; }

  // --- Correctness tooling (sim/check) -----------------------------------
  // A hung run is detected unconditionally: the wait-for-graph deadlock
  // detector is always on (it costs nothing until a receive actually
  // blocks — see sim/check/deadlock.hpp for the protocol) and faults the
  // run with a per-rank diagnostic dump instead of hanging. The two
  // tools below are opt-in; neither touches the cost counters, so
  // modeled S/W/F are identical with or without them.

  /// Attach (or detach) the collective-matching validator: every coll::
  /// entry registers its (epoch, op, root, counts) and mismatched
  /// sequences fault immediately with both sides' records. Also enabled
  /// by CATRSM_SIM_CHECK=1 at machine construction. Must not be toggled
  /// during a run.
  void set_collective_checking(bool on);
  bool collective_checking() const { return matcher_ != nullptr; }

  /// Attach (or detach) the trace recorder: every run logs per-rank
  /// communication events (with payloads when capture_payloads — the
  /// replayable form). Must not be toggled during a run.
  void set_tracing(bool on, bool capture_payloads = true);
  bool tracing() const { return tracer_ != nullptr; }
  /// Move out the most recent traced run's event log (throws when
  /// tracing is off or the last run faulted before completing — a torso
  /// trace is not replayable; include sim/check/trace.hpp for Trace).
  check::Trace take_trace();

  /// Arm (or re-arm) a fault-injection plan: subsequent runs perturb the
  /// transport at the plan's deterministically seeded sites and verify
  /// payload checksums + per-edge sequence numbers on every receive. Also
  /// armed by CATRSM_SIM_FAULT=<class>:<seed>[:<rate>] at machine
  /// construction. Zero cost when never armed (one null test per
  /// transport op). Must not be toggled during a run.
  void arm_fault(const FaultPlan& plan);
  /// Disarm fault injection; the next run is byte-identical to one on a
  /// machine that never armed a plan.
  void disarm_fault();
  /// The armed injector (null when disarmed); check::report_fault reads
  /// its plan and injection record when classifying a faulted run.
  FaultInjector* fault_injector() const { return injector_.get(); }

 private:
  friend class Rank;

  struct Message {
    Buffer data;
    double sender_vtime = 0.0;  // sender clock at the instant of send
    // Transport-verification stamps, written only while a fault plan is
    // armed (zero otherwise): FNV-1a hash of the payload before any
    // injected corruption, and the per-(src, dst, tag) delivery ordinal.
    std::uint64_t checksum = 0;
    std::uint32_t seq = 0;
  };

  /// One mailbox per ordered (dst, src) pair: senders to the same receiver
  /// shard across locks instead of serializing on one mailbox-map mutex.
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // FIFO queue per tag; SPMD program order makes FIFO matching
    // sufficient and deterministic. A flat deque of (tag, queue) entries
    // beats a map here: a box sees a handful of tags, the entries (and
    // their message blocks) are reused run after run instead of being
    // reallocated, and — critically — growing a deque never invalidates
    // the queue reference a blocked receiver holds across its wait (a
    // vector would dangle it on reallocation).
    std::deque<std::pair<int, std::deque<Message>>> queues;
    std::deque<Message>& queue_for(int tag) {
      for (auto& [t, q] : queues)
        if (t == tag) return q;
      return queues.emplace_back(tag, std::deque<Message>{}).second;
    }
    // Fiber-backend rendezvous: the receiving rank's parked fiber and the
    // tag it waits for (only rank `dst` ever receives on this box, so one
    // slot suffices). Guarded by mu.
    void* waiter = nullptr;
    int waiter_tag = 0;
    // Deliveries held back by an armed delay fault (guarded by mu): each
    // is appended to its tag queue *behind* the next message delivered
    // into this box, reordering the FIFO deterministically. Invisible to
    // the deadlock detector's pending scan on purpose — a held message
    // cannot wake its receiver, so a run starved by one is a genuine
    // (and correctly declared) deadlock. Always empty when no plan is
    // armed.
    std::deque<std::pair<int, Message>> delayed;
  };

  /// Sequential communicator-epoch registry (see Rank::comm_epoch).
  std::mutex epoch_mu_;
  std::map<std::vector<int>, std::uint64_t> epoch_ids_;

  Mailbox& box_of(int dst, int src) {
    return *mailboxes_[static_cast<std::size_t>(dst) *
                           static_cast<std::size_t>(p_) +
                       static_cast<std::size_t>(src)];
  }
  void deliver(int src, int dst, int tag, Message msg);
  Message take(int dst, int src, int tag);
  void abort_all();

  // --- Wait-for-graph deadlock detection (sim/check/deadlock.hpp) --------
  // A blocking take() registers its wait record; the registration (or
  // rank completion) that makes every rank blocked-or-finished nominates
  // the caller as detection candidate, and confirm_deadlock() validates
  // the stall race-free before declaring. Sends never touch this state.
  struct WaitRecord {
    bool active = false;
    int src = -1;
    int tag = 0;
  };
  /// Record rank `dst` as blocked on (src, tag); true when every rank is
  /// now blocked or finished (caller must run confirm_deadlock()).
  bool register_blocked(int dst, int src, int tag);
  void unregister_blocked(int dst);
  /// Count a completed rank body; same candidate contract as above.
  bool finish_rank();
  /// Validate a candidate stall: false on any sign of life (a pending
  /// matching message, a wait-set change); on a genuine deadlock builds
  /// the diagnostic dump, aborts the run, and returns true.
  bool confirm_deadlock();
  /// Throw the dump as a check::DeadlockError.
  [[noreturn]] void fault_deadlock();

  int p_;
  MachineParams params_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::unique_ptr<RankScheduler> scheduler_;
  std::unique_ptr<HandleStore> handles_;
  std::shared_ptr<api::Context> driver_ctx_;

  std::mutex wait_mu_;  // guards the five fields below
  std::vector<WaitRecord> waits_;
  int n_blocked_ = 0;
  int n_finished_ = 0;
  std::uint64_t wait_seq_ = 0;  // bumped on every wait-set change
  bool deadlocked_ = false;
  std::string deadlock_dump_;  // set once by the declaring rank

  std::unique_ptr<check::CollectiveMatcher> matcher_;
  std::unique_ptr<check::TraceRecorder> tracer_;
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace catrsm::sim
