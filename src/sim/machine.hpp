#pragma once
// Simulated distributed-memory machine.
//
// p ranks execute a user SPMD function concurrently (one OS thread per
// rank). Ranks exchange messages through matched (src, dst, tag) mailboxes.
// Every transfer advances alpha-beta-gamma cost counters and a per-rank
// *virtual clock*: a receive cannot complete before the sender's virtual
// send time, so max-over-ranks of the final clocks is the exact critical
// path length of the run under the machine parameters.
//
// This is the substitution for MPI on a real cluster (see DESIGN.md §2):
// the paper's claims are statements about S, W, F along the critical path,
// and this machine measures exactly those for real executions on real data.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "sim/cost.hpp"
#include "support/check.hpp"

namespace catrsm::sim {

class Machine;

/// The execution context handed to each simulated rank. Not copyable; lives
/// for the duration of Machine::run.
class Rank {
 public:
  int id() const { return id_; }
  int nprocs() const { return nprocs_; }

  /// Point-to-point send of `data` to world rank `dst` (buffered, eager:
  /// never blocks). Charges S += 1, W += data.size().
  void send(int dst, std::span<const double> data, int tag);

  /// Blocking receive from world rank `src`. Charges S += 1, W += size and
  /// synchronizes the virtual clock with the sender's send time.
  std::vector<double> recv(int src, int tag);

  /// Simultaneous exchange with `peer` (the butterfly primitive): one
  /// latency unit and max(sent, received) words, matching the model's
  /// simultaneous send+receive assumption.
  std::vector<double> sendrecv(int peer, std::span<const double> data,
                               int tag);

  /// Simultaneous shifted exchange (the Bruck primitive): send to `dst`
  /// while receiving from `src` (possibly different ranks). Same cost as
  /// sendrecv: one latency unit, max(sent, received) words.
  std::vector<double> shift(int dst, int src, std::span<const double> data,
                            int tag);

  /// Charge local computation of `f` flops (advances clock by gamma * f).
  void charge_flops(double f);

  /// Accumulated cost counters for this rank.
  const Cost& cost() const { return cost_; }

  /// Current virtual clock value.
  double vtime() const { return vtime_; }

  /// Phase-scoped accounting: while phase labels are on the stack, every
  /// charge is attributed to each active label (so nested scopes — e.g. a
  /// driver's "algorithm" around a solver's "solve"/"update" — both see
  /// their charges). Algorithms use this to reproduce the paper's
  /// per-phase cost tables in a single run. Prefer PhaseScope over the raw
  /// push/pop.
  void push_phase(std::string name) { phase_stack_.push_back(std::move(name)); }
  void pop_phase();
  /// Innermost active label, empty when none.
  const std::string& phase() const;
  const std::map<std::string, Cost>& phase_costs() const {
    return phase_costs_;
  }

  const MachineParams& params() const;

 private:
  friend class Machine;
  Rank(Machine* m, int id, int nprocs) : machine_(m), id_(id), nprocs_(nprocs) {}
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  void account(double msgs, double words, double flops);

  Machine* machine_;
  int id_;
  int nprocs_;
  Cost cost_;
  double vtime_ = 0.0;
  std::vector<std::string> phase_stack_;
  std::map<std::string, Cost> phase_costs_;
};

/// RAII phase scope: pops its label on exit.
class PhaseScope {
 public:
  PhaseScope(Rank& rank, std::string name) : rank_(rank) {
    rank_.push_phase(std::move(name));
  }
  ~PhaseScope() { rank_.pop_phase(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Rank& rank_;
};

/// Aggregate statistics of one simulated run.
struct RunStats {
  std::vector<Cost> per_rank;
  double critical_time = 0.0;  // max over ranks of final virtual clock
  /// Per-phase maxima over ranks (populated from Rank::set_phase labels).
  std::map<std::string, Cost> phase_max;

  /// Max over ranks — for the load-balanced algorithms in this library
  /// these coincide (to within the last level of a tree) with the paper's
  /// critical-path S, W, F.
  double max_msgs() const;
  double max_words() const;
  double max_flops() const;
  double total_words() const;  // communication volume (Irony-Toledo metric)
  Cost max_cost() const { return Cost{max_msgs(), max_words(), max_flops()}; }

  /// Max-over-ranks cost of one labeled phase; zero when absent.
  Cost phase_cost(const std::string& name) const {
    const auto it = phase_max.find(name);
    return it == phase_max.end() ? Cost{} : it->second;
  }
};

class Machine {
 public:
  explicit Machine(int p, MachineParams params = MachineParams{});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nprocs() const { return p_; }
  const MachineParams& params() const { return params_; }

  /// Execute `fn` on all p ranks concurrently; blocks until all finish.
  /// Any exception thrown by a rank is rethrown here (first one wins).
  /// Counters reset at the start of each run.
  RunStats run(const std::function<void(Rank&)>& fn);

 private:
  friend class Rank;

  struct Message {
    std::vector<double> data;
    double sender_vtime = 0.0;  // sender clock at the instant of send
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // FIFO queue per (src, tag); SPMD program order makes FIFO matching
    // sufficient and deterministic.
    std::map<std::pair<int, int>, std::deque<Message>> queues;
  };

  void deliver(int src, int dst, int tag, Message msg);
  Message take(int dst, int src, int tag);
  void abort_all();

  int p_;
  MachineParams params_;
  std::atomic<bool> aborted_{false};
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace catrsm::sim
