#pragma once
// Simulated distributed-memory machine.
//
// p ranks execute a user SPMD function concurrently as cooperative fibers
// multiplexed over a persistent worker pool (see sim/scheduler.hpp —
// workers and stacks are created on the first run and reused for the
// machine's lifetime; under TSan the pool degrades to one thread per
// rank). Ranks exchange zero-copy sim::Buffer payloads through matched
// (src, dst, tag) mailboxes, one mailbox per ordered (dst, src) pair so
// concurrent senders to one receiver never contend on a lock. Every transfer advances
// alpha-beta-gamma cost counters and a per-rank *virtual clock*: a receive
// cannot complete before the sender's virtual send time, so max-over-ranks
// of the final clocks is the exact critical path length of the run under
// the machine parameters.
//
// Runs come in two flavors: Machine::run blocks (and is exactly
// run_async + RunTicket::wait), while Machine::run_async dispatches an
// EXECUTION STREAM and returns a future-like RunTicket immediately. Up
// to CATRSM_SIM_STREAMS runs (default 4) can be in flight at once; each
// gets its own RunContext — mailboxes, wait-for-graph, virtual clocks,
// S/W/F counters, collective matcher, trace recorder, and fault injector
// are all per-run state — so streams never exchange messages, a deadlock
// or injected fault in one stream cannot abort or poison another, and
// every stream's modeled costs are byte-identical to the same run
// executed alone. Only the communicator-epoch registry is shared (ids
// depend solely on the member list, so sharing cannot leak state across
// runs). Overlap is real: a worker whose fibers are all blocked in one
// stream runs runnable fibers of another instead of parking.
//
// This is the substitution for MPI on a real cluster (see DESIGN.md §2):
// the paper's claims are statements about S, W, F along the critical path,
// and this machine measures exactly those for real executions on real data.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/cost.hpp"
#include "sim/handle_store.hpp"
#include "sim/scheduler.hpp"
#include "support/check.hpp"

namespace catrsm::api {
class Context;  // forward-declared for Machine's typed driver slot
}

namespace catrsm::sim {

namespace check {
class CollectiveMatcher;  // sim/check/coll_matcher.hpp
class TraceRecorder;      // sim/check/trace.hpp
struct Trace;
}  // namespace check

class FaultInjector;  // sim/fault.hpp
struct FaultPlan;

class Machine;
class RunContext;   // per-run state, private to machine.cpp
struct MailboxSet;  // one run's p*p mailboxes, pooled across runs

/// The execution context handed to each simulated rank. Not copyable; lives
/// for the duration of one run.
class Rank {
 public:
  int id() const { return id_; }
  int nprocs() const { return nprocs_; }

  /// Point-to-point send of `data` to world rank `dst` (buffered, eager:
  /// never blocks). Zero-copy: the message shares the buffer's slab.
  /// Charges S += 1, W += data.size().
  void send(int dst, Buffer data, int tag);

  /// Blocking receive from world rank `src`. Charges S += 1, W += size and
  /// synchronizes the virtual clock with the sender's send time. Returns a
  /// view of the sender's slab — no copy on the receive path either.
  Buffer recv(int src, int tag);

  /// Simultaneous exchange with `peer` (the butterfly primitive): one
  /// latency unit and max(sent, received) words, matching the model's
  /// simultaneous send+receive assumption.
  Buffer sendrecv(int peer, Buffer data, int tag);

  /// Simultaneous shifted exchange (the Bruck primitive): send to `dst`
  /// while receiving from `src` (possibly different ranks). Same cost as
  /// sendrecv: one latency unit, max(sent, received) words.
  Buffer shift(int dst, int src, Buffer data, int tag);

  /// Charge local computation of `f` flops (advances clock by gamma * f).
  void charge_flops(double f);

  /// Stable identity of the communicator with this exact ordered member
  /// list: sequential ids handed out by a per-machine registry, so two
  /// distinct groups can never share an id (unlike a hash). Every member
  /// asking for the same list gets the same id — including members in
  /// different concurrent runs, which is safe because tags only ever
  /// match within a run's own mailboxes.
  std::uint64_t comm_epoch(const std::vector<int>& members);

  /// Accumulated cost counters for this rank.
  const Cost& cost() const { return cost_; }

  /// Current virtual clock value.
  double vtime() const { return vtime_; }

  /// Phase-scoped accounting: while phase labels are on the stack, every
  /// charge is attributed to each active label (so nested scopes — e.g. a
  /// driver's "algorithm" around a solver's "solve"/"update" — both see
  /// their charges). Algorithms use this to reproduce the paper's
  /// per-phase cost tables in a single run. Prefer PhaseScope over the raw
  /// push/pop.
  void push_phase(std::string name) { phase_stack_.push_back(std::move(name)); }
  void pop_phase();
  /// Innermost active label, empty when none.
  const std::string& phase() const;
  const std::map<std::string, Cost>& phase_costs() const {
    return phase_costs_;
  }

  const MachineParams& params() const;

  /// This run's collective-matching validator, null when checking is
  /// off (see Machine::set_collective_checking). Collective entry points
  /// register their calls here.
  check::CollectiveMatcher* matcher() const;
  /// This run's trace recorder, null when tracing is off.
  check::TraceRecorder* tracer() const;
  /// This run's fault injector, null when no plan is armed (see
  /// Machine::arm_fault). Collective entry points call its skew hook.
  FaultInjector* fault_injector() const;

 private:
  friend class Machine;
  friend class RunContext;
  Rank(RunContext* rc, int id, int nprocs)
      : run_(rc), id_(id), nprocs_(nprocs) {}
  Rank(const Rank&) = delete;
  Rank& operator=(const Rank&) = delete;

  void account(double msgs, double words, double flops);

  RunContext* run_;
  int id_;
  int nprocs_;
  Cost cost_;
  double vtime_ = 0.0;
  std::vector<std::string> phase_stack_;
  std::map<std::string, Cost> phase_costs_;
};

/// RAII phase scope: pops its label on exit.
class PhaseScope {
 public:
  PhaseScope(Rank& rank, std::string name) : rank_(rank) {
    rank_.push_phase(std::move(name));
  }
  ~PhaseScope() { rank_.pop_phase(); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Rank& rank_;
};

/// Aggregate statistics of one simulated run.
struct RunStats {
  std::vector<Cost> per_rank;
  double critical_time = 0.0;  // max over ranks of final virtual clock
  /// Per-phase maxima over ranks (populated from Rank::set_phase labels).
  std::map<std::string, Cost> phase_max;

  /// Max over ranks — for the load-balanced algorithms in this library
  /// these coincide (to within the last level of a tree) with the paper's
  /// critical-path S, W, F.
  double max_msgs() const;
  double max_words() const;
  double max_flops() const;
  double total_words() const;  // communication volume (Irony-Toledo metric)
  Cost max_cost() const { return Cost{max_msgs(), max_words(), max_flops()}; }

  /// Max-over-ranks cost of one labeled phase; zero when absent.
  Cost phase_cost(const std::string& name) const {
    const auto it = phase_max.find(name);
    return it == phase_max.end() ? Cost{} : it->second;
  }
};

/// Future-like handle of one in-flight simulated run (one execution
/// stream). Obtained from Machine::run_async; must not outlive its
/// Machine. Copyable (shares the run's state).
class RunTicket {
 public:
  RunTicket() = default;
  bool valid() const { return rc_ != nullptr; }
  /// True once every rank of the run finished (success or failure).
  bool done() const;
  /// Block until the run finishes, then assemble and return its stats.
  /// The first rank error is rethrown (a deadlock declaration outranks
  /// per-rank unwind errors; transport residue of an armed run faults
  /// here too). Idempotent: later calls return the same stats or rethrow
  /// the same error. Also deposits the run's trace recorder / fault
  /// injector into the machine's last-run observation slots (see
  /// Machine::take_trace / Machine::fault_injector).
  RunStats wait();
  /// Transport faults injected into THIS run (0 when no plan was armed).
  /// Valid after wait() returned or threw — per-run, so a fault firing
  /// in a concurrent stream never shows up here.
  int injections() const;

 private:
  friend class Machine;
  explicit RunTicket(std::shared_ptr<RunContext> rc) : rc_(std::move(rc)) {}
  std::shared_ptr<RunContext> rc_;
};

class Machine {
 public:
  explicit Machine(int p, MachineParams params = MachineParams{});
  /// Blocks until every in-flight run finished (unwaited tickets keep
  /// their results; their streams are drained, not cancelled).
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int nprocs() const { return p_; }
  const MachineParams& params() const { return params_; }

  /// Execute `fn` on all p ranks concurrently; blocks until all finish.
  /// Any exception thrown by a rank is rethrown here (first one wins).
  /// Exactly run_async(fn).wait() — worker threads persist across runs;
  /// the first run creates the scheduler, later runs reuse its parked
  /// workers.
  RunStats run(const std::function<void(Rank&)>& fn);

  /// Dispatch `fn` on all p ranks as an independent execution stream and
  /// return immediately. Up to max_streams() runs fly at once; when the
  /// cap is reached this blocks until the oldest in-flight run drains.
  /// Each stream has private mailboxes, clocks, counters and tooling —
  /// see the file comment for the isolation guarantees. `fn` is copied
  /// (it outlives the call). The ticket (any copy) must be wait()ed or
  /// dropped before the machine is destroyed. `on_complete` (optional)
  /// fires on a worker thread the moment the last rank finishes — before
  /// any wait() returns — success or failure; the api layer uses it to
  /// release handle-store run-use marks without requiring the host to
  /// wait the ticket first.
  RunTicket run_async(const std::function<void(Rank&)>& fn,
                      std::function<void()> on_complete = nullptr);

  /// In-flight run cap (CATRSM_SIM_STREAMS, default 4).
  int max_streams() const { return max_streams_; }

  /// The persistent worker pool (created lazily by the first run).
  RankScheduler& scheduler();

  /// Rank-local persistent operand storage (created lazily): one slot per
  /// (handle, rank), surviving across runs — the machine-side backing of
  /// api::DistHandle resident operands.
  HandleStore& handle_store();

  /// Host-side slot where trsm::context_on keeps its per-machine
  /// plan-caching Context, so the Context's lifetime equals the
  /// machine's (destroyed with it). Typed but only forward-declared
  /// here: the sim layer never looks inside. Never touched by runs;
  /// same thread-affinity rules as the machine itself.
  std::shared_ptr<api::Context>& driver_context() { return driver_ctx_; }

  // --- Correctness tooling (sim/check) -----------------------------------
  // A hung run is detected unconditionally: the wait-for-graph deadlock
  // detector is always on (it costs nothing until a receive actually
  // blocks — see sim/check/deadlock.hpp for the protocol) and faults the
  // run with a per-rank diagnostic dump instead of hanging. The two
  // tools below are opt-in; neither touches the cost counters, so
  // modeled S/W/F are identical with or without them. Each run gets its
  // own instance built from the machine-level setting at run_async time.

  /// Attach (or detach) the collective-matching validator: every coll::
  /// entry registers its (epoch, op, root, counts) and mismatched
  /// sequences fault immediately with both sides' records. Also enabled
  /// by CATRSM_SIM_CHECK=1 at machine construction. Must not be toggled
  /// during a run.
  void set_collective_checking(bool on);
  bool collective_checking() const { return checking_on_; }

  /// Attach (or detach) the trace recorder: every run logs per-rank
  /// communication events (with payloads when capture_payloads — the
  /// replayable form). Must not be toggled during a run.
  void set_tracing(bool on, bool capture_payloads = true);
  bool tracing() const { return tracer_ != nullptr; }
  /// Move out the most recently WAITED traced run's event log (throws
  /// when tracing is off or that run faulted before completing — a torso
  /// trace is not replayable; include sim/check/trace.hpp for Trace).
  check::Trace take_trace();

  /// Arm (or re-arm) a fault-injection plan: subsequent runs perturb the
  /// transport at the plan's deterministically seeded sites and verify
  /// payload checksums + per-edge sequence numbers on every receive. Also
  /// armed by CATRSM_SIM_FAULT=<class>:<seed>[:<rate>] at machine
  /// construction. Zero cost when never armed (one null test per
  /// transport op). Must not be toggled during a run. Injection decisions
  /// are pure functions of (seed, logical coordinates), so each run's
  /// private injector fires at exactly the sites the shared one did.
  void arm_fault(const FaultPlan& plan);
  /// Disarm fault injection; the next run is byte-identical to one on a
  /// machine that never armed a plan.
  void disarm_fault();
  /// The injector of the most recently waited armed run (the armed plan's
  /// pristine injector before any run); null when disarmed.
  /// check::report_fault reads its plan and injection record when
  /// classifying a faulted run. Per-run records: prefer
  /// RunTicket::injections when streams overlap.
  FaultInjector* fault_injector() const { return injector_.get(); }

 private:
  friend class Rank;
  friend class RunContext;
  friend class RunTicket;

  /// Pop (or build) a reset mailbox set for a new run; runs_mu_ held.
  std::unique_ptr<MailboxSet> acquire_mailboxes_locked();
  /// Drop finished runs from the in-flight list; runs_mu_ held.
  void prune_finished_locked();
  /// Return the run's mailboxes to the pool, remove it from the in-flight
  /// list, and deposit its tracer/injector into the last-run slots.
  /// Called exactly once per run, from RunTicket::wait.
  void retire_run(RunContext* rc);

  /// Sequential communicator-epoch registry (see Rank::comm_epoch).
  std::mutex epoch_mu_;
  std::map<std::vector<int>, std::uint64_t> epoch_ids_;

  int p_;
  MachineParams params_;
  std::unique_ptr<RankScheduler> scheduler_;
  std::unique_ptr<HandleStore> handles_;
  std::shared_ptr<api::Context> driver_ctx_;

  // Tool settings, applied to each new run at run_async time.
  bool checking_on_ = false;
  bool tracing_on_ = false;
  bool trace_payloads_ = true;
  std::unique_ptr<FaultPlan> armed_plan_;

  // Last-run observation slots (deposited by RunTicket::wait): keep the
  // serial-flow semantics of take_trace() / fault_injector() byte-exact.
  std::unique_ptr<check::TraceRecorder> tracer_;
  std::unique_ptr<FaultInjector> injector_;

  // In-flight streams + mailbox pool (both guarded by runs_mu_).
  int max_streams_;
  std::mutex runs_mu_;
  std::vector<std::shared_ptr<RunContext>> inflight_;
  std::vector<std::unique_ptr<MailboxSet>> mailbox_pool_;
};

}  // namespace catrsm::sim
