#pragma once
// Persistent rank scheduler backing Machine::run / Machine::run_async.
//
// The seed execution model spawned and joined p fresh OS threads on every
// run, so a Plan::execute_batch of m items at p ranks paid m*p thread
// start-ups — and, worse, every blocked receive cost a kernel context
// switch. Production machines simulate p = 64+ ranks on a handful of
// cores, where that kernel churn dominates wall-clock while the cost
// model charges nothing for it.
//
// The scheduler therefore runs ranks as cooperative FIBERS multiplexed
// over a small pool of persistent worker threads (min(p, hardware cores)
// by default; override with CATRSM_SIM_WORKERS). On x86-64 the switch is
// a ~20-instruction register save/restore; elsewhere it falls back to
// ucontext swapcontext. The distinction matters more than it sounds:
// glibc's swapcontext makes an rt_sigprocmask SYSCALL on every switch to
// save the signal mask, and at simulator message sizes that syscall was
// measured at >90% of total run CPU. Ranks never touch per-fiber signal
// masks, so the fast path skips the mask entirely and keeps switches in
// user space.
// A receive that would block yields the fiber back to its worker — a
// user-space context switch — and the worker runs the next runnable
// rank; a worker parks on its condition variable only when every fiber
// it owns is blocked on a message from another worker. Workers are
// created once; fiber stacks live in a freelist and are reused.
//
// Concurrency: submit() dispatches one SUBMISSION (p rank tasks) and
// returns immediately; several submissions can be in flight at once,
// their fibers interleaved on the same workers. A worker that would
// otherwise park because every fiber of run A is blocked instead runs
// runnable fibers of run B — that overlap is where multi-stream
// throughput comes from. run() is submit() + wait().
//
// Fallback: under Thread- or AddressSanitizer (which cannot track
// ucontext stack switches without fiber annotations), on non-Linux
// hosts, or with CATRSM_SIM_FIBERS=0, the scheduler degrades to one
// persistent worker thread per rank with condition-variable blocking —
// same semantics, same persistence, kernel-scheduled. Concurrent
// submissions enqueue FIFO per worker there, so a later submission's
// rank task runs on worker i only after earlier tasks on worker i
// finished; cross-rank blocking still never deadlocks because every
// rank has its own worker (W == p in that backend).
//
// Worker/fiber assignment is static: rank i always lives on worker
// i % W (NOT necessarily worker i — there are fewer workers than ranks
// in the fiber backend), so each rank's thread identity is stable across
// runs — tests assert reuse by capturing std::this_thread::get_id()
// inside consecutive runs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace catrsm::sim {

class RankScheduler {
 public:
  /// One in-flight dispatch of p rank tasks. Opaque: create via submit(),
  /// query via RankScheduler::wait / done.
  class Submission {
   private:
    friend class RankScheduler;
    std::function<void(int)> job;
    /// Invoked on a worker thread when the last rank task finishes,
    /// BEFORE waiters are released — when wait() returns, the callback
    /// has completed.
    std::function<void()> on_complete;
    std::atomic<int> remaining{0};
    mutable std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  using SubmissionPtr = std::shared_ptr<Submission>;

  /// Start the worker pool for p ranks (workers park until the first run).
  explicit RankScheduler(int p);
  /// Wakes and joins every worker. All submissions must have completed.
  ~RankScheduler();

  RankScheduler(const RankScheduler&) = delete;
  RankScheduler& operator=(const RankScheduler&) = delete;

  int size() const { return p_; }
  /// Number of OS worker threads backing the p ranks.
  int workers() const { return static_cast<int>(workers_.size()); }
  /// True when ranks run as cooperative fibers (false: thread-per-rank).
  bool fibers() const { return use_fibers_; }

  /// Dispatch job(i) for every i in [0, p) as one submission and return
  /// immediately; rank i runs on worker i % W, interleaved with any other
  /// in-flight submissions. The job must not throw (Machine wraps the
  /// rank body with its own error capture; a leak here aborts the run).
  /// Must not be called from inside a fiber. `on_complete` (optional)
  /// fires on a worker thread when the last rank finishes.
  SubmissionPtr submit(std::function<void(int)> job,
                       std::function<void()> on_complete = nullptr);
  /// Block until every rank task of `sub` finished.
  void wait(const SubmissionPtr& sub);
  /// True once every rank task of `sub` finished.
  static bool done(const SubmissionPtr& sub);

  /// submit() + wait(): execute job(i) for every i in [0, p) and block
  /// until all ranks finish.
  void run(const std::function<void(int)>& job);

  /// Number of completed submissions since construction.
  std::uint64_t runs() const {
    return completed_.load(std::memory_order_acquire);
  }

  // --- Cooperative blocking hooks (used by Machine's mailboxes) -----------
  /// Opaque handle of the calling fiber; nullptr when the caller is not a
  /// scheduler fiber (thread backend, or outside run()).
  static void* current_fiber();
  /// Park the calling fiber until wake_fiber(); returns immediately when
  /// a wake already arrived. Only valid when current_fiber() != nullptr.
  static void block_current_fiber();
  /// Mark a parked fiber runnable again (safe from any thread). A stale
  /// wake on a fiber that has since finished or been recycled is benign:
  /// it at worst causes one spurious wakeup, and blocked receives re-check
  /// their condition.
  static void wake_fiber(void* fiber);

 private:
  struct Fiber;
  struct Worker;
  struct Task;  // thread backend: one queued (submission, rank) pair

  void worker_loop(Worker& w);
  void thread_worker_loop(Worker& w);
  void fiber_worker_loop(Worker& w);
  void complete_task(const SubmissionPtr& sub);
  static void fiber_trampoline(unsigned int hi, unsigned int lo);
  /// Fast-swap fiber body: invoked by the assembly entry thunk with the
  /// Fiber* seeded into the initial stack frame; runs the rank job and
  /// switches back to the owning worker. Never returns.
  static void fiber_main(void* fiber);

  int p_;
  bool use_fibers_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::mutex submit_mu_;  // serializes submissions (FIFO order per worker)
  std::mutex free_mu_;    // guards the fiber freelist
  std::vector<std::unique_ptr<Fiber>> all_fibers_;  // owns every fiber ever made
  std::vector<Fiber*> free_fibers_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace catrsm::sim
