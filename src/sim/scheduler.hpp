#pragma once
// Persistent rank scheduler backing Machine::run.
//
// The seed execution model spawned and joined p fresh OS threads on every
// run, so a Plan::execute_batch of m items at p ranks paid m*p thread
// start-ups — and, worse, every blocked receive cost a kernel context
// switch. Production machines simulate p = 64+ ranks on a handful of
// cores, where that kernel churn dominates wall-clock while the cost
// model charges nothing for it.
//
// The scheduler therefore runs ranks as cooperative FIBERS (ucontext
// stacks) multiplexed over a small pool of persistent worker threads
// (min(p, hardware cores) by default; override with CATRSM_SIM_WORKERS).
// A receive that would block yields the fiber back to its worker — a
// user-space context switch — and the worker runs the next runnable
// rank; a worker parks on its condition variable only when every fiber
// it owns is blocked on a message from another worker. Workers and
// fiber stacks are created once and reused by every run.
//
// Fallback: under Thread- or AddressSanitizer (which cannot track
// ucontext stack switches without fiber annotations), on non-Linux
// hosts, or with CATRSM_SIM_FIBERS=0, the scheduler degrades to one
// persistent worker thread per rank with condition-variable blocking —
// same semantics, same persistence, kernel-scheduled.
//
// Worker/fiber assignment is static: rank i always lives on worker
// i % W (NOT necessarily worker i — there are fewer workers than ranks
// in the fiber backend), so each rank's thread identity is stable across
// runs — tests assert reuse by capturing std::this_thread::get_id()
// inside consecutive runs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace catrsm::sim {

class RankScheduler {
 public:
  /// Start the worker pool for p ranks (workers park until the first run).
  explicit RankScheduler(int p);
  /// Wakes and joins every worker.
  ~RankScheduler();

  RankScheduler(const RankScheduler&) = delete;
  RankScheduler& operator=(const RankScheduler&) = delete;

  int size() const { return p_; }
  /// Number of OS worker threads backing the p ranks.
  int workers() const { return static_cast<int>(workers_.size()); }
  /// True when ranks run as cooperative fibers (false: thread-per-rank).
  bool fibers() const { return use_fibers_; }

  /// Execute job(i) for every i in [0, p), concurrently across workers
  /// and cooperatively within one; blocks until all ranks finish. The
  /// job must not throw (Machine::run wraps the rank body with its own
  /// error capture; a leak here aborts the run and rethrows). Not
  /// reentrant, and must not be called from inside a fiber.
  void run(const std::function<void(int)>& job);

  /// Number of completed run() dispatches since construction.
  std::uint64_t runs() const { return generation_; }

  // --- Cooperative blocking hooks (used by Machine's mailboxes) -----------
  /// Opaque handle of the calling fiber; nullptr when the caller is not a
  /// scheduler fiber (thread backend, or outside run()).
  static void* current_fiber();
  /// Park the calling fiber until wake_fiber(); returns immediately when
  /// a wake already arrived. Only valid when current_fiber() != nullptr.
  static void block_current_fiber();
  /// Mark a parked fiber runnable again (safe from any thread).
  static void wake_fiber(void* fiber);
  /// Mark every fiber of the current run runnable (abort propagation).
  void wake_all_fibers();

 private:
  struct Fiber;
  struct Worker;

  void worker_loop(Worker& w);
  void thread_worker_loop(Worker& w);
  void fiber_worker_loop(Worker& w);
  static void fiber_trampoline(unsigned int hi, unsigned int lo);

  int p_;
  bool use_fibers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_workers_ = 0;
  bool shutdown_ = false;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace catrsm::sim
