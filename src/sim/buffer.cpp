#include "sim/buffer.hpp"

#include <cstring>

#include "support/check.hpp"

namespace catrsm::sim {

Buffer::Buffer(std::span<const double> s) {
  if (s.empty()) return;
  slab_ = Slab::uninit(s.size());
  std::memcpy(slab_->data(), s.data(), s.size() * sizeof(double));
  len_ = s.size();
}

Buffer Buffer::uninit(std::size_t n) {
  if (n == 0) return Buffer{};
  return Buffer(Slab::uninit(n), 0, n);
}

Buffer Buffer::slice(std::size_t off, std::size_t len) const {
  CATRSM_CHECK(off + len <= len_, "Buffer::slice: view out of range");
  if (len == 0) return Buffer{};
  return Buffer(slab_, off_ + off, len);
}

double* Buffer::mutable_data() {
  if (!slab_) return nullptr;
  if (slab_.use_count() != 1) {
    auto copy = Slab::uninit(len_);
    std::memcpy(copy->data(), data(), len_ * sizeof(double));
    slab_ = std::move(copy);
    off_ = 0;
  }
  return slab_->data() + off_;
}

std::vector<double> Buffer::take() && {
  if (!slab_) return {};
  if (slab_->adopted() && slab_.use_count() == 1 && off_ == 0 &&
      len_ == slab_->size()) {
    std::vector<double> out = slab_->release_vector();
    slab_.reset();
    len_ = 0;
    return out;
  }
  return to_vector();
}

Buffer concat(std::span<const Buffer> parts) {
  std::size_t total = 0;
  for (const Buffer& p : parts) total += p.size();
  if (total == 0) return Buffer{};

  // Single non-empty part: forward the view itself.
  const Buffer* only = nullptr;
  for (const Buffer& p : parts) {
    if (p.empty()) continue;
    if (only != nullptr) {
      only = nullptr;
      break;
    }
    only = &p;
  }
  if (only != nullptr) return *only;

  // Adjacent slices of one slab concatenate to a wider slice of that slab.
  const Buffer* first = nullptr;
  bool contiguous = true;
  std::size_t next_off = 0;
  for (const Buffer& p : parts) {
    if (p.empty()) continue;
    if (first == nullptr) {
      first = &p;
      next_off = p.offset() + p.size();
      continue;
    }
    if (!p.aliases(*first) || p.offset() != next_off) {
      contiguous = false;
      break;
    }
    next_off += p.size();
  }
  if (first != nullptr && contiguous)
    return Buffer(first->slab_, first->off_, total);

  Buffer packed = Buffer::uninit(total);
  double* dst = packed.mutable_data();
  for (const Buffer& p : parts) {
    if (p.empty()) continue;
    std::memcpy(dst, p.data(), p.size() * sizeof(double));
    dst += p.size();
  }
  return packed;
}

}  // namespace catrsm::sim
