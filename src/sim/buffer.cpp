#include "sim/buffer.hpp"

#include "support/check.hpp"

namespace catrsm::sim {

Buffer Buffer::slice(std::size_t off, std::size_t len) const {
  CATRSM_CHECK(off + len <= len_, "Buffer::slice: view out of range");
  if (len == 0) return Buffer{};
  return Buffer(slab_, off_ + off, len);
}

double* Buffer::mutable_data() {
  if (!slab_) return nullptr;
  if (slab_.use_count() != 1) {
    auto copy = std::make_shared<std::vector<double>>(begin(), end());
    slab_ = std::move(copy);
    off_ = 0;
  }
  return slab_->data() + off_;
}

std::vector<double> Buffer::take() && {
  if (!slab_) return {};
  if (slab_.use_count() == 1 && off_ == 0 && len_ == slab_->size()) {
    std::vector<double> out = std::move(*slab_);
    slab_.reset();
    len_ = 0;
    return out;
  }
  return to_vector();
}

Buffer concat(std::span<const Buffer> parts) {
  std::size_t total = 0;
  for (const Buffer& p : parts) total += p.size();
  if (total == 0) return Buffer{};

  // Single non-empty part: forward the view itself.
  const Buffer* only = nullptr;
  for (const Buffer& p : parts) {
    if (p.empty()) continue;
    if (only != nullptr) {
      only = nullptr;
      break;
    }
    only = &p;
  }
  if (only != nullptr) return *only;

  // Adjacent slices of one slab concatenate to a wider slice of that slab.
  const Buffer* first = nullptr;
  bool contiguous = true;
  std::size_t next_off = 0;
  for (const Buffer& p : parts) {
    if (p.empty()) continue;
    if (first == nullptr) {
      first = &p;
      next_off = p.offset() + p.size();
      continue;
    }
    if (!p.aliases(*first) || p.offset() != next_off) {
      contiguous = false;
      break;
    }
    next_off += p.size();
  }
  if (first != nullptr && contiguous)
    return Buffer(first->slab_, first->off_, total);

  std::vector<double> packed;
  packed.reserve(total);
  for (const Buffer& p : parts) packed.insert(packed.end(), p.begin(), p.end());
  return Buffer(std::move(packed));
}

}  // namespace catrsm::sim
