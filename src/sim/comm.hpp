#pragma once
// Communicator: an ordered subgroup of simulated ranks, analogous to an MPI
// communicator. Creating a subgroup is free of communication — processor
// grids know the membership of every fiber arithmetically, so all members
// construct the same group locally (the MPI_Group / MPI_Comm_create_group
// pattern rather than MPI_Comm_split).

#include <cstdint>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/machine.hpp"

namespace catrsm::sim {

class Comm {
 public:
  /// Group over explicit world ranks, ordered. The constructing rank need
  /// NOT be a member: non-members may hold a Comm purely to *describe* a
  /// group (e.g. a distribution layout over other ranks), but any attempt
  /// to communicate through it throws.
  Comm(Rank& rank, std::vector<int> members);

  /// True when the constructing rank belongs to the group.
  bool is_member() const { return my_index_ >= 0; }

  /// The full machine as a communicator.
  static Comm world(Rank& rank);

  /// Describe-only communicator with NO attached rank: pure membership,
  /// usable outside a simulated run (host-side layout realization for
  /// resident operands). Any communication attempt throws; subset() of a
  /// describe-only comm is again describe-only.
  static Comm describe(std::vector<int> members);

  /// My index within this communicator (throws for non-members).
  int rank() const;
  /// Number of members.
  int size() const { return static_cast<int>(members_.size()); }
  /// Translate a communicator rank to a world rank.
  int world_rank(int r) const;
  /// The ordered world-rank member list.
  const std::vector<int>& members() const { return members_; }
  /// Inverse translation; returns -1 when `w` is not a member.
  int index_of_world(int w) const;
  /// The underlying simulated rank context (throws for describe-only
  /// communicators, which have none).
  Rank& ctx() const {
    CATRSM_CHECK(rank_ != nullptr, "ctx: describe-only communicator");
    return *rank_;
  }

  /// Identity of this group: a sequential id from the machine's epoch
  /// registry, identical on every member (the registry keys on the
  /// ordered member list) and never shared by two distinct groups.
  /// Collectives fold it into their message tags so that collectives
  /// running concurrently on overlapping subgroups (e.g. a row fiber and
  /// a column fiber sharing one rank, or a subgroup nested in its
  /// parent) never cross-match each other's messages.
  std::uint64_t epoch() const { return epoch_; }

  /// Point-to-point within the group (ranks are communicator-relative).
  /// Payloads are zero-copy sim::Buffer views; spans and vectors convert
  /// at the call site (vector rvalues adopt their storage without a copy).
  void send(int dst, Buffer data, int tag) const;
  Buffer recv(int src, int tag) const;
  Buffer sendrecv(int peer, Buffer data, int tag) const;
  Buffer shift(int dst, int src, Buffer data, int tag) const;

  /// Subgroup from communicator-relative indices (must include my rank).
  Comm subset(const std::vector<int>& indices) const;

  /// Subgroup of every member whose index is congruent to mine modulo
  /// `stride` (a strided fiber; used for grid axes).
  Comm strided_fiber(int stride) const;

  /// Contiguous subgroup [begin, begin + count) that contains my rank.
  Comm range(int begin, int count) const;

 private:
  Comm() = default;  // describe-only construction

  Rank* rank_ = nullptr;
  std::vector<int> members_;
  int my_index_ = -1;
  std::uint64_t epoch_ = 0;
};

}  // namespace catrsm::sim
