#pragma once
// The alpha-beta-gamma execution model of the paper (Section II-A):
//   T = alpha * S + beta * W + gamma * F
// S = latency units (communication rounds), W = words, F = flops, all
// accumulated per rank along its execution; the critical path is tracked
// separately through each rank's virtual clock.

#include <string>

namespace catrsm::sim {

/// Machine parameters for the virtual clock. Defaults roughly model a
/// commodity cluster: 1 us latency, 1 ns per word, 1 flop per 0.25 ns
/// (expressed in arbitrary consistent time units; only ratios matter).
struct MachineParams {
  double alpha = 1.0e-6;
  double beta = 1.0e-9;
  double gamma = 2.5e-10;
};

/// Per-rank accumulated cost counters.
///
/// Counter semantics match the paper's collective cost table (Section
/// II-C1): one butterfly exchange round charges S += 1 and
/// W += max(words sent, words received), because the model lets a processor
/// send and receive one message simultaneously.
struct Cost {
  double msgs = 0.0;   // S
  double words = 0.0;  // W
  double flops = 0.0;  // F

  Cost& operator+=(const Cost& o) {
    msgs += o.msgs;
    words += o.words;
    flops += o.flops;
    return *this;
  }
  friend Cost operator+(Cost a, const Cost& b) { return a += b; }
  friend Cost operator-(const Cost& a, const Cost& b) {
    return Cost{a.msgs - b.msgs, a.words - b.words, a.flops - b.flops};
  }

  /// Model time under given machine parameters.
  double time(const MachineParams& mp) const {
    return mp.alpha * msgs + mp.beta * words + mp.gamma * flops;
  }

  std::string to_string() const;
};

}  // namespace catrsm::sim
