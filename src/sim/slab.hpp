#pragma once
// Uninitialized-by-default storage slabs for sim::Buffer, recycled
// through a size-bucketed pool.
//
// The seed transport allocated a fresh std::vector<double> for every
// message payload; value-initialization memset memory that the very next
// line overwrote, and the malloc/free churn repeated across every
// Machine run of a batch. A Slab is either
//   - POOLED: a 64-byte-aligned, uninitialized array drawn from a global
//     freelist bucketed by power-of-two capacity and returned to it on
//     release (recycled across Machine runs), or
//   - ADOPTED: a std::vector<double> moved in by user code (the zero-copy
//     adoption path of Buffer(std::vector&&)); adopted storage never
//     touches the pool, and Buffer::take() can move it back out.
//
// Debug aid: with CATRSM_SLAB_POISON=1 (or set_slab_poison(true)), every
// pooled acquisition is filled with a NaN pattern, so a consumer that
// reads a word it never wrote propagates NaN instead of silently reusing
// stale message bytes.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace catrsm::sim {

class Slab {
 public:
  /// Pooled slab of n doubles, contents unspecified (NaN-filled under
  /// poison mode). n == 0 yields a data() == nullptr slab.
  static std::shared_ptr<Slab> uninit(std::size_t n);

  /// Adopt a vector's storage (no copy, never pooled).
  static std::shared_ptr<Slab> adopt(std::vector<double> v);

  ~Slab();
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  double* data() noexcept { return data_; }
  const double* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }

  /// True when this slab owns an adopted vector that take() may move out.
  bool adopted() const noexcept { return adopted_; }
  /// Move the adopted vector out (only valid when adopted()).
  std::vector<double> release_vector();

 private:
  Slab() = default;

  std::vector<double> vec_;       // engaged when adopted_
  double* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;      // pooled bucket capacity (doubles)
  bool adopted_ = false;
};

/// Turn pooled recycling on/off (off: every pooled slab is a fresh
/// aligned allocation and is freed on release). For A/B benchmarking;
/// defaults to on.
void set_slab_pool_enabled(bool enabled);
bool slab_pool_enabled();

/// Poison-fill mode (see header comment). Also enabled by the
/// CATRSM_SLAB_POISON=1 environment variable, read once at startup.
void set_slab_poison(bool enabled);

/// Drop every cached slab (test isolation; frees retained memory).
void clear_slab_pool();

struct SlabPoolStats {
  std::uint64_t hits = 0;      // acquisitions served from the freelist
  std::uint64_t misses = 0;    // acquisitions that had to allocate
  std::uint64_t returned = 0;  // releases that re-entered the freelist
  std::uint64_t dropped = 0;   // releases freed because the pool was full
};
SlabPoolStats slab_pool_stats();

}  // namespace catrsm::sim
