#include "sim/scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "support/check.hpp"
#include "support/env.hpp"
#include "support/exec_context.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>
#define CATRSM_HAVE_UCONTEXT 1
#else
#define CATRSM_HAVE_UCONTEXT 0
#endif

// Thread- and AddressSanitizer cannot follow ucontext stack switches
// without fiber annotations; degrade to the thread-per-rank backend
// under either sanitizer.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CATRSM_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CATRSM_SANITIZER 1
#endif
#endif
#ifndef CATRSM_SANITIZER
#define CATRSM_SANITIZER 0
#endif

// Fast user-space context switch: save/restore callee-saved registers and
// the FP control words only. glibc's swapcontext additionally saves the
// signal mask with an rt_sigprocmask SYSCALL per switch; rank fibers never
// manipulate per-fiber signal masks, and at simulator message granularity
// that syscall dominated run CPU (>90% of samples). x86-64 only; other
// ISAs keep the portable ucontext path.
#if CATRSM_HAVE_UCONTEXT && defined(__x86_64__) && !CATRSM_SANITIZER
#define CATRSM_FAST_SWAP 1
#else
#define CATRSM_FAST_SWAP 0
#endif

#if CATRSM_FAST_SWAP
extern "C" {
/// Save the current execution context (callee-saved registers + x87/SSE
/// control words) on the current stack, store the resulting stack pointer
/// to *save_sp, and resume the context whose stack pointer is resume_sp.
void catrsm_ctx_swap(void** save_sp, void* resume_sp);
}

// SysV x86-64: rbx, rbp, r12-r15 are callee-saved, as are the x87 control
// word and mxcsr (a fiber that changes rounding modes must not leak that
// into its sibling). Everything else is caller-saved and therefore dead
// across the catrsm_ctx_swap call boundary.
//
// Frame layout grown by the save sequence (low to high):
//   [fcw:2 pad:2 mxcsr:4] [r15] [r14] [r13] [r12] [rbx] [rbp] [ret]
//
// catrsm_ctx_entry is the first "return target" of a freshly armed fiber
// stack: submit() seeds r12 with the Fiber* and r13 with the entry
// function, so the thunk is nothing but an indirect call with the seeded
// argument. The stack is 16-byte aligned at the thunk (arranged by
// submit()), making it 8-mod-16 at the callee entry as the ABI requires.
asm(R"(
  .text
  .align 16
  .globl catrsm_ctx_swap
  .type catrsm_ctx_swap, @function
catrsm_ctx_swap:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  subq  $8, %rsp
  stmxcsr 4(%rsp)
  fnstcw  (%rsp)
  movq  %rsp, (%rdi)
  movq  %rsi, %rsp
  fldcw   (%rsp)
  ldmxcsr 4(%rsp)
  addq  $8, %rsp
  popq  %r15
  popq  %r14
  popq  %r13
  popq  %r12
  popq  %rbx
  popq  %rbp
  retq
  .size catrsm_ctx_swap, .-catrsm_ctx_swap

  .align 16
  .globl catrsm_ctx_entry
  .type catrsm_ctx_entry, @function
catrsm_ctx_entry:
  movq  %r12, %rdi
  callq *%r13
  ud2
  .size catrsm_ctx_entry, .-catrsm_ctx_entry
)");

extern "C" void catrsm_ctx_entry();
#endif  // CATRSM_FAST_SWAP

namespace catrsm::sim {

namespace {

constexpr std::size_t kFiberStackBytes = 1024 * 1024;

bool fibers_requested() {
#if !CATRSM_HAVE_UCONTEXT || CATRSM_SANITIZER
  return false;
#else
  return env::flag_or("CATRSM_SIM_FIBERS", true);
#endif
}

}  // namespace

#if CATRSM_HAVE_UCONTEXT
/// mmap-backed fiber stack with a PROT_NONE guard page below it, so a
/// rank that overruns its stack faults cleanly instead of silently
/// corrupting a neighboring heap block (the diagnostic OS threads get
/// from their kernel guard pages).
class GuardedStack {
 public:
  GuardedStack() = default;
  ~GuardedStack() { reset(); }
  GuardedStack(const GuardedStack&) = delete;
  GuardedStack& operator=(const GuardedStack&) = delete;

  void allocate(std::size_t usable) {
    reset();
    const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    total_ = ((usable + page - 1) / page) * page + page;
    void* raw = mmap(nullptr, total_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    CATRSM_CHECK(raw != MAP_FAILED, "scheduler: fiber stack mmap failed");
    CATRSM_CHECK(mprotect(raw, page, PROT_NONE) == 0,
                 "scheduler: fiber guard page mprotect failed");
    base_ = static_cast<char*>(raw);
    guard_ = page;
  }
  void* sp() const { return base_ + guard_; }  // above the guard page
  std::size_t size() const { return total_ - guard_; }

 private:
  void reset() {
    if (base_ != nullptr) munmap(base_, total_);
    base_ = nullptr;
  }
  char* base_ = nullptr;
  std::size_t total_ = 0;
  std::size_t guard_ = 0;
};
#else
class GuardedStack {};
#endif

struct RankScheduler::Fiber {
#if CATRSM_FAST_SWAP
  /// Saved stack pointer while the fiber is parked (fast-swap backend);
  /// submit() re-arms it at a fresh frame for every life.
  void* fast_sp = nullptr;
#elif CATRSM_HAVE_UCONTEXT
  ucontext_t ctx;
#endif
  GuardedStack stack;
  /// Home worker of the current life; written by submit() before live
  /// flips true, so a stale ready-queue entry popped after recycling is
  /// detected by a worker mismatch.
  std::atomic<Worker*> worker{nullptr};
  int index = 0;
  SubmissionPtr sub;
  std::atomic<bool> ready{false};
  /// True from submit() until the home worker observes the fiber finish;
  /// a ready-queue entry naming a non-live fiber is stale and skipped.
  std::atomic<bool> live{false};
  bool finished = true;
};

struct RankScheduler::Task {
  SubmissionPtr sub;
  int index = 0;
};

struct RankScheduler::Worker {
#if CATRSM_FAST_SWAP
  /// Saved scheduler-loop stack pointer while a fiber runs on this
  /// worker. Touched only by this worker's thread and by the single
  /// fiber currently executing on it, so no synchronization is needed.
  void* sched_sp = nullptr;
#elif CATRSM_HAVE_UCONTEXT
  ucontext_t sched_ctx;
#endif
  RankScheduler* sched = nullptr;
  int id = 0;
  std::mutex mu;
  std::condition_variable cv;
  /// Fiber backend: in-flight fibers assigned here (rank i of every live
  /// submission with i % W == id). Appended by submit(), removed only by
  /// this worker's thread; both under mu. Bookkeeping only — dispatch
  /// runs off ready_q, so its size never enters the per-wake cost.
  std::vector<Fiber*> fibers;
  /// Fiber backend: pending wakes, one entry per wake_fiber()/submit()
  /// arm. Entries are hints, not ownership — a pop re-validates against
  /// the fiber's live/worker/ready state, so duplicates and entries that
  /// outlived their fiber's life are skipped in O(1). This keeps a wake
  /// O(1) regardless of how many fibers (from how many concurrent
  /// submissions) reside here — the scan-the-world design it replaces
  /// made every message delivery O(resident fibers), which quadrupling
  /// the in-flight runs turned into a net slowdown.
  std::deque<Fiber*> ready_q;
  /// Thread backend: pending rank tasks, FIFO in submission order.
  std::deque<Task> tasks;
  std::thread thread;
};

namespace {
// Opaque because Fiber is private to RankScheduler; cast at use sites.
thread_local void* tls_fiber = nullptr;
}

RankScheduler::RankScheduler(int p) : p_(p), use_fibers_(fibers_requested()) {
  CATRSM_CHECK(p >= 1, "scheduler needs at least one rank");
  int w = p;
  if (use_fibers_) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    // Strict parsing: a malformed or non-positive override warns and
    // falls back to the core count instead of silently running with a
    // nonsensical pool.
    w = env::int_or("CATRSM_SIM_WORKERS", hw > 0 ? hw : 1, 1,
                    std::numeric_limits<int>::max());
    if (w > p) w = p;  // more workers than ranks is just idle threads
  }
  // Seed the freelist with one fiber per rank; concurrent submissions
  // grow it on demand and every stack is reused afterwards.
  all_fibers_.reserve(static_cast<std::size_t>(p));
  free_fibers_.reserve(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    auto f = std::make_unique<Fiber>();
#if CATRSM_HAVE_UCONTEXT
    if (use_fibers_) f->stack.allocate(kFiberStackBytes);
#endif
    free_fibers_.push_back(f.get());
    all_fibers_.push_back(std::move(f));
  }
  workers_.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->sched = this;
    worker->id = i;
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
}

RankScheduler::~RankScheduler() {
  shutdown_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    // The empty critical section pairs with the worker's locked
    // scan-then-wait, so the notify cannot slip between scan and sleep.
    { std::lock_guard<std::mutex> lock(w->mu); }
    w->cv.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
}

RankScheduler::SubmissionPtr RankScheduler::submit(
    std::function<void(int)> job, std::function<void()> on_complete) {
  CATRSM_CHECK(tls_fiber == nullptr,
               "scheduler: submit() must not be called from a simulated rank");
  auto sub = std::make_shared<Submission>();
  sub->job = std::move(job);
  sub->on_complete = std::move(on_complete);
  sub->remaining.store(p_, std::memory_order_relaxed);

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  const int w = static_cast<int>(workers_.size());
  if (use_fibers_) {
#if CATRSM_HAVE_UCONTEXT
    std::vector<Fiber*> picked(static_cast<std::size_t>(p_));
    {
      std::lock_guard<std::mutex> lock(free_mu_);
      for (int i = 0; i < p_; ++i) {
        if (free_fibers_.empty()) {
          auto f = std::make_unique<Fiber>();
          f->stack.allocate(kFiberStackBytes);
          free_fibers_.push_back(f.get());
          all_fibers_.push_back(std::move(f));
        }
        picked[static_cast<std::size_t>(i)] = free_fibers_.back();
        free_fibers_.pop_back();
      }
    }
    for (int i = 0; i < p_; ++i) {
      Fiber* f = picked[static_cast<std::size_t>(i)];
      Worker* home = workers_[static_cast<std::size_t>(i % w)].get();
      f->index = i;
      f->sub = sub;
      f->finished = false;
#if CATRSM_FAST_SWAP
      // Arm a fresh frame at the stack top shaped exactly like one the
      // save sequence of catrsm_ctx_swap would have produced, with the
      // entry thunk as the return target and the Fiber* / entry function
      // seeded into the r12 / r13 slots. The first swap into the fiber
      // then simply "returns" into catrsm_ctx_entry.
      std::uint32_t mxcsr = 0;
      std::uint16_t fcw = 0;
      asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
      const std::uintptr_t top =
          (reinterpret_cast<std::uintptr_t>(f->stack.sp()) + f->stack.size()) &
          ~static_cast<std::uintptr_t>(15);
      auto* frame = reinterpret_cast<std::uint64_t*>(top);
      *--frame = reinterpret_cast<std::uint64_t>(&catrsm_ctx_entry);  // ret
      *--frame = 0;                                                   // rbp
      *--frame = 0;                                                   // rbx
      *--frame = reinterpret_cast<std::uint64_t>(f);                  // r12
      *--frame = reinterpret_cast<std::uint64_t>(&fiber_main);        // r13
      *--frame = 0;                                                   // r14
      *--frame = 0;                                                   // r15
      *--frame = static_cast<std::uint64_t>(mxcsr) << 32 | fcw;       // fpu
      f->fast_sp = frame;
#else
      // Arm the context at the trampoline. ucontext structs are plain
      // data until swapped into, so seeding them here on the submitting
      // thread is safe; uc_link returns control to the owning worker.
      getcontext(&f->ctx);
      f->ctx.uc_stack.ss_sp = f->stack.sp();
      f->ctx.uc_stack.ss_size = f->stack.size();
      f->ctx.uc_link = &home->sched_ctx;
      const auto addr = reinterpret_cast<std::uintptr_t>(f);
      makecontext(&f->ctx, reinterpret_cast<void (*)()>(&fiber_trampoline), 2,
                  static_cast<unsigned int>(addr >> 32),
                  static_cast<unsigned int>(addr & 0xffffffffu));
#endif
      // Order matters for stale-entry filtering: home worker first, then
      // the live flag (release), so any pop that observes live == true
      // also observes the new worker assignment.
      f->worker.store(home, std::memory_order_relaxed);
      f->live.store(true, std::memory_order_release);
      f->ready.store(true, std::memory_order_release);
    }
    for (auto& worker : workers_) {
      bool added = false;
      {
        std::lock_guard<std::mutex> lock(worker->mu);
        for (int i = worker->id; i < p_; i += w) {
          worker->fibers.push_back(picked[static_cast<std::size_t>(i)]);
          worker->ready_q.push_back(picked[static_cast<std::size_t>(i)]);
          added = true;
        }
      }
      if (added) worker->cv.notify_all();
    }
#else
    throw Error("scheduler: fiber backend unavailable on this platform");
#endif
  } else {
    // FIFO per worker in one submission order: every worker sees run A's
    // task before run B's, so concurrent submissions pipeline without
    // cross-submission blocking (W == p: each rank has its own worker).
    for (int i = 0; i < p_; ++i) {
      Worker& worker = *workers_[static_cast<std::size_t>(i % w)];
      {
        std::lock_guard<std::mutex> lock(worker.mu);
        worker.tasks.push_back(Task{sub, i});
      }
      worker.cv.notify_all();
    }
  }
  return sub;
}

void RankScheduler::wait(const SubmissionPtr& sub) {
  CATRSM_CHECK(tls_fiber == nullptr,
               "scheduler: wait() must not be called from a simulated rank");
  std::unique_lock<std::mutex> lock(sub->mu);
  sub->cv.wait(lock, [&] { return sub->done; });
}

bool RankScheduler::done(const SubmissionPtr& sub) {
  std::lock_guard<std::mutex> lock(sub->mu);
  return sub->done;
}

void RankScheduler::run(const std::function<void(int)>& job) {
  wait(submit(job));
}

void RankScheduler::complete_task(const SubmissionPtr& sub) {
  if (sub->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Last rank of the submission: completion callback runs before waiters
  // are released so its effects are visible when wait() returns.
  if (sub->on_complete) sub->on_complete();
  // Drop the job and callback now: they may close over state that owns
  // this submission (e.g. the machine's per-run context), and keeping
  // them alive would make that ownership a reference cycle.
  sub->job = nullptr;
  sub->on_complete = nullptr;
  completed_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->done = true;
  }
  sub->cv.notify_all();
}

void RankScheduler::worker_loop(Worker& w) {
  if (use_fibers_) {
    fiber_worker_loop(w);
  } else {
    thread_worker_loop(w);
  }
}

// ---------------------------------------------------------------------------
// Thread backend: one worker per rank, kernel-scheduled blocking.

void RankScheduler::thread_worker_loop(Worker& w) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] {
        return shutdown_.load(std::memory_order_acquire) || !w.tasks.empty();
      });
      if (w.tasks.empty()) return;  // shutdown with nothing pending
      task = std::move(w.tasks.front());
      w.tasks.pop_front();
    }
    // Mark the rank body so kernel-pool fan-out stays off inside it (p
    // ranks already occupy the cores).
    const bool prev = exec::set_in_sim_rank(true);
    (task.sub->job)(task.index);
    exec::set_in_sim_rank(prev);
    complete_task(task.sub);
    task.sub.reset();
  }
}

// ---------------------------------------------------------------------------
// Fiber backend.

#if CATRSM_HAVE_UCONTEXT

void RankScheduler::fiber_trampoline(unsigned int hi, unsigned int lo) {
  auto* f = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  try {
    (f->sub->job)(f->index);
  } catch (...) {
    // The job contract forbids leaks (Machine catches rank errors);
    // swallow so a violation cannot unwind across the context switch.
  }
  f->finished = true;
  // Returning resumes uc_link == the worker's scheduler context.
}

#if CATRSM_FAST_SWAP
void RankScheduler::fiber_main(void* fiber) {
  auto* f = static_cast<Fiber*>(fiber);
  try {
    (f->sub->job)(f->index);
  } catch (...) {
    // The job contract forbids leaks (Machine catches rank errors);
    // swallow so a violation cannot unwind across the context switch.
  }
  f->finished = true;
  // Final switch back to the owning worker (the uc_link return of the
  // ucontext path, made explicit). The saved frame is dead: the next
  // submit() re-arms the stack from the top.
  catrsm_ctx_swap(&f->fast_sp,
                  f->worker.load(std::memory_order_relaxed)->sched_sp);
  __builtin_unreachable();
}
#else
void RankScheduler::fiber_main(void*) {}
#endif

void RankScheduler::fiber_worker_loop(Worker& w) {
  while (true) {
    Fiber* f = nullptr;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] {
        if (!w.ready_q.empty()) return true;
        // Shutdown only matters once nothing resides here; a resident
        // blocked fiber's wake will arrive as a queue entry.
        return shutdown_.load(std::memory_order_acquire) &&
               w.fibers.empty();
      });
      if (w.ready_q.empty()) return;  // shutdown, nothing resident
      f = w.ready_q.front();
      w.ready_q.pop_front();
    }
    // Entries are hints: re-validate before switching in. A fiber whose
    // life ended (live false), one recycled onto another worker, or a
    // duplicate wake whose ready flag was already consumed is skipped.
    if (!f->live.load(std::memory_order_acquire)) continue;
    if (f->worker.load(std::memory_order_acquire) != &w) continue;
    if (!f->ready.exchange(false, std::memory_order_acquire)) continue;
    tls_fiber = static_cast<void*>(f);
    // The residency window doubles as the sim-rank mark: while the
    // worker thread is inside the fiber, kernel-pool fan-out is off.
    const bool prev = exec::set_in_sim_rank(true);
#if CATRSM_FAST_SWAP
    catrsm_ctx_swap(&w.sched_sp, f->fast_sp);
#else
    swapcontext(&w.sched_ctx, &f->ctx);
#endif
    exec::set_in_sim_rank(prev);
    tls_fiber = nullptr;
    if (f->finished) {
      // live drops before the freelist push, so any entry still naming
      // this life is filtered; the next submit() re-arms live under the
      // freelist lock's ordering.
      f->live.store(false, std::memory_order_release);
      {
        std::lock_guard<std::mutex> lock(w.mu);
        w.fibers.erase(std::find(w.fibers.begin(), w.fibers.end(), f));
      }
      // Recycle before completing: the stack is quiescent (we returned
      // from the swap) and the submission handle has been moved out, so
      // a concurrent submit() may re-arm it immediately.
      SubmissionPtr sub = std::move(f->sub);
      {
        std::lock_guard<std::mutex> lock(free_mu_);
        free_fibers_.push_back(f);
      }
      complete_task(sub);
    }
  }
}

void* RankScheduler::current_fiber() { return tls_fiber; }

void RankScheduler::block_current_fiber() {
  auto* f = static_cast<Fiber*>(tls_fiber);
  CATRSM_CHECK(f != nullptr, "block_current_fiber: not on a fiber");
  // A wake that raced ahead of the park is consumed without switching
  // (its queue entry pops later with ready already false and is skipped).
  if (f->ready.exchange(false, std::memory_order_acquire)) return;
#if CATRSM_FAST_SWAP
  catrsm_ctx_swap(&f->fast_sp,
                  f->worker.load(std::memory_order_relaxed)->sched_sp);
#else
  swapcontext(&f->ctx, &f->worker.load(std::memory_order_relaxed)->sched_ctx);
#endif
}

void RankScheduler::wake_fiber(void* fiber) {
  auto* f = static_cast<Fiber*>(fiber);
  // Flag first, entry second: once the entry is visible the flag is too,
  // so a pop can never find a genuine wake's entry with a stale flag.
  f->ready.store(true, std::memory_order_release);
  Worker* w = f->worker.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(w->mu);
    w->ready_q.push_back(f);
  }
  w->cv.notify_one();
}

#else  // !CATRSM_HAVE_UCONTEXT

void RankScheduler::fiber_trampoline(unsigned int, unsigned int) {}
void RankScheduler::fiber_worker_loop(Worker&) {
  throw Error("scheduler: fiber backend unavailable on this platform");
}
void* RankScheduler::current_fiber() { return nullptr; }
void RankScheduler::block_current_fiber() {
  throw Error("block_current_fiber: fiber backend unavailable");
}
void RankScheduler::wake_fiber(void*) {}

#endif  // CATRSM_HAVE_UCONTEXT

}  // namespace catrsm::sim
