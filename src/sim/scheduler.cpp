#include "sim/scheduler.hpp"

#include <cstdlib>
#include <limits>

#include "support/check.hpp"
#include "support/env.hpp"
#include "support/exec_context.hpp"

#if defined(__linux__)
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>
#define CATRSM_HAVE_UCONTEXT 1
#else
#define CATRSM_HAVE_UCONTEXT 0
#endif

// Thread- and AddressSanitizer cannot follow ucontext stack switches
// without fiber annotations; degrade to the thread-per-rank backend
// under either sanitizer.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define CATRSM_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define CATRSM_SANITIZER 1
#endif
#endif
#ifndef CATRSM_SANITIZER
#define CATRSM_SANITIZER 0
#endif

namespace catrsm::sim {

namespace {

constexpr std::size_t kFiberStackBytes = 1024 * 1024;

bool fibers_requested() {
#if !CATRSM_HAVE_UCONTEXT || CATRSM_SANITIZER
  return false;
#else
  return env::flag_or("CATRSM_SIM_FIBERS", true);
#endif
}

}  // namespace

#if CATRSM_HAVE_UCONTEXT
/// mmap-backed fiber stack with a PROT_NONE guard page below it, so a
/// rank that overruns its stack faults cleanly instead of silently
/// corrupting a neighboring heap block (the diagnostic OS threads get
/// from their kernel guard pages).
class GuardedStack {
 public:
  GuardedStack() = default;
  ~GuardedStack() { reset(); }
  GuardedStack(const GuardedStack&) = delete;
  GuardedStack& operator=(const GuardedStack&) = delete;

  void allocate(std::size_t usable) {
    reset();
    const auto page = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
    total_ = ((usable + page - 1) / page) * page + page;
    void* raw = mmap(nullptr, total_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    CATRSM_CHECK(raw != MAP_FAILED, "scheduler: fiber stack mmap failed");
    CATRSM_CHECK(mprotect(raw, page, PROT_NONE) == 0,
                 "scheduler: fiber guard page mprotect failed");
    base_ = static_cast<char*>(raw);
    guard_ = page;
  }
  void* sp() const { return base_ + guard_; }  // above the guard page
  std::size_t size() const { return total_ - guard_; }

 private:
  void reset() {
    if (base_ != nullptr) munmap(base_, total_);
    base_ = nullptr;
  }
  char* base_ = nullptr;
  std::size_t total_ = 0;
  std::size_t guard_ = 0;
};
#else
class GuardedStack {};
#endif

struct RankScheduler::Fiber {
#if CATRSM_HAVE_UCONTEXT
  ucontext_t ctx;
#endif
  GuardedStack stack;
  RankScheduler* sched = nullptr;
  Worker* worker = nullptr;
  int index = 0;
  std::atomic<bool> ready{false};
  bool finished = true;
};

struct RankScheduler::Worker {
#if CATRSM_HAVE_UCONTEXT
  ucontext_t sched_ctx;
#endif
  RankScheduler* sched = nullptr;
  int id = 0;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Fiber*> fibers;  // static assignment: rank i -> worker i % W
  std::uint64_t seen = 0;
  std::thread thread;
};

namespace {
// Opaque because Fiber is private to RankScheduler; cast at use sites.
thread_local void* tls_fiber = nullptr;
}

RankScheduler::RankScheduler(int p) : p_(p), use_fibers_(fibers_requested()) {
  CATRSM_CHECK(p >= 1, "scheduler needs at least one rank");
  int w = p;
  if (use_fibers_) {
    const int hw = static_cast<int>(std::thread::hardware_concurrency());
    // Strict parsing: a malformed or non-positive override warns and
    // falls back to the core count instead of silently running with a
    // nonsensical pool.
    w = env::int_or("CATRSM_SIM_WORKERS", hw > 0 ? hw : 1, 1,
                    std::numeric_limits<int>::max());
    if (w > p) w = p;  // more workers than ranks is just idle threads
  }
  fibers_.reserve(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    auto f = std::make_unique<Fiber>();
    f->sched = this;
    f->index = i;
#if CATRSM_HAVE_UCONTEXT
    if (use_fibers_) f->stack.allocate(kFiberStackBytes);
#endif
    fibers_.push_back(std::move(f));
  }
  workers_.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->sched = this;
    worker->id = i;
    for (int r = i; r < p; r += w) {
      Fiber* f = fibers_[static_cast<std::size_t>(r)].get();
      f->worker = worker.get();
      worker->fibers.push_back(f);
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
}

RankScheduler::~RankScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

void RankScheduler::run(const std::function<void(int)>& job) {
  CATRSM_CHECK(tls_fiber == nullptr,
               "scheduler: run() must not be called from a simulated rank");
  {
    std::lock_guard<std::mutex> lock(mu_);
    CATRSM_CHECK(remaining_workers_ == 0, "scheduler: run() is not reentrant");
    for (auto& f : fibers_) {
      f->finished = false;
      f->ready.store(true, std::memory_order_relaxed);
    }
    job_ = &job;
    remaining_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_workers_ == 0; });
  job_ = nullptr;
}

void RankScheduler::worker_loop(Worker& w) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != w.seen; });
      if (shutdown_) return;
      w.seen = generation_;
    }
    if (use_fibers_) {
      fiber_worker_loop(w);
    } else {
      thread_worker_loop(w);
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --remaining_workers_ == 0;
    }
    if (last) done_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Thread backend: one worker per rank, kernel-scheduled blocking.

void RankScheduler::thread_worker_loop(Worker& w) {
  for (Fiber* f : w.fibers) {
    // Mark the rank body so kernel-pool fan-out stays off inside it (p
    // ranks already occupy the cores).
    const bool prev = exec::set_in_sim_rank(true);
    (*job_)(f->index);
    exec::set_in_sim_rank(prev);
    f->finished = true;
  }
}

// ---------------------------------------------------------------------------
// Fiber backend.

#if CATRSM_HAVE_UCONTEXT

void RankScheduler::fiber_trampoline(unsigned int hi, unsigned int lo) {
  auto* f = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  try {
    (*f->sched->job_)(f->index);
  } catch (...) {
    // The job contract forbids leaks (Machine::run catches rank errors);
    // swallow so a violation cannot unwind across the context switch.
  }
  f->finished = true;
  // Returning resumes uc_link == the worker's scheduler context.
}

void RankScheduler::fiber_worker_loop(Worker& w) {
  // Arm every fiber's context at its entry point; stacks persist across
  // runs, only the register state is re-seeded.
  for (Fiber* f : w.fibers) {
    getcontext(&f->ctx);
    f->ctx.uc_stack.ss_sp = f->stack.sp();
    f->ctx.uc_stack.ss_size = f->stack.size();
    f->ctx.uc_link = &w.sched_ctx;
    const auto addr = reinterpret_cast<std::uintptr_t>(f);
    makecontext(&f->ctx, reinterpret_cast<void (*)()>(&fiber_trampoline), 2,
                static_cast<unsigned int>(addr >> 32),
                static_cast<unsigned int>(addr & 0xffffffffu));
  }

  std::size_t live = w.fibers.size();
  while (live > 0) {
    bool progressed = false;
    for (Fiber* f : w.fibers) {
      if (f->finished) continue;
      if (!f->ready.exchange(false, std::memory_order_acquire)) continue;
      tls_fiber = static_cast<void*>(f);
      // The residency window doubles as the sim-rank mark: while the
      // worker thread is inside the fiber, kernel-pool fan-out is off.
      const bool prev = exec::set_in_sim_rank(true);
      swapcontext(&w.sched_ctx, &f->ctx);
      exec::set_in_sim_rank(prev);
      tls_fiber = nullptr;
      if (f->finished) --live;
      progressed = true;
    }
    if (live == 0 || progressed) continue;
    // Every remaining fiber is blocked on a message from another worker:
    // park until a deliver (or abort) marks one runnable.
    std::unique_lock<std::mutex> lock(w.mu);
    w.cv.wait(lock, [&] {
      for (Fiber* f : w.fibers)
        if (!f->finished && f->ready.load(std::memory_order_acquire))
          return true;
      return false;
    });
  }
}

void* RankScheduler::current_fiber() { return tls_fiber; }

void RankScheduler::block_current_fiber() {
  auto* f = static_cast<Fiber*>(tls_fiber);
  CATRSM_CHECK(f != nullptr, "block_current_fiber: not on a fiber");
  // A wake that raced ahead of the park is consumed without switching.
  if (f->ready.exchange(false, std::memory_order_acquire)) return;
  swapcontext(&f->ctx, &f->worker->sched_ctx);
}

void RankScheduler::wake_fiber(void* fiber) {
  auto* f = static_cast<Fiber*>(fiber);
  f->ready.store(true, std::memory_order_release);
  // The empty critical section pairs with the worker's locked scan-then-
  // wait, so the notify can never slip between its scan and its sleep.
  { std::lock_guard<std::mutex> lock(f->worker->mu); }
  f->worker->cv.notify_all();
}

#else  // !CATRSM_HAVE_UCONTEXT

void RankScheduler::fiber_trampoline(unsigned int, unsigned int) {}
void RankScheduler::fiber_worker_loop(Worker&) {
  throw Error("scheduler: fiber backend unavailable on this platform");
}
void* RankScheduler::current_fiber() { return nullptr; }
void RankScheduler::block_current_fiber() {
  throw Error("block_current_fiber: fiber backend unavailable");
}
void RankScheduler::wake_fiber(void*) {}

#endif  // CATRSM_HAVE_UCONTEXT

void RankScheduler::wake_all_fibers() {
  if (!use_fibers_) return;
  for (auto& f : fibers_) wake_fiber(f.get());
}

}  // namespace catrsm::sim
