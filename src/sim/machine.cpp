#include "sim/machine.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace catrsm::sim {

// ---------------------------------------------------------------------------
// Rank

void Rank::account(double msgs, double words, double flops) {
  cost_.msgs += msgs;
  cost_.words += words;
  cost_.flops += flops;
  for (const std::string& label : phase_stack_) {
    Cost& bucket = phase_costs_[label];
    bucket.msgs += msgs;
    bucket.words += words;
    bucket.flops += flops;
  }
}

void Rank::pop_phase() {
  CATRSM_CHECK(!phase_stack_.empty(), "pop_phase: no active phase");
  phase_stack_.pop_back();
}

const std::string& Rank::phase() const {
  static const std::string kNone;
  return phase_stack_.empty() ? kNone : phase_stack_.back();
}

void Rank::send(int dst, Buffer data, int tag) {
  CATRSM_CHECK(dst >= 0 && dst < nprocs_, "send: bad destination rank");
  CATRSM_CHECK(dst != id_, "send: self-sends are a bug in SPMD code");
  const double w = static_cast<double>(data.size());
  Machine::Message msg{std::move(data), vtime_};
  account(1.0, w, 0.0);
  vtime_ += params().alpha + params().beta * w;
  machine_->deliver(id_, dst, tag, std::move(msg));
}

Buffer Rank::recv(int src, int tag) {
  CATRSM_CHECK(src >= 0 && src < nprocs_, "recv: bad source rank");
  CATRSM_CHECK(src != id_, "recv: self-receives are a bug in SPMD code");
  Machine::Message msg = machine_->take(id_, src, tag);
  const double w = static_cast<double>(msg.data.size());
  account(1.0, w, 0.0);
  // The data exists at the receiver no earlier than alpha + beta*w after
  // the sender's clock at send time, and no earlier than the receiver is
  // ready to receive.
  vtime_ = std::max(vtime_, msg.sender_vtime) + params().alpha +
           params().beta * w;
  return std::move(msg.data);
}

Buffer Rank::sendrecv(int peer, Buffer data, int tag) {
  return shift(peer, peer, std::move(data), tag);
}

Buffer Rank::shift(int dst, int src, Buffer data, int tag) {
  CATRSM_CHECK(dst >= 0 && dst < nprocs_, "shift: bad destination rank");
  CATRSM_CHECK(src >= 0 && src < nprocs_, "shift: bad source rank");
  CATRSM_CHECK(dst != id_ && src != id_, "shift: peers must differ from self");
  const double sent = static_cast<double>(data.size());
  machine_->deliver(id_, dst, tag, Machine::Message{std::move(data), vtime_});
  Machine::Message in = machine_->take(id_, src, tag);
  // One simultaneous exchange round: a single latency unit, and the wire
  // carries both directions concurrently, so the clock advances by the
  // larger payload only (paper Section II-A: "every processor can send and
  // receive one message at a time").
  const double w = std::max(sent, static_cast<double>(in.data.size()));
  account(1.0, w, 0.0);
  vtime_ = std::max(vtime_, in.sender_vtime) + params().alpha +
           params().beta * w;
  return std::move(in.data);
}

void Rank::charge_flops(double f) {
  CATRSM_CHECK(f >= 0.0, "charge_flops: negative flop count");
  account(0.0, 0.0, f);
  vtime_ += params().gamma * f;
}

const MachineParams& Rank::params() const { return machine_->params_; }

std::uint64_t Rank::comm_epoch(const std::vector<int>& members) {
  std::lock_guard<std::mutex> lock(machine_->epoch_mu_);
  auto [it, inserted] = machine_->epoch_ids_.try_emplace(
      members, machine_->epoch_ids_.size());
  return it->second;
}

// ---------------------------------------------------------------------------
// RunStats

double RunStats::max_msgs() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.msgs);
  return m;
}
double RunStats::max_words() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.words);
  return m;
}
double RunStats::max_flops() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.flops);
  return m;
}
double RunStats::total_words() const {
  double s = 0.0;
  for (const auto& c : per_rank) s += c.words;
  return s;
}

// ---------------------------------------------------------------------------
// Machine

Machine::Machine(int p, MachineParams params) : p_(p), params_(params) {
  CATRSM_CHECK(p >= 1, "machine needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
  for (int i = 0; i < p * p; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
}

Machine::~Machine() = default;

RankScheduler& Machine::scheduler() {
  if (!scheduler_) scheduler_ = std::make_unique<RankScheduler>(p_);
  return *scheduler_;
}

HandleStore& Machine::handle_store() {
  if (!handles_) handles_ = std::make_unique<HandleStore>(p_);
  return *handles_;
}

void Machine::deliver(int src, int dst, int tag, Message msg) {
  Mailbox& box = box_of(dst, src);
  void* waiter = nullptr;
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue_for(tag).push_back(std::move(msg));
    if (box.waiter != nullptr && box.waiter_tag == tag) {
      waiter = box.waiter;
      box.waiter = nullptr;
    }
  }
  if (waiter != nullptr) {
    RankScheduler::wake_fiber(waiter);
  } else {
    box.cv.notify_all();
  }
}

Machine::Message Machine::take(int dst, int src, int tag) {
  Mailbox& box = box_of(dst, src);
  std::unique_lock<std::mutex> lock(box.mu);
  auto& queue = box.queue_for(tag);
  if (void* self = RankScheduler::current_fiber()) {
    // Fiber backend: a blocked receive yields the worker to another rank
    // instead of parking the OS thread.
    while (queue.empty() && !aborted_.load()) {
      box.waiter = self;
      box.waiter_tag = tag;
      lock.unlock();
      RankScheduler::block_current_fiber();
      lock.lock();
    }
    if (box.waiter == self) box.waiter = nullptr;  // abort-path cleanup
  } else {
    box.cv.wait(lock, [&] { return !queue.empty() || aborted_.load(); });
  }
  if (queue.empty()) {
    // Another rank failed; propagate so the whole run unwinds cleanly.
    throw Error("simulated run aborted by failure on a peer rank");
  }
  Message msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

void Machine::abort_all() {
  aborted_.store(true);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  if (scheduler_) scheduler_->wake_all_fibers();
}

RunStats Machine::run(const std::function<void(Rank&)>& fn) {
  // Fresh mailboxes each run: a message the previous run left unconsumed
  // (or a failed run's leftovers) must never FIFO-match into this run.
  // Empty per-tag entries are kept for block reuse unless they have
  // accumulated — a long-lived machine sees fresh tags per communicator
  // epoch, so unbounded entry growth would make every send's tag scan
  // linear in dead tags.
  aborted_.store(false);
  constexpr std::size_t kMaxIdleTagEntries = 8;
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    if (box->queues.size() > kMaxIdleTagEntries) {
      box->queues.clear();
    } else {
      for (auto& [tag, queue] : box->queues) queue.clear();
    }
    box->waiter = nullptr;
  }

  std::vector<std::unique_ptr<Rank>> ranks;
  ranks.reserve(static_cast<std::size_t>(p_));
  for (int i = 0; i < p_; ++i)
    ranks.push_back(std::unique_ptr<Rank>(new Rank(this, i, p_)));

  std::exception_ptr first_error;
  std::mutex error_mu;

  scheduler().run([&](int i) {
    try {
      fn(*ranks[static_cast<std::size_t>(i)]);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Wake every peer blocked in take(); they observe aborted_ and
      // unwind, so the run never hangs after a failure.
      abort_all();
    }
  });
  {
    std::lock_guard<std::mutex> lock(error_mu);
    if (first_error) std::rethrow_exception(first_error);
  }

  RunStats stats;
  stats.per_rank.reserve(static_cast<std::size_t>(p_));
  for (const auto& r : ranks) {
    stats.per_rank.push_back(r->cost());
    stats.critical_time = std::max(stats.critical_time, r->vtime());
    for (const auto& [name, cost] : r->phase_costs()) {
      Cost& agg = stats.phase_max[name];
      agg.msgs = std::max(agg.msgs, cost.msgs);
      agg.words = std::max(agg.words, cost.words);
      agg.flops = std::max(agg.flops, cost.flops);
    }
  }
  return stats;
}

}  // namespace catrsm::sim
