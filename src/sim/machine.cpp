#include "sim/machine.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include <sstream>

#include "sim/check/coll_matcher.hpp"
#include "sim/check/deadlock.hpp"
#include "sim/check/fault_report.hpp"
#include "sim/check/trace.hpp"
#include "sim/fault.hpp"
#include "support/env.hpp"

namespace catrsm::sim {

// ---------------------------------------------------------------------------
// Rank

void Rank::account(double msgs, double words, double flops) {
  cost_.msgs += msgs;
  cost_.words += words;
  cost_.flops += flops;
  for (const std::string& label : phase_stack_) {
    Cost& bucket = phase_costs_[label];
    bucket.msgs += msgs;
    bucket.words += words;
    bucket.flops += flops;
  }
}

void Rank::pop_phase() {
  CATRSM_CHECK(!phase_stack_.empty(), "pop_phase: no active phase");
  phase_stack_.pop_back();
}

const std::string& Rank::phase() const {
  static const std::string kNone;
  return phase_stack_.empty() ? kNone : phase_stack_.back();
}

void Rank::send(int dst, Buffer data, int tag) {
  CATRSM_CHECK(dst >= 0 && dst < nprocs_, "send: bad destination rank");
  CATRSM_CHECK(dst != id_, "send: self-sends are a bug in SPMD code");
  if (FaultInjector* fi = machine_->injector_.get()) fi->maybe_kill(id_);
  const double w = static_cast<double>(data.size());
  const double sent_at = vtime_;
  account(1.0, w, 0.0);
  vtime_ += params().alpha + params().beta * w;
  if (check::TraceRecorder* t = machine_->tracer_.get())
    t->on_send(id_, dst, tag, data, vtime_);
  machine_->deliver(id_, dst, tag, Machine::Message{std::move(data), sent_at});
}

Buffer Rank::recv(int src, int tag) {
  CATRSM_CHECK(src >= 0 && src < nprocs_, "recv: bad source rank");
  CATRSM_CHECK(src != id_, "recv: self-receives are a bug in SPMD code");
  if (FaultInjector* fi = machine_->injector_.get()) fi->maybe_kill(id_);
  Machine::Message msg = machine_->take(id_, src, tag);
  if (FaultInjector* fi = machine_->injector_.get())
    fi->verify_receive(id_, src, tag, msg.data, msg.checksum, msg.seq);
  const double w = static_cast<double>(msg.data.size());
  account(1.0, w, 0.0);
  // The data exists at the receiver no earlier than alpha + beta*w after
  // the sender's clock at send time, and no earlier than the receiver is
  // ready to receive.
  vtime_ = std::max(vtime_, msg.sender_vtime) + params().alpha +
           params().beta * w;
  if (check::TraceRecorder* t = machine_->tracer_.get())
    t->on_recv(id_, src, tag, msg.data, vtime_);
  return std::move(msg.data);
}

Buffer Rank::sendrecv(int peer, Buffer data, int tag) {
  return shift(peer, peer, std::move(data), tag);
}

Buffer Rank::shift(int dst, int src, Buffer data, int tag) {
  CATRSM_CHECK(dst >= 0 && dst < nprocs_, "shift: bad destination rank");
  CATRSM_CHECK(src >= 0 && src < nprocs_, "shift: bad source rank");
  CATRSM_CHECK(dst != id_ && src != id_, "shift: peers must differ from self");
  if (FaultInjector* fi = machine_->injector_.get()) fi->maybe_kill(id_);
  const double sent = static_cast<double>(data.size());
  check::TraceRecorder* const tracer = machine_->tracer_.get();
  Buffer sent_view;
  if (tracer != nullptr) sent_view = data;  // slab share, no copy
  machine_->deliver(id_, dst, tag, Machine::Message{std::move(data), vtime_});
  Machine::Message in = machine_->take(id_, src, tag);
  if (FaultInjector* fi = machine_->injector_.get())
    fi->verify_receive(id_, src, tag, in.data, in.checksum, in.seq);
  // One simultaneous exchange round: a single latency unit, and the wire
  // carries both directions concurrently, so the clock advances by the
  // larger payload only (paper Section II-A: "every processor can send and
  // receive one message at a time").
  const double w = std::max(sent, static_cast<double>(in.data.size()));
  account(1.0, w, 0.0);
  vtime_ = std::max(vtime_, in.sender_vtime) + params().alpha +
           params().beta * w;
  if (tracer != nullptr)
    tracer->on_shift(id_, dst, src, tag, sent_view, in.data, vtime_);
  return std::move(in.data);
}

void Rank::charge_flops(double f) {
  CATRSM_CHECK(f >= 0.0, "charge_flops: negative flop count");
  account(0.0, 0.0, f);
  vtime_ += params().gamma * f;
  if (check::TraceRecorder* t = machine_->tracer_.get())
    t->on_flops(id_, f, vtime_);
}

const MachineParams& Rank::params() const { return machine_->params_; }

check::CollectiveMatcher* Rank::matcher() const {
  return machine_->matcher_.get();
}

check::TraceRecorder* Rank::tracer() const { return machine_->tracer_.get(); }

FaultInjector* Rank::fault_injector() const {
  return machine_->injector_.get();
}

std::uint64_t Rank::comm_epoch(const std::vector<int>& members) {
  std::lock_guard<std::mutex> lock(machine_->epoch_mu_);
  auto [it, inserted] = machine_->epoch_ids_.try_emplace(
      members, machine_->epoch_ids_.size());
  return it->second;
}

// ---------------------------------------------------------------------------
// RunStats

double RunStats::max_msgs() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.msgs);
  return m;
}
double RunStats::max_words() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.words);
  return m;
}
double RunStats::max_flops() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.flops);
  return m;
}
double RunStats::total_words() const {
  double s = 0.0;
  for (const auto& c : per_rank) s += c.words;
  return s;
}

// ---------------------------------------------------------------------------
// Machine

Machine::Machine(int p, MachineParams params) : p_(p), params_(params) {
  CATRSM_CHECK(p >= 1, "machine needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
  for (int i = 0; i < p * p; ++i)
    mailboxes_.push_back(std::make_unique<Mailbox>());
  waits_.resize(static_cast<std::size_t>(p));
  if (env::flag_or("CATRSM_SIM_CHECK", false)) set_collective_checking(true);
  if (const std::optional<FaultPlan> plan = FaultPlan::from_env())
    arm_fault(*plan);
}

Machine::~Machine() = default;

void Machine::set_collective_checking(bool on) {
  if (on && matcher_ == nullptr)
    matcher_ = std::make_unique<check::CollectiveMatcher>(p_);
  else if (!on)
    matcher_.reset();
}

void Machine::set_tracing(bool on, bool capture_payloads) {
  if (on)
    tracer_ = std::make_unique<check::TraceRecorder>(p_, capture_payloads);
  else
    tracer_.reset();
}

check::Trace Machine::take_trace() {
  CATRSM_CHECK(tracer_ != nullptr, "take_trace: tracing is not enabled");
  CATRSM_CHECK(tracer_->run_complete(),
               "take_trace: the last traced run faulted before completing "
               "(a torso trace is not replayable); run again first");
  return tracer_->take();
}

void Machine::arm_fault(const FaultPlan& plan) {
  injector_ = std::make_unique<FaultInjector>(plan, p_);
}

void Machine::disarm_fault() { injector_.reset(); }

RankScheduler& Machine::scheduler() {
  if (!scheduler_) scheduler_ = std::make_unique<RankScheduler>(p_);
  return *scheduler_;
}

HandleStore& Machine::handle_store() {
  if (!handles_) handles_ = std::make_unique<HandleStore>(p_);
  return *handles_;
}

void Machine::deliver(int src, int dst, int tag, Message msg) {
  // Armed fault injection intercepts here — the single choke point both
  // send and shift deliver through. on_deliver stamps the verification
  // checksum/sequence (and applies payload corruption) before the message
  // enters the mailbox; only rank `src` delivers into box(dst, src), so
  // the injector's per-edge counters have a single writer.
  auto act = FaultInjector::Action::kPass;
  if (FaultInjector* fi = injector_.get()) {
    act = fi->on_deliver(src, dst, tag, &msg.data, &msg.checksum, &msg.seq);
    if (act == FaultInjector::Action::kDrop) return;  // vanished in flight
  }
  Mailbox& box = box_of(dst, src);
  void* waiter = nullptr;
  {
    std::lock_guard<std::mutex> lock(box.mu);
    if (act == FaultInjector::Action::kDelay) {
      // Held back: flushed behind the next delivery into this box. If no
      // later delivery ever flushes it, the receiver blocks and the
      // deadlock detector declares the starvation (the pending scan does
      // not see held messages, by design).
      box.delayed.emplace_back(tag, std::move(msg));
      return;
    }
    box.queue_for(tag).push_back(std::move(msg));
    if (act == FaultInjector::Action::kDuplicate) {
      Message dup = box.queue_for(tag).back();  // slab share, no copy
      box.queue_for(tag).push_back(std::move(dup));
    }
    bool wake = box.waiter != nullptr && box.waiter_tag == tag;
    while (!box.delayed.empty()) {
      auto& [held_tag, held] = box.delayed.front();
      box.queue_for(held_tag).push_back(std::move(held));
      if (box.waiter != nullptr && box.waiter_tag == held_tag) wake = true;
      box.delayed.pop_front();
    }
    if (wake) {
      waiter = box.waiter;
      box.waiter = nullptr;
    }
  }
  if (waiter != nullptr) {
    RankScheduler::wake_fiber(waiter);
  } else {
    box.cv.notify_all();
  }
}

Machine::Message Machine::take(int dst, int src, int tag) {
  Mailbox& box = box_of(dst, src);
  std::unique_lock<std::mutex> lock(box.mu);
  auto& queue = box.queue_for(tag);
  // Deadlock detection piggybacks on the block path: the first iteration
  // that finds the queue empty registers this rank's wait record, and if
  // that registration completes the all-blocked-or-finished set, this
  // rank validates the stall before parking (see sim/check/deadlock.hpp
  // for why the protocol cannot fire spuriously). Receives that find
  // their message waiting never touch the detector.
  bool registered = false;
  if (void* self = RankScheduler::current_fiber()) {
    // Fiber backend: a blocked receive yields the worker to another rank
    // instead of parking the OS thread.
    while (queue.empty() && !aborted_.load()) {
      box.waiter = self;
      box.waiter_tag = tag;
      bool candidate = false;
      if (!registered) {
        registered = true;
        candidate = register_blocked(dst, src, tag);
      }
      lock.unlock();
      if (candidate && confirm_deadlock()) fault_deadlock();
      RankScheduler::block_current_fiber();
      lock.lock();
    }
    if (box.waiter == self) box.waiter = nullptr;  // abort-path cleanup
  } else {
    while (queue.empty() && !aborted_.load()) {
      bool candidate = false;
      if (!registered) {
        registered = true;
        candidate = register_blocked(dst, src, tag);
      }
      if (candidate) {
        lock.unlock();
        const bool dead = confirm_deadlock();
        if (dead) fault_deadlock();
        lock.lock();
        continue;  // validation dropped the box lock: re-check the queue
      }
      box.cv.wait(lock);
    }
  }
  if (registered) unregister_blocked(dst);
  if (queue.empty()) {
    // Another rank failed; propagate so the whole run unwinds cleanly
    // (when the failure was a declared deadlock, rethrow it as such so
    // every rank's unwind carries the diagnostic dump).
    bool dead = false;
    {
      std::lock_guard<std::mutex> wl(wait_mu_);
      dead = deadlocked_;
    }
    if (dead) fault_deadlock();
    throw Error("simulated run aborted by failure on a peer rank");
  }
  Message msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

bool Machine::register_blocked(int dst, int src, int tag) {
  std::lock_guard<std::mutex> lock(wait_mu_);
  WaitRecord& w = waits_[static_cast<std::size_t>(dst)];
  w.active = true;
  w.src = src;
  w.tag = tag;
  ++n_blocked_;
  ++wait_seq_;
  return n_blocked_ > 0 && n_blocked_ + n_finished_ == p_ && !deadlocked_ &&
         !aborted_.load();
}

void Machine::unregister_blocked(int dst) {
  std::lock_guard<std::mutex> lock(wait_mu_);
  WaitRecord& w = waits_[static_cast<std::size_t>(dst)];
  if (!w.active) return;
  w.active = false;
  --n_blocked_;
  ++wait_seq_;
}

bool Machine::finish_rank() {
  std::lock_guard<std::mutex> lock(wait_mu_);
  ++n_finished_;
  ++wait_seq_;
  return n_blocked_ > 0 && n_blocked_ + n_finished_ == p_ && !deadlocked_ &&
         !aborted_.load();
}

bool Machine::confirm_deadlock() {
  // Step 1: snapshot the wait set and its sequence number. The candidate
  // observed "every rank blocked or finished", so no rank is executing —
  // in particular no deliver is in flight — unless something moves, which
  // step 3 detects.
  std::vector<check::RankWait> snapshot(static_cast<std::size_t>(p_));
  std::uint64_t seq0 = 0;
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (deadlocked_) return true;  // a peer already declared; just unwind
    if (n_blocked_ == 0 || n_blocked_ + n_finished_ != p_) return false;
    seq0 = wait_seq_;
    for (int r = 0; r < p_; ++r) {
      const WaitRecord& w = waits_[static_cast<std::size_t>(r)];
      auto& s = snapshot[static_cast<std::size_t>(r)];
      s.finished = !w.active;
      s.src = w.src;
      s.tag = w.tag;
    }
  }
  if (aborted_.load()) return false;

  // Step 2: a pending message matching any blocked rank's wait means its
  // wake-up is merely unscheduled — stand down.
  for (int r = 0; r < p_; ++r) {
    const auto& s = snapshot[static_cast<std::size_t>(r)];
    if (s.finished) continue;
    Mailbox& box = box_of(r, s.src);
    std::lock_guard<std::mutex> lock(box.mu);
    if (!box.queue_for(s.tag).empty()) return false;
  }

  // Step 3: declare only if nothing moved while we scanned. Any message
  // consumption or new registration bumps wait_seq_, so a stale snapshot
  // can never be declared.
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (deadlocked_) return true;
    if (wait_seq_ != seq0 || aborted_.load()) return false;
    deadlocked_ = true;
  }

  // Every rank is parked and stays parked until abort_all below, so the
  // mailboxes are quiescent: summarize them for the dump without racing.
  std::vector<check::PendingQueue> pending;
  for (int dst = 0; dst < p_; ++dst) {
    for (int src = 0; src < p_; ++src) {
      if (dst == src) continue;
      Mailbox& box = box_of(dst, src);
      std::lock_guard<std::mutex> lock(box.mu);
      for (const auto& [qtag, q] : box.queues) {
        if (q.empty()) continue;
        std::size_t words = 0;
        for (const Message& m : q) words += m.data.size();
        pending.push_back({dst, src, qtag, q.size(), words});
      }
    }
  }
  std::vector<std::string> contexts(static_cast<std::size_t>(p_));
  if (matcher_ != nullptr)
    for (int r = 0; r < p_; ++r)
      contexts[static_cast<std::size_t>(r)] = matcher_->context_of(r);
  std::string dump = check::describe_deadlock(snapshot, pending, contexts);
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    deadlock_dump_ = std::move(dump);
  }
  abort_all();
  return true;
}

void Machine::fault_deadlock() {
  std::string dump;
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    dump = deadlock_dump_;
  }
  if (dump.empty())
    throw Error("simulated run aborted: deadlock detected on a peer rank");
  throw check::DeadlockError(dump);
}

void Machine::abort_all() {
  aborted_.store(true);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  if (scheduler_) scheduler_->wake_all_fibers();
}

RunStats Machine::run(const std::function<void(Rank&)>& fn) {
  // Fresh mailboxes each run: a message the previous run left unconsumed
  // (or a failed run's leftovers) must never FIFO-match into this run.
  // Empty per-tag entries are kept for block reuse unless they have
  // accumulated — a long-lived machine sees fresh tags per communicator
  // epoch, so unbounded entry growth would make every send's tag scan
  // linear in dead tags.
  aborted_.store(false);
  constexpr std::size_t kMaxIdleTagEntries = 8;
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    if (box->queues.size() > kMaxIdleTagEntries) {
      box->queues.clear();
    } else {
      for (auto& [tag, queue] : box->queues) queue.clear();
    }
    box->delayed.clear();
    box->waiter = nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    for (auto& w : waits_) w = WaitRecord{};
    n_blocked_ = 0;
    n_finished_ = 0;
    ++wait_seq_;
    deadlocked_ = false;
    deadlock_dump_.clear();
  }
  if (matcher_ != nullptr) matcher_->reset();
  if (tracer_ != nullptr) tracer_->begin_run(params_);
  if (injector_ != nullptr) injector_->begin_run();

  std::vector<std::unique_ptr<Rank>> ranks;
  ranks.reserve(static_cast<std::size_t>(p_));
  for (int i = 0; i < p_; ++i)
    ranks.push_back(std::unique_ptr<Rank>(new Rank(this, i, p_)));

  std::exception_ptr first_error;
  std::mutex error_mu;

  scheduler().run([&](int i) {
    try {
      fn(*ranks[static_cast<std::size_t>(i)]);
      // The last rank to finish while the rest are blocked is the one
      // that can see their deadlock (e.g. a peer waiting on a rank that
      // already returned): run the same detection a blocking receive
      // would.
      if (finish_rank() && confirm_deadlock()) fault_deadlock();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // Wake every peer blocked in take(); they observe aborted_ and
      // unwind, so the run never hangs after a failure.
      abort_all();
    }
  });
  {
    std::lock_guard<std::mutex> lock(error_mu);
    // A deadlock declaration outranks the per-rank unwind errors racing
    // with it: every rank should surface the same diagnostic dump.
    if (!deadlock_dump_.empty()) throw check::DeadlockError(deadlock_dump_);
    if (first_error) std::rethrow_exception(first_error);
  }

  if (injector_ != nullptr) {
    // Residual sweep (armed runs only): every rank returned cleanly, so
    // the mailboxes are quiescent — anything still queued or held back is
    // an injected delivery no receive ever consumed (an unconsumed
    // duplicate, a never-flushed delay) that would otherwise vanish
    // silently into the next run's mailbox reset.
    std::ostringstream residue;
    std::size_t leftovers = 0;
    for (int dst = 0; dst < p_; ++dst) {
      for (int src = 0; src < p_; ++src) {
        if (dst == src) continue;
        Mailbox& box = box_of(dst, src);
        std::lock_guard<std::mutex> lock(box.mu);
        for (const auto& [qtag, q] : box.queues) {
          if (q.empty()) continue;
          leftovers += q.size();
          residue << "\n  " << q.size() << " queued message(s) " << src
                  << "->" << dst << " tag " << qtag;
        }
        if (!box.delayed.empty()) {
          leftovers += box.delayed.size();
          residue << "\n  " << box.delayed.size()
                  << " held-back delivery(ies) " << src << "->" << dst;
        }
      }
    }
    if (leftovers > 0) {
      throw check::TransportResidueError(
          "transport residue after a completed run (" +
          std::to_string(leftovers) +
          " unconsumed delivery(ies); fault plan " +
          injector_->plan().describe() + "):" + residue.str());
    }
  }

  RunStats stats;
  stats.per_rank.reserve(static_cast<std::size_t>(p_));
  for (const auto& r : ranks) {
    stats.per_rank.push_back(r->cost());
    stats.critical_time = std::max(stats.critical_time, r->vtime());
    for (const auto& [name, cost] : r->phase_costs()) {
      Cost& agg = stats.phase_max[name];
      agg.msgs = std::max(agg.msgs, cost.msgs);
      agg.words = std::max(agg.words, cost.words);
      agg.flops = std::max(agg.flops, cost.flops);
    }
  }
  if (tracer_ != nullptr) {
    std::vector<double> vtimes;
    vtimes.reserve(static_cast<std::size_t>(p_));
    for (const auto& r : ranks) vtimes.push_back(r->vtime());
    tracer_->finish_run(stats.per_rank, vtimes, stats.critical_time);
  }
  return stats;
}

}  // namespace catrsm::sim
