#include "sim/machine.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <optional>
#include <utility>

#include <sstream>

#include "sim/check/coll_matcher.hpp"
#include "sim/check/deadlock.hpp"
#include "sim/check/fault_report.hpp"
#include "sim/check/trace.hpp"
#include "sim/fault.hpp"
#include "support/env.hpp"

namespace catrsm::sim {

// ---------------------------------------------------------------------------
// Per-run transport state. One RunContext per run_async: everything a run
// mutates lives here, so concurrent streams share only the scheduler's
// worker pool, the handle store, and the (append-only) epoch registry.

struct Message {
  Buffer data;
  double sender_vtime = 0.0;  // sender clock at the instant of send
  // Transport-verification stamps, written only while a fault plan is
  // armed (zero otherwise): FNV-1a hash of the payload before any
  // injected corruption, and the per-(src, dst, tag) delivery ordinal.
  std::uint64_t checksum = 0;
  std::uint32_t seq = 0;
};

/// One mailbox per ordered (dst, src) pair: senders to the same receiver
/// shard across locks instead of serializing on one mailbox-map mutex.
struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  // FIFO queue per tag; SPMD program order makes FIFO matching
  // sufficient and deterministic. A flat deque of (tag, queue) entries
  // beats a map here: a box sees a handful of tags, the entries (and
  // their message blocks) are reused run after run instead of being
  // reallocated, and — critically — growing a deque never invalidates
  // the queue reference a blocked receiver holds across its wait (a
  // vector would dangle it on reallocation).
  std::deque<std::pair<int, std::deque<Message>>> queues;
  std::deque<Message>& queue_for(int tag) {
    for (auto& [t, q] : queues)
      if (t == tag) return q;
    return queues.emplace_back(tag, std::deque<Message>{}).second;
  }
  // Fiber-backend rendezvous: the receiving rank's parked fiber and the
  // tag it waits for (only rank `dst` ever receives on this box, so one
  // slot suffices). Guarded by mu.
  void* waiter = nullptr;
  int waiter_tag = 0;
  // Deliveries held back by an armed delay fault (guarded by mu): each
  // is appended to its tag queue *behind* the next message delivered
  // into this box, reordering the FIFO deterministically. Invisible to
  // the deadlock detector's pending scan on purpose — a held message
  // cannot wake its receiver, so a run starved by one is a genuine
  // (and correctly declared) deadlock. Always empty when no plan is
  // armed.
  std::deque<std::pair<int, Message>> delayed;
};

/// A run's p*p mailboxes. Pooled on the machine and reset at acquisition:
/// tag entries and their message blocks are reused run after run instead
/// of being reallocated.
struct MailboxSet {
  explicit MailboxSet(int p) {
    boxes.reserve(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
    for (int i = 0; i < p * p; ++i) boxes.push_back(std::make_unique<Mailbox>());
  }
  std::vector<std::unique_ptr<Mailbox>> boxes;
};

class RunContext {
 public:
  RunContext(Machine* m, std::function<void(Rank&)> fn)
      : machine(m), p(m->nprocs()), params(m->params()), body(std::move(fn)) {
    waits.resize(static_cast<std::size_t>(p));
    wait_rec_mu.reset(new std::mutex[static_cast<std::size_t>(p)]);
    ranks.reserve(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i)
      ranks.push_back(std::unique_ptr<Rank>(new Rank(this, i, p)));
  }

  Machine* machine;
  int p;
  MachineParams params;
  std::function<void(Rank&)> body;
  std::unique_ptr<MailboxSet> mail;  // borrowed from the machine pool
  std::atomic<bool> aborted{false};
  std::vector<std::unique_ptr<Rank>> ranks;

  // --- Wait-for-graph deadlock detection (sim/check/deadlock.hpp) --------
  // A blocking take() registers its wait record; the registration (or
  // rank completion) that makes every rank blocked-or-finished nominates
  // the caller as detection candidate, and confirm_deadlock() validates
  // the stall race-free before declaring. Sends never touch this state.
  //
  // Sharded on purpose: record mutations lock only that rank's own
  // mutex and bump atomic counters, because the hot transport path
  // (every blocked receive registers + every delivery to a parked rank
  // clears) turned a single run-wide mutex here into a futex ping-pong
  // between workers. wait_mu now serializes only the rare
  // confirm/declare path and guards the dump.
  struct WaitRecord {
    bool active = false;
    int src = -1;
    int tag = 0;
  };
  std::unique_ptr<std::mutex[]> wait_rec_mu;  // wait_rec_mu[r] guards waits[r]
  std::vector<WaitRecord> waits;
  std::atomic<int> n_blocked{0};
  std::atomic<int> n_finished{0};
  std::atomic<std::uint64_t> wait_seq{0};  // bumped on every wait-set change
  std::atomic<bool> deadlocked{false};
  std::mutex wait_mu;         // serializes confirm/declare; guards the dump
  std::string deadlock_dump;  // set once by the declaring rank

  // Per-run tooling instances (built from the machine settings).
  std::unique_ptr<check::CollectiveMatcher> matcher;
  std::unique_ptr<check::TraceRecorder> tracer;
  std::unique_ptr<FaultInjector> injector;

  std::mutex error_mu;
  std::exception_ptr first_error;

  RankScheduler::SubmissionPtr sub;

  // Assemble-once state (RunTicket::wait is idempotent).
  std::mutex assemble_mu;
  bool assembled = false;
  RunStats stats;
  std::exception_ptr outcome;
  int injections_final = 0;

  Mailbox& box_of(int dst, int src) {
    return *mail->boxes[static_cast<std::size_t>(dst) *
                            static_cast<std::size_t>(p) +
                        static_cast<std::size_t>(src)];
  }
  void deliver(int src, int dst, int tag, Message msg);
  Message take(int dst, int src, int tag);
  void abort_all();
  bool register_blocked(int dst, int src, int tag);
  void unregister_blocked(int dst);
  /// Clear dst's wait record at DELIVERY time (ntags == 0: the caller
  /// proved the match via the mailbox waiter; otherwise clear only when
  /// the record's tag is among the `ntags` tags just made available).
  /// Without this, a rank whose message arrived but whose fiber has not
  /// been scheduled yet still counts as blocked — and under concurrent
  /// streams, where runs routinely starve, that made "every rank
  /// blocked" a steady state and every registration an O(p) confirm
  /// sweep.
  void delivered_unblock(int dst, int src, const int* tags, int ntags);
  bool finish_rank();
  bool confirm_deadlock();
  [[noreturn]] void fault_deadlock();
  void rank_main(int i);
  RunStats wait_and_assemble();
};

// ---------------------------------------------------------------------------
// Rank

void Rank::account(double msgs, double words, double flops) {
  cost_.msgs += msgs;
  cost_.words += words;
  cost_.flops += flops;
  for (const std::string& label : phase_stack_) {
    Cost& bucket = phase_costs_[label];
    bucket.msgs += msgs;
    bucket.words += words;
    bucket.flops += flops;
  }
}

void Rank::pop_phase() {
  CATRSM_CHECK(!phase_stack_.empty(), "pop_phase: no active phase");
  phase_stack_.pop_back();
}

const std::string& Rank::phase() const {
  static const std::string kNone;
  return phase_stack_.empty() ? kNone : phase_stack_.back();
}

void Rank::send(int dst, Buffer data, int tag) {
  CATRSM_CHECK(dst >= 0 && dst < nprocs_, "send: bad destination rank");
  CATRSM_CHECK(dst != id_, "send: self-sends are a bug in SPMD code");
  if (FaultInjector* fi = run_->injector.get()) fi->maybe_kill(id_);
  const double w = static_cast<double>(data.size());
  const double sent_at = vtime_;
  account(1.0, w, 0.0);
  vtime_ += params().alpha + params().beta * w;
  if (check::TraceRecorder* t = run_->tracer.get())
    t->on_send(id_, dst, tag, data, vtime_);
  run_->deliver(id_, dst, tag, Message{std::move(data), sent_at});
}

Buffer Rank::recv(int src, int tag) {
  CATRSM_CHECK(src >= 0 && src < nprocs_, "recv: bad source rank");
  CATRSM_CHECK(src != id_, "recv: self-receives are a bug in SPMD code");
  if (FaultInjector* fi = run_->injector.get()) fi->maybe_kill(id_);
  Message msg = run_->take(id_, src, tag);
  if (FaultInjector* fi = run_->injector.get())
    fi->verify_receive(id_, src, tag, msg.data, msg.checksum, msg.seq);
  const double w = static_cast<double>(msg.data.size());
  account(1.0, w, 0.0);
  // The data exists at the receiver no earlier than alpha + beta*w after
  // the sender's clock at send time, and no earlier than the receiver is
  // ready to receive.
  vtime_ = std::max(vtime_, msg.sender_vtime) + params().alpha +
           params().beta * w;
  if (check::TraceRecorder* t = run_->tracer.get())
    t->on_recv(id_, src, tag, msg.data, vtime_);
  return std::move(msg.data);
}

Buffer Rank::sendrecv(int peer, Buffer data, int tag) {
  return shift(peer, peer, std::move(data), tag);
}

Buffer Rank::shift(int dst, int src, Buffer data, int tag) {
  CATRSM_CHECK(dst >= 0 && dst < nprocs_, "shift: bad destination rank");
  CATRSM_CHECK(src >= 0 && src < nprocs_, "shift: bad source rank");
  CATRSM_CHECK(dst != id_ && src != id_, "shift: peers must differ from self");
  if (FaultInjector* fi = run_->injector.get()) fi->maybe_kill(id_);
  const double sent = static_cast<double>(data.size());
  check::TraceRecorder* const tracer = run_->tracer.get();
  Buffer sent_view;
  if (tracer != nullptr) sent_view = data;  // slab share, no copy
  run_->deliver(id_, dst, tag, Message{std::move(data), vtime_});
  Message in = run_->take(id_, src, tag);
  if (FaultInjector* fi = run_->injector.get())
    fi->verify_receive(id_, src, tag, in.data, in.checksum, in.seq);
  // One simultaneous exchange round: a single latency unit, and the wire
  // carries both directions concurrently, so the clock advances by the
  // larger payload only (paper Section II-A: "every processor can send and
  // receive one message at a time").
  const double w = std::max(sent, static_cast<double>(in.data.size()));
  account(1.0, w, 0.0);
  vtime_ = std::max(vtime_, in.sender_vtime) + params().alpha +
           params().beta * w;
  if (tracer != nullptr)
    tracer->on_shift(id_, dst, src, tag, sent_view, in.data, vtime_);
  return std::move(in.data);
}

void Rank::charge_flops(double f) {
  CATRSM_CHECK(f >= 0.0, "charge_flops: negative flop count");
  account(0.0, 0.0, f);
  vtime_ += params().gamma * f;
  if (check::TraceRecorder* t = run_->tracer.get())
    t->on_flops(id_, f, vtime_);
}

const MachineParams& Rank::params() const { return run_->params; }

check::CollectiveMatcher* Rank::matcher() const {
  return run_->matcher.get();
}

check::TraceRecorder* Rank::tracer() const { return run_->tracer.get(); }

FaultInjector* Rank::fault_injector() const { return run_->injector.get(); }

std::uint64_t Rank::comm_epoch(const std::vector<int>& members) {
  Machine* m = run_->machine;
  std::lock_guard<std::mutex> lock(m->epoch_mu_);
  auto [it, inserted] =
      m->epoch_ids_.try_emplace(members, m->epoch_ids_.size());
  return it->second;
}

// ---------------------------------------------------------------------------
// RunStats

double RunStats::max_msgs() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.msgs);
  return m;
}
double RunStats::max_words() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.words);
  return m;
}
double RunStats::max_flops() const {
  double m = 0.0;
  for (const auto& c : per_rank) m = std::max(m, c.flops);
  return m;
}
double RunStats::total_words() const {
  double s = 0.0;
  for (const auto& c : per_rank) s += c.words;
  return s;
}

// ---------------------------------------------------------------------------
// RunContext: transport

void RunContext::deliver(int src, int dst, int tag, Message msg) {
  // Armed fault injection intercepts here — the single choke point both
  // send and shift deliver through. on_deliver stamps the verification
  // checksum/sequence (and applies payload corruption) before the message
  // enters the mailbox; only rank `src` delivers into box(dst, src), so
  // the injector's per-edge counters have a single writer.
  auto act = FaultInjector::Action::kPass;
  if (FaultInjector* fi = injector.get()) {
    act = fi->on_deliver(src, dst, tag, &msg.data, &msg.checksum, &msg.seq);
    if (act == FaultInjector::Action::kDrop) return;  // vanished in flight
  }
  Mailbox& box = box_of(dst, src);
  void* waiter = nullptr;
  std::vector<int> flushed_tags;  // stays empty unless held-backs flush
  {
    std::lock_guard<std::mutex> lock(box.mu);
    if (act == FaultInjector::Action::kDelay) {
      // Held back: flushed behind the next delivery into this box. If no
      // later delivery ever flushes it, the receiver blocks and the
      // deadlock detector declares the starvation (the pending scan does
      // not see held messages, by design).
      box.delayed.emplace_back(tag, std::move(msg));
      return;
    }
    box.queue_for(tag).push_back(std::move(msg));
    if (act == FaultInjector::Action::kDuplicate) {
      Message dup = box.queue_for(tag).back();  // slab share, no copy
      box.queue_for(tag).push_back(std::move(dup));
    }
    bool wake = box.waiter != nullptr && box.waiter_tag == tag;
    while (!box.delayed.empty()) {
      auto& [held_tag, held] = box.delayed.front();
      box.queue_for(held_tag).push_back(std::move(held));
      if (box.waiter != nullptr && box.waiter_tag == held_tag) wake = true;
      flushed_tags.push_back(held_tag);
      box.delayed.pop_front();
    }
    if (wake) {
      waiter = box.waiter;
      box.waiter = nullptr;
    }
    // Clear the receiver's wait record BEFORE box.mu is released, i.e.
    // at delivery — not when the starved receiver finally resumes. The
    // lock matters: once box.mu drops, the receiver may consume this
    // message and register a fresh wait on the same (src, tag) edge, and
    // a clear landing after that would hide a genuinely blocked rank
    // from the deadlock detector forever (a missed real deadlock hangs
    // the run). Under the lock the clear can only hit the wait this
    // delivery satisfies.
    if (waiter != nullptr) {
      // Waking implies a tag match; clear unconditionally.
      delivered_unblock(dst, src, nullptr, 0);
    } else {
      // Thread backend (or a receiver not yet parked): clear only when
      // one of the tags just enqueued satisfies the registered wait — an
      // over-clear would hide a blocked rank just the same.
      flushed_tags.push_back(tag);
      delivered_unblock(dst, src, flushed_tags.data(),
                        static_cast<int>(flushed_tags.size()));
    }
  }
  if (waiter != nullptr) {
    RankScheduler::wake_fiber(waiter);
  } else {
    box.cv.notify_all();
  }
}

Message RunContext::take(int dst, int src, int tag) {
  Mailbox& box = box_of(dst, src);
  std::unique_lock<std::mutex> lock(box.mu);
  auto& queue = box.queue_for(tag);
  // Deadlock detection piggybacks on the block path: the first iteration
  // that finds the queue empty registers this rank's wait record, and if
  // that registration completes the all-blocked-or-finished set, this
  // rank validates the stall before parking (see sim/check/deadlock.hpp
  // for why the protocol cannot fire spuriously). Receives that find
  // their message waiting never touch the detector.
  bool registered = false;
  if (void* self = RankScheduler::current_fiber()) {
    // Fiber backend: a blocked receive yields the worker to another rank
    // instead of parking the OS thread.
    while (queue.empty() && !aborted.load()) {
      box.waiter = self;
      box.waiter_tag = tag;
      // Abort wakes only the waiters it finds registered, so re-check
      // under the box lock after registering: either this load sees the
      // abort, or the abort's scan (serialized by box.mu) sees the
      // waiter and wakes it — never neither.
      if (aborted.load()) {
        box.waiter = nullptr;
        break;
      }
      bool candidate = false;
      if (!registered) {
        registered = true;
        candidate = register_blocked(dst, src, tag);
      }
      lock.unlock();
      if (candidate && confirm_deadlock()) fault_deadlock();
      RankScheduler::block_current_fiber();
      lock.lock();
    }
    if (box.waiter == self) box.waiter = nullptr;  // abort-path cleanup
  } else {
    while (queue.empty() && !aborted.load()) {
      bool candidate = false;
      if (!registered) {
        registered = true;
        candidate = register_blocked(dst, src, tag);
      }
      if (candidate) {
        lock.unlock();
        const bool dead = confirm_deadlock();
        if (dead) fault_deadlock();
        lock.lock();
        continue;  // validation dropped the box lock: re-check the queue
      }
      box.cv.wait(lock);
    }
  }
  if (registered) unregister_blocked(dst);
  if (queue.empty()) {
    // Another rank failed; propagate so the whole run unwinds cleanly
    // (when the failure was a declared deadlock, rethrow it as such so
    // every rank's unwind carries the diagnostic dump). Drop the box
    // lock FIRST: fault_deadlock blocks on wait_mu, and the declaring
    // rank holds wait_mu while its abort_all sweep takes every box.mu —
    // faulting with the box still locked closes that cycle into an ABBA
    // deadlock between the detector and the ranks it just woke.
    lock.unlock();
    if (deadlocked.load()) fault_deadlock();
    throw Error("simulated run aborted by failure on a peer rank");
  }
  Message msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

bool RunContext::register_blocked(int dst, int src, int tag) {
  {
    std::lock_guard<std::mutex> lock(wait_rec_mu[static_cast<std::size_t>(dst)]);
    WaitRecord& w = waits[static_cast<std::size_t>(dst)];
    w.active = true;
    w.src = src;
    w.tag = tag;
  }
  const int nb = n_blocked.fetch_add(1) + 1;
  wait_seq.fetch_add(1);
  // seq_cst counters: the transition that really completes the
  // blocked-or-finished set happens last in real time, so its loads see
  // the full totals and nominate a candidate; stale reads on earlier
  // transitions only suppress candidates, and confirm re-validates.
  const bool cand = nb > 0 && nb + n_finished.load() == p &&
                    !deadlocked.load() && !aborted.load();
  return cand;
}

void RunContext::unregister_blocked(int dst) {
  {
    std::lock_guard<std::mutex> lock(wait_rec_mu[static_cast<std::size_t>(dst)]);
    WaitRecord& w = waits[static_cast<std::size_t>(dst)];
    if (!w.active) return;
    w.active = false;
  }
  n_blocked.fetch_sub(1);
  wait_seq.fetch_add(1);
}

void RunContext::delivered_unblock(int dst, int src, const int* tags,
                                   int ntags) {
  {
    std::lock_guard<std::mutex> lock(wait_rec_mu[static_cast<std::size_t>(dst)]);
    WaitRecord& w = waits[static_cast<std::size_t>(dst)];
    if (!w.active || w.src != src) return;
    if (ntags > 0) {
      bool hit = false;
      for (int i = 0; i < ntags && !hit; ++i) hit = w.tag == tags[i];
      if (!hit) return;
    }
    w.active = false;
  }
  n_blocked.fetch_sub(1);
  wait_seq.fetch_add(1);
}

bool RunContext::finish_rank() {
  const int nf = n_finished.fetch_add(1) + 1;
  wait_seq.fetch_add(1);
  const int nb = n_blocked.load();
  const bool cand =
      nb > 0 && nb + nf == p && !deadlocked.load() && !aborted.load();
  return cand;
}

bool RunContext::confirm_deadlock() {
  // wait_mu is held for the whole confirmation so at most one rank runs
  // the validation/declare sequence at a time; the hot paths (register /
  // unregister / delivered_unblock) never take it.
  std::lock_guard<std::mutex> confirm_lock(wait_mu);
  std::vector<check::RankWait> snapshot(static_cast<std::size_t>(p));
  for (;;) {
    if (deadlocked.load()) return true;  // a peer already declared; unwind
    if (aborted.load()) return false;

    // Step 1: snapshot the wait set under the per-rank record locks and
    // recompute the blocked count from the snapshot itself (the atomic
    // counters can be mid-update; the records are the ground truth). The
    // candidate observed "every rank blocked or finished", so no rank of
    // THIS run is executing — in particular no deliver is in flight —
    // unless something moves, which step 3 detects. Other streams' ranks
    // are invisible here: they touch their own RunContext only.
    const std::uint64_t seq0 = wait_seq.load();
    int blocked = 0;
    for (int r = 0; r < p; ++r) {
      std::lock_guard<std::mutex> lock(
          wait_rec_mu[static_cast<std::size_t>(r)]);
      const WaitRecord& w = waits[static_cast<std::size_t>(r)];
      auto& s = snapshot[static_cast<std::size_t>(r)];
      s.finished = !w.active;
      s.src = w.src;
      s.tag = w.tag;
      if (w.active) ++blocked;
    }
    if (blocked == 0 || blocked + n_finished.load() != p) {
      return false;
    }

    // Step 2: a pending message matching any blocked rank's wait means
    // its wake-up is merely unscheduled — stand down.
    bool pending_match = false;
    for (int r = 0; r < p && !pending_match; ++r) {
      const auto& s = snapshot[static_cast<std::size_t>(r)];
      if (s.finished) continue;
      Mailbox& box = box_of(r, s.src);
      std::lock_guard<std::mutex> lock(box.mu);
      if (!box.queue_for(s.tag).empty()) pending_match = true;
    }
    if (pending_match) {
      return false;
    }

    // Step 3: declare only if nothing moved while we scanned. Any message
    // consumption, new registration, or delivery-time unblock bumps
    // wait_seq, so a stale snapshot can never be declared. A bump alone,
    // however, does NOT prove the run is live: a peer's register/finish
    // transition that was already counted in our snapshot may publish its
    // seq increment late, and that peer saw a partial count so it will
    // never nominate itself. Standing down here would therefore lose the
    // only candidate. Retry with a fresh snapshot instead; the loop exits
    // via the count or pending-message checks the moment any rank makes
    // real progress, and settles on a stable snapshot in a true deadlock.
    if (wait_seq.load() != seq0) {
      continue;
    }
    break;
  }
  deadlocked.store(true);

  // Every rank is parked and stays parked until abort_all below, so the
  // mailboxes are quiescent: summarize them for the dump without racing.
  std::vector<check::PendingQueue> pending;
  for (int dst = 0; dst < p; ++dst) {
    for (int src = 0; src < p; ++src) {
      if (dst == src) continue;
      Mailbox& box = box_of(dst, src);
      std::lock_guard<std::mutex> lock(box.mu);
      for (const auto& [qtag, q] : box.queues) {
        if (q.empty()) continue;
        std::size_t words = 0;
        for (const Message& m : q) words += m.data.size();
        pending.push_back({dst, src, qtag, q.size(), words});
      }
    }
  }
  std::vector<std::string> contexts(static_cast<std::size_t>(p));
  if (matcher != nullptr)
    for (int r = 0; r < p; ++r)
      contexts[static_cast<std::size_t>(r)] = matcher->context_of(r);
  // wait_mu is still held, so the dump write is ordered before any
  // fault_deadlock() read (which also takes wait_mu).
  deadlock_dump = check::describe_deadlock(snapshot, pending, contexts);
  abort_all();
  return true;
}

void RunContext::fault_deadlock() {
  std::string dump;
  {
    std::lock_guard<std::mutex> lock(wait_mu);
    dump = deadlock_dump;
  }
  if (dump.empty())
    throw Error("simulated run aborted: deadlock detected on a peer rank");
  throw check::DeadlockError(dump);
}

void RunContext::abort_all() {
  // Wake every rank OF THIS RUN blocked in take(); they observe aborted
  // and unwind. Only waiters registered in this run's own mailboxes are
  // touched, so concurrent streams never notice.
  aborted.store(true);
  for (auto& box : mail->boxes) {
    void* waiter = nullptr;
    {
      std::lock_guard<std::mutex> lock(box->mu);
      waiter = box->waiter;
      box->waiter = nullptr;
      box->cv.notify_all();
    }
    if (waiter != nullptr) RankScheduler::wake_fiber(waiter);
  }
}

void RunContext::rank_main(int i) {
  try {
    body(*ranks[static_cast<std::size_t>(i)]);
    // The last rank to finish while the rest are blocked is the one
    // that can see their deadlock (e.g. a peer waiting on a rank that
    // already returned): run the same detection a blocking receive
    // would.
    if (finish_rank() && confirm_deadlock()) fault_deadlock();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    abort_all();
  }
}

RunStats RunContext::wait_and_assemble() {
  machine->scheduler().wait(sub);
  std::lock_guard<std::mutex> lock(assemble_mu);
  if (!assembled) {
    assembled = true;
    try {
      {
        std::lock_guard<std::mutex> el(error_mu);
        // A deadlock declaration outranks the per-rank unwind errors
        // racing with it: every rank should surface the same dump.
        if (!deadlock_dump.empty()) throw check::DeadlockError(deadlock_dump);
        if (first_error) std::rethrow_exception(first_error);
      }

      if (injector != nullptr) {
        // Residual sweep (armed runs only): every rank returned cleanly,
        // so the mailboxes are quiescent — anything still queued or held
        // back is an injected delivery no receive ever consumed (an
        // unconsumed duplicate, a never-flushed delay) that would
        // otherwise vanish silently when the boxes are pooled.
        std::ostringstream residue;
        std::size_t leftovers = 0;
        for (int dst = 0; dst < p; ++dst) {
          for (int src = 0; src < p; ++src) {
            if (dst == src) continue;
            Mailbox& box = box_of(dst, src);
            std::lock_guard<std::mutex> bl(box.mu);
            for (const auto& [qtag, q] : box.queues) {
              if (q.empty()) continue;
              leftovers += q.size();
              residue << "\n  " << q.size() << " queued message(s) " << src
                      << "->" << dst << " tag " << qtag;
            }
            if (!box.delayed.empty()) {
              leftovers += box.delayed.size();
              residue << "\n  " << box.delayed.size()
                      << " held-back delivery(ies) " << src << "->" << dst;
            }
          }
        }
        if (leftovers > 0) {
          throw check::TransportResidueError(
              "transport residue after a completed run (" +
              std::to_string(leftovers) +
              " unconsumed delivery(ies); fault plan " +
              injector->plan().describe() + "):" + residue.str());
        }
      }

      stats.per_rank.reserve(static_cast<std::size_t>(p));
      for (const auto& r : ranks) {
        stats.per_rank.push_back(r->cost());
        stats.critical_time = std::max(stats.critical_time, r->vtime());
        for (const auto& [name, cost] : r->phase_costs()) {
          Cost& agg = stats.phase_max[name];
          agg.msgs = std::max(agg.msgs, cost.msgs);
          agg.words = std::max(agg.words, cost.words);
          agg.flops = std::max(agg.flops, cost.flops);
        }
      }
      if (tracer != nullptr) {
        std::vector<double> vtimes;
        vtimes.reserve(static_cast<std::size_t>(p));
        for (const auto& r : ranks) vtimes.push_back(r->vtime());
        tracer->finish_run(stats.per_rank, vtimes, stats.critical_time);
      }
    } catch (...) {
      outcome = std::current_exception();
    }
    if (injector != nullptr) injections_final = injector->injections();
    machine->retire_run(this);
  }
  if (outcome) std::rethrow_exception(outcome);
  return stats;
}

// ---------------------------------------------------------------------------
// RunTicket

bool RunTicket::done() const {
  CATRSM_CHECK(rc_ != nullptr, "RunTicket: empty ticket");
  return RankScheduler::done(rc_->sub);
}

RunStats RunTicket::wait() {
  CATRSM_CHECK(rc_ != nullptr, "RunTicket: empty ticket");
  return rc_->wait_and_assemble();
}

int RunTicket::injections() const {
  CATRSM_CHECK(rc_ != nullptr, "RunTicket: empty ticket");
  std::lock_guard<std::mutex> lock(rc_->assemble_mu);
  return rc_->injections_final;
}

// ---------------------------------------------------------------------------
// Machine

Machine::Machine(int p, MachineParams params) : p_(p), params_(params) {
  CATRSM_CHECK(p >= 1, "machine needs at least one rank");
  // Strict parsing with warn-and-fallback, like every CATRSM_* knob: a
  // garbage stream cap runs with the default instead of silently
  // serializing (or unboundedly admitting) streams.
  max_streams_ = env::int_or("CATRSM_SIM_STREAMS", 4, 1,
                             std::numeric_limits<int>::max());
  if (env::flag_or("CATRSM_SIM_CHECK", false)) set_collective_checking(true);
  if (const std::optional<FaultPlan> plan = FaultPlan::from_env())
    arm_fault(*plan);
}

Machine::~Machine() {
  std::vector<std::shared_ptr<RunContext>> pending;
  {
    std::lock_guard<std::mutex> lock(runs_mu_);
    pending = inflight_;
  }
  for (const auto& rc : pending)
    if (rc->sub != nullptr && scheduler_ != nullptr) scheduler_->wait(rc->sub);
}

void Machine::set_collective_checking(bool on) { checking_on_ = on; }

void Machine::set_tracing(bool on, bool capture_payloads) {
  tracing_on_ = on;
  trace_payloads_ = capture_payloads;
  if (on)
    // The observation slot starts with a pristine recorder so pre-run
    // take_trace() fails with the same diagnostic it always did; each
    // waited run replaces it with that run's recorder.
    tracer_ = std::make_unique<check::TraceRecorder>(p_, capture_payloads);
  else
    tracer_.reset();
}

check::Trace Machine::take_trace() {
  CATRSM_CHECK(tracer_ != nullptr, "take_trace: tracing is not enabled");
  CATRSM_CHECK(tracer_->run_complete(),
               "take_trace: the last traced run faulted before completing "
               "(a torso trace is not replayable); run again first");
  return tracer_->take();
}

void Machine::arm_fault(const FaultPlan& plan) {
  armed_plan_ = std::make_unique<FaultPlan>(plan);
  // Pristine prototype so plan() is readable before any run; each waited
  // armed run replaces it with that run's injector and injection record.
  injector_ = std::make_unique<FaultInjector>(plan, p_);
}

void Machine::disarm_fault() {
  armed_plan_.reset();
  injector_.reset();
}

RankScheduler& Machine::scheduler() {
  if (!scheduler_) scheduler_ = std::make_unique<RankScheduler>(p_);
  return *scheduler_;
}

HandleStore& Machine::handle_store() {
  if (!handles_) handles_ = std::make_unique<HandleStore>(p_);
  return *handles_;
}

std::unique_ptr<MailboxSet> Machine::acquire_mailboxes_locked() {
  std::unique_ptr<MailboxSet> set;
  if (!mailbox_pool_.empty()) {
    set = std::move(mailbox_pool_.back());
    mailbox_pool_.pop_back();
  } else {
    set = std::make_unique<MailboxSet>(p_);
  }
  // Fresh mailboxes for the new run: a message a previous run left
  // unconsumed (a failed run's leftovers) must never FIFO-match into this
  // one. Empty per-tag entries are kept for block reuse unless they have
  // accumulated — a long-lived machine sees fresh tags per communicator
  // epoch, so unbounded entry growth would make every send's tag scan
  // linear in dead tags.
  constexpr std::size_t kMaxIdleTagEntries = 8;
  for (auto& box : set->boxes) {
    if (box->queues.size() > kMaxIdleTagEntries) {
      box->queues.clear();
    } else {
      for (auto& [tag, queue] : box->queues) queue.clear();
    }
    box->delayed.clear();
    box->waiter = nullptr;
  }
  return set;
}

void Machine::prune_finished_locked() {
  inflight_.erase(
      std::remove_if(inflight_.begin(), inflight_.end(),
                     [](const std::shared_ptr<RunContext>& rc) {
                       return RankScheduler::done(rc->sub);
                     }),
      inflight_.end());
}

void Machine::retire_run(RunContext* rc) {
  {
    std::lock_guard<std::mutex> lock(runs_mu_);
    if (rc->mail != nullptr) mailbox_pool_.push_back(std::move(rc->mail));
    inflight_.erase(
        std::remove_if(inflight_.begin(), inflight_.end(),
                       [rc](const std::shared_ptr<RunContext>& e) {
                         return e.get() == rc;
                       }),
        inflight_.end());
  }
  if (rc->tracer != nullptr) tracer_ = std::move(rc->tracer);
  if (rc->injector != nullptr) injector_ = std::move(rc->injector);
}

RunTicket Machine::run_async(const std::function<void(Rank&)>& fn,
                             std::function<void()> on_complete) {
  auto rc = std::make_shared<RunContext>(this, fn);
  if (checking_on_)
    rc->matcher = std::make_unique<check::CollectiveMatcher>(p_);
  if (tracing_on_) {
    rc->tracer = std::make_unique<check::TraceRecorder>(p_, trace_payloads_);
    rc->tracer->begin_run(params_);
  }
  if (armed_plan_ != nullptr) {
    rc->injector = std::make_unique<FaultInjector>(*armed_plan_, p_);
    rc->injector->begin_run();
  }
  RankScheduler& sched = scheduler();
  {
    std::unique_lock<std::mutex> lock(runs_mu_);
    prune_finished_locked();
    while (static_cast<int>(inflight_.size()) >= max_streams_) {
      // Stream cap reached: drain the oldest in-flight run. Its ranks
      // progress on the workers regardless of anyone waiting, so this
      // cannot deadlock the admitting thread.
      std::shared_ptr<RunContext> oldest = inflight_.front();
      lock.unlock();
      sched.wait(oldest->sub);
      lock.lock();
      prune_finished_locked();
    }
    rc->mail = acquire_mailboxes_locked();
    // The submission's job handle is dropped by the scheduler when the
    // last rank finishes, so this shared_ptr cycle (rc -> sub -> job ->
    // rc) is broken at run completion.
    std::shared_ptr<RunContext> body_rc = rc;
    rc->sub = sched.submit([body_rc](int i) { body_rc->rank_main(i); },
                           std::move(on_complete));
    inflight_.push_back(rc);
  }
  return RunTicket(std::move(rc));
}

RunStats Machine::run(const std::function<void(Rank&)>& fn) {
  return run_async(fn).wait();
}

}  // namespace catrsm::sim
