#pragma once
// A distributed matrix as seen by ONE simulated rank: a shared ownership
// descriptor (the Distribution) plus this rank's local block, stored
// row-major over the sorted global indices the rank owns. Ranks outside the
// distribution's face hold an empty 0 x 0 local block and report
// participates() == false — they can still describe, redistribute, and
// collect the matrix.

#include <functional>
#include <memory>
#include <vector>

#include "dist/layout.hpp"
#include "la/matrix.hpp"

namespace catrsm::dist {

class DistMatrix {
 public:
  DistMatrix() = default;

  /// My view of a matrix distributed by `d`; `me` is my world rank. The
  /// local block is allocated (zero-filled) immediately.
  DistMatrix(std::shared_ptr<const Distribution> d, int me);

  const Distribution& dist() const { return *dist_; }
  std::shared_ptr<const Distribution> dist_ptr() const { return dist_; }
  int me() const { return me_; }
  bool participates() const { return participates_; }

  la::Matrix& local() { return local_; }
  const la::Matrix& local() const { return local_; }

  /// Sorted global row (resp. column) indices of my local block.
  const std::vector<index_t>& my_rows() const { return my_rows_; }
  const std::vector<index_t>& my_cols() const { return my_cols_; }

  /// Set every local element from a generator over GLOBAL indices.
  /// No-op for non-participants.
  void fill(const std::function<double(index_t, index_t)>& f);

  /// Set every local element from a full global matrix (shape-checked).
  void fill_from_global(const la::Matrix& global);

 private:
  std::shared_ptr<const Distribution> dist_;
  int me_ = -1;
  bool participates_ = false;
  std::vector<index_t> my_rows_;
  std::vector<index_t> my_cols_;
  la::Matrix local_;
};

}  // namespace catrsm::dist
