#pragma once
// Processor grids over simulated communicators.
//
// A Face2D is a pr x pc arrangement of the members of a communicator in
// column-major order: the member with communicator index t sits at grid
// position (gi = t % pr, gj = t / pr). A ProcGrid3D is the paper's
// p1 x p1 x p2 grid with index t -> (x = t % p1, y = (t / p1) % p1,
// z = t / p1^2). Both are pure arithmetic views — constructing one performs
// no communication, and fibers (rows, columns, x/y/z lines) are ordinary
// communicators built from the known membership.
//
// A rank may hold a grid it is not a member of (to *describe* a layout that
// lives on other ranks); only position queries (my_gi etc.) and fiber
// construction require membership.

#include <utility>

#include "la/matrix.hpp"
#include "sim/comm.hpp"

namespace catrsm::dist {

using la::index_t;

/// Factor p = pr * pc with pr <= pc and pr as large as possible (the most
/// square grid): balanced_factors(12) == {3, 4}, balanced_factors(7) ==
/// {1, 7}.
std::pair<int, int> balanced_factors(int p);

class Face2D {
 public:
  /// `comm` must hold exactly pr * pc members.
  Face2D(sim::Comm comm, int pr, int pc);

  int pr() const { return pr_; }
  int pc() const { return pc_; }
  const sim::Comm& comm() const { return comm_; }

  /// Communicator-relative index of the member at grid position (gi, gj)
  /// — suitable for comm().subset() and comm()-level point-to-point.
  int at(int gi, int gj) const;

  bool is_member() const { return comm_.is_member(); }
  /// My grid position (requires membership).
  int my_gi() const;
  int my_gj() const;

  /// My grid row (gi fixed, all gj), ordered by gj — rank() == my_gj().
  sim::Comm row_comm() const;
  /// My grid column (gj fixed, all gi), ordered by gi — rank() == my_gi().
  sim::Comm col_comm() const;

 private:
  sim::Comm comm_;
  int pr_;
  int pc_;
};

class ProcGrid3D {
 public:
  /// `comm` must hold exactly p1 * p1 * p2 members.
  ProcGrid3D(sim::Comm comm, int p1, int p2);

  int p1() const { return p1_; }
  int p2() const { return p2_; }
  int size() const { return p1_ * p1_ * p2_; }
  const sim::Comm& comm() const { return comm_; }

  /// Communicator-relative index of the member at grid position (x, y, z)
  /// — suitable for comm().subset() and comm()-level point-to-point.
  int at(int x, int y, int z) const;

  bool is_member() const { return comm_.is_member(); }
  int my_x() const;
  int my_y() const;
  int my_z() const;

  /// The p1 members sharing my (y, z), ordered by x — rank() == my_x().
  sim::Comm x_fiber() const;
  /// The p1 members sharing my (x, z), ordered by y — rank() == my_y().
  sim::Comm y_fiber() const;
  /// The p2 members sharing my (x, y), ordered by z — rank() == my_z().
  sim::Comm z_fiber() const;

 private:
  sim::Comm comm_;
  int p1_;
  int p2_;
};

}  // namespace catrsm::dist
