#include "dist/grid.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace catrsm::dist {

std::pair<int, int> balanced_factors(int p) {
  CATRSM_CHECK(p >= 1, "balanced_factors: p must be positive");
  for (int pr = static_cast<int>(std::sqrt(static_cast<double>(p))) + 1;
       pr >= 1; --pr) {
    if (pr * pr <= p && p % pr == 0) return {pr, p / pr};
  }
  return {1, p};
}

Face2D::Face2D(sim::Comm comm, int pr, int pc)
    : comm_(std::move(comm)), pr_(pr), pc_(pc) {
  CATRSM_CHECK(pr >= 1 && pc >= 1, "Face2D: grid dims must be positive");
  CATRSM_CHECK(comm_.size() == pr * pc,
               "Face2D: communicator size must equal pr * pc");
}

int Face2D::at(int gi, int gj) const {
  CATRSM_CHECK(gi >= 0 && gi < pr_ && gj >= 0 && gj < pc_,
               "Face2D: grid position out of range");
  return gi + pr_ * gj;
}

int Face2D::my_gi() const { return comm_.rank() % pr_; }
int Face2D::my_gj() const { return comm_.rank() / pr_; }

sim::Comm Face2D::row_comm() const {
  const int gi = my_gi();
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(pc_));
  for (int gj = 0; gj < pc_; ++gj) idx.push_back(gi + pr_ * gj);
  return comm_.subset(idx);
}

sim::Comm Face2D::col_comm() const {
  const int gj = my_gj();
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(pr_));
  for (int gi = 0; gi < pr_; ++gi) idx.push_back(gi + pr_ * gj);
  return comm_.subset(idx);
}

ProcGrid3D::ProcGrid3D(sim::Comm comm, int p1, int p2)
    : comm_(std::move(comm)), p1_(p1), p2_(p2) {
  CATRSM_CHECK(p1 >= 1 && p2 >= 1, "ProcGrid3D: grid dims must be positive");
  CATRSM_CHECK(comm_.size() == p1 * p1 * p2,
               "ProcGrid3D: communicator size must equal p1^2 * p2");
}

int ProcGrid3D::at(int x, int y, int z) const {
  CATRSM_CHECK(x >= 0 && x < p1_ && y >= 0 && y < p1_ && z >= 0 && z < p2_,
               "ProcGrid3D: grid position out of range");
  return x + p1_ * y + p1_ * p1_ * z;
}

int ProcGrid3D::my_x() const { return comm_.rank() % p1_; }
int ProcGrid3D::my_y() const { return (comm_.rank() / p1_) % p1_; }
int ProcGrid3D::my_z() const { return comm_.rank() / (p1_ * p1_); }

sim::Comm ProcGrid3D::x_fiber() const {
  const int y = my_y();
  const int z = my_z();
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(p1_));
  for (int x = 0; x < p1_; ++x) idx.push_back(x + p1_ * y + p1_ * p1_ * z);
  return comm_.subset(idx);
}

sim::Comm ProcGrid3D::y_fiber() const {
  const int x = my_x();
  const int z = my_z();
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(p1_));
  for (int y = 0; y < p1_; ++y) idx.push_back(x + p1_ * y + p1_ * p1_ * z);
  return comm_.subset(idx);
}

sim::Comm ProcGrid3D::z_fiber() const {
  const int x = my_x();
  const int y = my_y();
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(p2_));
  for (int z = 0; z < p2_; ++z) idx.push_back(x + p1_ * y + p1_ * p1_ * z);
  return comm_.subset(idx);
}

}  // namespace catrsm::dist
