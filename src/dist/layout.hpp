#pragma once
// Data distributions: which rank owns which matrix element.
//
// A Distribution partitions the rows of a matrix into `row_parts` groups
// and the columns into `col_parts` groups; the (rpart, cpart) intersection
// lives on one world rank. Everything a redistribution or collective needs
// — ownership of any element, the local shape of any rank, the sorted
// global indices a rank holds — is derivable arithmetically on every rank
// without communication, which is what keeps layout transitions at the
// paper's advertised all-to-all cost (no size-exchange round).
//
// Concrete layouts:
//  - BlockCyclicDist: ScaLAPACK-style br x bc block-cyclic over a Face2D,
//    with optional part shifts (rsrc, csrc) so sub-blocks of a cyclic
//    matrix are again block-cyclic. br = 1, bc = 1 is the elementwise
//    cyclic layout every solver in this library consumes.
//  - Cyclic3DDist: the mm3d staging layout on a p1 x p1 x p2 grid — rank
//    (x, y, z) owns rows i with i ≡ x (mod p1) and (i / p1) ≡ z (mod p2),
//    columns j ≡ y (mod p1).

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "dist/grid.hpp"

namespace catrsm::dist {

class Distribution {
 public:
  virtual ~Distribution() = default;

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }

  virtual int row_parts() const = 0;
  virtual int col_parts() const = 0;
  virtual int part_of_row(index_t i) const = 0;
  virtual int part_of_col(index_t j) const = 0;
  /// World rank owning the (rpart, cpart) intersection.
  virtual int world_rank_of(int rpart, int cpart) const = 0;
  /// Inverse of world_rank_of; nullopt when `w` holds no part.
  virtual std::optional<std::pair<int, int>> parts_of_world(int w) const = 0;

  /// Sorted global row indices of a row part (resp. column part).
  std::vector<index_t> rows_of_part(int rpart) const;
  std::vector<index_t> cols_of_part(int cpart) const;

  /// (local rows, local cols) held by world rank `w`; {0, 0} when `w`
  /// holds no part.
  std::pair<index_t, index_t> local_shape(int w) const;

 protected:
  Distribution(index_t rows, index_t cols);

 private:
  index_t rows_;
  index_t cols_;
};

class BlockCyclicDist : public Distribution {
 public:
  /// br x bc block-cyclic over `face`, with the block holding row 0 (resp.
  /// column 0) assigned to row part `rsrc` (column part `csrc`).
  BlockCyclicDist(Face2D face, index_t rows, index_t cols, index_t br,
                  index_t bc, int rsrc = 0, int csrc = 0);

  const Face2D& face() const { return face_; }
  index_t br() const { return br_; }
  index_t bc() const { return bc_; }
  int rsrc() const { return rsrc_; }
  int csrc() const { return csrc_; }

  int row_parts() const override { return face_.pr(); }
  int col_parts() const override { return face_.pc(); }
  int part_of_row(index_t i) const override;
  int part_of_col(index_t j) const override;
  int world_rank_of(int rpart, int cpart) const override;
  std::optional<std::pair<int, int>> parts_of_world(int w) const override;

 private:
  Face2D face_;
  index_t br_;
  index_t bc_;
  int rsrc_;
  int csrc_;
};

class Cyclic3DDist : public Distribution {
 public:
  Cyclic3DDist(ProcGrid3D grid, index_t rows, index_t cols);

  const ProcGrid3D& grid() const { return grid_; }

  /// Row parts are indexed rpart = x + p1 * z; column parts by y.
  int row_parts() const override { return grid_.p1() * grid_.p2(); }
  int col_parts() const override { return grid_.p1(); }
  int part_of_row(index_t i) const override;
  int part_of_col(index_t j) const override;
  int world_rank_of(int rpart, int cpart) const override;
  std::optional<std::pair<int, int>> parts_of_world(int w) const override;

 private:
  ProcGrid3D grid_;
};

/// Elementwise cyclic layout (unit blocks) on a face.
std::shared_ptr<BlockCyclicDist> cyclic_on(const Face2D& face, index_t rows,
                                           index_t cols);

/// Rows cyclic over the face's pr, columns in pc contiguous slabs of
/// ceil(cols / pc) — the canonical B layout of the iterative TRSM.
std::shared_ptr<BlockCyclicDist> row_cyclic_col_blocked(const Face2D& face,
                                                        index_t rows,
                                                        index_t cols);

}  // namespace catrsm::dist
