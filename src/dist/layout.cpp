#include "dist/layout.hpp"

#include "support/check.hpp"

namespace catrsm::dist {

Distribution::Distribution(index_t rows, index_t cols)
    : rows_(rows), cols_(cols) {
  CATRSM_CHECK(rows >= 0 && cols >= 0,
               "Distribution: negative matrix shape");
}

std::vector<index_t> Distribution::rows_of_part(int rpart) const {
  std::vector<index_t> out;
  for (index_t i = 0; i < rows(); ++i)
    if (part_of_row(i) == rpart) out.push_back(i);
  return out;
}

std::vector<index_t> Distribution::cols_of_part(int cpart) const {
  std::vector<index_t> out;
  for (index_t j = 0; j < cols(); ++j)
    if (part_of_col(j) == cpart) out.push_back(j);
  return out;
}

std::pair<index_t, index_t> Distribution::local_shape(int w) const {
  const auto parts = parts_of_world(w);
  if (!parts.has_value()) return {0, 0};
  index_t r = 0, c = 0;
  for (index_t i = 0; i < rows(); ++i)
    if (part_of_row(i) == parts->first) ++r;
  for (index_t j = 0; j < cols(); ++j)
    if (part_of_col(j) == parts->second) ++c;
  return {r, c};
}

BlockCyclicDist::BlockCyclicDist(Face2D face, index_t rows, index_t cols,
                                 index_t br, index_t bc, int rsrc, int csrc)
    : Distribution(rows, cols),
      face_(std::move(face)),
      br_(br),
      bc_(bc),
      rsrc_(rsrc),
      csrc_(csrc) {
  CATRSM_CHECK(br >= 1 && bc >= 1,
               "BlockCyclicDist: block sizes must be positive");
  CATRSM_CHECK(rsrc >= 0 && rsrc < face_.pr() && csrc >= 0 &&
                   csrc < face_.pc(),
               "BlockCyclicDist: source part out of range");
}

int BlockCyclicDist::part_of_row(index_t i) const {
  CATRSM_ASSERT(i >= 0 && i < rows(), "part_of_row: index out of range");
  return static_cast<int>((i / br_ + rsrc_) % face_.pr());
}

int BlockCyclicDist::part_of_col(index_t j) const {
  CATRSM_ASSERT(j >= 0 && j < cols(), "part_of_col: index out of range");
  return static_cast<int>((j / bc_ + csrc_) % face_.pc());
}

int BlockCyclicDist::world_rank_of(int rpart, int cpart) const {
  return face_.comm().world_rank(face_.at(rpart, cpart));
}

std::optional<std::pair<int, int>> BlockCyclicDist::parts_of_world(
    int w) const {
  const int t = face_.comm().index_of_world(w);
  if (t < 0) return std::nullopt;
  return std::pair<int, int>{t % face_.pr(), t / face_.pr()};
}

Cyclic3DDist::Cyclic3DDist(ProcGrid3D grid, index_t rows, index_t cols)
    : Distribution(rows, cols), grid_(std::move(grid)) {}

int Cyclic3DDist::part_of_row(index_t i) const {
  CATRSM_ASSERT(i >= 0 && i < rows(), "part_of_row: index out of range");
  const int p1 = grid_.p1();
  const int x = static_cast<int>(i % p1);
  const int z = static_cast<int>((i / p1) % grid_.p2());
  return x + p1 * z;
}

int Cyclic3DDist::part_of_col(index_t j) const {
  CATRSM_ASSERT(j >= 0 && j < cols(), "part_of_col: index out of range");
  return static_cast<int>(j % grid_.p1());
}

int Cyclic3DDist::world_rank_of(int rpart, int cpart) const {
  const int p1 = grid_.p1();
  return grid_.comm().world_rank(grid_.at(rpart % p1, cpart, rpart / p1));
}

std::optional<std::pair<int, int>> Cyclic3DDist::parts_of_world(int w) const {
  const int t = grid_.comm().index_of_world(w);
  if (t < 0) return std::nullopt;
  const int p1 = grid_.p1();
  const int x = t % p1;
  const int y = (t / p1) % p1;
  const int z = t / (p1 * p1);
  return std::pair<int, int>{x + p1 * z, y};
}

std::shared_ptr<BlockCyclicDist> cyclic_on(const Face2D& face, index_t rows,
                                           index_t cols) {
  return std::make_shared<BlockCyclicDist>(face, rows, cols, 1, 1);
}

std::shared_ptr<BlockCyclicDist> row_cyclic_col_blocked(const Face2D& face,
                                                        index_t rows,
                                                        index_t cols) {
  const index_t bc = std::max<index_t>(ceil_div(cols, face.pc()), 1);
  return std::make_shared<BlockCyclicDist>(face, rows, cols, 1, bc);
}

}  // namespace catrsm::dist
