#pragma once
// Generic layout transitions between arbitrary distributions, built on the
// personalized all-to-all (so every transition costs the paper's
// O(alpha log p + beta (words/2) log p) under the Bruck schedule).
//
// All routing is derived arithmetically from the two Distribution
// descriptors: the sender emits its elements in ascending global order per
// destination, the receiver consumes each source stream in the same order,
// and no size or index metadata beyond the all-to-all's own headers ever
// travels. Ranks outside either distribution's face still participate in
// the exchange (with empty payloads), so a matrix can move between
// disjoint rank subsets of a larger communicator.

#include <memory>

#include "coll/alltoall.hpp"
#include "dist/dist_matrix.hpp"
#include "sim/cost.hpp"

namespace catrsm::dist {

/// Move `src` into layout `dst` (same global shape). Collective over
/// `comm`, which must contain every rank of both faces.
DistMatrix redistribute(const DistMatrix& src,
                        std::shared_ptr<const Distribution> dst,
                        const sim::Comm& comm,
                        coll::AlltoallAlgo algo = coll::AlltoallAlgo::kBruck);

/// The transpose of `src` under `dst` (dst must be cols x rows of src).
DistMatrix transpose(const DistMatrix& src,
                     std::shared_ptr<const Distribution> dst,
                     const sim::Comm& comm,
                     coll::AlltoallAlgo algo = coll::AlltoallAlgo::kBruck);

/// Row-reversed copy J * src under `dst` (same shape): element (i, j)
/// moves to (rows - 1 - i, j).
DistMatrix reverse_rows(const DistMatrix& src,
                        std::shared_ptr<const Distribution> dst,
                        const sim::Comm& comm,
                        coll::AlltoallAlgo algo = coll::AlltoallAlgo::kBruck);

/// Fully reversed copy J * src * J under `dst` (same shape).
DistMatrix reverse_both(const DistMatrix& src,
                        std::shared_ptr<const Distribution> dst,
                        const sim::Comm& comm,
                        coll::AlltoallAlgo algo = coll::AlltoallAlgo::kBruck);

/// Estimated number of elements that change owner in a src -> dst
/// transition (same global shape). Sampled on a deterministic <= 64 x 64
/// index grid and scaled — exact for shapes up to 64 per dimension, and
/// for the cyclic/blocked layouts here the sampled fraction is
/// representative at any size. Host-side; used by the Program optimizer's
/// placement pass, never by execution.
double moved_words(const Distribution& src, const Distribution& dst);

/// Modeled cost of redistribute() between the two layouts on a p-rank
/// communicator under the Bruck schedule: S = ceil(log2 p) rounds, W =
/// (moved / 2) * ceil(log2 p) — the same O(alpha log p + beta (w/2) log p)
/// the executed transition charges.
sim::Cost redistribute_model_cost(const Distribution& src,
                                  const Distribution& dst, int p);

/// Materialize the full global matrix on EVERY rank of `comm` (allgather).
la::Matrix collect(const DistMatrix& m, const sim::Comm& comm);

/// Assemble the sub-block [rlo, rhi) x [clo, chi) on every rank of `comm`
/// from the members' pieces, reading element values from `local` (a
/// working copy that may have evolved past the DistMatrix that defined the
/// layout). Elements owned by no member of `comm` are left zero.
la::Matrix gather_region(const Distribution& d, const la::Matrix& local,
                         int me, const sim::Comm& comm, index_t rlo,
                         index_t rhi, index_t clo, index_t chi);

/// Purely local re-indexing of the sub-block [i0, i0+rows) x [j0, j0+cols)
/// of a unit-block cyclic matrix: the result is cyclic on the same face
/// with shifted source parts, and every rank keeps exactly its own
/// elements (no communication).
DistMatrix cyclic_subblock(const DistMatrix& m, index_t i0, index_t j0,
                           index_t rows, index_t cols);

/// Inverse of cyclic_subblock: write `sub`'s elements back into `m` at
/// offset (i0, j0). Purely local.
void set_cyclic_subblock(DistMatrix& m, index_t i0, index_t j0,
                         const DistMatrix& sub);

}  // namespace catrsm::dist
