#include "dist/dist_matrix.hpp"

#include "support/check.hpp"

namespace catrsm::dist {

DistMatrix::DistMatrix(std::shared_ptr<const Distribution> d, int me)
    : dist_(std::move(d)), me_(me) {
  CATRSM_CHECK(dist_ != nullptr, "DistMatrix: null distribution");
  const auto parts = dist_->parts_of_world(me_);
  participates_ = parts.has_value();
  if (participates_) {
    my_rows_ = dist_->rows_of_part(parts->first);
    my_cols_ = dist_->cols_of_part(parts->second);
  }
  local_ = la::Matrix(static_cast<index_t>(my_rows_.size()),
                      static_cast<index_t>(my_cols_.size()));
}

void DistMatrix::fill(const std::function<double(index_t, index_t)>& f) {
  for (std::size_t r = 0; r < my_rows_.size(); ++r)
    for (std::size_t c = 0; c < my_cols_.size(); ++c)
      local_(static_cast<index_t>(r), static_cast<index_t>(c)) =
          f(my_rows_[r], my_cols_[c]);
}

void DistMatrix::fill_from_global(const la::Matrix& global) {
  CATRSM_CHECK(global.rows() == dist_->rows() &&
                   global.cols() == dist_->cols(),
               "fill_from_global: shape mismatch with distribution");
  fill([&](index_t i, index_t j) { return global(i, j); });
}

}  // namespace catrsm::dist
