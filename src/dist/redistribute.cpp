#include "dist/redistribute.hpp"

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <utility>

#include "coll/collectives.hpp"
#include "support/check.hpp"

namespace catrsm::dist {

namespace {

/// Index of `g` within the sorted vector `v` (must be present).
index_t position_of(const std::vector<index_t>& v, index_t g) {
  const auto it = std::lower_bound(v.begin(), v.end(), g);
  CATRSM_ASSERT(it != v.end() && *it == g,
                "dist: global index not owned by this rank");
  return static_cast<index_t>(it - v.begin());
}

/// Every owner of `d` must sit inside `comm` for a collective transition.
void check_owners_inside(const Distribution& d, const sim::Comm& comm,
                         const char* who) {
  for (int rp = 0; rp < d.row_parts(); ++rp)
    for (int cp = 0; cp < d.col_parts(); ++cp)
      CATRSM_CHECK(comm.index_of_world(d.world_rank_of(rp, cp)) >= 0,
                   std::string(who) +
                       ": an owning rank lies outside the communicator");
}

/// Generic element remapping: source element at global (i, j) lands at
/// dst global map(i, j); `inv` is the inverse mapping. The sender emits
/// ascending-(i, j) streams per destination; the receiver consumes each
/// source stream in the same ascending source order, reconstructed from
/// `inv` — so no indices travel with the data. All outgoing streams pack
/// into one slab and ship as per-destination views of it (no per-element
/// push_back growth, no per-destination copies).
DistMatrix remap(const DistMatrix& src,
                 std::shared_ptr<const Distribution> dst,
                 const sim::Comm& comm,
                 const std::function<std::pair<index_t, index_t>(
                     index_t, index_t)>& map,
                 const std::function<std::pair<index_t, index_t>(
                     index_t, index_t)>& inv,
                 coll::AlltoallAlgo algo, const char* who) {
  check_owners_inside(src.dist(), comm, who);
  check_owners_inside(*dst, comm, who);
  const int g = comm.size();
  const int me = comm.ctx().id();

  std::vector<coll::Buffer> outgoing(static_cast<std::size_t>(g));
  if (src.participates()) {
    const auto& rows = src.my_rows();
    const auto& cols = src.my_cols();
    // Pass 1: destination comm rank of every local element, and the
    // per-destination stream lengths.
    std::vector<int> dest(rows.size() * cols.size());
    std::vector<std::size_t> counts(static_cast<std::size_t>(g), 0);
    std::size_t e = 0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t c = 0; c < cols.size(); ++c) {
        const auto [ti, tj] = map(rows[r], cols[c]);
        const int w = dst->world_rank_of(dst->part_of_row(ti),
                                         dst->part_of_col(tj));
        const int t = comm.index_of_world(w);
        dest[e++] = t;
        ++counts[static_cast<std::size_t>(t)];
      }
    }
    // Pass 2: pack every stream into one slab, ascending (i, j) within
    // each destination exactly as before.
    std::vector<std::size_t> cursor(static_cast<std::size_t>(g) + 1, 0);
    for (int t = 0; t < g; ++t)
      cursor[static_cast<std::size_t>(t) + 1] =
          cursor[static_cast<std::size_t>(t)] +
          counts[static_cast<std::size_t>(t)];
    const std::vector<std::size_t> offsets(cursor.begin(), cursor.end() - 1);
    // Pooled uninitialized slab: the scatter loop below writes every
    // element exactly once, so the old vector's value-init was a pure
    // memset of bytes about to be overwritten.
    coll::Buffer packed = coll::Buffer::uninit(dest.size());
    double* slab = packed.mutable_data();
    e = 0;
    for (std::size_t r = 0; r < rows.size(); ++r)
      for (std::size_t c = 0; c < cols.size(); ++c)
        slab[cursor[static_cast<std::size_t>(dest[e++])]++] =
            src.local()(static_cast<index_t>(r), static_cast<index_t>(c));
    for (int t = 0; t < g; ++t)
      outgoing[static_cast<std::size_t>(t)] =
          packed.slice(offsets[static_cast<std::size_t>(t)],
                       counts[static_cast<std::size_t>(t)]);
  }

  std::vector<coll::Buffer> incoming =
      coll::alltoallv(comm, std::move(outgoing), algo);

  DistMatrix out(std::move(dst), me);
  if (out.participates()) {
    // (source comm rank, source i, source j, my local r, my local c)
    std::vector<std::tuple<int, index_t, index_t, index_t, index_t>> entries;
    entries.reserve(out.my_rows().size() * out.my_cols().size());
    const auto& orows = out.my_rows();
    const auto& ocols = out.my_cols();
    for (std::size_t r = 0; r < orows.size(); ++r) {
      for (std::size_t c = 0; c < ocols.size(); ++c) {
        const auto [si, sj] = inv(orows[r], ocols[c]);
        const int w = src.dist().world_rank_of(src.dist().part_of_row(si),
                                               src.dist().part_of_col(sj));
        entries.emplace_back(comm.index_of_world(w), si, sj,
                             static_cast<index_t>(r),
                             static_cast<index_t>(c));
      }
    }
    std::sort(entries.begin(), entries.end());
    std::vector<std::size_t> cursor(static_cast<std::size_t>(g), 0);
    for (const auto& [s, si, sj, r, c] : entries) {
      auto& cur = cursor[static_cast<std::size_t>(s)];
      CATRSM_ASSERT(cur < incoming[static_cast<std::size_t>(s)].size(),
                    std::string(who) + ": short stream from a source rank");
      out.local()(r, c) = incoming[static_cast<std::size_t>(s)][cur++];
    }
  }
  return out;
}

const BlockCyclicDist& as_unit_cyclic(const Distribution& d,
                                      const char* who) {
  const auto* bc = dynamic_cast<const BlockCyclicDist*>(&d);
  CATRSM_CHECK(bc != nullptr && bc->br() == 1 && bc->bc() == 1,
               std::string(who) + ": requires a unit-block cyclic layout");
  return *bc;
}

}  // namespace

double moved_words(const Distribution& src, const Distribution& dst) {
  CATRSM_CHECK(src.rows() == dst.rows() && src.cols() == dst.cols(),
               "moved_words: global shape mismatch");
  const index_t rows = src.rows();
  const index_t cols = src.cols();
  const index_t rstep = std::max<index_t>(1, rows / 64);
  const index_t cstep = std::max<index_t>(1, cols / 64);
  std::uint64_t sampled = 0;
  std::uint64_t moved = 0;
  for (index_t i = 0; i < rows; i += rstep) {
    const int from_r = src.part_of_row(i);
    const int to_r = dst.part_of_row(i);
    for (index_t j = 0; j < cols; j += cstep) {
      ++sampled;
      if (src.world_rank_of(from_r, src.part_of_col(j)) !=
          dst.world_rank_of(to_r, dst.part_of_col(j)))
        ++moved;
    }
  }
  return static_cast<double>(rows) * static_cast<double>(cols) *
         static_cast<double>(moved) / static_cast<double>(sampled);
}

sim::Cost redistribute_model_cost(const Distribution& src,
                                  const Distribution& dst, int p) {
  CATRSM_CHECK(p >= 1, "redistribute_model_cost: need p >= 1");
  double rounds = 0.0;
  for (int span = 1; span < p; span *= 2) rounds += 1.0;
  sim::Cost c;
  c.msgs = rounds;
  c.words = moved_words(src, dst) / 2.0 * rounds;
  return c;
}

DistMatrix redistribute(const DistMatrix& src,
                        std::shared_ptr<const Distribution> dst,
                        const sim::Comm& comm, coll::AlltoallAlgo algo) {
  CATRSM_CHECK(src.dist().rows() == dst->rows() &&
                   src.dist().cols() == dst->cols(),
               "redistribute: global shape mismatch");
  const auto identity = [](index_t i, index_t j) {
    return std::pair<index_t, index_t>{i, j};
  };
  return remap(src, std::move(dst), comm, identity, identity, algo,
               "redistribute");
}

DistMatrix transpose(const DistMatrix& src,
                     std::shared_ptr<const Distribution> dst,
                     const sim::Comm& comm, coll::AlltoallAlgo algo) {
  CATRSM_CHECK(src.dist().rows() == dst->cols() &&
                   src.dist().cols() == dst->rows(),
               "transpose: destination must be cols x rows of the source");
  const auto flip = [](index_t i, index_t j) {
    return std::pair<index_t, index_t>{j, i};
  };
  return remap(src, std::move(dst), comm, flip, flip, algo, "transpose");
}

DistMatrix reverse_rows(const DistMatrix& src,
                        std::shared_ptr<const Distribution> dst,
                        const sim::Comm& comm, coll::AlltoallAlgo algo) {
  CATRSM_CHECK(src.dist().rows() == dst->rows() &&
                   src.dist().cols() == dst->cols(),
               "reverse_rows: global shape mismatch");
  const index_t n = src.dist().rows();
  const auto rev = [n](index_t i, index_t j) {
    return std::pair<index_t, index_t>{n - 1 - i, j};
  };
  return remap(src, std::move(dst), comm, rev, rev, algo, "reverse_rows");
}

DistMatrix reverse_both(const DistMatrix& src,
                        std::shared_ptr<const Distribution> dst,
                        const sim::Comm& comm, coll::AlltoallAlgo algo) {
  CATRSM_CHECK(src.dist().rows() == dst->rows() &&
                   src.dist().cols() == dst->cols(),
               "reverse_both: global shape mismatch");
  const index_t n = src.dist().rows();
  const index_t k = src.dist().cols();
  const auto rev = [n, k](index_t i, index_t j) {
    return std::pair<index_t, index_t>{n - 1 - i, k - 1 - j};
  };
  return remap(src, std::move(dst), comm, rev, rev, algo, "reverse_both");
}

la::Matrix gather_region(const Distribution& d, const la::Matrix& local,
                         int me, const sim::Comm& comm, index_t rlo,
                         index_t rhi, index_t clo, index_t chi) {
  CATRSM_CHECK(rlo >= 0 && rlo <= rhi && rhi <= d.rows() && clo >= 0 &&
                   clo <= chi && chi <= d.cols(),
               "gather_region: region out of range");
  const int g = comm.size();

  // Per-member in-region index sets, derived identically on every rank.
  std::vector<std::vector<index_t>> rows_in(static_cast<std::size_t>(g));
  std::vector<std::vector<index_t>> cols_in(static_cast<std::size_t>(g));
  coll::Counts counts(static_cast<std::size_t>(g), 0);
  for (int s = 0; s < g; ++s) {
    const auto parts = d.parts_of_world(comm.world_rank(s));
    if (!parts.has_value()) continue;
    for (index_t i = rlo; i < rhi; ++i)
      if (d.part_of_row(i) == parts->first)
        rows_in[static_cast<std::size_t>(s)].push_back(i);
    for (index_t j = clo; j < chi; ++j)
      if (d.part_of_col(j) == parts->second)
        cols_in[static_cast<std::size_t>(s)].push_back(j);
    counts[static_cast<std::size_t>(s)] =
        rows_in[static_cast<std::size_t>(s)].size() *
        cols_in[static_cast<std::size_t>(s)].size();
  }

  // My contribution, read from the (possibly evolved) working copy.
  coll::Buf mine;
  const int self = comm.rank();
  if (counts[static_cast<std::size_t>(self)] > 0) {
    const auto parts = d.parts_of_world(me);
    CATRSM_ASSERT(parts.has_value(), "gather_region: owner mismatch");
    const std::vector<index_t> all_rows = d.rows_of_part(parts->first);
    const std::vector<index_t> all_cols = d.cols_of_part(parts->second);
    mine.reserve(counts[static_cast<std::size_t>(self)]);
    for (const index_t i : rows_in[static_cast<std::size_t>(self)]) {
      const index_t lr = position_of(all_rows, i);
      for (const index_t j : cols_in[static_cast<std::size_t>(self)])
        mine.push_back(local(lr, position_of(all_cols, j)));
    }
  }

  const coll::Buffer all = coll::allgather(comm, std::move(mine), counts);

  la::Matrix out(rhi - rlo, chi - clo);
  std::size_t pos = 0;
  for (int s = 0; s < g; ++s) {
    for (const index_t i : rows_in[static_cast<std::size_t>(s)])
      for (const index_t j : cols_in[static_cast<std::size_t>(s)])
        out(i - rlo, j - clo) = all[pos++];
  }
  CATRSM_ASSERT(pos == all.size(), "gather_region: stream size mismatch");
  return out;
}

la::Matrix collect(const DistMatrix& m, const sim::Comm& comm) {
  return gather_region(m.dist(), m.local(), m.me(), comm, 0, m.dist().rows(),
                       0, m.dist().cols());
}

DistMatrix cyclic_subblock(const DistMatrix& m, index_t i0, index_t j0,
                           index_t rows, index_t cols) {
  const BlockCyclicDist& md = as_unit_cyclic(m.dist(), "cyclic_subblock");
  CATRSM_CHECK(i0 >= 0 && j0 >= 0 && i0 + rows <= md.rows() &&
                   j0 + cols <= md.cols(),
               "cyclic_subblock: block out of range");
  const int pr = md.face().pr();
  const int pc = md.face().pc();
  auto sub_d = std::make_shared<BlockCyclicDist>(
      md.face(), rows, cols, 1, 1,
      static_cast<int>((md.rsrc() + i0) % pr),
      static_cast<int>((md.csrc() + j0) % pc));
  DistMatrix sub(std::move(sub_d), m.me());
  if (sub.participates()) {
    for (std::size_t r = 0; r < sub.my_rows().size(); ++r) {
      const index_t pr_idx = position_of(m.my_rows(), i0 + sub.my_rows()[r]);
      for (std::size_t c = 0; c < sub.my_cols().size(); ++c) {
        const index_t pc_idx =
            position_of(m.my_cols(), j0 + sub.my_cols()[c]);
        sub.local()(static_cast<index_t>(r), static_cast<index_t>(c)) =
            m.local()(pr_idx, pc_idx);
      }
    }
  }
  return sub;
}

void set_cyclic_subblock(DistMatrix& m, index_t i0, index_t j0,
                         const DistMatrix& sub) {
  const BlockCyclicDist& md = as_unit_cyclic(m.dist(), "set_cyclic_subblock");
  (void)md;
  CATRSM_CHECK(i0 >= 0 && j0 >= 0 &&
                   i0 + sub.dist().rows() <= m.dist().rows() &&
                   j0 + sub.dist().cols() <= m.dist().cols(),
               "set_cyclic_subblock: block out of range");
  if (!sub.participates()) return;
  for (std::size_t r = 0; r < sub.my_rows().size(); ++r) {
    const index_t pr_idx = position_of(m.my_rows(), i0 + sub.my_rows()[r]);
    for (std::size_t c = 0; c < sub.my_cols().size(); ++c) {
      const index_t pc_idx = position_of(m.my_cols(), j0 + sub.my_cols()[c]);
      m.local()(pr_idx, pc_idx) =
          sub.local()(static_cast<index_t>(r), static_cast<index_t>(c));
    }
  }
}

}  // namespace catrsm::dist
