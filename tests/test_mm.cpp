// Tests for distributed matrix multiplication: numerical agreement with the
// sequential kernel plus cost-bound checks against the Section III model.

#include <gtest/gtest.h>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "mm/mm3d.hpp"
#include "mm/summa2d.hpp"
#include "sim/machine.hpp"

namespace catrsm::mm {
namespace {

using dist::BlockCyclicDist;
using dist::Face2D;
using la::index_t;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

struct MMCase {
  index_t n, k;
  int p1, p2;
};

class MM3DSweep : public ::testing::TestWithParam<MMCase> {};

TEST_P(MM3DSweep, MatchesSequentialGemm) {
  const MMCase tc = GetParam();
  const int p = tc.p1 * tc.p1 * tc.p2;
  Machine m(p);
  const Matrix a = la::make_lower_triangular(7, tc.n);
  const Matrix x = la::make_rhs(8, tc.n, tc.k);
  const Matrix ref = la::matmul(a, x);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(p);
    Face2D face(world, pr, pc);
    auto ad = dist::cyclic_on(face, tc.n, tc.n);
    auto xd = dist::cyclic_on(face, tc.n, tc.k);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dx(xd, r.id());
    dx.fill_from_global(x);
    DistMatrix db = mm3d(da, dx, xd, world, MMGrid{tc.p1, tc.p2});
    Matrix got = collect(db, world);
    EXPECT_LT(la::max_abs_diff(got, ref), 1e-11)
        << "n=" << tc.n << " k=" << tc.k << " p1=" << tc.p1
        << " p2=" << tc.p2;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MM3DSweep,
    ::testing::Values(MMCase{8, 8, 1, 1},      // trivial
                      MMCase{16, 8, 2, 1},     // 2D square
                      MMCase{16, 8, 2, 2},     // true 3D
                      MMCase{16, 16, 2, 4},    // deep replication
                      MMCase{12, 4, 1, 4},     // 1D (replicated A)
                      MMCase{17, 5, 2, 2},     // ragged dims
                      MMCase{24, 36, 2, 2},    // k > n
                      MMCase{9, 3, 3, 1},      // non-pow2 grid
                      MMCase{32, 8, 2, 8}));   // tall z

struct RectCase {
  index_t m, n, k;
  int p1, p2;
};

class MM3DRectangular : public ::testing::TestWithParam<RectCase> {};

TEST_P(MM3DRectangular, RectangularAMatchesSequential) {
  // A: m x n (the shape of every off-diagonal TRSM update panel).
  const RectCase tc = GetParam();
  const int p = tc.p1 * tc.p1 * tc.p2;
  Machine mach(p);
  const Matrix a = la::make_dense(21, tc.m, tc.n);
  const Matrix x = la::make_dense(22, tc.n, tc.k);
  const Matrix ref = la::matmul(a, x);
  mach.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(p);
    Face2D face(world, pr, pc);
    auto ad = dist::cyclic_on(face, tc.m, tc.n);
    auto xd = dist::cyclic_on(face, tc.n, tc.k);
    auto od = dist::cyclic_on(face, tc.m, tc.k);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dx(xd, r.id());
    dx.fill_from_global(x);
    DistMatrix db = mm3d(da, dx, od, world, MMGrid{tc.p1, tc.p2});
    EXPECT_LT(la::max_abs_diff(collect(db, world), ref), 1e-11)
        << "m=" << tc.m << " n=" << tc.n << " k=" << tc.k;
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, MM3DRectangular,
                         ::testing::Values(RectCase{24, 8, 6, 2, 2},
                                           RectCase{8, 24, 6, 2, 2},
                                           RectCase{5, 17, 9, 2, 1},
                                           RectCase{32, 16, 4, 2, 4},
                                           RectCase{3, 3, 40, 1, 4},
                                           RectCase{13, 1, 1, 2, 2}));

TEST(MM3D, AlphaScalesResult) {
  const index_t n = 8, k = 4;
  Machine m(4);
  const Matrix a = la::make_dense(1, n, n);
  const Matrix x = la::make_dense(2, n, k);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto ad = dist::cyclic_on(face, n, n);
    auto xd = dist::cyclic_on(face, n, k);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dx(xd, r.id());
    dx.fill_from_global(x);
    DistMatrix db = mm3d(da, dx, xd, world, MMGrid{2, 1}, -2.0);
    Matrix ref = la::matmul(a, x);
    ref.scale(-2.0);
    EXPECT_LT(la::max_abs_diff(collect(db, world), ref), 1e-12);
  });
}

TEST(MM3D, OutputDistributionCanDiffer) {
  const index_t n = 12, k = 6;
  Machine m(8);
  const Matrix a = la::make_dense(3, n, n);
  const Matrix x = la::make_dense(4, n, k);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 4);
    auto ad = dist::cyclic_on(face, n, n);
    auto xd = dist::cyclic_on(face, n, k);
    // Output on a different face shape with blocked layout.
    Face2D oface(world, 4, 2);
    auto od = std::make_shared<BlockCyclicDist>(oface, n, k, 3, 3);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dx(xd, r.id());
    dx.fill_from_global(x);
    DistMatrix db = mm3d(da, dx, od, world, MMGrid{2, 2});
    EXPECT_LT(la::max_abs_diff(collect(db, world), la::matmul(a, x)), 1e-12);
  });
}

TEST(MM3D, FlopsBalancedAcrossRanks) {
  const index_t n = 32, k = 16;
  const int p1 = 2, p2 = 2;
  Machine m(p1 * p1 * p2);
  const Matrix a = la::make_dense(5, n, n);
  const Matrix x = la::make_dense(6, n, k);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(world.size());
    Face2D face(world, pr, pc);
    auto ad = dist::cyclic_on(face, n, n);
    auto xd = dist::cyclic_on(face, n, k);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dx(xd, r.id());
    dx.fill_from_global(x);
    (void)mm3d(da, dx, xd, world, MMGrid{p1, p2});
  });
  // gemm flops: 2 n^2 k / p per rank, plus reduce-scatter adds.
  const double gemm_per_rank =
      2.0 * static_cast<double>(n) * n * k / (p1 * p1 * p2);
  EXPECT_GE(stats.max_flops(), gemm_per_rank);
  EXPECT_LE(stats.max_flops(), 1.5 * gemm_per_rank);
}

TEST(MM3D, BandwidthWithinModelBound) {
  // Measured per-rank words should track the Section III model:
  // n^2/p1^2 (A allgather) + 2nk/(p1 p2) (X allgather + B reduce-scatter)
  // + lower-order Bruck transition terms.
  const index_t n = 64, k = 32;
  const int p1 = 2, p2 = 4;
  const int p = p1 * p1 * p2;
  Machine m(p);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(p);
    Face2D face(world, pr, pc);
    auto ad = dist::cyclic_on(face, n, n);
    auto xd = dist::cyclic_on(face, n, k);
    DistMatrix da(ad, r.id());
    da.fill([&](index_t i, index_t j) { return la::tri_entry(1, i, j, n); });
    DistMatrix dx(xd, r.id());
    dx.fill([&](index_t i, index_t j) { return la::rhs_entry(2, i, j); });
    (void)mm3d(da, dx, xd, world, MMGrid{p1, p2});
  });
  const double model = mm3d_model_words(n, n, k, p1, p2);
  const double logp = ilog2_ceil(p);
  const double transitions =
      (static_cast<double>(n) * n + 2.0 * n * k) / p * logp;
  EXPECT_GE(stats.max_words(), 0.5 * model);
  EXPECT_LE(stats.max_words(), 1.5 * (model + 4.0 * transitions));
  // Latency: a handful of log-p collectives, far below any linear-in-p
  // schedule.
  EXPECT_LE(stats.max_msgs(), 12.0 * logp + 16.0);
}

TEST(MMGridChoice, PicksExpectedRegimes) {
  // Two large dimensions (n >> k sqrt(p)): 2D grid, p2 == 1.
  MMGrid g2d = choose_mm_grid(4096, 4096, 4, 64);
  EXPECT_EQ(g2d.p2, 1);
  EXPECT_EQ(g2d.p1, 8);
  // One large dimension (n < k/p): 1D grid, p1 == 1.
  MMGrid g1d = choose_mm_grid(4, 4, 4096, 64);
  EXPECT_EQ(g1d.p1, 1);
  EXPECT_EQ(g1d.p2, 64);
  // Three large dimensions (n ~ k): true 3D grid.
  MMGrid g3d = choose_mm_grid(1024, 1024, 1024, 64);
  EXPECT_GT(g3d.p1, 1);
  EXPECT_GT(g3d.p2, 1);
  EXPECT_EQ(g3d.p1 * g3d.p1 * g3d.p2, 64);
}

TEST(MMGridChoice, AlwaysFactorizesP) {
  for (int p : {1, 2, 3, 4, 6, 8, 12, 16, 27, 36, 64, 100, 128, 256}) {
    for (index_t n : {4, 64, 1024}) {
      for (index_t k : {1, 64, 4096}) {
        MMGrid g = choose_mm_grid(n, n, k, p);
        EXPECT_EQ(g.p1 * g.p1 * g.p2, p);
      }
    }
  }
}

struct SummaCase {
  index_t n, k;
  int pr, pc;
  index_t nb;
};

class SummaSweep : public ::testing::TestWithParam<SummaCase> {};

TEST_P(SummaSweep, MatchesSequentialGemm) {
  const SummaCase tc = GetParam();
  Machine m(tc.pr * tc.pc);
  const Matrix a = la::make_dense(11, tc.n, tc.n);
  const Matrix x = la::make_dense(12, tc.n, tc.k);
  const Matrix ref = la::matmul(a, x);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, tc.pr, tc.pc);
    auto ad = dist::cyclic_on(face, tc.n, tc.n);
    auto xd = dist::cyclic_on(face, tc.n, tc.k);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dx(xd, r.id());
    dx.fill_from_global(x);
    DistMatrix dc = summa2d(da, dx, tc.nb);
    EXPECT_LT(la::max_abs_diff(collect(dc, world), ref), 1e-11);
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, SummaSweep,
                         ::testing::Values(SummaCase{8, 8, 1, 1, 4},
                                           SummaCase{16, 8, 2, 2, 4},
                                           SummaCase{15, 7, 2, 3, 5},
                                           SummaCase{16, 16, 4, 2, 0},
                                           SummaCase{20, 4, 4, 4, 2}));

TEST(Summa2D, CostScalesWithGridShape) {
  const index_t n = 48, k = 48;
  auto run_once = [&](int pr, int pc) {
    Machine m(pr * pc);
    return m.run([&](Rank& r) {
      Comm world = Comm::world(r);
      Face2D face(world, pr, pc);
      auto ad = dist::cyclic_on(face, n, n);
      auto xd = dist::cyclic_on(face, n, k);
      DistMatrix da(ad, r.id());
      da.fill([&](index_t i, index_t j) { return la::element_hash(1, i, j); });
      DistMatrix dx(xd, r.id());
      dx.fill([&](index_t i, index_t j) { return la::element_hash(2, i, j); });
      (void)summa2d(da, dx, 8);
    });
  };
  // W ~ n^2/pr + nk/pc: a 4x1 grid moves fewer A words than 1x4.
  RunStats tall = run_once(4, 1);
  RunStats wide = run_once(1, 4);
  // tall: W ~ n^2/4 + nk; wide: W ~ n^2 + nk/4. With n == k both matrices
  // are the same size, so the two shapes are symmetric; just check both
  // stay below the sequential volume and above the lower bound.
  for (const RunStats* s : {&tall, &wide}) {
    EXPECT_GT(s->max_words(), 0.0);
    EXPECT_LT(s->max_words(), 2.0 * static_cast<double>(n) * (n + k));
  }
}

}  // namespace
}  // namespace catrsm::mm
