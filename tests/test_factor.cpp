// Tests for the distributed index-remap primitives (transpose, reversals)
// and the distributed blocked Cholesky factorization built on them.

#include <gtest/gtest.h>

#include "dist/redistribute.hpp"
#include "factor/cholesky_dist.hpp"
#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "sim/machine.hpp"
#include "trsm/it_inv_trsm.hpp"

namespace catrsm {
namespace {

using dist::BlockCyclicDist;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;

struct RemapCase {
  index_t rows, cols;
  int p;
  index_t src_b, dst_b;
};

class RemapSweep : public ::testing::TestWithParam<RemapCase> {};

TEST_P(RemapSweep, TransposeMatchesSequential) {
  const RemapCase tc = GetParam();
  Machine m(tc.p);
  const Matrix ref = la::make_dense(55, tc.rows, tc.cols);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(tc.p);
    Face2D face(world, pr, pc);
    auto sd = std::make_shared<BlockCyclicDist>(face, tc.rows, tc.cols,
                                                tc.src_b, tc.src_b);
    // Destination on the transposed face shape for extra generality.
    Face2D dface(world, pc, pr);
    auto dd = std::make_shared<BlockCyclicDist>(dface, tc.cols, tc.rows,
                                                tc.dst_b, tc.dst_b);
    DistMatrix src(sd, r.id());
    src.fill_from_global(ref);
    DistMatrix dst = dist::transpose(src, dd, world);
    EXPECT_LT(la::max_abs_diff(collect(dst, world), ref.transposed()),
              1e-15);
  });
}

TEST_P(RemapSweep, ReversalsMatchSequential) {
  const RemapCase tc = GetParam();
  Machine m(tc.p);
  const Matrix ref = la::make_dense(56, tc.rows, tc.cols);
  Matrix rev_both(tc.rows, tc.cols), rev_rows(tc.rows, tc.cols);
  for (index_t i = 0; i < tc.rows; ++i)
    for (index_t j = 0; j < tc.cols; ++j) {
      rev_both(i, j) = ref(tc.rows - 1 - i, tc.cols - 1 - j);
      rev_rows(i, j) = ref(tc.rows - 1 - i, j);
    }
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(tc.p);
    Face2D face(world, pr, pc);
    auto sd = std::make_shared<BlockCyclicDist>(face, tc.rows, tc.cols,
                                                tc.src_b, tc.src_b);
    auto dd = std::make_shared<BlockCyclicDist>(face, tc.rows, tc.cols,
                                                tc.dst_b, tc.dst_b);
    DistMatrix src(sd, r.id());
    src.fill_from_global(ref);
    EXPECT_LT(la::max_abs_diff(
                  collect(dist::reverse_both(src, dd, world), world),
                  rev_both),
              1e-15);
    EXPECT_LT(la::max_abs_diff(
                  collect(dist::reverse_rows(src, dd, world), world),
                  rev_rows),
              1e-15);
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, RemapSweep,
                         ::testing::Values(RemapCase{6, 6, 1, 1, 1},
                                           RemapCase{8, 8, 4, 1, 1},
                                           RemapCase{9, 7, 4, 1, 2},
                                           RemapCase{12, 10, 6, 2, 1},
                                           RemapCase{16, 5, 8, 3, 2},
                                           RemapCase{11, 13, 12, 1, 1}));

TEST(Remap, TransposeOfTransposeIsIdentity) {
  const index_t n = 10, k = 7;
  Machine m(4);
  const Matrix ref = la::make_dense(57, n, k);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto d_nk = dist::cyclic_on(face, n, k);
    auto d_kn = dist::cyclic_on(face, k, n);
    DistMatrix src(d_nk, r.id());
    src.fill_from_global(ref);
    DistMatrix t = dist::transpose(src, d_kn, world);
    DistMatrix back = dist::transpose(t, d_nk, world);
    EXPECT_TRUE(back.local().equals(src.local()));
  });
}

TEST(Remap, DistributedTransposedSolveViaReversal) {
  // The fully distributed back-substitution: X = J lower_solve(J L^T J, J B)
  // without any global matrix on any rank.
  const index_t n = 32, k = 8;
  const int p1 = 2, p2 = 2;
  Machine m(p1 * p1 * p2);
  const Matrix l = la::make_lower_triangular(58, n);
  const Matrix b = la::make_rhs(59, n, k);
  Matrix lt = l.transposed();
  const Matrix ref = la::solve_upper(lt, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = trsm::it_inv_l_face(world, p1, p2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = trsm::it_inv_b_dist(world, p1, p2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);

    // J L^T J = reverse_both(transpose(L)); J B = reverse_rows(B).
    DistMatrix lt_d = dist::transpose(dl, ld, world);
    DistMatrix ltr = dist::reverse_both(lt_d, ld, world);
    DistMatrix brev = dist::reverse_rows(db, bd, world);
    trsm::ItInvOptions opts;
    opts.nblocks = 4;
    DistMatrix y = trsm::it_inv_trsm(ltr, brev, world, p1, p2, opts);
    DistMatrix x = dist::reverse_rows(y, bd, world);
    EXPECT_LT(la::max_abs_diff(collect(x, world), ref), 1e-9);
  });
}

struct CholCase {
  index_t n;
  int q;  // q x q grid
  index_t nb;
};

class CholSweep : public ::testing::TestWithParam<CholCase> {};

TEST_P(CholSweep, FactorsSpdMatrix) {
  const CholCase tc = GetParam();
  Machine m(tc.q * tc.q);
  const Matrix a = la::make_spd(71, tc.n);
  const Matrix lref = la::cholesky(a);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, tc.q, tc.q);
    auto ad = dist::cyclic_on(face, tc.n, tc.n);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dl = factor::cholesky_dist(da, world, tc.nb);
    const Matrix lgot = collect(dl, world);
    EXPECT_LT(la::max_abs_diff(lgot, lref), 1e-9)
        << "n=" << tc.n << " grid=" << tc.q << "x" << tc.q;
    // Reconstruction residual.
    const Matrix rebuilt = la::matmul(lgot, lgot.transposed());
    EXPECT_LT(la::max_abs_diff(rebuilt, a) / la::max_abs(a), 1e-11);
    // Strictly upper part is zero.
    for (index_t i = 0; i < tc.n; ++i)
      for (index_t j = i + 1; j < tc.n; ++j)
        EXPECT_DOUBLE_EQ(lgot(i, j), 0.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, CholSweep,
                         ::testing::Values(CholCase{8, 1, 4},
                                           CholCase{16, 2, 4},
                                           CholCase{24, 2, 8},
                                           CholCase{17, 2, 5},
                                           CholCase{32, 4, 8},
                                           CholCase{30, 3, 6},
                                           CholCase{32, 2, 0}));

TEST(CholeskyDist, NonSquareGridRejected) {
  Machine m(2);
  EXPECT_THROW(m.run([](Rank& r) {
                 Comm world = Comm::world(r);
                 Face2D face(world, 1, 2);
                 auto ad = dist::cyclic_on(face, 8, 8);
                 DistMatrix da(ad, r.id());
                 (void)factor::cholesky_dist(da, world);
               }),
               Error);
}

TEST(CholeskyDist, NotPositiveDefiniteThrows) {
  const index_t n = 12;
  Machine m(4);
  EXPECT_THROW(m.run([&](Rank& r) {
                 Comm world = Comm::world(r);
                 Face2D face(world, 2, 2);
                 auto ad = dist::cyclic_on(face, n, n);
                 DistMatrix da(ad, r.id());
                 // Symmetric but indefinite: -identity.
                 da.fill([&](index_t i, index_t j) {
                   return i == j ? -1.0 : 0.0;
                 });
                 (void)factor::cholesky_dist(da, world);
               }),
               Error);
}

TEST(CholeskyDist, EndToEndSpdPipelineFullyDistributed) {
  // factor -> forward solve -> transposed back solve, all on DistMatrix.
  const index_t n = 32, k = 8;
  Machine m(4);  // 2x2 factor grid doubles as the it_inv (p1=2, p2=1) front face
  const Matrix a = la::make_spd(73, n);
  const Matrix b = la::make_rhs(74, n, k);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto ad = dist::cyclic_on(face, n, n);
    DistMatrix da(ad, r.id());
    da.fill_from_global(a);
    DistMatrix dl = factor::cholesky_dist(da, world);

    // Forward solve L Y = B on the same 2x2 face (p2 = 1 grid).
    auto bd = trsm::it_inv_b_dist(world, 2, 1, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    trsm::ItInvOptions opts;
    opts.nblocks = 4;
    DistMatrix y = trsm::it_inv_trsm(dl, db, world, 2, 1, opts);

    // Back solve L^T X = Y via the distributed reversal reduction.
    DistMatrix lt = dist::transpose(dl, ad, world);
    DistMatrix ltr = dist::reverse_both(lt, ad, world);
    DistMatrix yrev = dist::reverse_rows(y, bd, world);
    DistMatrix xrev = trsm::it_inv_trsm(ltr, yrev, world, 2, 1, opts);
    DistMatrix x = dist::reverse_rows(xrev, bd, world);

    const Matrix xfull = collect(x, world);
    Matrix resid = la::matmul(a, xfull);
    resid.sub(b);
    EXPECT_LT(la::frobenius_norm(resid) / la::frobenius_norm(b), 1e-11);
  });
}

}  // namespace
}  // namespace catrsm
