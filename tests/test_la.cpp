// Unit tests for the sequential linear-algebra substrate.

#include <gtest/gtest.h>

#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"
#include "la/tri_inv.hpp"
#include "la/trmm.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {
namespace {

TEST(Matrix, BasicAccessAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  m(2, 3) = 7.5;
  EXPECT_DOUBLE_EQ(m(2, 3), 7.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(Matrix, BlockExtractAndInsertRoundTrip) {
  Matrix m = make_dense(1, 6, 5);
  Matrix b = m.block(2, 1, 3, 2);
  EXPECT_EQ(b.rows(), 3);
  EXPECT_EQ(b.cols(), 2);
  EXPECT_DOUBLE_EQ(b(0, 0), m(2, 1));
  Matrix m2(6, 5);
  m2.set_block(2, 1, b);
  EXPECT_DOUBLE_EQ(m2(4, 2), m(4, 2));
  EXPECT_DOUBLE_EQ(m2(0, 0), 0.0);
}

TEST(Matrix, TransposeInvolution) {
  Matrix m = make_dense(2, 4, 7);
  EXPECT_TRUE(m.transposed().transposed().equals(m));
}

TEST(Matrix, IdentityTimesAnything) {
  Matrix a = make_dense(3, 5, 6);
  Matrix c = matmul(Matrix::identity(5), a);
  EXPECT_LT(max_abs_diff(c, a), 1e-14);
}

TEST(Matrix, BadShapesThrow) {
  Matrix a(2, 3), b(2, 3), c(2, 2);
  EXPECT_THROW(matmul(a, b), Error);
  EXPECT_THROW(gemm(1.0, a, b, 0.0, c), Error);
  EXPECT_THROW(a.block(0, 0, 3, 3), Error);
}

TEST(Gemm, MatchesNaiveTripleLoop) {
  const index_t m = 37, n = 29, kk = 41;
  Matrix a = make_dense(10, m, kk);
  Matrix b = make_dense(11, kk, n);
  Matrix c = matmul(a, b);
  Matrix ref(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (index_t l = 0; l < kk; ++l) s += a(i, l) * b(l, j);
      ref(i, j) = s;
    }
  EXPECT_LT(max_abs_diff(c, ref), 1e-12);
}

TEST(Gemm, AlphaBetaSemantics) {
  Matrix a = make_dense(12, 8, 8);
  Matrix b = make_dense(13, 8, 8);
  Matrix c0 = make_dense(14, 8, 8);

  Matrix c = c0;
  gemm(2.0, a, b, 3.0, c);
  Matrix ref = matmul(a, b);
  ref.scale(2.0);
  Matrix c3 = c0;
  c3.scale(3.0);
  ref.add(c3);
  EXPECT_LT(max_abs_diff(c, ref), 1e-12);
}

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Matrix a = make_dense(15, 4, 4);
  Matrix b = make_dense(16, 4, 4);
  Matrix c(4, 4);
  c(1, 1) = 1e300;  // must be cleanly overwritten, not scaled
  gemm(1.0, a, b, 0.0, c);
  EXPECT_LT(max_abs_diff(c, matmul(a, b)), 1e-12);
}

TEST(Gemm, FlopCountFormula) {
  EXPECT_DOUBLE_EQ(gemm_flops(3, 5, 7), 210.0);
}

class TrsmSizes : public ::testing::TestWithParam<std::pair<index_t, index_t>> {
};

TEST_P(TrsmSizes, LowerSolveResidualSmall) {
  const auto [n, k] = GetParam();
  Matrix l = make_lower_triangular(21, n);
  Matrix b = make_rhs(22, n, k);
  Matrix x = solve_lower(l, b);
  EXPECT_LT(trsm_residual(l, x, b), 1e-13);
}

TEST_P(TrsmSizes, UpperSolveResidualSmall) {
  const auto [n, k] = GetParam();
  Matrix u = make_upper_triangular(23, n);
  Matrix b = make_rhs(24, n, k);
  Matrix x = solve_upper(u, b);
  Matrix r = b;
  gemm(1.0, u, x, -1.0, r);
  EXPECT_LT(frobenius_norm(r) / frobenius_norm(b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrsmSizes,
    ::testing::Values(std::pair<index_t, index_t>{1, 1},
                      std::pair<index_t, index_t>{2, 3},
                      std::pair<index_t, index_t>{17, 5},
                      std::pair<index_t, index_t>{64, 64},
                      std::pair<index_t, index_t>{100, 7},
                      std::pair<index_t, index_t>{33, 129}));

TEST(Trsm, UnitDiagIgnoresDiagonalValues) {
  const index_t n = 16;
  Matrix l = make_lower_triangular(31, n);
  Matrix l_unit = l;
  for (index_t i = 0; i < n; ++i) l_unit(i, i) = 1.0;
  Matrix b = make_rhs(32, n, 4);

  Matrix x1 = b;
  trsm_left(Uplo::kLower, Diag::kUnit, l, x1);  // diag should be ignored
  Matrix x2 = b;
  trsm_left(Uplo::kLower, Diag::kNonUnit, l_unit, x2);
  EXPECT_LT(max_abs_diff(x1, x2), 1e-14);
}

TEST(Trsm, RightSolveUpperAndLower) {
  const index_t m = 9, n = 12;
  Matrix u = make_upper_triangular(41, n);
  Matrix b = make_rhs(42, m, n);
  Matrix x = b;
  trsm_right(Uplo::kUpper, Diag::kNonUnit, u, x);
  Matrix r = b;
  gemm(1.0, x, u, -1.0, r);
  EXPECT_LT(frobenius_norm(r) / frobenius_norm(b), 1e-12);

  Matrix l = make_lower_triangular(43, n);
  Matrix y = b;
  trsm_right(Uplo::kLower, Diag::kNonUnit, l, y);
  Matrix r2 = b;
  gemm(1.0, y, l, -1.0, r2);
  EXPECT_LT(frobenius_norm(r2) / frobenius_norm(b), 1e-12);
}

TEST(Trsm, SingularMatrixThrows) {
  Matrix l = make_lower_triangular(51, 4);
  l(2, 2) = 0.0;
  Matrix b = make_rhs(52, 4, 2);
  EXPECT_THROW(solve_lower(l, b), Error);
}

TEST(Trmm, MatchesGemmOnTriangularOperand) {
  const index_t n = 23, k = 9;
  Matrix l = make_lower_triangular(61, n);
  Matrix b = make_rhs(62, n, k);
  Matrix via_trmm = trmm(Uplo::kLower, l, b);
  Matrix via_gemm = matmul(l, b);
  EXPECT_LT(max_abs_diff(via_trmm, via_gemm), 1e-12);

  Matrix u = make_upper_triangular(63, n);
  EXPECT_LT(max_abs_diff(trmm(Uplo::kUpper, u, b), matmul(u, b)), 1e-12);
}

TEST(Trmm, InverseComposesToIdentity) {
  const index_t n = 20;
  Matrix l = make_lower_triangular(71, n);
  Matrix linv = tri_inv(Uplo::kLower, l);
  Matrix b = make_rhs(72, n, 6);
  // L * (L^-1 * B) == B
  Matrix x = trmm(Uplo::kLower, linv, b);
  Matrix back = trmm(Uplo::kLower, l, x);
  EXPECT_LT(max_abs_diff(back, b), 1e-10);
}

class TriInvSizes : public ::testing::TestWithParam<index_t> {};

TEST_P(TriInvSizes, LowerInverseResidual) {
  const index_t n = GetParam();
  Matrix l = make_lower_triangular(81, n);
  Matrix linv = tri_inv(Uplo::kLower, l);
  EXPECT_LT(inv_residual(l, linv), 1e-12);
  // The inverse of a lower-triangular matrix is lower-triangular.
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) EXPECT_EQ(linv(i, j), 0.0);
}

TEST_P(TriInvSizes, UpperInverseResidual) {
  const index_t n = GetParam();
  Matrix u = make_upper_triangular(82, n);
  Matrix uinv = tri_inv(Uplo::kUpper, u);
  EXPECT_LT(inv_residual(u, uinv), 1e-12);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < i; ++j) EXPECT_EQ(uinv(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriInvSizes,
                         ::testing::Values(1, 2, 3, 8, 17, 32, 65, 128));

TEST(TriInv, SmallCutoffMatchesLargeCutoff) {
  const index_t n = 40;
  Matrix l = make_lower_triangular(91, n);
  Matrix a = tri_inv(Uplo::kLower, l, 1);
  Matrix b = tri_inv(Uplo::kLower, l, 64);
  EXPECT_LT(max_abs_diff(a, b), 1e-11);
}

TEST(TriInv, SingularThrows) {
  Matrix l = make_lower_triangular(92, 6);
  l(3, 3) = 0.0;
  EXPECT_THROW(tri_inv(Uplo::kLower, l), Error);
}

TEST(Generate, TriangularIsWellConditioned) {
  // cond estimate via ||L|| * ||L^-1|| stays modest as n grows.
  for (index_t n : {16, 64, 256}) {
    Matrix l = make_lower_triangular(101, n);
    Matrix linv = tri_inv(Uplo::kLower, l);
    const double cond = frobenius_norm(l) * frobenius_norm(linv) /
                        static_cast<double>(n);
    EXPECT_LT(cond, 50.0) << "n=" << n;
  }
}

TEST(Generate, ElementHashIsDeterministicAndSpread) {
  EXPECT_DOUBLE_EQ(element_hash(5, 3, 4), element_hash(5, 3, 4));
  EXPECT_NE(element_hash(5, 3, 4), element_hash(5, 4, 3));
  EXPECT_NE(element_hash(5, 3, 4), element_hash(6, 3, 4));
  double mean = 0.0;
  const int samples = 10000;
  for (int i = 0; i < samples; ++i) mean += element_hash(7, i, 13);
  mean /= samples;
  EXPECT_LT(std::abs(mean), 0.05);  // roughly centered
}

TEST(Generate, CholeskyReconstructs) {
  const index_t n = 24;
  Matrix a = make_spd(111, n);
  Matrix l = cholesky(a);
  Matrix llt = matmul(l, l.transposed());
  EXPECT_LT(max_abs_diff(llt, a) / max_abs(a), 1e-12);
}

TEST(Norms, ResidualIsZeroForExactSolve) {
  Matrix l = Matrix::identity(5);
  Matrix b = make_rhs(121, 5, 3);
  EXPECT_LT(trsm_residual(l, b, b), 1e-16);
}

}  // namespace
}  // namespace catrsm::la
