// Tests for concurrent execution streams: several Contexts sharing one
// machine with overlapped simulator runs in flight (api::StreamPool /
// Plan::execute_dist_async), bitwise equivalence against serial serving,
// fault isolation between streams, machine reuse after a faulted stream,
// and the stream-count knob's warn-and-fallback discipline.
//
// The concurrent stress case doubles as the CI ThreadSanitizer target:
// under CATRSM_SANITIZER the scheduler degrades to the thread backend and
// TSan watches the per-run transport, detector, and handle-store paths
// race against each other across streams.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/catrsm.hpp"
#include "api/stream_pool.hpp"
#include "la/generate.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace catrsm::api {
namespace {

using la::index_t;
using la::Matrix;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  bool had_ = false;
  std::string old_;
};

TrsmSpec iterative_spec() {
  TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = model::Algorithm::kIterative;
  return spec;
}

TEST(Streams, ConcurrentPoolMatchesSerialBitwise) {
  // Four tenants on one machine, a mixed bag of solve shapes, served
  // once serially and once with up to CATRSM_SIM_STREAMS runs in
  // flight. Concurrency must be invisible in the results: solutions
  // bitwise identical, modeled costs and virtual clocks identical
  // (per-run state — mailboxes, clocks, counters — is private to each
  // stream by construction).
  const int tenants = 4;
  struct Shape {
    index_t n, k;
  };
  const std::vector<Shape> shapes{{48, 12}, {64, 8},  {32, 24}, {96, 16},
                                  {48, 32}, {64, 16}, {40, 8},  {56, 12},
                                  {48, 12}, {72, 8},  {32, 8},  {64, 24}};
  const int items = static_cast<int>(shapes.size());

  sim::Machine machine(8);
  std::vector<std::unique_ptr<Context>> ctxs;
  for (int t = 0; t < tenants; ++t)
    ctxs.push_back(std::make_unique<Context>(machine));

  std::vector<std::shared_ptr<Plan>> plans;
  std::vector<DistHandle> hls, hbs;
  for (int i = 0; i < items; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    Context& ctx = *ctxs[static_cast<std::size_t>(i % tenants)];
    auto plan = ctx.plan(trsm_op(shapes[u].n, shapes[u].k, iterative_spec()));
    hls.push_back(ctx.upload(
        la::make_lower_triangular(900 + static_cast<std::uint64_t>(i),
                                  shapes[u].n),
        plan->input_layout(0)));
    hbs.push_back(ctx.upload(
        la::make_rhs(1900 + static_cast<std::uint64_t>(i), shapes[u].n,
                     shapes[u].k),
        plan->input_layout(1)));
    plans.push_back(std::move(plan));
  }

  // Warmup pass: populate each plan's diagonal-inverse cache so both
  // compared passes reuse it — otherwise the serial pass would carry the
  // one-time inversion phase the concurrent pass then skips, and the
  // modeled costs would differ for a reason that has nothing to do with
  // concurrency.
  for (int i = 0; i < items; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    (void)plans[u]->execute_dist(hls[u], hbs[u]);
  }

  std::vector<Matrix> xs(static_cast<std::size_t>(items));
  std::vector<sim::Cost> costs(static_cast<std::size_t>(items));
  std::vector<double> crit(static_cast<std::size_t>(items));
  for (int i = 0; i < items; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const DistExecResult r = plans[u]->execute_dist(hls[u], hbs[u]);
    xs[u] = ctxs[static_cast<std::size_t>(i % tenants)]->download(r.x);
    costs[u] = r.algorithm_cost();
    crit[u] = r.stats.critical_time;
  }

  StreamPool pool;
  std::vector<int> pool_tenant;
  for (int t = 0; t < tenants; ++t)
    pool_tenant.push_back(pool.add_tenant(*ctxs[static_cast<std::size_t>(t)]));
  std::vector<int> req_of_id;
  for (int i = 0; i < items; ++i) {
    const std::size_t u = static_cast<std::size_t>(i);
    const int id =
        pool.submit(pool_tenant[static_cast<std::size_t>(i % tenants)],
                    plans[u], hls[u], hbs[u]);
    if (static_cast<std::size_t>(id) >= req_of_id.size())
      req_of_id.resize(static_cast<std::size_t>(id) + 1, -1);
    req_of_id[static_cast<std::size_t>(id)] = i;
  }
  int completed = 0;
  for (;;) {
    const auto batch = pool.wait_some();
    if (batch.empty()) break;
    for (const auto& c : batch) {
      ASSERT_FALSE(c.error) << "stream " << c.id << " faulted";
      const std::size_t u =
          static_cast<std::size_t>(req_of_id[static_cast<std::size_t>(c.id)]);
      const Matrix x =
          ctxs[static_cast<std::size_t>(c.tenant)]->download(c.result.x);
      EXPECT_TRUE(x.equals(xs[u])) << "request " << u << " not bitwise";
      const sim::Cost cc = c.result.algorithm_cost();
      EXPECT_EQ(cc.msgs, costs[u].msgs);
      EXPECT_EQ(cc.words, costs[u].words);
      EXPECT_EQ(cc.flops, costs[u].flops);
      EXPECT_EQ(c.result.stats.critical_time, crit[u]);
      ++completed;
    }
  }
  EXPECT_EQ(completed, items);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(Streams, FaultedStreamIsIsolatedAndMachineStaysUsable) {
  // A kill fault armed for ONE stream must abort that stream alone: a
  // healthy stream launched (after disarm) while the doomed one is still
  // in flight completes bitwise clean, the doomed stream's operands are
  // poisoned exactly like a serial faulted run's, and the machine keeps
  // serving runs afterwards.
  const index_t n = 48, k = 12;
  sim::Machine machine(4);
  Context victim(machine);
  Context healthy(machine);

  auto vplan = victim.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle vl =
      victim.upload(la::make_lower_triangular(951, n), vplan->input_layout(0));
  const DistHandle vb =
      victim.upload(la::make_rhs(952, n, k), vplan->input_layout(1));

  auto hplan = healthy.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl = healthy.upload(la::make_lower_triangular(953, n),
                                       hplan->input_layout(0));
  const DistHandle hb =
      healthy.upload(la::make_rhs(954, n, k), hplan->input_layout(1));
  const Matrix x_ref = healthy.download(hplan->execute_dist(hl, hb).x);

  // Fault plans are captured per run at launch: arm, launch the victim,
  // disarm, launch the healthy stream — both now fly concurrently.
  machine.arm_fault(sim::FaultPlan{sim::FaultClass::kKillRank, 71});
  DistTicket doomed = vplan->execute_dist_async(vl, vb);
  machine.disarm_fault();
  DistTicket clean = hplan->execute_dist_async(hl, hb);

  EXPECT_THROW((void)doomed.wait(), Error);
  const DistExecResult ok = clean.wait();
  EXPECT_TRUE(healthy.download(ok.x).equals(x_ref));

  // Containment: only the faulted stream's operands are poisoned.
  EXPECT_TRUE(vl.poisoned());
  EXPECT_FALSE(hl.poisoned());
  EXPECT_FALSE(hb.poisoned());

  // The machine (and the victim tenant, after repair) keeps working.
  victim.repair(vl);
  victim.repair(vb);
  const DistExecResult retry = vplan->execute_dist(vl, vb);
  const Matrix x_retry = victim.download(retry.x);
  Context fresh(machine);
  auto fplan = fresh.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle fl =
      fresh.upload(la::make_lower_triangular(951, n), fplan->input_layout(0));
  const DistHandle fb =
      fresh.upload(la::make_rhs(952, n, k), fplan->input_layout(1));
  EXPECT_TRUE(fresh.download(fplan->execute_dist(fl, fb).x).equals(x_retry));
}

TEST(Streams, StreamsKnobGarbageWarnsAndFallsBack) {
  // CATRSM_SIM_STREAMS=banana must not crash, hang, or silently become
  // 0 streams: the pool falls back to its documented default width and
  // still serves end to end.
  ScopedEnv garbage("CATRSM_SIM_STREAMS", "banana");
  sim::Machine machine(4);
  Context ctx(machine);
  StreamPool pool;
  EXPECT_EQ(pool.max_inflight(), 4);  // documented fallback

  const index_t n = 32, k = 8;
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl =
      ctx.upload(la::make_lower_triangular(961, n), plan->input_layout(0));
  const DistHandle hb =
      ctx.upload(la::make_rhs(962, n, k), plan->input_layout(1));
  const Matrix x_ref = ctx.download(plan->execute_dist(hl, hb).x);

  const int t = pool.add_tenant(ctx);
  pool.submit(t, plan, hl, hb);
  const auto done = pool.drain();
  ASSERT_EQ(done.size(), 1u);
  ASSERT_FALSE(done[0].error);
  EXPECT_TRUE(ctx.download(done[0].result.x).equals(x_ref));
}

TEST(Streams, HandleBudgetKnobGarbageWarnsAndFallsBack) {
  // CATRSM_HANDLE_BUDGET=garbage falls back to unlimited — nothing is
  // ever evicted — and serving works end to end.
  ScopedEnv garbage("CATRSM_HANDLE_BUDGET", "garbage");
  sim::Machine machine(4);
  EXPECT_EQ(machine.handle_store().byte_budget(), sim::HandleStore::kUnlimited);

  Context ctx(machine);
  const index_t n = 32, k = 8;
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl =
      ctx.upload(la::make_lower_triangular(971, n), plan->input_layout(0));
  const DistHandle hb =
      ctx.upload(la::make_rhs(972, n, k), plan->input_layout(1));
  const DistExecResult r = plan->execute_dist(hl, hb);
  EXPECT_TRUE(hl.resident());
  EXPECT_EQ(machine.handle_store().evictions(), 0u);
  (void)ctx.download(r.x);
}

}  // namespace
}  // namespace catrsm::api
