// Tests for the analytic cost model: formula sanity, regime boundaries,
// tuning-parameter validity, and the Section IX comparison properties.

#include <gtest/gtest.h>

#include <cmath>

#include "model/compare.hpp"
#include "model/costs.hpp"
#include "model/tuning.hpp"

namespace catrsm::model {
namespace {

TEST(Regimes, BoundariesMatchSectionVIII) {
  const double p = 64;
  // n < 4k/p -> 1D.
  EXPECT_EQ(classify(10, 1000, p), Regime::k1D);
  // n > 4k sqrt(p) -> 2D.
  EXPECT_EQ(classify(100000, 100, p), Regime::k2D);
  // Between -> 3D.
  EXPECT_EQ(classify(1000, 1000, p), Regime::k3D);
  // Exactly at the boundaries: closed on the 3D side.
  EXPECT_EQ(classify(4 * 1000 / p, 1000, p), Regime::k3D);
  EXPECT_EQ(classify(4 * 100 * std::sqrt(p), 100, p), Regime::k3D);
}

TEST(Collectives, FormulasMatchPaperTable) {
  const double n = 1024, p = 64;
  EXPECT_DOUBLE_EQ(allgather_cost(n, p).msgs, 6);
  EXPECT_DOUBLE_EQ(allgather_cost(n, p).words, n);
  EXPECT_DOUBLE_EQ(bcast_cost(n, p).msgs, 12);
  EXPECT_DOUBLE_EQ(bcast_cost(n, p).words, 2 * n);
  EXPECT_DOUBLE_EQ(reduce_scatter_cost(n, p).flops, n);
  EXPECT_DOUBLE_EQ(allreduction_cost(n, p).words, 2 * n);
  EXPECT_DOUBLE_EQ(alltoall_cost(n, p).words, n / 2 * 6);
  // Single rank: no communication.
  EXPECT_DOUBLE_EQ(allgather_cost(n, 1).words, 0);
}

TEST(MMCost, ReducesToKnownShapes) {
  const double n = 4096, k = 4096;
  // 2D (p2 = 1): no A-replication term.
  const Cost c2d = mm_cost(n, k, 8, 1);
  EXPECT_DOUBLE_EQ(c2d.flops, 2 * n * n * k / 64);
  EXPECT_GT(c2d.words, 2 * n * k / 8 - 1);
  // 1D (p1 = 1): A replicated, words ~ n^2.
  const Cost c1d = mm_cost(n, k, 1, 64);
  EXPECT_GE(c1d.words, n * n);
  // 3D beats 2D on bandwidth at equal p when n == k.
  const Cost c3d = mm_cost(n, k, 4, 4);
  EXPECT_LT(c3d.words, mm_cost(n, k, 8, 1).words);
}

TEST(RecTrsmCost, MatchesConclusionTableShapes) {
  const double p = 4096;
  // 2D: S ~ sqrt(p).
  const Cost c2d = rec_trsm_cost(1 << 20, 4, p);
  EXPECT_NEAR(c2d.msgs, std::sqrt(p), 1e-9);
  // 3D: S ~ (np/k)^{2/3} log p.
  const double n = 1 << 14, k = 1 << 14;
  const Cost c3d = rec_trsm_cost(n, k, p);
  EXPECT_NEAR(c3d.msgs, std::pow(n * p / k, 2.0 / 3.0) * 12, 1e-6);
  // Flops are always the optimal n^2 k / p.
  EXPECT_DOUBLE_EQ(c3d.flops, n * n * k / p);
}

TEST(TriInvCost, LogSquaredLatencyAndGeometricConstant) {
  const double n = 1 << 14;
  const Cost c = tri_inv_cost(n, 8, 4);  // p = 256
  EXPECT_DOUBLE_EQ(c.msgs, 64.0);        // log^2(256) = 8^2
  const double expected_w = nu() * (n * n / (8.0 * 64) + n * n / (2.0 * 32));
  EXPECT_DOUBLE_EQ(c.words, expected_w);
  EXPECT_DOUBLE_EQ(c.flops, nu() * n * n * n / (8.0 * 256));
}

TEST(ItInvBreakdown, ComponentsArePositiveAndSumBounded) {
  const ItInvBreakdown b = it_inv_breakdown(1 << 14, 1 << 10, 1 << 12, 8, 4,
                                            8, 8);
  EXPECT_GT(b.inversion.words, 0);
  EXPECT_GT(b.solve.words, 0);
  EXPECT_GT(b.update.words, 0);
  const Cost t = b.total();
  EXPECT_NEAR(t.msgs, b.inversion.msgs + b.solve.msgs + b.update.msgs, 1e-9);
  EXPECT_NEAR(t.words, b.inversion.words + b.solve.words + b.update.words,
              1e-9);
}

TEST(Tuning, ParametersSatisfyRegimeTables) {
  const double p = 4096;
  // 1D: p1 = 1, p2 = p, n0 = n.
  const Tuning t1 = tune(16, 1 << 22, p);
  EXPECT_EQ(t1.regime, Regime::k1D);
  EXPECT_DOUBLE_EQ(t1.p1, 1);
  EXPECT_DOUBLE_EQ(t1.p2, p);
  EXPECT_DOUBLE_EQ(t1.n0, 16);
  // 2D: p1 = sqrt(p), p2 = 1.
  const Tuning t2 = tune(1 << 22, 16, p);
  EXPECT_EQ(t2.regime, Regime::k2D);
  EXPECT_DOUBLE_EQ(t2.p1, 64);
  EXPECT_DOUBLE_EQ(t2.p2, 1);
  EXPECT_GT(t2.n0, 1);
  EXPECT_LT(t2.n0, 1 << 22);
  // 3D: p1^2 p2 == p (up to rounding) and n0 = sqrt(nk).
  const double n = 1 << 16, k = 1 << 14;
  const Tuning t3 = tune(n, k, p);
  EXPECT_EQ(t3.regime, Regime::k3D);
  EXPECT_NEAR(t3.p1 * t3.p1 * t3.p2, p, p * 0.1);
  EXPECT_DOUBLE_EQ(t3.n0, std::sqrt(n * k));
}

TEST(Tuning, NearestGridAlwaysValid) {
  for (int p : {1, 2, 4, 8, 12, 16, 64, 100, 256, 1024}) {
    for (double ideal : {0.5, 1.0, 2.0, 7.3, 100.0}) {
      const auto [p1, p2] = nearest_grid(p, ideal);
      EXPECT_EQ(p1 * p1 * p2, p);
      EXPECT_GE(p1, 1);
      EXPECT_GE(p2, 1);
    }
  }
}

TEST(Configure, ProducesRunnableIntegerParameters) {
  for (long long n : {16, 1024, 1 << 20}) {
    for (long long k : {1LL, 64LL, static_cast<long long>(1) << 22}) {
      for (int p : {1, 4, 16, 64, 256}) {
        const Config cfg = configure(n, k, p);
        EXPECT_EQ(cfg.p1 * cfg.p1 * cfg.p2, p);
        EXPECT_EQ(cfg.pr * cfg.pc, p);
        EXPECT_EQ(cfg.pc % cfg.pr, 0);
        EXPECT_GE(cfg.nblocks, 1);
        EXPECT_LE(cfg.nblocks, std::min<long long>(n, p));
      }
    }
  }
}

TEST(Configure, PicksRingForSingleVectorAndIterativeIn3D) {
  EXPECT_EQ(configure(1 << 16, 1, 64).algorithm, Algorithm::kTrsv1D);
  // A latency-dominated 3D shape (large p relative to the flop volume):
  // the iterative method's predicted time wins. (At flop-heavy shapes the
  // recursive method can win back on the gamma term because the new
  // method pays 2 n^2 k / p flops — the paper's own F column.)
  EXPECT_EQ(configure(4096, 1024, 4096).algorithm, Algorithm::kIterative);
  // Deep in the 2D regime at modest p the recursive baseline's predicted
  // time is lower (the 2D iterative gain is asymptotic; see
  // Comparison.TwoLargeDimsGainIsAsymptotic) — the tuner must honor that.
  EXPECT_EQ(configure(1 << 16, 64, 64).algorithm, Algorithm::kRecursive);
}

TEST(Comparison, HeadlineLatencyGain3D) {
  // Section IX: in the 3D regime the new method wins by
  // ~ (n/k)^{1/6} p^{2/3} (up to log factors).
  const double p = 4096;
  const ComparisonRow row = compare(1 << 16, 1 << 12, p);
  ASSERT_EQ(row.regime, Regime::k3D);
  EXPECT_GT(row.latency_gain(), 10.0);
  // The measured-model gain should be within a polylog factor of the
  // asymptotic prediction.
  const double predicted = row.predicted_gain_3d();
  EXPECT_GT(row.latency_gain(), predicted / 50.0);
  EXPECT_LT(row.latency_gain(), predicted * 50.0);
}

TEST(Comparison, BandwidthAndFlopsStayComparable) {
  // The new method must NOT give up bandwidth or flops (Section IX): W and
  // F stay within constant factors across regimes (the paper's table has
  // the same asymptotic entries; the model carries constants ~4-10).
  for (const ComparisonRow& row : section9_rows(4096)) {
    EXPECT_LT(row.novel.words, 12.0 * row.standard.words + 1)
        << row_label(row);
    EXPECT_LT(row.novel.flops, 4.0 * row.standard.flops + 1)
        << row_label(row);
  }
}

TEST(Comparison, GainGrowsWithP) {
  // Scalability: the latency advantage widens as p grows (3D regime).
  const double n = 1 << 16, k = 1 << 12;
  double prev_gain = 0.0;
  for (double p : {64.0, 512.0, 4096.0}) {
    if (classify(n, k, p) != Regime::k3D) continue;
    const double gain = compare(n, k, p).latency_gain();
    EXPECT_GT(gain, prev_gain);
    prev_gain = gain;
  }
  EXPECT_GT(prev_gain, 1.0);
}

TEST(Comparison, ThreeLargeDimsWinsOnLatencyWhenNAtLeastK) {
  // In the 3D regime with n >= k (the common TRSM shape the paper
  // emphasizes) the new method's modeled latency is strictly better once p
  // is non-trivial; for k >> n the standard method's (np/k)^{2/3} log p can
  // dip below the inverter's additive log^2 p, so allow that term.
  for (double n : {1 << 12, 1 << 16, 1 << 20}) {
    for (double k : {16.0, 1024.0, 65536.0}) {
      for (double p : {64.0, 1024.0, 16384.0}) {
        const ComparisonRow row = compare(n, k, p);
        if (row.regime != Regime::k3D) continue;
        const double slack = 1.2 * log2p(p) * log2p(p);
        if (n >= k) {
          EXPECT_LT(row.novel.msgs, row.standard.msgs * 1.05 + slack)
              << row_label(row);
        }
      }
    }
  }
}

TEST(Comparison, TwoLargeDimsGainIsAsymptotic) {
  // Section VIII's 2D claim — latency improvement by at least
  // p^{1/4}/log p — is asymptotic: at the regime boundary (n ~ 8k sqrt p)
  // the modeled gain sqrt(p) / (c p^{1/4} log p) crosses 1 only at very
  // large p. Assert (a) the gain is monotonically increasing in p and
  // (b) it exceeds 1 at extreme scale, matching the paper's asymptotics.
  const double k = 256.0;
  double prev = 0.0;
  for (double p : {256.0, 4096.0, 65536.0, 1048576.0}) {
    const double n = 8.0 * k * std::sqrt(p);
    const ComparisonRow row = compare(n, k, p);
    ASSERT_EQ(row.regime, Regime::k2D) << row_label(row);
    EXPECT_GT(row.latency_gain(), prev) << row_label(row);
    prev = row.latency_gain();
  }
  const double huge_p = std::pow(2.0, 40);
  const ComparisonRow asymptotic =
      compare(8.0 * k * std::sqrt(huge_p), k, huge_p);
  EXPECT_GT(asymptotic.latency_gain(), 1.0);
}

}  // namespace
}  // namespace catrsm::model
