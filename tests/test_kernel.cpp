// Tests for the packed micro-kernel GEMM layer: equivalence with a naive
// reference on every edge shape (non-multiples of MR/NR, degenerate dims),
// full alpha/beta semantics, forced-backend agreement, and the blocked
// triangular routines that ride on the kernel.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/kernel/kernel.hpp"
#include "la/kernel/pool.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"
#include "la/tri_inv.hpp"
#include "la/trmm.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {
namespace {

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t l = 0; l < a.cols(); ++l) {
      const double av = a(i, l);
      for (index_t j = 0; j < b.cols(); ++j) c(i, j) += av * b(l, j);
    }
  return c;
}

double rel_frobenius_diff(const Matrix& a, const Matrix& b) {
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) {
      const double d = a(i, j) - b(i, j);
      num += d * d;
      den += b(i, j) * b(i, j);
    }
  if (den == 0.0) return std::sqrt(num);
  return std::sqrt(num / den);
}

/// Shapes that stress every edge of the tiling: 1, 3, MR±1, NR±1 for the
/// dispatched kernel, plus multi-block and non-multiple-of-block sizes.
std::vector<index_t> edge_sizes() {
  const kernel::MicroKernel& uk = kernel::active_microkernel();
  std::set<index_t> s{1, 3, uk.mr - 1, uk.mr + 1, uk.nr - 1, uk.nr + 1,
                      64, 129, 257};
  s.erase(0);
  return {s.begin(), s.end()};
}

TEST(Kernel, DispatchIsResolvedAndConsistent) {
  const kernel::MicroKernel& uk = kernel::active_microkernel();
  EXPECT_GE(uk.mr, 1);
  EXPECT_GE(uk.nr, 1);
  EXPECT_STREQ(uk.name, kernel::backend_name());
  EXPECT_EQ(uk.backend, kernel::active_backend());
  EXPECT_TRUE(kernel::cpu_supports(uk.backend));
  // The scalar backend always exists and is always usable.
  ASSERT_NE(kernel::microkernel_for(kernel::Backend::kScalar), nullptr);
  EXPECT_TRUE(kernel::cpu_supports(kernel::Backend::kScalar));
}

TEST(Kernel, PackedGemmMatchesNaiveOnEdgeShapes) {
  const kernel::MicroKernel& uk = kernel::active_microkernel();
  for (const index_t m : edge_sizes()) {
    for (const index_t n : edge_sizes()) {
      for (const index_t kk : edge_sizes()) {
        const Matrix a = make_dense(m * 131 + kk, m, kk);
        const Matrix b = make_dense(n * 137 + kk, kk, n);
        const Matrix ref = naive_matmul(a, b);
        Matrix c(m, n);
        kernel::gemm_with(uk, m, n, kk, 1.0, a.ptr(), kk, b.ptr(), n, 0.0,
                          c.ptr(), n);
        const double scale = std::max(1.0, max_abs(ref));
        EXPECT_LT(max_abs_diff(c, ref) / scale, 1e-12)
            << "m=" << m << " n=" << n << " k=" << kk;
      }
    }
  }
}

TEST(Kernel, AllAlphaBetaCombos) {
  const kernel::MicroKernel& uk = kernel::active_microkernel();
  const index_t m = uk.mr + 1, n = uk.nr + 1, kk = 67;
  const Matrix a = make_dense(301, m, kk);
  const Matrix b = make_dense(302, kk, n);
  const Matrix c0 = make_dense(303, m, n);
  const Matrix ab = naive_matmul(a, b);
  for (const double alpha : {0.0, 1.0, -1.0, 0.7}) {
    for (const double beta : {0.0, 1.0, -0.3, 2.0}) {
      Matrix c = c0;
      kernel::gemm_with(uk, m, n, kk, alpha, a.ptr(), kk, b.ptr(), n, beta,
                        c.ptr(), n);
      Matrix ref(m, n);
      for (index_t i = 0; i < m; ++i)
        for (index_t j = 0; j < n; ++j)
          ref(i, j) = alpha * ab(i, j) + beta * c0(i, j);
      const double scale = std::max(1.0, max_abs(ref));
      EXPECT_LT(max_abs_diff(c, ref) / scale, 1e-12)
          << "alpha=" << alpha << " beta=" << beta;
      // The public entry point must agree with the forced-kernel path.
      Matrix c2 = c0;
      kernel::gemm(m, n, kk, alpha, a.ptr(), kk, b.ptr(), n, beta, c2.ptr(),
                   n);
      EXPECT_LT(max_abs_diff(c2, ref) / scale, 1e-12);
    }
  }
}

TEST(Kernel, BetaZeroOverwritesNonFinite) {
  const kernel::MicroKernel& uk = kernel::active_microkernel();
  const index_t n = 40;
  const Matrix a = make_dense(311, n, n);
  const Matrix b = make_dense(312, n, n);
  Matrix c(n, n);
  c(3, 7) = std::numeric_limits<double>::infinity();
  kernel::gemm_with(uk, n, n, n, 1.0, a.ptr(), n, b.ptr(), n, 0.0, c.ptr(),
                    n);
  EXPECT_LT(max_abs_diff(c, naive_matmul(a, b)), 1e-10);
}

TEST(Kernel, ScalarAndDispatchedBackendsAgree) {
  const kernel::MicroKernel* scalar =
      kernel::microkernel_for(kernel::Backend::kScalar);
  ASSERT_NE(scalar, nullptr);
  const kernel::MicroKernel& active = kernel::active_microkernel();
  for (const index_t n : {31, 64, 129, 257}) {
    const Matrix a = make_dense(401 + n, n, n);
    const Matrix b = make_dense(402 + n, n, n);
    Matrix cs(n, n), cd(n, n);
    kernel::gemm_with(*scalar, n, n, n, 1.0, a.ptr(), n, b.ptr(), n, 0.0,
                      cs.ptr(), n);
    kernel::gemm_with(active, n, n, n, 1.0, a.ptr(), n, b.ptr(), n, 0.0,
                      cd.ptr(), n);
    EXPECT_LT(rel_frobenius_diff(cd, cs), 1e-12) << "n=" << n;
  }
}

TEST(Kernel, StridedSubmatrixGemm) {
  // Operate on an interior block of a larger matrix: lda/ldb/ldc exceed the
  // logical shapes, as in every blocked triangular update.
  const index_t big = 73, m = 41, n = 37, kk = 29;
  const Matrix outer_a = make_dense(501, big, big);
  const Matrix outer_b = make_dense(502, big, big);
  Matrix outer_c = make_dense(503, big, big);
  const Matrix a = outer_a.block(5, 7, m, kk);
  const Matrix b = outer_b.block(11, 3, kk, n);
  Matrix ref = outer_c.block(2, 9, m, n);
  kernel::gemm(m, n, kk, 1.0, outer_a.ptr() + 5 * big + 7, big,
               outer_b.ptr() + 11 * big + 3, big, 1.0,
               outer_c.ptr() + 2 * big + 9, big);
  Matrix expect = naive_matmul(a, b);
  expect.add(ref);
  EXPECT_LT(max_abs_diff(outer_c.block(2, 9, m, n), expect), 1e-10);
}

TEST(Kernel, BlockedTrsmAllVariantsAtOddSizes) {
  const index_t n = 129, k = 33;
  const Matrix lo = make_lower_triangular(601, n);
  const Matrix up = make_upper_triangular(602, n);
  const Matrix b = make_rhs(603, n, k);
  const Matrix bw = make_rhs(604, k, n);  // wide RHS for right solves

  Matrix x = b;
  trsm_left(Uplo::kLower, Diag::kNonUnit, lo, x);
  EXPECT_LT(trsm_residual(lo, x, b), 1e-12);

  Matrix y = b;
  trsm_left(Uplo::kUpper, Diag::kNonUnit, up, y);
  Matrix r = b;
  gemm(1.0, up, y, -1.0, r);
  EXPECT_LT(frobenius_norm(r) / frobenius_norm(b), 1e-12);

  Matrix xr = bw;
  trsm_right(Uplo::kUpper, Diag::kNonUnit, up, xr);
  Matrix rr = bw;
  gemm(1.0, xr, up, -1.0, rr);
  EXPECT_LT(frobenius_norm(rr) / frobenius_norm(bw), 1e-12);

  Matrix yr = bw;
  trsm_right(Uplo::kLower, Diag::kNonUnit, lo, yr);
  Matrix rr2 = bw;
  gemm(1.0, yr, lo, -1.0, rr2);
  EXPECT_LT(frobenius_norm(rr2) / frobenius_norm(bw), 1e-12);
}

TEST(Kernel, BlockedTrmmMatchesGemmAcrossBlockBoundary) {
  for (const index_t n : {63, 64, 65, 130}) {
    const Matrix lo = make_lower_triangular(701, n);
    const Matrix up = make_upper_triangular(702, n);
    const Matrix b = make_rhs(703, n, 17);
    EXPECT_LT(max_abs_diff(trmm(Uplo::kLower, lo, b), matmul(lo, b)), 1e-11)
        << "n=" << n;
    EXPECT_LT(max_abs_diff(trmm(Uplo::kUpper, up, b), matmul(up, b)), 1e-11)
        << "n=" << n;
  }
}

/// RAII pool-size override so a failing assertion cannot leak a forced
/// thread count into later tests.
class PoolThreads {
 public:
  explicit PoolThreads(int n) { kernel::ThreadPool::set_threads_for_testing(n); }
  ~PoolThreads() { kernel::ThreadPool::set_threads_for_testing(0); }
};

double frobenius_distance(const Matrix& a, const Matrix& b) {
  double s = 0.0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j) {
      const double d = a(i, j) - b(i, j);
      s += d * d;
    }
  return std::sqrt(s);
}

TEST(KernelPool, GemmBitIdenticalAcrossPoolSizes) {
  // The team split only decides WHICH thread owns a band of C rows and
  // which B strips it packs, never what any element computes, so any pool
  // size must reproduce the single-threaded result exactly (Frobenius
  // distance 0, not merely small). Sizes sit past the MT flop threshold
  // (2n^3 > 3.0e8) so the pool genuinely engages: n = 543 (odd) exercises
  // the remainder rows of the band split, n = 1024 multiple kc passes AND
  // multiple mc blocks per thread band under the new partitioning.
  for (const index_t n : {543, 1024}) {
    const Matrix a = make_dense(901 + n, n, n);
    const Matrix b = make_dense(902 + n, n, n);
    Matrix c1(n, n);
    {
      PoolThreads single(1);
      c1 = matmul(a, b);
    }
    for (const int threads : {2, 3, 4}) {
      PoolThreads multi(threads);
      const auto before = kernel::ThreadPool::dispatches();
      const Matrix cn = matmul(a, b);
      EXPECT_GT(kernel::ThreadPool::dispatches(), before)
          << "n=" << n << " threads=" << threads
          << ": the multi-threaded run never fanned out";
      EXPECT_TRUE(c1.equals(cn)) << "n=" << n << " threads=" << threads;
      EXPECT_EQ(frobenius_distance(c1, cn), 0.0)
          << "n=" << n << " threads=" << threads;
    }
  }
  // Below the threshold every pool size stays inline; results must of
  // course still match (guards against a fan-out decision that depends
  // on anything but the flop count).
  for (const index_t n : {129, 257}) {
    const Matrix a = make_dense(901 + n, n, n);
    const Matrix b = make_dense(902 + n, n, n);
    Matrix c1(n, n);
    {
      PoolThreads single(1);
      c1 = matmul(a, b);
    }
    PoolThreads multi(4);
    const auto before = kernel::ThreadPool::dispatches();
    const Matrix cn = matmul(a, b);
    EXPECT_EQ(kernel::ThreadPool::dispatches(), before)
        << "n=" << n << " fanned out below the MT flop threshold";
    EXPECT_TRUE(c1.equals(cn)) << "n=" << n;
  }
}

TEST(KernelPool, TrsmAndTriInvBitIdenticalAcrossPoolSizes) {
  for (const index_t n : {129, 257, 512}) {
    const Matrix l = make_lower_triangular(911 + n, n);
    const Matrix b = make_rhs(912 + n, n, n);
    Matrix x1 = b, x4 = b;
    Matrix t1(n, n), t4(n, n);
    {
      PoolThreads single(1);
      trsm_left(Uplo::kLower, Diag::kNonUnit, l, x1);
      t1 = tri_inv(Uplo::kLower, l);
    }
    {
      PoolThreads four(4);
      trsm_left(Uplo::kLower, Diag::kNonUnit, l, x4);
      t4 = tri_inv(Uplo::kLower, l);
    }
    EXPECT_TRUE(x1.equals(x4)) << "trsm n=" << n;
    EXPECT_EQ(frobenius_distance(x1, x4), 0.0) << "trsm n=" << n;
    EXPECT_TRUE(t1.equals(t4)) << "tri_inv n=" << n;
    EXPECT_EQ(frobenius_distance(t1, t4), 0.0) << "tri_inv n=" << n;
  }
}

// ---------------------------------------------------------------------------
// f32 kernels

Matrix naive_matmul_f32(const std::vector<float>& a, const std::vector<float>& b,
                        index_t m, index_t n, index_t kk) {
  // Reference computed in f32 throughout, so the comparison tolerance only
  // has to absorb summation-order differences, not precision differences.
  Matrix c(m, n);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      float s = 0.0f;
      for (index_t l = 0; l < kk; ++l)
        s += a[static_cast<std::size_t>(i * kk + l)] *
             b[static_cast<std::size_t>(l * n + j)];
      c(i, j) = static_cast<double>(s);
    }
  return c;
}

std::vector<index_t> edge_sizes_f32() {
  const kernel::MicroKernelF32& uk = kernel::active_microkernel_f32();
  std::set<index_t> s{1, 3, uk.mr - 1, uk.mr + 1, uk.nr - 1, uk.nr + 1,
                      64, 129};
  s.erase(0);
  return {s.begin(), s.end()};
}

TEST(KernelF32, PackedGemmMatchesNaiveOnEdgeShapes) {
  const kernel::MicroKernelF32& uk = kernel::active_microkernel_f32();
  EXPECT_EQ(uk.backend, kernel::active_backend());
  for (const index_t m : edge_sizes_f32()) {
    for (const index_t n : edge_sizes_f32()) {
      for (const index_t kk : {index_t{1}, index_t{33}, index_t{129}}) {
        std::vector<float> a(static_cast<std::size_t>(m * kk));
        std::vector<float> b(static_cast<std::size_t>(kk * n));
        for (std::size_t i = 0; i < a.size(); ++i)
          a[i] = std::sin(static_cast<float>(i) + static_cast<float>(m));
        for (std::size_t i = 0; i < b.size(); ++i)
          b[i] = std::cos(static_cast<float>(i) * 0.5f);
        const Matrix ref = naive_matmul_f32(a, b, m, n, kk);
        std::vector<float> c(static_cast<std::size_t>(m * n), 7.0f);
        kernel::gemm_with_f32(uk, m, n, kk, 1.0f, a.data(), kk, b.data(), n,
                              0.0f, c.data(), n);
        const double scale = std::max(1.0, max_abs(ref));
        double maxd = 0.0;
        for (index_t i = 0; i < m; ++i)
          for (index_t j = 0; j < n; ++j)
            maxd = std::max(maxd,
                            std::abs(static_cast<double>(
                                         c[static_cast<std::size_t>(i * n + j)]) -
                                     ref(i, j)));
        EXPECT_LT(maxd / scale, 1e-4) << "m=" << m << " n=" << n
                                      << " k=" << kk;
      }
    }
  }
}

TEST(KernelF32, ScalarAndDispatchedBackendsAgree) {
  const kernel::MicroKernelF32* scalar =
      kernel::microkernel_f32_for(kernel::Backend::kScalar);
  ASSERT_NE(scalar, nullptr);
  const kernel::MicroKernelF32& active = kernel::active_microkernel_f32();
  const index_t n = 129;
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::sin(static_cast<float>(i));
    b[i] = std::cos(static_cast<float>(i) * 0.25f);
  }
  std::vector<float> cs(static_cast<std::size_t>(n * n));
  std::vector<float> cd(static_cast<std::size_t>(n * n));
  kernel::gemm_with_f32(*scalar, n, n, n, 1.0f, a.data(), n, b.data(), n,
                        0.0f, cs.data(), n);
  kernel::gemm_with_f32(active, n, n, n, 1.0f, a.data(), n, b.data(), n,
                        0.0f, cd.data(), n);
  double maxrel = 0.0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const double den = std::max(1.0, std::abs(static_cast<double>(cs[i])));
    maxrel = std::max(
        maxrel, std::abs(static_cast<double>(cd[i]) -
                         static_cast<double>(cs[i])) / den);
  }
  EXPECT_LT(maxrel, 1e-4);
}

// ---------------------------------------------------------------------------
// Non-temporal stores

TEST(Kernel, NtStoresBitIdenticalToRegularStores) {
  // The streaming path differs ONLY in the store instruction; forced on
  // and forced off must produce the same bits for a beta == 0 single-
  // K-pass product. Matrix storage is 64-byte aligned and n * 8 is a
  // multiple of 64, so the alignment precondition holds and the forced-on
  // run genuinely exercises run_nt on SIMD backends.
  const index_t m = 512, n = 512, kk = 200;  // one K pass (kk <= KC)
  const Matrix a = make_dense(921, m, kk);
  const Matrix b = make_dense(922, kk, n);
  Matrix c_nt(m, n), c_reg(m, n);
  kernel::set_nt_for_testing(1);
  kernel::gemm(m, n, kk, 1.0, a.ptr(), kk, b.ptr(), n, 0.0, c_nt.ptr(), n);
  kernel::set_nt_for_testing(0);
  kernel::gemm(m, n, kk, 1.0, a.ptr(), kk, b.ptr(), n, 0.0, c_reg.ptr(), n);
  kernel::set_nt_for_testing(-1);
  EXPECT_TRUE(c_nt.equals(c_reg));
  EXPECT_EQ(frobenius_distance(c_nt, c_reg), 0.0);
}

TEST(Kernel, TriInvStillExactlyTriangular) {
  // The packed path must preserve the exact zeros of the strict opposite
  // triangle (FMA with zero operands stays zero).
  const index_t n = 193;
  const Matrix lo = make_lower_triangular(801, n);
  const Matrix inv = tri_inv(Uplo::kLower, lo);
  EXPECT_LT(inv_residual(lo, inv), 1e-12);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = i + 1; j < n; ++j) ASSERT_EQ(inv(i, j), 0.0);
}

}  // namespace
}  // namespace catrsm::la
