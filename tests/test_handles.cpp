// Tests for resident distributed operands and composable op-programs:
// upload -> execute_dist -> download bit-identity against the legacy
// matrix path, cost-signature purity (no scatter/collect phases on the
// resident path), handle survival across unrelated Machine runs,
// automatic redistribution on layout mismatch, storage release, and
// Program chaining (factor -> solve -> reversed solve == cholesky_solve_op).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "api/catrsm.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "sim/machine.hpp"

namespace catrsm::api {
namespace {

using la::index_t;
using la::Matrix;

TrsmSpec iterative_spec() {
  TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = model::Algorithm::kIterative;
  return spec;
}

TEST(Handles, UploadExecuteDownloadMatchesLegacyBitwise) {
  const index_t n = 48, k = 12;
  const int p = 16;
  const Matrix l = la::make_lower_triangular(501, n);
  const Matrix b1 = la::make_rhs(502, n, k);
  const Matrix b2 = la::make_rhs(503, n, k);

  // Legacy reference on its own context (separate plan, clean counters).
  Context ref_ctx(p);
  auto ref_plan = ref_ctx.plan(trsm_op(n, k, iterative_spec()));
  const ExecResult ref1 = ref_plan->execute(l, b1);
  const ExecResult ref2 = ref_plan->execute(l, b2);

  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const DistHandle hb1 = ctx.upload(b1, plan->input_layout(1));
  const DistHandle hb2 = ctx.upload(b2, plan->input_layout(1));

  const DistExecResult r1 = plan->execute_dist(hl, hb1);
  EXPECT_EQ(plan->diag_inversions(), 1u);
  EXPECT_EQ(r1.stats.phase_max.count("inversion"), 1u);
  const DistExecResult r2 = plan->execute_dist(hl, hb2);
  // The resident factor's diagonal inverse is reused — that is the point.
  EXPECT_EQ(plan->diag_inversions(), 1u);
  EXPECT_EQ(r2.stats.phase_max.count("inversion"), 0u);

  EXPECT_TRUE(ctx.download(r1.x).equals(ref1.x));
  EXPECT_TRUE(ctx.download(r2.x).equals(ref2.x));
  // The output handle is itself a valid operand description.
  EXPECT_EQ(r1.x.rows(), n);
  EXPECT_EQ(r1.x.cols(), k);
  EXPECT_TRUE(r1.x.layout() == plan->output_layout());
}

TEST(Handles, AlgorithmCostExcludesUploadAndDownload) {
  const index_t n = 32, k = 8;
  const int p = 16;
  const Matrix l = la::make_lower_triangular(511, n);
  const Matrix b = la::make_rhs(512, n, k);

  Context ref_ctx(p);
  const ExecResult legacy =
      ref_ctx.plan(trsm_op(n, k, iterative_spec()))->execute(l, b);

  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistExecResult r = plan->execute_dist(
      ctx.upload(l, plan->input_layout(0)),
      ctx.upload(b, plan->input_layout(1)));

  // No scatter, no collect, no layout transition: the run IS the
  // algorithm.
  EXPECT_EQ(r.stats.phase_max.count("output-collect"), 0u);
  EXPECT_EQ(r.stats.phase_max.count("redistribute"), 0u);
  const sim::Cost dist_alg = r.algorithm_cost();
  const sim::Cost legacy_alg = legacy.algorithm_cost();
  EXPECT_EQ(dist_alg.msgs, legacy_alg.msgs);
  EXPECT_EQ(dist_alg.words, legacy_alg.words);
  EXPECT_EQ(dist_alg.flops, legacy_alg.flops);
  EXPECT_EQ(r.stats.max_msgs(), dist_alg.msgs);
  EXPECT_EQ(r.stats.max_words(), dist_alg.words);
  EXPECT_EQ(r.stats.max_flops(), dist_alg.flops);
  // The legacy full run additionally pays the output gather.
  EXPECT_GT(legacy.stats.max_words(), legacy_alg.words);
}

TEST(Handles, HandleSurvivesUnrelatedMachineRuns) {
  const index_t n = 40, k = 8;
  const int p = 4;
  const Matrix l = la::make_lower_triangular(521, n);
  const Matrix b = la::make_rhs(522, n, k);

  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const DistHandle hb = ctx.upload(b, plan->input_layout(1));
  const Matrix x1 = ctx.download(plan->execute_dist(hl, hb).x);

  // An unrelated run on the same machine must not disturb resident
  // operands (the store lives OUTSIDE run state).
  ctx.machine().run([](sim::Rank&) {});
  EXPECT_TRUE(ctx.download(hl).equals(l));

  const Matrix x2 = ctx.download(plan->execute_dist(hl, hb).x);
  EXPECT_EQ(plan->diag_inversions(), 1u);  // reuse across the rerun
  EXPECT_TRUE(x1.equals(x2));
}

TEST(Handles, LayoutMismatchAutoRedistributes) {
  const index_t n = 32, k = 8;
  const int p = 16;
  const Matrix l = la::make_lower_triangular(531, n);
  const Matrix b = la::make_rhs(532, n, k);

  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const Layout required = plan->input_layout(1);
  // Upload B in a DIFFERENT (but valid) layout than the solver consumes.
  const Layout wrong = cyclic_layout(plan->config().p1, plan->config().p1);
  ASSERT_FALSE(wrong == required);
  const DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const DistHandle hb = ctx.upload(b, wrong);

  const DistExecResult r = plan->execute_dist(hl, hb);
  EXPECT_EQ(r.stats.phase_max.count("redistribute"), 1u);
  EXPECT_GT(r.redistribute_cost().msgs, 0.0);

  Context ref_ctx(p);
  const ExecResult legacy =
      ref_ctx.plan(trsm_op(n, k, iterative_spec()))->execute(l, b);
  EXPECT_TRUE(ctx.download(r.x).equals(legacy.x));
  // The transition is charged outside the algorithm phase.
  const sim::Cost alg = r.algorithm_cost();
  EXPECT_EQ(alg.msgs, legacy.algorithm_cost().msgs);
  EXPECT_EQ(alg.words, legacy.algorithm_cost().words);
}

TEST(Handles, TransposedResidentSolveMatchesLegacyBitwise) {
  const index_t n = 32, k = 8;
  const int p = 4;
  const Matrix l = la::make_lower_triangular(541, n);
  const Matrix b = la::make_rhs(542, n, k);
  TrsmSpec spec = iterative_spec();
  spec.transpose = true;

  Context ref_ctx(p);
  const ExecResult legacy = ref_ctx.plan(trsm_op(n, k, spec))->execute(l, b);

  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, spec));
  const DistExecResult r = plan->execute_dist(
      ctx.upload(l, plan->input_layout(0)),
      ctx.upload(b, plan->input_layout(1)));
  // The distributed reversal path (J L^T J) is permutation-exact, so it
  // agrees with the legacy host-side reversal bit for bit.
  EXPECT_TRUE(ctx.download(r.x).equals(legacy.x));
}

TEST(Handles, TriInvAndMatmulResidentPathsMatchLegacy) {
  const index_t n = 24;
  const int p = 4;
  Context ctx(p);
  {
    const Matrix l = la::make_lower_triangular(551, n);
    auto plan = ctx.plan(tri_inv_op(n));
    const ExecResult legacy = plan->execute(l);
    const DistExecResult r =
        plan->execute_dist(ctx.upload(l, plan->input_layout(0)));
    EXPECT_TRUE(ctx.download(r.x).equals(legacy.x));
  }
  {
    const index_t k = 12;
    const Matrix a = la::make_dense(552, n, n);
    const Matrix x = la::make_dense(553, n, k);
    auto plan = ctx.plan(matmul2d_op(n, k));
    const ExecResult legacy = plan->execute(a, x);
    const DistExecResult r = plan->execute_dist(
        ctx.upload(a, plan->input_layout(0)),
        ctx.upload(x, plan->input_layout(1)));
    EXPECT_TRUE(ctx.download(r.x).equals(legacy.x));
  }
}

TEST(Handles, ReleaseFreesResidentStorage) {
  const index_t n = 16;
  Context ctx(4);
  sim::HandleStore& store = ctx.machine().handle_store();
  const std::size_t before = store.count();
  {
    const DistHandle h =
        ctx.upload(la::make_dense(561, n, n), cyclic_layout(2, 2));
    EXPECT_EQ(store.count(), before + 1);
    const DistHandle copy = h;  // refcounted: copies share storage
    EXPECT_EQ(store.count(), before + 1);
  }
  EXPECT_EQ(store.count(), before);
}

TEST(Handles, FailedExecuteLeavesResidentOperandsIntact) {
  // Factoring a non-SPD matrix throws INSIDE the simulated run ("matrix
  // not positive definite"). The resident operands must survive the
  // unwinding (slots are moved out for the body and restored on
  // failure), and the pre-created output entry must not leak.
  const index_t n = 24, k = 6;
  Context ctx(4);
  Matrix bad(n, n);
  for (index_t i = 0; i < n; ++i) bad(i, i) = -1.0;
  auto factor_plan = ctx.plan(cholesky_op(n));
  const DistHandle ha = ctx.upload(bad, factor_plan->input_layout(0));
  sim::HandleStore& store = ctx.machine().handle_store();
  const std::size_t entries = store.count();
  EXPECT_THROW((void)factor_plan->execute_dist(ha), Error);
  EXPECT_EQ(store.count(), entries);  // failed output entry released
  EXPECT_TRUE(ctx.download(ha).equals(bad));

  // The program driver unwinds the same way (kCholeskySolve is one).
  const Matrix b = la::make_rhs(622, n, k);
  auto solve_plan = ctx.plan(cholesky_solve_op(n, k));
  const DistHandle hb = ctx.upload(b, solve_plan->input_layout(1));
  EXPECT_THROW((void)solve_plan->execute_dist(ha, hb), Error);
  EXPECT_EQ(store.count(), entries + 1);  // ha + hb remain, nothing leaked
  EXPECT_TRUE(ctx.download(ha).equals(bad));
  EXPECT_TRUE(ctx.download(hb).equals(b));

  // The same handles still execute through a working plan afterwards:
  // overwrite-style recovery by re-uploading a good operand.
  const Matrix good = la::make_spd(621, n);
  const DistHandle hgood = ctx.upload(good, solve_plan->input_layout(0));
  const DistExecResult r = solve_plan->execute_dist(hgood, hb);
  const ExecResult ref = solve_plan->execute(good, b);
  EXPECT_TRUE(ctx.download(r.x).equals(ref.x));
}

TEST(Handles, RejectsForeignAndUnsupportedVariants) {
  const index_t n = 16, k = 4;
  Context ctx(4);
  Context other(4);
  auto plan = ctx.plan(trsm_op(n, k));
  const Matrix l = la::make_lower_triangular(571, n);
  const Matrix b = la::make_rhs(572, n, k);
  const DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const DistHandle hb_other = other.upload(b, plan->input_layout(1));
  EXPECT_THROW((void)plan->execute_dist(hl, hb_other), Error);

  TrsmSpec upper;
  upper.uplo = la::Uplo::kUpper;
  auto upper_plan = ctx.plan(trsm_op(n, k, upper));
  const DistHandle hb = ctx.upload(b, upper_plan->input_layout(1));
  EXPECT_THROW((void)upper_plan->execute_dist(hl, hb), Error);
}

TEST(Programs, FactorSolveSolveChainEqualsCholeskySolveOp) {
  const index_t n = 40, k = 8;
  const int q = 3;
  const int p = q * q;
  const Matrix a = la::make_spd(581, n);
  const Matrix b = la::make_rhs(582, n, k);

  Context ctx(p);
  auto solve_plan = ctx.plan(cholesky_solve_op(n, k));
  const ExecResult ref = solve_plan->execute(a, b);
  EXPECT_LT(ref.residual, 1e-10);
  // The pipeline runs as a program: three stage phases, one simulated
  // run, and no intermediate (or final) host collect inside it.
  EXPECT_EQ(ref.stats.phase_max.count("cholesky"), 1u);
  EXPECT_EQ(ref.stats.phase_max.count("forward-trsm"), 1u);
  EXPECT_EQ(ref.stats.phase_max.count("backward-trsm"), 1u);
  EXPECT_EQ(ref.stats.phase_max.count("output-collect"), 0u);

  // The same chain assembled EXPLICITLY through the public Program API.
  const int nblocks = solve_plan->config().nblocks;
  auto factor_plan = ctx.plan(cholesky_op(n, q));
  TrsmSpec fwd;
  fwd.force_algorithm = true;
  fwd.algorithm = model::Algorithm::kIterative;
  fwd.nblocks = nblocks;
  fwd.grid_p1 = q;
  fwd.grid_p2 = 1;
  auto fwd_plan = ctx.plan(trsm_op(n, k, fwd));
  TrsmSpec bwd = fwd;
  bwd.transpose = true;
  auto bwd_plan = ctx.plan(trsm_op(n, k, bwd));

  Program prog(ctx);
  const auto na = prog.input(n, n);
  const auto nb = prog.input(n, k);
  const auto nl = prog.add(factor_plan, {na}, "cholesky");
  const auto ny = prog.add(fwd_plan, {nl, nb}, "forward-trsm");
  const auto nx = prog.add(bwd_plan, {nl, ny}, "backward-trsm");
  prog.mark_output(nx);

  const DistHandle ha = ctx.upload(a, cyclic_layout(q, q));
  const DistHandle hb = ctx.upload(b, row_blocked_layout(q, 1));
  Program::Result run = prog.run({ha, hb});
  ASSERT_EQ(run.outputs.size(), 1u);
  EXPECT_TRUE(ctx.download(run.outputs[0]).equals(ref.x));
  EXPECT_EQ(run.stats.phase_max.count("redistribute"), 0u);
  // Programs are reusable recipes: a second run against the same inputs
  // reproduces the result exactly.
  Program::Result again = prog.run({ha, hb});
  EXPECT_TRUE(ctx.download(again.outputs[0]).equals(ref.x));
}

TEST(Programs, CholeskySolveHandlePathMatchesMatrixPath) {
  const index_t n = 32, k = 4;
  const int p = 6;  // non-square rank count: pipeline on the 2 x 2 subgrid
  const Matrix a = la::make_spd(591, n);
  const Matrix b = la::make_rhs(592, n, k);
  Context ctx(p);
  auto plan = ctx.plan(cholesky_solve_op(n, k));
  const ExecResult ref = plan->execute(a, b);
  ASSERT_EQ(plan->config().p1, 2);
  EXPECT_LT(ref.residual, 1e-10);

  const DistExecResult r = plan->execute_dist(
      ctx.upload(a, plan->input_layout(0)),
      ctx.upload(b, plan->input_layout(1)));
  EXPECT_TRUE(ctx.download(r.x).equals(ref.x));
}

TEST(Programs, BatchOfResidentSolvesAgainstOneUploadedFactor) {
  // The serving pattern the resident path exists for: upload L once,
  // stream executes against it — every solve bitwise equal to the legacy
  // rescatter path, with exactly one diagonal inversion overall.
  const index_t n = 40, k = 5;
  const int p = 4;
  const Matrix l = la::make_lower_triangular(601, n);
  std::vector<Matrix> panels;
  for (int i = 0; i < 4; ++i)
    panels.push_back(la::make_rhs(610 + static_cast<std::uint64_t>(i), n, k));

  Context ref_ctx(p);
  auto ref_plan = ref_ctx.plan(trsm_op(n, k, iterative_spec()));
  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl = ctx.upload(l, plan->input_layout(0));
  for (const Matrix& b : panels) {
    const ExecResult ref = ref_plan->execute(l, b);
    const DistHandle hb = ctx.upload(b, plan->input_layout(1));
    EXPECT_TRUE(ctx.download(plan->execute_dist(hl, hb).x).equals(ref.x));
  }
  EXPECT_EQ(plan->diag_inversions(), 1u);
}

// ---------------------------------------------------------------------------
// Program optimizer: elision, merging, conversion caching, the A/B gate

TEST(Optimizer, FactorFeedingManySolvesComputesOnce) {
  // The serving workload's shape, written redundantly: every solve wires
  // its OWN factor step against the same operand. The optimizer must
  // merge the duplicates (N - 1 merges) and execute kCholesky exactly
  // once — proved through the "cholesky" phase charge, which is 1x the
  // single-factor program's with the optimizer on and N x with it off.
  const index_t n = 40, k = 8;
  const int q = 3, p = 9;
  const int solves = 3;
  const Matrix a = la::make_spd(701, n);

  Context ctx(p);
  auto solve_plan = ctx.plan(cholesky_solve_op(n, k));
  auto factor_plan = ctx.plan(cholesky_op(n, q));
  TrsmSpec fwd;
  fwd.force_algorithm = true;
  fwd.algorithm = model::Algorithm::kIterative;
  fwd.nblocks = solve_plan->config().nblocks;
  fwd.grid_p1 = q;
  fwd.grid_p2 = 1;
  auto fwd_plan = ctx.plan(trsm_op(n, k, fwd));
  TrsmSpec bwd = fwd;
  bwd.transpose = true;
  auto bwd_plan = ctx.plan(trsm_op(n, k, bwd));

  Program prog(ctx);
  const auto na = prog.input(n, n);
  std::vector<DistHandle> inputs{ctx.upload(a, cyclic_layout(q, q))};
  for (int j = 0; j < solves; ++j) {
    const Matrix b = la::make_rhs(710 + static_cast<std::uint64_t>(j), n, k);
    const auto nb = prog.input(n, k);
    inputs.push_back(ctx.upload(b, row_blocked_layout(q, 1)));
    const auto nl = prog.add(factor_plan, {na}, "cholesky");
    const auto ny = prog.add(fwd_plan, {nl, nb}, "forward-trsm");
    prog.mark_output(prog.add(bwd_plan, {nl, ny}, "backward-trsm"));
  }

  prog.set_optimize(true);
  Program::Result opt = prog.run(inputs);
  EXPECT_EQ(prog.stats().nodes_merged,
            static_cast<std::uint64_t>(solves - 1));
  EXPECT_EQ(prog.stats().nodes_elided, 0u);
  EXPECT_EQ(prog.stats().steps_executed,
            static_cast<std::uint64_t>(1 + 2 * solves));

  // Reference: the same DAG written with ONE factor node.
  Program ref_prog(ctx);
  const auto rna = ref_prog.input(n, n);
  const auto rnl = ref_prog.add(factor_plan, {rna}, "cholesky");
  for (int j = 0; j < solves; ++j) {
    const auto rnb = ref_prog.input(n, k);
    const auto rny = ref_prog.add(fwd_plan, {rnl, rnb}, "forward-trsm");
    ref_prog.mark_output(ref_prog.add(bwd_plan, {rnl, rny},
                                      "backward-trsm"));
  }
  std::vector<DistHandle> ref_inputs{inputs[0]};
  for (int j = 0; j < solves; ++j)
    ref_inputs.push_back(inputs[static_cast<std::size_t>(j) + 1]);
  Program::Result ref = ref_prog.run(ref_inputs);

  const sim::Cost one_factor = ref.stats.phase_cost("cholesky");
  const sim::Cost opt_factor = opt.stats.phase_cost("cholesky");
  EXPECT_EQ(opt_factor.msgs, one_factor.msgs);
  EXPECT_EQ(opt_factor.words, one_factor.words);
  EXPECT_EQ(opt_factor.flops, one_factor.flops);
  for (int j = 0; j < solves; ++j)
    EXPECT_TRUE(ctx.download(opt.outputs[static_cast<std::size_t>(j)])
                    .equals(ctx.download(
                        ref.outputs[static_cast<std::size_t>(j)])));

  // The hard A/B: optimizer off replays the redundant DAG as written —
  // N x the factor charge, bitwise-identical outputs.
  prog.set_optimize(false);
  Program::Result raw = prog.run(inputs);
  EXPECT_FALSE(prog.stats().optimized);
  EXPECT_EQ(prog.stats().nodes_merged, 0u);
  const sim::Cost raw_factor = raw.stats.phase_cost("cholesky");
  EXPECT_EQ(raw_factor.msgs, solves * one_factor.msgs);
  EXPECT_EQ(raw_factor.words, solves * one_factor.words);
  for (int j = 0; j < solves; ++j)
    EXPECT_TRUE(ctx.download(raw.outputs[static_cast<std::size_t>(j)])
                    .equals(ctx.download(
                        opt.outputs[static_cast<std::size_t>(j)])));
}

TEST(Optimizer, DeadStepsAreElided) {
  const index_t n = 40, k = 8;
  const int q = 3, p = 9;
  const Matrix a = la::make_spd(721, n);
  const Matrix b = la::make_rhs(722, n, k);

  Context ctx(p);
  auto solve_plan = ctx.plan(cholesky_solve_op(n, k));
  auto factor_plan = ctx.plan(cholesky_op(n, q));
  TrsmSpec fwd;
  fwd.force_algorithm = true;
  fwd.algorithm = model::Algorithm::kIterative;
  fwd.nblocks = solve_plan->config().nblocks;
  fwd.grid_p1 = q;
  fwd.grid_p2 = 1;
  auto fwd_plan = ctx.plan(trsm_op(n, k, fwd));
  TrsmSpec bwd = fwd;
  bwd.transpose = true;
  auto bwd_plan = ctx.plan(trsm_op(n, k, bwd));

  Program prog(ctx);
  const auto na = prog.input(n, n);
  const auto nb = prog.input(n, k);
  const auto nl = prog.add(factor_plan, {na}, "cholesky");
  const auto ny = prog.add(fwd_plan, {nl, nb}, "forward-trsm");
  // A decoy computation nothing marked depends on.
  (void)prog.add(ctx.plan(matmul2d_op(n, k)), {na, nb}, "decoy-mm");
  prog.mark_output(prog.add(bwd_plan, {nl, ny}, "backward-trsm"));

  const DistHandle ha = ctx.upload(a, cyclic_layout(q, q));
  const DistHandle hb = ctx.upload(b, row_blocked_layout(q, 1));
  prog.set_optimize(true);
  Program::Result opt = prog.run({ha, hb});
  EXPECT_EQ(prog.stats().nodes_elided, 1u);
  EXPECT_EQ(prog.stats().steps_executed, 3u);
  EXPECT_EQ(opt.stats.phase_max.count("decoy-mm"), 0u);

  prog.set_optimize(false);
  Program::Result raw = prog.run({ha, hb});
  EXPECT_EQ(prog.stats().nodes_elided, 0u);
  EXPECT_EQ(raw.stats.phase_max.count("decoy-mm"), 1u);
  EXPECT_TRUE(ctx.download(raw.outputs[0]).equals(
      ctx.download(opt.outputs[0])));

  // And against the decoy-free program: same bits, same stats shape.
  const ExecResult ref = solve_plan->execute(a, b);
  EXPECT_TRUE(ctx.download(opt.outputs[0]).equals(ref.x));
}

TEST(Optimizer, SharedConversionRunsOnceAndIsChargedOnce) {
  // One producer feeding two consumers that both need the SAME non-native
  // layout: the optimizer inserts one cached redistribute where the
  // as-written DAG pays two. Pure data movement — bits cannot change.
  const index_t n = 48, k = 12;
  const int p = 16;
  const Matrix l = la::make_lower_triangular(731, n);
  const Matrix b = la::make_rhs(732, n, k);

  Context ctx(p);
  TrsmSpec s1 = iterative_spec();
  s1.nblocks = 2;
  TrsmSpec s2 = iterative_spec();
  s2.nblocks = 4;
  auto plan1 = ctx.plan(trsm_op(n, k, s1));
  auto plan2 = ctx.plan(trsm_op(n, k, s2));
  ASSERT_TRUE(plan1->input_layout(1) == plan2->input_layout(1));

  Program prog(ctx);
  const auto nl = prog.input(n, n);
  const auto nb = prog.input(n, k);
  prog.mark_output(prog.add(plan1, {nl, nb}));
  prog.mark_output(prog.add(plan2, {nl, nb}));

  const DistHandle hl = ctx.upload(l, plan1->input_layout(0));
  // Upload B in a valid but WRONG layout, so both steps need a transition.
  const Layout wrong = plan1->input_layout(0);
  ASSERT_FALSE(wrong == plan1->input_layout(1));
  const DistHandle hb = ctx.upload(b, wrong);

  prog.set_optimize(true);
  Program::Result opt = prog.run({hl, hb});
  EXPECT_EQ(prog.stats().redistributes_inserted, 1u);
  EXPECT_EQ(prog.stats().redistributes_avoided, 1u);
  EXPECT_EQ(prog.stats().nodes_merged, 0u);
  const sim::Cost opt_redist = opt.stats.phase_cost("redistribute");

  prog.set_optimize(false);
  Program::Result raw = prog.run({hl, hb});
  EXPECT_EQ(prog.stats().redistributes_inserted, 2u);
  EXPECT_EQ(prog.stats().redistributes_avoided, 0u);
  const sim::Cost raw_redist = raw.stats.phase_cost("redistribute");
  EXPECT_EQ(raw_redist.msgs, 2 * opt_redist.msgs);
  EXPECT_EQ(raw_redist.words, 2 * opt_redist.words);
  EXPECT_TRUE(ctx.download(opt.outputs[0]).equals(
      ctx.download(raw.outputs[0])));
  EXPECT_TRUE(ctx.download(opt.outputs[1]).equals(
      ctx.download(raw.outputs[1])));
}

TEST(Programs, OptimizerEnvKnobParsesStrictly) {
  Context ctx(4);
  ::setenv("CATRSM_PROGRAM_OPT", "0", 1);
  EXPECT_FALSE(Program(ctx).optimize());
  ::setenv("CATRSM_PROGRAM_OPT", "1", 1);
  EXPECT_TRUE(Program(ctx).optimize());
  // Malformed values warn and fall back to the default (on).
  ::setenv("CATRSM_PROGRAM_OPT", "banana", 1);
  EXPECT_TRUE(Program(ctx).optimize());
  ::unsetenv("CATRSM_PROGRAM_OPT");
  EXPECT_TRUE(Program(ctx).optimize());
}

// ---------------------------------------------------------------------------
// Fused batches: the whole panel stream as one Machine::run

TEST(Programs, FusedBatchMatchesUnfusedBitwiseInOneRun) {
  const index_t n = 48, k = 12;
  const int p = 16;
  const int items = 4;
  const Matrix l = la::make_lower_triangular(741, n);
  std::vector<Matrix> bs;
  for (int i = 0; i < items; ++i)
    bs.push_back(la::make_rhs(750 + static_cast<std::uint64_t>(i), n, k));

  Context ref_ctx(p);
  auto ref_plan = ref_ctx.plan(trsm_op(n, k, iterative_spec()));
  const std::vector<ExecResult> refs = ref_plan->execute_batch(l, bs);

  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const std::uint64_t runs_before = ctx.scheduler().runs();
  const BatchResult br = plan->execute_batch_fused(l, bs);
  // The whole batch — including the shared diagonal inversion — was ONE
  // simulated run.
  EXPECT_EQ(ctx.scheduler().runs(), runs_before + 1);
  EXPECT_EQ(br.stats.phase_max.count("inversion"), 1u);
  EXPECT_EQ(br.stats.phase_max.count("redistribute"), 0u);
  EXPECT_EQ(br.program_stats.steps_executed,
            static_cast<std::uint64_t>(items));
  EXPECT_EQ(plan->diag_inversions(), 1u);

  ASSERT_EQ(br.xs.size(), static_cast<std::size_t>(items));
  for (int i = 0; i < items; ++i) {
    const std::size_t j = static_cast<std::size_t>(i);
    EXPECT_TRUE(br.xs[j].equals(refs[j].x));
    EXPECT_EQ(br.residuals[j], refs[j].residual);
  }

  // A second fused batch against the same operand bytes reuses the
  // inverted diagonals, like execute_batch does.
  const BatchResult br2 = plan->execute_batch_fused(l, bs);
  EXPECT_EQ(plan->diag_inversions(), 1u);
  EXPECT_EQ(br2.stats.phase_max.count("inversion"), 0u);
  for (int i = 0; i < items; ++i)
    EXPECT_TRUE(br2.xs[static_cast<std::size_t>(i)]
                    .equals(refs[static_cast<std::size_t>(i)].x));
}

TEST(Programs, FusedBatchSupportsTransposedAndMatmulStreams) {
  // Reference is the per-panel handle path (execute_dist): the same
  // distributed kernels the fused program runs, one run per panel.
  const int p = 4;
  {
    const index_t n = 32, k = 8;
    const Matrix l = la::make_lower_triangular(761, n);
    std::vector<Matrix> bs{la::make_rhs(762, n, k),
                           la::make_rhs(763, n, k)};
    TrsmSpec spec = iterative_spec();
    spec.transpose = true;
    Context ref_ctx(p);
    auto ref_plan = ref_ctx.plan(trsm_op(n, k, spec));
    const DistHandle hl = ref_ctx.upload(l, ref_plan->input_layout(0));
    Context ctx(p);
    const BatchResult br =
        ctx.plan(trsm_op(n, k, spec))->execute_batch_fused(l, bs);
    for (std::size_t i = 0; i < bs.size(); ++i) {
      const DistHandle hb =
          ref_ctx.upload(bs[i], ref_plan->input_layout(1));
      const Matrix x_ref =
          ref_ctx.download(ref_plan->execute_dist(hl, hb).x);
      EXPECT_TRUE(br.xs[i].equals(x_ref));
      EXPECT_EQ(br.residuals[i],
                la::trsm_residual(l.transposed(), x_ref, bs[i]));
    }
  }
  {
    const index_t n = 24, k = 12;
    const Matrix a = la::make_dense(771, n, n);
    std::vector<Matrix> xs{la::make_dense(772, n, k),
                           la::make_dense(773, n, k)};
    Context ref_ctx(p);
    auto ref_plan = ref_ctx.plan(matmul2d_op(n, k));
    const DistHandle ha = ref_ctx.upload(a, ref_plan->input_layout(0));
    Context ctx(p);
    const BatchResult br =
        ctx.plan(matmul2d_op(n, k))->execute_batch_fused(a, xs);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const DistHandle hx =
          ref_ctx.upload(xs[i], ref_plan->input_layout(1));
      EXPECT_TRUE(br.xs[i].equals(
          ref_ctx.download(ref_plan->execute_dist(ha, hx).x)));
      EXPECT_EQ(br.residuals[i], 0.0);
    }
  }
  // Unsupported streams are rejected up front, before any upload.
  Context ctx(p);
  EXPECT_THROW((void)ctx.plan(cholesky_solve_op(16, 4))
                   ->execute_batch_fused(la::make_spd(781, 16),
                                         {la::make_rhs(782, 16, 4)}),
               Error);
}

// ---------------------------------------------------------------------------
// Byte budget & LRU eviction (CATRSM_HANDLE_BUDGET)

TEST(Eviction, LruOrderDropsColdestFirstAndSparesPinned) {
  const index_t n = 32;
  Context ctx(4);
  sim::HandleStore& store = ctx.machine().handle_store();
  auto plan = ctx.plan(trsm_op(n, 8, iterative_spec()));
  const Layout lay = plan->input_layout(0);

  const DistHandle a = ctx.upload(la::make_lower_triangular(801, n), lay);
  const DistHandle b = ctx.upload(la::make_lower_triangular(802, n), lay);
  const DistHandle c = ctx.upload(la::make_lower_triangular(803, n), lay);
  ASSERT_TRUE(a.resident() && b.resident() && c.resident());
  const std::uint64_t total = store.resident_bytes();
  const std::uint64_t one = total / 3;

  // Touch order oldest-to-newest is now a, b, c. Pin b, then squeeze to
  // roughly one operand's worth: LRU wants a then b then c, but pinned b
  // must be skipped — so a and c go, b survives.
  ctx.pin(b);
  store.set_byte_budget(one);
  store.evict_to_budget();
  EXPECT_FALSE(a.resident());
  EXPECT_TRUE(b.resident());
  EXPECT_FALSE(c.resident());
  EXPECT_EQ(store.evictions(), 2u);

  // Unpinned, b is fair game for the next squeeze.
  ctx.unpin(b);
  store.set_byte_budget(0);
  store.evict_to_budget();
  EXPECT_FALSE(b.resident());
  EXPECT_EQ(store.evictions(), 3u);
  EXPECT_EQ(store.resident_bytes(), 0u);
}

TEST(Eviction, ReuploadIsBitwiseWithStableEpochAndChangesNothing) {
  const index_t n = 48, k = 12;
  const Matrix l = la::make_lower_triangular(811, n);
  const Matrix b = la::make_rhs(812, n, k);

  // Unlimited-budget reference.
  Context ref_ctx(4);
  auto ref_plan = ref_ctx.plan(trsm_op(n, k, iterative_spec()));
  const Matrix x_ref = ref_ctx.download(
      ref_plan
          ->execute_dist(ref_ctx.upload(l, ref_plan->input_layout(0)),
                         ref_ctx.upload(b, ref_plan->input_layout(1)))
          .x);

  Context ctx(4);
  sim::HandleStore& store = ctx.machine().handle_store();
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const DistHandle hb = ctx.upload(b, plan->input_layout(1));
  const std::uint64_t epoch_before = hl.epoch();

  store.set_byte_budget(0);
  store.evict_to_budget();
  ASSERT_FALSE(hl.resident());
  ASSERT_FALSE(hb.resident());

  // Execution transparently re-scatters from the recorded sources; the
  // restored bytes are identical, so the epoch must NOT move (the
  // diag-inverse cache keys on it) and the solution must be bitwise the
  // unlimited-budget one. Download re-uploads just the same.
  const DistExecResult r = plan->execute_dist(hl, hb);
  EXPECT_TRUE(ctx.download(r.x).equals(x_ref));
  EXPECT_EQ(hl.epoch(), epoch_before);
  EXPECT_TRUE(ctx.download(hl).equals(l));

  // Budget 0 degenerates to always-re-upload: another solve evicts and
  // restores again, and the eviction counter shows the round trips.
  const std::uint64_t evictions_before = store.evictions();
  const DistExecResult r2 = plan->execute_dist(hl, hb);
  EXPECT_GT(store.evictions(), evictions_before);
  EXPECT_TRUE(ctx.download(r2.x).equals(x_ref));

  // ensure_resident is the explicit warm-up: restores once, then no-ops.
  EXPECT_TRUE(ctx.ensure_resident(hl));
  EXPECT_FALSE(ctx.ensure_resident(hl));
}

TEST(Eviction, RunOutputsAndPoisonedEntriesAreNeverEvicted) {
  const index_t n = 32, k = 8;
  Context ctx(4);
  sim::HandleStore& store = ctx.machine().handle_store();
  auto plan = ctx.plan(trsm_op(n, k, iterative_spec()));
  const DistHandle hl =
      ctx.upload(la::make_lower_triangular(821, n), plan->input_layout(0));
  const DistHandle hb =
      ctx.upload(la::make_rhs(822, n, k), plan->input_layout(1));
  const DistExecResult r = plan->execute_dist(hl, hb);
  const Matrix x = ctx.download(r.x);

  // A run output has no upload source to rebuild from: squeezing the
  // budget to zero must never drop it.
  store.set_byte_budget(0);
  store.evict_to_budget();
  EXPECT_FALSE(hl.resident());
  EXPECT_TRUE(r.x.resident());
  EXPECT_TRUE(ctx.download(r.x).equals(x));

  // Poisoned entries are never evicted either — an evict/re-upload round
  // trip would launder untrustworthy blocks into clean-looking ones
  // without the owner ever calling repair().
  ctx.ensure_resident(hl);
  store.poison(hl.id());
  store.evict_to_budget();
  EXPECT_TRUE(hl.resident());
  EXPECT_THROW((void)ctx.download(hl), PoisonedOperandError);
  // repair() is still the (only) way back.
  ctx.repair(hl);
  EXPECT_TRUE(ctx.download(hl).equals(la::make_lower_triangular(821, n)));
}

}  // namespace
}  // namespace catrsm::api
