// Property-based op-DAG fuzzer (sim/check subsystem driver).
//
// Generates random api::Program DAGs — chains of TRSM / triangular
// inversion / Cholesky / matmul steps over random shapes, upload
// layouts, and machine sizes (including non-square p) — executes each
// with the correctness oracle armed (collective matching on, deadlock
// detection always on), and validates every marked output against a
// dense reference computed with the sequential la:: kernels. A subset
// of programs is additionally traced and replayed; the replay verifies
// bit-identical payloads and exactly equal modeled S/W/F costs.
//
// Every program also runs a second time with the Program optimizer
// disabled: outputs must match the optimized run bit for bit, and the
// optimizer's elided/merged counts must equal exactly what the grafted
// dead/duplicate decoy steps imply.
//
// Standalone main (no GTest): exits nonzero on the first failing
// program, printing the seed that reproduces it.
//
//   fuzz_dag [--programs N] [--seed S] [--verbose]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "api/catrsm.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/tri_inv.hpp"
#include "la/trsm.hpp"
#include "sim/check/trace.hpp"
#include "support/check.hpp"

namespace {

using catrsm::Error;
using catrsm::api::Context;
using catrsm::api::DistHandle;
using catrsm::api::Layout;
using catrsm::api::Program;
using catrsm::api::TrsmSpec;
using catrsm::api::cyclic_layout;
using catrsm::la::Matrix;
using catrsm::la::index_t;

struct Options {
  int programs = 8;
  std::uint64_t seed = 1;
  bool verbose = false;
};

int pick(std::mt19937_64& rng, const std::vector<int>& from) {
  return from[std::uniform_int_distribution<std::size_t>(
      0, from.size() - 1)(rng)];
}

bool chance(std::mt19937_64& rng, double prob) {
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < prob;
}

/// Dense reference for the transposed lower solve L^T X = B.
Matrix solve_lower_t(const Matrix& l, const Matrix& b) {
  return catrsm::la::matmul(
      catrsm::la::tri_inv(catrsm::la::Uplo::kLower, l).transposed(), b);
}

/// A random layout a handle can legally be uploaded in on p ranks; the
/// program inserts redistributes when it differs from the consumer's
/// required layout.
Layout random_layout(std::mt19937_64& rng, int p) {
  static const int kFaces[][2] = {{1, 1}, {2, 1}, {1, 2}, {2, 2}};
  const int* f = kFaces[std::uniform_int_distribution<int>(0, 3)(rng)];
  if (f[0] * f[1] > p) return cyclic_layout(1, 1);
  return cyclic_layout(f[0], f[1]);
}

/// One generated program: the api::Program plus, per marked output, the
/// dense reference it must (approximately) reproduce. The tail step
/// (plan + args of the LAST node added, whose value is expected.back())
/// is kept so the driver can graft exact-count optimizer decoys onto
/// the DAG: an unmarked duplicate must be elided, a marked one merged.
struct Generated {
  Program prog;
  std::vector<DistHandle> inputs;
  std::vector<Matrix> expected;  // one per marked output, mark order
  std::string shape;             // human summary for --verbose / failures
  std::shared_ptr<catrsm::api::Plan> tail_plan;
  std::vector<Program::NodeId> tail_args;

  explicit Generated(Context& ctx) : prog(ctx) {}
};

DistHandle upload(Context& ctx, std::mt19937_64& rng, const Matrix& m,
                  Layout preferred) {
  // Half the uploads land in the consumer's required layout (zero
  // redistribution), half in a random one (forcing the transition path).
  const Layout layout =
      chance(rng, 0.5) ? preferred : random_layout(rng, ctx.nprocs());
  return ctx.upload(m, layout);
}

/// Chain kind A: thread an n x k panel through 1..4 random TRSM /
/// matmul steps. Shapes are invariant along the chain, so any step
/// order is legal.
void gen_panel_chain(Context& ctx, std::mt19937_64& rng, Generated& g) {
  const index_t n = pick(rng, {24, 32, 40});
  const index_t k = pick(rng, {3, 5, 8});
  const int steps = std::uniform_int_distribution<int>(1, 4)(rng);
  g.shape = "panel-chain n=" + std::to_string(n) + " k=" + std::to_string(k) +
            " steps=" + std::to_string(steps);

  const Matrix l = catrsm::la::make_lower_triangular(rng(), n);
  const Matrix b = catrsm::la::make_rhs(rng(), n, k);
  const Program::NodeId nl = g.prog.input(n, n);
  Program::NodeId cur = g.prog.input(n, k);

  std::shared_ptr<catrsm::api::Plan> first_trsm;
  Matrix ref = b;
  std::vector<Matrix> dense_inputs;  // extra matmul operands, input order
  for (int s = 0; s < steps; ++s) {
    switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
      case 0: {  // plain lower-left solve, planner-chosen algorithm
        auto plan = ctx.plan(catrsm::api::trsm_op(n, k));
        if (!first_trsm) first_trsm = plan;
        g.tail_plan = plan;
        g.tail_args = {nl, cur};
        cur = g.prog.add(plan, {nl, cur});
        ref = catrsm::la::solve_lower(l, ref);
        g.shape += " trsm";
        break;
      }
      case 1: {  // transposed solve: the program path requires iterative
        TrsmSpec spec;
        spec.transpose = true;
        spec.force_algorithm = true;
        spec.algorithm = catrsm::model::Algorithm::kIterative;
        auto plan = ctx.plan(catrsm::api::trsm_op(n, k, spec));
        if (!first_trsm) first_trsm = plan;
        g.tail_plan = plan;
        g.tail_args = {nl, cur};
        cur = g.prog.add(plan, {nl, cur});
        ref = solve_lower_t(l, ref);
        g.shape += " trsm^T";
        break;
      }
      case 2: {  // 3D multiply by a fresh dense operand
        const Matrix a = catrsm::la::make_dense(rng(), n, n);
        auto plan = ctx.plan(catrsm::api::matmul3d_op(n, n, k));
        const Program::NodeId na = g.prog.input(n, n);
        g.tail_plan = plan;
        g.tail_args = {na, cur};
        cur = g.prog.add(plan, {na, cur});
        g.inputs.push_back(upload(ctx, rng, a, plan->input_layout(0)));
        dense_inputs.push_back(a);
        ref = catrsm::la::matmul(a, ref);
        g.shape += " mm3d";
        break;
      }
      default: {  // 2D SUMMA multiply
        const Matrix a = catrsm::la::make_dense(rng(), n, n);
        auto plan = ctx.plan(catrsm::api::matmul2d_op(n, k));
        const Program::NodeId na = g.prog.input(n, n);
        g.tail_plan = plan;
        g.tail_args = {na, cur};
        cur = g.prog.add(plan, {na, cur});
        g.inputs.push_back(upload(ctx, rng, a, plan->input_layout(0)));
        dense_inputs.push_back(a);
        ref = catrsm::la::matmul(a, ref);
        g.shape += " mm2d";
        break;
      }
    }
  }
  g.prog.mark_output(cur);
  g.expected.push_back(ref);

  // Positional binding: inputs 0 and 1 are L and B; the matmul operands
  // were appended in declaration order above.
  std::vector<DistHandle> bound;
  const Layout l_pref = first_trsm ? first_trsm->input_layout(0)
                                   : cyclic_layout(1, 1);
  const Layout b_pref = first_trsm ? first_trsm->input_layout(1)
                                   : cyclic_layout(1, 1);
  bound.push_back(upload(ctx, rng, l, l_pref));
  bound.push_back(upload(ctx, rng, b, b_pref));
  for (DistHandle& h : g.inputs) bound.push_back(h);
  g.inputs = std::move(bound);
  (void)nl;
}

/// Chain kind B: the Cholesky pipeline composed explicitly — factor,
/// forward solve, transposed backward solve on a q x q subgrid.
void gen_cholesky_pipeline(Context& ctx, std::mt19937_64& rng, Generated& g) {
  const index_t n = pick(rng, {24, 32, 40});
  const index_t k = pick(rng, {3, 5, 8});
  int q = 1;
  while ((q + 1) * (q + 1) <= ctx.nprocs()) ++q;
  g.shape = "cholesky-pipeline n=" + std::to_string(n) +
            " k=" + std::to_string(k) + " q=" + std::to_string(q);

  const Matrix a = catrsm::la::make_spd(rng(), n);
  const Matrix b = catrsm::la::make_rhs(rng(), n, k);

  auto factor_plan = ctx.plan(catrsm::api::cholesky_op(n, q));
  TrsmSpec fwd;
  fwd.force_algorithm = true;
  fwd.algorithm = catrsm::model::Algorithm::kIterative;
  fwd.grid_p1 = q;
  fwd.grid_p2 = 1;
  auto fwd_plan = ctx.plan(catrsm::api::trsm_op(n, k, fwd));
  TrsmSpec bwd = fwd;
  bwd.transpose = true;
  auto bwd_plan = ctx.plan(catrsm::api::trsm_op(n, k, bwd));

  const Program::NodeId na = g.prog.input(n, n);
  const Program::NodeId nb = g.prog.input(n, k);
  const Program::NodeId nfac = g.prog.add(factor_plan, {na});
  const Program::NodeId ny = g.prog.add(fwd_plan, {nfac, nb});
  g.tail_plan = bwd_plan;
  g.tail_args = {nfac, ny};
  const Program::NodeId nx = g.prog.add(bwd_plan, {nfac, ny});
  const bool want_factor = chance(rng, 0.5);
  if (want_factor) g.prog.mark_output(nfac);
  g.prog.mark_output(nx);

  const Matrix lref = catrsm::la::cholesky(a);
  if (want_factor) g.expected.push_back(lref);
  g.expected.push_back(solve_lower_t(lref, catrsm::la::solve_lower(lref, b)));

  g.inputs.push_back(upload(ctx, rng, a, factor_plan->input_layout(0)));
  g.inputs.push_back(upload(ctx, rng, b, fwd_plan->input_layout(1)));
}

/// Chain kind C: triangular inversion, optionally consumed by a matmul
/// (X = L^-1 B) so the inverse is both an output and an operand.
void gen_tri_inv(Context& ctx, std::mt19937_64& rng, Generated& g) {
  const index_t n = pick(rng, {24, 32, 40});
  g.shape = "tri-inv n=" + std::to_string(n);

  const Matrix l = catrsm::la::make_lower_triangular(rng(), n);
  auto inv_plan = ctx.plan(catrsm::api::tri_inv_op(n));
  const Program::NodeId nl = g.prog.input(n, n);
  g.tail_plan = inv_plan;
  g.tail_args = {nl};
  const Program::NodeId ninv = g.prog.add(inv_plan, {nl});
  g.prog.mark_output(ninv);
  const Matrix invref = catrsm::la::tri_inv(catrsm::la::Uplo::kLower, l);
  g.expected.push_back(invref);
  g.inputs.push_back(upload(ctx, rng, l, inv_plan->input_layout(0)));

  if (chance(rng, 0.5)) {
    const index_t k = pick(rng, {3, 5, 8});
    const Matrix b = catrsm::la::make_rhs(rng(), n, k);
    auto mm_plan = ctx.plan(catrsm::api::matmul3d_op(n, n, k));
    const Program::NodeId nb = g.prog.input(n, k);
    g.tail_plan = mm_plan;
    g.tail_args = {ninv, nb};
    const Program::NodeId nx = g.prog.add(mm_plan, {ninv, nb});
    g.prog.mark_output(nx);
    g.expected.push_back(catrsm::la::matmul(invref, b));
    g.inputs.push_back(upload(ctx, rng, b, mm_plan->input_layout(1)));
    g.shape += " +mm3d";
  }
}

bool run_one(std::uint64_t seed, const Options& opt) {
  std::mt19937_64 rng(seed);
  const int p = pick(rng, {4, 6, 8, 9, 12});
  Context ctx(p);
  ctx.machine().set_collective_checking(true);

  Generated g(ctx);
  const int kind = std::uniform_int_distribution<int>(0, 2)(rng);
  switch (kind) {
    case 0: gen_panel_chain(ctx, rng, g); break;
    case 1: gen_cholesky_pipeline(ctx, rng, g); break;
    default: gen_tri_inv(ctx, rng, g); break;
  }

  // Graft optimizer decoys with known exact counts onto the DAG. The
  // base generators never produce a dead or duplicate step (every node
  // feeds a marked output, every (plan, args) pair is distinct), so the
  // optimizer must report EXACTLY these counts.
  std::uint64_t want_elided = 0;
  std::uint64_t want_merged = 0;
  if (chance(rng, 0.5)) {  // unmarked duplicate: unreachable, elided
    (void)g.prog.add(g.tail_plan, g.tail_args);
    ++want_elided;
    g.shape += " +dead";
  }
  if (chance(rng, 0.5)) {  // marked duplicate: merged with the tail step
    g.prog.mark_output(g.prog.add(g.tail_plan, g.tail_args));
    g.expected.push_back(g.expected.back());
    ++want_merged;
    g.shape += " +dup";
  }

  const bool traced = chance(rng, 0.25);
  if (traced) ctx.machine().set_tracing(true, /*capture_payloads=*/true);

  g.prog.set_optimize(true);
  Program::Result result = g.prog.run(g.inputs);
  if (result.outputs.size() != g.expected.size()) {
    std::fprintf(stderr, "fuzz_dag: seed %llu (%s, p=%d): %zu outputs, "
                 "expected %zu\n",
                 static_cast<unsigned long long>(seed), g.shape.c_str(), p,
                 result.outputs.size(), g.expected.size());
    return false;
  }
  if (g.prog.stats().nodes_elided != want_elided ||
      g.prog.stats().nodes_merged != want_merged) {
    std::fprintf(stderr, "fuzz_dag: seed %llu (%s, p=%d): optimizer "
                 "reported elided=%llu merged=%llu, DAG shape implies "
                 "elided=%llu merged=%llu\n",
                 static_cast<unsigned long long>(seed), g.shape.c_str(), p,
                 static_cast<unsigned long long>(g.prog.stats().nodes_elided),
                 static_cast<unsigned long long>(g.prog.stats().nodes_merged),
                 static_cast<unsigned long long>(want_elided),
                 static_cast<unsigned long long>(want_merged));
    return false;
  }
  std::vector<Matrix> got;
  got.reserve(result.outputs.size());
  for (std::size_t i = 0; i < result.outputs.size(); ++i) {
    got.push_back(ctx.download(result.outputs[i]));
    const Matrix& want = g.expected[i];
    const double err = catrsm::la::max_abs_diff(got.back(), want);
    const double tol = 1e-8 * (1.0 + catrsm::la::max_abs(want));
    if (err > tol) {
      std::fprintf(stderr, "fuzz_dag: seed %llu (%s, p=%d): output %zu "
                   "diverges from dense reference: max|diff| = %.3e "
                   "(tol %.3e)\n",
                   static_cast<unsigned long long>(seed), g.shape.c_str(), p,
                   i, err, tol);
      return false;
    }
  }

  if (traced) {
    catrsm::sim::check::Trace trace = ctx.machine().take_trace();
    ctx.machine().set_tracing(false);
    // Replay faults internally on any payload or modeled-cost divergence.
    (void)catrsm::sim::check::replay(ctx.machine(), trace);
  }

  // Metamorphic leg: the same program with the optimizer off must
  // reproduce every output bit for bit (the passes only skip, share, or
  // relocate work — they may never touch the arithmetic).
  g.prog.set_optimize(false);
  Program::Result raw = g.prog.run(g.inputs);
  if (g.prog.stats().nodes_elided != 0 || g.prog.stats().nodes_merged != 0) {
    std::fprintf(stderr, "fuzz_dag: seed %llu (%s, p=%d): disabled "
                 "optimizer still reported elisions/merges\n",
                 static_cast<unsigned long long>(seed), g.shape.c_str(), p);
    return false;
  }
  for (std::size_t i = 0; i < raw.outputs.size(); ++i) {
    if (!ctx.download(raw.outputs[i]).equals(got[i])) {
      std::fprintf(stderr, "fuzz_dag: seed %llu (%s, p=%d): output %zu "
                   "differs between optimizer on and off\n",
                   static_cast<unsigned long long>(seed), g.shape.c_str(), p,
                   i);
      return false;
    }
  }

  if (opt.verbose)
    std::fprintf(stderr, "fuzz_dag: seed %llu ok (%s, p=%d%s)\n",
                 static_cast<unsigned long long>(seed), g.shape.c_str(), p,
                 traced ? ", traced+replayed" : "");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--programs") == 0 && i + 1 < argc) {
      opt.programs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--programs N] [--seed S] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }

  int failures = 0;
  for (int i = 0; i < opt.programs; ++i) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(i);
    try {
      if (!run_one(seed, opt)) ++failures;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fuzz_dag: seed %llu faulted:\n%s\n",
                   static_cast<unsigned long long>(seed), e.what());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "fuzz_dag: %d of %d programs FAILED\n", failures,
                 opt.programs);
    return 1;
  }
  std::printf("fuzz_dag: %d programs passed (seed %llu)\n", opt.programs,
              static_cast<unsigned long long>(opt.seed));
  return 0;
}
