// Correctness and cost-shape tests for the recursive TRSM (Section IV).

#include <gtest/gtest.h>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"
#include "sim/machine.hpp"
#include "trsm/rec_trsm.hpp"

namespace catrsm::trsm {
namespace {

using dist::Face2D;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

struct RecCase {
  index_t n, k;
  int pr, pc;
  index_t n0;
};

class RecSweep : public ::testing::TestWithParam<RecCase> {};

TEST_P(RecSweep, MatchesSequentialSolve) {
  const RecCase tc = GetParam();
  Machine m(tc.pr * tc.pc);
  const Matrix l = la::make_lower_triangular(5, tc.n);
  const Matrix b = la::make_rhs(6, tc.n, tc.k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, tc.pr, tc.pc);
    auto ld = dist::cyclic_on(face, tc.n, tc.n);
    auto bd = dist::cyclic_on(face, tc.n, tc.k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    RecTrsmOptions opts;
    opts.n0 = tc.n0;
    DistMatrix dx = rec_trsm(dl, db, world, opts);
    const Matrix got = collect(dx, world);
    EXPECT_LT(la::max_abs_diff(got, ref), 1e-9)
        << "n=" << tc.n << " k=" << tc.k << " grid=" << tc.pr << "x" << tc.pc
        << " n0=" << tc.n0;
    // Residual is the stability-relevant metric.
    EXPECT_LT(la::trsm_residual(l, got, b), 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecSweep,
    ::testing::Values(RecCase{16, 4, 1, 1, 4},     // sequential fallback
                      RecCase{16, 8, 2, 2, 4},     // square grid
                      RecCase{32, 8, 2, 2, 8},     // deeper recursion
                      RecCase{24, 12, 2, 2, 6},    // ragged halving
                      RecCase{17, 3, 2, 2, 4},     // odd n
                      RecCase{16, 32, 2, 4, 8},    // column split q=2
                      RecCase{12, 48, 1, 4, 4},    // column split pr=1
                      RecCase{16, 64, 2, 8, 8},    // column split q=4
                      RecCase{32, 16, 4, 4, 8},    // 16 ranks
                      RecCase{20, 20, 3, 3, 5}));  // non-pow2 grid

TEST(RecTrsm, AutoN0ProducesCorrectSolve) {
  const index_t n = 40, k = 12;
  Machine m(4);
  const Matrix l = la::make_lower_triangular(7, n);
  const Matrix b = la::make_rhs(8, n, k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    DistMatrix dx = rec_trsm(dl, db, world);  // automatic n0
    EXPECT_LT(la::max_abs_diff(collect(dx, world), ref), 1e-9);
  });
}

TEST(RecTrsm, AutoN0RegimeFormulas) {
  // 1D regime: no recursion (n0 == n).
  EXPECT_EQ(rec_trsm_auto_n0(8, 4096, 4, 4), 8);
  // 2D regime: n0 grows with n log p / sqrt p.
  const index_t n0_2d = rec_trsm_auto_n0(1 << 14, 8, 4, 4);
  EXPECT_GT(n0_2d, 1);
  EXPECT_LE(n0_2d, 1 << 14);
  // 3D regime: n0 between 1 and n.
  const index_t n0_3d = rec_trsm_auto_n0(1024, 1024, 8, 8);
  EXPECT_GT(n0_3d, 1);
  EXPECT_LT(n0_3d, 1024);
}

TEST(RecTrsm, LatencyGrowsWithRecursionDepth) {
  // Halving n0 doubles the number of base cases and MM calls, so S grows
  // roughly linearly in n/n0 — the latency wall the paper attacks.
  const index_t n = 64, k = 16;
  Machine m(4);
  const Matrix l = la::make_lower_triangular(9, n);
  const Matrix b = la::make_rhs(10, n, k);
  auto run_with_n0 = [&](index_t n0) {
    return m.run([&](Rank& r) {
      Comm world = Comm::world(r);
      Face2D face(world, 2, 2);
      auto ld = dist::cyclic_on(face, n, n);
      auto bd = dist::cyclic_on(face, n, k);
      DistMatrix dl(ld, r.id());
      dl.fill_from_global(l);
      DistMatrix db(bd, r.id());
      db.fill_from_global(b);
      RecTrsmOptions opts;
      opts.n0 = n0;
      (void)rec_trsm(dl, db, world, opts);
    });
  };
  RunStats coarse = run_with_n0(32);
  RunStats fine = run_with_n0(4);
  EXPECT_GT(fine.max_msgs(), 2.0 * coarse.max_msgs());
}

TEST(RecTrsm, FlopsNearOptimal) {
  const index_t n = 64, k = 32;
  const int p = 4;
  Machine m(p);
  const Matrix l = la::make_lower_triangular(11, n);
  const Matrix b = la::make_rhs(12, n, k);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    RecTrsmOptions opts;
    opts.n0 = 16;
    (void)rec_trsm(dl, db, world, opts);
  });
  // Ideal: n^2 k / p flops per rank (multiply-add counted as 2);
  // base-case column solves and reductions add modest overhead.
  const double ideal = static_cast<double>(n) * n * k / p;
  EXPECT_GE(stats.max_flops(), ideal);
  EXPECT_LE(stats.max_flops(), 6.0 * ideal);
}

TEST(RecTrsm, RaisesOnBadInputs) {
  Machine m(4);
  EXPECT_THROW(
      m.run([](Rank& r) {
        Comm world = Comm::world(r);
        Face2D face(world, 2, 2);
        auto ld = dist::cyclic_on(face, 8, 8);
        auto bd = dist::cyclic_on(face, 10, 4);  // mismatched rows
        DistMatrix dl(ld, r.id());
        DistMatrix db(bd, r.id());
        (void)rec_trsm(dl, db, world);
      }),
      Error);
}

}  // namespace
}  // namespace catrsm::trsm
